#include "obs/chrome_export.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "obs/op.hpp"
#include "stats/counters.hpp"

namespace vs::obs {

namespace {

// tid 0 is the level-less lane; level l maps to tid 1+l.
int lane_of(const TraceEvent& e) { return e.level < 0 ? 0 : 1 + e.level; }

std::string slice_name(const TraceEvent& e) {
  std::string name(to_string(static_cast<TraceKind>(e.kind)));
  if (e.msg != kNoMsg &&
      e.msg < static_cast<std::uint8_t>(stats::MsgKind::kCount)) {
    name += ':';
    name += stats::to_string(static_cast<stats::MsgKind>(e.msg));
  }
  return name;
}

void emit_meta(std::ostream& os, bool& first, std::uint32_t pid, int tid,
               const char* what, const std::string& name) {
  os << (first ? "\n  " : ",\n  ") << "{\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"name\":\"" << what
     << "\",\"args\":{\"name\":\"" << name << "\"}}";
  first = false;
}

void emit_slice(std::ostream& os, bool& first, std::uint32_t pid,
                const TraceEvent& e) {
  os << (first ? "\n  " : ",\n  ") << "{\"ph\":\"X\",\"pid\":" << pid
     << ",\"tid\":" << lane_of(e) << ",\"ts\":" << e.time_us
     << ",\"dur\":1,\"name\":\"" << slice_name(e) << "\",\"args\":{"
     << "\"seq\":" << e.seq << ",\"cause\":" << e.cause
     << ",\"target\":" << e.target << ",\"find\":" << e.find
     << ",\"a\":" << e.a << ",\"b\":" << e.b << ",\"arg\":" << e.arg
     << ",\"extra\":" << e.extra << ",\"op\":\"" << op_name(OpId{e.op})
     << "\"}}";
  first = false;
}

// C-gcast cost records (the same three kinds the OpLedger charges): a kSend
// carries its hop count in arg; client hops and broadcasts cost 1.
bool is_cost_event(const TraceEvent& e) {
  const auto k = static_cast<TraceKind>(e.kind);
  return k == TraceKind::kSend || k == TraceKind::kClientSend ||
         k == TraceKind::kBroadcast;
}

}  // namespace

ChromeExportStats write_chrome_trace(std::ostream& os,
                                     const std::vector<WorldTrace>& worlds,
                                     const ProfileReport* profile) {
  ChromeExportStats stats;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::uint64_t flow_id = 0;
  for (const WorldTrace& w : worlds) {
    emit_meta(os, first, w.world, 0, "process_name",
              "world " + std::to_string(w.world));
    emit_meta(os, first, w.world, 0, "thread_name", "finds+clients");
    int max_lane = 0;
    for (const TraceEvent& e : w.events) {
      max_lane = std::max(max_lane, lane_of(e));
    }
    for (int lane = 1; lane <= max_lane; ++lane) {
      emit_meta(os, first, w.world, lane, "thread_name",
                "L" + std::to_string(lane - 1) + " grow/shrink/find");
    }
    // First record of each scheduler context, for flow anchoring: a record
    // with cause C chains back to the earliest record made while event C
    // fired.
    std::map<std::uint64_t, const TraceEvent*> context_start;
    for (const TraceEvent& e : w.events) {
      if (e.seq != 0) context_start.try_emplace(e.seq, &e);
    }
    // Cumulative per-level cost counters ("C" events): Perfetto renders one
    // counter track per (pid, name), so each level gets a "L<l> cost" track
    // with msgs + hop-work series. Same level convention as the OpLedger:
    // client/broadcast hops (level < 0) charge to level 0.
    std::map<int, std::pair<std::int64_t, std::int64_t>> level_cost;
    for (const TraceEvent& e : w.events) {
      emit_slice(os, first, w.world, e);
      ++stats.slices;
      if (is_cost_event(e)) {
        const int level = e.level < 0 ? 0 : e.level;
        auto& [msgs, work] = level_cost[level];
        ++msgs;
        work += e.arg;
        os << ",\n  {\"ph\":\"C\",\"pid\":" << w.world << ",\"ts\":"
           << e.time_us << ",\"name\":\"L" << level
           << " cost\",\"args\":{\"msgs\":" << msgs << ",\"work\":" << work
           << "}}";
        ++stats.counters;
      }
      if (e.cause == 0 || e.cause == e.seq) continue;
      const auto it = context_start.find(e.cause);
      if (it == context_start.end() || it->second == &e) continue;
      const TraceEvent& parent = *it->second;
      if (parent.time_us > e.time_us) continue;  // never draw backwards
      ++flow_id;
      os << ",\n  {\"ph\":\"s\",\"id\":" << flow_id
         << ",\"pid\":" << w.world << ",\"tid\":" << lane_of(parent)
         << ",\"ts\":" << parent.time_us
         << ",\"cat\":\"causal\",\"name\":\"sched\"}";
      os << ",\n  {\"ph\":\"f\",\"bp\":\"e\",\"id\":" << flow_id
         << ",\"pid\":" << w.world << ",\"tid\":" << lane_of(e)
         << ",\"ts\":" << e.time_us
         << ",\"cat\":\"causal\",\"name\":\"sched\"}";
      ++stats.flows;
    }
  }
  if (profile != nullptr && !profile->snapshots.empty()) {
    // A sidecar profile merges as its own "process": one counter track of
    // cumulative per-subsystem CPU self-ns, sampled at the profiler's
    // virtual-time snapshots — Perfetto lines it up under the trace.
    std::uint32_t pid = 0;
    for (const WorldTrace& w : worlds) pid = std::max(pid, w.world + 1);
    emit_meta(os, first, pid, 0, "process_name", "cpu profile");
    for (const ProfileSnapshotRow& row : profile->snapshots) {
      os << ",\n  {\"ph\":\"C\",\"pid\":" << pid << ",\"ts\":" << row.t_us
         << ",\"name\":\"cpu self ns\",\"args\":{";
      for (std::size_t d = 0; d < kProfDomains; ++d) {
        os << (d == 0 ? "\"" : ",\"")
           << to_string(static_cast<ProfDomain>(d))
           << "\":" << row.domain_self_ns[d];
      }
      os << "}}";
      ++stats.counters;
    }
  }
  os << "\n]}\n";
  return stats;
}

}  // namespace vs::obs
