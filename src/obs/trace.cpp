#include "obs/trace.hpp"

namespace vs::obs {

std::string_view to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend: return "send";
    case TraceKind::kClientSend: return "clientSend";
    case TraceKind::kBroadcast: return "broadcast";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kLost: return "lost";
    case TraceKind::kTimerFire: return "timerFire";
    case TraceKind::kFindTimeout: return "findTimeout";
    case TraceKind::kFindIssued: return "findIssued";
    case TraceKind::kFoundOutput: return "foundOutput";
    case TraceKind::kMoveIssued: return "moveIssued";
  }
  return "?";
}

void TraceRecorder::new_segment() {
  segments_.push_back(std::make_unique<Segment>());
  seg_fill_ = 0;
}

void TraceRecorder::set_ring_capacity(std::size_t k) {
  clear();
  ring_.assign(k, TraceEvent{});
  ring_next_ = 0;
  ring_fill_ = 0;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  if (!ring_.empty()) {
    // Oldest first: when full, the next write slot is also the oldest entry.
    const std::size_t start = ring_fill_ == ring_.size() ? ring_next_ : 0;
    for (std::size_t i = 0; i < ring_fill_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const std::size_t n =
        i + 1 == segments_.size() ? seg_fill_ : kSegmentEvents;
    const Segment& seg = *segments_[i];
    out.insert(out.end(), seg.events, seg.events + n);
  }
  return out;
}

void TraceRecorder::clear() {
  segments_.clear();
  seg_fill_ = 0;
  ring_next_ = 0;
  ring_fill_ = 0;
}

}  // namespace vs::obs
