#pragma once
// VSTELEM1 — the compact binary time-series telemetry stream.
//
// A telemetry file is a header, a run of delta-encoded samples, and a
// trailer:
//
//   "VSTELEM1"            8-byte magic
//   u32 version           kTelemetryFormatVersion
//   u32 flags             bit 0: per-lane PDES section present
//   i64 cadence_us        virtual-time sampling cadence
//   u32 lanes             lane count the per-lane section is sized for
//   u32 max_level         hierarchy depth of the per-level section
//   u32 series            values per sample (consistency check; the
//                         layout itself is fixed by version + flags)
//   --- per sample ---
//   u8  0xA5              sample marker
//   varint t_us           boundary time, delta vs the previous sample
//   varint × series       values, each delta vs the previous sample
//   --- trailer ---
//   u8  0x5A              trailer marker
//   u64 sample count
//   "VSTELEND"            8-byte end magic
//
// Varints are ZigZag + LEB128 (protobuf-style), so near-constant series
// cost one byte per sample. Integers are native-endian like every other
// vinestalk artifact (same-machine write/read).
//
// Records enter the stream whole and the sampler flush()es at every
// cadence boundary, which is what makes the file *tailable*:
// vinestalk_top re-reads it while the producing run is still going and
// renders whatever prefix has landed. (append() itself leaves the bytes
// in the stream buffer — flushing per sample made the flush syscall the
// dominant enabled-path cost.) Two read modes match:
// strict (trailer required — artifact verification) and tail (tolerant
// of a truncated final record — live dashboards).
//
// Determinism doctrine: every series derives from virtual time and
// world-local state sampled at cadence boundaries where sharded execution
// exposes the exact serial prefix (see Scheduler::set_boundary_hook), so
// a stream without the lane section is byte-identical at any --jobs and
// any --shards. The per-lane section (flag bit 0) is schedule
// diagnostics — it varies with --shards by construction, which is why it
// is off by default and carried in a flag rather than always present.

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace vs::obs {

/// v1: the PR-7 layout. v2 appends the ingest-daemon block (8 series) to
/// the fixed scalars; v3 appends the serve-RPC block (6 series) after it.
/// The reader accepts older files by widening each sample with zeros at
/// the missing blocks, so callers only ever see the current layout (the
/// same forward-compatibility idiom as the VSTRACE1 v2→v3 reader).
inline constexpr std::uint32_t kTelemetryFormatVersion = 3;
inline constexpr std::uint32_t kTelemetryFlagLanes = 1u << 0;
/// Series count of the v2 ingest block (kTsIngestBase..kTsServeBase).
inline constexpr std::uint32_t kTsIngestSeriesCount = 8;
/// Series count of the v3 serve-RPC block (kTsServeBase..kTsFixedCount).
inline constexpr std::uint32_t kTsServeSeriesCount = 6;

/// Offsets of the fixed scalar series inside TelemetrySample::values.
/// After the fixed block: 4 per-level series ((max_level+1) ×
/// {move_msgs, move_work, find_msgs, find_work}), then — only with
/// kTelemetryFlagLanes — 3 window scalars {windows, window_events,
/// critical_path_events} and 4 per-lane series (lanes ×
/// {events, stalls, cross_sends, busy_windows}).
enum TelemetrySeries : std::size_t {
  kTsEventsFired = 0,
  kTsMsgsTotal,
  kTsWorkTotal,
  kTsMoveMsgs,
  kTsMoveWork,
  kTsFindMsgs,
  kTsFindWork,
  kTsHeartbeats,
  kTsDuplicated,
  kTsJittered,
  kTsFindsIssued,
  kTsFindsCompleted,
  kTsFindLatencyP50,
  kTsFindLatencyP90,
  kTsFindLatencyP99,
  kTsTraceEvents,
  /// 6 op classes (obs::OpClass order) × {msgs, work}; zero when no
  /// ledger is attached.
  kTsLedgerBase,
  /// Trailing-window audit ratios ×1000 (move work, move time, max find
  /// work, max find time); zero when no auditor is attached.
  kTsAuditBase = kTsLedgerBase + 12,
  /// Ingest-daemon block (v2; kTsIngestSeriesCount series): ingested,
  /// applied, suppressed, dropped, shed_tier1/2/3_entries,
  /// queue_depth_peak — stats::IngestCounters order. Zero outside
  /// vinestalk_served runs.
  kTsIngestBase = kTsAuditBase + 4,
  /// Serve-RPC block (v3; kTsServeSeriesCount series): wire_errors,
  /// retry_after_us (gauge), rpc_finds_issued, rpc_finds_done,
  /// rpc_deadline_misses, rpc_find_attempts — the rest of
  /// stats::IngestCounters. Zero outside vinestalk_served runs.
  kTsServeBase = kTsIngestBase + kTsIngestSeriesCount,
  kTsFixedCount = kTsServeBase + kTsServeSeriesCount,
};

struct TelemetryHeader {
  std::uint32_t version = kTelemetryFormatVersion;
  std::uint32_t flags = 0;
  std::int64_t cadence_us = 0;
  std::uint32_t lanes = 0;
  std::uint32_t max_level = 0;
  std::uint32_t series = 0;

  [[nodiscard]] bool has_lanes() const {
    return (flags & kTelemetryFlagLanes) != 0;
  }
  /// Values per sample implied by version + flags (must equal `series`).
  [[nodiscard]] std::uint32_t expected_series() const {
    std::uint32_t n =
        kTsFixedCount + 4 * (max_level + 1);
    if (version < 2) n -= kTsIngestSeriesCount;  // v1 predates ingest block
    if (version < 3) n -= kTsServeSeriesCount;   // v2 predates serve block
    if (has_lanes()) n += 3 + 4 * lanes;
    return n;
  }
};

/// One decoded sample: cumulative values as of boundary time t_us.
struct TelemetrySample {
  std::int64_t t_us = 0;
  std::vector<std::int64_t> values;
};

/// Stable column names for the header's layout, in values order — the
/// CSV header row and the Prometheus metric names derive from these.
[[nodiscard]] std::vector<std::string> telemetry_series_names(
    const TelemetryHeader& header);

/// Streaming writer: header on construction, one whole record per
/// append (call flush() to make the prefix visible to tail readers),
/// trailer on finish(). Append order is sample order; values must
/// match header.series.
class TelemetryWriter {
 public:
  TelemetryWriter(const std::string& path, const TelemetryHeader& header);
  ~TelemetryWriter();
  TelemetryWriter(const TelemetryWriter&) = delete;
  TelemetryWriter& operator=(const TelemetryWriter&) = delete;

  void append(const TelemetrySample& sample);
  /// Flush buffered records to disk, leaving the file a valid tailable
  /// prefix. The sampler calls this once per boundary crossing rather
  /// than per sample — the flush syscall dominated the enabled-path cost.
  void flush();
  /// Write the trailer and close (idempotent).
  void finish();

  [[nodiscard]] std::uint64_t samples_written() const { return count_; }

 private:
  std::string path_;
  std::ofstream out_;
  TelemetryHeader header_;
  std::vector<std::int64_t> prev_;
  std::string buf_;  // reused per-append encode scratch
  std::int64_t prev_t_ = 0;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

struct TelemetryFile {
  TelemetryHeader header;
  std::vector<TelemetrySample> samples;
  /// True when the trailer was present and consistent.
  bool complete = false;
};

/// Read a VSTELEM1 file. strict=true (artifact verification) throws on
/// any malformation including a missing trailer; strict=false (tail
/// mode) returns every fully decoded sample and stops quietly at a
/// truncated record — the live-dashboard read.
[[nodiscard]] TelemetryFile read_telemetry_file(const std::string& path,
                                                bool strict = true);

/// Render the decoded stream as CSV (t_us + one column per series).
void telemetry_to_csv(std::ostream& os, const TelemetryFile& file);

}  // namespace vs::obs
