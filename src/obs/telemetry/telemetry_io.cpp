#include "obs/telemetry/telemetry_io.hpp"

#include <cstring>
#include <iterator>
#include <ostream>
#include <type_traits>

#include "common/error.hpp"
#include "obs/op.hpp"

namespace vs::obs {

namespace {

constexpr char kMagic[8] = {'V', 'S', 'T', 'E', 'L', 'E', 'M', '1'};
constexpr char kEndMagic[8] = {'V', 'S', 'T', 'E', 'L', 'E', 'N', 'D'};
constexpr std::uint8_t kSampleMarker = 0xA5;
constexpr std::uint8_t kTrailerMarker = 0x5A;
// A sample record never legitimately exceeds this (series are capped by
// level depth and lane count, both small); guards tail reads of garbage.
constexpr std::uint32_t kMaxSeries = 1u << 16;

template <class T>
void put(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof(T));
}

template <class T>
bool get(const char*& p, const char* end, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (static_cast<std::size_t>(end - p) < sizeof(T)) return false;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return true;
}

// ZigZag + LEB128: small signed deltas of either sign encode in one byte.
void put_varint(std::string& buf, std::int64_t v) {
  auto u = (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
  while (u >= 0x80) {
    buf.push_back(static_cast<char>((u & 0x7F) | 0x80));
    u >>= 7;
  }
  buf.push_back(static_cast<char>(u));
}

bool get_varint(const char*& p, const char* end, std::int64_t& v) {
  std::uint64_t u = 0;
  int shift = 0;
  while (p < end && shift < 64) {
    const auto byte = static_cast<std::uint8_t>(*p++);
    u |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      v = static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

std::vector<std::string> telemetry_series_names(
    const TelemetryHeader& header) {
  std::vector<std::string> names = {
      "events_fired",    "msgs_total",      "work_total",
      "move_msgs",       "move_work",       "find_msgs",
      "find_work",       "heartbeats",      "duplicated",
      "jittered",        "finds_issued",    "finds_completed",
      "find_latency_p50_us", "find_latency_p90_us", "find_latency_p99_us",
      "trace_events",
  };
  for (std::uint32_t c = 0; c < 6; ++c) {
    const char* cls = op_class_name(static_cast<OpClass>(c));
    std::string base = cls;
    for (char& ch : base) {
      if (ch == '/') ch = '_';
    }
    names.push_back("ledger_" + base + "_msgs");
    names.push_back("ledger_" + base + "_work");
  }
  names.push_back("audit_move_work_ratio_milli");
  names.push_back("audit_move_time_ratio_milli");
  names.push_back("audit_find_work_ratio_milli");
  names.push_back("audit_find_time_ratio_milli");
  if (header.version >= 2) {
    names.emplace_back("ingest_ingested");
    names.emplace_back("ingest_applied");
    names.emplace_back("ingest_suppressed");
    names.emplace_back("ingest_dropped");
    names.emplace_back("ingest_shed_tier1_entries");
    names.emplace_back("ingest_shed_tier2_entries");
    names.emplace_back("ingest_shed_tier3_entries");
    names.emplace_back("ingest_queue_depth_peak");
  }
  if (header.version >= 3) {
    names.emplace_back("ingest_wire_errors");
    names.emplace_back("ingest_retry_after_us");
    names.emplace_back("ingest_rpc_finds_issued");
    names.emplace_back("ingest_rpc_finds_done");
    names.emplace_back("ingest_rpc_deadline_misses");
    names.emplace_back("ingest_rpc_find_attempts");
  }
  for (std::uint32_t l = 0; l <= header.max_level; ++l) {
    const std::string lvl = "level" + std::to_string(l);
    names.push_back(lvl + "_move_msgs");
    names.push_back(lvl + "_move_work");
    names.push_back(lvl + "_find_msgs");
    names.push_back(lvl + "_find_work");
  }
  if (header.has_lanes()) {
    names.emplace_back("pdes_windows");
    names.emplace_back("pdes_window_events");
    names.emplace_back("pdes_critical_path_events");
    for (std::uint32_t i = 0; i < header.lanes; ++i) {
      const std::string lane = "lane" + std::to_string(i);
      names.push_back(lane + "_events");
      names.push_back(lane + "_stalls");
      names.push_back(lane + "_cross_sends");
      names.push_back(lane + "_busy_windows");
    }
  }
  VS_REQUIRE(names.size() == header.expected_series(),
             "telemetry series name table out of sync with layout");
  return names;
}

TelemetryWriter::TelemetryWriter(const std::string& path,
                                 const TelemetryHeader& header)
    : path_(path), header_(header) {
  VS_REQUIRE(header_.series == header_.expected_series(),
             "telemetry header series count " << header_.series
                                              << " does not match layout "
                                              << header_.expected_series());
  out_.open(path_, std::ios::binary | std::ios::trunc);
  VS_REQUIRE(out_.good(), "cannot open telemetry stream " << path_);
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  put(buf, header_.version);
  put(buf, header_.flags);
  put(buf, header_.cadence_us);
  put(buf, header_.lanes);
  put(buf, header_.max_level);
  put(buf, header_.series);
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out_.flush();
  prev_.assign(header_.series, 0);
}

TelemetryWriter::~TelemetryWriter() { finish(); }

void TelemetryWriter::append(const TelemetrySample& sample) {
  VS_REQUIRE(!finished_, "telemetry stream already finished");
  VS_REQUIRE(sample.values.size() == prev_.size(),
             "telemetry sample has " << sample.values.size()
                                     << " values, layout wants "
                                     << prev_.size());
  buf_.clear();
  buf_.push_back(static_cast<char>(kSampleMarker));
  put_varint(buf_, sample.t_us - prev_t_);
  for (std::size_t i = 0; i < prev_.size(); ++i) {
    put_varint(buf_, sample.values[i] - prev_[i]);
  }
  prev_t_ = sample.t_us;
  prev_ = sample.values;
  ++count_;
  // Records always enter the stream whole, so any flushed prefix is a
  // valid tailable file; flushing is the caller's per-boundary decision.
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
}

void TelemetryWriter::flush() { out_.flush(); }

void TelemetryWriter::finish() {
  if (finished_) return;
  finished_ = true;
  std::string buf;
  buf.push_back(static_cast<char>(kTrailerMarker));
  put(buf, count_);
  buf.append(kEndMagic, sizeof(kEndMagic));
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out_.flush();
  out_.close();
}

TelemetryFile read_telemetry_file(const std::string& path, bool strict) {
  std::ifstream in(path, std::ios::binary);
  VS_REQUIRE(in.good(), "cannot open telemetry file " << path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const char* p = data.data();
  const char* end = p + data.size();

  TelemetryFile f;
  VS_REQUIRE(static_cast<std::size_t>(end - p) >= sizeof(kMagic) &&
                 std::memcmp(p, kMagic, sizeof(kMagic)) == 0,
             "not a VSTELEM1 telemetry file: " << path);
  p += sizeof(kMagic);
  TelemetryHeader& h = f.header;
  VS_REQUIRE(get(p, end, h.version) && get(p, end, h.flags) &&
                 get(p, end, h.cadence_us) && get(p, end, h.lanes) &&
                 get(p, end, h.max_level) && get(p, end, h.series),
             "truncated telemetry header in " << path);
  VS_REQUIRE(h.version >= 1 && h.version <= kTelemetryFormatVersion,
             "unsupported telemetry format version " << h.version);
  VS_REQUIRE(h.series == h.expected_series() && h.series <= kMaxSeries,
             "telemetry header series count " << h.series
                                              << " inconsistent with flags");

  std::vector<std::int64_t> prev(h.series, 0);
  std::int64_t prev_t = 0;
  bool saw_trailer = false;
  while (p < end) {
    const auto marker = static_cast<std::uint8_t>(*p);
    if (marker == kTrailerMarker) {
      const char* q = p + 1;
      std::uint64_t n = 0;
      if (get(q, end, n) &&
          static_cast<std::size_t>(end - q) >= sizeof(kEndMagic) &&
          std::memcmp(q, kEndMagic, sizeof(kEndMagic)) == 0) {
        VS_REQUIRE(n == f.samples.size(),
                   "telemetry trailer count " << n << " != "
                                              << f.samples.size()
                                              << " decoded samples");
        saw_trailer = true;
        p = q + sizeof(kEndMagic);
        break;
      }
      VS_REQUIRE(!strict, "truncated telemetry trailer in " << path);
      break;
    }
    VS_REQUIRE(marker == kSampleMarker,
               "bad telemetry record marker 0x"
                   << std::hex << static_cast<int>(marker) << " in " << path);
    const char* q = p + 1;
    TelemetrySample s;
    std::int64_t dt = 0;
    bool ok = get_varint(q, end, dt);
    s.values.resize(h.series);
    for (std::uint32_t i = 0; ok && i < h.series; ++i) {
      std::int64_t dv = 0;
      ok = get_varint(q, end, dv);
      if (ok) s.values[i] = prev[i] + dv;
    }
    if (!ok) {
      // Truncated final record — fine while the producer is mid-append.
      VS_REQUIRE(!strict, "truncated telemetry sample in " << path);
      break;
    }
    s.t_us = prev_t + dt;
    prev_t = s.t_us;
    prev = s.values;
    f.samples.push_back(std::move(s));
    p = q;
  }
  if (strict) {
    VS_REQUIRE(saw_trailer, "telemetry file " << path
                                              << " has no trailer (stream "
                                                 "not finished?)");
    VS_REQUIRE(p == end, "trailing garbage after telemetry trailer in "
                             << path);
  }
  f.complete = saw_trailer;
  if (h.version < kTelemetryFormatVersion) {
    // Older stream: widen every sample with zeros where newer versions
    // added blocks, and re-label the header, so callers only ever see the
    // current layout (the trace v2→v3 reader idiom). The serve block sits
    // directly after the ingest block, so inserting at kTsServeBase first
    // keeps the earlier offsets valid for the second insert.
    std::uint32_t widened = 0;
    for (TelemetrySample& s : f.samples) {
      if (h.version < 3) {
        const std::size_t serve_at =
            h.version < 2 ? kTsServeBase - kTsIngestSeriesCount : kTsServeBase;
        s.values.insert(
            s.values.begin() + static_cast<std::ptrdiff_t>(serve_at),
            kTsServeSeriesCount, 0);
      }
      if (h.version < 2) {
        s.values.insert(
            s.values.begin() + static_cast<std::ptrdiff_t>(kTsIngestBase),
            kTsIngestSeriesCount, 0);
      }
    }
    if (h.version < 3) widened += kTsServeSeriesCount;
    if (h.version < 2) widened += kTsIngestSeriesCount;
    h.version = kTelemetryFormatVersion;
    h.series += widened;
  }
  return f;
}

void telemetry_to_csv(std::ostream& os, const TelemetryFile& file) {
  const std::vector<std::string> names =
      telemetry_series_names(file.header);
  os << "t_us";
  for (const std::string& n : names) os << "," << n;
  os << "\n";
  for (const TelemetrySample& s : file.samples) {
    os << s.t_us;
    for (const std::int64_t v : s.values) os << "," << v;
    os << "\n";
  }
}

}  // namespace vs::obs
