#pragma once
// TelemetrySampler — cadence-driven time-series snapshots of a running
// world.
//
// The sampler arms the scheduler's *boundary hook* (see
// sim/scheduler.hpp): at every virtual-time boundary B = k × cadence it
// observes the world in the state "every event with when < B has fired,
// nothing at or past B has" — a state both the serial scheduler and the
// sharded executor expose identically (the executor caps its parallel
// windows at the next boundary), so the resulting VSTELEM1 stream is
// byte-identical at any --jobs and any --shards. The sampler schedules
// no events of its own: quiescence (Theorem 4.5) is never perturbed, and
// boundaries beyond the final event simply wait for the next run_until
// deadline flush.
//
// Cost model mirrors tracing's three states:
//  * compiled out (-DVINESTALK_TRACE=OFF): enable() is a no-op; the
//    scheduler hook is never armed and every sampling path is dead code;
//  * constructed but not enabled: nothing armed — the scheduler hot path
//    pays its usual single compare against a never() boundary, the
//    sampler holds no samples and writes no file;
//  * enabled: one hook call per crossed boundary; events between
//    boundaries cost one compare.
//
// Each sample snapshots: scheduler event count; WorkCounters totals and
// per-level move/find splits; find issue/completion census with latency
// percentiles (bucketed like TrackingNetwork::export_metrics); trace
// event count; OpLedger per-class totals (when a ledger is attached);
// sliding-window BoundAuditor ratios (when an auditor is bound); and —
// only when `lane_stats` is on — the PdesCounters per-lane census. Lane
// stats vary with --shards by construction (they describe the parallel
// schedule, not the model), so they are excluded from the default,
// byte-identity-guaranteed stream and flagged in the header when
// present.
//
// Samples land in a bounded in-memory ring (exactly the last
// ring_capacity samples — live introspection) and, when stream_path is
// set, in a VSTELEM1 file flushed once per boundary crossing so
// `vinestalk_top` can tail it mid-run. When prometheus_path is set, each
// boundary crossing also rewrites a Prometheus text-exposition snapshot
// (obs/telemetry/prometheus.hpp) from its latest sample. Per-sample
// allocations are recycled (ring slots, the latency histogram, the
// writer's encode scratch): the enabled path's cost is dominated by
// reading the counters, not by memory or I/O churn.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "obs/ledger/auditor.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/telemetry_io.hpp"
#include "sim/time.hpp"

namespace vs::tracking {
class TrackingNetwork;
}  // namespace vs::tracking

namespace vs::obs {

class SloMonitor;

struct TelemetryConfig {
  /// Virtual-time sampling cadence (boundaries at k × cadence).
  sim::Duration cadence = sim::Duration::millis(10);
  /// Decoded samples kept in memory — exactly the last `ring_capacity`.
  std::size_t ring_capacity = 256;
  /// Include the per-lane PDES section (breaks cross-shard
  /// byte-identity; see header comment).
  bool lane_stats = false;
  /// VSTELEM1 stream destination ("" = ring only).
  std::string stream_path;
  /// Prometheus text-exposition snapshot, rewritten at each sample
  /// ("" = off).
  std::string prometheus_path;
  /// Trailing window for the sliding-window bound audit series
  /// (zero = audit series stay 0 even when an auditor is bound).
  sim::Duration audit_window = sim::Duration::zero();
};

class TelemetrySampler {
 public:
  /// Constructing is free; nothing is armed until enable().
  TelemetrySampler(tracking::TrackingNetwork& net, TelemetryConfig config);
  /// Detaches the hook and finishes the stream (trailer) if enabled.
  ~TelemetrySampler();
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Arm the scheduler boundary hook; first boundary is the next cadence
  /// multiple strictly after now(). No-op when tracing is compiled out.
  void enable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Bind the sliding-window bound audit: ratios of the trailing
  /// `config.audit_window` are emitted as milli-ratio series at each
  /// sample. Both pointers must outlive the sampler (or disable first).
  void bind_audit(const OpLedger* ledger, const BoundAuditor* auditor) {
    audit_ledger_ = ledger;
    auditor_ = auditor;
  }

  /// Ride the SLO monitor's gauges along in the Prometheus snapshot
  /// (vinestalk_slo_* families). Like the profiler ride-along, this is a
  /// live-scrape surface only — the deterministic VSTELEM1 stream never
  /// sees SLO data. The monitor must outlive the sampler (or disable
  /// first); null unbinds.
  void bind_slo(const SloMonitor* slo) { slo_ = slo; }

  /// Write the stream trailer and disarm the hook (idempotent). Call
  /// before tearing the network down if the sampler outlives it.
  void finish();

  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }
  [[nodiscard]] const TelemetryHeader& header() const { return header_; }
  /// Last ring_capacity samples, oldest first.
  [[nodiscard]] const std::deque<TelemetrySample>& ring() const {
    return ring_;
  }
  /// Samples taken over the sampler's lifetime (ring may hold fewer).
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

 private:
  static sim::TimePoint hook_thunk(void* ctx, sim::TimePoint upto);
  sim::TimePoint on_boundary(sim::TimePoint upto);
  void take_sample(std::int64_t t_us);

  tracking::TrackingNetwork* net_;
  TelemetryConfig cfg_;
  TelemetryHeader header_;
  bool enabled_ = false;
  sim::TimePoint next_due_ = sim::TimePoint::never();
  std::deque<TelemetrySample> ring_;
  std::uint64_t samples_ = 0;
  std::optional<TelemetryWriter> writer_;
  Histogram latency_;  // reused per sample (reset, not reallocated)
  const OpLedger* audit_ledger_ = nullptr;
  const BoundAuditor* auditor_ = nullptr;
  const SloMonitor* slo_ = nullptr;
};

}  // namespace vs::obs
