#pragma once
// Prometheus text-exposition rendering (satellite of the telemetry
// subsystem).
//
// Two renderers share one snapshot file:
//  * registry_to_prometheus — a MetricsRegistry (counters, gauges,
//    histograms) in exposition format. Histograms emit the full series a
//    scraper expects: cumulative `_bucket{le="..."}` counts ending at
//    le="+Inf", plus `_sum` and `_count`.
//  * sample_to_prometheus — one decoded telemetry sample as gauges named
//    `<prefix>_telemetry_<series>`, stamped with the sample's virtual
//    time so a scrape corresponds to a definite cadence boundary.
//
// Metric names mangle '.', '/' and '-' to '_' (Prometheus identifier
// rules) and carry the given prefix ("vinestalk" everywhere in-tree).
// Output order is sorted-by-name / series order, so snapshots diff
// cleanly across runs.

#include <iosfwd>
#include <string_view>

#include "obs/telemetry/telemetry_io.hpp"

namespace vs::obs {

class MetricsRegistry;

void registry_to_prometheus(std::ostream& os, const MetricsRegistry& reg,
                            std::string_view prefix);

void sample_to_prometheus(std::ostream& os, const TelemetryHeader& header,
                          const TelemetrySample& sample,
                          std::string_view prefix);

}  // namespace vs::obs
