#include "obs/telemetry/prometheus.hpp"

#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace vs::obs {

namespace {

std::string mangle(std::string_view prefix, std::string_view name) {
  std::string out(prefix);
  out.push_back('_');
  for (const char c : name) {
    out.push_back((c == '.' || c == '/' || c == '-') ? '_' : c);
  }
  return out;
}

}  // namespace

void registry_to_prometheus(std::ostream& os, const MetricsRegistry& reg,
                            std::string_view prefix) {
  for (const auto& [name, value] : reg.counters()) {
    const std::string m = mangle(prefix, name);
    os << "# TYPE " << m << " counter\n" << m << " " << value << "\n";
  }
  for (const auto& [name, value] : reg.gauges()) {
    const std::string m = mangle(prefix, name);
    os << "# TYPE " << m << " gauge\n" << m << " " << value << "\n";
  }
  for (const auto& [name, h] : reg.histograms()) {
    const std::string m = mangle(prefix, name);
    os << "# TYPE " << m << " histogram\n";
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cum += h.buckets()[i];
      os << m << "_bucket{le=\"" << h.bounds()[i] << "\"} " << cum << "\n";
    }
    os << m << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
    os << m << "_sum " << h.sum() << "\n";
    os << m << "_count " << h.count() << "\n";
  }
}

void sample_to_prometheus(std::ostream& os, const TelemetryHeader& header,
                          const TelemetrySample& sample,
                          std::string_view prefix) {
  const std::vector<std::string> names = telemetry_series_names(header);
  {
    const std::string m = mangle(prefix, "telemetry.t_us");
    os << "# TYPE " << m << " gauge\n" << m << " " << sample.t_us << "\n";
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string m = mangle(prefix, "telemetry." + names[i]);
    os << "# TYPE " << m << " gauge\n" << m << " " << sample.values[i]
       << "\n";
  }
}

}  // namespace vs::obs
