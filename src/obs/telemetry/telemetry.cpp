#include "obs/telemetry/telemetry.hpp"

#include <algorithm>
#include <fstream>
#include <span>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/profile/profile_io.hpp"
#include "obs/profile/profiler.hpp"
#include "obs/slo/slo.hpp"
#include "obs/slo/slo_io.hpp"
#include "obs/telemetry/prometheus.hpp"
#include "obs/trace.hpp"
#include "stats/counters.hpp"
#include "tracking/network.hpp"

namespace vs::obs {

namespace {

// Same bucket layout as TrackingNetwork::export_metrics so the stream's
// percentiles and the Prometheus histogram describe one distribution.
constexpr std::int64_t kLatencyBounds[] = {
    1'000,   2'000,   4'000,   8'000,    16'000, 32'000,
    64'000,  128'000, 256'000, 512'000,  1'024'000};

std::int64_t milli_ratio(double r) {
  return static_cast<std::int64_t>(r * 1000.0);
}

}  // namespace

TelemetrySampler::TelemetrySampler(tracking::TrackingNetwork& net,
                                   TelemetryConfig config)
    : net_(&net),
      cfg_(std::move(config)),
      latency_(std::span<const std::int64_t>(kLatencyBounds)) {
  VS_REQUIRE(cfg_.cadence > sim::Duration::zero(),
             "telemetry cadence must be positive, got " << cfg_.cadence);
  header_.version = kTelemetryFormatVersion;
  header_.flags = cfg_.lane_stats ? kTelemetryFlagLanes : 0;
  header_.cadence_us = cfg_.cadence.count();
  header_.lanes =
      cfg_.lane_stats ? static_cast<std::uint32_t>(net_->shards()) : 0;
  header_.max_level =
      static_cast<std::uint32_t>(net_->counters().max_level());
  header_.series = header_.expected_series();
}

TelemetrySampler::~TelemetrySampler() { finish(); }

void TelemetrySampler::enable() {
  if (!kTraceCompiled) return;  // compiled out: stays fully dead
  if (enabled_) return;
  enabled_ = true;
  // First boundary: the next cadence multiple strictly after now — sample
  // k covers the state after every event with when < k × cadence.
  const std::int64_t c = cfg_.cadence.count();
  const std::int64_t k = net_->now().count() / c + 1;
  next_due_ = sim::TimePoint(k * c);
  if (!cfg_.stream_path.empty()) {
    writer_.emplace(cfg_.stream_path, header_);
  }
  net_->scheduler().set_boundary_hook(&TelemetrySampler::hook_thunk, this,
                                      next_due_);
}

void TelemetrySampler::finish() {
  if (!enabled_) return;
  enabled_ = false;
  net_->scheduler().set_boundary_hook(nullptr, nullptr,
                                      sim::TimePoint::never());
  if (writer_.has_value()) {
    writer_->finish();
    writer_.reset();
  }
}

sim::TimePoint TelemetrySampler::hook_thunk(void* ctx, sim::TimePoint upto) {
  return static_cast<TelemetrySampler*>(ctx)->on_boundary(upto);
}

sim::TimePoint TelemetrySampler::on_boundary(sim::TimePoint upto) {
  const ProfScope prof(net_->profiler(), ProfDomain::kTelemetry);
  bool sampled = false;
  while (next_due_ <= upto) {
    take_sample(next_due_.count());
    next_due_ = next_due_ + cfg_.cadence;
    sampled = true;
  }
  if (sampled) {
    // Per-crossing I/O: one stream flush (every buffered record is whole,
    // so the tailed file stays a valid prefix) and one Prometheus rewrite
    // from the newest sample — a 1ms cadence no longer pays a flush
    // syscall and a full registry export per sample.
    if (writer_.has_value()) writer_->flush();
    if (!cfg_.prometheus_path.empty() && !ring_.empty()) {
      std::ofstream os(cfg_.prometheus_path, std::ios::trunc);
      VS_REQUIRE(os.good(),
                 "cannot write prometheus snapshot " << cfg_.prometheus_path);
      MetricsRegistry reg = net_->export_metrics();
      registry_to_prometheus(os, reg, "vinestalk");
      sample_to_prometheus(os, header_, ring_.back(), "vinestalk");
      if (Profiler* p = net_->profiler(); p != nullptr && p->enabled()) {
        // Live CPU gauges ride along when a profiler is attached. They
        // are nondeterministic — which is fine here: the Prometheus
        // snapshot is a live-scrape surface, not one of the
        // byte-identity-guaranteed artifacts.
        profile_to_prometheus(
            os,
            p->report(net_->counters().total_work(),
                      net_->counters().total_messages()),
            "vinestalk");
      }
      if (slo_ != nullptr) {
        // SLO gauges ride along the same way: the Prometheus snapshot is
        // a live-scrape surface, exempt from the byte-identity doctrine
        // the VSSLO1 sidecar's quarantine protects.
        slo_to_prometheus(os, slo_->report(), "vinestalk");
      }
    }
  }
  return next_due_;
}

void TelemetrySampler::take_sample(std::int64_t t_us) {
  const stats::WorkCounters& wc = net_->counters();
  // Recycle the oldest ring slot once the ring is full: assigning into a
  // right-sized values vector allocates nothing, so steady-state sampling
  // is allocation-free.
  TelemetrySample s;
  if (ring_.size() >= cfg_.ring_capacity && !ring_.empty()) {
    s = std::move(ring_.front());
    ring_.pop_front();
  }
  s.t_us = t_us;
  s.values.assign(header_.series, 0);

  s.values[kTsEventsFired] =
      static_cast<std::int64_t>(net_->scheduler().events_fired());
  s.values[kTsMsgsTotal] = wc.total_messages();
  s.values[kTsWorkTotal] = wc.total_work();
  s.values[kTsMoveMsgs] = wc.move_messages();
  s.values[kTsMoveWork] = wc.move_work();
  s.values[kTsFindMsgs] = wc.find_messages();
  s.values[kTsFindWork] = wc.find_work();
  s.values[kTsHeartbeats] = wc.heartbeats();
  s.values[kTsDuplicated] = wc.duplicated();
  s.values[kTsJittered] = wc.jittered();

  latency_.reset();
  for (const auto& [id, fr] : net_->finds()) {
    ++s.values[kTsFindsIssued];
    if (!fr.done) continue;
    ++s.values[kTsFindsCompleted];
    latency_.record(fr.latency().count());
  }
  s.values[kTsFindLatencyP50] = latency_.percentile(0.50);
  s.values[kTsFindLatencyP90] = latency_.percentile(0.90);
  s.values[kTsFindLatencyP99] = latency_.percentile(0.99);
  s.values[kTsTraceEvents] = static_cast<std::int64_t>(net_->trace().size());

  if (const OpLedger* ledger = net_->op_ledger(); ledger != nullptr) {
    for (std::uint32_t c = 0; c < 6; ++c) {
      const OpCost total = ledger->class_total(static_cast<OpClass>(c));
      s.values[kTsLedgerBase + 2 * c] = total.msgs;
      s.values[kTsLedgerBase + 2 * c + 1] = total.work;
    }
  }

  if (auditor_ != nullptr && audit_ledger_ != nullptr &&
      cfg_.audit_window > sim::Duration::zero()) {
    const AuditReport r =
        auditor_->audit_window(*audit_ledger_, t_us, cfg_.audit_window);
    double fw = 0.0, ft = 0.0;
    for (const FindAudit& f : r.finds) {
      fw = std::max(fw, f.work_ratio);
      ft = std::max(ft, f.time_ratio);
    }
    s.values[kTsAuditBase + 0] = milli_ratio(r.move.work_ratio);
    s.values[kTsAuditBase + 1] = milli_ratio(r.move.time_ratio);
    s.values[kTsAuditBase + 2] = milli_ratio(fw);
    s.values[kTsAuditBase + 3] = milli_ratio(ft);
  }

  const stats::IngestCounters& ing = wc.ingest();
  s.values[kTsIngestBase + 0] = ing.ingested;
  s.values[kTsIngestBase + 1] = ing.applied;
  s.values[kTsIngestBase + 2] = ing.suppressed;
  s.values[kTsIngestBase + 3] = ing.dropped;
  s.values[kTsIngestBase + 4] = ing.shed_tier_entries[0];
  s.values[kTsIngestBase + 5] = ing.shed_tier_entries[1];
  s.values[kTsIngestBase + 6] = ing.shed_tier_entries[2];
  s.values[kTsIngestBase + 7] = ing.queue_depth_peak;
  s.values[kTsServeBase + 0] = ing.wire_errors;
  s.values[kTsServeBase + 1] = ing.retry_after_us;
  s.values[kTsServeBase + 2] = ing.rpc_finds_issued;
  s.values[kTsServeBase + 3] = ing.rpc_finds_done;
  s.values[kTsServeBase + 4] = ing.rpc_deadline_misses;
  s.values[kTsServeBase + 5] = ing.rpc_find_attempts;

  std::size_t at = kTsFixedCount;
  for (Level l = 0; l <= wc.max_level(); ++l) {
    s.values[at++] = wc.move_messages_at_level(l);
    s.values[at++] = wc.move_work_at_level(l);
    s.values[at++] = wc.find_messages_at_level(l);
    s.values[at++] = wc.find_work_at_level(l);
  }
  if (header_.has_lanes()) {
    const stats::PdesCounters& p = wc.pdes();
    s.values[at++] = p.windows;
    s.values[at++] = p.window_events;
    s.values[at++] = p.critical_path_events;
    for (std::uint32_t i = 0; i < header_.lanes; ++i) {
      if (i < p.lanes.size()) {
        s.values[at + 0] = p.lanes[i].events;
        s.values[at + 1] = p.lanes[i].stalls;
        s.values[at + 2] = p.lanes[i].cross_sends;
        s.values[at + 3] = p.lanes[i].busy_windows;
      }
      at += 4;
    }
  }
  VS_DCHECK(at == s.values.size(), "telemetry layout mismatch");

  if (writer_.has_value()) writer_->append(s);
  ring_.push_back(std::move(s));
  while (ring_.size() > cfg_.ring_capacity) ring_.pop_front();
  ++samples_;
}

}  // namespace vs::obs
