#include "obs/profile/profiler.hpp"

#include <algorithm>

#include "obs/ledger/ledger.hpp"
#include "sim/profile_probe.hpp"

namespace vs::obs {

std::string_view to_string(ProfDomain d) {
  switch (d) {
    case ProfDomain::kFire: return "fire";
    case ProfDomain::kQueue: return "queue";
    case ProfDomain::kDeliver: return "deliver";
    case ProfDomain::kTrackerGrow: return "tracker_grow";
    case ProfDomain::kTrackerShrink: return "tracker_shrink";
    case ProfDomain::kTrackerFind: return "tracker_find";
    case ProfDomain::kTrackerTimer: return "tracker_timer";
    case ProfDomain::kStabilizer: return "stabilizer";
    case ProfDomain::kFault: return "fault";
    case ProfDomain::kWindow: return "window";
    case ProfDomain::kBarrier: return "barrier";
    case ProfDomain::kTelemetry: return "telemetry";
    case ProfDomain::kCount: break;
  }
  return "?";
}

std::vector<ProfDomain> prof_path_domains(ProfPath path) {
  std::vector<ProfDomain> out;
  for (int i = 0; i < kProfPathDepth; ++i) {
    const auto byte = static_cast<std::uint8_t>(path >> (8 * i));
    if (byte == 0) break;
    out.push_back(static_cast<ProfDomain>(byte - 1));
  }
  return out;
}

void ProfBuf::merge_from(ProfBuf& other) {
  for (const auto& [path, cell] : other.paths) {
    auto& mine = paths[path];
    mine.ns += cell.ns;
    mine.count += cell.count;
  }
  for (std::size_t d = 0; d < kProfDomains; ++d) {
    domain_self_ns[d] += other.domain_self_ns[d];
  }
  for (std::size_t k = 0; k < kProfMsgKinds; ++k) {
    msgs[k].ns += other.msgs[k].ns;
    msgs[k].count += other.msgs[k].count;
  }
  for (const auto& [op, cell] : other.ops) {
    auto& mine = ops[op];
    mine.ns += cell.ns;
    mine.count += cell.count;
  }
  root_ns += other.root_ns;
  scopes += other.scopes;
  other.clear();
}

void ProfBuf::clear() {
  stack.clear();
  paths.clear();
  domain_self_ns.fill(0);
  msgs.fill(Cell{});
  ops.clear();
  root_ns = 0;
  scopes = 0;
}

void Profiler::enable() {
  if (!kProfileCompiled) return;
  main_.clear();
  snapshots_.clear();
  fires_since_snapshot_ = 0;
  wall_start_ns_ = now_ns();
  enabled_ = true;
}

void Profiler::disable() { enabled_ = false; }

std::uint64_t Profiler::end_scope(ProfBuf& b) {
  if (b.stack.empty()) return 0;
  const std::uint64_t t = now_ns();
  const ProfBuf::Frame f = b.stack.back();
  b.stack.pop_back();
  const std::uint64_t elapsed = t >= f.start_ns ? t - f.start_ns : 0;
  const std::uint64_t self = elapsed >= f.child_ns ? elapsed - f.child_ns : 0;
  auto& cell = b.paths[f.path];
  cell.ns += self;
  ++cell.count;
  b.domain_self_ns[static_cast<std::size_t>(f.domain)] += self;
  if (b.stack.empty()) {
    b.root_ns += elapsed;
  } else {
    b.stack.back().child_ns += elapsed;
  }
  ++b.scopes;
  return elapsed;
}

void Profiler::probe_thunk(void* ctx, int phase, std::int64_t t_us) {
  auto* self = static_cast<Profiler*>(ctx);
  ProfBuf& b = self->buf();
  switch (phase) {
    case sim::kProbeQueuePopBegin:
      begin_scope(b, ProfDomain::kQueue);
      break;
    case sim::kProbeFireBegin:
      begin_scope(b, ProfDomain::kFire);
      break;
    case sim::kProbeQueuePopEnd:
      end_scope(b);
      break;
    case sim::kProbeFireEnd:
      end_scope(b);
      if (++self->fires_since_snapshot_ >= kSnapshotEvery) {
        self->snapshot_now(t_us);
      }
      break;
    default:
      break;
  }
}

void Profiler::snapshot_now(std::int64_t t_us) {
  if (!enabled()) return;
  fires_since_snapshot_ = 0;
  // Collapse a run of snapshots at one virtual instant (barrier commits
  // inside the same window cut) into the latest one.
  if (!snapshots_.empty() && snapshots_.back().t_us == t_us) {
    snapshots_.back().domain_self_ns = main_.domain_self_ns;
    return;
  }
  ProfileSnapshotRow row;
  row.t_us = t_us;
  row.domain_self_ns = main_.domain_self_ns;
  snapshots_.push_back(row);
}

ProfileReport Profiler::report(std::int64_t total_work,
                               std::int64_t total_msgs,
                               const OpLedger* ledger) const {
  ProfileReport r;
  r.total_ns = main_.root_ns;
  r.wall_ns = wall_start_ns_ != 0 ? now_ns() - wall_start_ns_ : 0;
  r.scopes = main_.scopes;
  r.domain_self_ns = main_.domain_self_ns;
  r.paths.reserve(main_.paths.size());
  for (const auto& [path, cell] : main_.paths) {
    r.paths.push_back(ProfilePathStat{path, cell.ns, cell.count});
  }
  std::sort(r.paths.begin(), r.paths.end(),
            [](const ProfilePathStat& a, const ProfilePathStat& b) {
              return a.path < b.path;
            });
  for (std::size_t k = 0; k < kProfMsgKinds; ++k) {
    r.msgs[k].ns = main_.msgs[k].ns;
    r.msgs[k].count = main_.msgs[k].count;
  }
  r.ops.reserve(main_.ops.size());
  for (const auto& [op, cell] : main_.ops) {
    ProfileOpStat s;
    s.op = op;
    s.ns = cell.ns;
    s.count = cell.count;
    if (ledger != nullptr) {
      const auto it = ledger->ops().find(op);
      if (it != ledger->ops().end()) {
        s.work = it->second.work;
        s.msgs = it->second.msgs;
      }
    }
    r.ops.push_back(s);
  }
  std::sort(r.ops.begin(), r.ops.end(),
            [](const ProfileOpStat& a, const ProfileOpStat& b) {
              return a.op < b.op;
            });
  for (const ProfileOpStat& s : r.ops) {
    auto& c = r.classes[static_cast<std::size_t>(op_class(s.op))];
    c.ns += s.ns;
    c.count += s.count;
    c.work += s.work;
    c.msgs += s.msgs;
  }
  r.snapshots = snapshots_;
  r.total_work = total_work;
  r.total_msgs = total_msgs;
  return r;
}

}  // namespace vs::obs
