#pragma once
// obs::Profiler — wall-clock CPU attribution for a running world.
//
// Everything else in src/obs measures *virtual* resources: messages,
// hop-work, virtual latency, Theorem 4.9/5.2 ratios. This layer measures
// the one thing the virtual auditor cannot: real CPU nanoseconds, broken
// down per subsystem (scheduler fire loop, queue pops, C-gcast delivery,
// tracker grow/shrink/find handlers, stabilizer, fault injector, shard
// windows and barriers, telemetry sampling), per delivered message kind,
// and per obs::OpId operation class — so every OpLedger entry gains a
// paired real-cost column and "ns per unit of Theorem-4.9 work" becomes a
// reportable hardware-efficiency number.
//
// Cost model, in the same three states as tracing (obs/trace.hpp):
//  * compiled out (-DVINESTALK_PROFILE=OFF): kProfileCompiled is false
//    and every scope is dead code the compiler deletes (the scheduler's
//    probe calls are `if constexpr` guarded, so the fire loop is
//    byte-for-byte the unprofiled one);
//  * compiled in, disabled: a scope is a pointer test plus a bool load —
//    no clock reads, no stores, no allocation;
//  * enabled: two steady_clock reads plus a small-map upsert per scope,
//    TLS-accumulated so parallel shard lanes never contend.
//
// Determinism doctrine: wall-clock values are inherently nondeterministic,
// so NOTHING here may feed back into any deterministic artifact. Profile
// data lives only in the VSPROF1 sidecar (obs/profile/profile_io.hpp),
// its JSON/flamegraph/Perfetto/Prometheus renderings, and vinestalk_top's
// optional profile panel. Trace, VSTELEM1, incidents, and stdout stay
// byte-identical with profiling enabled at any --jobs/--shards —
// tests/test_profile.cpp pins it.
//
// Attribution model: scopes nest on a per-thread stack whose packed path
// (one byte per level, root in the low byte) keys a self-time map. Self
// times are exact — a frame's children are subtracted — so the sum of
// self-ns over all paths equals the sum over root frames *by
// construction* (the conservation property the tests pin), and the folded
// paths render directly as flamegraph stacks. Shard lane threads
// accumulate into lane-local ProfBufs through the same set_thread_redirect
// idiom as TraceRecorder/OpLedger; the barrier folds them into the main
// buffer (sums only, so fold order is irrelevant — which is exactly why
// nondeterministic data may merge where deterministic data must replay).

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/op.hpp"
#include "stats/counters.hpp"

namespace vs::obs {

#if defined(VINESTALK_PROFILE) && VINESTALK_PROFILE
inline constexpr bool kProfileCompiled = true;
#else
inline constexpr bool kProfileCompiled = false;
#endif

/// Subsystem a scope attributes its self-time to.
enum class ProfDomain : std::uint8_t {
  kFire = 0,       // scheduler: a fired event's action
  kQueue,          // scheduler: event-queue pop
  kDeliver,        // C-gcast delivery into a tracker/handler
  kTrackerGrow,    // grow / growPar / growNbr handlers
  kTrackerShrink,  // shrink / shrinkUpd handlers
  kTrackerFind,    // find / findQuery / findAck / found / nbrtimeout
  kTrackerTimer,   // shared grow/shrink timer expiry
  kStabilizer,     // §VII heartbeat ticks, probes, acks, repairs
  kFault,          // fault-plan directive execution
  kWindow,         // shard lane window slice (lane-thread root)
  kBarrier,        // shard barrier replay-merge (driver thread)
  kTelemetry,      // telemetry boundary-hook sampling
  kCount,
};

inline constexpr std::size_t kProfDomains =
    static_cast<std::size_t>(ProfDomain::kCount);
inline constexpr std::size_t kProfMsgKinds =
    static_cast<std::size_t>(stats::MsgKind::kCount);
inline constexpr std::size_t kProfOpClasses = 6;

[[nodiscard]] std::string_view to_string(ProfDomain d);

/// Packed scope path: domain+1 per level, root in the low byte, at most
/// kProfPathDepth levels (deeper scopes fold into their ancestor — depth
/// beyond the instrumented nesting never occurs in practice).
using ProfPath = std::uint64_t;
inline constexpr int kProfPathDepth = 8;

[[nodiscard]] constexpr ProfPath prof_path_push(ProfPath path, int depth,
                                                ProfDomain d) {
  if (depth >= kProfPathDepth) return path;
  return path | (static_cast<ProfPath>(static_cast<std::uint8_t>(d) + 1)
                 << (8 * depth));
}

/// Domains of a packed path, root first.
[[nodiscard]] std::vector<ProfDomain> prof_path_domains(ProfPath path);

/// Per-thread accumulator. The main buffer lives in the Profiler; shard
/// lanes own one each and bind it via Profiler::set_thread_redirect for
/// the window's duration. Only the owning thread touches a buffer until
/// the barrier folds it (after the lane joined), so no locks anywhere.
struct ProfBuf {
  struct Frame {
    ProfPath path;
    std::uint64_t start_ns;
    std::uint64_t child_ns;
    ProfDomain domain;
  };
  struct Cell {
    std::uint64_t ns = 0;
    std::uint64_t count = 0;
  };

  std::vector<Frame> stack;
  std::unordered_map<ProfPath, Cell> paths;  // self-ns per packed path
  std::array<std::uint64_t, kProfDomains> domain_self_ns{};
  std::array<Cell, kProfMsgKinds> msgs{};  // inclusive deliver ns per kind
  std::unordered_map<OpId, Cell> ops;      // inclusive deliver ns per op
  std::uint64_t root_ns = 0;  // sum of elapsed over depth-0 frames
  std::uint64_t scopes = 0;

  /// Fold `other`'s completed tallies into this buffer and clear them
  /// there (the barrier's join). Sums only: order-insensitive.
  void merge_from(ProfBuf& other);
  void clear();
};

struct ProfilePathStat {
  ProfPath path;
  std::uint64_t self_ns;
  std::uint64_t count;
};
struct ProfileMsgStat {
  std::uint64_t ns = 0;
  std::uint64_t count = 0;
};
struct ProfileOpStat {
  OpId op = kBackgroundOp;
  std::uint64_t ns = 0;
  std::uint64_t count = 0;
  /// Paired virtual cost from the OpLedger entry (0/0 when no ledger was
  /// attached) — the "real cost column" next to the theorem-bound one.
  std::int64_t work = 0;
  std::int64_t msgs = 0;
};
struct ProfileClassStat {
  std::uint64_t ns = 0;
  std::uint64_t count = 0;
  std::int64_t work = 0;
  std::int64_t msgs = 0;
};
struct ProfileSnapshotRow {
  std::int64_t t_us = 0;  // virtual time of the snapshot
  std::array<std::uint64_t, kProfDomains> domain_self_ns{};
};

/// Merged, immutable result of a profiling run — what the VSPROF1 sidecar
/// serializes and every renderer consumes.
struct ProfileReport {
  std::uint64_t total_ns = 0;  // sum over root frames == sum of self-ns
  std::uint64_t wall_ns = 0;   // enable()→report() wall time
  std::uint64_t scopes = 0;
  std::array<std::uint64_t, kProfDomains> domain_self_ns{};
  std::vector<ProfilePathStat> paths;  // sorted by packed path
  std::array<ProfileMsgStat, kProfMsgKinds> msgs{};
  std::vector<ProfileOpStat> ops;  // sorted by OpId
  std::array<ProfileClassStat, kProfOpClasses> classes{};
  std::vector<ProfileSnapshotRow> snapshots;  // virtual-time ordered
  /// Paired totals of the run's virtual cost (WorkCounters/OpLedger);
  /// total_ns / total_work is the CPU-efficiency number.
  std::int64_t total_work = 0;
  std::int64_t total_msgs = 0;

  [[nodiscard]] double ns_per_work() const {
    return total_work > 0
               ? static_cast<double>(total_ns) / static_cast<double>(total_work)
               : 0.0;
  }
};

class OpLedger;

class Profiler {
 public:
  /// Start accumulating. Clears previous tallies; call outside run().
  void enable();
  /// Stop accumulating (tallies survive for report()).
  void disable();
  [[nodiscard]] bool enabled() const { return kProfileCompiled && enabled_; }
  /// Stable address of the enabled flag — the scheduler's one-load gate.
  [[nodiscard]] const bool* enabled_flag() const { return &enabled_; }

  [[nodiscard]] static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Redirect this thread's scopes on `from` into `to` — the shard
  /// executor's parallel-window binding (same idiom as TraceRecorder).
  static void set_thread_redirect(const Profiler* from, ProfBuf* to) {
    tls_redirect_from_ = from;
    tls_redirect_to_ = to;
  }

  /// This thread's accumulator (the lane buffer inside a window, the main
  /// buffer otherwise). Callers gate on enabled().
  [[nodiscard]] ProfBuf& buf() {
    return tls_redirect_from_ == this && tls_redirect_to_ != nullptr
               ? *tls_redirect_to_
               : main_;
  }

  /// Open / close one scope on `b`. end_scope returns the frame's
  /// inclusive elapsed ns (0 on an unmatched end — enable() toggled
  /// mid-pair, which only external misuse can produce).
  static void begin_scope(ProfBuf& b, ProfDomain d) {
    b.stack.push_back(ProfBuf::Frame{
        prof_path_push(b.stack.empty() ? 0 : b.stack.back().path,
                       static_cast<int>(b.stack.size()), d),
        now_ns(), 0, d});
  }
  static std::uint64_t end_scope(ProfBuf& b);

  /// Charge one delivered message's inclusive handling time to its kind
  /// and operation (C-gcast's deliver site).
  static void charge_msg(ProfBuf& b, stats::MsgKind kind, OpId op,
                         std::uint64_t ns) {
    auto& mc = b.msgs[static_cast<std::size_t>(kind)];
    mc.ns += ns;
    ++mc.count;
    auto& oc = b.ops[op];
    oc.ns += ns;
    ++oc.count;
  }

  /// Scheduler probe (sim/profile_probe.hpp): the scheduler calls this
  /// through a raw pointer so sim/ keeps no obs dependency. Phases pair
  /// up: queue-pop begin/end around the heap pop, fire begin/end around
  /// the event action. Fire-end additionally drives periodic snapshots
  /// (driver thread only — the probe never runs inside a lane window).
  static void probe_thunk(void* ctx, int phase, std::int64_t t_us);

  /// Fold a lane buffer into the main one (barrier, driver thread).
  void merge_lane(ProfBuf& lane) { main_.merge_from(lane); }

  /// Record a snapshot row at virtual time `t_us` (barrier commits call
  /// this so sharded runs get a time series too).
  void snapshot_now(std::int64_t t_us);

  /// Merge every tally into an immutable report. `total_work`/`total_msgs`
  /// pair the run's virtual cost (stats::WorkCounters totals); `ledger`,
  /// when given, fills each op row's paired work/msgs column.
  [[nodiscard]] ProfileReport report(std::int64_t total_work = 0,
                                     std::int64_t total_msgs = 0,
                                     const OpLedger* ledger = nullptr) const;

  /// Scopes closed so far on the main buffer (0 after a disabled run —
  /// the zero-cost pin, like TraceRecorder::segments_allocated).
  [[nodiscard]] std::uint64_t scopes_recorded() const { return main_.scopes; }

  static constexpr std::uint64_t kSnapshotEvery = 4096;

 private:
  bool enabled_ = false;
  ProfBuf main_;
  std::vector<ProfileSnapshotRow> snapshots_;
  std::uint64_t wall_start_ns_ = 0;
  std::uint64_t fires_since_snapshot_ = 0;

  inline static thread_local const Profiler* tls_redirect_from_ = nullptr;
  inline static thread_local ProfBuf* tls_redirect_to_ = nullptr;
};

/// RAII scope: no-op unless compiled in, attached, and enabled. The
/// buffer pointer is resolved once at entry so an enable()/disable()
/// toggle mid-scope cannot unbalance the stack.
class ProfScope {
 public:
  ProfScope(Profiler* p, ProfDomain d) {
    if constexpr (kProfileCompiled) {
      if (p != nullptr && p->enabled()) {
        buf_ = &p->buf();
        Profiler::begin_scope(*buf_, d);
      }
    }
  }
  ~ProfScope() {
    if constexpr (kProfileCompiled) {
      if (buf_ != nullptr) Profiler::end_scope(*buf_);
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfBuf* buf_ = nullptr;
};

}  // namespace vs::obs
