#include "obs/profile/profile_io.hpp"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <type_traits>

#include "common/error.hpp"

namespace vs::obs {

namespace {

constexpr char kMagic[8] = {'V', 'S', 'P', 'R', 'O', 'F', '1', '\0'};
constexpr char kEndMagic[8] = {'V', 'S', 'P', 'R', 'F', 'E', 'N', 'D'};
// A profiled run produces at most a few dozen distinct paths/ops and one
// snapshot per ~4096 events; anything past these caps is a corrupt file.
constexpr std::uint32_t kMaxRows = 1u << 20;

template <class T>
void put(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof(T));
}

template <class T>
void get(const char*& p, const char* end, T& v, const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  VS_REQUIRE(static_cast<std::size_t>(end - p) >= sizeof(T),
             "truncated profile sidecar " << path);
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
}

std::string domain_label(std::size_t d) {
  return std::string(to_string(static_cast<ProfDomain>(d)));
}

}  // namespace

void write_profile_file(const std::string& path,
                        const ProfileReport& report) {
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  put(buf, kProfileFormatVersion);
  put(buf, static_cast<std::uint32_t>(kProfDomains));
  put(buf, static_cast<std::uint32_t>(kProfMsgKinds));
  put(buf, static_cast<std::uint32_t>(kProfOpClasses));
  put(buf, report.total_ns);
  put(buf, report.wall_ns);
  put(buf, report.scopes);
  put(buf, report.total_work);
  put(buf, report.total_msgs);
  for (std::size_t d = 0; d < kProfDomains; ++d) {
    put(buf, report.domain_self_ns[d]);
  }
  put(buf, static_cast<std::uint32_t>(report.paths.size()));
  for (const ProfilePathStat& s : report.paths) {
    put(buf, s.path);
    put(buf, s.self_ns);
    put(buf, s.count);
  }
  for (std::size_t k = 0; k < kProfMsgKinds; ++k) {
    put(buf, report.msgs[k].ns);
    put(buf, report.msgs[k].count);
  }
  put(buf, static_cast<std::uint32_t>(report.ops.size()));
  for (const ProfileOpStat& s : report.ops) {
    put(buf, s.op);
    put(buf, s.ns);
    put(buf, s.count);
    put(buf, s.work);
    put(buf, s.msgs);
  }
  put(buf, static_cast<std::uint32_t>(report.snapshots.size()));
  for (const ProfileSnapshotRow& row : report.snapshots) {
    put(buf, row.t_us);
    for (std::size_t d = 0; d < kProfDomains; ++d) {
      put(buf, row.domain_self_ns[d]);
    }
  }
  buf.append(kEndMagic, sizeof(kEndMagic));

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  VS_REQUIRE(os.good(), "cannot write profile sidecar " << path);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  VS_REQUIRE(os.good(), "short write on profile sidecar " << path);
}

ProfileReport read_profile_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VS_REQUIRE(in.good(), "cannot open profile sidecar " << path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const char* p = data.data();
  const char* end = p + data.size();
  VS_REQUIRE(static_cast<std::size_t>(end - p) >= sizeof(kMagic) &&
                 std::memcmp(p, kMagic, sizeof(kMagic)) == 0,
             "not a VSPROF1 profile sidecar: " << path);
  p += sizeof(kMagic);
  std::uint32_t version = 0, domains = 0, kinds = 0, classes = 0;
  get(p, end, version, path);
  VS_REQUIRE(version == kProfileFormatVersion,
             "unsupported profile format version " << version);
  get(p, end, domains, path);
  get(p, end, kinds, path);
  get(p, end, classes, path);
  VS_REQUIRE(domains == kProfDomains && kinds == kProfMsgKinds &&
                 classes == kProfOpClasses,
             "profile sidecar " << path
                                << " was written by an incompatible build");
  ProfileReport r;
  get(p, end, r.total_ns, path);
  get(p, end, r.wall_ns, path);
  get(p, end, r.scopes, path);
  get(p, end, r.total_work, path);
  get(p, end, r.total_msgs, path);
  for (std::size_t d = 0; d < kProfDomains; ++d) {
    get(p, end, r.domain_self_ns[d], path);
  }
  std::uint32_t n = 0;
  get(p, end, n, path);
  VS_REQUIRE(n <= kMaxRows, "implausible path count in " << path);
  r.paths.resize(n);
  for (ProfilePathStat& s : r.paths) {
    get(p, end, s.path, path);
    get(p, end, s.self_ns, path);
    get(p, end, s.count, path);
  }
  for (std::size_t k = 0; k < kProfMsgKinds; ++k) {
    get(p, end, r.msgs[k].ns, path);
    get(p, end, r.msgs[k].count, path);
  }
  get(p, end, n, path);
  VS_REQUIRE(n <= kMaxRows, "implausible op count in " << path);
  r.ops.resize(n);
  for (ProfileOpStat& s : r.ops) {
    get(p, end, s.op, path);
    get(p, end, s.ns, path);
    get(p, end, s.count, path);
    get(p, end, s.work, path);
    get(p, end, s.msgs, path);
  }
  for (const ProfileOpStat& s : r.ops) {
    auto& c = r.classes[static_cast<std::size_t>(op_class(s.op))];
    c.ns += s.ns;
    c.count += s.count;
    c.work += s.work;
    c.msgs += s.msgs;
  }
  get(p, end, n, path);
  VS_REQUIRE(n <= kMaxRows, "implausible snapshot count in " << path);
  r.snapshots.resize(n);
  for (ProfileSnapshotRow& row : r.snapshots) {
    get(p, end, row.t_us, path);
    for (std::size_t d = 0; d < kProfDomains; ++d) {
      get(p, end, row.domain_self_ns[d], path);
    }
  }
  VS_REQUIRE(static_cast<std::size_t>(end - p) == sizeof(kEndMagic) &&
                 std::memcmp(p, kEndMagic, sizeof(kEndMagic)) == 0,
             "profile sidecar " << path << " has no end marker");
  return r;
}

void profile_to_json(std::ostream& os, const ProfileReport& r) {
  os << "{\n";
  os << "  \"format\": \"VSPROF1\",\n";
  os << "  \"total_ns\": " << r.total_ns << ",\n";
  os << "  \"wall_ns\": " << r.wall_ns << ",\n";
  os << "  \"scopes\": " << r.scopes << ",\n";
  os << "  \"total_work\": " << r.total_work << ",\n";
  os << "  \"total_msgs\": " << r.total_msgs << ",\n";
  os << "  \"ns_per_work\": " << std::fixed << std::setprecision(2)
     << r.ns_per_work() << ",\n";
  os << "  \"domains\": {";
  for (std::size_t d = 0; d < kProfDomains; ++d) {
    os << (d == 0 ? "" : ", ") << "\"" << domain_label(d)
       << "\": " << r.domain_self_ns[d];
  }
  os << "},\n";
  os << "  \"paths\": [";
  for (std::size_t i = 0; i < r.paths.size(); ++i) {
    const ProfilePathStat& s = r.paths[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"stack\": \"";
    const auto doms = prof_path_domains(s.path);
    for (std::size_t j = 0; j < doms.size(); ++j) {
      os << (j == 0 ? "" : ";") << to_string(doms[j]);
    }
    os << "\", \"self_ns\": " << s.self_ns << ", \"count\": " << s.count
       << "}";
  }
  os << (r.paths.empty() ? "" : "\n  ") << "],\n";
  os << "  \"msg_kinds\": {";
  bool first = true;
  for (std::size_t k = 0; k < kProfMsgKinds; ++k) {
    if (r.msgs[k].count == 0) continue;
    os << (first ? "" : ", ") << "\""
       << stats::to_string(static_cast<stats::MsgKind>(k))
       << "\": {\"ns\": " << r.msgs[k].ns << ", \"count\": " << r.msgs[k].count
       << "}";
    first = false;
  }
  os << "},\n";
  os << "  \"op_classes\": {";
  first = true;
  for (std::size_t c = 0; c < kProfOpClasses; ++c) {
    const ProfileClassStat& s = r.classes[c];
    if (s.count == 0) continue;
    os << (first ? "" : ", ") << "\""
       << op_class_name(static_cast<OpClass>(c)) << "\": {\"ns\": " << s.ns
       << ", \"count\": " << s.count << ", \"work\": " << s.work
       << ", \"msgs\": " << s.msgs << "}";
    first = false;
  }
  os << "},\n";
  os << "  \"ops\": [";
  for (std::size_t i = 0; i < r.ops.size(); ++i) {
    const ProfileOpStat& s = r.ops[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"op\": \"" << op_name(s.op)
       << "\", \"ns\": " << s.ns << ", \"count\": " << s.count
       << ", \"work\": " << s.work << ", \"msgs\": " << s.msgs << "}";
  }
  os << (r.ops.empty() ? "" : "\n  ") << "],\n";
  os << "  \"snapshots\": [";
  for (std::size_t i = 0; i < r.snapshots.size(); ++i) {
    const ProfileSnapshotRow& row = r.snapshots[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"t_us\": " << row.t_us;
    for (std::size_t d = 0; d < kProfDomains; ++d) {
      if (row.domain_self_ns[d] == 0) continue;
      os << ", \"" << domain_label(d) << "\": " << row.domain_self_ns[d];
    }
    os << "}";
  }
  os << (r.snapshots.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  os.unsetf(std::ios::fixed);
}

void profile_to_folded(std::ostream& os, const ProfileReport& r) {
  for (const ProfilePathStat& s : r.paths) {
    if (s.count == 0) continue;
    const auto doms = prof_path_domains(s.path);
    for (std::size_t j = 0; j < doms.size(); ++j) {
      os << (j == 0 ? "" : ";") << to_string(doms[j]);
    }
    os << " " << s.self_ns << "\n";
  }
}

void profile_to_prometheus(std::ostream& os, const ProfileReport& r,
                           const std::string& prefix) {
  os << "# TYPE " << prefix << "_profile_self_ns gauge\n";
  for (std::size_t d = 0; d < kProfDomains; ++d) {
    os << prefix << "_profile_self_ns{domain=\"" << domain_label(d)
       << "\"} " << r.domain_self_ns[d] << "\n";
  }
  os << "# TYPE " << prefix << "_profile_total_ns gauge\n";
  os << prefix << "_profile_total_ns " << r.total_ns << "\n";
  os << "# TYPE " << prefix << "_profile_ns_per_work gauge\n";
  os << prefix << "_profile_ns_per_work " << std::fixed
     << std::setprecision(2) << r.ns_per_work() << "\n";
  os.unsetf(std::ios::fixed);
  os << "# TYPE " << prefix << "_profile_op_class_ns gauge\n";
  for (std::size_t c = 0; c < kProfOpClasses; ++c) {
    const ProfileClassStat& s = r.classes[c];
    if (s.count == 0) continue;
    std::string label(op_class_name(static_cast<OpClass>(c)));
    for (char& ch : label) {
      if (ch == '/') ch = '_';
    }
    os << prefix << "_profile_op_class_ns{class=\"" << label << "\"} "
       << s.ns << "\n";
  }
}

}  // namespace vs::obs
