#pragma once
// VSPROF1 — the wall-clock profile sidecar, and its renderings.
//
// Profile data is nondeterministic (real nanoseconds), so it never shares
// a file with a deterministic artifact: a profiled run writes its report
// to a standalone sidecar next to whatever traces/streams it also
// produced. The binary form round-trips exactly; the renderers produce
//  * JSON (machine-readable, the BENCH/bench-history consumer),
//  * folded flamegraph stacks ("fire;deliver;tracker_grow 123" — feed to
//    flamegraph.pl or speedscope),
//  * Prometheus gauges (vinestalk_profile_* — the live exporter appends
//    these to its snapshot when a profiler is attached),
// and vinestalk_trace's Chrome export merges the snapshot rows as
// Perfetto counter tracks (obs/chrome_export.hpp).

#include <iosfwd>
#include <string>

#include "obs/profile/profiler.hpp"

namespace vs::obs {

inline constexpr std::uint32_t kProfileFormatVersion = 1;

/// Write/read the binary sidecar. Readers throw vs::Error on any
/// malformation (the sidecar is written atomically at run end; there is
/// no tail mode).
void write_profile_file(const std::string& path, const ProfileReport& report);
[[nodiscard]] ProfileReport read_profile_file(const std::string& path);

/// JSON rendering (one object; stable key order).
void profile_to_json(std::ostream& os, const ProfileReport& report);

/// Folded flamegraph stacks: one "domain;domain;... self_ns" line per
/// path with recorded scopes, path-sorted.
void profile_to_folded(std::ostream& os, const ProfileReport& report);

/// Prometheus text-exposition gauges under `prefix` (vinestalk →
/// vinestalk_profile_self_ns{domain="fire"} etc).
void profile_to_prometheus(std::ostream& os, const ProfileReport& report,
                           const std::string& prefix);

}  // namespace vs::obs
