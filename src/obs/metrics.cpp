#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/error.hpp"

namespace vs::obs {

Histogram::Histogram(std::span<const std::int64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1, 0) {
  VS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
             "histogram bounds must be ascending");
}

Histogram Histogram::from_parts(std::vector<std::int64_t> bounds,
                                std::vector<std::int64_t> buckets,
                                std::int64_t count, std::int64_t sum,
                                std::int64_t min, std::int64_t max) {
  VS_REQUIRE(buckets.size() == bounds.size() + 1,
             "histogram parts mismatch: " << buckets.size() << " buckets for "
                                          << bounds.size() << " bounds");
  VS_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
             "histogram bounds must be ascending");
  Histogram h;
  h.bounds_ = std::move(bounds);
  h.buckets_ = std::move(buckets);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

void Histogram::record(std::int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::vector<std::int64_t> log2_bounds(std::int64_t lo, std::int64_t hi) {
  VS_REQUIRE(lo > 0 && lo <= hi, "log2_bounds requires 0 < lo <= hi");
  std::vector<std::int64_t> bounds;
  std::int64_t b = lo;
  for (;;) {
    bounds.push_back(b);
    if (b >= hi) break;
    VS_REQUIRE(b <= (std::numeric_limits<std::int64_t>::max)() / 2,
               "log2_bounds overflow");
    b *= 2;
  }
  return bounds;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 && bounds_.empty()) {
    *this = other;
    return;
  }
  VS_REQUIRE(bounds_ == other.bounds_, "histogram bucket layouts differ");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank (1-based), then the bucket containing it. ceil keeps the
  // top quantiles in the top bucket (p99 of {5, 5000} must land on 5000,
  // not on the last bound).
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] < rank) {
      seen += buckets_[i];
      continue;
    }
    // Linear interpolation across the bucket's value span [lo, hi].
    const std::int64_t lo = i == 0 ? min_ : bounds_[i - 1];
    const std::int64_t hi = i < bounds_.size() ? bounds_[i] : max_;
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(buckets_[i]);
    const auto v = lo + static_cast<std::int64_t>(
                            frac * static_cast<double>(hi - lo));
    return std::clamp(v, min_, max_);
  }
  return max_;
}

void Histogram::to_json(std::ostream& os) const {
  os << "{\"count\": " << count_ << ", \"sum\": " << sum_
     << ", \"min\": " << min_ << ", \"max\": " << max_
     << ", \"p50\": " << percentile(0.50) << ", \"p90\": " << percentile(0.90)
     << ", \"p99\": " << percentile(0.99) << ", \"buckets\": [";
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"le\": ";
    if (i < bounds_.size()) {
      os << bounds_[i];
    } else {
      os << "\"inf\"";
    }
    os << ", \"count\": " << buckets_[i] << "}";
  }
  os << "]}";
}

void MetricsRegistry::check_name_free(std::string_view name,
                                      std::string_view wanted) const {
  // One name, one type. A counter and a gauge sharing a name would merge
  // under different semantics (sum vs max) depending on which map a reader
  // consults — fail at registration, not at export.
  const bool c = counters_.find(name) != counters_.end();
  const bool g = gauges_.find(name) != gauges_.end();
  const bool h = histograms_.find(name) != histograms_.end();
  VS_REQUIRE((!c || wanted == "counter") && (!g || wanted == "gauge") &&
                 (!h || wanted == "histogram"),
             "metric \"" << name << "\" already registered as a "
                         << (c ? "counter" : g ? "gauge" : "histogram")
                         << ", cannot re-register as a " << wanted);
}

void MetricsRegistry::add(std::string_view name, std::int64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_name_free(name, "counter");
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set_gauge(std::string_view name, std::int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_name_free(name, "gauge");
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const std::int64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_name_free(name, "histogram");
    it = histograms_.emplace(std::string(name), Histogram(bounds)).first;
  } else {
    VS_REQUIRE(std::equal(bounds.begin(), bounds.end(),
                          it->second.bounds().begin(),
                          it->second.bounds().end()),
               "histogram " << name << " re-declared with different bounds");
  }
  return it->second;
}

std::int64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) add(name, v);
  for (const auto& [name, v] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      check_name_free(name, "gauge");
      gauges_.emplace(name, v);
    } else {
      it->second = std::max(it->second, v);
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      check_name_free(name, "histogram");
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

void MetricsRegistry::to_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  const std::string pad4 = pad2 + "  ";
  os << "{\n" << pad2 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "\n" : ",\n") << pad4 << "\"" << name << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n" + pad2) << "},\n";
  os << pad2 << "\"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    os << (first ? "\n" : ",\n") << pad4 << "\"" << name << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n" + pad2) << "},\n";
  os << pad2 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << pad4 << "\"" << name << "\": ";
    h.to_json(os);
    first = false;
  }
  os << (first ? "" : "\n" + pad2) << "}\n" << pad << "}";
}

}  // namespace vs::obs
