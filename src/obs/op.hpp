#pragma once
// Logical-operation identity — the key of the per-operation cost ledger.
//
// Every message and traced event is charged to exactly one *operation*:
// a move step (the grow/shrink cascade one evader relocation triggers), a
// find — split into its search phase (climb + neighbour queries) and its
// trace phase (descending the tracking path to the target) — a heartbeat
// round, a stabilizer repair, or the explicit background bucket (OpId 0).
//
// An OpId is a packed 32-bit value: the top 3 bits carry the OpClass and
// the low 29 bits an index that is *structurally derivable* at every
// process without coordination — move steps use the network's move
// counter, find phases use the FindId value, heartbeat/repair ops use the
// stabilizer's tick number. Derivability is what lets a Tracker switch a
// find from search to trace purely locally, and what keeps ledgers
// byte-identical across --jobs: no central allocator, no races.
//
// The id travels in vsa::Message (stamped by CGcast's ambient op or by the
// sender) and in TraceEvent::op, so both the live ledger (send observers)
// and the offline `vinestalk_trace audit` replay attribute the same costs
// to the same operations.

#include <cstdint>
#include <string>

namespace vs::obs {

/// Packed operation id; 0 is the background bucket.
using OpId = std::uint32_t;

inline constexpr OpId kBackgroundOp = 0;

enum class OpClass : std::uint32_t {
  kBackground = 0,  // unattributed / infrastructure
  kMove = 1,        // one evader move step's grow/shrink cascade
  kFindSearch = 2,  // find f: climb + neighbour-query phase
  kFindTrace = 3,   // find f: descend-the-path phase (incl. found fanout)
  kHeartbeat = 4,   // one stabilizer probe round (probes + acks)
  kRepair = 5,      // repair traffic a probe round triggered
};

inline constexpr std::uint32_t kOpClassBits = 3;
inline constexpr std::uint32_t kOpIndexBits = 32 - kOpClassBits;
inline constexpr std::uint32_t kOpIndexMask = (1u << kOpIndexBits) - 1;

[[nodiscard]] constexpr OpId make_op(OpClass cls, std::uint64_t index) {
  return (static_cast<std::uint32_t>(cls) << kOpIndexBits) |
         (static_cast<std::uint32_t>(index) & kOpIndexMask);
}

[[nodiscard]] constexpr OpClass op_class(OpId op) {
  return static_cast<OpClass>(op >> kOpIndexBits);
}

[[nodiscard]] constexpr std::uint32_t op_index(OpId op) {
  return op & kOpIndexMask;
}

[[nodiscard]] constexpr const char* op_class_name(OpClass cls) {
  switch (cls) {
    case OpClass::kBackground: return "background";
    case OpClass::kMove: return "move";
    case OpClass::kFindSearch: return "find/search";
    case OpClass::kFindTrace: return "find/trace";
    case OpClass::kHeartbeat: return "hb";
    case OpClass::kRepair: return "repair";
  }
  return "?";
}

/// Human name, e.g. "move#3", "find#2/search", "hb#5", "background".
[[nodiscard]] inline std::string op_name(OpId op) {
  if (op == kBackgroundOp) return "background";
  const std::uint32_t i = op_index(op);
  switch (op_class(op)) {
    case OpClass::kMove: return "move#" + std::to_string(i);
    case OpClass::kFindSearch: return "find#" + std::to_string(i) + "/search";
    case OpClass::kFindTrace: return "find#" + std::to_string(i) + "/trace";
    case OpClass::kHeartbeat: return "hb#" + std::to_string(i);
    case OpClass::kRepair: return "repair#" + std::to_string(i);
    case OpClass::kBackground: break;
  }
  return "background";
}

}  // namespace vs::obs
