#include "obs/monitor/incident.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <type_traits>

#include "common/error.hpp"
#include "obs/op.hpp"
#include "obs/trace_query.hpp"

namespace vs::obs {

namespace {

constexpr char kMagic[8] = {'V', 'S', 'I', 'N', 'C', 'I', 'D', '1'};
constexpr char kEndMagic[8] = {'V', 'S', 'I', 'N', 'C', 'E', 'N', 'D'};

/// Strings longer than this are implausible for any field a bundle holds;
/// treating them as corruption keeps a bit-flipped length from triggering
/// a huge allocation.
constexpr std::uint32_t kMaxString = 1u << 24;
constexpr std::uint64_t kMaxRing = 1u << 28;
constexpr std::uint32_t kMaxCorruptions = 1u << 20;
constexpr std::uint32_t kMaxExemplars = 1u << 20;

template <class T>
void put(std::ostream& os, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <class T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  VS_REQUIRE(is.good(), "truncated incident stream");
  return v;
}

void put_str(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_str(std::istream& is) {
  const auto len = get<std::uint32_t>(is);
  VS_REQUIRE(len <= kMaxString,
             "corrupt incident stream: implausible string length " << len);
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  VS_REQUIRE(is.gcount() == static_cast<std::streamsize>(len),
             "truncated incident stream: string field cut short");
  return s;
}

/// Ring record layout of bundle versions 1–2 (pre-OpId TraceEvent).
struct LegacyEvent56 {
  std::int64_t time_us;
  std::uint64_t seq;
  std::uint64_t cause;
  std::int64_t find;
  std::int32_t a;
  std::int32_t b;
  std::int32_t target;
  std::int32_t arg;
  std::int16_t level;
  std::uint8_t kind;
  std::uint8_t msg;
  std::int32_t extra;
};
static_assert(sizeof(LegacyEvent56) == 56);

}  // namespace

const char* to_string(WatchMode mode) {
  switch (mode) {
    case WatchMode::kOff: return "off";
    case WatchMode::kCadence: return "cadence";
    case WatchMode::kEveryChange: return "every-change";
  }
  return "?";
}

void write_incident(std::ostream& os, const IncidentBundle& b) {
  os.write(kMagic, sizeof kMagic);
  put<std::uint32_t>(os, kIncidentFormatVersion);
  put_str(os, b.source);
  put<std::int32_t>(os, b.target);
  put_str(os, b.violation.predicate);
  put_str(os, b.violation.detail);
  put<std::int64_t>(os, b.violation.time_us);
  put<std::int32_t>(os, b.violation.cluster);
  put<std::int32_t>(os, b.violation.level);
  put<std::uint8_t>(os, static_cast<std::uint8_t>(b.mode));
  put<std::int64_t>(os, b.cadence_us);
  put<std::uint64_t>(os, b.ring_capacity);
  const ScenarioSpec& s = b.scenario;
  put<std::int32_t>(os, s.side);
  put<std::int32_t>(os, s.base);
  put<std::uint8_t>(os, s.lateral_links ? 1 : 0);
  put<std::uint8_t>(os, s.model_vsa_failures ? 1 : 0);
  put<std::uint8_t>(os, s.replayable_flag ? 1 : 0);
  put<std::int32_t>(os, s.clients_per_region);
  put<std::int32_t>(os, s.start_region);
  put<std::uint64_t>(os, s.seed);
  put<std::int32_t>(os, s.steps);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.corruptions.size()));
  for (const auto& c : s.corruptions) {
    put<std::int32_t>(os, c.cluster);
    put<std::int32_t>(os, c.c);
    put<std::int32_t>(os, c.p);
    put<std::int32_t>(os, c.nbrptup);
    put<std::int32_t>(os, c.nbrptdown);
  }
  put_str(os, s.fault_plan);
  put<std::int64_t>(os, s.step_every_us);
  put<std::int64_t>(os, s.settle_us);
  put<std::int64_t>(os, s.heartbeat_period_us);
  put<std::int64_t>(os, s.t_restart_us);
  put<double>(os, s.timer_scale);
  put<std::uint8_t>(os, b.audit ? 1 : 0);
  put<double>(os, b.audit_slack);
  put<std::int64_t>(os, b.audit_window_us);
  put_str(os, s.slo_spec);
  put_str(os, b.slo_state_json);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(b.slo_exemplars.size()));
  for (const SloExemplar& e : b.slo_exemplars) {
    put<std::uint8_t>(os, e.cls);
    put<std::uint32_t>(os, e.op);
    put<std::int64_t>(os, e.t_us);
    put<std::int64_t>(os, e.latency_ns);
    put<std::int64_t>(os, e.distance);
  }
  put_str(os, b.config_json);
  put_str(os, b.metrics_json);
  put<std::uint64_t>(os, static_cast<std::uint64_t>(b.ring.size()));
  os.write(reinterpret_cast<const char*>(b.ring.data()),
           static_cast<std::streamsize>(b.ring.size() * sizeof(TraceEvent)));
  os.write(kEndMagic, sizeof kEndMagic);
}

void write_incident_file(const std::string& path, const IncidentBundle& b) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  VS_REQUIRE(os.good(), "cannot open incident file for writing: " << path);
  write_incident(os, b);
  VS_REQUIRE(os.good(), "write failed for incident file: " << path);
}

IncidentBundle read_incident(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof magic);
  VS_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof magic) == 0,
             "not an incident file (bad magic; expected VSINCID1)");
  const auto version = get<std::uint32_t>(is);
  VS_REQUIRE(version >= 1 && version <= kIncidentFormatVersion,
             "unsupported incident format version "
                 << version << " (this build reads v1..v"
                 << kIncidentFormatVersion << ")");
  IncidentBundle b;
  b.source = get_str(is);
  b.target = get<std::int32_t>(is);
  b.violation.predicate = get_str(is);
  b.violation.detail = get_str(is);
  b.violation.time_us = get<std::int64_t>(is);
  b.violation.cluster = get<std::int32_t>(is);
  b.violation.level = get<std::int32_t>(is);
  b.mode = static_cast<WatchMode>(get<std::uint8_t>(is));
  b.cadence_us = get<std::int64_t>(is);
  b.ring_capacity = get<std::uint64_t>(is);
  ScenarioSpec& s = b.scenario;
  s.side = get<std::int32_t>(is);
  s.base = get<std::int32_t>(is);
  s.lateral_links = get<std::uint8_t>(is) != 0;
  s.model_vsa_failures = get<std::uint8_t>(is) != 0;
  s.replayable_flag = get<std::uint8_t>(is) != 0;
  s.clients_per_region = get<std::int32_t>(is);
  s.start_region = get<std::int32_t>(is);
  s.seed = get<std::uint64_t>(is);
  s.steps = get<std::int32_t>(is);
  const auto ncorr = get<std::uint32_t>(is);
  VS_REQUIRE(ncorr <= kMaxCorruptions,
             "corrupt incident stream: implausible corruption count "
                 << ncorr);
  s.corruptions.resize(ncorr);
  for (auto& c : s.corruptions) {
    c.cluster = get<std::int32_t>(is);
    c.c = get<std::int32_t>(is);
    c.p = get<std::int32_t>(is);
    c.nbrptup = get<std::int32_t>(is);
    c.nbrptdown = get<std::int32_t>(is);
  }
  if (version >= 2) {
    s.fault_plan = get_str(is);
    s.step_every_us = get<std::int64_t>(is);
    s.settle_us = get<std::int64_t>(is);
    s.heartbeat_period_us = get<std::int64_t>(is);
    s.t_restart_us = get<std::int64_t>(is);
  }
  if (version >= 3) {
    s.timer_scale = get<double>(is);
    b.audit = get<std::uint8_t>(is) != 0;
    b.audit_slack = get<double>(is);
  }
  if (version >= 4) {
    b.audit_window_us = get<std::int64_t>(is);
  }
  if (version >= 5) {
    s.slo_spec = get_str(is);
    b.slo_state_json = get_str(is);
    const auto nex = get<std::uint32_t>(is);
    VS_REQUIRE(nex <= kMaxExemplars,
               "corrupt incident stream: implausible exemplar count " << nex);
    b.slo_exemplars.resize(nex);
    for (SloExemplar& e : b.slo_exemplars) {
      e.cls = get<std::uint8_t>(is);
      e.op = get<std::uint32_t>(is);
      e.t_us = get<std::int64_t>(is);
      e.latency_ns = get<std::int64_t>(is);
      e.distance = get<std::int64_t>(is);
    }
  }
  b.config_json = get_str(is);
  b.metrics_json = get_str(is);
  const auto nring = get<std::uint64_t>(is);
  VS_REQUIRE(nring <= kMaxRing,
             "corrupt incident stream: implausible ring size " << nring);
  b.ring.resize(nring);
  const std::size_t record_size =
      version >= 3 ? sizeof(TraceEvent) : sizeof(LegacyEvent56);
  const auto ring_bytes = static_cast<std::streamsize>(nring * record_size);
  if (version >= 3) {
    is.read(reinterpret_cast<char*>(b.ring.data()), ring_bytes);
  } else {
    std::vector<LegacyEvent56> legacy(nring);
    is.read(reinterpret_cast<char*>(legacy.data()), ring_bytes);
    for (std::size_t i = 0; i < nring; ++i) {
      const LegacyEvent56& l = legacy[i];
      b.ring[i] = TraceEvent{.time_us = l.time_us,
                             .seq = l.seq,
                             .cause = l.cause,
                             .find = l.find,
                             .a = l.a,
                             .b = l.b,
                             .target = l.target,
                             .arg = l.arg,
                             .level = l.level,
                             .kind = l.kind,
                             .msg = l.msg,
                             .extra = l.extra,
                             .op = 0,
                             .pad0 = 0};
    }
  }
  VS_REQUIRE(is.gcount() == ring_bytes,
             "truncated incident stream: ring declares "
                 << nring << " events but the file ends early");
  char end[8] = {};
  is.read(end, sizeof end);
  VS_REQUIRE(is.gcount() == static_cast<std::streamsize>(sizeof end) &&
                 std::memcmp(end, kEndMagic, sizeof end) == 0,
             "truncated incident stream: missing VSINCEND trailer "
                 "(file cut short or overwritten mid-write?)");
  return b;
}

IncidentBundle read_incident_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  VS_REQUIRE(is.good(), "cannot open incident file: " << path);
  return read_incident(is);
}

void print_incident(std::ostream& os, const IncidentBundle& b,
                    std::size_t ring_tail) {
  os << "incident: " << b.violation.predicate << "\n"
     << "  source       " << b.source << "\n"
     << "  target       " << b.target << "\n"
     << "  at           " << b.violation.time_us << "us\n";
  if (b.violation.cluster >= 0) {
    os << "  cluster      " << b.violation.cluster << " (level "
       << b.violation.level << ")\n";
  }
  os << "  watch mode   " << to_string(b.mode);
  if (b.mode == WatchMode::kCadence) os << " every " << b.cadence_us << "us";
  os << "\n  detail:\n";
  // Indent the (possibly multi-line) diagnostic.
  std::size_t pos = 0;
  while (pos < b.violation.detail.size()) {
    auto nl = b.violation.detail.find('\n', pos);
    if (nl == std::string::npos) nl = b.violation.detail.size();
    os << "    " << b.violation.detail.substr(pos, nl - pos) << "\n";
    pos = nl + 1;
  }
  const ScenarioSpec& s = b.scenario;
  os << "  scenario     ";
  if (s.side > 0) {
    os << s.side << "x" << s.side << " base " << s.base
       << (s.lateral_links ? "" : " no-lateral")
       << (s.model_vsa_failures ? " vsa-failures" : "") << ", start region "
       << s.start_region << ", " << s.steps << " walk steps (seed " << s.seed
       << "), " << s.corruptions.size() << " corruption(s)";
  } else {
    os << "(unknown world)";
  }
  os << (s.replayable() ? " [replayable]" : " [not replayable]") << "\n";
  if (s.step_every_us > 0 || s.settle_us > 0 || s.heartbeat_period_us > 0) {
    os << "    pacing: step " << s.step_every_us << "us, settle "
       << s.settle_us << "us, heartbeat period " << s.heartbeat_period_us
       << "us";
    if (s.t_restart_us > 0) os << ", t_restart " << s.t_restart_us << "us";
    os << "\n";
  }
  if (s.timer_scale != 1.0) {
    os << "    timer scale: " << s.timer_scale << "x paper-default\n";
  }
  if (b.audit) {
    os << "    auditor: on (slack " << b.audit_slack << "x";
    if (b.audit_window_us > 0) {
      os << ", sliding window " << b.audit_window_us << "us";
    }
    os << ")\n";
  }
  if (!s.fault_plan.empty()) {
    os << "    fault plan:\n";
    std::size_t fp = 0;
    while (fp < s.fault_plan.size()) {
      auto nl = s.fault_plan.find('\n', fp);
      if (nl == std::string::npos) nl = s.fault_plan.size();
      os << "      " << s.fault_plan.substr(fp, nl - fp) << "\n";
      fp = nl + 1;
    }
  }
  for (const auto& c : s.corruptions) {
    os << "    corrupt cluster " << c.cluster << ": c=" << c.c
       << " p=" << c.p << " nbrptup=" << c.nbrptup
       << " nbrptdown=" << c.nbrptdown << "\n";
  }
  if (!s.slo_spec.empty()) {
    os << "  slo spec:\n";
    std::size_t sp = 0;
    while (sp < s.slo_spec.size()) {
      auto nl = s.slo_spec.find('\n', sp);
      if (nl == std::string::npos) nl = s.slo_spec.size();
      os << "    " << s.slo_spec.substr(sp, nl - sp) << "\n";
      sp = nl + 1;
    }
  }
  if (!b.slo_state_json.empty()) {
    os << "  slo windows  " << b.slo_state_json << "\n";
  }
  if (!b.slo_exemplars.empty()) {
    os << "  slo exemplars (slowest first):\n";
    for (const SloExemplar& e : b.slo_exemplars) {
      os << "    t=" << e.t_us << "us " << e.latency_ns << "ns";
      if (e.op != 0) {
        os << " " << op_name(e.op) << " d=" << e.distance;
      }
      os << "\n";
    }
  }
  if (!b.config_json.empty()) os << "  config       " << b.config_json << "\n";
  os << "  flight recorder: " << b.ring.size() << " event(s) (capacity "
     << b.ring_capacity << ")\n";
  const std::size_t start =
      b.ring.size() > ring_tail ? b.ring.size() - ring_tail : 0;
  if (start > 0) os << "    ... " << start << " earlier event(s)\n";
  for (std::size_t i = start; i < b.ring.size(); ++i) {
    os << "    " << format_event(b.ring[i]) << "\n";
  }
}

}  // namespace vs::obs
