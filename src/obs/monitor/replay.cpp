#include "obs/monitor/replay.hpp"

#include <memory>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ext/stabilizer.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "hier/grid_hierarchy.hpp"
#include "tracking/network.hpp"
#include "tracking/snapshot.hpp"

namespace vs::obs {

ScenarioOutcome run_scenario(const ScenarioSpec& s, const WatchdogConfig& cfg) {
  ScenarioOutcome out;
  if (!s.replayable()) {
    out.message =
        s.replayable_flag
            ? "scenario is incomplete (no world shape or start region "
              "recorded) — cannot replay"
            : "scenario was captured from a session outside the canonical "
              "walk shape (manual moves?) — cannot replay";
    return out;
  }
  hier::GridHierarchy hierarchy(s.side, s.side, s.base);
  tracking::NetworkConfig net_cfg;
  net_cfg.lateral_links = s.lateral_links;
  net_cfg.model_vsa_failures = s.model_vsa_failures;
  net_cfg.clients_per_region = s.clients_per_region;
  if (s.t_restart_us > 0) {
    net_cfg.t_restart = sim::Duration::micros(s.t_restart_us);
  }
  if (s.timer_scale != 1.0) {
    // κ × the paper-default policy. Scaling g and s together by κ ≥ 1
    // multiplies inequality (1)'s left side by κ, so the protocol still
    // behaves — but the run's per-step time inflates by κ, which an
    // auditing watchdog judges against the canonical κ = 1 bounds. This
    // is how over-bound incidents are seeded and replayed.
    VS_REQUIRE(s.timer_scale >= 1.0,
               "scenario timer_scale must be >= 1 (inequality (1))");
    net_cfg.timers = tracking::scaled_paper_default(hierarchy, net_cfg.cgcast,
                                                    s.timer_scale);
  }
  tracking::TrackingNetwork net(hierarchy, net_cfg);

  std::unique_ptr<fault::FaultInjector> inj;
  bool inj_armed = false;
  if (!s.fault_plan.empty()) {
    try {
      inj = std::make_unique<fault::FaultInjector>(
          net, fault::FaultPlan::parse(s.fault_plan));
    } catch (const vs::Error& e) {
      out.message = std::string("scenario fault plan rejected: ") + e.what();
      return out;
    }
    // A windows-only plan (channel faults, no discrete events) arms before
    // the target is placed: its windows are pure now()-predicates, so the
    // initial detection traffic is exposed to them — the capturing drivers
    // do the same. Plans with discrete events must arm after the placement
    // drain (their pending timers would otherwise be fast-forwarded
    // through by run_to_quiescence).
    const fault::FaultPlan& p = inj->plan();
    if (p.crashes.empty() && p.outages.empty() && p.depopulations.empty()) {
      inj->arm();
      inj_armed = true;
    }
  }

  const TargetId target = net.add_evader(RegionId{s.start_region});
  net.run_to_quiescence();

  Watchdog wd(net, target, cfg, s);

  // Canonical attach order — watchdog, then injector, then stabilizer —
  // so captured and replayed runs schedule the same events in the same
  // order (byte-identical bundles at any --jobs value).
  if (inj && !inj_armed) inj->arm();
  if (inj) {
    // Read the deadline only after arm(): outage blast zones resolve there.
    if (const auto deadline = inj->recovery_deadline()) {
      wd.arm_recovery_deadline(*deadline);
    }
  }
  std::unique_ptr<ext::Stabilizer> stab;
  if (s.heartbeat_period_us > 0) {
    stab = std::make_unique<ext::Stabilizer>(
        net, target, sim::Duration::micros(s.heartbeat_period_us));
    stab->start();
  }

  // The walk must step exactly like tests/bench random_walk: one Rng from
  // the seed, one uniform_int per step over the current neighbour list.
  // Legacy (v1) scenarios stop early once a violation is captured; timed
  // and fault-plan scenarios must run the full span — the plan's events
  // are anchored to absolute virtual times and a transiently-damaged
  // structure is expected to be inconsistent mid-run.
  const bool legacy = s.fault_plan.empty() && s.step_every_us == 0;
  Rng rng{s.seed};
  RegionId cur{s.start_region};
  const geo::Tiling& tiling = hierarchy.tiling();
  for (std::int32_t i = 0; i < s.steps && (!legacy || wd.ok()); ++i) {
    const auto nbrs = tiling.neighbors(cur);
    cur = nbrs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nbrs.size()) - 1))];
    if (s.step_every_us > 0) {
      net.move_evader(target, cur);
      net.run_for(sim::Duration::micros(s.step_every_us));
    } else {
      net.move_and_quiesce(target, cur);
    }
  }

  // Post-walk settle: virtual time for heartbeat repairs to converge (and
  // for the recovery deadline to come due) before the final drain.
  if (s.settle_us > 0) net.run_for(sim::Duration::micros(s.settle_us));
  if (stab) stab->stop();
  net.run_to_quiescence();

  // Non-legacy shapes get a full check right after the drain: it judges
  // the settled structure and evaluates a pending recovery deadline on the
  // healed state, before any injected corruptions land.
  if (!legacy) wd.check_now();

  for (const ScenarioSpec::Corruption& c : s.corruptions) {
    tracking::TrackerSnapshot forced;
    forced.clust = ClusterId{c.cluster};
    forced.c = ClusterId{c.c};
    forced.p = ClusterId{c.p};
    forced.nbrptup = ClusterId{c.nbrptup};
    forced.nbrptdown = ClusterId{c.nbrptdown};
    net.tracker(ClusterId{c.cluster}).corrupt_state(target, forced);
  }
  if (!s.corruptions.empty()) wd.check_now();

  out.ran = true;
  out.incidents = wd.incidents();
  out.violations_seen = wd.violations_seen();
  out.recovery_armed = inj && inj->recovery_deadline().has_value();
  out.recovery_met = wd.recovery_deadline_met();
  std::ostringstream msg;
  msg << "replayed " << s.steps << "-step walk + " << s.corruptions.size()
      << " corruption(s): " << out.violations_seen << " violation(s), "
      << out.incidents.size() << " incident(s)";
  if (out.recovery_armed) {
    msg << "; recovery deadline "
        << (out.recovery_met ? "met" : "missed");
  }
  out.message = msg.str();
  return out;
}

ReplayResult replay_incident(const IncidentBundle& bundle) {
  ReplayResult res;
  WatchdogConfig cfg;
  cfg.mode = bundle.mode == WatchMode::kOff ? WatchMode::kCadence
                                            : bundle.mode;
  cfg.cadence = sim::Duration::micros(
      bundle.cadence_us > 0 ? bundle.cadence_us : 10'000);
  cfg.ring_capacity = static_cast<std::size_t>(bundle.ring_capacity);
  cfg.source = bundle.source;
  cfg.audit = bundle.audit;
  cfg.audit_slack = bundle.audit_slack;
  cfg.audit_window = sim::Duration::micros(bundle.audit_window_us);
  res.outcome = run_scenario(bundle.scenario, cfg);
  res.ran = res.outcome.ran;
  if (!res.ran) {
    res.message = res.outcome.message;
    return res;
  }
  for (const IncidentBundle& got : res.outcome.incidents) {
    if (got.violation.predicate != bundle.violation.predicate) continue;
    res.reproduced = true;
    res.exact = got.violation.time_us == bundle.violation.time_us &&
                got.violation.cluster == bundle.violation.cluster &&
                got.violation.level == bundle.violation.level;
    std::ostringstream msg;
    msg << "reproduced " << bundle.violation.predicate << " at "
        << got.violation.time_us << "us";
    if (res.exact) {
      msg << " (exact: same time, cluster " << got.violation.cluster
          << ", level " << got.violation.level << ")";
    } else {
      msg << " (original was at " << bundle.violation.time_us
          << "us, cluster " << bundle.violation.cluster << ")";
    }
    res.message = msg.str();
    return res;
  }
  std::ostringstream msg;
  msg << "replay did NOT reproduce " << bundle.violation.predicate << " ("
      << res.outcome.message << ")";
  res.message = msg.str();
  return res;
}

}  // namespace vs::obs
