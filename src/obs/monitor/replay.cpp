#include "obs/monitor/replay.hpp"

#include <sstream>

#include "common/rng.hpp"
#include "hier/grid_hierarchy.hpp"
#include "tracking/network.hpp"
#include "tracking/snapshot.hpp"

namespace vs::obs {

ScenarioOutcome run_scenario(const ScenarioSpec& s, const WatchdogConfig& cfg) {
  ScenarioOutcome out;
  if (!s.replayable()) {
    out.message =
        s.replayable_flag
            ? "scenario is incomplete (no world shape or start region "
              "recorded) — cannot replay"
            : "scenario was captured from a session outside the canonical "
              "walk shape (manual moves?) — cannot replay";
    return out;
  }
  hier::GridHierarchy hierarchy(s.side, s.side, s.base);
  tracking::NetworkConfig net_cfg;
  net_cfg.lateral_links = s.lateral_links;
  net_cfg.model_vsa_failures = s.model_vsa_failures;
  net_cfg.clients_per_region = s.clients_per_region;
  tracking::TrackingNetwork net(hierarchy, net_cfg);

  const TargetId target = net.add_evader(RegionId{s.start_region});
  net.run_to_quiescence();

  Watchdog wd(net, target, cfg, s);

  // The walk must step exactly like tests/bench random_walk: one Rng from
  // the seed, one uniform_int per step over the current neighbour list.
  Rng rng{s.seed};
  RegionId cur{s.start_region};
  const geo::Tiling& tiling = hierarchy.tiling();
  for (std::int32_t i = 0; i < s.steps && wd.ok(); ++i) {
    const auto nbrs = tiling.neighbors(cur);
    cur = nbrs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nbrs.size()) - 1))];
    net.move_and_quiesce(target, cur);
  }

  for (const ScenarioSpec::Corruption& c : s.corruptions) {
    tracking::TrackerSnapshot forced;
    forced.clust = ClusterId{c.cluster};
    forced.c = ClusterId{c.c};
    forced.p = ClusterId{c.p};
    forced.nbrptup = ClusterId{c.nbrptup};
    forced.nbrptdown = ClusterId{c.nbrptdown};
    net.tracker(ClusterId{c.cluster}).corrupt_state(target, forced);
  }
  if (!s.corruptions.empty()) wd.check_now();

  out.ran = true;
  out.incidents = wd.incidents();
  out.violations_seen = wd.violations_seen();
  std::ostringstream msg;
  msg << "replayed " << s.steps << "-step walk + " << s.corruptions.size()
      << " corruption(s): " << out.violations_seen << " violation(s), "
      << out.incidents.size() << " incident(s)";
  out.message = msg.str();
  return out;
}

ReplayResult replay_incident(const IncidentBundle& bundle) {
  ReplayResult res;
  WatchdogConfig cfg;
  cfg.mode = bundle.mode == WatchMode::kOff ? WatchMode::kCadence
                                            : bundle.mode;
  cfg.cadence = sim::Duration::micros(
      bundle.cadence_us > 0 ? bundle.cadence_us : 10'000);
  cfg.ring_capacity = static_cast<std::size_t>(bundle.ring_capacity);
  cfg.source = bundle.source;
  res.outcome = run_scenario(bundle.scenario, cfg);
  res.ran = res.outcome.ran;
  if (!res.ran) {
    res.message = res.outcome.message;
    return res;
  }
  for (const IncidentBundle& got : res.outcome.incidents) {
    if (got.violation.predicate != bundle.violation.predicate) continue;
    res.reproduced = true;
    res.exact = got.violation.time_us == bundle.violation.time_us &&
                got.violation.cluster == bundle.violation.cluster &&
                got.violation.level == bundle.violation.level;
    std::ostringstream msg;
    msg << "reproduced " << bundle.violation.predicate << " at "
        << got.violation.time_us << "us";
    if (res.exact) {
      msg << " (exact: same time, cluster " << got.violation.cluster
          << ", level " << got.violation.level << ")";
    } else {
      msg << " (original was at " << bundle.violation.time_us
          << "us, cluster " << bundle.violation.cluster << ")";
    }
    res.message = msg.str();
    return res;
  }
  std::ostringstream msg;
  msg << "replay did NOT reproduce " << bundle.violation.predicate << " ("
      << res.outcome.message << ")";
  res.message = msg.str();
  return res;
}

}  // namespace vs::obs
