#include "obs/monitor/watchdog.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "spec/consistency.hpp"
#include "spec/look_ahead.hpp"

namespace vs::obs {

namespace {

/// Stable machine name for an InvariantMonitor diagnostic (replay matches
/// incidents on this, so it must not embed run-specific values).
std::string predicate_of(const std::string& msg) {
  if (msg.rfind("Lemma 4.1", 0) == 0) {
    return msg.find("shrink") != std::string::npos ? "lemma-4.1-shrink"
                                                   : "lemma-4.1-grow";
  }
  if (msg.rfind("Lemma 4.2", 0) == 0) return "lemma-4.2";
  if (msg.rfind("Lemma 4.3", 0) == 0) return "lemma-4.3";
  return "invariant";
}

std::string describe_config(const tracking::TrackingNetwork& net) {
  const auto& h = net.hierarchy();
  const auto& c = net.config();
  std::ostringstream os;
  os << "{\"regions\": " << h.tiling().num_regions()
     << ", \"clusters\": " << h.num_clusters()
     << ", \"max_level\": " << h.max_level()
     << ", \"lateral_links\": " << (c.lateral_links ? "true" : "false")
     << ", \"model_vsa_failures\": "
     << (c.model_vsa_failures ? "true" : "false")
     << ", \"clients_per_region\": " << c.clients_per_region
     << ", \"head_replicas\": " << c.head_replicas << "}";
  return os.str();
}

}  // namespace

Watchdog::Watchdog(tracking::TrackingNetwork& net, TargetId target,
                   WatchdogConfig config, ScenarioSpec scenario)
    : net_(&net),
      target_(target),
      cfg_(std::move(config)),
      scenario_(std::move(scenario)),
      shadow_(net.hierarchy(), net.config().lateral_links) {
  VS_REQUIRE(cfg_.mode != WatchMode::kOff,
             "Watchdog constructed with mode off — don't construct one");
  // The watchdog owns the every-change hook (rather than letting the
  // monitor install its own) so per-change lemma scans can be gated on the
  // atomic-domain flag: once moves overlap, mid-flight multi-front states
  // are legal and only the quiescence-edge checks remain sound.
  monitor_ = std::make_unique<spec::InvariantMonitor>(
      net, target, /*check_every_change=*/false);
  monitor_->set_violation_hook(
      [this](const std::string& msg, ClusterId cluster, Level level) {
        on_violation(predicate_of(msg), msg, cluster.value(), level);
      });
  if (cfg_.mode == WatchMode::kEveryChange) {
    net.set_state_change_hook([this](ClusterId, TargetId t) {
      if (t != target_ || !atomic_so_far_ || in_check_) return;
      in_check_ = true;
      ++checks_run_;
      monitor_->check_now();
      in_check_ = false;
    });
  }
  net.set_move_observer(
      [this](TargetId t, RegionId from, RegionId to, bool quiescent) {
        on_move(t, from, to, quiescent);
      });
  // Flight recorder: take over the recorder only if nobody is already
  // tracing (a full-trace run keeps its unbounded log and still gets its
  // events into incidents — events() works in either mode). With tracing
  // compiled out the ring stays empty; bundles then carry no events. The
  // destructor undoes the take-over, so a later full-trace run on the same
  // world is not silently capped at the ring size.
  if (cfg_.ring_capacity > 0 && !net.trace().enabled()) {
    owns_recorder_ = true;
    prev_ring_capacity_ = net.trace().ring_capacity();
    net.trace().set_ring_capacity(cfg_.ring_capacity);
    net.set_tracing(true);
  }
  // If the target already exists (attached after add_evader), arm the
  // shadow from its current region — valid while the world is quiescent.
  if (net.scheduler().pending() == 0) {
    // region_of throws for unknown targets; treat that as "not placed yet"
    // (the move observer will init the shadow on placement).
    try {
      const RegionId where = net.evaders().region_of(target);
      shadow_.init(where);
      shadow_live_ = true;
      // Arm the Theorem 4.8 comparison only if the live structure already
      // matches the canonical state for `where`. Attaching after an
      // unobserved history (repair traffic, residual lateral pointers)
      // would otherwise diff that residue against a from-scratch shadow.
      try {
        const spec::IdealState ideal = spec::look_ahead(
            net.snapshot(target), net.config().lateral_links);
        if (!spec::equal_states(ideal, shadow_.state())) {
          atomic_so_far_ = false;
          monitor_->set_live_checks(false);
        }
      } catch (const vs::Error&) {
        atomic_so_far_ = false;  // outside lookAhead's domain already
        monitor_->set_live_checks(false);
      }
    } catch (const vs::Error&) {
      shadow_live_ = false;
    }
  } else {
    atomic_so_far_ = false;  // attached mid-flight: unknown move history
    monitor_->set_live_checks(false);
  }
  // Live bound auditing: own a ledger, hand it to the network, judge it
  // at quiescent full checks. The auditor always judges against the
  // *canonical* paper-default timer policy — a run driven with scaled
  // timers (ScenarioSpec::timer_scale) still obeys inequality (1), but
  // its cost must answer to what the paper promises.
  if (cfg_.audit && kTraceCompiled) {
    ledger_.set_enabled(true);
    auditor_ = std::make_unique<BoundAuditor>(
        net.hierarchy(),
        AuditConfig{
            .slack = cfg_.audit_slack,
            .delta_plus_e = net.config().cgcast.delta + net.config().cgcast.e,
            .timers = tracking::TimerPolicy::paper_default(net.hierarchy(),
                                                           net.config().cgcast),
        });
    net.set_op_ledger(&ledger_);
  }
  next_due_ = net.now() + cfg_.cadence;
  net.scheduler().set_post_step_hook(&Watchdog::post_step_thunk, this);
}

Watchdog::~Watchdog() {
  if (net_ == nullptr) return;
  if (auditor_ != nullptr) net_->set_op_ledger(nullptr);
  net_->scheduler().set_post_step_hook(nullptr, nullptr);
  net_->set_move_observer({});
  if (cfg_.mode == WatchMode::kEveryChange) net_->set_state_change_hook({});
  if (owns_recorder_) {
    // Tracing was off when the constructor took the recorder over (the
    // take-over condition), so off + the prior capacity is the pre-attach
    // state. set_ring_capacity(0) returns to unbounded mode.
    net_->set_tracing(false);
    net_->trace().set_ring_capacity(prev_ring_capacity_);
  }
  // monitor_ (destroyed after this body) detaches its own send observer.
}

void Watchdog::on_move(TargetId t, RegionId from, RegionId to,
                       bool quiescent_at_issue) {
  if (t != target_) return;
  monitor_->on_move();
  if (!from.valid()) {
    // Initial placement: atomicMoveSeq's init(cluster(start, 0)).
    if (!shadow_live_) {
      shadow_.init(to);
      shadow_live_ = true;
    }
    return;
  }
  if (!atomic_so_far_ || !shadow_live_) return;
  if (!quiescent_at_issue) {
    // A move issued before the previous one's updates drained: outside
    // Theorem 4.8's atomic domain from here on. Mid-flight lemma checks
    // stop (multi-front states are now legal); quiescence-edge checks and
    // the consistency predicate stay armed.
    atomic_so_far_ = false;
    monitor_->set_live_checks(false);
    return;
  }
  try {
    shadow_.apply_move(to);
  } catch (const vs::Error&) {
    atomic_so_far_ = false;  // teleport or other out-of-spec relocation
  }
}

void Watchdog::post_step() {
  if (in_check_) return;
  const bool quiescent = net_->scheduler().pending() == 0;
  if (cfg_.mode == WatchMode::kEveryChange) {
    // Per-change lemma checks already ran via the state-change hook; the
    // expensive tier runs at every quiescence edge.
    if (quiescent) full_check();
    return;
  }
  const sim::TimePoint now = net_->now();
  if (now < next_due_) return;
  if (quiescent) {
    full_check();
  } else if (atomic_so_far_) {
    // Lemma tier only: mid-flight state between atomic moves is exactly
    // what Lemmas 4.1–4.3 constrain. Outside the atomic domain a
    // mid-flight scan would count legal concurrent fronts, so it waits
    // for the next quiescence edge instead.
    in_check_ = true;
    ++checks_run_;
    monitor_->check_now();
    in_check_ = false;
  }
  next_due_ = now + cfg_.cadence;
}

void Watchdog::check_now() { full_check(); }

void Watchdog::arm_recovery_deadline(sim::TimePoint deadline) {
  VS_REQUIRE(!deadline.is_never(), "recovery deadline must be a real instant");
  recovery_deadline_ = deadline;
  recovery_met_ = false;
}

void Watchdog::yield_recorder() {
  if (!owns_recorder_) return;
  owns_recorder_ = false;
  net_->trace().set_ring_capacity(prev_ring_capacity_);
}

void Watchdog::full_check() {
  in_check_ = true;
  ++checks_run_;
  const bool quiescent = net_->scheduler().pending() == 0;
  // The lemma scan is sound mid-flight only inside the atomic domain; at
  // quiescence it is sound for any legal execution (a drained structure
  // has no open fronts).
  if (quiescent || atomic_so_far_) monitor_->check_now();
  const tracking::SystemSnapshot snap = net_->snapshot(target_);
  RegionId where{};
  try {
    where = net_->evaders().region_of(target_);
  } catch (const vs::Error&) {
    in_check_ = false;
    return;  // target not placed yet: nothing to judge
  }
  if (quiescent) {
    // §IV-C consistency is a property of quiescent states (Theorem 4.5);
    // mid-flight structures legally have open fronts.
    const spec::ConsistencyReport rep = spec::check_consistent(snap, where);
    if (!rep.ok()) {
      on_violation("consistent-state", rep.to_string(), -1, -1);
    }
    if (!recovery_deadline_.is_never() && net_->now() >= recovery_deadline_) {
      if (rep.ok()) {
        recovery_met_ = true;
      } else {
        std::ostringstream detail;
        detail << "consistent state not restored by the recovery deadline "
               << recovery_deadline_ << " (now " << net_->now()
               << "); residual damage:\n"
               << rep.to_string();
        on_violation("recovery-deadline", detail.str(), -1, -1);
      }
      recovery_deadline_ = sim::TimePoint::never();  // evaluated once
    }
  }
  // Whole-ledger audits only make sense quiescent (open operations would
  // be judged on partial cost); a sliding window judges only completed
  // history, so it runs at every check — that is what makes an over-bound
  // window fire mid-run instead of at teardown.
  if (auditor_ != nullptr &&
      (quiescent || cfg_.audit_window > sim::Duration::zero())) {
    audit_check();
  }
  if (atomic_so_far_ && shadow_live_ && quiescent) {
    try {
      const spec::IdealState ideal =
          spec::look_ahead(snap, net_->config().lateral_links);
      if (!spec::equal_states(ideal, shadow_.state())) {
        on_violation("lookahead-agreement",
                     "lookAhead(live state) != atomicMoveSeq(move history) "
                     "(Theorem 4.8):\n" +
                         spec::diff_states(ideal, shadow_.state()),
                     -1, -1);
      }
    } catch (const vs::Error&) {
      // Outside lookAhead's domain (>1 front). The lemma check above has
      // already recorded the underlying violation; don't double-report.
    }
  }
  in_check_ = false;
}

AuditReport Watchdog::audit_now() const {
  VS_REQUIRE(auditor_ != nullptr,
             "audit_now requires a watchdog with cfg.audit (and tracing "
             "compiled in)");
  return auditor_->audit(ledger_);
}

void Watchdog::audit_check() {
  const AuditReport report = auditor_->audit_window(
      ledger_, net_->now().count(), cfg_.audit_window);
  for (const AuditViolation& v : report.violations) {
    const std::string key = v.predicate + "#" + std::to_string(v.index);
    if (std::find(audit_reported_.begin(), audit_reported_.end(), key) !=
        audit_reported_.end()) {
      continue;  // already raised for this operation
    }
    audit_reported_.push_back(key);
    on_violation(v.predicate, v.detail, -1, -1);
  }
}

void Watchdog::on_violation(std::string predicate, std::string detail,
                            std::int32_t cluster, std::int32_t level) {
  ++violations_seen_;
  for (const IncidentBundle& b : incidents_) {
    if (b.violation.predicate == predicate) return;  // dedupe per predicate
  }
  if (incidents_.size() >= cfg_.max_incidents) return;
  IncidentBundle b;
  b.source = cfg_.source;
  b.target = target_.value();
  b.violation.predicate = std::move(predicate);
  b.violation.detail = std::move(detail);
  b.violation.time_us = net_->now().count();
  b.violation.cluster = cluster;
  b.violation.level = level;
  b.mode = cfg_.mode;
  b.cadence_us = cfg_.cadence.count();
  b.ring_capacity = cfg_.ring_capacity;
  b.audit = cfg_.audit;
  b.audit_slack = cfg_.audit_slack;
  b.audit_window_us = cfg_.audit_window.count();
  b.scenario = scenario_;
  b.config_json = describe_config(*net_);
  std::ostringstream metrics;
  net_->export_metrics().to_json(metrics);
  b.metrics_json = metrics.str();
  b.ring = net_->trace().events();
  incidents_.push_back(std::move(b));
  if (sink_) sink_(incidents_.back());
}

WatchdogConfig parse_watch_spec(const std::string& spec) {
  WatchdogConfig cfg;
  if (spec.empty() || spec == "cadence") return cfg;
  if (spec == "every" || spec == "every-change") {
    cfg.mode = WatchMode::kEveryChange;
    return cfg;
  }
  std::int64_t us = 0;
  std::size_t consumed = 0;
  try {
    us = std::stoll(spec, &consumed);
  } catch (...) {
    consumed = 0;
  }
  // The whole spec must parse: stoll alone would accept "50ms" as 50 — a
  // cadence ~1000x hotter than the user asked for.
  VS_REQUIRE(consumed == spec.size() && us > 0,
             "bad monitor spec '"
                 << spec
                 << "' (want 'every' or a cadence in microseconds)");
  cfg.cadence = sim::Duration::micros(us);
  return cfg;
}

}  // namespace vs::obs
