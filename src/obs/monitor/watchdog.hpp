#pragma once
// Live invariant watchdog — the spec checks, attached to a running world.
//
// The spec module (src/spec) can already judge a TrackingNetwork offline;
// the Watchdog turns those judges into an online monitor with a bounded
// flight recorder. It hooks three existing observation points:
//
//  * the scheduler's post-step hook — the virtual-clock source driving
//    cadence checks and quiescence detection (no events are scheduled, so
//    watching never perturbs quiescence, Theorem 4.5);
//  * a spec::InvariantMonitor — Lemma 4.1/4.2/4.3 on sends and (in
//    every-change mode) on each pointer-state change;
//  * the network's trace recorder, switched to ring mode — a fixed-size
//    flight recorder of the last K TraceEvents, allocated once.
//
// Check tiers, by mode:
//  * kCadence: every `cadence` of virtual time, run the lemma scan; when
//    the world is also quiescent, additionally check the consistent-state
//    predicate (§IV-C) and lookAhead agreement with an atomicMoveSeq
//    shadow (Theorem 4.8). Cost is O(#clusters) per boundary — amortised
//    to near-zero against the event work between boundaries.
//  * kEveryChange: the lemma scan on *every* pointer-state change and the
//    full tier at every quiescence edge. O(#clusters) per change —
//    test-sized worlds only.
//  * kOff: don't construct a Watchdog. The residual cost in the hot path
//    is the scheduler's null function-pointer test (measured by
//    bench_micro's watchdog section: ≤ the noise floor).
//
// The lookAhead shadow only judges executions inside Theorem 4.8's domain:
// moves issued at quiescence (atomic moves). The move observer watches for
// a move injected while events are still pending and permanently disables
// the shadow comparison for that run — lemma and consistency checks remain
// active. Teleporting the evader (non-neighbour move) likewise disables it.
//
// On violation the watchdog captures an IncidentBundle (one per distinct
// predicate, capped at max_incidents) and hands it to the sink, if any.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "obs/ledger/auditor.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/monitor/incident.hpp"
#include "sim/time.hpp"
#include "spec/atomic_spec.hpp"
#include "spec/invariants.hpp"
#include "tracking/network.hpp"

namespace vs::obs {

struct WatchdogConfig {
  WatchMode mode = WatchMode::kCadence;
  /// Virtual-time interval between checks (kCadence only).
  sim::Duration cadence = sim::Duration::millis(10);
  /// Flight-recorder size (last K events). 0 keeps the recorder's current
  /// storage mode (e.g. a full-trace run that wants monitoring too).
  std::size_t ring_capacity = 1024;
  /// Distinct-predicate incident cap; later violations are counted but
  /// not captured.
  std::size_t max_incidents = 4;
  /// Recorded into bundles as the `source` field.
  std::string source = "watchdog";
  /// Live theorem-bound auditing: attach an OpLedger to the network and,
  /// at every quiescent full check, judge completed operations against
  /// the Theorem 4.9 / 5.2 bounds (BoundAuditor). An over-bound operation
  /// raises a standard incident under its theorem predicate. No-op when
  /// tracing is compiled out (the ledger never enables).
  bool audit = false;
  /// Allowed measured/bound factor before an audit violation fires.
  double audit_slack = 2.0;
  /// Sliding-window auditing: when positive, the auditor judges the
  /// trailing `audit_window` of ledger history at *every* cadence check —
  /// an over-bound window raises its incident mid-run, the moment the
  /// window exceeds slack. Zero keeps the whole-ledger audit at quiescent
  /// full checks only (the legacy teardown-style behaviour).
  sim::Duration audit_window = sim::Duration::zero();
};

class Watchdog {
 public:
  using IncidentSink = std::function<void(const IncidentBundle&)>;

  /// Attaches to `net`, watching `target`. `scenario` is embedded into any
  /// captured incident so it can be replayed; pass {} when the workload
  /// has no canonical form (incidents are still captured, marked
  /// non-replayable). The network must be quiescent (fresh or drained).
  Watchdog(tracking::TrackingNetwork& net, TargetId target,
           WatchdogConfig config = {}, ScenarioSpec scenario = {});
  /// Detaches every hook it installed (post-step, move observer,
  /// state-change, the monitor's send observer) and, when the constructor
  /// switched the trace recorder to ring mode, restores the recorder's
  /// prior mode and enabled flag — a watchdog may be destroyed or replaced
  /// while the network lives on. The network must not die first.
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Runs the full check tier immediately (lemmas + consistency +
  /// lookAhead agreement if still in the atomic domain). Drivers call this
  /// after injecting corruptions or at end of run.
  void check_now();

  /// Arms the §VII recovery-deadline assertion for fault-plan runs: at the
  /// first *quiescent* full check at or after `deadline` (including an
  /// explicit check_now at end of run), the consistent-state predicate
  /// must hold. A miss raises the "recovery-deadline" violation — with the
  /// usual fault-replayable incident bundle — and either way the deadline
  /// is evaluated exactly once. Inconsistency observed before the deadline
  /// is the fault window doing its job and is judged only by the ordinary
  /// consistent-state predicate.
  void arm_recovery_deadline(sim::TimePoint deadline);
  /// True once the armed deadline was evaluated and the structure had
  /// recovered. False while pending, after a miss, or if never armed.
  [[nodiscard]] bool recovery_deadline_met() const { return recovery_met_; }
  /// True while an armed deadline has not been evaluated yet.
  [[nodiscard]] bool recovery_deadline_pending() const {
    return !recovery_deadline_.is_never();
  }

  /// Installs the incident observer (called once per captured bundle, at
  /// detection time).
  void set_incident_sink(IncidentSink sink) { sink_ = std::move(sink); }

  /// Replaces the scenario embedded into future incidents. Incremental
  /// capturers (the CLI) call this as the session evolves, so a bundle
  /// always carries the scenario as of its detection.
  void set_scenario(ScenarioSpec scenario) { scenario_ = std::move(scenario); }

  /// Hands the trace recorder back to the caller: if the constructor had
  /// switched it to ring mode, returns it to unbounded mode (tracing stays
  /// enabled) and forgoes the destructor's restore. Drivers call this when
  /// an explicit full-trace request outranks the bounded flight recorder —
  /// otherwise the "full" dump silently holds only the last K events.
  /// Incidents captured afterwards embed the unbounded log instead.
  void yield_recorder();

  [[nodiscard]] const std::vector<IncidentBundle>& incidents() const {
    return incidents_;
  }
  [[nodiscard]] bool ok() const { return violations_seen_ == 0; }
  /// Total violations observed, including ones deduplicated or dropped by
  /// the incident cap.
  [[nodiscard]] std::int64_t violations_seen() const {
    return violations_seen_;
  }
  /// Full check passes executed (cost-model accounting for the benches).
  [[nodiscard]] std::int64_t checks_run() const { return checks_run_; }
  /// False once a non-atomic or non-neighbour move put the execution
  /// outside Theorem 4.8's domain (lookAhead comparison disabled).
  [[nodiscard]] bool atomic_so_far() const { return atomic_so_far_; }

  [[nodiscard]] const spec::InvariantMonitor& monitor() const {
    return *monitor_;
  }

  /// The live cost ledger (cfg.audit only; empty otherwise).
  [[nodiscard]] const OpLedger& ledger() const { return ledger_; }
  /// True when cfg.audit was honoured (tracing compiled in).
  [[nodiscard]] bool auditing() const { return auditor_ != nullptr; }
  /// Evaluates the live ledger now (requires auditing()).
  [[nodiscard]] AuditReport audit_now() const;

 private:
  static void post_step_thunk(void* ctx) {
    static_cast<Watchdog*>(ctx)->post_step();
  }
  void post_step();
  void full_check();
  void audit_check();
  void on_move(TargetId t, RegionId from, RegionId to,
               bool quiescent_at_issue);
  void on_violation(std::string predicate, std::string detail,
                    std::int32_t cluster, std::int32_t level);

  tracking::TrackingNetwork* net_;
  TargetId target_;
  WatchdogConfig cfg_;
  ScenarioSpec scenario_;
  std::unique_ptr<spec::InvariantMonitor> monitor_;
  spec::AtomicSpec shadow_;
  bool shadow_live_ = false;   // init() applied
  bool atomic_so_far_ = true;  // execution still in Theorem 4.8's domain
  bool in_check_ = false;      // re-entrancy guard (hook → check → hook)
  bool owns_recorder_ = false;  // ctor switched the recorder to ring mode
  std::size_t prev_ring_capacity_ = 0;  // recorder mode to restore
  sim::TimePoint next_due_ = sim::TimePoint::zero();
  sim::TimePoint recovery_deadline_ = sim::TimePoint::never();
  bool recovery_met_ = false;
  std::int64_t violations_seen_ = 0;
  std::int64_t checks_run_ = 0;
  std::vector<IncidentBundle> incidents_;
  IncidentSink sink_;
  OpLedger ledger_;  // attached to the network while auditing
  std::unique_ptr<BoundAuditor> auditor_;
  /// Audit violations already reported ("predicate#index"), so a
  /// persistent over-bound operation raises one violation, not one per
  /// quiescent check.
  std::vector<std::string> audit_reported_;
};

/// Parses a --monitor flag value: "every" → kEveryChange, a positive
/// integer → kCadence with that many microseconds, "" → kCadence with the
/// default cadence. Throws vs::Error otherwise.
[[nodiscard]] WatchdogConfig parse_watch_spec(const std::string& spec);

}  // namespace vs::obs
