#pragma once
// Deterministic scenario execution and incident replay.
//
// run_scenario rebuilds the world an incident's ScenarioSpec describes —
// same grid, same config, same walk seed, same injected corruptions —
// attaches a fresh Watchdog, and re-runs it. Because every source of
// nondeterminism in the simulator is the scenario seed, the replay
// produces the same violations at the same virtual times; replay_incident
// checks that the original incident's predicate fires again and reports
// how exactly the reproduction matches (time, cluster, level).

#include <string>
#include <vector>

#include "obs/monitor/incident.hpp"
#include "obs/monitor/watchdog.hpp"

namespace vs::obs {

struct ScenarioOutcome {
  /// False when the scenario is not replayable; `message` says why.
  bool ran = false;
  std::string message;
  /// All captured incidents, in detection order (their .violation fields
  /// are the violations observed).
  std::vector<IncidentBundle> incidents;
  /// Total violations seen, including deduplicated ones.
  std::int64_t violations_seen = 0;
  /// A fault-plan recovery deadline was armed for this run...
  bool recovery_armed = false;
  /// ...and the structure was consistent when it was evaluated.
  bool recovery_met = false;
};

/// Executes `scenario` under a watchdog configured by `cfg`. Legacy
/// (drain-between-moves, no fault plan) scenarios stop the walk early once
/// a violation is captured (the remaining moves cannot un-detect it and
/// corrupted state may not quiesce cleanly). Timed or fault-plan scenarios
/// run the full span — fault events are anchored to absolute virtual
/// times — arming the plan, a stabilizer when heartbeat_period_us > 0, and
/// the recovery deadline when the plan carries one.
[[nodiscard]] ScenarioOutcome run_scenario(const ScenarioSpec& scenario,
                                           const WatchdogConfig& cfg);

struct ReplayResult {
  bool ran = false;
  /// The original predicate fired again.
  bool reproduced = false;
  /// ...at the same virtual time, naming the same cluster/level.
  bool exact = false;
  std::string message;
  ScenarioOutcome outcome;
};

/// Re-runs `bundle.scenario` under the bundle's own watchdog settings and
/// compares the outcome against the recorded violation.
[[nodiscard]] ReplayResult replay_incident(const IncidentBundle& bundle);

}  // namespace vs::obs
