#pragma once
// Incident bundles — the watchdog's self-contained violation artifact.
//
// When the live watchdog (obs/monitor/watchdog.hpp) detects an invariant
// violation, it packages everything needed to understand and *re-run* the
// failure into one IncidentBundle: the scenario that produced it (world
// shape, RNG seed, move count, injected corruptions), the violated
// predicate with the offending cluster/level, a metrics snapshot, and the
// flight recorder's ring of the last K TraceEvents leading up to the
// detection. `vinestalk_trace incident` pretty-prints bundles and
// `--replay` re-executes the scenario deterministically.
//
// On-disk layout (native byte order, like VSTRACE1 — a run artifact, not
// an interchange format):
//
//   bytes 0..7   magic "VSINCID1"
//   u32          format version (kIncidentFormatVersion)
//   str          source        (u32 length + bytes, no terminator)
//   i32          target id
//   violation:   str predicate, str detail, i64 time_us, i32 cluster,
//                i32 level
//   u8           watch mode, i64 cadence_us, u64 ring capacity
//   scenario:    i32 side, i32 base, u8 lateral_links, u8 vsa_failures,
//                u8 replayable, i32 clients_per_region, i32 start_region,
//                u64 seed, i32 steps, u32 corruption count,
//                per corruption: 5 × i32 (cluster, c, p, nbrptup, nbrptdown)
//   v2 scenario: str fault_plan, i64 step_every_us, i64 settle_us,
//                i64 heartbeat_period_us, i64 t_restart_us (readers accept
//                v1 files, where these default to empty/zero)
//   v3 fields:   f64 timer_scale, u8 audit, f64 audit_slack (readers
//                accept v1/v2 files, defaulting to 1.0 / off / 2.0)
//   v4 field:    i64 audit_window_us (readers accept v1–v3 files, where
//                it defaults to 0 = whole-ledger audit)
//   v5 fields:   str scenario.slo_spec (the `slo v1` objective text the
//                run was armed with), str slo_state_json (per-objective
//                burn-window state at fire time), u32 exemplar count +
//                per exemplar: u8 class, u32 op, i64 t_us, i64 latency_ns,
//                i64 distance (readers accept v1–v4 files, defaulting to
//                empty — no SLO monitor was attached)
//   str          config_json
//   str          metrics_json
//   ring:        u64 event count + count × obs::TraceEvent (raw 64 bytes;
//                v1/v2 rings hold the legacy 56-byte records and are
//                widened with op = 0 on read)
//   trailer:     bytes "VSINCEND"
//
// Everything in a bundle derives from virtual time and world-local state,
// so two runs of the same scenario — at any --jobs value — serialize to
// byte-identical bundles (pinned by tests/test_monitor.cpp).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace vs::obs {

inline constexpr std::uint32_t kIncidentFormatVersion = 5;

/// How the watchdog samples the invariants (see watchdog.hpp for the cost
/// model of each mode).
enum class WatchMode : std::uint8_t {
  kOff = 0,          // watchdog never constructed; zero overhead
  kCadence = 1,      // check at a virtual-time cadence
  kEveryChange = 2,  // check on every pointer-state change + quiescence
};

[[nodiscard]] const char* to_string(WatchMode mode);

/// One detected invariant violation. `predicate` is the stable machine
/// name of the failed check (replay matches on it); `detail` the full
/// human diagnostic. cluster/level name the offending process when the
/// check can identify one (-1 otherwise).
struct Violation {
  std::string predicate;
  std::string detail;
  std::int64_t time_us = 0;
  std::int32_t cluster = -1;
  std::int32_t level = -1;
};

/// A canonical replayable workload: grid world + seeded random walk +
/// optional injected corruptions. The watchdog embeds the spec it is given
/// into every incident; replay re-runs it step by step under a fresh
/// watchdog. Interactive drivers (the CLI) capture their session into one
/// of these as commands arrive, marking it non-replayable when the session
/// does something the canonical form cannot express (manual moves, a
/// second walk).
struct ScenarioSpec {
  /// Forced pointer state for one cluster (fed to Tracker::corrupt_state).
  struct Corruption {
    std::int32_t cluster = -1;
    std::int32_t c = -1;
    std::int32_t p = -1;
    std::int32_t nbrptup = -1;
    std::int32_t nbrptdown = -1;
  };

  std::int32_t side = 0;  // side×side grid; 0 = unknown world
  std::int32_t base = 3;
  bool lateral_links = true;
  bool model_vsa_failures = false;
  std::int32_t clients_per_region = 1;
  std::int32_t start_region = -1;
  std::uint64_t seed = 1;  // random_walk seed
  std::int32_t steps = 0;  // moves taken before the corruptions
  std::vector<Corruption> corruptions;
  /// Fault plan text (fault::FaultPlan::to_string; empty = no faults).
  /// Replay re-parses and arms it, so incidents captured under injected
  /// faults reproduce the same fault sequence exactly.
  std::string fault_plan;
  /// Walk pacing: 0 = drain between moves (move_and_quiesce, the v1
  /// behavior); > 0 = advance that much virtual time per step (required
  /// for fault plans — draining would fast-forward through the windows).
  std::int64_t step_every_us = 0;
  /// Virtual time to run after the walk before draining (repair settle).
  std::int64_t settle_us = 0;
  /// ext::Stabilizer period; 0 = no stabilizer attached.
  std::int64_t heartbeat_period_us = 0;
  /// VSA restart time override (model_vsa_failures worlds); 0 = the
  /// NetworkConfig default.
  std::int64_t t_restart_us = 0;
  /// Uniform timer-policy scale κ: the run armed κ × the paper-default
  /// grow/shrink timers (κ ≥ 1 keeps inequality (1) valid, so the
  /// structure stays correct — only slower). The bound auditor judges
  /// against the *canonical* κ = 1 policy, so κ > 1 is the seeded way to
  /// produce a replayable over-bound incident.
  double timer_scale = 1.0;
  /// SLO objective text (`slo v1` format, obs::SloSpec::to_string) the run
  /// was armed with; empty = no SLO monitor. Carried so an incident names
  /// the service-level contract it was judged against.
  std::string slo_spec;
  /// Cleared by capturing drivers when the session leaves the canonical
  /// shape; replay refuses (with a diagnostic) rather than diverging.
  bool replayable_flag = true;

  [[nodiscard]] bool replayable() const {
    return replayable_flag && side > 0 && base > 1 && start_region >= 0;
  }
};

/// A latency exemplar: one concrete slow request behind a burn-rate
/// alert, linking the span to the OpId of the operation that served it —
/// `vinestalk_trace spans <trace> <find-id>` (the find id is the op
/// index) pretty-prints the causal chain behind the p99 outlier.
struct SloExemplar {
  std::uint8_t cls = 0;          // obs::SloClass
  std::uint32_t op = 0;          // OpId (0 for update/round spans)
  std::int64_t t_us = 0;         // virtual time at span close
  std::int64_t latency_ns = 0;   // wall-clock span duration
  std::int64_t distance = 0;     // find distance d (Theorem 5.2); else 0
};

/// The self-contained violation artifact.
struct IncidentBundle {
  std::string source;       // who was watching ("watchdog", a bench name)
  std::int32_t target = -1; // tracked TargetId
  Violation violation;      // first violation of this predicate
  WatchMode mode = WatchMode::kCadence;
  std::int64_t cadence_us = 0;
  std::uint64_t ring_capacity = 0;
  /// Whether the capturing watchdog ran the theorem-bound auditor, and at
  /// what slack factor — replay restores both so audit incidents (e.g.
  /// "theorem-4.9-move-time") reproduce.
  bool audit = false;
  double audit_slack = 2.0;
  /// Trailing-window length the sliding-window audit ran at (0 =
  /// whole-ledger audit at quiescent checks — the pre-v4 behaviour).
  std::int64_t audit_window_us = 0;
  ScenarioSpec scenario;
  std::string config_json;   // world configuration at detection
  std::string metrics_json;  // MetricsRegistry::to_json snapshot
  /// Burn-window state per objective at fire time (obs::SloMonitor JSON;
  /// empty when the incident is not SLO-sourced).
  std::string slo_state_json;
  /// Worst-latency exemplars behind the alert, slowest first.
  std::vector<SloExemplar> slo_exemplars;
  std::vector<TraceEvent> ring;  // flight recorder, oldest first
};

void write_incident(std::ostream& os, const IncidentBundle& b);
void write_incident_file(const std::string& path, const IncidentBundle& b);

/// Throws vs::Error on bad magic/version/truncation (same hardening
/// contract as trace_io: a short or corrupt file fails loudly).
[[nodiscard]] IncidentBundle read_incident(std::istream& is);
[[nodiscard]] IncidentBundle read_incident_file(const std::string& path);

/// Human-readable rendering (the `vinestalk_trace incident` view):
/// violation, scenario, config, metrics, and the tail of the ring.
void print_incident(std::ostream& os, const IncidentBundle& b,
                    std::size_t ring_tail = 16);

}  // namespace vs::obs
