#include "obs/slo/slo.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/error.hpp"

namespace vs::obs {

namespace {

/// Latency buckets: 1us to ~18 virtual minutes in powers of two — constant
/// relative resolution from fast-path updates to deadline-bounded finds.
std::vector<std::int64_t> latency_bounds() {
  return log2_bounds(1'000, std::int64_t{1} << 40);
}

std::vector<std::int64_t> ns_per_d_bounds() {
  return log2_bounds(1, std::int64_t{1} << 30);
}

constexpr std::size_t kMaxExemplars = 8;

std::int64_t parse_int(const std::string& tok, const char* what) {
  VS_REQUIRE(!tok.empty() &&
                 tok.find_first_not_of("0123456789") == std::string::npos,
             "slo spec: bad " << what << " '" << tok << "'");
  return std::stoll(tok);
}

/// "99.900" with up to `decimals` fraction digits -> value scaled by
/// 10^decimals (missing digits are zero-padded).
std::int64_t parse_fixed(const std::string& tok, int decimals,
                         const char* what) {
  const auto dot = tok.find('.');
  const std::string whole = dot == std::string::npos ? tok : tok.substr(0, dot);
  std::string frac = dot == std::string::npos ? "" : tok.substr(dot + 1);
  VS_REQUIRE(frac.size() <= static_cast<std::size_t>(decimals),
             "slo spec: too many decimals in " << what << " '" << tok << "'");
  while (frac.size() < static_cast<std::size_t>(decimals)) frac.push_back('0');
  std::int64_t v = parse_int(whole, what);
  for (int i = 0; i < decimals; ++i) v *= 10;
  return v + (frac.empty() ? 0 : parse_int(frac, what));
}

std::string render_fixed(std::int64_t scaled, int decimals) {
  std::int64_t pow = 1;
  for (int i = 0; i < decimals; ++i) pow *= 10;
  std::ostringstream os;
  os << scaled / pow << '.';
  std::string f = std::to_string(scaled % pow);
  os << std::string(static_cast<std::size_t>(decimals) - f.size(), '0') << f;
  return os.str();
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

SloClass parse_class(const std::string& tok) {
  if (tok == "update") return SloClass::kUpdate;
  if (tok == "find") return SloClass::kFind;
  if (tok == "round") return SloClass::kRound;
  VS_REQUIRE(false, "slo spec: unknown request class '" << tok << "'");
  return SloClass::kUpdate;  // unreachable
}

int parse_quantile(const std::string& tok) {
  VS_REQUIRE(tok.size() >= 2 && tok.size() <= 4 && tok[0] == 'p',
             "slo spec: bad quantile '" << tok << "'");
  const std::string digits = tok.substr(1);
  const std::int64_t v = parse_int(digits, "quantile");
  std::int64_t permille = v;
  if (digits.size() == 1) permille = v * 100;
  if (digits.size() == 2) permille = v * 10;
  VS_REQUIRE(permille >= 1 && permille <= 999,
             "slo spec: quantile out of range '" << tok << "'");
  return static_cast<int>(permille);
}

std::string render_quantile(int permille) {
  if (permille % 10 == 0) {
    std::string s = std::to_string(permille / 10);
    if (s.size() == 1) s.insert(0, "0");  // p05
    return "p" + s;
  }
  return "p" + std::to_string(permille);
}

/// Target with unit suffix; canonical form is ns.
std::int64_t parse_target(const std::string& tok) {
  std::size_t unit = tok.find_first_not_of("0123456789");
  VS_REQUIRE(unit != 0 && unit != std::string::npos,
             "slo spec: bad target '" << tok << "' (need ns/us/ms suffix)");
  const std::int64_t v = parse_int(tok.substr(0, unit), "target");
  const std::string suffix = tok.substr(unit);
  std::int64_t scale = 0;
  if (suffix == "ns") scale = 1;
  if (suffix == "us") scale = 1'000;
  if (suffix == "ms") scale = 1'000'000;
  VS_REQUIRE(scale != 0, "slo spec: bad target unit '" << suffix << "'");
  return v * scale;
}

}  // namespace

const char* to_string(SloClass cls) {
  switch (cls) {
    case SloClass::kUpdate: return "update";
    case SloClass::kFind: return "find";
    case SloClass::kRound: return "round";
  }
  return "?";
}

std::size_t slo_find_band(std::int64_t distance) {
  if (distance <= 1) return 0;
  const auto w = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(distance - 1)));
  return std::min(w, kSloFindBands - 1);
}

std::string slo_band_label(std::size_t band) {
  if (band == 0) return "d<=1";
  const std::int64_t hi = std::int64_t{1} << band;
  if (band >= kSloFindBands - 1) {
    return "d>" + std::to_string(hi / 2);
  }
  return "d " + std::to_string(hi / 2 + 1) + "-" + std::to_string(hi);
}

std::string SloObjective::to_string() const {
  std::ostringstream os;
  os << vs::obs::to_string(cls);
  if (ns_per_d) os << " ns_per_d";
  os << " " << render_quantile(permille) << " <= " << target_ns;
  if (!ns_per_d) os << "ns";
  return os.str();
}

std::string SloSpec::to_string() const {
  std::ostringstream os;
  os << "slo v1\n";
  for (const SloObjective& o : objectives) {
    os << "objective " << o.to_string() << "\n";
  }
  if (avail_milli > 0) {
    os << "availability >= " << render_fixed(avail_milli, 3) << "\n";
  }
  os << "window short " << window_short_us << "us long " << window_long_us
     << "us\n";
  os << "burn fast " << render_fixed(burn_fast_centi, 2) << " slow "
     << render_fixed(burn_slow_centi, 2) << "\n";
  os << "clock " << (wall_clock ? "wall" : "virtual") << "\n";
  os << "end\n";
  return os.str();
}

SloSpec SloSpec::parse(const std::string& text) {
  SloSpec spec;
  std::istringstream is(text);
  std::string line;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::vector<std::string> toks = split_ws(line);
    if (toks.empty()) continue;
    VS_REQUIRE(!saw_end, "slo spec: content after 'end'");
    if (!saw_header) {
      VS_REQUIRE(toks.size() == 2 && toks[0] == "slo" && toks[1] == "v1",
                 "slo spec: expected 'slo v1' header, got '" << line << "'");
      saw_header = true;
      continue;
    }
    if (toks[0] == "objective") {
      SloObjective o;
      std::size_t i = 1;
      VS_REQUIRE(toks.size() > i, "slo spec: truncated objective line");
      o.cls = parse_class(toks[i++]);
      if (i < toks.size() && toks[i] == "ns_per_d") {
        VS_REQUIRE(o.cls == SloClass::kFind,
                   "slo spec: ns_per_d only applies to find");
        o.ns_per_d = true;
        ++i;
      }
      VS_REQUIRE(toks.size() == i + 3 && toks[i + 1] == "<=",
                 "slo spec: bad objective line '" << line << "'");
      o.permille = parse_quantile(toks[i]);
      o.target_ns =
          o.ns_per_d ? parse_int(toks[i + 2], "target") : parse_target(toks[i + 2]);
      VS_REQUIRE(o.target_ns > 0, "slo spec: target must be positive");
      spec.objectives.push_back(o);
    } else if (toks[0] == "availability") {
      VS_REQUIRE(toks.size() == 3 && toks[1] == ">=",
                 "slo spec: bad availability line '" << line << "'");
      spec.avail_milli = parse_fixed(toks[2], 3, "availability");
      VS_REQUIRE(spec.avail_milli >= 1 && spec.avail_milli <= 99'999,
                 "slo spec: availability must be in (0, 100)%");
    } else if (toks[0] == "window") {
      VS_REQUIRE(toks.size() == 5 && toks[1] == "short" && toks[3] == "long",
                 "slo spec: bad window line '" << line << "'");
      const auto us = [](const std::string& tok) {
        VS_REQUIRE(tok.size() > 2 && tok.substr(tok.size() - 2) == "us",
                   "slo spec: window values need a us suffix");
        return parse_int(tok.substr(0, tok.size() - 2), "window");
      };
      spec.window_short_us = us(toks[2]);
      spec.window_long_us = us(toks[4]);
      VS_REQUIRE(spec.window_short_us > 0 &&
                     spec.window_short_us <= spec.window_long_us,
                 "slo spec: need 0 < short window <= long window");
    } else if (toks[0] == "burn") {
      VS_REQUIRE(toks.size() == 5 && toks[1] == "fast" && toks[3] == "slow",
                 "slo spec: bad burn line '" << line << "'");
      spec.burn_fast_centi = parse_fixed(toks[2], 2, "burn threshold");
      spec.burn_slow_centi = parse_fixed(toks[4], 2, "burn threshold");
      VS_REQUIRE(spec.burn_fast_centi > 0 && spec.burn_slow_centi > 0,
                 "slo spec: burn thresholds must be positive");
    } else if (toks[0] == "clock") {
      VS_REQUIRE(toks.size() == 2 && (toks[1] == "virtual" || toks[1] == "wall"),
                 "slo spec: bad clock line '" << line << "'");
      spec.wall_clock = toks[1] == "wall";
    } else if (toks[0] == "end") {
      VS_REQUIRE(toks.size() == 1, "slo spec: bad end line '" << line << "'");
      saw_end = true;
    } else {
      VS_REQUIRE(false, "slo spec: unknown line '" << line << "'");
    }
  }
  VS_REQUIRE(saw_header, "slo spec: missing 'slo v1' header");
  VS_REQUIRE(saw_end, "slo spec: missing 'end' terminator");
  return spec;
}

// ----------------------------------------------------------------- span

SloSpan::SloSpan(SloMonitor* mon, SloClass cls) : mon_(mon), cls_(cls) {
  if (mon_ != nullptr) t0_ns_ = mon_->open_span();
}

SloSpan::SloSpan(SloSpan&& other) noexcept
    : mon_(other.mon_), cls_(other.cls_), t0_ns_(other.t0_ns_) {
  other.mon_ = nullptr;
}

SloSpan& SloSpan::operator=(SloSpan&& other) noexcept {
  if (this != &other) {
    if (mon_ != nullptr) mon_->note_abort(cls_);
    mon_ = other.mon_;
    cls_ = other.cls_;
    t0_ns_ = other.t0_ns_;
    other.mon_ = nullptr;
  }
  return *this;
}

SloSpan::~SloSpan() {
  if (mon_ != nullptr) mon_->note_abort(cls_);
}

void SloSpan::close_update(std::int64_t t_us) {
  if (mon_ == nullptr) return;
  mon_->close_update(t0_ns_, t_us);
  mon_ = nullptr;
}

void SloSpan::close_find(std::int64_t t_us, OpId op, std::int64_t distance,
                         bool deadline_missed) {
  if (mon_ == nullptr) return;
  mon_->close_find(t0_ns_, t_us, op, distance, deadline_missed);
  mon_ = nullptr;
}

void SloSpan::close_round(std::int64_t t_us) {
  if (mon_ == nullptr) return;
  mon_->close_round(t0_ns_, t_us);
  mon_ = nullptr;
}

// -------------------------------------------------------------- monitor

SloMonitor::SloMonitor(SloSpec spec) : spec_(std::move(spec)) {
  const std::vector<std::int64_t> lat = latency_bounds();
  for (ClassAcc& c : classes_) c.latency = Histogram(lat);
  ns_per_d_ = Histogram(ns_per_d_bounds());
  for (Histogram& h : bands_) h = Histogram(lat);
  windows_.resize(spec_.objectives.size() + (spec_.avail_milli > 0 ? 1 : 0));
  scenario_.slo_spec = spec_.to_string();
  scenario_.replayable_flag = false;  // a spec alone is not a workload
}

std::uint64_t SloMonitor::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SloMonitor::set_scenario(ScenarioSpec scenario) {
  scenario_ = std::move(scenario);
  scenario_.slo_spec = spec_.to_string();
}

void SloMonitor::set_incident_sink(
    std::function<void(const IncidentBundle&)> sink) {
  sink_ = std::move(sink);
}

void SloMonitor::record(SloClass cls, std::int64_t latency_ns,
                        std::int64_t t_us, OpId op, std::int64_t distance,
                        bool error) {
  ClassAcc& acc = classes_[static_cast<std::size_t>(cls)];
  ++acc.requests;
  if (error) ++acc.errors;
  acc.latency.record(latency_ns);
  std::int64_t per_d = latency_ns;
  if (cls == SloClass::kFind) {
    per_d = latency_ns / std::max<std::int64_t>(1, distance);
    ns_per_d_.record(per_d);
    bands_[slo_find_band(distance)].record(latency_ns);
  }
  for (std::size_t i = 0; i < spec_.objectives.size(); ++i) {
    const SloObjective& o = spec_.objectives[i];
    if (o.cls != cls) continue;
    const std::int64_t measured = o.ns_per_d ? per_d : latency_ns;
    windows_[i].add(error || measured > o.target_ns);
  }
  if (spec_.avail_milli > 0) windows_.back().add(error);
  consider_exemplar(cls, latency_ns, t_us, op, distance);
  last_t_us_ = std::max(last_t_us_, t_us);
}

void SloMonitor::consider_exemplar(SloClass cls, std::int64_t latency_ns,
                                   std::int64_t t_us, OpId op,
                                   std::int64_t distance) {
  SloExemplar e{.cls = static_cast<std::uint8_t>(cls),
                .op = op,
                .t_us = t_us,
                .latency_ns = latency_ns,
                .distance = distance};
  const auto pos = std::find_if(
      exemplars_.begin(), exemplars_.end(),
      [&](const SloExemplar& x) { return x.latency_ns < latency_ns; });
  exemplars_.insert(pos, e);
  if (exemplars_.size() > kMaxExemplars) exemplars_.pop_back();
}

void SloMonitor::close_update(std::uint64_t t0_ns, std::int64_t t_us) {
  record(SloClass::kUpdate, static_cast<std::int64_t>(now_ns() - t0_ns), t_us,
         kBackgroundOp, 0, /*error=*/false);
}

void SloMonitor::close_find(std::uint64_t t0_ns, std::int64_t t_us, OpId op,
                            std::int64_t distance, bool deadline_missed) {
  record(SloClass::kFind, static_cast<std::int64_t>(now_ns() - t0_ns), t_us,
         op, distance, deadline_missed);
  evaluate(t_us);
}

void SloMonitor::close_round(std::uint64_t t0_ns, std::int64_t t_us) {
  record(SloClass::kRound, static_cast<std::int64_t>(now_ns() - t0_ns), t_us,
         kBackgroundOp, 0, /*error=*/false);
  evaluate(t_us);
}

void SloMonitor::note_errors(SloClass cls, std::int64_t t_us, std::int64_t n) {
  if (n <= 0) return;
  ClassAcc& acc = classes_[static_cast<std::size_t>(cls)];
  acc.requests += n;
  acc.errors += n;
  for (std::size_t i = 0; i < spec_.objectives.size(); ++i) {
    if (spec_.objectives[i].cls != cls) continue;
    windows_[i].cur_req += n;
    windows_[i].cur_bad += n;
  }
  if (spec_.avail_milli > 0) {
    windows_.back().cur_req += n;
    windows_.back().cur_bad += n;
  }
  last_t_us_ = std::max(last_t_us_, t_us);
}

void SloMonitor::note_abort(SloClass cls) {
  ClassAcc& acc = classes_[static_cast<std::size_t>(cls)];
  ++acc.requests;
  ++acc.errors;
}

void SloMonitor::BurnWindow::seal(std::int64_t t_us, std::int64_t short_us,
                                  std::int64_t long_us) {
  buckets.push_back({t_us, cur_req, cur_bad});
  short_req += cur_req;
  short_bad += cur_bad;
  long_req += cur_req;
  long_bad += cur_bad;
  cur_req = 0;
  cur_bad = 0;
  while (short_begin < buckets.size() &&
         buckets[short_begin].t_us <= t_us - short_us) {
    short_req -= buckets[short_begin].req;
    short_bad -= buckets[short_begin].bad;
    ++short_begin;
  }
  while (!buckets.empty() && buckets.front().t_us <= t_us - long_us) {
    long_req -= buckets.front().req;
    long_bad -= buckets.front().bad;
    if (short_begin > 0) {
      --short_begin;
    } else {
      // short window == long window: the bucket was still in both.
      short_req -= buckets.front().req;
      short_bad -= buckets.front().bad;
    }
    buckets.pop_front();
  }
}

std::int64_t SloMonitor::burn_centi(std::size_t obj, std::int64_t bad,
                                    std::int64_t req) const {
  if (req <= 0 || bad <= 0) return 0;
  if (obj < spec_.objectives.size()) {
    const std::int64_t budget_milli =
        1000 - spec_.objectives[obj].permille;  // parse enforces >= 1
    return bad * 100'000 / (req * budget_milli);
  }
  const std::int64_t budget = 100'000 - spec_.avail_milli;  // milli-percent
  return bad * 10'000'000 / (req * budget);
}

void SloMonitor::evaluate(std::int64_t t_us) {
  last_t_us_ = std::max(last_t_us_, t_us);
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    BurnWindow& w = windows_[i];
    w.seal(t_us, spec_.window_short_us, spec_.window_long_us);
    if (w.fired) continue;
    const std::int64_t bs = burn_centi(i, w.short_bad, w.short_req);
    const std::int64_t bl = burn_centi(i, w.long_bad, w.long_req);
    if (w.short_req > 0 && w.long_req > 0 && bs >= spec_.burn_fast_centi &&
        bl >= spec_.burn_slow_centi) {
      w.fired = true;
      fire(i, t_us);
    }
  }
}

SloObjectiveState SloMonitor::objective_state(std::size_t i) const {
  const BurnWindow& w = windows_[i];
  SloObjectiveState st;
  if (i < spec_.objectives.size()) {
    const SloObjective& o = spec_.objectives[i];
    st.name = o.to_string();
    st.target_ns = o.target_ns;
    const Histogram& h =
        o.ns_per_d ? ns_per_d_
                   : classes_[static_cast<std::size_t>(o.cls)].latency;
    st.measured_ns = h.percentile(static_cast<double>(o.permille) / 1000.0);
  } else {
    st.name = "availability >= " + render_fixed(spec_.avail_milli, 3);
  }
  st.short_req = w.short_req + w.cur_req;
  st.short_bad = w.short_bad + w.cur_bad;
  st.long_req = w.long_req + w.cur_req;
  st.long_bad = w.long_bad + w.cur_bad;
  st.burn_short_centi = burn_centi(i, st.short_bad, st.short_req);
  st.burn_long_centi = burn_centi(i, st.long_bad, st.long_req);
  st.fired = w.fired;
  return st;
}

void SloMonitor::fire(std::size_t obj, std::int64_t t_us) {
  const SloObjectiveState st = objective_state(obj);
  IncidentBundle b;
  b.source = "slo";
  b.mode = WatchMode::kOff;
  b.violation.predicate = "slo-burn-rate:" + st.name;
  b.violation.time_us = t_us;
  std::ostringstream detail;
  detail << "error budget burn rate over threshold for objective '" << st.name
         << "'\n"
         << "short window (" << spec_.window_short_us << "us): " << st.short_bad
         << "/" << st.short_req << " bad, burn "
         << render_fixed(st.burn_short_centi, 2) << "x (fast threshold "
         << render_fixed(spec_.burn_fast_centi, 2) << "x)\n"
         << "long window (" << spec_.window_long_us << "us): " << st.long_bad
         << "/" << st.long_req << " bad, burn "
         << render_fixed(st.burn_long_centi, 2) << "x (slow threshold "
         << render_fixed(spec_.burn_slow_centi, 2) << "x)";
  if (st.target_ns > 0) {
    detail << "\nmeasured " << st.measured_ns << "ns vs target "
           << st.target_ns << "ns";
  }
  b.violation.detail = detail.str();
  b.scenario = scenario_;
  b.slo_state_json = state_json();
  b.slo_exemplars = exemplars_;
  if (sink_) sink_(b);
}

std::string SloMonitor::state_json() const {
  std::ostringstream os;
  os << "{\"t_us\": " << last_t_us_ << ", \"objectives\": [";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const SloObjectiveState st = objective_state(i);
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << st.name << "\", \"short\": {\"req\": "
       << st.short_req << ", \"bad\": " << st.short_bad
       << ", \"burn_centi\": " << st.burn_short_centi
       << "}, \"long\": {\"req\": " << st.long_req
       << ", \"bad\": " << st.long_bad
       << ", \"burn_centi\": " << st.burn_long_centi << "}, \"fired\": "
       << (st.fired ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

bool SloMonitor::any_fired() const {
  return std::any_of(windows_.begin(), windows_.end(),
                     [](const BurnWindow& w) { return w.fired; });
}

SloReport SloMonitor::report() const {
  SloReport rep;
  rep.spec_text = spec_.to_string();
  rep.wall_clock = spec_.wall_clock;
  rep.end_t_us = last_t_us_;
  for (std::size_t c = 0; c < kSloClasses; ++c) {
    rep.classes[c].requests = classes_[c].requests;
    rep.classes[c].errors = classes_[c].errors;
    rep.classes[c].latency = classes_[c].latency;
  }
  rep.find_ns_per_d = ns_per_d_;
  for (std::size_t b = 0; b < kSloFindBands; ++b) {
    if (bands_[b].count() > 0) {
      rep.find_bands.emplace_back(static_cast<std::uint32_t>(b), bands_[b]);
    }
  }
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    rep.objectives.push_back(objective_state(i));
  }
  rep.exemplars = exemplars_;
  return rep;
}

std::int64_t SloReport::budget_remaining_milli(std::size_t i) const {
  // One full long window at burn 1.00x consumes the whole budget; remaining
  // is therefore 1 - long-window burn, floored at zero.
  return std::max<std::int64_t>(0, 1000 - objectives[i].burn_long_centi * 10);
}

}  // namespace vs::obs
