#include "obs/slo/slo_io.hpp"

#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <type_traits>

#include "common/error.hpp"

namespace vs::obs {

namespace {

constexpr char kMagic[8] = {'V', 'S', 'S', 'L', 'O', '1', '\0', '\0'};
constexpr char kEndMagic[8] = {'V', 'S', 'S', 'L', 'O', 'E', 'N', 'D'};
// A report holds a handful of histograms and at most a few dozen
// objectives/exemplars; larger counts mean a corrupt file.
constexpr std::uint32_t kMaxRows = 1u << 16;
constexpr std::uint32_t kMaxString = 1u << 24;

template <class T>
void put(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof(T));
}

template <class T>
void get(const char*& p, const char* end, T& v, const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  VS_REQUIRE(static_cast<std::size_t>(end - p) >= sizeof(T),
             "truncated slo sidecar " << path);
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
}

void put_str(std::string& buf, const std::string& s) {
  put(buf, static_cast<std::uint32_t>(s.size()));
  buf.append(s);
}

std::string get_str(const char*& p, const char* end, const std::string& path) {
  std::uint32_t len = 0;
  get(p, end, len, path);
  VS_REQUIRE(len <= kMaxString, "corrupt slo sidecar " << path
                                    << ": implausible string length " << len);
  VS_REQUIRE(static_cast<std::size_t>(end - p) >= len,
             "truncated slo sidecar " << path);
  std::string s(p, len);
  p += len;
  return s;
}

void put_hist(std::string& buf, const Histogram& h) {
  put(buf, static_cast<std::uint32_t>(h.bounds().size()));
  for (std::int64_t b : h.bounds()) put(buf, b);
  for (std::int64_t c : h.buckets()) put(buf, c);
  put(buf, h.count());
  put(buf, h.sum());
  put(buf, h.min());
  put(buf, h.max());
}

Histogram get_hist(const char*& p, const char* end, const std::string& path) {
  std::uint32_t n = 0;
  get(p, end, n, path);
  VS_REQUIRE(n <= kMaxRows, "corrupt slo sidecar " << path
                                << ": implausible bound count " << n);
  std::vector<std::int64_t> bounds(n);
  for (auto& b : bounds) get(p, end, b, path);
  std::vector<std::int64_t> buckets(n + 1);
  for (auto& c : buckets) get(p, end, c, path);
  std::int64_t count = 0, sum = 0, min = 0, max = 0;
  get(p, end, count, path);
  get(p, end, sum, path);
  get(p, end, min, path);
  get(p, end, max, path);
  return Histogram::from_parts(std::move(bounds), std::move(buckets), count,
                               sum, min, max);
}

void json_hist(std::ostream& os, const Histogram& h) {
  os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
     << ", \"min\": " << h.min() << ", \"max\": " << h.max()
     << ", \"p50\": " << h.percentile(0.50) << ", \"p90\": "
     << h.percentile(0.90) << ", \"p99\": " << h.percentile(0.99)
     << ", \"p999\": " << h.percentile(0.999) << "}";
}

/// The spec's objective name, quoted for a Prometheus label value.
std::string label_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_slo_file(const std::string& path, const SloReport& rep) {
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  put(buf, kSloFormatVersion);
  put_str(buf, rep.spec_text);
  put(buf, static_cast<std::uint8_t>(rep.wall_clock ? 1 : 0));
  put(buf, rep.end_t_us);
  for (const SloReport::ClassStats& c : rep.classes) {
    put(buf, c.requests);
    put(buf, c.errors);
    put_hist(buf, c.latency);
  }
  put_hist(buf, rep.find_ns_per_d);
  put(buf, static_cast<std::uint32_t>(rep.find_bands.size()));
  for (const auto& [band, hist] : rep.find_bands) {
    put(buf, band);
    put_hist(buf, hist);
  }
  put(buf, static_cast<std::uint32_t>(rep.objectives.size()));
  for (const SloObjectiveState& o : rep.objectives) {
    put_str(buf, o.name);
    put(buf, o.short_req);
    put(buf, o.short_bad);
    put(buf, o.long_req);
    put(buf, o.long_bad);
    put(buf, o.burn_short_centi);
    put(buf, o.burn_long_centi);
    put(buf, o.measured_ns);
    put(buf, o.target_ns);
    put(buf, static_cast<std::uint8_t>(o.fired ? 1 : 0));
  }
  put(buf, static_cast<std::uint32_t>(rep.exemplars.size()));
  for (const SloExemplar& e : rep.exemplars) {
    put(buf, e.cls);
    put(buf, e.op);
    put(buf, e.t_us);
    put(buf, e.latency_ns);
    put(buf, e.distance);
  }
  buf.append(kEndMagic, sizeof(kEndMagic));
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  VS_REQUIRE(os.good(), "cannot open slo sidecar for writing: " << path);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  VS_REQUIRE(os.good(), "write failed for slo sidecar: " << path);
}

SloReport read_slo_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  VS_REQUIRE(is.good(), "cannot open slo sidecar: " << path);
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string bytes = ss.str();
  const char* p = bytes.data();
  const char* end = p + bytes.size();
  VS_REQUIRE(bytes.size() >= sizeof(kMagic) &&
                 std::memcmp(p, kMagic, sizeof(kMagic)) == 0,
             "not an slo sidecar (bad magic; expected VSSLO1): " << path);
  p += sizeof(kMagic);
  std::uint32_t version = 0;
  get(p, end, version, path);
  VS_REQUIRE(version == kSloFormatVersion,
             "unsupported slo sidecar version " << version);
  SloReport rep;
  rep.spec_text = get_str(p, end, path);
  std::uint8_t wall = 0;
  get(p, end, wall, path);
  rep.wall_clock = wall != 0;
  get(p, end, rep.end_t_us, path);
  for (SloReport::ClassStats& c : rep.classes) {
    get(p, end, c.requests, path);
    get(p, end, c.errors, path);
    c.latency = get_hist(p, end, path);
  }
  rep.find_ns_per_d = get_hist(p, end, path);
  std::uint32_t nbands = 0;
  get(p, end, nbands, path);
  VS_REQUIRE(nbands <= kMaxRows, "corrupt slo sidecar " << path);
  rep.find_bands.resize(nbands);
  for (auto& [band, hist] : rep.find_bands) {
    get(p, end, band, path);
    hist = get_hist(p, end, path);
  }
  std::uint32_t nobj = 0;
  get(p, end, nobj, path);
  VS_REQUIRE(nobj <= kMaxRows, "corrupt slo sidecar " << path);
  rep.objectives.resize(nobj);
  for (SloObjectiveState& o : rep.objectives) {
    o.name = get_str(p, end, path);
    get(p, end, o.short_req, path);
    get(p, end, o.short_bad, path);
    get(p, end, o.long_req, path);
    get(p, end, o.long_bad, path);
    get(p, end, o.burn_short_centi, path);
    get(p, end, o.burn_long_centi, path);
    get(p, end, o.measured_ns, path);
    get(p, end, o.target_ns, path);
    std::uint8_t fired = 0;
    get(p, end, fired, path);
    o.fired = fired != 0;
  }
  std::uint32_t nex = 0;
  get(p, end, nex, path);
  VS_REQUIRE(nex <= kMaxRows, "corrupt slo sidecar " << path);
  rep.exemplars.resize(nex);
  for (SloExemplar& e : rep.exemplars) {
    get(p, end, e.cls, path);
    get(p, end, e.op, path);
    get(p, end, e.t_us, path);
    get(p, end, e.latency_ns, path);
    get(p, end, e.distance, path);
  }
  VS_REQUIRE(static_cast<std::size_t>(end - p) >= sizeof(kEndMagic) &&
                 std::memcmp(p, kEndMagic, sizeof(kEndMagic)) == 0,
             "truncated slo sidecar: missing VSSLOEND trailer: " << path);
  return rep;
}

void slo_to_json(std::ostream& os, const SloReport& rep) {
  os << "{\n  \"spec\": \"" << label_escape(rep.spec_text) << "\",\n"
     << "  \"clock\": \"" << (rep.wall_clock ? "wall" : "virtual") << "\",\n"
     << "  \"t_us\": " << rep.end_t_us << ",\n  \"classes\": {";
  for (std::size_t c = 0; c < kSloClasses; ++c) {
    if (c > 0) os << ",";
    const SloReport::ClassStats& st = rep.classes[c];
    os << "\n    \"" << to_string(static_cast<SloClass>(c))
       << "\": {\"requests\": " << st.requests << ", \"errors\": " << st.errors
       << ", \"latency_ns\": ";
    json_hist(os, st.latency);
    os << "}";
  }
  os << "\n  },\n  \"find_ns_per_d\": ";
  json_hist(os, rep.find_ns_per_d);
  os << ",\n  \"find_bands\": [";
  for (std::size_t i = 0; i < rep.find_bands.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"band\": \"" << slo_band_label(rep.find_bands[i].first)
       << "\", \"latency_ns\": ";
    json_hist(os, rep.find_bands[i].second);
    os << "}";
  }
  os << "],\n  \"objectives\": [";
  for (std::size_t i = 0; i < rep.objectives.size(); ++i) {
    const SloObjectiveState& o = rep.objectives[i];
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << label_escape(o.name)
       << "\", \"measured_ns\": " << o.measured_ns
       << ", \"target_ns\": " << o.target_ns
       << ", \"burn_short_centi\": " << o.burn_short_centi
       << ", \"burn_long_centi\": " << o.burn_long_centi
       << ", \"budget_remaining_milli\": " << rep.budget_remaining_milli(i)
       << ", \"fired\": " << (o.fired ? "true" : "false") << "}";
  }
  os << "],\n  \"exemplars\": [";
  for (std::size_t i = 0; i < rep.exemplars.size(); ++i) {
    const SloExemplar& e = rep.exemplars[i];
    if (i > 0) os << ", ";
    os << "{\"class\": \"" << to_string(static_cast<SloClass>(e.cls))
       << "\", \"op\": \"" << op_name(e.op) << "\", \"t_us\": " << e.t_us
       << ", \"latency_ns\": " << e.latency_ns
       << ", \"distance\": " << e.distance << "}";
  }
  os << "]\n}\n";
}

void slo_to_prometheus(std::ostream& os, const SloReport& rep,
                       const std::string& prefix) {
  os << "# TYPE " << prefix << "_slo_requests_total counter\n";
  for (std::size_t c = 0; c < kSloClasses; ++c) {
    os << prefix << "_slo_requests_total{class=\""
       << to_string(static_cast<SloClass>(c))
       << "\"} " << rep.classes[c].requests << "\n";
  }
  os << "# TYPE " << prefix << "_slo_errors_total counter\n";
  for (std::size_t c = 0; c < kSloClasses; ++c) {
    os << prefix << "_slo_errors_total{class=\""
       << to_string(static_cast<SloClass>(c))
       << "\"} " << rep.classes[c].errors << "\n";
  }
  os << "# TYPE " << prefix << "_slo_latency_ns gauge\n";
  for (std::size_t c = 0; c < kSloClasses; ++c) {
    const Histogram& h = rep.classes[c].latency;
    if (h.count() == 0) continue;
    const char* name = to_string(static_cast<SloClass>(c));
    os << prefix << "_slo_latency_ns{class=\"" << name
       << "\",quantile=\"0.5\"} " << h.percentile(0.50) << "\n";
    os << prefix << "_slo_latency_ns{class=\"" << name
       << "\",quantile=\"0.99\"} " << h.percentile(0.99) << "\n";
  }
  if (rep.find_ns_per_d.count() > 0) {
    os << "# TYPE " << prefix << "_slo_find_ns_per_d gauge\n";
    os << prefix << "_slo_find_ns_per_d{quantile=\"0.99\"} "
       << rep.find_ns_per_d.percentile(0.99) << "\n";
  }
  if (!rep.objectives.empty()) {
    os << "# TYPE " << prefix << "_slo_burn_rate_centi gauge\n";
    for (const SloObjectiveState& o : rep.objectives) {
      os << prefix << "_slo_burn_rate_centi{objective=\""
         << label_escape(o.name) << "\",window=\"short\"} "
         << o.burn_short_centi << "\n";
      os << prefix << "_slo_burn_rate_centi{objective=\""
         << label_escape(o.name) << "\",window=\"long\"} "
         << o.burn_long_centi << "\n";
    }
    os << "# TYPE " << prefix << "_slo_error_budget_remaining_milli gauge\n";
    for (std::size_t i = 0; i < rep.objectives.size(); ++i) {
      os << prefix << "_slo_error_budget_remaining_milli{objective=\""
         << label_escape(rep.objectives[i].name) << "\"} "
         << rep.budget_remaining_milli(i) << "\n";
    }
    os << "# TYPE " << prefix << "_slo_objective_fired gauge\n";
    for (const SloObjectiveState& o : rep.objectives) {
      os << prefix << "_slo_objective_fired{objective=\""
         << label_escape(o.name) << "\"} " << (o.fired ? 1 : 0) << "\n";
    }
  }
}

void slo_to_csv(std::ostream& os, const SloReport& rep) {
  os << "series,le_ns,count\n";
  const auto rows = [&os](const std::string& series, const Histogram& h) {
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      os << series << ",";
      if (i < h.bounds().size()) {
        os << h.bounds()[i];
      } else {
        os << "+inf";
      }
      os << "," << h.buckets()[i] << "\n";
    }
  };
  for (std::size_t c = 0; c < kSloClasses; ++c) {
    if (rep.classes[c].latency.count() == 0) continue;
    rows(to_string(static_cast<SloClass>(c)), rep.classes[c].latency);
  }
  if (rep.find_ns_per_d.count() > 0) rows("find_ns_per_d", rep.find_ns_per_d);
  for (const auto& [band, hist] : rep.find_bands) {
    rows("find:" + slo_band_label(band), hist);
  }
}

}  // namespace vs::obs
