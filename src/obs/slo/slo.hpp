#pragma once
// Request-level SLO observability for the serving path.
//
// SloMonitor measures what a *client* experiences from the ingest/query
// daemon: wall-clock latency per request, bucketed by request class
// (update / find / round) into log-bucketed histograms, plus RED counters
// (rate / errors / duration). Find latencies are additionally recorded
// distance-normalized (ns per unit of the Theorem 5.2 distance d) and per
// distance band, bridging the BoundAuditor's logical cost currency to real
// time the same way the profiler's ns_per_work does.
//
// An SloSpec (`slo v1` strict text format, parse(to_string()) == spec)
// declares objectives — e.g. `objective find p99 <= 2000000ns`,
// `objective find ns_per_d p99 <= 1500`, `availability >= 99.900` — and a
// pair of burn-rate windows. The evaluator tracks, per objective, the
// fraction of requests violating it over a short and a long trailing
// window (5m/1h-style, keyed by virtual time so replays evaluate
// identically; `clock wall` switches to wall-derived time for live
// deployments) and fires a replayable VSINCID1 incident when the error
// budget burn rate exceeds the fast threshold in the short window AND the
// slow threshold in the long window — the multi-window multi-burn-rate
// alerting shape, which pages before the SLO is fully blown. Incidents
// carry the spec, the per-objective window state, and latency exemplars:
// each exemplar links a slow request's span to its OpId, so
// `vinestalk_trace spans <trace> <find-id>` (find id == op index)
// pretty-prints the causal chain behind the p99 outlier.
//
// Quarantine doctrine (the PR-8 profiler rule): span latencies are real
// nanoseconds and therefore nondeterministic, so they only ever leave the
// process through the VSSLO1 sidecar (+ JSON twin) and the Prometheus
// live-scrape surface. Everything the byte-identity doctrine covers —
// world trace, VSTELEM1, incidents' deterministic fields, stdout — is
// identical whether a monitor is attached or not, at any --jobs/--shards.
// The burn-rate *incidents* are the one deliberate exception: they exist
// only when a monitor is armed, live in their own files, and are judged
// on wall-clock latency by design (an alert about real time cannot be a
// pure function of virtual time).
//
// Cost model: no monitor attached = a null-pointer test per hook; spans
// read the clock only when armed.

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/monitor/incident.hpp"
#include "obs/op.hpp"

namespace vs::obs {

/// Request classes the serving path distinguishes.
enum class SloClass : std::uint8_t {
  kUpdate = 0,  // one ingest update frame: admission -> world apply
  kFind = 1,    // one find RPC: issue -> return
  kRound = 2,   // one drain round: drain -> time advanced
};
inline constexpr std::size_t kSloClasses = 3;

[[nodiscard]] const char* to_string(SloClass cls);

/// Find-distance bands: band = bit-width of d (1, 2, 3-4, 5-8, ... hops),
/// clamped to the last band. Log-spaced like Theorem 5.2's cost growth.
inline constexpr std::size_t kSloFindBands = 8;
[[nodiscard]] std::size_t slo_find_band(std::int64_t distance);
/// Human label for a band, e.g. "d 5-8".
[[nodiscard]] std::string slo_band_label(std::size_t band);

/// One declared objective. Quantile objectives bound a latency percentile
/// of a request class; `ns_per_d` variants (find only) bound the
/// distance-normalized latency. A request violates the objective when its
/// (normalized) latency exceeds `target_ns` — the burn windows track the
/// violating fraction against the quantile's error budget.
struct SloObjective {
  SloClass cls = SloClass::kFind;
  bool ns_per_d = false;
  int permille = 990;           // quantile in permille (990 = p99)
  std::int64_t target_ns = 0;   // bound in ns (per unit d when ns_per_d)

  /// Canonical spec line body, e.g. "find p99 <= 2000000ns".
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool operator==(const SloObjective&) const = default;
};

/// The `slo v1` spec. Strict line format, canonical rendering:
///
///   slo v1
///   objective find p99 <= 2000000ns
///   objective find ns_per_d p99 <= 1500
///   availability >= 99.900
///   window short 300000000us long 3600000000us
///   burn fast 14.40 slow 6.00
///   clock virtual
///   end
///
/// `objective` lines repeat (0+). `availability` is optional (omitted when
/// unset). Quantiles parse as p<1-3 digits> (p5 = p500 = median, p99 =
/// p990, p999); targets accept ns/us/ms suffixes and canonicalize to ns.
/// parse(to_string()) == spec, and parse is strict: unknown lines, missing
/// header/end, or out-of-range values throw vs::Error.
struct SloSpec {
  std::vector<SloObjective> objectives;
  /// Availability floor in milli-percent (99900 = 99.9%); 0 = no
  /// availability objective.
  std::int64_t avail_milli = 0;
  std::int64_t window_short_us = 300'000'000;     // 5 virtual minutes
  std::int64_t window_long_us = 3'600'000'000;    // 1 virtual hour
  /// Burn-rate thresholds in centi (1440 = 14.40x budget burn).
  std::int64_t burn_fast_centi = 1440;
  std::int64_t burn_slow_centi = 600;
  /// false = windows keyed by virtual time (replay-exact); true = by
  /// wall-derived time (live deployments without a meaningful round clock).
  bool wall_clock = false;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static SloSpec parse(const std::string& text);
  [[nodiscard]] bool operator==(const SloSpec&) const = default;
};

/// Per-objective burn-window state, as exported (sidecar, incidents, top).
struct SloObjectiveState {
  std::string name;  // canonical objective line body ("find p99 <= ...")
  std::int64_t short_req = 0, short_bad = 0;
  std::int64_t long_req = 0, long_bad = 0;
  std::int64_t burn_short_centi = 0;
  std::int64_t burn_long_centi = 0;
  /// Current percentile estimate for quantile objectives (ns); 0 for
  /// availability.
  std::int64_t measured_ns = 0;
  std::int64_t target_ns = 0;
  bool fired = false;
};

/// Everything the monitor knows, snapshot for the VSSLO1 sidecar and the
/// exporters. Latencies in wall ns.
struct SloReport {
  std::string spec_text;
  bool wall_clock = false;
  std::int64_t end_t_us = 0;  // window clock at snapshot
  struct ClassStats {
    std::int64_t requests = 0;  // RED rate: all requests, served or not
    std::int64_t errors = 0;    // RED errors (wire, drops, deadline misses)
    Histogram latency;          // served requests only, log2 ns buckets
  };
  std::array<ClassStats, kSloClasses> classes;
  Histogram find_ns_per_d;  // latency / max(1, d) per find
  /// Only bands with samples; .first is the slo_find_band index.
  std::vector<std::pair<std::uint32_t, Histogram>> find_bands;
  std::vector<SloObjectiveState> objectives;
  std::vector<SloExemplar> exemplars;  // slowest first

  /// Error budget left in the long window, in milli of the budget
  /// (1000 = untouched, 0 = fully burned), for objective i.
  [[nodiscard]] std::int64_t budget_remaining_milli(std::size_t i) const;
};

class SloMonitor;

/// RAII request span. Open it when the request enters the serving path;
/// close_*() when it completes (reads the monotonic clock at both ends).
/// A span destroyed without being closed counts as an error against its
/// class — the exception-path safety net. Inert (no clock reads) when
/// constructed without a monitor.
class SloSpan {
 public:
  SloSpan() = default;
  SloSpan(SloMonitor* mon, SloClass cls);
  SloSpan(const SloSpan&) = delete;
  SloSpan& operator=(const SloSpan&) = delete;
  SloSpan(SloSpan&& other) noexcept;
  SloSpan& operator=(SloSpan&& other) noexcept;
  ~SloSpan();

  [[nodiscard]] bool armed() const { return mon_ != nullptr; }

  /// `t_us` is the window-clock time at completion (virtual time unless
  /// the spec says `clock wall`).
  void close_update(std::int64_t t_us);
  void close_find(std::int64_t t_us, OpId op, std::int64_t distance,
                  bool deadline_missed);
  void close_round(std::int64_t t_us);

 private:
  SloMonitor* mon_ = nullptr;
  SloClass cls_ = SloClass::kUpdate;
  std::uint64_t t0_ns_ = 0;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloSpec spec);

  [[nodiscard]] const SloSpec& spec() const { return spec_; }

  /// Monotonic wall clock (ns) — span endpoints.
  [[nodiscard]] static std::uint64_t now_ns();

  /// Replaces the scenario embedded into fired incidents (the driver's
  /// replayable workload description). The spec text is always attached.
  void set_scenario(ScenarioSpec scenario);
  /// Incident sink for burn-rate alerts; no sink = alerts only visible in
  /// the report/exporters.
  void set_incident_sink(std::function<void(const IncidentBundle&)> sink);

  /// Raw span entry points (SloSpan wraps these).
  [[nodiscard]] std::uint64_t open_span() const { return now_ns(); }
  void close_update(std::uint64_t t0_ns, std::int64_t t_us);
  void close_find(std::uint64_t t0_ns, std::int64_t t_us, OpId op,
                  std::int64_t distance, bool deadline_missed);
  void close_round(std::uint64_t t0_ns, std::int64_t t_us);
  /// Request-shaped failures with no span (wire errors, queue drops):
  /// RED errors + availability-window bad events at `t_us`.
  void note_errors(SloClass cls, std::int64_t t_us, std::int64_t n);
  /// A span abandoned without completion (SloSpan destructor).
  void note_abort(SloClass cls);

  /// Re-evaluate every objective's burn windows at `t_us` and fire
  /// incidents for newly violated ones. Called from close_find/close_round
  /// already; drivers may call it at their own cadence too.
  void evaluate(std::int64_t t_us);

  [[nodiscard]] SloReport report() const;
  /// state JSON only (per-objective windows) — what incidents embed.
  [[nodiscard]] std::string state_json() const;
  [[nodiscard]] bool any_fired() const;

 private:
  /// Aggregated (t, requests, bad) history for one objective's windows —
  /// one bucket per evaluate() call, pruned past the long window. Keeps
  /// evaluation O(1) amortized per request.
  struct BurnWindow {
    struct Bucket {
      std::int64_t t_us = 0;
      std::int64_t req = 0;
      std::int64_t bad = 0;
    };
    std::deque<Bucket> buckets;
    std::int64_t cur_req = 0, cur_bad = 0;  // accumulating since last seal
    std::int64_t short_req = 0, short_bad = 0;
    std::int64_t long_req = 0, long_bad = 0;
    std::size_t short_begin = 0;  // buckets[short_begin..] is short window
    bool fired = false;

    void add(bool bad) {
      ++cur_req;
      if (bad) ++cur_bad;
    }
    void seal(std::int64_t t_us, std::int64_t short_us, std::int64_t long_us);
  };

  void record(SloClass cls, std::int64_t latency_ns, std::int64_t t_us,
              OpId op, std::int64_t distance, bool error);
  void consider_exemplar(SloClass cls, std::int64_t latency_ns,
                         std::int64_t t_us, OpId op, std::int64_t distance);
  /// Budget denominator in milli: 1000 - permille for quantile
  /// objectives, scaled availability budget otherwise.
  [[nodiscard]] std::int64_t burn_centi(std::size_t obj, std::int64_t bad,
                                        std::int64_t req) const;
  [[nodiscard]] SloObjectiveState objective_state(std::size_t i) const;
  void fire(std::size_t obj, std::int64_t t_us);

  SloSpec spec_;
  ScenarioSpec scenario_;
  std::function<void(const IncidentBundle&)> sink_;

  struct ClassAcc {
    std::int64_t requests = 0;
    std::int64_t errors = 0;
    Histogram latency;
  };
  std::array<ClassAcc, kSloClasses> classes_;
  Histogram ns_per_d_;
  std::array<Histogram, kSloFindBands> bands_;
  /// windows_[i] tracks spec_.objectives[i]; the optional availability
  /// objective rides behind them (index spec_.objectives.size()).
  std::vector<BurnWindow> windows_;
  std::vector<SloExemplar> exemplars_;  // slowest first, capped
  std::int64_t last_t_us_ = 0;
};

}  // namespace vs::obs
