#pragma once
// VSSLO1 — the SLO report sidecar, and its renderings.
//
// Span latencies are wall-clock nanoseconds, so like the VSPROF1 profile
// they are quarantined: an SLO-monitored run writes its SloReport to a
// standalone sidecar (plus a `.json` twin) next to whatever deterministic
// artifacts it also produced, and never into them. The binary form
// round-trips exactly; the renderers produce
//  * JSON (the sidecar twin, machine-readable),
//  * Prometheus gauges (vinestalk_slo_* with per-objective burn rates —
//    the live exporter appends these when a monitor is bound),
//  * a CSV of latency-histogram buckets (`vinestalk_trace slo --csv`).
// The sidecar is written atomically at run end; readers throw vs::Error
// on any malformation, and there is no tail mode.

#include <iosfwd>
#include <string>

#include "obs/slo/slo.hpp"

namespace vs::obs {

inline constexpr std::uint32_t kSloFormatVersion = 1;

void write_slo_file(const std::string& path, const SloReport& report);
[[nodiscard]] SloReport read_slo_file(const std::string& path);

/// JSON rendering (one object; stable key order) — also written as the
/// sidecar's `.json` twin.
void slo_to_json(std::ostream& os, const SloReport& report);

/// Prometheus text-exposition gauges under `prefix` (vinestalk →
/// vinestalk_slo_requests_total{class="find"},
/// vinestalk_slo_burn_rate_centi{objective="...",window="short"}, ...).
void slo_to_prometheus(std::ostream& os, const SloReport& report,
                       const std::string& prefix);

/// Latency-bucket CSV: class,le_ns,count rows (le_ns "+inf" for the
/// overflow bucket), classes then find distance bands.
void slo_to_csv(std::ostream& os, const SloReport& report);

}  // namespace vs::obs
