#pragma once
// Structured event tracing — the deterministic observability layer.
//
// Producers append compact binary TraceEvent records to a per-world
// TraceRecorder (append-only segment buffers; the amortised cost is one
// 64-byte store per record, never a per-event allocation). Readers — the
// vinestalk_trace tool and the obs::trace_query helpers — reconstruct
// causal spans offline. The split follows varnish's trackrdrd shape:
// recording is deliberately dumb and cheap, all interpretation happens
// after the run, so tracing never perturbs the simulation it observes.
//
// Causality: the scheduler stamps every scheduled event with the sequence
// number of the event that scheduled it (sim::Scheduler::current_seq /
// current_cause). Every record carries both, so the events recorded while
// one scheduler event fires form a "context", and contexts chain: a find
// is replayable from its client injection through findQuery/findAck
// deliveries to the found output, and grow/shrink propagation depth is
// directly measurable against the Lemma 4.1–4.4 update bounds.
//
// Cost model, in three states:
//  * compiled out (-DVINESTALK_TRACE=OFF): kTraceCompiled is false and
//    every record point is dead code the compiler deletes;
//  * compiled in, disabled (the default at runtime): a record point is a
//    pointer test plus a bool load, no stores, no allocation;
//  * enabled: one TraceEvent store per record, segment-granular growth.

#include <cstdint>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

namespace vs::obs {

#if defined(VINESTALK_TRACE) && VINESTALK_TRACE
inline constexpr bool kTraceCompiled = true;
#else
inline constexpr bool kTraceCompiled = false;
#endif

/// What happened. Field semantics per kind are documented inline; unused
/// fields are -1 (ids) or 0 (arg/extra) so traces are byte-deterministic.
enum class TraceKind : std::uint8_t {
  kSend = 1,     // VSA→VSA cTOBsend: a=from cluster, b=to cluster, arg=hops
  kClientSend,   // client → level-0 cluster: a=region, b=cluster
  kBroadcast,    // level-0 cluster → region clients: a=cluster, b=region
  kDeliver,      // message handed to a Tracker: a=from cluster, b=cluster
  kDrop,         // delivery dropped (no alive hosting VSA): a/b as kDeliver
  kLost,         // channel-fault loss at send time: a/b as kSend
  kTimerFire,    // grow/shrink timer expiry: a=cluster, arg=0 none/1 grow/2 shrink
  kFindTimeout,  // nbrtimeout expiry for a find: a=cluster
  kFindIssued,   // find injected: a=origin region, arg=distance to evader
  kFoundOutput,  // believing client performed the found output: a=region
  kMoveIssued,   // evader placed/moved: a=from region (-1 on placement),
                 // b=to region, arg=walk distance (0 on placement)
};

[[nodiscard]] std::string_view to_string(TraceKind kind);

/// One fixed-size binary record. Every field is explicit (no implicit
/// padding) so the on-disk image of a trace is byte-identical whenever the
/// recorded values are — the property the --jobs determinism tests pin.
struct TraceEvent {
  std::int64_t time_us;   // virtual time of the record
  std::uint64_t seq;      // scheduler event being fired (0 = external code)
  std::uint64_t cause;    // event that scheduled `seq` (0 = external)
  std::int64_t find;      // FindId value, -1 when not find-related
  std::int32_t a;         // kind-specific, see TraceKind
  std::int32_t b;         // kind-specific, see TraceKind
  std::int32_t target;    // TargetId value, -1 when not target-related
  std::int32_t arg;       // kind-specific payload (hops, timer branch)
  std::int16_t level;     // hierarchy level, -1 when not applicable
  std::uint8_t kind;      // TraceKind
  std::uint8_t msg;       // stats::MsgKind for message records, 0xff else
  std::int32_t extra;     // findAck pointer x, else 0
  std::uint32_t op;       // obs::OpId this event is charged to (0 = background)
  std::uint32_t pad0;     // explicit padding, always 0
};
static_assert(sizeof(TraceEvent) == 64, "no implicit padding allowed");
static_assert(std::is_trivially_copyable_v<TraceEvent>);

inline constexpr std::uint8_t kNoMsg = 0xff;

/// Append-only per-world event log. Single-threaded like the world that
/// owns it; the trial pool keeps one recorder per trial and merges the
/// extracted event vectors in trial-index order.
///
/// Two storage modes:
///  * unbounded (default): append-only segment buffers, the full-trace
///    artifact path;
///  * ring (set_ring_capacity(K)): a fixed K-event circular buffer holding
///    the most recent records — the watchdog's always-on flight recorder.
///    The ring is allocated once, up front; append never allocates again,
///    so monitoring runs at fixed memory on arbitrarily long executions.
class TraceRecorder {
 public:
  /// Events per segment: 8192 × 64 B = 512 KiB growth granule.
  static constexpr std::size_t kSegmentEvents = 8192;

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Switch to ring mode with room for the last `k` events (k > 0), or
  /// back to unbounded mode (k = 0). Allocates the whole ring immediately
  /// and discards anything recorded so far.
  void set_ring_capacity(std::size_t k);
  [[nodiscard]] std::size_t ring_capacity() const { return ring_.size(); }

  /// Redirect this thread's append() calls on `from` into `to` — the
  /// shard executor's parallel-window binding. Lane threads buffer into a
  /// plain lane-local vector; the barrier patches seq/cause to the merged
  /// real values and replays the records here in merged order, so the
  /// final trace is byte-identical to a serial run. Pass nulls to clear.
  static void set_thread_redirect(const TraceRecorder* from,
                                  std::vector<TraceEvent>* to) {
    tls_redirect_from_ = from;
    tls_redirect_to_ = to;
  }

  /// Record one event. Callers gate on enabled() (see the record points in
  /// vsa::CGcast); append itself never checks, never fails, and allocates
  /// only when an unbounded recorder's current segment is full (a ring
  /// recorder never allocates here — old events are overwritten).
  void append(const TraceEvent& e) {
    if (tls_redirect_from_ == this && tls_redirect_to_ != nullptr) {
      tls_redirect_to_->push_back(e);
      return;
    }
    if (!ring_.empty()) {
      ring_[ring_next_] = e;
      ring_next_ = ring_next_ + 1 == ring_.size() ? 0 : ring_next_ + 1;
      if (ring_fill_ < ring_.size()) ++ring_fill_;
      return;
    }
    if (seg_fill_ == kSegmentEvents || segments_.empty()) new_segment();
    segments_.back()->events[seg_fill_++] = e;
  }

  [[nodiscard]] std::size_t size() const {
    if (!ring_.empty()) return ring_fill_;
    return segments_.empty()
               ? 0
               : (segments_.size() - 1) * kSegmentEvents + seg_fill_;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// Number of segment allocations so far (0 until the first record — the
  /// disabled-mode zero-overhead tests pin this).
  [[nodiscard]] std::size_t segments_allocated() const {
    return segments_.size();
  }

  /// Copy out all events in record order, oldest first (the offline-reader
  /// handoff; in ring mode, the surviving suffix of the run).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear();

 private:
  struct Segment {
    TraceEvent events[kSegmentEvents];
  };
  void new_segment();

  bool enabled_ = false;
  std::size_t seg_fill_ = 0;  // fill of segments_.back()
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<TraceEvent> ring_;  // non-empty selects ring mode
  std::size_t ring_next_ = 0;     // next write slot
  std::size_t ring_fill_ = 0;     // events held (≤ ring_.size())

  inline static thread_local const TraceRecorder* tls_redirect_from_ =
      nullptr;
  inline static thread_local std::vector<TraceEvent>* tls_redirect_to_ =
      nullptr;
};

}  // namespace vs::obs
