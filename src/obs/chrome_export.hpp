#pragma once
// Chrome trace-event JSON export — any VSTRACE trace (full run or a
// watchdog flight-recorder ring) rendered for chrome://tracing / Perfetto.
//
// Mapping:
//  * one Chrome "process" per world (pid = trial index), named via
//    process_name metadata;
//  * one lane ("thread") per hierarchy level — tid 1+level carries that
//    level's grow/shrink/deliver records — plus lane 0 for level-less
//    records (find issue/found, client traffic), named "L<l>" / "finds";
//  * every record becomes a 1 µs "X" (complete) slice at its virtual time,
//    named by TraceKind (sends additionally by stats::MsgKind, e.g.
//    "send:grow"), with seq/cause/target/find/a/b/arg and the owning
//    logical operation ("op", e.g. "move#3") in args;
//  * C-gcast cost records additionally feed per-level counter tracks
//    ("L<l> cost", one per world): cumulative message count and hop-work,
//    rendered by Perfetto as stacked counter series;
//  * the scheduler's causal seq→cause links become flow events: each
//    record whose cause resolves to an earlier record of the same world
//    gets an "s"/"f" flow pair, so Perfetto draws the grow/shrink/find
//    cascades as arrows across lanes;
//  * optionally, a VSPROF1 profile report's virtual-time snapshots become
//    a separate "cpu profile" process with one counter track of cumulative
//    per-subsystem self-ns — CPU cost lined up under the virtual timeline.
//
// The output is deterministic — a pure function of the trace bytes — except
// for the optional profile process, whose values are wall-clock.

#include <iosfwd>
#include <vector>

#include "obs/profile/profiler.hpp"
#include "obs/trace_io.hpp"

namespace vs::obs {

/// Statistics of one export (test hooks and tool chatter).
struct ChromeExportStats {
  std::size_t slices = 0;    // one per TraceEvent
  std::size_t flows = 0;     // s/f pairs emitted
  std::size_t counters = 0;  // cost + profile counter samples
};

ChromeExportStats write_chrome_trace(std::ostream& os,
                                     const std::vector<WorldTrace>& worlds,
                                     const ProfileReport* profile = nullptr);

}  // namespace vs::obs
