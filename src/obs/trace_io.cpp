#include "obs/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace vs::obs {

namespace {

constexpr char kMagic[8] = {'V', 'S', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr char kEndMagic[8] = {'V', 'S', 'T', 'R', 'E', 'N', 'D', '1'};

/// On-disk record layout of format v2 (pre-OpId, 56 bytes). Field order
/// matches today's TraceEvent prefix exactly.
struct LegacyEvent56 {
  std::int64_t time_us;
  std::uint64_t seq;
  std::uint64_t cause;
  std::int64_t find;
  std::int32_t a;
  std::int32_t b;
  std::int32_t target;
  std::int32_t arg;
  std::int16_t level;
  std::uint8_t kind;
  std::uint8_t msg;
  std::int32_t extra;
};
static_assert(sizeof(LegacyEvent56) == 56);

TraceEvent widen(const LegacyEvent56& l) {
  return TraceEvent{.time_us = l.time_us,
                    .seq = l.seq,
                    .cause = l.cause,
                    .find = l.find,
                    .a = l.a,
                    .b = l.b,
                    .target = l.target,
                    .arg = l.arg,
                    .level = l.level,
                    .kind = l.kind,
                    .msg = l.msg,
                    .extra = l.extra,
                    .op = 0,
                    .pad0 = 0};
}

template <class T>
void put(std::ostream& os, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <class T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  VS_REQUIRE(is.good(), "truncated trace stream");
  return v;
}

}  // namespace

void write_trace(std::ostream& os, const std::vector<WorldTrace>& worlds) {
  os.write(kMagic, sizeof kMagic);
  put<std::uint32_t>(os, kTraceFormatVersion);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(worlds.size()));
  std::uint64_t total = 0;
  for (const WorldTrace& w : worlds) {
    put<std::uint32_t>(os, w.world);
    put<std::uint32_t>(os, 0);  // reserved
    put<std::uint64_t>(os, static_cast<std::uint64_t>(w.events.size()));
    os.write(reinterpret_cast<const char*>(w.events.data()),
             static_cast<std::streamsize>(w.events.size() *
                                          sizeof(TraceEvent)));
    total += w.events.size();
  }
  put<std::uint64_t>(os, total);
  os.write(kEndMagic, sizeof kEndMagic);
}

void write_trace_file(const std::string& path,
                      const std::vector<WorldTrace>& worlds) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  VS_REQUIRE(os.good(), "cannot open trace file for writing: " << path);
  write_trace(os, worlds);
  VS_REQUIRE(os.good(), "write failed for trace file: " << path);
}

void write_trace_file(const std::string& path, const TraceRecorder& recorder) {
  write_trace_file(path, {WorldTrace{0, recorder.events()}});
}

std::vector<WorldTrace> read_trace(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  VS_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof magic) == 0,
             "not a VSTRACE1 trace file");
  const auto version = get<std::uint32_t>(is);
  VS_REQUIRE(version == 2 || version == kTraceFormatVersion,
             "unsupported trace format version "
                 << version << " (this build reads v2–v" << kTraceFormatVersion
                 << "; re-record the trace)");
  const std::size_t record_size =
      version >= 3 ? sizeof(TraceEvent) : sizeof(LegacyEvent56);
  const auto world_count = get<std::uint32_t>(is);
  std::vector<WorldTrace> worlds;
  worlds.reserve(world_count);
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < world_count; ++i) {
    WorldTrace w;
    w.world = get<std::uint32_t>(is);
    (void)get<std::uint32_t>(is);  // reserved
    const auto count = get<std::uint64_t>(is);
    // An implausible count is header corruption, not a real section — fail
    // before attempting a multi-gigabyte resize.
    VS_REQUIRE(count <= (std::uint64_t{1} << 32),
               "corrupt trace stream: world " << w.world << " claims "
                                              << count << " events");
    w.events.resize(count);
    if (version >= 3) {
      is.read(reinterpret_cast<char*>(w.events.data()),
              static_cast<std::streamsize>(count * record_size));
    } else {
      std::vector<LegacyEvent56> legacy(count);
      is.read(reinterpret_cast<char*>(legacy.data()),
              static_cast<std::streamsize>(count * record_size));
      for (std::size_t j = 0; j < count; ++j) w.events[j] = widen(legacy[j]);
    }
    VS_REQUIRE(is.good() && is.gcount() == static_cast<std::streamsize>(
                                               count * record_size),
               "truncated trace stream: world " << w.world << " declares "
                                                << count
                                                << " events but the file "
                                                   "ends early");
    total += count;
    worlds.push_back(std::move(w));
  }
  const auto declared_total = get<std::uint64_t>(is);
  char end_magic[8];
  is.read(end_magic, sizeof end_magic);
  VS_REQUIRE(is.good() && is.gcount() == sizeof end_magic &&
                 std::memcmp(end_magic, kEndMagic, sizeof end_magic) == 0,
             "truncated trace stream: missing VSTREND1 trailer (file cut "
             "short or not fully written)");
  VS_REQUIRE(declared_total == total,
             "corrupt trace stream: trailer declares "
                 << declared_total << " events, sections hold " << total);
  return worlds;
}

std::vector<WorldTrace> read_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  VS_REQUIRE(is.good(), "cannot open trace file: " << path);
  return read_trace(is);
}

}  // namespace vs::obs
