#include "obs/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace vs::obs {

namespace {

constexpr char kMagic[8] = {'V', 'S', 'T', 'R', 'A', 'C', 'E', '1'};

template <class T>
void put(std::ostream& os, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <class T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  VS_REQUIRE(is.good(), "truncated trace stream");
  return v;
}

}  // namespace

void write_trace(std::ostream& os, const std::vector<WorldTrace>& worlds) {
  os.write(kMagic, sizeof kMagic);
  put<std::uint32_t>(os, kTraceFormatVersion);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(worlds.size()));
  for (const WorldTrace& w : worlds) {
    put<std::uint32_t>(os, w.world);
    put<std::uint32_t>(os, 0);  // reserved
    put<std::uint64_t>(os, static_cast<std::uint64_t>(w.events.size()));
    os.write(reinterpret_cast<const char*>(w.events.data()),
             static_cast<std::streamsize>(w.events.size() *
                                          sizeof(TraceEvent)));
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<WorldTrace>& worlds) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  VS_REQUIRE(os.good(), "cannot open trace file for writing: " << path);
  write_trace(os, worlds);
  VS_REQUIRE(os.good(), "write failed for trace file: " << path);
}

void write_trace_file(const std::string& path, const TraceRecorder& recorder) {
  write_trace_file(path, {WorldTrace{0, recorder.events()}});
}

std::vector<WorldTrace> read_trace(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  VS_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof magic) == 0,
             "not a VSTRACE1 trace file");
  const auto version = get<std::uint32_t>(is);
  VS_REQUIRE(version == kTraceFormatVersion,
             "unsupported trace format version " << version);
  const auto world_count = get<std::uint32_t>(is);
  std::vector<WorldTrace> worlds;
  worlds.reserve(world_count);
  for (std::uint32_t i = 0; i < world_count; ++i) {
    WorldTrace w;
    w.world = get<std::uint32_t>(is);
    (void)get<std::uint32_t>(is);  // reserved
    const auto count = get<std::uint64_t>(is);
    w.events.resize(count);
    is.read(reinterpret_cast<char*>(w.events.data()),
            static_cast<std::streamsize>(count * sizeof(TraceEvent)));
    VS_REQUIRE(is.good(), "truncated trace stream (world " << w.world << ")");
    worlds.push_back(std::move(w));
  }
  return worlds;
}

std::vector<WorldTrace> read_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  VS_REQUIRE(is.good(), "cannot open trace file: " << path);
  return read_trace(is);
}

}  // namespace vs::obs
