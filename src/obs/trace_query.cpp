#include "obs/trace_query.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "stats/counters.hpp"

namespace vs::obs {

namespace {

constexpr std::size_t kKindSlots = 16;  // > max TraceKind value

bool is_find_msg(std::uint8_t msg) {
  switch (static_cast<stats::MsgKind>(msg)) {
    case stats::MsgKind::kFind:
    case stats::MsgKind::kFindQuery:
    case stats::MsgKind::kFindAck:
    case stats::MsgKind::kFound:
      return true;
    default:
      return false;
  }
}

bool is_find_phase(const TraceEvent& e) {
  const auto k = static_cast<TraceKind>(e.kind);
  return k == TraceKind::kFindIssued || k == TraceKind::kFoundOutput ||
         k == TraceKind::kFindTimeout ||
         (e.msg != kNoMsg && is_find_msg(e.msg));
}

std::string_view msg_name(std::uint8_t msg) {
  if (msg == kNoMsg) return "-";
  return stats::to_string(static_cast<stats::MsgKind>(msg));
}

}  // namespace

TraceSummary summarize(const WorldTrace& w) {
  TraceSummary s;
  s.world = w.world;
  s.events = w.events.size();
  s.by_kind.assign(kKindSlots, 0);
  s.sends_by_msg.assign(static_cast<std::size_t>(stats::MsgKind::kCount), 0);
  bool first = true;
  for (const TraceEvent& e : w.events) {
    if (first) {
      s.first_us = e.time_us;
      first = false;
    }
    s.last_us = e.time_us;
    if (e.kind < kKindSlots) ++s.by_kind[e.kind];
    const auto kind = static_cast<TraceKind>(e.kind);
    if ((kind == TraceKind::kSend || kind == TraceKind::kClientSend) &&
        e.msg < s.sends_by_msg.size()) {
      ++s.sends_by_msg[e.msg];
    }
    if (kind == TraceKind::kFindIssued) ++s.finds_issued;
    if (kind == TraceKind::kFoundOutput) ++s.finds_completed;
    s.max_level = std::max(s.max_level, e.level);
  }
  return s;
}

FindSpan find_span(const WorldTrace& w, std::int64_t find_id) {
  FindSpan span;
  span.find = find_id;
  // Contexts (scheduler seqs) that recorded at least one event, any kind —
  // a find's causal parent may be a move-phase context (e.g. the grow
  // delivery that armed a timer the find later rides through).
  std::unordered_set<std::uint64_t> seen_ctx;
  std::unordered_set<std::uint64_t> span_causes;
  bool connected = true;
  for (const TraceEvent& e : w.events) {
    if (e.find == find_id) {
      const auto kind = static_cast<TraceKind>(e.kind);
      if (kind == TraceKind::kFindIssued) span.issued = true;
      if (kind == TraceKind::kFoundOutput) span.found = true;
      // A find-phase record fired inside context e.seq; that context was
      // scheduled by e.cause. External injections (cause 0) are roots.
      if (e.cause != 0 && seen_ctx.find(e.cause) == seen_ctx.end()) {
        connected = false;
      }
      span.events.push_back(e);
      span_causes.insert(e.cause);
    }
    if (e.seq != 0) seen_ctx.insert(e.seq);
  }
  span.causally_connected = connected && !span.events.empty();
  return span;
}

std::vector<std::int64_t> find_ids(const WorldTrace& w) {
  std::set<std::int64_t> ids;
  for (const TraceEvent& e : w.events) {
    if (e.find >= 0) ids.insert(e.find);
  }
  return {ids.begin(), ids.end()};
}

std::vector<TraceEvent> timeline(const WorldTrace& w, int level) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : w.events) {
    if (e.level == level) out.push_back(e);
  }
  return out;
}

std::string CheckReport::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "check: OK\n";
    return os.str();
  }
  os << "check: " << violations.size() << " violation(s)\n";
  for (const std::string& v : violations) os << "  " << v << "\n";
  return os.str();
}

CheckReport check_trace(const WorldTrace& w) {
  CheckReport report;
  const auto flag = [&](const std::string& what) {
    report.violations.push_back("world " + std::to_string(w.world) + ": " +
                                what);
  };

  std::int64_t prev_time = 0;
  std::unordered_set<std::uint64_t> seen_ctx;
  // Per-target high-water grow level (Lemma 4.1/4.3) and grow-seen set per
  // level (Lemma 4.2/4.4).
  std::map<std::int32_t, std::int16_t> grow_high;
  std::set<std::pair<std::int32_t, std::int16_t>> grow_seen;
  std::set<std::int64_t> issued, completed, queried, acked;
  std::vector<std::size_t> sends(static_cast<std::size_t>(
                                     stats::MsgKind::kCount),
                                 0),
      delivers(sends);

  for (std::size_t i = 0; i < w.events.size(); ++i) {
    const TraceEvent& e = w.events[i];
    const auto kind = static_cast<TraceKind>(e.kind);

    if (e.time_us < prev_time) {
      flag("record " + std::to_string(i) + ": virtual time went backwards (" +
           std::to_string(e.time_us) + "us after " +
           std::to_string(prev_time) + "us)");
    }
    prev_time = std::max(prev_time, e.time_us);

    if (is_find_phase(e) && e.cause != 0 &&
        seen_ctx.find(e.cause) == seen_ctx.end()) {
      flag("record " + std::to_string(i) + ": find-phase event (" +
           std::string(to_string(kind)) +
           ") caused by unrecorded context seq=" + std::to_string(e.cause));
    }
    if (e.seq != 0) seen_ctx.insert(e.seq);

    const bool is_send =
        kind == TraceKind::kSend || kind == TraceKind::kClientSend;
    if (is_send && e.msg < sends.size()) ++sends[e.msg];
    if (kind == TraceKind::kDeliver && e.msg < delivers.size()) {
      ++delivers[e.msg];
    }

    if (is_send && e.msg == static_cast<std::uint8_t>(stats::MsgKind::kGrow)) {
      auto [it, inserted] = grow_high.emplace(e.target, e.level);
      if (!inserted) {
        if (e.level > it->second + 1) {
          flag("record " + std::to_string(i) + ": grow for target " +
               std::to_string(e.target) + " at level " +
               std::to_string(e.level) + " skips levels (previous max " +
               std::to_string(it->second) + ") — violates Lemma 4.1");
        }
        it->second = std::max(it->second, e.level);
      } else if (e.level > 0) {
        flag("record " + std::to_string(i) + ": first grow for target " +
             std::to_string(e.target) + " at level " +
             std::to_string(e.level) + " (> 0) — violates Lemma 4.1");
      }
      grow_seen.insert({e.target, e.level});
    }
    if (is_send &&
        e.msg == static_cast<std::uint8_t>(stats::MsgKind::kShrink) &&
        grow_seen.find({e.target, e.level}) == grow_seen.end()) {
      flag("record " + std::to_string(i) + ": shrink for target " +
           std::to_string(e.target) + " at level " + std::to_string(e.level) +
           " with no earlier grow at that level — violates Lemma 4.2");
    }

    if (kind == TraceKind::kFindIssued) issued.insert(e.find);
    if (kind == TraceKind::kFoundOutput) {
      if (issued.find(e.find) == issued.end()) {
        flag("record " + std::to_string(i) + ": found output for find " +
             std::to_string(e.find) + " that was never issued");
      }
      completed.insert(e.find);
    }
    if (is_send &&
        e.msg == static_cast<std::uint8_t>(stats::MsgKind::kFindQuery)) {
      queried.insert(e.find);
    }
    if (is_send &&
        e.msg == static_cast<std::uint8_t>(stats::MsgKind::kFindAck)) {
      if (queried.find(e.find) == queried.end()) {
        flag("record " + std::to_string(i) + ": findAck for find " +
             std::to_string(e.find) + " with no earlier findQuery");
      }
      acked.insert(e.find);
    }
  }

  for (std::size_t m = 0; m < sends.size(); ++m) {
    if (delivers[m] > sends[m]) {
      flag(std::string(stats::to_string(static_cast<stats::MsgKind>(m))) +
           ": " + std::to_string(delivers[m]) + " deliveries but only " +
           std::to_string(sends[m]) + " sends");
    }
  }
  for (const std::int64_t f : issued) {
    if (completed.find(f) == completed.end()) {
      flag("find " + std::to_string(f) +
           " was issued but never completed within the trace");
    }
  }
  return report;
}

CheckReport check_trace(const std::vector<WorldTrace>& worlds) {
  CheckReport all;
  for (const WorldTrace& w : worlds) {
    CheckReport r = check_trace(w);
    all.violations.insert(all.violations.end(), r.violations.begin(),
                          r.violations.end());
  }
  return all;
}

std::string format_event(const TraceEvent& e) {
  std::ostringstream os;
  const auto kind = static_cast<TraceKind>(e.kind);
  os << "t=" << e.time_us << "us seq=" << e.seq << " cause=" << e.cause << " "
     << to_string(kind);
  if (e.msg != kNoMsg) os << "/" << msg_name(e.msg);
  if (e.level >= 0) os << " L" << e.level;
  switch (kind) {
    case TraceKind::kSend:
    case TraceKind::kLost:
      os << " " << e.a << "→" << e.b << " hops=" << e.arg;
      break;
    case TraceKind::kClientSend:
      os << " region " << e.a << " → cluster " << e.b;
      break;
    case TraceKind::kBroadcast:
      os << " cluster " << e.a << " → region " << e.b;
      break;
    case TraceKind::kDeliver:
    case TraceKind::kDrop:
      os << " " << e.a << "→" << e.b;
      break;
    case TraceKind::kTimerFire:
      os << " cluster " << e.a
         << (e.arg == 1 ? " grow" : e.arg == 2 ? " shrink" : " idle");
      break;
    case TraceKind::kFindTimeout:
      os << " cluster " << e.a;
      break;
    case TraceKind::kFindIssued:
    case TraceKind::kFoundOutput:
      os << " region " << e.a;
      break;
    case TraceKind::kMoveIssued:
      os << " region " << e.a << " → " << e.b << " d=" << e.arg;
      break;
  }
  if (e.target >= 0) os << " target=" << e.target;
  if (e.find >= 0) os << " find=" << e.find;
  if (e.extra != 0) os << " x=" << e.extra;
  return os.str();
}

}  // namespace vs::obs
