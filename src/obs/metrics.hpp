#pragma once
// Named counters, gauges, and histograms with a deterministic merge.
//
// Every metric value here derives from simulation state (virtual time,
// message counts), never from wall-clock or thread identity, so per-trial
// registries merged in trial-index order produce byte-identical JSON for
// every --jobs value. Merge semantics: counters and histogram buckets sum,
// gauges keep the maximum — all commutative, so the index-order convention
// is a determinism guarantee rather than a correctness requirement.
//
// Registries are name-keyed (sorted maps) so to_json output is stable and
// two registries merge by name without a shared registration sequence.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vs::obs {

/// Fixed-bound histogram: counts of values v ≤ bound per bucket, plus an
/// implicit +inf bucket, with running count/sum/min/max.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::span<const std::int64_t> bounds);

  /// Reconstruct from serialized parts (the VSSLO1 sidecar reader).
  /// Requires buckets.size() == bounds.size() + 1 and consistent tallies.
  [[nodiscard]] static Histogram from_parts(std::vector<std::int64_t> bounds,
                                            std::vector<std::int64_t> buckets,
                                            std::int64_t count,
                                            std::int64_t sum, std::int64_t min,
                                            std::int64_t max);

  void record(std::int64_t value);
  /// Requires identical bucket bounds.
  void merge(const Histogram& other);
  /// Zero every tally, keeping the bucket layout — lets a periodic
  /// sampler reuse one histogram instead of reallocating per sample.
  void reset();

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::int64_t>& buckets() const {
    return buckets_;
  }

  /// Bucket-interpolated quantile estimate for q in [0, 1]: walks to the
  /// bucket holding the q-th recorded value and interpolates linearly
  /// inside it, clamped to the observed [min, max] (so the estimate of an
  /// overflow-bucket quantile is max, not +inf). 0 when count() == 0.
  [[nodiscard]] std::int64_t percentile(double q) const;

  void to_json(std::ostream& os) const;

 private:
  std::vector<std::int64_t> bounds_;   // ascending, upper-inclusive
  std::vector<std::int64_t> buckets_;  // bounds_.size() + 1
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Power-of-two ("log-bucketed") histogram bounds: lo, 2·lo, 4·lo, ...
/// up to the first bound >= hi. Constant relative resolution across the
/// whole range — the right layout for latencies, where p50 and p99 can sit
/// orders of magnitude apart. Requires 0 < lo <= hi.
[[nodiscard]] std::vector<std::int64_t> log2_bounds(std::int64_t lo,
                                                    std::int64_t hi);

class MetricsRegistry {
 public:
  /// Add `delta` to a counter (created at 0 on first use). Registering a
  /// name that already exists as a different metric type fails fast (it
  /// used to silently alias — two series under one name with divergent
  /// merge semantics).
  void add(std::string_view name, std::int64_t delta = 1);
  /// Set a gauge (merge keeps the maximum across trials).
  void set_gauge(std::string_view name, std::int64_t value);
  /// Histogram accessor; `bounds` fixes the bucket layout on first use and
  /// must match on later calls.
  Histogram& histogram(std::string_view name,
                       std::span<const std::int64_t> bounds);

  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  [[nodiscard]] std::int64_t gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;
  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Exporter iteration, sorted by name (stable output order) — what the
  /// Prometheus renderer walks.
  [[nodiscard]] const std::map<std::string, std::int64_t, std::less<>>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t, std::less<>>&
  gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const {
    return histograms_;
  }

  /// Fold another registry in (the TrialPool join step — call in
  /// trial-index order for deterministic artifacts).
  void merge(const MetricsRegistry& other);

  void to_json(std::ostream& os, int indent = 0) const;

 private:
  /// Fails unless `name` is absent from the two maps of other types
  /// (`wanted` names the type being registered, for the error message).
  void check_name_free(std::string_view name, std::string_view wanted) const;

  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace vs::obs
