#pragma once
// Trace file format: the bench/CLI artifact the vinestalk_trace tool reads.
//
// Layout (all integers little-endian native, the build's own byte order —
// traces are run artifacts like BENCH_*.json, not an interchange format):
//
//   bytes 0..7   magic "VSTRACE1"
//   u32          format version (kTraceFormatVersion)
//   u32          world count
//   per world:   u32 world index, u32 reserved(0), u64 event count,
//                count × TraceEvent (raw 64-byte records)
//   trailer:     u64 total event count (sum over worlds), bytes "VSTREND1"
//
// Version history: v2 recorded 56-byte events (no op field); v3 appends
// the 32-bit OpId plus explicit padding. The reader still accepts v2
// traces, widening each record with op = 0 (background), so pre-ledger
// artifacts remain auditable — they just attribute everything to
// background.
//
// The trailer (format v2) makes truncation and header corruption
// detectable: a reader that consumed every declared world must land
// exactly on a trailer whose count matches what it read, so a short or
// bit-flipped file fails loudly instead of yielding a silently short
// trace. vinestalk_trace surfaces these as diagnostics with exit 1.
//
// A multi-trial sweep writes one world section per trial, in trial-index
// order; because every TraceEvent derives from world-local state only, the
// file is byte-identical for every --jobs value (pinned by tests).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace vs::obs {

inline constexpr std::uint32_t kTraceFormatVersion = 3;

/// One world's (trial's) events, tagged with its trial index.
struct WorldTrace {
  std::uint32_t world = 0;
  std::vector<TraceEvent> events;
};

void write_trace(std::ostream& os, const std::vector<WorldTrace>& worlds);
void write_trace_file(const std::string& path,
                      const std::vector<WorldTrace>& worlds);
/// Single-world convenience (quickstart, the CLI's `trace` command).
void write_trace_file(const std::string& path, const TraceRecorder& recorder);

/// Throws vs::Error on bad magic/version/truncation.
[[nodiscard]] std::vector<WorldTrace> read_trace(std::istream& is);
[[nodiscard]] std::vector<WorldTrace> read_trace_file(const std::string& path);

}  // namespace vs::obs
