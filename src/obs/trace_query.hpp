#pragma once
// Offline trace interpretation: summaries, causal span reconstruction,
// per-level timelines, and invariant replay ("check").
//
// These are the reader half of the observability layer — pure functions
// over recorded WorldTrace data, shared by the vinestalk_trace tool and
// the trace tests. Nothing here touches a live simulation.
//
// The `check` pass replays structural consequences of the paper's update
// and find lemmas against a trace:
//  * Lemma 4.1/4.3 (updates climb one level per step): a grow send for a
//    target never appears more than one level above every earlier grow;
//  * Lemma 4.2/4.4 (shrinks trail the path they clean): a shrink send at
//    level l needs an earlier grow send at level l for the same target;
//  * two-phase find (§V): findAck only answers an earlier findQuery of the
//    same find, found outputs only follow an issued find, and every
//    issued find completes within a quiesced trace;
//  * execution sanity: virtual time never decreases, find-phase causal
//    links resolve to recorded contexts, and per message kind no more
//    deliveries happen than sends.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"

namespace vs::obs {

/// Aggregate shape of one world's trace.
struct TraceSummary {
  std::uint32_t world = 0;
  std::size_t events = 0;
  std::int64_t first_us = 0;
  std::int64_t last_us = 0;
  /// Counts indexed by TraceKind value (index 0 unused).
  std::vector<std::size_t> by_kind;
  /// Counts of kSend/kClientSend records per stats::MsgKind value.
  std::vector<std::size_t> sends_by_msg;
  std::size_t finds_issued = 0;
  std::size_t finds_completed = 0;
  std::int16_t max_level = -1;
};

[[nodiscard]] TraceSummary summarize(const WorldTrace& w);

/// The causal span of one find: every record carrying its FindId, in
/// record order, plus the verdict whether the chain is complete — issued,
/// answered, and causally connected (each find-phase record's scheduling
/// context resolves to an earlier record of the same world).
struct FindSpan {
  std::int64_t find = -1;
  std::vector<TraceEvent> events;
  bool issued = false;
  bool found = false;
  bool causally_connected = false;
  [[nodiscard]] bool complete() const {
    return issued && found && causally_connected;
  }
};

[[nodiscard]] FindSpan find_span(const WorldTrace& w, std::int64_t find_id);

/// FindIds observed in a world, ascending.
[[nodiscard]] std::vector<std::int64_t> find_ids(const WorldTrace& w);

/// Records at one hierarchy level, in record (time) order.
[[nodiscard]] std::vector<TraceEvent> timeline(const WorldTrace& w, int level);

struct CheckReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] CheckReport check_trace(const WorldTrace& w);
[[nodiscard]] CheckReport check_trace(const std::vector<WorldTrace>& worlds);

/// One-line human rendering of a record (the tool's list format).
[[nodiscard]] std::string format_event(const TraceEvent& e);

}  // namespace vs::obs
