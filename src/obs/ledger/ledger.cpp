#include "obs/ledger/ledger.hpp"

#include <sstream>

namespace vs::obs {

namespace {

void merge_into(OpCost& acc, const OpCost& c) {
  acc.msgs += c.msgs;
  acc.work += c.work;
  if (c.first_us >= 0 && (acc.first_us < 0 || c.first_us < acc.first_us)) {
    acc.first_us = c.first_us;
  }
  if (c.last_us > acc.last_us) acc.last_us = c.last_us;
  if (acc.msgs_by_level.size() < c.msgs_by_level.size()) {
    acc.msgs_by_level.resize(c.msgs_by_level.size(), 0);
    acc.work_by_level.resize(c.work_by_level.size(), 0);
  }
  for (std::size_t l = 0; l < c.msgs_by_level.size(); ++l) {
    acc.msgs_by_level[l] += c.msgs_by_level[l];
    acc.work_by_level[l] += c.work_by_level[l];
  }
}

void emit_levels(std::ostream& os, const OpCost& c) {
  os << "[";
  bool first = true;
  for (std::size_t l = 0; l < c.msgs_by_level.size(); ++l) {
    if (c.msgs_by_level[l] == 0 && c.work_by_level[l] == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"level\":" << l << ",\"msgs\":" << c.msgs_by_level[l]
       << ",\"work\":" << c.work_by_level[l] << "}";
  }
  os << "]";
}

}  // namespace

OpCost OpLedger::class_total(OpClass cls) const {
  OpCost acc;
  for (const auto& [op, c] : ops_) {
    if (op_class(op) == cls) merge_into(acc, c);
  }
  return acc;
}

std::int64_t OpLedger::total_msgs() const {
  std::int64_t sum = 0;
  for (const auto& [op, c] : ops_) sum += c.msgs;
  return sum;
}

std::int64_t OpLedger::total_work() const {
  std::int64_t sum = 0;
  for (const auto& [op, c] : ops_) sum += c.work;
  return sum;
}

void OpLedger::clear() {
  ops_.clear();
  moves_.clear();
  finds_.clear();
}

std::string OpLedger::to_json() const {
  std::ostringstream os;
  os << "{\"ops\":[";
  bool first = true;
  for (const auto& [op, c] : ops_) {
    if (!first) os << ",";
    first = false;
    os << "{\"op\":" << op << ",\"name\":\"" << op_name(op)
       << "\",\"msgs\":" << c.msgs << ",\"work\":" << c.work
       << ",\"first_us\":" << c.first_us << ",\"last_us\":" << c.last_us
       << ",\"by_level\":";
    emit_levels(os, c);
    os << "}";
  }
  os << "],\"classes\":[";
  static constexpr OpClass kClasses[] = {
      OpClass::kBackground, OpClass::kMove,      OpClass::kFindSearch,
      OpClass::kFindTrace,  OpClass::kHeartbeat, OpClass::kRepair};
  first = true;
  for (const OpClass cls : kClasses) {
    const OpCost acc = class_total(cls);
    if (acc.msgs == 0 && acc.work == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"class\":\"" << op_class_name(cls) << "\",\"msgs\":" << acc.msgs
       << ",\"work\":" << acc.work << ",\"by_level\":";
    emit_levels(os, acc);
    os << "}";
  }
  os << "],\"moves\":[";
  first = true;
  for (const auto& [i, m] : moves_) {
    if (!first) os << ",";
    first = false;
    os << "{\"move\":" << i << ",\"distance\":" << m.distance
       << ",\"issued_us\":" << m.issued_us << "}";
  }
  os << "],\"finds\":[";
  first = true;
  for (const auto& [i, f] : finds_) {
    if (!first) os << ",";
    first = false;
    os << "{\"find\":" << i << ",\"issued_us\":" << f.issued_us
       << ",\"completed_us\":" << f.completed_us
       << ",\"distance\":" << f.distance << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace vs::obs
