#pragma once
// BoundAuditor — judges a cost ledger against the paper's theorem bounds.
//
// The OpLedger says what each operation cost; the auditor says whether
// that cost is *allowed*. Two judgements, matching the two cost theorems:
//
//  * Theorem 4.9 (moves) is amortised, so the auditor sums every positive-
//    distance move op — work charged, busy time (first→last charge) — and
//    compares the totals against slack × Σdistance × the per-step bound
//    sums evaluated for the actual hierarchy and the *canonical* timer
//    policy. Placements (distance 0) are attributed but excluded from
//    both sides. A run driven with inflated timers still satisfies
//    inequality (1), so the protocol behaves — but its per-step time
//    blows past what the paper promises, which is exactly the regression
//    the auditor exists to catch.
//  * Theorem 5.2 (finds) is per-operation: each completed find's work
//    (search + trace phase ops) and latency are compared against
//    slack × the bound evaluated at its measured issue-time distance d.
//    The work side includes the same O(1) delivery allowance the bound
//    tests use (injection hop + found broadcast to the ω(0) ring), which
//    the theorem's sum omits.
//
// Violations carry stable predicate names — "theorem-4.9-move-work",
// "theorem-4.9-move-time", "theorem-5.2-find-work",
// "theorem-5.2-find-time" — so watchdog incidents deduplicate and replay
// verification can match them.
//
// attribute_trace() rebuilds the same ledger offline from a recorded
// trace: cost events (send/clientSend/broadcast) are charged to their
// stamped op; events the stamp can't reach are resolved through the
// scheduler's cause DAG (cause → op of the event that scheduled it);
// what remains is background. On a live-traced run the rebuilt ledger is
// byte-identical to the live one — the conservation property
// tests/test_audit.cpp pins.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hier/hierarchy.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/trace_io.hpp"
#include "sim/time.hpp"
#include "tracking/config.hpp"

namespace vs::obs {

struct AuditConfig {
  /// Allowed measured/bound factor before a violation is raised. The
  /// bounds are worst-case sums, so healthy runs sit well below 1.0;
  /// slack absorbs the constant factors the O(·) hides.
  double slack = 2.0;
  /// Latency constant δ+e of the judged run.
  sim::Duration delta_plus_e = sim::Duration::zero();
  /// Canonical timer policy the time bounds are evaluated with — the
  /// paper-default policy (κ = 1), *not* the possibly-scaled policy the
  /// run used.
  tracking::TimerPolicy timers;
};

struct AuditViolation {
  std::string predicate;  // stable name, see header comment
  std::string detail;     // human-readable measured-vs-bound sentence
  std::int64_t index = -1;  // find index; -1 for the amortised move sums
  double measured = 0.0;
  double bound = 0.0;  // the slack-free theorem value
  double ratio = 0.0;  // measured / bound
};

/// Amortised Theorem 4.9 account over every positive-distance move op.
struct MoveAudit {
  std::int64_t steps = 0;     // move ops with distance > 0
  std::int64_t distance = 0;  // Σ walk distance
  std::int64_t msgs = 0;
  std::int64_t work = 0;     // Σ hop-work charged to those ops
  std::int64_t busy_us = 0;  // Σ (last − first charge instant)
  double work_bound_per_step = 0.0;
  double time_bound_per_step_us = 0.0;
  double work_ratio = 0.0;  // (work/distance) / work_bound_per_step
  double time_ratio = 0.0;  // (busy_us/distance) / time_bound_per_step_us
};

/// Per-find Theorem 5.2 account (search + trace phases combined).
struct FindAudit {
  std::uint32_t find = 0;
  std::int64_t distance = -1;
  std::int64_t msgs = 0;
  std::int64_t work = 0;
  std::int64_t latency_us = -1;  // -1: never completed (not judged)
  double work_bound = 0.0;
  double time_bound_us = 0.0;
  double work_ratio = 0.0;
  double time_ratio = 0.0;
};

struct AuditReport {
  MoveAudit move;
  std::vector<FindAudit> finds;
  std::vector<AuditViolation> violations;
  // Attribution/conservation summary over the whole ledger.
  std::int64_t total_msgs = 0;
  std::int64_t total_work = 0;
  std::int64_t background_msgs = 0;
  std::int64_t background_work = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Fraction of messages charged to a real operation (1.0 = everything
  /// attributed; background only).
  [[nodiscard]] double attributed_fraction() const {
    return total_msgs == 0
               ? 1.0
               : 1.0 - static_cast<double>(background_msgs) /
                           static_cast<double>(total_msgs);
  }
  [[nodiscard]] std::string to_json() const;
};

class BoundAuditor {
 public:
  BoundAuditor(const hier::ClusterHierarchy& hierarchy, AuditConfig config);

  /// Evaluates the ledger. Deterministic: same ledger, same report.
  [[nodiscard]] AuditReport audit(const OpLedger& ledger) const;

  /// Sliding-window judgement: the same theorem tests restricted to the
  /// trailing window (now − window, now]. Move ops whose issue instant
  /// falls inside the window feed the amortised Theorem 4.9 sums; finds
  /// *completed* inside it are judged per Theorem 5.2 (incomplete finds
  /// are excluded — they are judged by the window their completion lands
  /// in). `window` <= 0 degenerates to the whole-ledger audit. This is
  /// what turns the auditor from a teardown check into a live one: a
  /// hot window trips the moment it closes, not at end of run.
  [[nodiscard]] AuditReport audit_window(const OpLedger& ledger,
                                         std::int64_t now_us,
                                         sim::Duration window) const;

  [[nodiscard]] const AuditConfig& config() const { return cfg_; }

 private:
  const hier::ClusterHierarchy* hier_;
  AuditConfig cfg_;
  double move_work_per_step_;
  double move_time_per_step_us_;
  double find_delivery_;  // O(1) work term the theorem sum omits
};

/// Offline reconstruction of a ledger from one world's trace (see header
/// comment). Resolution tallies let the audit command report how much of
/// the trace the stamp reached directly vs. via the cause DAG.
struct TraceAttribution {
  OpLedger ledger;
  std::int64_t cost_events = 0;  // send/clientSend/broadcast records
  std::int64_t direct = 0;       // op field stamped on the event
  std::int64_t via_cause = 0;    // recovered through the cause DAG
  std::int64_t background = 0;   // neither — charged to background
};

[[nodiscard]] TraceAttribution attribute_trace(const WorldTrace& world);

/// Renders the offline audit (attribution table, conservation check,
/// per-class and worst-offender tables, measured/bound ratios) as the
/// `vinestalk_trace audit` command prints it.
void print_audit(std::ostream& os, const TraceAttribution& attribution,
                 const AuditReport& report);

}  // namespace vs::obs
