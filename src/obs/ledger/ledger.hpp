#pragma once
// OpLedger — the per-operation cost ledger.
//
// The ledger assigns every C-gcast message to exactly one logical
// operation (see obs/op.hpp) and accumulates its cost there: message
// count, hop-work, per-level breakdowns, and the first/last virtual time
// any cost landed. Operation *metadata* — a move step's walk distance, a
// find's issue/completion instants and measured distance — arrives
// through the begin/complete calls the TrackingNetwork makes at operation
// boundaries. The BoundAuditor (obs/ledger/auditor.hpp) layers the
// Theorem 4.9 / 5.2 judgements on top; the ledger itself is pure
// accounting with no spec dependency, so it can live next to the trace
// recorder at the bottom of the library stack.
//
// Cost model mirrors TraceRecorder's three states:
//  * compiled out (-DVINESTALK_TRACE=OFF): every mutator is a constant
//    no-op (kTraceCompiled is false and the early return folds away);
//  * compiled in, disabled (the default): one bool test per call, no
//    stores, no allocation — entries() stays 0, which the zero-overhead
//    tests pin;
//  * enabled: one map upsert per noted send.
//
// Determinism: all state is keyed by std::map over ids derived from
// world-local values, so ledgers — and their to_json renderings — are
// byte-identical for every --jobs value.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "obs/op.hpp"
#include "obs/trace.hpp"  // kTraceCompiled

namespace vs::obs {

/// Accumulated cost of one operation.
struct OpCost {
  std::int64_t msgs = 0;
  std::int64_t work = 0;
  std::int64_t first_us = -1;  // first / last virtual time a send was
  std::int64_t last_us = -1;   // charged here (-1 = no cost yet)
  /// Indexed by hierarchy level; grown on demand. Client/broadcast
  /// traffic lands at level 0 like the WorkCounters convention.
  std::vector<std::int64_t> msgs_by_level;
  std::vector<std::int64_t> work_by_level;
};

/// Metadata of one move step (class kMove, index = move counter).
struct MoveMeta {
  std::int64_t distance = 0;  // walk distance of the step (0 = placement)
  std::int64_t issued_us = 0;
};

/// Metadata of one find (shared by its search and trace phase ops;
/// index = FindId value).
struct FindMeta {
  std::int64_t issued_us = 0;
  std::int64_t completed_us = -1;  // -1 = never completed
  std::int64_t distance = -1;      // origin→target distance, -1 unknown
};

class OpLedger {
 public:
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = kTraceCompiled && on; }

  /// Redirect this thread's note_send() calls on `from` into `to` — the
  /// shard executor's parallel-window binding. The main ledger's enabled_
  /// still gates; the lane ledger just collects rows for merge_ops_from.
  /// complete_find is deliberately *not* redirected: only the single lane
  /// hosting a find's believing region ever completes it, so the value
  /// write on the main map is race-free. Pass nulls to clear.
  static void set_thread_redirect(const OpLedger* from, OpLedger* to) {
    tls_redirect_from_ = from;
    tls_redirect_to_ = to;
  }

  /// Charge one accepted send to `op`. `level` is the sender's hierarchy
  /// level (0 for client traffic), `hops` its hop-work.
  void note_send(OpId op, Level level, std::int64_t hops,
                 std::int64_t time_us) {
    if (!kTraceCompiled || !enabled_) return;
    OpLedger& sink = (tls_redirect_from_ == this && tls_redirect_to_ != nullptr)
                         ? *tls_redirect_to_
                         : *this;
    OpCost& c = sink.ops_[op];
    ++c.msgs;
    c.work += hops;
    if (c.first_us < 0) c.first_us = time_us;
    c.last_us = time_us;
    const auto l = static_cast<std::size_t>(level < 0 ? 0 : level);
    if (c.msgs_by_level.size() <= l) {
      c.msgs_by_level.resize(l + 1, 0);
      c.work_by_level.resize(l + 1, 0);
    }
    ++c.msgs_by_level[l];
    c.work_by_level[l] += hops;
  }

  /// Fold another ledger's per-op cost rows into this one and clear them
  /// there — the shard barrier's join. Commutative over disjoint windows:
  /// sums add, first_us takes the min (earliest charge wins), last_us the
  /// max, per-level vectors grow to the larger shape. Only ops_ moves;
  /// lane ledgers never hold move/find metadata.
  void merge_ops_from(OpLedger& lane) {
    if (!kTraceCompiled) return;
    for (auto& [op, lc] : lane.ops_) {
      OpCost& c = ops_[op];
      c.msgs += lc.msgs;
      c.work += lc.work;
      if (lc.first_us >= 0 && (c.first_us < 0 || lc.first_us < c.first_us)) {
        c.first_us = lc.first_us;
      }
      if (lc.last_us > c.last_us) c.last_us = lc.last_us;
      if (c.msgs_by_level.size() < lc.msgs_by_level.size()) {
        c.msgs_by_level.resize(lc.msgs_by_level.size(), 0);
        c.work_by_level.resize(lc.work_by_level.size(), 0);
      }
      for (std::size_t l = 0; l < lc.msgs_by_level.size(); ++l) {
        c.msgs_by_level[l] += lc.msgs_by_level[l];
        c.work_by_level[l] += lc.work_by_level[l];
      }
    }
    lane.ops_.clear();
  }

  /// Operation boundaries (TrackingNetwork). Placement is a move of
  /// distance 0 — attributed, but excluded from the Theorem 4.9 sums.
  void begin_move(std::uint32_t move_index, std::int64_t distance,
                  std::int64_t time_us) {
    if (!kTraceCompiled || !enabled_) return;
    moves_[move_index] = MoveMeta{distance, time_us};
  }
  void begin_find(std::uint32_t find_index, std::int64_t time_us) {
    if (!kTraceCompiled || !enabled_) return;
    finds_[find_index] = FindMeta{time_us, -1, -1};
  }
  void complete_find(std::uint32_t find_index, std::int64_t distance,
                     std::int64_t time_us) {
    if (!kTraceCompiled || !enabled_) return;
    const auto it = finds_.find(find_index);
    if (it == finds_.end()) return;
    if (it->second.completed_us >= 0) return;  // first completion wins
    it->second.completed_us = time_us;
    it->second.distance = distance;
  }

  [[nodiscard]] const std::map<OpId, OpCost>& ops() const { return ops_; }
  [[nodiscard]] const std::map<std::uint32_t, MoveMeta>& moves() const {
    return moves_;
  }
  [[nodiscard]] const std::map<std::uint32_t, FindMeta>& finds() const {
    return finds_;
  }
  /// Ledger rows held (0 while disabled — the zero-overhead pin).
  [[nodiscard]] std::size_t entries() const {
    return ops_.size() + moves_.size() + finds_.size();
  }

  /// Aggregate cost of every op of one class.
  [[nodiscard]] OpCost class_total(OpClass cls) const;
  /// Total messages/work across every op (conservation side).
  [[nodiscard]] std::int64_t total_msgs() const;
  [[nodiscard]] std::int64_t total_work() const;

  void clear();

  /// Deterministic JSON rendering: per-op rows (sorted by op id) plus
  /// per-class totals with per-level matrices. Byte-identical whenever
  /// the recorded values are.
  [[nodiscard]] std::string to_json() const;

 private:
  bool enabled_ = false;
  std::map<OpId, OpCost> ops_;
  std::map<std::uint32_t, MoveMeta> moves_;
  std::map<std::uint32_t, FindMeta> finds_;

  inline static thread_local const OpLedger* tls_redirect_from_ = nullptr;
  inline static thread_local OpLedger* tls_redirect_to_ = nullptr;
};

}  // namespace vs::obs
