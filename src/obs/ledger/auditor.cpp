#include "obs/ledger/auditor.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "spec/bounds.hpp"

namespace vs::obs {

namespace {

double ratio_of(double measured, double bound) {
  return bound > 0.0 ? measured / bound : 0.0;
}

}  // namespace

BoundAuditor::BoundAuditor(const hier::ClusterHierarchy& hierarchy,
                           AuditConfig config)
    : hier_(&hierarchy),
      cfg_(std::move(config)),
      move_work_per_step_(spec::move_work_bound_per_step(hierarchy)),
      move_time_per_step_us_(spec::move_time_bound_per_step(
          hierarchy, cfg_.timers, cfg_.delta_plus_e)),
      // The theorem's sum covers search + trace; delivery adds an O(1)
      // term it omits: the client injection hop and the found broadcast
      // to the ω(0) neighbouring regions (same allowance as test_bounds).
      find_delivery_(2.0 + 2.0 * static_cast<double>(hierarchy.omega(0))) {}

AuditReport BoundAuditor::audit(const OpLedger& ledger) const {
  return audit_window(ledger, std::numeric_limits<std::int64_t>::max(),
                      sim::Duration::zero());
}

AuditReport BoundAuditor::audit_window(const OpLedger& ledger,
                                       std::int64_t now_us,
                                       sim::Duration window) const {
  // Half-open trailing window (lo, hi]; the degenerate window covers the
  // whole ledger and reproduces the legacy audit() exactly.
  const bool windowed = window > sim::Duration::zero();
  const std::int64_t lo =
      windowed ? now_us - window.count()
               : std::numeric_limits<std::int64_t>::min();
  const std::int64_t hi =
      windowed ? now_us : std::numeric_limits<std::int64_t>::max();
  AuditReport r;
  r.total_msgs = ledger.total_msgs();
  r.total_work = ledger.total_work();
  const OpCost bg = ledger.class_total(OpClass::kBackground);
  r.background_msgs = bg.msgs;
  r.background_work = bg.work;

  // --- Theorem 4.9: amortise over every positive-distance move op. ---
  r.move.work_bound_per_step = move_work_per_step_;
  r.move.time_bound_per_step_us = move_time_per_step_us_;
  for (const auto& [index, meta] : ledger.moves()) {
    if (meta.distance <= 0) continue;  // placement: attributed, not judged
    if (meta.issued_us <= lo || meta.issued_us > hi) continue;
    ++r.move.steps;
    r.move.distance += meta.distance;
    const auto it = ledger.ops().find(make_op(OpClass::kMove, index));
    if (it == ledger.ops().end()) continue;  // move reached a stable path
    r.move.msgs += it->second.msgs;
    r.move.work += it->second.work;
    if (it->second.first_us >= 0) {
      r.move.busy_us += it->second.last_us - it->second.first_us;
    }
  }
  if (r.move.distance > 0) {
    const double d = static_cast<double>(r.move.distance);
    const double work_per = static_cast<double>(r.move.work) / d;
    const double time_per = static_cast<double>(r.move.busy_us) / d;
    r.move.work_ratio = ratio_of(work_per, move_work_per_step_);
    r.move.time_ratio = ratio_of(time_per, move_time_per_step_us_);
    if (work_per > cfg_.slack * move_work_per_step_) {
      std::ostringstream os;
      os << "amortised move work " << work_per << "/step over " << r.move.steps
         << " steps (distance " << r.move.distance << ") exceeds "
         << cfg_.slack << " x Theorem 4.9 bound " << move_work_per_step_;
      r.violations.push_back({"theorem-4.9-move-work", os.str(), -1, work_per,
                              move_work_per_step_, r.move.work_ratio});
    }
    if (time_per > cfg_.slack * move_time_per_step_us_) {
      std::ostringstream os;
      os << "amortised move time " << time_per << "us/step over "
         << r.move.steps << " steps (distance " << r.move.distance
         << ") exceeds " << cfg_.slack << " x Theorem 4.9 bound "
         << move_time_per_step_us_ << "us";
      r.violations.push_back({"theorem-4.9-move-time", os.str(), -1, time_per,
                              move_time_per_step_us_, r.move.time_ratio});
    }
  }

  // --- Theorem 5.2: judge each completed find at its measured d. ---
  for (const auto& [index, meta] : ledger.finds()) {
    if (windowed &&
        (meta.completed_us < 0 || meta.completed_us <= lo ||
         meta.completed_us > hi)) {
      continue;
    }
    FindAudit f;
    f.find = index;
    f.distance = meta.distance;
    for (const OpClass phase : {OpClass::kFindSearch, OpClass::kFindTrace}) {
      const auto it = ledger.ops().find(make_op(phase, index));
      if (it == ledger.ops().end()) continue;
      f.msgs += it->second.msgs;
      f.work += it->second.work;
    }
    if (meta.completed_us >= 0) {
      f.latency_us = meta.completed_us - meta.issued_us;
      const int d = static_cast<int>(std::max<std::int64_t>(f.distance, 0));
      f.work_bound = spec::find_work_bound(*hier_, d) + find_delivery_;
      f.time_bound_us =
          spec::find_time_bound(*hier_, d, cfg_.delta_plus_e);
      f.work_ratio = ratio_of(static_cast<double>(f.work), f.work_bound);
      f.time_ratio =
          ratio_of(static_cast<double>(f.latency_us), f.time_bound_us);
      if (static_cast<double>(f.work) > cfg_.slack * f.work_bound) {
        std::ostringstream os;
        os << "find#" << index << " (d=" << d << ") work " << f.work
           << " exceeds " << cfg_.slack << " x Theorem 5.2 bound "
           << f.work_bound;
        r.violations.push_back({"theorem-5.2-find-work", os.str(), index,
                                static_cast<double>(f.work), f.work_bound,
                                f.work_ratio});
      }
      if (f.time_bound_us > 0.0 &&
          static_cast<double>(f.latency_us) > cfg_.slack * f.time_bound_us) {
        std::ostringstream os;
        os << "find#" << index << " (d=" << d << ") latency " << f.latency_us
           << "us exceeds " << cfg_.slack << " x Theorem 5.2 bound "
           << f.time_bound_us << "us";
        r.violations.push_back({"theorem-5.2-find-time", os.str(), index,
                                static_cast<double>(f.latency_us),
                                f.time_bound_us, f.time_ratio});
      }
    }
    r.finds.push_back(f);
  }
  return r;
}

std::string AuditReport::to_json() const {
  std::ostringstream os;
  os << "{\"total_msgs\":" << total_msgs << ",\"total_work\":" << total_work
     << ",\"background_msgs\":" << background_msgs
     << ",\"background_work\":" << background_work
     << ",\"attributed_fraction\":" << attributed_fraction() << ",\"move\":{"
     << "\"steps\":" << move.steps << ",\"distance\":" << move.distance
     << ",\"msgs\":" << move.msgs << ",\"work\":" << move.work
     << ",\"busy_us\":" << move.busy_us
     << ",\"work_bound_per_step\":" << move.work_bound_per_step
     << ",\"time_bound_per_step_us\":" << move.time_bound_per_step_us
     << ",\"work_ratio\":" << move.work_ratio
     << ",\"time_ratio\":" << move.time_ratio << "},\"finds\":[";
  bool first = true;
  for (const FindAudit& f : finds) {
    if (!first) os << ",";
    first = false;
    os << "{\"find\":" << f.find << ",\"distance\":" << f.distance
       << ",\"msgs\":" << f.msgs << ",\"work\":" << f.work
       << ",\"latency_us\":" << f.latency_us
       << ",\"work_bound\":" << f.work_bound
       << ",\"time_bound_us\":" << f.time_bound_us
       << ",\"work_ratio\":" << f.work_ratio
       << ",\"time_ratio\":" << f.time_ratio << "}";
  }
  os << "],\"violations\":[";
  first = true;
  for (const AuditViolation& v : violations) {
    if (!first) os << ",";
    first = false;
    os << "{\"predicate\":\"" << v.predicate << "\",\"index\":" << v.index
       << ",\"measured\":" << v.measured << ",\"bound\":" << v.bound
       << ",\"ratio\":" << v.ratio << "}";
  }
  os << "]}";
  return os.str();
}

TraceAttribution attribute_trace(const WorldTrace& world) {
  TraceAttribution out;
  out.ledger.set_enabled(true);
  // Causal context: scheduler event seq → the op last resolved there. Any
  // event fired by seq S inherits S's op when its own stamp is empty, and
  // events scheduled *by* S (cause = S) inherit transitively.
  std::map<std::uint64_t, OpId> ctx;
  // Issue-time distance per find (kFindIssued.arg), applied at completion
  // exactly like the live complete_find call.
  std::map<std::int64_t, std::int64_t> find_distance;
  for (const TraceEvent& e : world.events) {
    OpId op = e.op;
    bool causal = false;
    if (op == kBackgroundOp && e.seq != 0) {
      if (const auto it = ctx.find(e.seq); it != ctx.end()) {
        op = it->second;
        causal = true;
      }
    }
    if (op == kBackgroundOp && e.cause != 0) {
      if (const auto it = ctx.find(e.cause); it != ctx.end()) {
        op = it->second;
        causal = true;
      }
    }
    if (op != kBackgroundOp && e.seq != 0) ctx.try_emplace(e.seq, op);

    const auto kind = static_cast<TraceKind>(e.kind);
    switch (kind) {
      case TraceKind::kSend:
      case TraceKind::kClientSend:
      case TraceKind::kBroadcast:
        // The cost events — mirror the live observer exactly: kSend
        // charges (level, hops=arg); client/broadcast charge (0, 1).
        out.ledger.note_send(op, e.level, e.arg, e.time_us);
        ++out.cost_events;
        if (e.op != kBackgroundOp) {
          ++out.direct;
        } else if (causal) {
          ++out.via_cause;
        } else {
          ++out.background;
        }
        break;
      case TraceKind::kMoveIssued:
        out.ledger.begin_move(op_index(e.op), e.arg, e.time_us);
        break;
      case TraceKind::kFindIssued:
        if (e.find >= 0) {
          find_distance[e.find] = e.arg;
          out.ledger.begin_find(static_cast<std::uint32_t>(e.find),
                                e.time_us);
        }
        break;
      case TraceKind::kFoundOutput:
        if (e.find >= 0) {
          const auto it = find_distance.find(e.find);
          out.ledger.complete_find(
              static_cast<std::uint32_t>(e.find),
              it != find_distance.end() ? it->second : -1, e.time_us);
        }
        break;
      default:
        break;
    }
  }
  return out;
}

void print_audit(std::ostream& os, const TraceAttribution& attribution,
                 const AuditReport& report) {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(3);
  os << "attribution:\n"
     << "  cost events   " << attribution.cost_events << "\n"
     << "  direct        " << attribution.direct << "\n"
     << "  via cause     " << attribution.via_cause << "\n"
     << "  background    " << attribution.background << "\n"
     << "  attributed    " << 100.0 * report.attributed_fraction() << "%\n";
  const std::int64_t assigned =
      attribution.direct + attribution.via_cause + attribution.background;
  os << "conservation:   "
     << (assigned == attribution.cost_events &&
                 attribution.cost_events == report.total_msgs
             ? "OK"
             : "VIOLATED")
     << " (" << report.total_msgs << " msgs, " << report.total_work
     << " work)\n";
  os << "per-class cost:\n";
  for (const OpClass cls :
       {OpClass::kBackground, OpClass::kMove, OpClass::kFindSearch,
        OpClass::kFindTrace, OpClass::kHeartbeat, OpClass::kRepair}) {
    const OpCost c = attribution.ledger.class_total(cls);
    if (c.msgs == 0 && c.work == 0) continue;
    os << "  " << std::left << std::setw(12) << op_class_name(cls)
       << std::right << std::setw(8) << c.msgs << " msgs" << std::setw(10)
       << c.work << " work  levels[";
    for (std::size_t l = 0; l < c.msgs_by_level.size(); ++l) {
      if (l != 0) os << " ";
      os << c.msgs_by_level[l];
    }
    os << "]\n";
  }
  if (report.move.distance > 0) {
    os << "moves (Theorem 4.9, amortised over " << report.move.steps
       << " steps, distance " << report.move.distance << "):\n"
       << "  work/step  " << static_cast<double>(report.move.work) /
                                 static_cast<double>(report.move.distance)
       << " vs bound " << report.move.work_bound_per_step << "  (ratio "
       << report.move.work_ratio << ")\n"
       << "  time/step  " << static_cast<double>(report.move.busy_us) /
                                 static_cast<double>(report.move.distance)
       << "us vs bound " << report.move.time_bound_per_step_us
       << "us  (ratio " << report.move.time_ratio << ")\n";
  }
  if (!report.finds.empty()) {
    // Worst offenders first (by max of the two ratios), capped at 10.
    std::vector<FindAudit> sorted = report.finds;
    std::sort(sorted.begin(), sorted.end(),
              [](const FindAudit& a, const FindAudit& b) {
                const double ra = std::max(a.work_ratio, a.time_ratio);
                const double rb = std::max(b.work_ratio, b.time_ratio);
                if (ra != rb) return ra > rb;
                return a.find < b.find;
              });
    os << "finds (Theorem 5.2, worst offenders):\n";
    std::size_t shown = 0;
    for (const FindAudit& f : sorted) {
      if (shown++ == 10) break;
      os << "  find#" << f.find << " d=" << f.distance << " work " << f.work
         << "/" << f.work_bound << " (ratio " << f.work_ratio << ")";
      if (f.latency_us >= 0) {
        os << " latency " << f.latency_us << "us/" << f.time_bound_us
           << "us (ratio " << f.time_ratio << ")";
      } else {
        os << " [incomplete]";
      }
      os << "\n";
    }
  }
  if (report.violations.empty()) {
    os << "bounds: all operations within slack\n";
  } else {
    os << "bounds: " << report.violations.size() << " violation(s)\n";
    for (const AuditViolation& v : report.violations) {
      os << "  " << v.predicate << ": " << v.detail << "\n";
    }
  }
  os.flags(flags);
}

}  // namespace vs::obs
