#pragma once
// Messages of the Tracker signature (Figure 2) and client traffic.
//
// Every tracker-to-tracker message carries the sending cluster (the `cid`
// of Figure 2's handlers) and the target it concerns; find-phase messages
// additionally carry the find's identity and, for findAck, the advertised
// pointer x.

#include <ostream>

#include "common/ids.hpp"
#include "obs/op.hpp"
#include "stats/counters.hpp"

namespace vs::vsa {

/// Wire message kinds; mirrors Figure 2's message set.
using MsgType = stats::MsgKind;

/// What a §VII heartbeat probe (MsgType::kHeartbeat) asks its receiver to
/// confirm; the ack echoes the claim with hb_ok = confirmed. kAnchor and
/// kClientQuery are one-way pulses and carry no ack.
enum class HbClaim : std::uint8_t {
  kNone = 0,
  kChild,          // "my c is you — do you point back with p?"
  kParent,         // "my p is you — do you point back with c?"
  kAdvertUp,       // "you should hold me in nbrptup"
  kAdvertDown,     // "you should hold me in nbrptdown"
  kSecondaryUp,    // "I hold you in nbrptup — still vertically attached?"
  kSecondaryDown,  // "I hold you in nbrptdown — still laterally attached?"
  kAnchor,         // root-anchored liveness pulse, forwarded down c-links
  kClientQuery,    // level-0 presence probe broadcast to region clients
};

struct Message {
  MsgType type{MsgType::kGrow};
  /// Figure 2's `cid`: the cluster the message is "from" (for client-sent
  /// grow/shrink at level 0 this is the level-0 cluster itself).
  ClusterId from_cluster{};
  /// Which mobile object this concerns (TargetId{0} for single-object).
  TargetId target{TargetId{0}};
  /// Identity of the find operation (find/findQuery/findAck/found only).
  FindId find_id{};
  /// findAck payload x: a cluster on, or holding a secondary pointer to,
  /// the tracking path. Heartbeat acks reuse it for the responder's own
  /// pointer of interest (e.g. its p on a kParent ack).
  ClusterId ack_pointer{};
  /// Heartbeat payload (kHeartbeat/kHeartbeatAck only, kNone otherwise).
  HbClaim hb_claim{HbClaim::kNone};
  /// kHeartbeatAck: the probed claim held at the receiver.
  bool hb_ok = false;
  /// Logical operation this message is charged to (0 = background). Set
  /// by the sender or stamped by CGcast's ambient op; replies propagate
  /// the incoming message's op so cascades stay attributed end to end.
  obs::OpId op = obs::kBackgroundOp;

  friend std::ostream& operator<<(std::ostream& os, const Message& m);
};

/// Inputs a client receives from the GPS/evader model (§III-A).
enum class ClientInput {
  kMove,  // evader entered the client's region
  kLeft,  // evader left the client's region
};

}  // namespace vs::vsa
