#pragma once
// Messages of the Tracker signature (Figure 2) and client traffic.
//
// Every tracker-to-tracker message carries the sending cluster (the `cid`
// of Figure 2's handlers) and the target it concerns; find-phase messages
// additionally carry the find's identity and, for findAck, the advertised
// pointer x.

#include <ostream>

#include "common/ids.hpp"
#include "stats/counters.hpp"

namespace vs::vsa {

/// Wire message kinds; mirrors Figure 2's message set.
using MsgType = stats::MsgKind;

struct Message {
  MsgType type{MsgType::kGrow};
  /// Figure 2's `cid`: the cluster the message is "from" (for client-sent
  /// grow/shrink at level 0 this is the level-0 cluster itself).
  ClusterId from_cluster{};
  /// Which mobile object this concerns (TargetId{0} for single-object).
  TargetId target{TargetId{0}};
  /// Identity of the find operation (find/findQuery/findAck/found only).
  FindId find_id{};
  /// findAck payload x: a cluster on, or holding a secondary pointer to,
  /// the tracking path.
  ClusterId ack_pointer{};

  friend std::ostream& operator<<(std::ostream& os, const Message& m);
};

/// Inputs a client receives from the GPS/evader model (§III-A).
enum class ClientInput {
  kMove,  // evader entered the client's region
  kLeft,  // evader left the client's region
};

}  // namespace vs::vsa
