#include "vsa/client.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vs::vsa {

ClientPopulation::ClientPopulation(CGcast& cgcast,
                                   const hier::ClusterHierarchy& hierarchy,
                                   VsaDirectory* directory)
    : cgcast_(&cgcast),
      hier_(&hierarchy),
      directory_(directory),
      by_region_(hierarchy.tiling().num_regions()) {}

void ClientPopulation::populate_uniform(int per_region) {
  VS_REQUIRE(per_region >= 1, "need at least one client per region");
  for (const RegionId u : hier_->tiling().all_regions()) {
    for (int i = 0; i < per_region; ++i) add_client(u);
  }
}

std::vector<ClientId>& ClientPopulation::clients_at(RegionId region) {
  VS_REQUIRE(region.valid() &&
                 static_cast<std::size_t>(region.value()) < by_region_.size(),
             "region " << region << " out of range");
  return by_region_[static_cast<std::size_t>(region.value())];
}

ClientId ClientPopulation::add_client(RegionId region) {
  const ClientId id{static_cast<ClientId::rep_type>(clients_.size())};
  clients_.push_back(Client{id, region, true, {}});
  clients_at(region).push_back(id);
  notify_presence(region);
  return id;
}

const Client& ClientPopulation::client(ClientId id) const {
  VS_REQUIRE(id.valid() && static_cast<std::size_t>(id.value()) < clients_.size(),
             "client " << id << " out of range");
  return clients_[static_cast<std::size_t>(id.value())];
}

void ClientPopulation::kill_client(ClientId id) {
  Client& c = clients_[static_cast<std::size_t>(id.value())];
  if (!c.alive) return;
  c.alive = false;
  c.believes_here.clear();  // restart is from the initial state (§II-C.1)
  notify_presence(c.region);
}

void ClientPopulation::restart_client(ClientId id) {
  Client& c = clients_[static_cast<std::size_t>(id.value())];
  if (c.alive) return;
  c.alive = true;
  c.believes_here.clear();
  notify_presence(c.region);
}

void ClientPopulation::move_client(ClientId id, RegionId to) {
  Client& c = clients_[static_cast<std::size_t>(id.value())];
  const RegionId from = c.region;
  if (from == to) return;
  auto& vec = clients_at(from);
  vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
  c.region = to;
  c.believes_here.clear();  // GPSupdate for the new region carries no evader
  clients_at(to).push_back(id);
  notify_presence(from);
  notify_presence(to);
}

const std::vector<ClientId>& ClientPopulation::clients_in(
    RegionId region) const {
  VS_REQUIRE(region.valid() &&
                 static_cast<std::size_t>(region.value()) < by_region_.size(),
             "region " << region << " out of range");
  return by_region_[static_cast<std::size_t>(region.value())];
}

std::size_t ClientPopulation::alive_clients_in(RegionId region) const {
  std::size_t count = 0;
  for (const ClientId id :
       by_region_[static_cast<std::size_t>(region.value())]) {
    if (clients_[static_cast<std::size_t>(id.value())].alive) ++count;
  }
  return count;
}

void ClientPopulation::notify_presence(RegionId region) {
  if (directory_ != nullptr) {
    directory_->set_clients_present(region, alive_clients_in(region) > 0);
  }
}

void ClientPopulation::on_evader_move(TargetId target, RegionId from,
                                      RegionId to) {
  if (from.valid()) {
    bool any_alive = false;
    for (const ClientId id : clients_at(from)) {
      Client& c = clients_[static_cast<std::size_t>(id.value())];
      if (!c.alive) continue;
      any_alive = true;
      c.believes_here[target] = false;
      // `left` input → shrink to the level-0 cluster (§IV-A).
      Message m;
      m.type = MsgType::kShrink;
      m.from_cluster = hier_->cluster_of(from, 0);
      m.target = target;
      cgcast_->send_from_client(from, m);
    }
    VS_REQUIRE(any_alive,
               "tracking spec requires an alive client where the evader "
               "leaves (region "
                   << from << ")");
  }
  if (to.valid()) {
    bool any_alive = false;
    for (const ClientId id : clients_at(to)) {
      Client& c = clients_[static_cast<std::size_t>(id.value())];
      if (!c.alive) continue;
      any_alive = true;
      c.believes_here[target] = true;
      // `move` input → grow to the level-0 cluster (§IV-A).
      Message m;
      m.type = MsgType::kGrow;
      m.from_cluster = hier_->cluster_of(to, 0);
      m.target = target;
      cgcast_->send_from_client(to, m);
    }
    VS_REQUIRE(any_alive,
               "tracking spec requires an alive client where the evader "
               "arrives (region "
                   << to << ")");
  }
}

void ClientPopulation::inject_find(RegionId region, TargetId target,
                                   FindId find_id) {
  VS_REQUIRE(alive_clients_in(region) > 0,
             "find injected at region " << region << " with no alive client");
  Message m;
  m.type = MsgType::kFind;
  m.from_cluster = hier_->cluster_of(region, 0);
  m.target = target;
  m.find_id = find_id;
  cgcast_->send_from_client(region, m);
}

void ClientPopulation::on_broadcast(RegionId region, const Message& m) {
  if (m.type == MsgType::kHeartbeat &&
      m.hb_claim == HbClaim::kClientQuery) {
    auto& flags = queried_[m.target];
    if (flags.empty()) flags.assign(by_region_.size(), 0);
    flags[static_cast<std::size_t>(region.value())] = 1;
    bool any_believer = false;
    for (const ClientId id : clients_at(region)) {
      const Client& c = clients_[static_cast<std::size_t>(id.value())];
      if (!c.alive) continue;
      const auto it = c.believes_here.find(m.target);
      if (it != c.believes_here.end() && it->second) {
        any_believer = true;
        break;
      }
    }
    if (any_believer) return;  // marker confirmed, suppress all responses
    for (const ClientId id : clients_at(region)) {
      const Client& c = clients_[static_cast<std::size_t>(id.value())];
      if (!c.alive) continue;
      // The re-detection shrink: the `left` input's message that the
      // marker evidently never processed.
      Message reply;
      reply.type = MsgType::kShrink;
      reply.from_cluster = hier_->cluster_of(region, 0);
      reply.target = m.target;
      reply.op = m.op;  // charged to the querying heartbeat/repair op
      cgcast_->send_from_client(region, reply);
    }
    return;
  }
  if (m.type != MsgType::kFound) return;
  for (const ClientId id : clients_at(region)) {
    Client& c = clients_[static_cast<std::size_t>(id.value())];
    if (!c.alive) continue;
    const auto it = c.believes_here.find(m.target);
    if (it != c.believes_here.end() && it->second) {
      if (found_output_) found_output_(m.find_id, m.target, region, id);
    }
  }
}

int ClientPopulation::refresh_detection(TargetId target, obs::OpId op) {
  int sent = 0;
  auto& flags = queried_[target];
  if (flags.empty()) flags.assign(by_region_.size(), 0);
  for (std::size_t r = 0; r < by_region_.size(); ++r) {
    const bool queried = flags[r] != 0;
    flags[r] = 0;
    if (queried) continue;
    const RegionId region{static_cast<RegionId::rep_type>(r)};
    for (const ClientId id : by_region_[r]) {
      const Client& c = clients_[static_cast<std::size_t>(id.value())];
      if (!c.alive) continue;
      const auto it = c.believes_here.find(target);
      if (it == c.believes_here.end() || !it->second) continue;
      // The detection grow again — the silent level-0 cluster lost it.
      Message m;
      m.type = MsgType::kGrow;
      m.from_cluster = hier_->cluster_of(region, 0);
      m.target = target;
      m.op = op;
      cgcast_->send_from_client(region, m);
      ++sent;
    }
  }
  return sent;
}

}  // namespace vs::vsa
