#pragma once
// VSA liveness directory (paper §II-C.2 failure semantics).
//
// A VSA is emulated by the clients in its region: a clientless region's
// VSA is failed; a failed VSA restarts (from its initial state) once some
// clients stay in the region for t_restart. The directory tracks per-region
// liveness, drives the restart rule from client-presence notifications, and
// invokes callbacks so the tracking layer can wipe / reinitialise the
// Tracker subautomata hosted at that region.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace vs::vsa {

class VsaDirectory {
 public:
  using Callback = std::function<void(RegionId)>;

  VsaDirectory(sim::Scheduler& sched, std::size_t num_regions,
               sim::Duration t_restart);

  [[nodiscard]] bool alive(RegionId u) const;
  [[nodiscard]] std::size_t num_regions() const { return state_.size(); }

  /// Fault injection: fail the VSA at `u` now (as if its emulators all
  /// crashed). If clients are present, the restart clock starts
  /// immediately.
  void fail(RegionId u);

  /// Client-presence notification. Transitions:
  ///  - present → absent: the VSA fails (no emulators);
  ///  - absent → present on a failed VSA: restart clock starts; the VSA
  ///    restarts after t_restart of uninterrupted presence.
  void set_clients_present(RegionId u, bool present);

  /// Invoked when a VSA fails (tracking layer drops its state).
  void set_on_fail(Callback cb) { on_fail_ = std::move(cb); }
  /// Invoked when a VSA restarts from its initial state.
  void set_on_restart(Callback cb) { on_restart_ = std::move(cb); }

  [[nodiscard]] std::int64_t failures() const { return failures_; }
  [[nodiscard]] std::int64_t restarts() const { return restarts_; }

 private:
  struct RegionState {
    bool alive = true;
    bool clients_present = true;
    std::unique_ptr<sim::Timer> restart_timer;
  };

  RegionState& state_of(RegionId u);
  void maybe_schedule_restart(RegionId u);

  sim::Scheduler* sched_;
  sim::Duration t_restart_;
  std::vector<RegionState> state_;
  Callback on_fail_;
  Callback on_restart_;
  std::int64_t failures_{0};
  std::int64_t restarts_{0};
};

}  // namespace vs::vsa
