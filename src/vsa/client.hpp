#pragma once
// Client automata (paper §II-C.1, §III-A, §IV-A).
//
// Clients are the physical nodes. For tracking they do three things:
//  - on a `move` GPS input (evader entered their region) they send a grow
//    to their region's level-0 cluster; on `left`, a shrink;
//  - on an external `find` input they forward a find to the level-0
//    cluster;
//  - on receiving a `found` broadcast, a client whose last GPS input
//    indicated evader presence performs the found output.
// Clients can fail/restart and move between regions; their presence also
// drives VSA liveness via the VsaDirectory.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "vsa/cgcast.hpp"
#include "vsa/directory.hpp"
#include "vsa/messages.hpp"

namespace vs::vsa {

struct Client {
  ClientId id{};
  RegionId region{};
  bool alive = true;
  /// Per-target: did this client's last move/left input indicate the
  /// evader is in its region?
  std::map<TargetId, bool> believes_here;
};

class ClientPopulation {
 public:
  /// `directory` may be null when VSA failures are not modelled.
  ClientPopulation(CGcast& cgcast, const hier::ClusterHierarchy& hierarchy,
                   VsaDirectory* directory);

  /// Populates every region with `per_region` clients.
  void populate_uniform(int per_region);

  ClientId add_client(RegionId region);
  void kill_client(ClientId id);
  void restart_client(ClientId id);
  /// Relocates the client (client mobility; affects VSA liveness only).
  void move_client(ClientId id, RegionId to);

  [[nodiscard]] const Client& client(ClientId id) const;
  [[nodiscard]] std::size_t alive_clients_in(RegionId region) const;
  /// All clients homed at `region`, alive or not (fault injection uses
  /// this to depopulate a region deterministically).
  [[nodiscard]] const std::vector<ClientId>& clients_in(RegionId region) const;

  /// GPS-service hook: the evader for `target` moved from → to. Issues
  /// `left` inputs at `from` and `move` inputs at `to`; clients react with
  /// shrink/grow sends (delay δ via C-gcast). Either region id may be
  /// invalid (initial placement / final disappearance).
  void on_evader_move(TargetId target, RegionId from, RegionId to);

  /// External find input delivered to a client in `region`; it forwards a
  /// find message to its level-0 cluster. Requires an alive client there.
  void inject_find(RegionId region, TargetId target, FindId find_id);

  /// C-gcast client sink: a level-0 broadcast arrived at `region`. Besides
  /// `found` deliveries, this handles the §VII presence query
  /// (kHeartbeat/HbClaim::kClientQuery): a level-0 cluster that carries
  /// the detection marker asks its region's clients to confirm it. If some
  /// alive client still believes the evader is here the marker is correct
  /// and everyone stays silent (clients share the physical broadcast
  /// medium, so response suppression is local knowledge); otherwise every
  /// alive client answers with the re-detection shrink the marker is
  /// missing. Receipt of a query also feeds the refresh_detection bookkeeping.
  void on_broadcast(RegionId region, const Message& m);

  /// Client-side periodic re-detection (§IV-A: GPS inputs are periodic):
  /// believing clients in any region whose level-0 cluster has *not*
  /// queried them since the previous call re-send their detection grow —
  /// the silent cluster has lost its marker (VSA reset). Returns the number
  /// of grow messages sent and consumes the per-region query flags. `op`
  /// charges the re-detection grows to the stabilizer's repair operation.
  int refresh_detection(TargetId target, obs::OpId op = obs::kBackgroundOp);

  /// Invoked when a believing client performs the found output.
  using FoundOutput =
      std::function<void(FindId, TargetId, RegionId, ClientId)>;
  void set_found_output(FoundOutput cb) { found_output_ = std::move(cb); }

 private:
  void notify_presence(RegionId region);
  std::vector<ClientId>& clients_at(RegionId region);

  CGcast* cgcast_;
  const hier::ClusterHierarchy* hier_;
  VsaDirectory* directory_;
  std::vector<Client> clients_;
  std::vector<std::vector<ClientId>> by_region_;
  FoundOutput found_output_;
  /// Per target, per region: did a presence query arrive since the last
  /// refresh_detection scan for that target? Keyed by target so
  /// concurrent stabilizers never consume each other's flags.
  /// (std::uint8_t, not bool: vector<bool> proxies.)
  std::map<TargetId, std::vector<std::uint8_t>> queried_;
};

}  // namespace vs::vsa
