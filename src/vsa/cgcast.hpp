#pragma once
// Cluster geocast service C-gcast (paper §II-C.3).
//
// Connects cluster processes (Tracker subautomata hosted on VSAs) to each
// other and to clients, with the paper's deterministic latencies:
//   (a) level-l cluster → neighbouring cluster:            (δ+e)·n(l)
//   (b) level-l cluster → parent, or parent → child:       (δ+e)·p(child l)
//   (c) level-l cluster → neighbour-of-neighbour:          (δ+e)·2n(l)
//   (d) level-0 cluster → own/neighbour region clients:    δ+e
//   (e) client → own region's level-0 cluster:             δ
// δ is the physical broadcast delay; e bounds how far a VSA emulation may
// lag real time. Work is accounted per message as the hop distance between
// the communicating cluster heads (1 for client↔VSA messages).
//
// A message addressed to a cluster whose head-region VSA is failed at
// delivery time is dropped, matching the emulation semantics (a failed VSA
// performs no steps). In-transit messages are introspectable so the spec
// module can evaluate Figure 3's lookAhead on live snapshots.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "hier/hierarchy.hpp"
#include "obs/profile/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "stats/counters.hpp"
#include "vsa/messages.hpp"
#include "vsa/shard_map.hpp"

namespace vs::vsa {

struct CGcastConfig {
  /// Max physical broadcast delay δ.
  sim::Duration delta = sim::Duration::millis(1);
  /// Max VSA emulation lag e.
  sim::Duration e = sim::Duration::millis(1);
  /// Fault injection: probability that a VSA→VSA or client→VSA message is
  /// lost in flight. The paper's C-gcast is reliable (0.0, the default);
  /// non-zero rates exercise the §VII recovery machinery.
  double loss_probability = 0.0;
  /// Seed for the loss process (losses are reproducible).
  std::uint64_t loss_seed = 0x10555;
};

class CGcast {
 public:
  CGcast(sim::Scheduler& sched, const hier::ClusterHierarchy& hierarchy,
         CGcastConfig config, stats::WorkCounters& counters);

  /// Delivery of a message to the Tracker process for cluster `dest`.
  using TrackerSink = std::function<void(ClusterId dest, const Message&)>;
  /// Delivery of a level-0 broadcast to the clients in `region`.
  using ClientSink = std::function<void(RegionId region, const Message&)>;
  /// Liveness oracle for the VSA hosted at a region (default: always alive).
  using AliveFn = std::function<bool(RegionId)>;
  /// Replica oracle (§VII "multiple heads per cluster"): the regions
  /// jointly hosting a cluster's process. When set, a message costs the
  /// sum of hop distances to every replica (the quorum-contact overhead)
  /// and is dropped only if *no* replica's VSA is alive.
  using ReplicaFn = std::function<std::span<const RegionId>(ClusterId)>;
  /// Observes every accepted send (for per-find accounting and monitors).
  using SendObserver = std::function<void(const Message&, ClusterId from,
                                          ClusterId to, Level level,
                                          std::int64_t hops)>;
  /// Handle for remove_send_observer (0 is never issued).
  using ObserverId = std::uint64_t;

  /// Per-message channel-fault verdict (src/fault FaultInjector). `drop`
  /// loses the message at send time; `duplicate` delivers it twice;
  /// `advance` delivers it that much *earlier* (clamped to a 1us floor) —
  /// early delivery stays within the δ+e envelope, since the paper's
  /// latencies are maxima.
  struct ChannelDecision {
    bool drop = false;
    bool duplicate = false;
    sim::Duration advance = sim::Duration::zero();
  };
  /// Channel-fault oracle, consulted once per VSA→VSA or client→VSA send
  /// while installed (broadcasts to clients are physical-layer local and
  /// exempt). The oracle owns its randomness; CGcast consumes none for it.
  using ChannelFaults = std::function<ChannelDecision(const Message&)>;

  void set_tracker_sink(TrackerSink sink) { tracker_sink_ = std::move(sink); }
  void set_client_sink(ClientSink sink) { client_sink_ = std::move(sink); }
  void set_vsa_alive(AliveFn alive) { alive_ = std::move(alive); }
  void set_replicas(ReplicaFn replicas) { replicas_ = std::move(replicas); }
  /// Installs (or, with an empty function, removes) the channel-fault
  /// oracle. At most one is active; the fault engine owns the slot.
  void set_channel_faults(ChannelFaults faults) {
    channel_faults_ = std::move(faults);
  }
  /// True while a channel-fault oracle is installed (the sharded
  /// executor's eligibility gate consults this: faulted channels need the
  /// serial path's single global interleaving).
  [[nodiscard]] bool has_channel_faults() const {
    return static_cast<bool>(channel_faults_);
  }

  /// Attach the sharded world's partition (nullptr detaches). While set,
  /// deliveries are routed into the destination cluster's lane queue via
  /// Scheduler::schedule_cross, and inside parallel windows the shared
  /// in-flight bookkeeping is skipped (purged at each barrier instead).
  /// The map must outlive the attachment.
  void set_shard_map(const ShardMap* map) { shard_map_ = map; }

  /// Barrier hook for sharded worlds: drop in-flight rows whose delivery
  /// time has passed. In a parallel-eligible world (no loss, no faults,
  /// no failed VSAs) a row with deliver_at <= now was necessarily
  /// delivered inside a window — where lane threads must not touch the
  /// shared map — so this is an exact, deferred form of the erase the
  /// serial path does at delivery.
  void purge_delivered(sim::TimePoint now);

  ObserverId add_send_observer(SendObserver obs);
  /// Detaches a previously added observer. Observers whose owner may die
  /// before the service (spec monitors, watchdogs) must call this from
  /// their destructor or every later send dangles. Unknown ids are a
  /// no-op, so teardown paths may call it unconditionally.
  void remove_send_observer(ObserverId id);
  /// Observers currently attached (tests pin detach-on-destruction).
  [[nodiscard]] std::size_t send_observer_count() const {
    return observers_.size();
  }

  /// Attach the world's trace recorder (nullptr detaches). The recorder
  /// must outlive the service; CGcast never owns it.
  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Attach the world's wall-clock profiler (nullptr detaches). The
  /// deliver path wraps the tracker-sink handoff in a kDeliver scope and
  /// charges the inclusive handling time to the message's kind and op —
  /// the bridge from CPU ns to the ledger's virtual-cost rows.
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

  /// Ambient operation for cost attribution: while set (non-zero), every
  /// message sent without an explicit op is stamped with it before
  /// counters, observers, and trace records see the send. Drivers bracket
  /// operation roots (a move's grow/shrink injection, a find injection)
  /// with set/clear; everything deeper inherits the op through message
  /// propagation in the Tracker. Compiled out with tracing: when
  /// kTraceCompiled is false the stamp never happens and every op stays 0.
  void set_ambient_op(obs::OpId op) { ambient_op_ = op; }
  [[nodiscard]] obs::OpId ambient_op() const { return ambient_op_; }

  /// cTOBsend from the process of cluster `from` to the process of cluster
  /// `to`. `to` must be the parent, a child, a neighbour, or within two
  /// neighbour hops (neighbour-of-neighbour / child-of-neighbour) of
  /// `from` — anything else is a protocol error and throws.
  void send(ClusterId from, ClusterId to, const Message& m);

  /// cTOBsend from a client at region `at` to its region's level-0 cluster
  /// (rule (e), delay δ).
  void send_from_client(RegionId at, const Message& m);

  /// Broadcast from a level-0 cluster process to the clients of its own
  /// region (rule (d), delay δ+e). Neighbour regions' clients are reached
  /// by the tracker relaying `found` to neighbour clusters (Figure 2's
  /// sendq entries), which re-broadcast locally.
  void broadcast_to_clients(ClusterId from_level0, const Message& m);

  /// Latency the service would assign to a VSA→VSA message (exposed for
  /// tests of the delay model).
  [[nodiscard]] sim::Duration vsa_delay(ClusterId from, ClusterId to) const;

  struct InTransit {
    Message msg;
    ClusterId from;  // invalid for client-originated messages
    ClusterId to;    // destination cluster (invalid for client broadcasts)
    sim::TimePoint deliver_at;
  };
  /// All VSA→VSA and client→VSA messages currently in flight, in
  /// deterministic (send order) sequence.
  [[nodiscard]] std::vector<InTransit> in_transit() const;

  /// Messages dropped because the destination VSA was failed at delivery.
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  /// Messages lost to injected channel faults (loss_probability).
  [[nodiscard]] std::int64_t lost() const { return lost_; }

  [[nodiscard]] const CGcastConfig& config() const { return config_; }
  [[nodiscard]] const hier::ClusterHierarchy& hierarchy() const {
    return *hier_;
  }

 private:
  void deliver_to_tracker(std::uint64_t key, ClusterId to, const Message& m);
  /// Sharded delivery: `from` travels in the closure (the in-flight row
  /// may already be gone), `key` is 0 for sends issued inside a parallel
  /// window (no row was booked).
  void deliver_sharded(std::uint64_t key, ClusterId from, ClusterId to,
                       const Message& m);
  /// Liveness check, trace records, and the tracker-sink handoff shared by
  /// both delivery paths.
  void deliver_common(ClusterId from, ClusterId to, const Message& m);
  /// Books one in-flight entry and schedules its delivery.
  void enqueue(ClusterId from, ClusterId to, const Message& m,
               sim::Duration delay);
  /// Applies the channel-fault oracle to an outgoing message: updates
  /// `delay`/`duplicate` and returns true if the message is dropped.
  [[nodiscard]] bool apply_channel_faults(const Message& m,
                                          sim::Duration& delay,
                                          bool& duplicate);
  [[nodiscard]] bool vsa_alive_at(RegionId region) const;
  /// Hop-work of a message to `to`'s process (summed over replicas).
  [[nodiscard]] std::int64_t work_to(ClusterId from, ClusterId to) const;
  /// True iff some host of `to`'s process is alive.
  [[nodiscard]] bool process_alive(ClusterId to) const;
  void notify_observers(const Message& m, ClusterId from, ClusterId to,
                        Level level, std::int64_t hops);
  /// Append one message-shaped trace record. Callers gate on
  /// obs::kTraceCompiled && trace_ && trace_->enabled() so the disabled
  /// path stays a pointer test and the OFF build deletes the call.
  void record(obs::TraceKind kind, const Message& m, std::int32_t a,
              std::int32_t b, Level level, std::int32_t arg);

  sim::Scheduler* sched_;
  const hier::ClusterHierarchy* hier_;
  CGcastConfig config_;
  stats::WorkCounters* counters_;
  TrackerSink tracker_sink_;
  ClientSink client_sink_;
  AliveFn alive_;
  ReplicaFn replicas_;
  ChannelFaults channel_faults_;
  std::vector<std::pair<ObserverId, SendObserver>> observers_;
  ObserverId next_observer_id_{1};
  obs::TraceRecorder* trace_ = nullptr;
  obs::Profiler* prof_ = nullptr;
  obs::OpId ambient_op_ = obs::kBackgroundOp;
  const ShardMap* shard_map_ = nullptr;

  std::map<std::uint64_t, InTransit> in_flight_;  // key: send sequence
  std::uint64_t next_key_{1};
  std::int64_t dropped_{0};
  std::int64_t lost_{0};
  Rng loss_rng_;
  /// True if the message should be lost (consumes randomness only when
  /// loss injection is enabled, keeping default runs byte-identical).
  [[nodiscard]] bool lose_message();
};

}  // namespace vs::vsa
