#include "vsa/evader.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vs::vsa {

EvaderModel::EvaderModel(const geo::Tiling& tiling) : tiling_(&tiling) {}

TargetId EvaderModel::add_evader(RegionId start) {
  VS_REQUIRE(start.valid() &&
                 static_cast<std::size_t>(start.value()) < tiling_->num_regions(),
             "bad start region");
  const TargetId id{static_cast<TargetId::rep_type>(where_.size())};
  where_[id] = start;
  if (hook_) hook_(id, RegionId::invalid(), start);
  return id;
}

void EvaderModel::move(TargetId target, RegionId to) {
  const auto it = where_.find(target);
  VS_REQUIRE(it != where_.end(), "unknown evader " << target);
  const RegionId from = it->second;
  VS_REQUIRE(tiling_->are_neighbors(from, to),
             "evader may only move to a neighbouring region (" << from << " → "
                                                               << to << ")");
  it->second = to;
  if (hook_) hook_(target, from, to);
}

RegionId EvaderModel::region_of(TargetId target) const {
  const auto it = where_.find(target);
  VS_REQUIRE(it != where_.end(), "unknown evader " << target);
  return it->second;
}

RandomWalkMover::RandomWalkMover(const geo::Tiling& tiling, std::uint64_t seed)
    : tiling_(&tiling), rng_(seed) {}

RegionId RandomWalkMover::next(RegionId current) {
  const auto nbrs = tiling_->neighbors(current);
  return nbrs[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(nbrs.size()) - 1))];
}

PathMover::PathMover(std::vector<RegionId> path) : path_(std::move(path)) {
  VS_REQUIRE(!path_.empty(), "empty path");
}

RegionId PathMover::next(RegionId current) {
  // Advance past the current position if the cursor sits on it.
  if (path_[index_] == current) index_ = (index_ + 1) % path_.size();
  const RegionId to = path_[index_];
  index_ = (index_ + 1) % path_.size();
  return to;
}

DitherMover::DitherMover(RegionId a, RegionId b) : a_(a), b_(b) {
  VS_REQUIRE(a != b, "dither endpoints must differ");
}

RegionId DitherMover::next(RegionId current) { return current == a_ ? b_ : a_; }

WaypointMover::WaypointMover(const geo::GridTiling& grid, std::uint64_t seed)
    : grid_(&grid), rng_(seed) {
  waypoint_ = RegionId{static_cast<RegionId::rep_type>(
      rng_.uniform_int(0, static_cast<std::int64_t>(grid.num_regions()) - 1))};
}

RegionId WaypointMover::next(RegionId current) {
  while (waypoint_ == current) {
    waypoint_ = RegionId{static_cast<RegionId::rep_type>(rng_.uniform_int(
        0, static_cast<std::int64_t>(grid_->num_regions()) - 1))};
  }
  const geo::Coord at = grid_->coord(current);
  const geo::Coord goal = grid_->coord(waypoint_);
  const int dx = goal.x == at.x ? 0 : (goal.x > at.x ? 1 : -1);
  const int dy = goal.y == at.y ? 0 : (goal.y > at.y ? 1 : -1);
  return grid_->region_at(at.x + dx, at.y + dy);
}

}  // namespace vs::vsa
