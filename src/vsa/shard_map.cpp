#include "vsa/shard_map.hpp"

#include "common/error.hpp"

namespace vs::vsa {

ShardMap::ShardMap(const hier::ClusterHierarchy& hierarchy, int lanes)
    : lanes_(lanes) {
  const auto num_regions = hierarchy.tiling().num_regions();
  VS_REQUIRE(lanes >= 1, "need at least one lane, got " << lanes);
  VS_REQUIRE(static_cast<std::size_t>(lanes) <= num_regions,
             "more lanes (" << lanes << ") than regions (" << num_regions
                            << ")");
  lane_by_cluster_.resize(hierarchy.num_clusters());
  for (std::size_t c = 0; c < lane_by_cluster_.size(); ++c) {
    const RegionId head =
        hierarchy.head(ClusterId{static_cast<std::int32_t>(c)});
    lane_by_cluster_[c] = static_cast<std::int32_t>(
        static_cast<std::int64_t>(head.value()) * lanes /
        static_cast<std::int64_t>(num_regions));
  }
  lane_by_region_.resize(num_regions);
  for (std::size_t u = 0; u < num_regions; ++u) {
    const RegionId region{static_cast<std::int32_t>(u)};
    const ClusterId c0 = hierarchy.cluster_of(region, 0);
    lane_by_region_[u] = lane_of_cluster(c0);
    // Level-0 clusters are singletons, so a region and its level-0
    // cluster head coincide — the colocation invariant by construction.
    VS_DCHECK(hierarchy.head(c0) == region,
              "level-0 cluster head differs from its region");
  }
}

}  // namespace vs::vsa
