#include "vsa/directory.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace vs::vsa {

VsaDirectory::VsaDirectory(sim::Scheduler& sched, std::size_t num_regions,
                           sim::Duration t_restart)
    : sched_(&sched), t_restart_(t_restart), state_(num_regions) {
  VS_REQUIRE(t_restart >= sim::Duration::zero(), "negative t_restart");
}

VsaDirectory::RegionState& VsaDirectory::state_of(RegionId u) {
  VS_REQUIRE(u.valid() && static_cast<std::size_t>(u.value()) < state_.size(),
             "region " << u << " out of range");
  return state_[static_cast<std::size_t>(u.value())];
}

bool VsaDirectory::alive(RegionId u) const {
  return const_cast<VsaDirectory*>(this)->state_of(u).alive;
}

void VsaDirectory::fail(RegionId u) {
  RegionState& s = state_of(u);
  if (!s.alive) return;
  s.alive = false;
  ++failures_;
  VS_DEBUG("VSA at region " << u << " failed at " << sched_->now());
  if (on_fail_) on_fail_(u);
  maybe_schedule_restart(u);
}

void VsaDirectory::set_clients_present(RegionId u, bool present) {
  RegionState& s = state_of(u);
  if (s.clients_present == present) return;
  s.clients_present = present;
  if (!present) {
    // Presence lapse aborts any pending restart and fails a live VSA.
    if (s.restart_timer) s.restart_timer->disarm();
    fail(u);
  } else {
    maybe_schedule_restart(u);
  }
}

void VsaDirectory::maybe_schedule_restart(RegionId u) {
  RegionState& s = state_of(u);
  if (s.alive || !s.clients_present) return;
  if (!s.restart_timer) {
    s.restart_timer = std::make_unique<sim::Timer>(*sched_, [this, u] {
      RegionState& rs = state_of(u);
      if (rs.alive || !rs.clients_present) return;
      rs.alive = true;
      ++restarts_;
      VS_DEBUG("VSA at region " << u << " restarted at " << sched_->now());
      if (on_restart_) on_restart_(u);
    });
  }
  s.restart_timer->arm_after(t_restart_);
}

}  // namespace vs::vsa
