#pragma once
// ShardMap — deterministic partition of the cluster hierarchy into lanes.
//
// The sharded executor (sim/shard_executor.hpp) needs every cluster — and
// every region's client population — assigned to exactly one lane, with
// two properties:
//  * seed-independence: the partition is a pure function of the hierarchy
//    geometry, so the same world sharded the same way always maps the same
//    (the determinism tests compare traces across shard counts, not the
//    partition itself, but a drifting partition would churn the perf
//    numbers for no reason);
//  * client/level-0 colocation: a region's clients share a lane with the
//    region's level-0 cluster, because rules (d)/(e) — client↔VSA traffic —
//    run *below* the conservative lookahead (delay δ and δ+e) and are only
//    safe because they never cross a lane.
//
// The partition is contiguous region-id bands: lane(c) =
// head(c)·K / num_regions. Region ids are row-major on the grid tilings,
// so bands are horizontal strips — cheap, balanced for uniformly spread
// walkers, and every cluster subtree at every level lands with its head.

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "hier/hierarchy.hpp"

namespace vs::vsa {

class ShardMap {
 public:
  /// Requires 1 <= lanes <= num_regions.
  ShardMap(const hier::ClusterHierarchy& hierarchy, int lanes);

  [[nodiscard]] int lanes() const { return lanes_; }

  /// Lane hosting cluster `c`'s process (its head's band).
  [[nodiscard]] std::int32_t lane_of_cluster(ClusterId c) const {
    return lane_by_cluster_[static_cast<std::size_t>(c.value())];
  }

  /// Lane hosting region `u`'s clients — always the lane of u's level-0
  /// cluster (the colocation invariant rule (d)/(e) safety rests on).
  [[nodiscard]] std::int32_t lane_of_region(RegionId u) const {
    return lane_by_region_[static_cast<std::size_t>(u.value())];
  }

 private:
  int lanes_;
  std::vector<std::int32_t> lane_by_cluster_;
  std::vector<std::int32_t> lane_by_region_;
};

}  // namespace vs::vsa
