#include "vsa/messages.hpp"

namespace vs::vsa {

namespace {

const char* to_string(HbClaim claim) {
  switch (claim) {
    case HbClaim::kNone: return "none";
    case HbClaim::kChild: return "child";
    case HbClaim::kParent: return "parent";
    case HbClaim::kAdvertUp: return "advertUp";
    case HbClaim::kAdvertDown: return "advertDown";
    case HbClaim::kSecondaryUp: return "secondaryUp";
    case HbClaim::kSecondaryDown: return "secondaryDown";
    case HbClaim::kAnchor: return "anchor";
    case HbClaim::kClientQuery: return "clientQuery";
  }
  return "?";
}

}  // namespace

std::ostream& operator<<(std::ostream& os, const Message& m) {
  os << stats::to_string(m.type) << "(from=" << m.from_cluster
     << ",tgt=" << m.target;
  if (m.find_id.valid()) os << ",find=" << m.find_id;
  if (m.ack_pointer.valid()) os << ",x=" << m.ack_pointer;
  if (m.hb_claim != HbClaim::kNone) {
    os << ",hb=" << to_string(m.hb_claim);
    if (m.type == MsgType::kHeartbeatAck) os << (m.hb_ok ? "/ok" : "/miss");
  }
  return os << ")";
}

}  // namespace vs::vsa
