#include "vsa/messages.hpp"

namespace vs::vsa {

std::ostream& operator<<(std::ostream& os, const Message& m) {
  os << stats::to_string(m.type) << "(from=" << m.from_cluster
     << ",tgt=" << m.target;
  if (m.find_id.valid()) os << ",find=" << m.find_id;
  if (m.ack_pointer.valid()) os << ",x=" << m.ack_pointer;
  return os << ")";
}

}  // namespace vs::vsa
