#pragma once
// Mobile-object (evader) model (paper §III-A).
//
// The evader resides at exactly one region and nondeterministically moves
// to a neighbouring region. It is modelled by the GPS service, augmented to
// deliver `move`/`left` inputs to the clients of the regions it enters and
// leaves. Several movement strategies ("movers") generate the
// nondeterminism reproducibly for tests and benches.

#include <functional>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "geo/grid_tiling.hpp"
#include "geo/tiling.hpp"

namespace vs::vsa {

class EvaderModel {
 public:
  explicit EvaderModel(const geo::Tiling& tiling);

  /// Places a new evader; issues a `move` input at `start`.
  TargetId add_evader(RegionId start);

  /// Relocates `target` to a neighbouring region; issues `left` at the old
  /// region and `move` at the new one.
  void move(TargetId target, RegionId to);

  [[nodiscard]] RegionId region_of(TargetId target) const;
  [[nodiscard]] std::size_t num_evaders() const { return where_.size(); }

  /// Subscribed by the client population: (target, from, to); `from` is
  /// invalid on initial placement.
  using MoveHook = std::function<void(TargetId, RegionId, RegionId)>;
  void set_move_hook(MoveHook hook) { hook_ = std::move(hook); }

 private:
  const geo::Tiling* tiling_;
  std::map<TargetId, RegionId> where_;
  MoveHook hook_;
};

/// Movement strategy: yields the next region given the current one.
class Mover {
 public:
  virtual ~Mover() = default;
  virtual RegionId next(RegionId current) = 0;
};

/// Uniform random walk over the neighbour graph.
class RandomWalkMover final : public Mover {
 public:
  RandomWalkMover(const geo::Tiling& tiling, std::uint64_t seed);
  RegionId next(RegionId current) override;

 private:
  const geo::Tiling* tiling_;
  Rng rng_;
};

/// Follows a fixed cyclic sequence of regions (each consecutive pair must
/// be neighbours); used for hand-built adversarial scenarios.
class PathMover final : public Mover {
 public:
  explicit PathMover(std::vector<RegionId> path);
  RegionId next(RegionId current) override;

 private:
  std::vector<RegionId> path_;
  std::size_t index_{0};
};

/// Oscillates between two neighbouring regions — the paper's "dithering"
/// adversary: when a and b lie on opposite sides of a multi-level cluster
/// boundary, naive schemes pay work proportional to that level per step.
class DitherMover final : public Mover {
 public:
  DitherMover(RegionId a, RegionId b);
  RegionId next(RegionId current) override;

 private:
  RegionId a_;
  RegionId b_;
};

/// Greedy walk toward a waypoint (Chebyshev-decreasing steps on a grid);
/// reaching it, picks a fresh random waypoint.
class WaypointMover final : public Mover {
 public:
  WaypointMover(const geo::GridTiling& grid, std::uint64_t seed);
  RegionId next(RegionId current) override;

 private:
  const geo::GridTiling* grid_;
  Rng rng_;
  RegionId waypoint_{};
};

}  // namespace vs::vsa
