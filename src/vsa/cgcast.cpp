#include "vsa/cgcast.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace vs::vsa {

CGcast::CGcast(sim::Scheduler& sched, const hier::ClusterHierarchy& hierarchy,
               CGcastConfig config, stats::WorkCounters& counters)
    : sched_(&sched),
      hier_(&hierarchy),
      config_(config),
      counters_(&counters),
      loss_rng_(config.loss_seed) {
  VS_REQUIRE(config.delta > sim::Duration::zero(), "delta must be positive");
  VS_REQUIRE(config.e >= sim::Duration::zero(), "e must be non-negative");
  VS_REQUIRE(config.loss_probability >= 0.0 && config.loss_probability < 1.0,
             "loss probability must be in [0, 1)");
}

bool CGcast::lose_message() {
  if (config_.loss_probability <= 0.0) return false;
  if (!loss_rng_.chance(config_.loss_probability)) return false;
  ++lost_;
  return true;
}

CGcast::ObserverId CGcast::add_send_observer(SendObserver obs) {
  const ObserverId id = next_observer_id_++;
  observers_.emplace_back(id, std::move(obs));
  return id;
}

void CGcast::remove_send_observer(ObserverId id) {
  std::erase_if(observers_, [id](const auto& e) { return e.first == id; });
}

void CGcast::notify_observers(const Message& m, ClusterId from, ClusterId to,
                              Level level, std::int64_t hops) {
  for (const auto& [id, obs] : observers_) obs(m, from, to, level, hops);
}

void CGcast::record(obs::TraceKind kind, const Message& m, std::int32_t a,
                    std::int32_t b, Level level, std::int32_t arg) {
  trace_->append(obs::TraceEvent{
      .time_us = sched_->now().count(),
      .seq = sched_->current_seq(),
      .cause = sched_->current_cause(),
      .find = m.find_id.valid() ? m.find_id.value() : -1,
      .a = a,
      .b = b,
      .target = m.target.valid() ? m.target.value() : -1,
      .arg = arg,
      .level = static_cast<std::int16_t>(level),
      .kind = static_cast<std::uint8_t>(kind),
      .msg = static_cast<std::uint8_t>(m.type),
      .extra = m.ack_pointer.valid() ? m.ack_pointer.value() : 0,
      .op = m.op,
      .pad0 = 0,
  });
}

sim::Duration CGcast::vsa_delay(ClusterId from, ClusterId to) const {
  const auto& h = *hier_;
  const Level l = h.level(from);
  const sim::Duration de = config_.delta + config_.e;
  if (l != h.max_level() && h.parent(from) == to) {
    return de * h.p(l);  // rule (b), child → parent
  }
  if (h.level(to) != h.max_level() && h.parent(to) == from) {
    return de * h.p(h.level(to));  // rule (b), parent → child
  }
  if (h.are_cluster_neighbors(from, to)) {
    return de * h.n(l);  // rule (a)
  }
  // Rule (c): within two neighbour hops — a neighbour's neighbour or a
  // neighbour's child (the findAck-pointer chases of §V). Anything further
  // is outside C-gcast's contract and indicates an algorithm bug.
  for (const ClusterId b : h.nbrs(from)) {
    const bool reaches = h.are_cluster_neighbors(b, to) ||
                         (h.level(to) == l - 1 && h.parent(to) == b) ||
                         b == to;
    if (reaches) {
      return de * (2 * h.n(std::max(l, h.level(to))));
    }
  }
  VS_REQUIRE(false, "C-gcast send outside two-hop locality: cluster "
                        << from << " (level " << l << ") → cluster " << to
                        << " (level " << h.level(to) << ")");
  return de;  // unreachable
}

std::int64_t CGcast::work_to(ClusterId from, ClusterId to) const {
  if (!replicas_) return hier_->head_distance(from, to);
  const RegionId origin = hier_->head(from);
  std::int64_t sum = 0;
  for (const RegionId r : replicas_(to)) {
    sum += hier_->tiling().distance(origin, r);
  }
  return sum;
}

bool CGcast::process_alive(ClusterId to) const {
  if (!replicas_) return vsa_alive_at(hier_->head(to));
  for (const RegionId r : replicas_(to)) {
    if (vsa_alive_at(r)) return true;
  }
  return false;
}

void CGcast::enqueue(ClusterId from, ClusterId to, const Message& m,
                     sim::Duration delay) {
  if (shard_map_ != nullptr) {
    // Sharded world: route the delivery into the destination cluster's
    // lane. Inside a parallel window the shared in-flight map is off
    // limits (other lanes run concurrently), so no row is booked (key 0);
    // rows booked in serial context but delivered inside a later window
    // are purged at the barrier.
    std::uint64_t key = 0;
    if (!sim::in_parallel_lane()) {
      key = next_key_++;
      in_flight_.emplace(key, InTransit{m, from, to, sched_->now() + delay});
    }
    sched_->schedule_cross(
        shard_map_->lane_of_cluster(to), delay,
        [this, key, from, to, m] { deliver_sharded(key, from, to, m); });
    return;
  }
  const std::uint64_t key = next_key_++;
  in_flight_.emplace(key, InTransit{m, from, to, sched_->now() + delay});
  sched_->schedule_after(delay,
                         [this, key, to, m] { deliver_to_tracker(key, to, m); });
}

bool CGcast::apply_channel_faults(const Message& m, sim::Duration& delay,
                                  bool& duplicate) {
  if (!channel_faults_) return false;
  const ChannelDecision d = channel_faults_(m);
  if (d.drop) {
    ++lost_;
    return true;
  }
  if (d.advance > sim::Duration::zero()) {
    // Early delivery only, floored at 1us — never later than the model's
    // maximum latency, never at-or-before the send instant.
    const sim::Duration floor = sim::Duration::micros(1);
    if (delay > floor) {
      delay = delay - d.advance < floor ? floor : delay - d.advance;
      counters_->note_jittered();
    }
  }
  if (d.duplicate) {
    duplicate = true;
    counters_->note_duplicated();
  }
  return false;
}

void CGcast::send(ClusterId from, ClusterId to, const Message& m) {
  if (obs::kTraceCompiled && ambient_op_ != obs::kBackgroundOp &&
      m.op == obs::kBackgroundOp) {
    Message tagged = m;
    tagged.op = ambient_op_;
    send(from, to, tagged);
    return;
  }
  VS_REQUIRE(from.valid() && to.valid() && from != to,
             "bad VSA send " << from << " → " << to);
  const auto& h = *hier_;
  const Level l = h.level(from);
  sim::Duration delay = vsa_delay(from, to);
  const std::int64_t hops = work_to(from, to);
  counters_->record(m.type, l, hops);
  notify_observers(m, from, to, l, hops);
  if (obs::kTraceCompiled && trace_ != nullptr && trace_->enabled()) {
    record(obs::TraceKind::kSend, m, from.value(), to.value(), l,
           static_cast<std::int32_t>(hops));
  }
  bool duplicate = false;
  if (lose_message() ||  // vanished in flight (fault injection)
      apply_channel_faults(m, delay, duplicate)) {
    if (obs::kTraceCompiled && trace_ != nullptr && trace_->enabled()) {
      record(obs::TraceKind::kLost, m, from.value(), to.value(), l, 0);
    }
    return;
  }

  enqueue(from, to, m, delay);
  if (duplicate) enqueue(from, to, m, delay);
}

void CGcast::send_from_client(RegionId at, const Message& m) {
  if (obs::kTraceCompiled && ambient_op_ != obs::kBackgroundOp &&
      m.op == obs::kBackgroundOp) {
    Message tagged = m;
    tagged.op = ambient_op_;
    send_from_client(at, tagged);
    return;
  }
  const auto& h = *hier_;
  const ClusterId dest = h.cluster_of(at, 0);
  counters_->record(m.type, 0, 1);
  notify_observers(m, ClusterId::invalid(), dest, 0, 1);
  if (obs::kTraceCompiled && trace_ != nullptr && trace_->enabled()) {
    record(obs::TraceKind::kClientSend, m, at.value(), dest.value(), 0, 1);
  }
  sim::Duration delay = config_.delta;  // rule (e)
  bool duplicate = false;
  if (lose_message() || apply_channel_faults(m, delay, duplicate)) {
    if (obs::kTraceCompiled && trace_ != nullptr && trace_->enabled()) {
      record(obs::TraceKind::kLost, m, at.value(), dest.value(), 0, 0);
    }
    return;
  }
  enqueue(ClusterId::invalid(), dest, m, delay);
  if (duplicate) enqueue(ClusterId::invalid(), dest, m, delay);
}

void CGcast::broadcast_to_clients(ClusterId from_level0, const Message& m) {
  if (obs::kTraceCompiled && ambient_op_ != obs::kBackgroundOp &&
      m.op == obs::kBackgroundOp) {
    Message tagged = m;
    tagged.op = ambient_op_;
    broadcast_to_clients(from_level0, tagged);
    return;
  }
  const auto& h = *hier_;
  VS_REQUIRE(h.level(from_level0) == 0, "client broadcast from non-level-0");
  const RegionId region = h.members(from_level0).front();
  counters_->record(m.type, 0, 1);
  notify_observers(m, from_level0, ClusterId::invalid(), 0, 1);
  if (obs::kTraceCompiled && trace_ != nullptr && trace_->enabled()) {
    record(obs::TraceKind::kBroadcast, m, from_level0.value(), region.value(),
           0, 1);
  }
  if (shard_map_ != nullptr) {
    // The region's clients share the level-0 cluster's lane (ShardMap's
    // colocation invariant), so this never crosses a lane — and the δ+e
    // delay meets the lookahead anyway.
    sched_->schedule_cross(shard_map_->lane_of_region(region),
                           config_.delta + config_.e, [this, region, m] {
                             if (client_sink_) client_sink_(region, m);
                           });
    return;
  }
  sched_->schedule_after(config_.delta + config_.e, [this, region, m] {
    if (client_sink_) client_sink_(region, m);  // rule (d)
  });
}

void CGcast::deliver_to_tracker(std::uint64_t key, ClusterId to,
                                const Message& m) {
  ClusterId from = ClusterId::invalid();
  if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
    from = it->second.from;
    in_flight_.erase(it);
  }
  deliver_common(from, to, m);
}

void CGcast::deliver_sharded(std::uint64_t key, ClusterId from, ClusterId to,
                             const Message& m) {
  // Erase the in-flight row only from serial context; rows delivered
  // inside a parallel window are purged at the barrier instead.
  if (key != 0 && !sim::in_parallel_lane()) in_flight_.erase(key);
  deliver_common(from, to, m);
}

void CGcast::purge_delivered(sim::TimePoint now) {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->second.deliver_at <= now) {
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
}

void CGcast::deliver_common(ClusterId from, ClusterId to, const Message& m) {
  if (!process_alive(to)) {
    ++dropped_;
    if (obs::kTraceCompiled && trace_ != nullptr && trace_->enabled()) {
      record(obs::TraceKind::kDrop, m, from.valid() ? from.value() : -1,
             to.value(), hier_->level(to), 0);
    }
    VS_TRACE("drop " << m << " → cluster " << to
                     << " (no alive hosting VSA)");
    return;
  }
  if (obs::kTraceCompiled && trace_ != nullptr && trace_->enabled()) {
    record(obs::TraceKind::kDeliver, m, from.valid() ? from.value() : -1,
           to.value(), hier_->level(to), 0);
  }
  VS_REQUIRE(static_cast<bool>(tracker_sink_), "no tracker sink installed");
  if (obs::kProfileCompiled && prof_ != nullptr && prof_->enabled()) {
    // Inclusive handler time, charged to the message's kind and op — the
    // per-message bridge between CPU ns and the ledger's virtual cost.
    obs::ProfBuf& pb = prof_->buf();
    obs::Profiler::begin_scope(pb, obs::ProfDomain::kDeliver);
    tracker_sink_(to, m);
    const std::uint64_t ns = obs::Profiler::end_scope(pb);
    obs::Profiler::charge_msg(pb, m.type, m.op, ns);
    return;
  }
  tracker_sink_(to, m);
}

bool CGcast::vsa_alive_at(RegionId region) const {
  return !alive_ || alive_(region);
}

std::vector<CGcast::InTransit> CGcast::in_transit() const {
  std::vector<InTransit> out;
  out.reserve(in_flight_.size());
  for (const auto& [key, msg] : in_flight_) out.push_back(msg);
  return out;
}

}  // namespace vs::vsa
