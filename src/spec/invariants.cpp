#include "spec/invariants.hpp"

#include <sstream>

#include "common/log.hpp"
#include "spec/look_ahead.hpp"

namespace vs::spec {

using tracking::SystemSnapshot;
using vsa::Message;
using vsa::MsgType;

InvariantMonitor::InvariantMonitor(tracking::TrackingNetwork& net,
                                   TargetId target, bool check_every_change)
    : net_(&net), target_(target) {
  send_observer_id_ = net.cgcast().add_send_observer(
      [this](const Message& m, ClusterId from, ClusterId to, Level level,
             std::int64_t /*hops*/) {
    if (m.target != target_ || m.type != MsgType::kGrow) return;
    if (!from.valid()) return;  // client grow, never lateral
    const auto& h = net_->hierarchy();
    if (h.are_cluster_neighbors(from, to)) {
      ++lateral_total_;
      const auto count = ++lateral_this_move_[level];
      if (!live_checks_) return;  // outside the atomic domain: stats only
      if (count > 1) {
        record("Lemma 4.2 violated: " + std::to_string(count) +
                   " lateral grows at level " + std::to_string(level) +
                   " within one move",
               to, level);
      }
      // Lemma 4.3 at send time: the lateral target must be connected via
      // its hierarchy parent.
      const auto ts = net_->tracker(to).state(target_);
      if (ts.p != h.parent(to)) {
        record("Lemma 4.3 violated at send: lateral grow " +
                   std::to_string(from.value()) + " → " +
                   std::to_string(to.value()) + " but target p is not parent",
               to, level);
      }
    }
  });
  if (check_every_change) {
    net.set_state_change_hook(
        [this](ClusterId, TargetId t) {
          if (t == target_) check_now();
        });
    installed_state_hook_ = true;
  }
}

InvariantMonitor::~InvariantMonitor() {
  net_->cgcast().remove_send_observer(send_observer_id_);
  if (installed_state_hook_) net_->set_state_change_hook({});
}

void InvariantMonitor::on_move() { lateral_this_move_.clear(); }

void InvariantMonitor::check_now() {
  const SystemSnapshot snap = net_->snapshot(target_);
  const auto& h = *snap.hier;

  // Lemma 4.1. Remember one offending front so a detection can name the
  // cluster/level it fired on.
  std::int64_t grow_fronts = 0;
  std::int64_t shrink_fronts = 0;
  ClusterId grow_front{};
  ClusterId shrink_front{};
  for (const auto& t : snap.trackers) {
    if (h.level(t.clust) == h.max_level()) continue;
    if (t.c.valid() && !t.p.valid()) {
      ++grow_fronts;
      grow_front = t.clust;
    }
    if (!t.c.valid() && t.p.valid()) {
      ++shrink_fronts;
      shrink_front = t.clust;
    }
  }
  for (const auto& m : snap.in_transit) {
    if (m.type == MsgType::kGrow) {
      ++grow_fronts;
      grow_front = m.to;
    }
    if (m.type == MsgType::kShrink) {
      ++shrink_fronts;
      shrink_front = m.to;
    }
  }
  if (grow_fronts > 1) {
    record("Lemma 4.1 violated: " + std::to_string(grow_fronts) +
               " grow fronts at " + std::to_string(net_->now().count()) + "us",
           grow_front, grow_front.valid() ? h.level(grow_front) : Level{-1});
  }
  if (shrink_fronts > 1) {
    record(
        "Lemma 4.1 violated: " + std::to_string(shrink_fronts) +
            " shrink fronts at " + std::to_string(net_->now().count()) + "us",
        shrink_front,
        shrink_front.valid() ? h.level(shrink_front) : Level{-1});
  }

  // Lemma 4.3 for in-transit lateral grows.
  for (const auto& m : snap.in_transit) {
    if (m.type != MsgType::kGrow) continue;
    if (!m.from.valid() || m.from == m.to) continue;  // client grow
    if (!h.are_cluster_neighbors(m.from, m.to)) continue;
    const auto& ts = snap.at(m.to);
    if (ts.p != h.parent(m.to)) {
      record("Lemma 4.3 violated in transit: lateral grow " +
                 std::to_string(m.from.value()) + " → " +
                 std::to_string(m.to.value()) + " but target p is not parent",
             m.to, h.level(m.to));
    }
  }
}

void InvariantMonitor::record(std::string msg, ClusterId cluster,
                              Level level) {
  VS_WARN("invariant: " << msg);
  if (hook_) hook_(msg, cluster, level);
  if (violations_.size() < 64) violations_.push_back(std::move(msg));
}

std::string InvariantMonitor::to_string() const {
  std::ostringstream os;
  for (const auto& v : violations_) os << v << '\n';
  return os.str();
}

}  // namespace vs::spec
