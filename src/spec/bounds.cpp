#include "spec/bounds.hpp"

#include "common/error.hpp"

namespace vs::spec {

double move_work_bound_per_step(const hier::ClusterHierarchy& h) {
  double sum = static_cast<double>(h.omega(0));
  for (Level j = 1; j <= h.max_level(); ++j) {
    sum += static_cast<double>(h.n(j)) * (1.0 + static_cast<double>(h.omega(j))) /
           static_cast<double>(h.q(j - 1));
  }
  return sum;
}

double move_time_bound_per_step(const hier::ClusterHierarchy& h,
                                const tracking::TimerPolicy& timers,
                                sim::Duration delta_plus_e) {
  VS_REQUIRE(static_cast<bool>(timers.shrink), "timer policy unset");
  double sum = static_cast<double>(timers.shrink(0).count());
  for (Level j = 1; j <= h.max_level(); ++j) {
    const double s_j = j < h.max_level()
                           ? static_cast<double>(timers.shrink(j).count())
                           : 0.0;  // no timer at MAX
    const double term =
        s_j + static_cast<double>(delta_plus_e.count()) *
                  static_cast<double>(h.n(j));
    sum += term / static_cast<double>(h.q(j - 1));
  }
  return sum;
}

Level find_level(const hier::ClusterHierarchy& h, int d) {
  VS_REQUIRE(d >= 0, "negative distance");
  for (Level l = 0; l <= h.max_level(); ++l) {
    if (h.q(l) >= d) return l;
  }
  return h.max_level();
}

double find_work_bound(const hier::ClusterHierarchy& h, int d) {
  const Level l = find_level(h, d);
  double sum = 0;
  for (Level j = 0; j <= l; ++j) {
    sum += (1.0 + static_cast<double>(h.omega(j))) *
           static_cast<double>(h.n(j));
  }
  return sum;
}

double find_time_bound(const hier::ClusterHierarchy& h, int d,
                       sim::Duration delta_plus_e) {
  const Level l = find_level(h, d);
  double hops = static_cast<double>(h.n(l));
  for (Level j = 0; j < l; ++j) {
    hops += static_cast<double>(h.p(j)) + static_cast<double>(h.n(j));
  }
  // The search phase additionally waits out one neighbour round trip per
  // level (the 2(δ+e)n(j) nbrtimeouts of §V's proof sketch).
  for (Level j = 0; j <= l; ++j) {
    hops += 2.0 * static_cast<double>(h.n(j));
  }
  return hops * static_cast<double>(delta_plus_e.count());
}

}  // namespace vs::spec
