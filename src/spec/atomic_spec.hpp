#pragma once
// Executable atomic-move specification (§IV-C terminology).
//
// init(c0) produces the consistent state whose tracking path is a vertical
// growth from c0 to level MAX; atomicMove maps a consistent state and a
// neighbouring relocation to the next consistent state; atomicMoveSeq
// folds a whole move sequence. Per Lemmas 4.6/4.7 these coincide with
// lookAhead applied right after the corresponding move inputs, which is
// exactly how this class computes them — one code path shared with the
// Figure 3 implementation.

#include <vector>

#include "common/ids.hpp"
#include "hier/hierarchy.hpp"
#include "spec/look_ahead.hpp"

namespace vs::spec {

class AtomicSpec {
 public:
  /// `lateral_links` must match the implementation variant being specified.
  explicit AtomicSpec(const hier::ClusterHierarchy& hierarchy,
                      bool lateral_links = true);

  /// Applies init(cluster(start, 0)): the first move input.
  void init(RegionId start);

  /// Applies atomicMove with the new location. Requires init() first and
  /// `to` neighbouring the current region.
  void apply_move(RegionId to);

  /// Folds init + moves (atomicMoveSeq). The sequence must start at the
  /// initial placement and step across neighbouring regions.
  static IdealState move_seq(const hier::ClusterHierarchy& hierarchy,
                             const std::vector<RegionId>& seq,
                             bool lateral_links = true);

  [[nodiscard]] const IdealState& state() const { return state_; }
  [[nodiscard]] RegionId evader_region() const { return where_; }

 private:
  const hier::ClusterHierarchy* hier_;
  bool lateral_links_;
  IdealState state_;
  RegionId where_{};
};

}  // namespace vs::spec
