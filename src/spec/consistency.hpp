#pragma once
// Consistent-state and tracking-path predicates (§IV-C terminology).
//
// A consistent state has exactly one tracking path (a rooted pointer chain
// from the level-MAX cluster to the evader's level-0 cluster satisfying the
// path-segment structure rules), ⊥ pointers everywhere off the path,
// secondary pointers agreeing *exactly* (iff) with the path's shape, and no
// move-related messages in transit. The tracking service's steady states —
// and atomicMove's outputs — are consistent states; the test suite asserts
// both.

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "spec/look_ahead.hpp"
#include "tracking/snapshot.hpp"

namespace vs::spec {

struct ConsistencyReport {
  std::vector<std::string> violations;
  /// The extracted tracking path, root first, when one exists.
  std::vector<ClusterId> path;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Checks the full consistent-state definition against a live snapshot
/// (pointer state + in-transit move messages) and the evader's region.
[[nodiscard]] ConsistencyReport check_consistent(
    const tracking::SystemSnapshot& snap, RegionId evader_region);

/// Same check on an IdealState (no message channel — condition 5 is
/// vacuous), e.g. on atomic-spec outputs.
[[nodiscard]] ConsistencyReport check_consistent_state(
    const hier::ClusterHierarchy& hierarchy, const IdealState& state,
    RegionId evader_region);

/// Extracts the pointer chain from the root, following c pointers; stops at
/// the first broken back-link. Root first.
[[nodiscard]] std::vector<ClusterId> extract_path(
    const hier::ClusterHierarchy& hierarchy, const IdealState& state);

}  // namespace vs::spec
