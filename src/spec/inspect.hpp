#pragma once
// Human-readable rendering of the tracking structure — the debugging view
// of a snapshot: the path from the root with levels and hosts, every
// cluster holding state, and the move messages in flight.

#include <string>

#include "tracking/snapshot.hpp"

namespace vs::spec {

/// Multi-line description of the structure for one target.
[[nodiscard]] std::string render_structure(
    const tracking::SystemSnapshot& snap);

}  // namespace vs::spec
