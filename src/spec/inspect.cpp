#include "spec/inspect.hpp"

#include <sstream>

#include "common/error.hpp"
#include "spec/consistency.hpp"
#include "stats/counters.hpp"

namespace vs::spec {

std::string render_structure(const tracking::SystemSnapshot& snap) {
  VS_REQUIRE(snap.hier != nullptr, "snapshot lacks hierarchy");
  const hier::ClusterHierarchy& h = *snap.hier;
  std::ostringstream os;

  const auto path = extract_path(h, snap.trackers);
  os << "tracking path (root first):\n";
  for (const ClusterId c : path) {
    const auto& s = snap.at(c);
    os << "  cluster " << c << "  level " << h.level(c) << "  head "
       << h.tiling().describe(h.head(c)) << "  c=" << s.c << " p=" << s.p;
    if (s.p.valid() && h.level(c) != h.max_level() &&
        s.p != h.parent(c)) {
      os << "  [lateral]";
    }
    os << '\n';
  }

  bool any = false;
  for (const auto& s : snap.trackers) {
    const bool on_path =
        std::find(path.begin(), path.end(), s.clust) != path.end();
    if (on_path) continue;
    if (s.c.valid() || s.p.valid()) {
      if (!any) {
        os << "off-path state:\n";
        any = true;
      }
      os << "  cluster " << s.clust << "  level " << h.level(s.clust)
         << "  c=" << s.c << " p=" << s.p << '\n';
    }
  }

  if (!snap.in_transit.empty()) {
    os << "in transit:\n";
    for (const auto& m : snap.in_transit) {
      os << "  " << stats::to_string(m.type) << " " << m.from << " → "
         << m.to << '\n';
    }
  }
  return os.str();
}

}  // namespace vs::spec
