#include "spec/consistency.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace vs::spec {

using tracking::TrackerSnapshot;

std::string ConsistencyReport::to_string() const {
  std::ostringstream os;
  for (const auto& v : violations) os << v << '\n';
  return os.str();
}

namespace {

std::size_t idx(ClusterId c) { return static_cast<std::size_t>(c.value()); }

bool contains(std::span<const ClusterId> xs, ClusterId x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

void report(ConsistencyReport& r, std::string msg) {
  if (r.violations.size() < 32) r.violations.push_back(std::move(msg));
}

std::string cname(ClusterId c) {
  return c.valid() ? std::to_string(c.value()) : std::string("⊥");
}

}  // namespace

std::vector<ClusterId> extract_path(const hier::ClusterHierarchy& h,
                                    const IdealState& state) {
  std::vector<ClusterId> path;
  ClusterId cur = h.root();
  path.push_back(cur);
  while (true) {
    const ClusterId next = state[idx(cur)].c;
    if (!next.valid() || next == cur) break;
    if (state[idx(next)].p != cur) break;  // broken back-link
    path.push_back(next);
    cur = next;
  }
  return path;
}

ConsistencyReport check_consistent_state(const hier::ClusterHierarchy& h,
                                         const IdealState& state,
                                         RegionId evader_region) {
  ConsistencyReport r;
  VS_REQUIRE(state.size() == h.num_clusters(), "state size mismatch");

  // Condition 1: one tracking path.
  r.path = extract_path(h, state);
  const ClusterId evader_c0 = h.cluster_of(evader_region, 0);
  {
    const ClusterId last = r.path.back();
    if (h.level(last) != 0 || state[idx(last)].c != last) {
      report(r, "path from root does not terminate in a level-0 self "
                "pointer (ends at cluster " +
                    cname(last) + ")");
    } else if (last != evader_c0) {
      report(r, "path terminates at cluster " + cname(last) +
                    " but the evader is at cluster " + cname(evader_c0));
    }
  }
  // Path-segment structure (conditions 2-4 of the definition).
  for (std::size_t i = 0; i < r.path.size(); ++i) {
    const ClusterId ck = r.path[i];
    const TrackerSnapshot& s = state[idx(ck)];
    const bool is_terminal = i + 1 == r.path.size();
    const bool level0 = h.level(ck) == 0;
    if (i == 0) {
      if (s.p.valid()) report(r, "root has non-⊥ p");
      if (s.c.valid() && !contains(h.children(ck), s.c)) {
        report(r, "root c must be a child or ⊥");
      }
      continue;
    }
    if (s.p == h.parent(ck)) {
      // Condition 4: vertical connection.
      const bool ok =
          !s.c.valid() || contains(h.children(ck), s.c) ||
          contains(h.nbrs(ck), s.c) || (is_terminal && level0 && s.c == ck);
      if (!ok) {
        report(r, "cluster " + cname(ck) +
                      " (p=parent) has ill-typed c=" + cname(s.c));
      }
    } else if (contains(h.nbrs(ck), s.p)) {
      // Condition 3: lateral connection — c must be vertical below.
      const bool ok = !s.c.valid() || contains(h.children(ck), s.c) ||
                      (is_terminal && level0 && s.c == ck);
      if (!ok) {
        report(r, "cluster " + cname(ck) +
                      " (lateral p) has ill-typed c=" + cname(s.c));
      }
    } else {
      report(r, "cluster " + cname(ck) + " has p=" + cname(s.p) +
                    " that is neither parent nor neighbour");
    }
  }

  // Condition 2: every off-path cluster has c = p = ⊥.
  std::vector<bool> on_path(state.size(), false);
  for (const ClusterId c : r.path) on_path[idx(c)] = true;
  for (const TrackerSnapshot& s : state) {
    if (on_path[idx(s.clust)]) continue;
    if (s.c.valid() || s.p.valid()) {
      report(r, "off-path cluster " + cname(s.clust) + " has c=" +
                    cname(s.c) + ", p=" + cname(s.p));
    }
  }

  // Conditions 3-4 (secondary pointers, both directions of the iff).
  for (const TrackerSnapshot& s : state) {
    const ClusterId ck = s.clust;
    ClusterId want_up, want_down;
    int up_count = 0, down_count = 0;
    for (const ClusterId cn : h.nbrs(ck)) {
      const TrackerSnapshot& ns = state[idx(cn)];
      if (h.level(cn) != h.max_level() && ns.p == h.parent(cn) &&
          ns.p.valid()) {
        want_up = cn;
        ++up_count;
      }
      if (ns.p.valid() && contains(h.nbrs(cn), ns.p)) {
        want_down = cn;
        ++down_count;
      }
    }
    if (up_count > 1) {
      report(r, "cluster " + cname(ck) +
                    " has several parent-connected neighbours — nbrptup "
                    "cannot satisfy the iff");
    } else if ((up_count == 1 && s.nbrptup != want_up) ||
               (up_count == 0 && s.nbrptup.valid())) {
      report(r, "cluster " + cname(ck) + " nbrptup=" + cname(s.nbrptup) +
                    " but definition wants " +
                    (up_count ? cname(want_up) : "⊥"));
    }
    if (down_count > 1) {
      report(r, "cluster " + cname(ck) +
                    " has several laterally-connected neighbours — "
                    "nbrptdown cannot satisfy the iff");
    } else if ((down_count == 1 && s.nbrptdown != want_down) ||
               (down_count == 0 && s.nbrptdown.valid())) {
      report(r, "cluster " + cname(ck) + " nbrptdown=" + cname(s.nbrptdown) +
                    " but definition wants " +
                    (down_count ? cname(want_down) : "⊥"));
    }
  }

  return r;
}

ConsistencyReport check_consistent(const tracking::SystemSnapshot& snap,
                                   RegionId evader_region) {
  VS_REQUIRE(snap.hier != nullptr, "snapshot lacks hierarchy");
  ConsistencyReport r =
      check_consistent_state(*snap.hier, snap.trackers, evader_region);
  // Condition 5: no move-related messages in transit or queued.
  if (!snap.in_transit.empty()) {
    report(r, "condition 5 violated: " +
                  std::to_string(snap.in_transit.size()) +
                  " move message(s) in transit");
  }
  return r;
}

}  // namespace vs::spec
