#pragma once
// lookAhead — Figure 3, verbatim.
//
// Maps a system state (pointer values plus in-transit move messages) to the
// "future state" in which all outstanding grow-related updates have been
// applied, followed by the shrink-related ones. Theorem 4.8 states that at
// any point of an execution with atomic moves, lookAhead of the live state
// equals atomicMoveSeq of the move history; the test suite checks exactly
// that, using this function on TrackingNetwork snapshots.

#include <vector>

#include "tracking/snapshot.hpp"

namespace vs::spec {

/// Pointer state of the whole system, indexed by cluster id (the result of
/// lookAhead and the state representation of the atomic spec).
using IdealState = std::vector<tracking::TrackerSnapshot>;

/// Figure 3. `lateral_links` selects the grow-propagation rule variant
/// (false mirrors the NoLateral baseline, which always climbs to the
/// hierarchy parent).
///
/// Requires the snapshot to satisfy Lemma 4.1 (at most one grow front and
/// one shrink front below MAX after message application); throws vs::Error
/// otherwise — concurrent-move states are outside lookAhead's domain.
[[nodiscard]] IdealState look_ahead(const tracking::SystemSnapshot& snap,
                                    bool lateral_links = true);

/// True iff the two states agree on every pointer of every cluster.
[[nodiscard]] bool equal_states(const IdealState& a, const IdealState& b);

/// Human-readable diff of the first `max_lines` disagreeing clusters.
[[nodiscard]] std::string diff_states(const IdealState& a, const IdealState& b,
                                      std::size_t max_lines = 12);

}  // namespace vs::spec
