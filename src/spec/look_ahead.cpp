#include "spec/look_ahead.hpp"

#include <sstream>

#include "common/error.hpp"

namespace vs::spec {

using tracking::SystemSnapshot;
using tracking::TrackerSnapshot;
using vsa::MsgType;

namespace {

std::size_t idx(ClusterId c) { return static_cast<std::size_t>(c.value()); }

/// The unique process matching the predicate below level MAX, or invalid.
ClusterId unique_front(const IdealState& state,
                       const hier::ClusterHierarchy& h, bool grow_front) {
  ClusterId found;
  for (const TrackerSnapshot& t : state) {
    if (h.level(t.clust) == h.max_level()) continue;
    const bool match = grow_front ? (t.c.valid() && !t.p.valid())
                                  : (!t.c.valid() && t.p.valid());
    if (match) {
      VS_REQUIRE(!found.valid(),
                 "lookAhead: multiple " << (grow_front ? "grow" : "shrink")
                                        << " fronts (clusters " << found
                                        << " and " << t.clust
                                        << ") — Lemma 4.1 violated");
      found = t.clust;
    }
  }
  return found;
}

}  // namespace

IdealState look_ahead(const SystemSnapshot& snap, bool lateral_links) {
  VS_REQUIRE(snap.hier != nullptr, "snapshot lacks hierarchy");
  const hier::ClusterHierarchy& h = *snap.hier;
  IdealState state = snap.trackers;

  // Deliver pending growNbr, growPar, then grow messages (Figure 3 order).
  for (const auto& m : snap.in_transit) {
    if (m.type == MsgType::kGrowNbr) state[idx(m.to)].nbrptdown = m.from;
  }
  for (const auto& m : snap.in_transit) {
    if (m.type == MsgType::kGrowPar) state[idx(m.to)].nbrptup = m.from;
  }
  for (const auto& m : snap.in_transit) {
    if (m.type == MsgType::kGrow) state[idx(m.to)].c = m.from;
  }

  // Propagate the grow front to the old path / level MAX.
  if (ClusterId clust = unique_front(state, h, /*grow_front=*/true);
      clust.valid()) {
    while (!state[idx(clust)].p.valid() && h.level(clust) != h.max_level()) {
      TrackerSnapshot& s = state[idx(clust)];
      if (lateral_links && s.nbrptup.valid()) {
        s.p = s.nbrptup;
        for (const ClusterId b : h.nbrs(clust)) {
          state[idx(b)].nbrptdown = clust;
        }
      } else {
        s.p = h.parent(clust);
        for (const ClusterId b : h.nbrs(clust)) {
          state[idx(b)].nbrptup = clust;
        }
      }
      state[idx(s.p)].c = clust;
      clust = s.p;
    }
  }

  // Deliver pending shrinkUpd, then shrink messages.
  for (const auto& m : snap.in_transit) {
    if (m.type != MsgType::kShrinkUpd) continue;
    TrackerSnapshot& t = state[idx(m.to)];
    if (t.nbrptup == m.from) t.nbrptup = ClusterId::invalid();
    if (t.nbrptdown == m.from) t.nbrptdown = ClusterId::invalid();
  }
  for (const auto& m : snap.in_transit) {
    if (m.type != MsgType::kShrink) continue;
    TrackerSnapshot& t = state[idx(m.to)];
    if (t.c == m.from) t.c = ClusterId::invalid();
  }

  // Propagate the shrink front up the deserted branch.
  if (ClusterId clust = unique_front(state, h, /*grow_front=*/false);
      clust.valid()) {
    while (state[idx(clust)].p.valid() && h.level(clust) != h.max_level()) {
      for (const ClusterId b : h.nbrs(clust)) {
        TrackerSnapshot& t = state[idx(b)];
        if (t.nbrptup == clust) t.nbrptup = ClusterId::invalid();
        if (t.nbrptdown == clust) t.nbrptdown = ClusterId::invalid();
      }
      TrackerSnapshot& s = state[idx(clust)];
      if (state[idx(s.p)].c == clust) {
        clust = s.p;
        TrackerSnapshot& up = state[idx(clust)];
        state[idx(up.c)].p = ClusterId::invalid();
        up.c = ClusterId::invalid();
      } else {
        s.p = ClusterId::invalid();
      }
    }
  }

  return state;
}

bool equal_states(const IdealState& a, const IdealState& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].c != b[i].c || a[i].p != b[i].p ||
        a[i].nbrptup != b[i].nbrptup || a[i].nbrptdown != b[i].nbrptdown) {
      return false;
    }
  }
  return true;
}

std::string diff_states(const IdealState& a, const IdealState& b,
                        std::size_t max_lines) {
  std::ostringstream os;
  if (a.size() != b.size()) {
    os << "state sizes differ: " << a.size() << " vs " << b.size() << '\n';
    return os.str();
  }
  std::size_t lines = 0;
  for (std::size_t i = 0; i < a.size() && lines < max_lines; ++i) {
    if (a[i].c == b[i].c && a[i].p == b[i].p &&
        a[i].nbrptup == b[i].nbrptup && a[i].nbrptdown == b[i].nbrptdown) {
      continue;
    }
    os << "cluster " << i << ": (c=" << a[i].c << ",p=" << a[i].p
       << ",up=" << a[i].nbrptup << ",down=" << a[i].nbrptdown << ") vs (c="
       << b[i].c << ",p=" << b[i].p << ",up=" << b[i].nbrptup
       << ",down=" << b[i].nbrptdown << ")\n";
    ++lines;
  }
  return os.str();
}

}  // namespace vs::spec
