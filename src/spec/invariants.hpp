#pragma once
// Runtime monitors for Lemmas 4.1–4.3.
//
// Attached to a TrackingNetwork, the monitor observes every C-gcast send
// and every tracker state change, and checks:
//   Lemma 4.1 — at most one grow front (in-transit grow messages plus
//     below-MAX processes with c≠⊥ ∧ p=⊥) and at most one shrink front;
//   Lemma 4.2 — per move, at most one lateral grow per level;
//   Lemma 4.3 — every in-transit lateral grow targets a process whose
//     p equals its hierarchy parent.
// Violations are recorded (and optionally thrown); tests run whole
// executions under the monitor and assert it stays clean.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "tracking/network.hpp"

namespace vs::spec {

class InvariantMonitor {
 public:
  /// Live-violation observer: the message plus the offending cluster and
  /// its level when the check can name one (invalid/-1 otherwise). The
  /// obs watchdog uses this to capture incidents at detection time.
  using ViolationHook =
      std::function<void(const std::string&, ClusterId, Level)>;

  /// Subscribes to the network's send observer and (with
  /// `check_every_change`) its state-change hook; `check_every_change`
  /// re-checks Lemmas 4.1/4.3 on every pointer-state change (O(#clusters)
  /// each — test-sized worlds only). The destructor detaches both, so a
  /// monitor may die before the network it watched — but not after it.
  InvariantMonitor(tracking::TrackingNetwork& net, TargetId target,
                   bool check_every_change = true);
  ~InvariantMonitor();

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Resets the per-move lateral-grow counters; call when a move is issued.
  void on_move();

  /// Runs the Lemma 4.1 and 4.3 checks against the current snapshot.
  void check_now();

  /// Installs the live-violation observer (also fires for violations
  /// recorded after installation only — install before driving the world).
  void set_violation_hook(ViolationHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] std::string to_string() const;

  /// Total lateral grow sends observed (Lemma 4.2 statistics; also the
  /// dithering benches' "lateral usage" metric).
  [[nodiscard]] std::int64_t lateral_grows() const { return lateral_total_; }

  /// Lemmas 4.1–4.3 are proven for the atomic execution model (each move
  /// issued only after the previous one's updates drained). When an
  /// execution leaves that domain — overlapping moves, as in the
  /// concurrency benches — mid-flight multi-front states are legal, so the
  /// send-observer checks must be muted. Statistics (lateral_grows) keep
  /// accumulating; explicit check_now() calls still run (callers gate
  /// those themselves — at quiescence the lemma scan is sound for any
  /// legal execution, since a drained structure has no open fronts).
  void set_live_checks(bool on) { live_checks_ = on; }

 private:
  void record(std::string msg, ClusterId cluster = ClusterId::invalid(),
              Level level = -1);

  tracking::TrackingNetwork* net_;
  TargetId target_;
  vsa::CGcast::ObserverId send_observer_id_{0};
  bool installed_state_hook_ = false;
  std::map<Level, std::int64_t> lateral_this_move_;
  std::int64_t lateral_total_{0};
  bool live_checks_ = true;
  std::vector<std::string> violations_;
  ViolationHook hook_;
};

}  // namespace vs::spec
