#pragma once
// The paper's complexity bounds as evaluatable formulas.
//
// Theorem 4.9 (move): updates for moves totalling distance d cost
// amortised work
//     O(d · [ω(0) + Σ_{j=1..MAX} n(j)(1 + ω(j)) / q(j−1)])
// and amortised time
//     O(d · [s(0) + Σ_{j=1..MAX} (s(j) + (δ+e)·n(j)) / q(j−1)]).
//
// Theorem 5.2 (find): a find from distance d costs work
//     O(Σ_{j=0..l} (1 + ω(j))·n(j))
// and time O((δ+e)·(n(l) + Σ_{j<l} (p(j) + n(j)))), where l is the lowest
// level with d ≤ q(l).
//
// Benches and tests evaluate these sums for the actual hierarchy in use
// and compare measured cost against them — the reproduction's "theory
// lines".

#include <cstdint>

#include "hier/hierarchy.hpp"
#include "sim/time.hpp"
#include "tracking/config.hpp"

namespace vs::spec {

/// Theorem 4.9's amortised work-per-unit-distance sum.
[[nodiscard]] double move_work_bound_per_step(const hier::ClusterHierarchy& h);

/// Theorem 4.9's amortised time-per-unit-distance sum (in microseconds),
/// for the given timer policy and latency constants.
[[nodiscard]] double move_time_bound_per_step(
    const hier::ClusterHierarchy& h, const tracking::TimerPolicy& timers,
    sim::Duration delta_plus_e);

/// The lowest level l with d ≤ q(l) (the search-phase ceiling of
/// Theorem 5.1/5.2).
[[nodiscard]] Level find_level(const hier::ClusterHierarchy& h, int d);

/// Theorem 5.2's find-work sum for a find from distance d.
[[nodiscard]] double find_work_bound(const hier::ClusterHierarchy& h, int d);

/// Theorem 5.2's find-time bound (microseconds) for distance d.
[[nodiscard]] double find_time_bound(const hier::ClusterHierarchy& h, int d,
                                     sim::Duration delta_plus_e);

}  // namespace vs::spec
