#include "spec/atomic_spec.hpp"

#include "common/error.hpp"

namespace vs::spec {

using tracking::SystemSnapshot;
using tracking::TrackerSnapshot;
using tracking::TransitMsg;
using vsa::MsgType;

namespace {

IdealState empty_state(const hier::ClusterHierarchy& h) {
  IdealState state(h.num_clusters());
  for (std::size_t c = 0; c < h.num_clusters(); ++c) {
    state[c].clust = ClusterId{static_cast<ClusterId::rep_type>(c)};
  }
  return state;
}

}  // namespace

AtomicSpec::AtomicSpec(const hier::ClusterHierarchy& hierarchy,
                       bool lateral_links)
    : hier_(&hierarchy),
      lateral_links_(lateral_links),
      state_(empty_state(hierarchy)) {}

void AtomicSpec::init(RegionId start) {
  VS_REQUIRE(!where_.valid(), "init() must be the first move");
  // The move input puts a grow (from the level-0 cluster to itself) in
  // transit; lookAhead then yields init(c0) (Lemma 4.6).
  SystemSnapshot snap;
  snap.hier = hier_;
  snap.trackers = state_;
  const ClusterId c0 = hier_->cluster_of(start, 0);
  snap.in_transit.push_back(TransitMsg{MsgType::kGrow, c0, c0});
  state_ = look_ahead(snap, lateral_links_);
  where_ = start;
}

void AtomicSpec::apply_move(RegionId to) {
  VS_REQUIRE(where_.valid(), "apply_move before init");
  VS_REQUIRE(hier_->tiling().are_neighbors(where_, to),
             "atomicMove requires a neighbouring region");
  // Move inputs put a grow at the new and a shrink at the old level-0
  // cluster in transit; lookAhead yields atomicMove (Lemma 4.7).
  SystemSnapshot snap;
  snap.hier = hier_;
  snap.trackers = state_;
  const ClusterId new_c0 = hier_->cluster_of(to, 0);
  const ClusterId old_c0 = hier_->cluster_of(where_, 0);
  snap.in_transit.push_back(TransitMsg{MsgType::kGrow, new_c0, new_c0});
  snap.in_transit.push_back(TransitMsg{MsgType::kShrink, old_c0, old_c0});
  state_ = look_ahead(snap, lateral_links_);
  where_ = to;
}

IdealState AtomicSpec::move_seq(const hier::ClusterHierarchy& hierarchy,
                                const std::vector<RegionId>& seq,
                                bool lateral_links) {
  VS_REQUIRE(!seq.empty(), "move sequence must contain the initial region");
  AtomicSpec spec(hierarchy, lateral_links);
  spec.init(seq.front());
  for (std::size_t i = 1; i < seq.size(); ++i) spec.apply_move(seq[i]);
  return spec.state();
}

}  // namespace vs::spec
