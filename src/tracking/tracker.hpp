#pragma once
// Trackeru,lvl — the VINESTALK cluster process (paper Figure 2).
//
// One Tracker runs for every cluster, hosted at the VSA of the cluster's
// head region. Per tracked target it keeps the four pointers of Figure 2
// (child c, parent p, secondary pointers nbrptup / nbrptdown) and the
// single shared grow/shrink timer; per outstanding find it keeps the
// finding flag and the nbrtimeout timer.
//
// Faithfulness notes (see DESIGN.md §3 for the full list):
//  * sends are immediate where Figure 2 queues into sendq — the TIOA model
//    fires enabled outputs without time passing, so this is equivalent;
//  * find bookkeeping is keyed by FindId and tracking state by TargetId so
//    concurrent finds/targets do not clobber each other (a documented
//    generalisation; with one find and one target this is exactly
//    Figure 2);
//  * if a find's neighbour-query timeout fires at the root while the root
//    is transiently off the path (c = ⊥ mid-move), the query is reissued
//    instead of forwarding to a nonexistent parent — a liveness completion
//    for executions outside the paper's atomic-find assumption.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "obs/op.hpp"
#include "obs/profile/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "tracking/config.hpp"
#include "tracking/snapshot.hpp"
#include "vsa/cgcast.hpp"
#include "vsa/messages.hpp"

namespace vs::tracking {

class Tracker {
 public:
  /// Notification that some target's pointer state changed at this tracker
  /// (used by invariant monitors).
  using StateChangeHook = std::function<void(ClusterId, TargetId)>;

  Tracker(sim::Scheduler& sched, const hier::ClusterHierarchy& hierarchy,
          vsa::CGcast& cgcast, const TrackerConfig& config, ClusterId clust);

  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;

  /// cTOBrcv: dispatches on message type.
  void on_message(const vsa::Message& m);

  /// VSA failure: wipe all state back to the initial state (pointers ⊥,
  /// timers ∞, no finds).
  void reset();

  /// Fault injection for self-stabilization experiments: overwrite the
  /// pointer state for `target` with arbitrary values and disarm the
  /// timer (an "adversarial start" in the self-stabilization sense).
  /// Never used by the protocol itself.
  void corrupt_state(TargetId target, const TrackerSnapshot& forced);

  [[nodiscard]] ClusterId cluster() const { return clust_; }
  [[nodiscard]] Level level() const { return lvl_; }

  /// Pointer state for a target (⊥-initialised view if never touched).
  [[nodiscard]] TrackerSnapshot state(TargetId target) const;
  /// True if the shared grow/shrink timer is armed for `target`.
  [[nodiscard]] bool timer_armed(TargetId target) const;
  /// Heartbeat repair hook (ext::Stabilizer): re-evaluates the timer-expiry
  /// outputs when the timer was lost to a VSA reset. No-op while the timer
  /// is armed — firing a pending shrink early would break inequality (1).
  /// `op` charges the repair traffic to the stabilizer's repair operation.
  void nudge_timer(TargetId target, obs::OpId op = obs::kBackgroundOp);
  /// Targets with any non-⊥ pointer or an armed timer.
  [[nodiscard]] std::vector<TargetId> active_targets() const;
  /// True if the tracker currently holds `find` in its search phase.
  [[nodiscard]] bool finding(FindId find) const;

  void set_state_change_hook(StateChangeHook hook) {
    state_hook_ = std::move(hook);
  }

  /// Attach the world's trace recorder (nullptr detaches); not owned.
  /// Records the local, non-message actions — timer expiries and find
  /// timeouts — that message records alone cannot reconstruct.
  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Attach the world's wall-clock profiler (nullptr detaches); not owned.
  /// Handlers run under per-family scopes (grow/shrink/find/timer) nested
  /// inside C-gcast's kDeliver, so the flamegraph splits delivery time by
  /// the Figure 2 handler that consumed it.
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

 private:
  struct PerTarget {
    ClusterId c{};
    ClusterId p{};
    ClusterId nbrptup{};
    ClusterId nbrptdown{};
    std::unique_ptr<sim::Timer> timer;  // shared grow/shrink timer
    /// Operation that armed the timer: the cascade a timer expiry emits is
    /// still part of the move step whose grow/shrink armed it.
    obs::OpId op = obs::kBackgroundOp;
  };
  struct PerFind {
    bool finding = false;
    TargetId target{};
    bool queried = false;  // findquery performed for this find receipt
    int root_retries = 0;  // bounded re-queries at a transiently-bare root
    std::unique_ptr<sim::Timer> nbrtimeout;
  };

  /// Re-query attempts at a root with no pointers before the find goes
  /// quiet (it resumes via try_advance_find when state changes).
  static constexpr int kMaxRootRetries = 8;

  PerTarget& target_state(TargetId t);
  PerFind& find_state(FindId f);

  /// on_message body: dispatch under the incoming message's op.
  void dispatch(const vsa::Message& m);

  // Figure 2 handlers.
  void on_grow(const vsa::Message& m);
  void on_grow_par(const vsa::Message& m);
  void on_grow_nbr(const vsa::Message& m);
  void on_shrink(const vsa::Message& m);
  void on_shrink_upd(const vsa::Message& m);
  void on_find(const vsa::Message& m);
  void on_find_query(const vsa::Message& m);
  void on_find_ack(const vsa::Message& m);
  void on_found(const vsa::Message& m);

  /// The timer-expiry outputs: grow-send when c≠⊥ ∧ p=⊥, shrink-send when
  /// c=⊥ ∧ p≠⊥.
  void on_timer(TargetId t);

  /// Evaluates the enabled find outputs (trace / secondary-pointer follow /
  /// neighbour query / found) for one outstanding find.
  void try_advance_find(FindId f);
  /// Re-evaluates every outstanding find for a target after its pointer
  /// state changed.
  void advance_finds_of(TargetId t);
  void on_nbrtimeout(FindId f);
  void issue_find_query(FindId f, PerFind& pf, PerTarget& ts);
  void emit_found(FindId f, TargetId t);

  void send(ClusterId to, vsa::MsgType type, TargetId target,
            FindId find = FindId{}, ClusterId ack_pointer = ClusterId{});
  void notify_state_change(TargetId t);
  void record(obs::TraceKind kind, TargetId target, FindId find,
              std::int32_t arg);

  sim::Scheduler* sched_;
  const hier::ClusterHierarchy* hier_;
  vsa::CGcast* cgcast_;
  const TrackerConfig* config_;
  ClusterId clust_;
  Level lvl_;

  std::map<TargetId, PerTarget> targets_;
  std::map<FindId, PerFind> finds_;
  StateChangeHook state_hook_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Profiler* prof_ = nullptr;
  /// Operation the currently-executing handler is charged to; every send()
  /// stamps it onto the outgoing message. Saved/restored per handler so
  /// nesting (advance_finds_of inside a grow) keeps each action's op.
  obs::OpId current_op_ = obs::kBackgroundOp;
};

}  // namespace vs::tracking
