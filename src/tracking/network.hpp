#pragma once
// TrackingNetwork — the assembled VINESTALK system.
//
// Owns the scheduler, the C-gcast service, the VSA directory, the client
// population, the evader model, and one Tracker per cluster, wired exactly
// as §III-B prescribes: clients broadcast detections to their level-0
// VSAs; Trackers maintain the tracking path; finds are injected at client
// regions and complete with a client found output at the evader's region.
//
// This is the facade downstream code uses: examples, benches, the spec
// checkers and the baselines all drive a TrackingNetwork.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "hier/hierarchy.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/op.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard_executor.hpp"
#include "stats/counters.hpp"
#include "tracking/config.hpp"
#include "tracking/snapshot.hpp"
#include "tracking/tracker.hpp"
#include "vsa/cgcast.hpp"
#include "vsa/client.hpp"
#include "vsa/directory.hpp"
#include "vsa/evader.hpp"
#include "vsa/shard_map.hpp"

namespace vs::tracking {

struct NetworkConfig {
  vsa::CGcastConfig cgcast;
  /// Lateral links on/off (off = STALK-style baseline).
  bool lateral_links = true;
  /// Timer policy; defaults to TimerPolicy::paper_default when unset.
  std::optional<TimerPolicy> timers;
  int clients_per_region = 1;
  /// Model VSA failures (client-presence-driven liveness + fault
  /// injection). Off: every VSA is assumed alive, the paper's correctness
  /// assumption.
  bool model_vsa_failures = false;
  sim::Duration t_restart = sim::Duration::millis(50);
  /// §VII "multiple heads per cluster": each cluster's process is jointly
  /// hosted by up to this many member regions (capped by cluster size).
  /// Messages pay the sum of hop distances to all replicas (the quorum
  /// overhead) and the process state survives while any replica's VSA is
  /// alive. 1 = the paper's base algorithm.
  int head_replicas = 1;
};

/// Outcome record of one find operation.
struct FindResult {
  FindId id{};
  TargetId target{};
  RegionId origin{};
  sim::TimePoint issued = sim::TimePoint::never();
  bool done = false;
  RegionId found_region{};
  sim::TimePoint completed = sim::TimePoint::never();
  /// find/findQuery/findAck/found messages and hop-work attributable to
  /// this find.
  std::int64_t messages = 0;
  std::int64_t work = 0;
  /// Highest hierarchy level at which the search phase queried neighbours
  /// (-1 if the path was met before any query round). Theorem 5.2: at most
  /// the minimum l with d ≤ q(l) in the atomic case.
  Level max_search_level = -1;
  /// Cost-ledger identity: the find's search-phase OpId (the trace phase
  /// shares the index under OpClass::kFindTrace).
  obs::OpId op = obs::kBackgroundOp;
  /// Origin→evader region distance at issue time — the `d` the Theorem 5.2
  /// bounds are evaluated at (callers compute the measured/bound ratio via
  /// spec::find_work_bound(h, distance); tracking cannot link spec).
  std::int64_t distance = 0;

  [[nodiscard]] sim::Duration latency() const { return completed - issued; }
};

class TrackingNetwork {
 public:
  TrackingNetwork(const hier::ClusterHierarchy& hierarchy,
                  NetworkConfig config);
  ~TrackingNetwork();

  TrackingNetwork(const TrackingNetwork&) = delete;
  TrackingNetwork& operator=(const TrackingNetwork&) = delete;

  // Component access.
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const hier::ClusterHierarchy& hierarchy() const {
    return *hier_;
  }
  [[nodiscard]] stats::WorkCounters& counters() { return counters_; }
  [[nodiscard]] vsa::CGcast& cgcast() { return *cgcast_; }
  [[nodiscard]] vsa::ClientPopulation& clients() { return *clients_; }
  [[nodiscard]] vsa::EvaderModel& evaders() { return evaders_; }
  /// Null unless model_vsa_failures.
  [[nodiscard]] vsa::VsaDirectory* directory() { return directory_.get(); }
  [[nodiscard]] Tracker& tracker(ClusterId c);
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  // Observability. The recorder is wired through C-gcast and every Tracker
  // at construction; recording stays off until set_tracing(true).
  [[nodiscard]] obs::TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const obs::TraceRecorder& trace() const { return trace_; }
  void set_tracing(bool on) { trace_.set_enabled(on); }

  /// Attach (or with nullptr detach) a per-operation cost ledger. While
  /// attached and enabled, every accepted send is charged to its message's
  /// OpId and move/find boundaries record their metadata. The ledger must
  /// outlive the attachment; the network never owns it.
  void set_op_ledger(obs::OpLedger* ledger);
  [[nodiscard]] obs::OpLedger* op_ledger() { return ledger_; }

  /// Attach (or with nullptr detach) a wall-clock CPU profiler. Wires the
  /// scheduler's probe, C-gcast's deliver scope, every Tracker's handler
  /// scopes, and the shard executor's lane binding (now or when set_shards
  /// later installs one). The profiler must outlive the attachment and is
  /// never owned. Profile output is nondeterministic sidecar data only —
  /// attaching and enabling one never changes any deterministic artifact.
  void set_profiler(obs::Profiler* prof);
  [[nodiscard]] obs::Profiler* profiler() { return prof_; }

  /// Move steps taken so far (placements included); the move-op index.
  [[nodiscard]] std::uint32_t move_count() const { return move_count_; }

  /// Deterministic run metrics (events fired, message/work totals, drops,
  /// find outcomes and latency histogram), rebuilt from live state on each
  /// call. TrialPool merges these across worlds in trial-index order.
  [[nodiscard]] obs::MetricsRegistry export_metrics() const;

  // Evader control.
  TargetId add_evader(RegionId start);
  void move_evader(TargetId target, RegionId to);
  /// Move, then run the scheduler dry (Theorem 4.5: updates terminate).
  void move_and_quiesce(TargetId target, RegionId to);

  // Finds.
  FindId start_find(RegionId from, TargetId target);
  [[nodiscard]] const FindResult& find_result(FindId f) const;
  /// Every find issued so far, by id — the census the telemetry sampler
  /// reads (issued/completed counts, latency distribution).
  [[nodiscard]] const std::map<FindId, FindResult>& finds() const {
    return finds_;
  }

  // Execution.
  std::uint64_t run_to_quiescence();
  std::uint64_t run_until(sim::TimePoint deadline);
  std::uint64_t run_for(sim::Duration d);
  [[nodiscard]] sim::TimePoint now() const { return sched_.now(); }

  /// Shard the world into `n` lanes of region-sharded conservative
  /// parallel execution (sim/shard_executor.hpp; docs/perf/sharding.md).
  /// The partition is a pure function of the hierarchy geometry
  /// (vsa::ShardMap) and the lookahead is C-gcast's (δ + e) latency floor,
  /// so traces, counters, ledgers, and metrics stay byte-identical to the
  /// unsharded world at every shard count. Call once, before any events
  /// are scheduled; n is clamped to the region count. n == 1 still
  /// installs the executor (useful as a same-machinery baseline).
  void set_shards(int n);
  /// Lanes installed by set_shards (1 when never sharded).
  [[nodiscard]] int shards() const {
    return exec_ != nullptr ? exec_->lanes() : 1;
  }
  /// True when the current configuration may run parallel windows.
  /// Monitors (post-step hooks, state-change hooks, heartbeat handlers),
  /// VSA-failure modelling, and channel faults/loss all require the
  /// serial path's single global interleaving; a sharded world checks
  /// this at each run() and falls back transparently.
  [[nodiscard]] bool parallel_eligible() const;

  /// Fault injection (requires model_vsa_failures).
  void fail_vsa(RegionId u);

  /// Pointer state + in-transit move messages for one target (input to the
  /// spec module).
  [[nodiscard]] SystemSnapshot snapshot(TargetId target) const;

  /// Clusters hosted at a region's VSA (clusters with a replica at `u`).
  [[nodiscard]] std::span<const ClusterId> hosted_at(RegionId u) const;

  /// The regions jointly hosting a cluster's process (== {head} unless
  /// head_replicas > 1).
  [[nodiscard]] std::span<const RegionId> replicas_of(ClusterId c) const;

  /// Hook invoked on every tracker pointer-state change (monitors).
  /// Installing a non-empty hook makes the world ineligible for parallel
  /// windows (the hook observes cross-lane state).
  void set_state_change_hook(Tracker::StateChangeHook hook);

  /// Observer of evader placement/relocation as seen at the network API:
  /// (target, from, to, quiescent_at_issue); `from` is invalid on initial
  /// placement. Called only after the move/placement succeeded (a throwing
  /// move — bad region, unknown target — is never observed, so monitors
  /// can't desync from the live structure). `quiescent_at_issue` is
  /// whether the scheduler was drained when the move was issued, captured
  /// *before* the move schedules its own client messages — the atomic-move
  /// predicate of Theorem 4.8. The obs watchdog uses this to reset
  /// per-move invariant counters and maintain its atomicMoveSeq shadow.
  /// Distinct from EvaderModel::set_move_hook, which the client
  /// population owns.
  using MoveObserver =
      std::function<void(TargetId, RegionId, RegionId, bool)>;
  void set_move_observer(MoveObserver observer) {
    move_observer_ = std::move(observer);
  }

  /// Handlers for §VII heartbeat overlay traffic (kHeartbeat /
  /// kHeartbeatAck). These kinds are not part of the Tracker signature
  /// (Figure 2), so dispatch routes them here instead of
  /// Tracker::on_message; with no handler installed a probe is absorbed
  /// silently, like any message to a process that ignores it. Multiple
  /// handlers may coexist (one ext::Stabilizer per target); each sees
  /// every heartbeat and filters by target itself. The returned token
  /// must be passed to remove_heartbeat_handler before the owner dies.
  using HeartbeatHandler =
      std::function<void(ClusterId dest, const vsa::Message&)>;
  int add_heartbeat_handler(HeartbeatHandler handler) {
    const int token = next_heartbeat_token_++;
    heartbeat_handlers_.emplace_back(token, std::move(handler));
    return token;
  }
  void remove_heartbeat_handler(int token) {
    std::erase_if(heartbeat_handlers_,
                  [token](const auto& h) { return h.first == token; });
  }

 private:
  void dispatch(ClusterId dest, const vsa::Message& m);
  void on_found_output(FindId f, TargetId t, RegionId region, ClientId by);
  void record(obs::TraceKind kind, FindId f, TargetId t, RegionId region,
              obs::OpId op, std::int32_t arg = 0);
  void record_move(TargetId target, RegionId from, RegionId to,
                   std::int64_t distance, obs::OpId op);

  const hier::ClusterHierarchy* hier_;
  NetworkConfig config_;
  sim::Scheduler sched_;
  stats::WorkCounters counters_;
  TrackerConfig tracker_config_;
  std::unique_ptr<vsa::CGcast> cgcast_;
  std::unique_ptr<vsa::VsaDirectory> directory_;
  std::unique_ptr<vsa::ClientPopulation> clients_;
  vsa::EvaderModel evaders_;
  std::vector<std::unique_ptr<Tracker>> trackers_;  // by cluster id
  std::vector<std::vector<ClusterId>> hosted_;      // by region id
  std::vector<std::vector<RegionId>> replicas_;     // by cluster id
  std::map<FindId, FindResult> finds_;
  FindId::rep_type next_find_{1};
  /// Per-find deltas accumulated by a lane during a parallel window (the
  /// send observer writes here instead of finds_ while the lane hook has
  /// bound this thread); folded into finds_ at the barrier in lane order.
  /// Sums and a max — commutative, so the fold is order-insensitive and
  /// the totals match the serial run exactly.
  struct FindAcc {
    std::int64_t messages = 0;
    std::int64_t work = 0;
    Level max_search_level = -1;
  };
  std::vector<std::map<FindId, FindAcc>> lane_find_acc_;  // by lane
  inline static thread_local std::map<FindId, FindAcc>* tls_find_acc_ =
      nullptr;
  std::unique_ptr<vsa::ShardMap> shard_map_;
  std::unique_ptr<sim::ShardExecutor> exec_;
  bool state_hook_installed_ = false;
  obs::TraceRecorder trace_;
  obs::OpLedger* ledger_ = nullptr;
  obs::Profiler* prof_ = nullptr;
  vsa::CGcast::ObserverId ledger_observer_ = 0;
  std::uint32_t move_count_ = 0;
  MoveObserver move_observer_;
  std::vector<std::pair<int, HeartbeatHandler>> heartbeat_handlers_;
  int next_heartbeat_token_{1};
};

}  // namespace vs::tracking
