#pragma once
// Snapshots of the distributed tracking state.
//
// The spec module evaluates Figure 3's lookAhead and the consistent-state
// predicate over these: per-cluster pointer values plus the move-related
// messages currently in transit, all for one target.

#include <vector>

#include "common/ids.hpp"
#include "hier/hierarchy.hpp"
#include "vsa/messages.hpp"

namespace vs::tracking {

/// Pointer state of one Tracker process (Figure 2's state variables;
/// invalid ids encode ⊥).
struct TrackerSnapshot {
  ClusterId clust{};
  ClusterId c{};
  ClusterId p{};
  ClusterId nbrptup{};
  ClusterId nbrptdown{};
};

/// A move-related message in flight. For client-originated grows/shrinks
/// `from` equals the destination level-0 cluster (Figure 2's cid).
struct TransitMsg {
  vsa::MsgType type{};
  ClusterId from{};
  ClusterId to{};
};

struct SystemSnapshot {
  const hier::ClusterHierarchy* hier = nullptr;
  TargetId target{};
  /// Indexed by cluster id value; covers every cluster.
  std::vector<TrackerSnapshot> trackers;
  /// grow/growNbr/growPar/shrink/shrinkUpd messages in transit for
  /// `target`, in send order.
  std::vector<TransitMsg> in_transit;

  [[nodiscard]] const TrackerSnapshot& at(ClusterId c) const;
  [[nodiscard]] TrackerSnapshot& at(ClusterId c);
};

}  // namespace vs::tracking
