#pragma once
// Tracker configuration: grow/shrink timers and feature switches.
//
// Figure 2's Tracker is parameterised by timer functions
// g, s : L − {MAX} → R subject to the paper's inequality (1):
//
//     Σ_{j=0..l} [s(j) − g(j)]  >  (δ + e) · n(l)    for every l < MAX,
//
// which guarantees that shrinks are slow enough never to catch a
// concurrent grow (Lemma 4.3). The default policy makes each level's slack
// alone satisfy its own inequality: s(l) = g(l) + (δ+e)·(n(l)+1); on the
// base-r grid this is the geometric s(l) ≈ s·r^l form assumed by the
// corollary of Theorem 4.9.

#include <functional>

#include "hier/hierarchy.hpp"
#include "sim/time.hpp"
#include "vsa/cgcast.hpp"

namespace vs::tracking {

struct TimerPolicy {
  /// g(l): delay from grow receipt to forwarding the grow upward.
  std::function<sim::Duration(Level)> grow;
  /// s(l): delay from shrink receipt to forwarding the shrink upward.
  std::function<sim::Duration(Level)> shrink;

  /// The default policy above, built from the hierarchy's n(l) and the
  /// C-gcast latency constants.
  static TimerPolicy paper_default(const hier::ClusterHierarchy& h,
                                   const vsa::CGcastConfig& cg);
};

/// κ × the paper-default policy. Scaling g(l) and s(l) together by κ ≥ 1
/// multiplies inequality (1)'s left side by κ, so the policy stays valid —
/// but every update cascade slows by κ, blowing the run past the κ = 1
/// Theorem 4.9 time bound the cost auditor judges against. Drivers use
/// this (via ScenarioSpec::timer_scale) to seed replayable over-bound
/// incidents.
[[nodiscard]] TimerPolicy scaled_paper_default(const hier::ClusterHierarchy& h,
                                               const vsa::CGcastConfig& cg,
                                               double scale);

/// Throws vs::Error if the policy violates inequality (1) (or is
/// non-positive) for the given hierarchy and latency constants.
void validate_timer_policy(const TimerPolicy& policy,
                           const hier::ClusterHierarchy& h,
                           const vsa::CGcastConfig& cg);

struct TrackerConfig {
  /// Allow lateral links (the paper's dithering fix). Disabling yields the
  /// STALK-style baseline that always connects to the hierarchy parent.
  bool lateral_links = true;
  TimerPolicy timers;
};

}  // namespace vs::tracking
