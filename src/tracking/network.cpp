#include "tracking/network.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace vs::tracking {

TrackingNetwork::TrackingNetwork(const hier::ClusterHierarchy& hierarchy,
                                 NetworkConfig config)
    : hier_(&hierarchy),
      config_(std::move(config)),
      counters_(hierarchy.max_level()),
      evaders_(hierarchy.tiling()) {
  tracker_config_.lateral_links = config_.lateral_links;
  tracker_config_.timers =
      config_.timers ? *config_.timers
                     : TimerPolicy::paper_default(hierarchy, config_.cgcast);
  validate_timer_policy(tracker_config_.timers, hierarchy, config_.cgcast);

  cgcast_ = std::make_unique<vsa::CGcast>(sched_, hierarchy, config_.cgcast,
                                          counters_);

  if (config_.model_vsa_failures) {
    directory_ = std::make_unique<vsa::VsaDirectory>(
        sched_, hierarchy.tiling().num_regions(), config_.t_restart);
  }

  clients_ = std::make_unique<vsa::ClientPopulation>(*cgcast_, hierarchy,
                                                     directory_.get());
  clients_->populate_uniform(config_.clients_per_region);

  evaders_.set_move_hook([this](TargetId t, RegionId from, RegionId to) {
    clients_->on_evader_move(t, from, to);
  });

  trackers_.reserve(hierarchy.num_clusters());
  for (std::size_t c = 0; c < hierarchy.num_clusters(); ++c) {
    trackers_.push_back(std::make_unique<Tracker>(
        sched_, hierarchy, *cgcast_, tracker_config_,
        ClusterId{static_cast<ClusterId::rep_type>(c)}));
  }

  // Replica placement (§VII): the head plus members spread evenly across
  // the cluster, capped by cluster size (level-0 clusters are singletons).
  VS_REQUIRE(config_.head_replicas >= 1, "head_replicas must be >= 1");
  replicas_.resize(hierarchy.num_clusters());
  hosted_.resize(hierarchy.tiling().num_regions());
  for (std::size_t c = 0; c < hierarchy.num_clusters(); ++c) {
    const ClusterId id{static_cast<ClusterId::rep_type>(c)};
    auto& reps = replicas_[c];
    reps.push_back(hierarchy.head(id));
    const auto members = hierarchy.members(id);
    const auto want = static_cast<std::size_t>(config_.head_replicas);
    for (std::size_t k = 0; reps.size() < want && k < members.size(); ++k) {
      // Even spread over the member list.
      const std::size_t i = k * members.size() / want;
      const RegionId candidate = members[i];
      if (std::find(reps.begin(), reps.end(), candidate) == reps.end()) {
        reps.push_back(candidate);
      }
    }
    for (const RegionId r : reps) {
      hosted_[static_cast<std::size_t>(r.value())].push_back(id);
    }
  }

  cgcast_->set_tracker_sink(
      [this](ClusterId dest, const vsa::Message& m) { dispatch(dest, m); });
  cgcast_->set_client_sink([this](RegionId region, const vsa::Message& m) {
    clients_->on_broadcast(region, m);
  });
  clients_->set_found_output(
      [this](FindId f, TargetId t, RegionId region, ClientId by) {
        on_found_output(f, t, region, by);
      });

  if (config_.head_replicas > 1) {
    cgcast_->set_replicas(
        [this](ClusterId c) { return replicas_of(c); });
  }

  if (directory_) {
    cgcast_->set_vsa_alive(
        [this](RegionId u) { return directory_->alive(u); });
    directory_->set_on_fail([this](RegionId u) {
      // A process loses its state only when its last hosting replica
      // fails (§VII: limited sets of VSA failures are survivable).
      for (const ClusterId c : hosted_at(u)) {
        bool any_alive = false;
        for (const RegionId r : replicas_of(c)) {
          if (directory_->alive(r)) {
            any_alive = true;
            break;
          }
        }
        if (!any_alive) tracker(c).reset();
      }
    });
    // Restart is from the initial (empty) state; reset on fail suffices.
  }

  // Observability: one recorder per world, shared by the message service
  // and every cluster process. Recording is off until set_tracing(true).
  cgcast_->set_trace_recorder(&trace_);
  for (const auto& tr : trackers_) tr->set_trace_recorder(&trace_);

  // Stamp this thread's log lines with this world's virtual clock (the
  // newest world on a thread wins; the destructor's identity-guarded clear
  // keeps out-of-order teardown safe).
  set_log_clock(this, [](const void* ctx) {
    return static_cast<const TrackingNetwork*>(ctx)->sched_.now().count();
  });

  // Per-find accounting. Inside a parallel window the observer runs on a
  // lane thread, so the deltas go to the lane's private accumulator and
  // are folded into finds_ at the barrier (all three fields commute).
  cgcast_->add_send_observer([this](const vsa::Message& m, ClusterId, ClusterId,
                                    Level level, std::int64_t hops) {
    if (!m.find_id.valid()) return;
    if (tls_find_acc_ != nullptr) {
      FindAcc& acc = (*tls_find_acc_)[m.find_id];
      ++acc.messages;
      acc.work += hops;
      if (m.type == vsa::MsgType::kFindQuery) {
        acc.max_search_level = std::max(acc.max_search_level, level);
      }
      return;
    }
    const auto it = finds_.find(m.find_id);
    if (it == finds_.end()) return;
    ++it->second.messages;
    it->second.work += hops;
    if (m.type == vsa::MsgType::kFindQuery) {
      it->second.max_search_level =
          std::max(it->second.max_search_level, level);
    }
  });
}

TrackingNetwork::~TrackingNetwork() {
  // Detach sharding before members start dying: the executor joins its
  // workers in its own destructor, and the scheduler/CGcast must not be
  // left pointing at it (or the shard map) while that happens.
  if (exec_ != nullptr) {
    sched_.attach_executor(nullptr);
    cgcast_->set_shard_map(nullptr);
  }
  clear_log_clock(this);
}

void TrackingNetwork::set_shards(int n) {
  VS_REQUIRE(n >= 1, "shards must be >= 1, got " << n);
  VS_REQUIRE(exec_ == nullptr, "set_shards may only be called once");
  VS_REQUIRE(sched_.pending() == 0,
             "set_shards must be called before any events are scheduled");
  const auto num_regions = hier_->tiling().num_regions();
  if (static_cast<std::size_t>(n) > num_regions) {
    n = static_cast<int>(num_regions);
  }
  shard_map_ = std::make_unique<vsa::ShardMap>(*hier_, n);
  exec_ = std::make_unique<sim::ShardExecutor>(
      sched_, n, config_.cgcast.delta + config_.cgcast.e, hier_->max_level());
  exec_->bind_counters(&counters_);
  exec_->bind_trace(&trace_);
  if (ledger_ != nullptr) exec_->bind_ledger(ledger_);
  if (prof_ != nullptr) exec_->bind_profiler(prof_);
  exec_->set_parallel_gate([this] { return parallel_eligible(); });
  lane_find_acc_.assign(static_cast<std::size_t>(n), {});
  exec_->set_lane_hooks(
      [this](int lane) {
        tls_find_acc_ = &lane_find_acc_[static_cast<std::size_t>(lane)];
      },
      [this](int) { tls_find_acc_ = nullptr; },
      [this](int lane) {
        // Barrier fold, called lane 0..K-1 in order on the driver thread.
        // Note the found-output path (on_found_output) is NOT deferred
        // like this: believes_here is true only in the evader's current
        // region, and moves happen in driver context, so all found
        // outputs for a target come from a single lane per window —
        // its finds_ value mutations race with nothing.
        auto& accs = lane_find_acc_[static_cast<std::size_t>(lane)];
        for (auto& [fid, acc] : accs) {
          const auto it = finds_.find(fid);
          if (it == finds_.end()) continue;
          it->second.messages += acc.messages;
          it->second.work += acc.work;
          it->second.max_search_level =
              std::max(it->second.max_search_level, acc.max_search_level);
        }
        accs.clear();
      });
  exec_->set_barrier_hook(
      [this](sim::TimePoint now) { cgcast_->purge_delivered(now); });
  cgcast_->set_shard_map(shard_map_.get());
  sched_.attach_executor(exec_.get());
}

bool TrackingNetwork::parallel_eligible() const {
  return !sched_.has_post_step_hook() && heartbeat_handlers_.empty() &&
         !state_hook_installed_ && directory_ == nullptr &&
         !cgcast_->has_channel_faults() &&
         config_.cgcast.loss_probability <= 0.0;
}

void TrackingNetwork::set_op_ledger(obs::OpLedger* ledger) {
  if (ledger_observer_ != 0) {
    cgcast_->remove_send_observer(ledger_observer_);
    ledger_observer_ = 0;
  }
  ledger_ = ledger;
  if (exec_ != nullptr) exec_->bind_ledger(ledger_);
  if (ledger_ == nullptr) return;
  ledger_observer_ = cgcast_->add_send_observer(
      [this](const vsa::Message& m, ClusterId, ClusterId, Level level,
             std::int64_t hops) {
        ledger_->note_send(m.op, level, hops, sched_.now().count());
      });
}

void TrackingNetwork::set_profiler(obs::Profiler* prof) {
  prof_ = prof;
  sched_.set_profile_probe(
      prof != nullptr ? &obs::Profiler::probe_thunk : nullptr, prof,
      prof != nullptr ? prof->enabled_flag() : nullptr);
  cgcast_->set_profiler(prof);
  for (const auto& tr : trackers_) tr->set_profiler(prof);
  if (exec_ != nullptr) exec_->bind_profiler(prof);
}

Tracker& TrackingNetwork::tracker(ClusterId c) {
  VS_REQUIRE(c.valid() && static_cast<std::size_t>(c.value()) < trackers_.size(),
             "cluster " << c << " out of range");
  return *trackers_[static_cast<std::size_t>(c.value())];
}

void TrackingNetwork::dispatch(ClusterId dest, const vsa::Message& m) {
  if (stats::is_heartbeat_kind(m.type)) {
    // Index loop (not range-for): a handler's reaction may register or
    // remove handlers, invalidating iterators.
    for (std::size_t i = 0; i < heartbeat_handlers_.size(); ++i) {
      heartbeat_handlers_[i].second(dest, m);
    }
    return;
  }
  tracker(dest).on_message(m);
}

namespace {

// Clears the C-gcast ambient op on scope exit, so a throwing move never
// leaves later background traffic stamped with a stale operation.
struct AmbientOpScope {
  vsa::CGcast* cg;
  AmbientOpScope(vsa::CGcast& c, obs::OpId op) : cg(&c) {
    cg->set_ambient_op(op);
  }
  ~AmbientOpScope() { cg->set_ambient_op(obs::kBackgroundOp); }
  AmbientOpScope(const AmbientOpScope&) = delete;
  AmbientOpScope& operator=(const AmbientOpScope&) = delete;
};

}  // namespace

void TrackingNetwork::record_move(TargetId target, RegionId from, RegionId to,
                                  std::int64_t distance, obs::OpId op) {
  if (ledger_ != nullptr) {
    ledger_->begin_move(obs::op_index(op), distance, sched_.now().count());
  }
  if (!obs::kTraceCompiled || !trace_.enabled()) return;
  trace_.append(obs::TraceEvent{
      .time_us = sched_.now().count(),
      .seq = sched_.current_seq(),
      .cause = sched_.current_cause(),
      .find = -1,
      .a = from.valid() ? from.value() : -1,
      .b = to.value(),
      .target = target.valid() ? target.value() : -1,
      .arg = static_cast<std::int32_t>(distance),
      .level = -1,
      .kind = static_cast<std::uint8_t>(obs::TraceKind::kMoveIssued),
      .msg = obs::kNoMsg,
      .extra = 0,
      .op = op,
      .pad0 = 0,
  });
}

TargetId TrackingNetwork::add_evader(RegionId start) {
  const bool quiescent = sched_.pending() == 0;
  // Placement is move step 0 of the walk for cost attribution: a
  // distance-0 move op (charged, but excluded from the Theorem 4.9 sums).
  const obs::OpId op = obs::make_op(obs::OpClass::kMove, move_count_++);
  TargetId target;
  {
    AmbientOpScope ambient(*cgcast_, op);
    target = evaders_.add_evader(start);
  }
  // Recorded after the fact so the event carries the target id; placement
  // never throws once add_evader returned.
  record_move(target, RegionId{}, start, 0, op);
  if (move_observer_) move_observer_(target, RegionId{}, start, quiescent);
  return target;
}

void TrackingNetwork::move_evader(TargetId target, RegionId to) {
  // Capture `from` and the quiescence predicate before the move (it
  // schedules its own client messages), but notify only after it succeeds
  // — a rejected move must never reach attached monitors, or their shadow
  // state diverges from the live structure.
  const RegionId from = evaders_.region_of(target);
  const bool quiescent = sched_.pending() == 0;
  const obs::OpId op = obs::make_op(obs::OpClass::kMove, move_count_++);
  record_move(target, from, to, hier_->tiling().distance(from, to), op);
  {
    AmbientOpScope ambient(*cgcast_, op);
    evaders_.move(target, to);
  }
  if (move_observer_) move_observer_(target, from, to, quiescent);
}

void TrackingNetwork::move_and_quiesce(TargetId target, RegionId to) {
  move_evader(target, to);
  run_to_quiescence();
}

void TrackingNetwork::record(obs::TraceKind kind, FindId f, TargetId t,
                             RegionId region, obs::OpId op,
                             std::int32_t arg) {
  trace_.append(obs::TraceEvent{
      .time_us = sched_.now().count(),
      .seq = sched_.current_seq(),
      .cause = sched_.current_cause(),
      .find = f.valid() ? f.value() : -1,
      .a = region.valid() ? region.value() : -1,
      .b = -1,
      .target = t.valid() ? t.value() : -1,
      .arg = arg,
      .level = -1,
      .kind = static_cast<std::uint8_t>(kind),
      .msg = obs::kNoMsg,
      .extra = 0,
      .op = op,
      .pad0 = 0,
  });
}

FindId TrackingNetwork::start_find(RegionId from, TargetId target) {
  const FindId f{next_find_++};
  const obs::OpId op = obs::make_op(
      obs::OpClass::kFindSearch, static_cast<std::uint32_t>(f.value()));
  FindResult r;
  r.id = f;
  r.target = target;
  r.origin = from;
  r.issued = sched_.now();
  r.op = op;
  // The `d` the Theorem 5.2 bounds apply at: origin→evader distance when
  // the find is issued.
  r.distance = hier_->tiling().distance(from, evaders_.region_of(target));
  finds_.emplace(f, r);
  if (ledger_ != nullptr) {
    ledger_->begin_find(obs::op_index(op), sched_.now().count());
  }
  if (obs::kTraceCompiled && trace_.enabled()) {
    record(obs::TraceKind::kFindIssued, f, target, from, op,
           static_cast<std::int32_t>(r.distance));
  }
  {
    AmbientOpScope ambient(*cgcast_, op);
    clients_->inject_find(from, target, f);
  }
  return f;
}

const FindResult& TrackingNetwork::find_result(FindId f) const {
  const auto it = finds_.find(f);
  VS_REQUIRE(it != finds_.end(), "unknown find " << f);
  return it->second;
}

void TrackingNetwork::on_found_output(FindId f, TargetId t, RegionId region,
                                      ClientId /*by*/) {
  const auto it = finds_.find(f);
  VS_REQUIRE(it != finds_.end(), "found output for unknown find " << f);
  VS_REQUIRE(it->second.target == t, "found output target mismatch");
  if (it->second.done) return;  // several believing clients may answer
  it->second.done = true;
  it->second.found_region = region;
  it->second.completed = sched_.now();
  if (ledger_ != nullptr) {
    ledger_->complete_find(static_cast<std::uint32_t>(f.value()),
                           it->second.distance, sched_.now().count());
  }
  if (obs::kTraceCompiled && trace_.enabled()) {
    record(obs::TraceKind::kFoundOutput, f, t, region,
           obs::make_op(obs::OpClass::kFindTrace,
                        static_cast<std::uint32_t>(f.value())));
  }
}

obs::MetricsRegistry TrackingNetwork::export_metrics() const {
  obs::MetricsRegistry m;
  m.add("sched.events_fired",
        static_cast<std::int64_t>(sched_.events_fired()));
  m.add("cgcast.msgs_total", counters_.total_messages());
  m.add("cgcast.work_total", counters_.total_work());
  m.add("cgcast.dropped", cgcast_->dropped());
  m.add("cgcast.lost", cgcast_->lost());
  m.add("cgcast.duplicated", counters_.duplicated());
  m.add("cgcast.jittered", counters_.jittered());
  m.add("cgcast.heartbeats", counters_.heartbeats());
  m.add("trace.events", static_cast<std::int64_t>(trace_.size()));
  m.set_gauge("sched.virtual_time_us", sched_.now().count());
  // Find latency in δ units-ish buckets: powers of two of milliseconds.
  static constexpr std::int64_t kLatencyBounds[] = {
      1'000, 2'000, 4'000, 8'000, 16'000, 32'000, 64'000, 128'000,
      256'000, 512'000, 1'024'000};
  for (const auto& [id, fr] : finds_) {
    m.add("find.issued");
    if (!fr.done) continue;
    m.add("find.completed");
    m.add("find.messages", fr.messages);
    m.add("find.work", fr.work);
    m.histogram("find.latency_us", kLatencyBounds)
        .record(fr.latency().count());
  }
  return m;
}

std::uint64_t TrackingNetwork::run_to_quiescence() { return sched_.run(); }

std::uint64_t TrackingNetwork::run_until(sim::TimePoint deadline) {
  return sched_.run_until(deadline);
}

std::uint64_t TrackingNetwork::run_for(sim::Duration d) {
  return sched_.run_until(sched_.now() + d);
}

void TrackingNetwork::fail_vsa(RegionId u) {
  VS_REQUIRE(directory_ != nullptr,
             "fail_vsa requires NetworkConfig::model_vsa_failures");
  directory_->fail(u);
}

SystemSnapshot TrackingNetwork::snapshot(TargetId target) const {
  SystemSnapshot snap;
  snap.hier = hier_;
  snap.target = target;
  snap.trackers.reserve(trackers_.size());
  for (const auto& tr : trackers_) snap.trackers.push_back(tr->state(target));
  for (const auto& in : cgcast_->in_transit()) {
    if (in.msg.target != target) continue;
    if (!stats::is_move_kind(in.msg.type)) continue;
    snap.in_transit.push_back(
        TransitMsg{in.msg.type, in.msg.from_cluster, in.to});
  }
  return snap;
}

std::span<const ClusterId> TrackingNetwork::hosted_at(RegionId u) const {
  VS_REQUIRE(u.valid() && static_cast<std::size_t>(u.value()) < hosted_.size(),
             "region " << u << " out of range");
  return hosted_[static_cast<std::size_t>(u.value())];
}

std::span<const RegionId> TrackingNetwork::replicas_of(ClusterId c) const {
  VS_REQUIRE(c.valid() && static_cast<std::size_t>(c.value()) < replicas_.size(),
             "cluster " << c << " out of range");
  return replicas_[static_cast<std::size_t>(c.value())];
}

void TrackingNetwork::set_state_change_hook(Tracker::StateChangeHook hook) {
  state_hook_installed_ = static_cast<bool>(hook);
  for (const auto& tr : trackers_) tr->set_state_change_hook(hook);
}

}  // namespace vs::tracking
