#include "tracking/tracker.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace vs::tracking {

using vsa::Message;
using vsa::MsgType;

namespace {

/// Save/restore of the tracker's current-op slot for one handler scope.
struct OpScope {
  obs::OpId* slot;
  obs::OpId prev;
  OpScope(obs::OpId* s, obs::OpId v) : slot(s), prev(*s) { *s = v; }
  ~OpScope() { *slot = prev; }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;
};

}  // namespace

Tracker::Tracker(sim::Scheduler& sched,
                 const hier::ClusterHierarchy& hierarchy, vsa::CGcast& cgcast,
                 const TrackerConfig& config, ClusterId clust)
    : sched_(&sched),
      hier_(&hierarchy),
      cgcast_(&cgcast),
      config_(&config),
      clust_(clust),
      lvl_(hierarchy.level(clust)) {}

Tracker::PerTarget& Tracker::target_state(TargetId t) {
  auto it = targets_.find(t);
  if (it == targets_.end()) {
    it = targets_.emplace(t, PerTarget{}).first;
    it->second.timer = std::make_unique<sim::Timer>(
        *sched_, [this, t] { on_timer(t); });
  }
  return it->second;
}

Tracker::PerFind& Tracker::find_state(FindId f) {
  auto it = finds_.find(f);
  if (it == finds_.end()) {
    it = finds_.emplace(f, PerFind{}).first;
    it->second.nbrtimeout = std::make_unique<sim::Timer>(
        *sched_, [this, f] { on_nbrtimeout(f); });
  }
  return it->second;
}

void Tracker::reset() {
  targets_.clear();  // destroys timers, disarming them
  finds_.clear();
}

void Tracker::corrupt_state(TargetId target, const TrackerSnapshot& forced) {
  PerTarget& s = target_state(target);
  s.c = forced.c;
  s.p = forced.p;
  s.nbrptup = forced.nbrptup;
  s.nbrptdown = forced.nbrptdown;
  s.timer->disarm();
  notify_state_change(target);
}

TrackerSnapshot Tracker::state(TargetId target) const {
  TrackerSnapshot s;
  s.clust = clust_;
  const auto it = targets_.find(target);
  if (it != targets_.end()) {
    s.c = it->second.c;
    s.p = it->second.p;
    s.nbrptup = it->second.nbrptup;
    s.nbrptdown = it->second.nbrptdown;
  }
  return s;
}

bool Tracker::timer_armed(TargetId target) const {
  const auto it = targets_.find(target);
  return it != targets_.end() && it->second.timer->armed();
}

void Tracker::nudge_timer(TargetId target, obs::OpId op) {
  if (timer_armed(target)) return;
  // The armed-op is gone with the lost timer; charge the re-evaluated
  // expiry (and its cascade) to the repair op driving the nudge.
  if (obs::kTraceCompiled && op != obs::kBackgroundOp) {
    target_state(target).op = op;
  }
  on_timer(target);
}

std::vector<TargetId> Tracker::active_targets() const {
  std::vector<TargetId> out;
  for (const auto& [t, s] : targets_) {
    if (s.c.valid() || s.p.valid() || s.nbrptup.valid() ||
        s.nbrptdown.valid() || s.timer->armed()) {
      out.push_back(t);
    }
  }
  return out;
}

bool Tracker::finding(FindId find) const {
  const auto it = finds_.find(find);
  return it != finds_.end() && it->second.finding;
}

void Tracker::send(ClusterId to, MsgType type, TargetId target, FindId find,
                   ClusterId ack_pointer) {
  Message m;
  m.type = type;
  m.from_cluster = clust_;
  m.target = target;
  m.find_id = find;
  m.ack_pointer = ack_pointer;
  m.op = current_op_;
  cgcast_->send(clust_, to, m);
}

void Tracker::notify_state_change(TargetId t) {
  if (state_hook_) state_hook_(clust_, t);
}

void Tracker::on_message(const Message& m) {
  // Delivered work runs under the op the message carries; replies and
  // follow-on sends inherit it through send()'s stamp.
  OpScope scope(&current_op_, m.op);
  dispatch(m);
}

namespace {
/// Figure 2 handler family a message's CPU time is attributed to.
constexpr obs::ProfDomain profile_domain(MsgType t) {
  switch (t) {
    case MsgType::kGrow:
    case MsgType::kGrowPar:
    case MsgType::kGrowNbr:
      return obs::ProfDomain::kTrackerGrow;
    case MsgType::kShrink:
    case MsgType::kShrinkUpd:
      return obs::ProfDomain::kTrackerShrink;
    default:
      return obs::ProfDomain::kTrackerFind;
  }
}
}  // namespace

void Tracker::dispatch(const Message& m) {
  const obs::ProfScope prof(prof_, profile_domain(m.type));
  switch (m.type) {
    case MsgType::kGrow: on_grow(m); return;
    case MsgType::kGrowPar: on_grow_par(m); return;
    case MsgType::kGrowNbr: on_grow_nbr(m); return;
    case MsgType::kShrink: on_shrink(m); return;
    case MsgType::kShrinkUpd: on_shrink_upd(m); return;
    case MsgType::kFind: on_find(m); return;
    case MsgType::kFindQuery: on_find_query(m); return;
    case MsgType::kFindAck: on_find_ack(m); return;
    case MsgType::kFound: on_found(m); return;
    default:
      VS_REQUIRE(false, "tracker received unexpected message " << m);
  }
}

// --- Move-related actions -------------------------------------------------

// Input cTOBrcv(⟨grow, cid⟩): arm the grow timer if the process was idle
// (c = p = ⊥, below MAX), then point c at the sender unconditionally.
void Tracker::on_grow(const Message& m) {
  PerTarget& s = target_state(m.target);
  if (!s.c.valid() && !s.p.valid() && lvl_ != hier_->max_level()) {
    s.timer->arm_after(config_->timers.grow(lvl_));
    s.op = current_op_;
  }
  s.c = m.from_cluster;
  notify_state_change(m.target);
  advance_finds_of(m.target);
}

// Input cTOBrcv(⟨growPar, cid⟩): the neighbour cid joined the path via its
// hierarchy parent.
void Tracker::on_grow_par(const Message& m) {
  PerTarget& s = target_state(m.target);
  s.nbrptup = m.from_cluster;
  notify_state_change(m.target);
  advance_finds_of(m.target);
}

// Input cTOBrcv(⟨growNbr, cid⟩): the neighbour cid joined via a lateral
// link.
void Tracker::on_grow_nbr(const Message& m) {
  PerTarget& s = target_state(m.target);
  s.nbrptdown = m.from_cluster;
  notify_state_change(m.target);
  advance_finds_of(m.target);
}

// Input cTOBrcv(⟨shrink, cid⟩): clean only deadwood — ignore unless c still
// points at the sender.
void Tracker::on_shrink(const Message& m) {
  PerTarget& s = target_state(m.target);
  if (s.c != m.from_cluster) return;
  s.c = ClusterId::invalid();
  if (lvl_ != hier_->max_level()) {
    s.timer->arm_after(config_->timers.shrink(lvl_));
    s.op = current_op_;
  }
  notify_state_change(m.target);
}

// Input cTOBrcv(⟨shrinkUpd, cid⟩): drop secondary pointers to the departed
// neighbour.
void Tracker::on_shrink_upd(const Message& m) {
  PerTarget& s = target_state(m.target);
  bool changed = false;
  if (s.nbrptup == m.from_cluster) {
    s.nbrptup = ClusterId::invalid();
    changed = true;
  }
  if (s.nbrptdown == m.from_cluster) {
    s.nbrptdown = ClusterId::invalid();
    changed = true;
  }
  if (changed) {
    notify_state_change(m.target);
    advance_finds_of(m.target);
  }
}

// Timer expiry: the two timer-gated outputs of Figure 2.
void Tracker::record(obs::TraceKind kind, TargetId target, FindId find,
                     std::int32_t arg) {
  trace_->append(obs::TraceEvent{
      .time_us = sched_->now().count(),
      .seq = sched_->current_seq(),
      .cause = sched_->current_cause(),
      .find = find.valid() ? find.value() : -1,
      .a = clust_.value(),
      .b = -1,
      .target = target.valid() ? target.value() : -1,
      .arg = arg,
      .level = static_cast<std::int16_t>(lvl_),
      .kind = static_cast<std::uint8_t>(kind),
      .msg = obs::kNoMsg,
      .extra = 0,
      .op = current_op_,
      .pad0 = 0,
  });
}

void Tracker::on_timer(TargetId t) {
  const obs::ProfScope prof(prof_, obs::ProfDomain::kTrackerTimer);
  PerTarget& s = target_state(t);
  // The expiry's cascade belongs to the operation that armed the timer.
  OpScope scope(&current_op_, s.op);
  if (obs::kTraceCompiled && trace_ != nullptr && trace_->enabled()) {
    const std::int32_t branch =
        s.c.valid() && !s.p.valid() && lvl_ != hier_->max_level() ? 1
        : !s.c.valid() && s.p.valid()                             ? 2
                                                                  : 0;
    record(obs::TraceKind::kTimerFire, t, FindId{}, branch);
  }
  if (s.c.valid() && !s.p.valid() && lvl_ != hier_->max_level()) {
    // Output cTOBsend(⟨grow, clust⟩, par): extend the tracking path. Use a
    // lateral link if a neighbour advertises a parent-connected position.
    ClusterId par;
    const bool lateral = config_->lateral_links && s.nbrptup.valid();
    par = lateral ? s.nbrptup : hier_->parent(clust_);
    s.p = par;
    send(par, MsgType::kGrow, t);
    const MsgType note = lateral ? MsgType::kGrowNbr : MsgType::kGrowPar;
    for (const ClusterId b : hier_->nbrs(clust_)) send(b, note, t);
    notify_state_change(t);
    advance_finds_of(t);
  } else if (!s.c.valid() && s.p.valid()) {
    // Output cTOBsend(⟨shrink, clust⟩, p): retire from the deserted branch.
    send(s.p, MsgType::kShrink, t);
    s.p = ClusterId::invalid();
    for (const ClusterId b : hier_->nbrs(clust_)) {
      send(b, MsgType::kShrinkUpd, t);
    }
    notify_state_change(t);
    advance_finds_of(t);
  }
  // Otherwise both a grow and a shrink passed through while the timer
  // counted down; no output is enabled (the new path connected here).
}

// --- Find-related actions -------------------------------------------------

// Input cTOBrcv(⟨find, cid⟩): enter the search/trace phase.
void Tracker::on_find(const Message& m) {
  PerFind& pf = find_state(m.find_id);
  pf.finding = true;
  pf.target = m.target;
  pf.queried = false;
  pf.nbrtimeout->disarm();  // nbrtimeout ← ∞
  try_advance_find(m.find_id);
}

void Tracker::advance_finds_of(TargetId t) {
  // Collect first: try_advance_find may mutate finds_ entries.
  std::vector<FindId> active;
  for (const auto& [f, pf] : finds_) {
    if (pf.finding && pf.target == t) active.push_back(f);
  }
  for (const FindId f : active) try_advance_find(f);
}

void Tracker::try_advance_find(FindId f) {
  PerFind& pf = find_state(f);
  if (!pf.finding) return;
  PerTarget& ts = target_state(pf.target);

  // Phase classification by the enabled action, not by the inherited op:
  // a valid c means the find is on the tracking path (trace phase — the
  // Theorem 5.2 "descend" leg); c = ⊥ means it is still searching. The
  // find's index is its FindId, so both phases are derivable anywhere.
  const obs::OpId phase_op =
      !obs::kTraceCompiled
          ? obs::kBackgroundOp
          : obs::make_op(ts.c.valid() ? obs::OpClass::kFindTrace
                                      : obs::OpClass::kFindSearch,
                         static_cast<std::uint64_t>(f.value()));
  OpScope scope(&current_op_, phase_op);

  if (ts.c == clust_) {
    // Output cTOBsend(⟨found, clust⟩, clust): the object is here (level-0
    // self pointer). Broadcast found locally and to neighbour clusters.
    emit_found(f, pf.target);
    pf.finding = false;
    return;
  }
  if (ts.c.valid()) {
    // Trace: forward the find down (or across a lateral link) via c.
    send(ts.c, MsgType::kFind, pf.target, f);
    pf.finding = false;
    return;
  }
  // Search phase: c = ⊥.
  if (ts.nbrptdown.valid()) {
    send(ts.nbrptdown, MsgType::kFind, pf.target, f);
    pf.finding = false;
    return;
  }
  if (ts.nbrptup.valid() && ts.nbrptup != ts.p) {
    send(ts.nbrptup, MsgType::kFind, pf.target, f);
    pf.finding = false;
    return;
  }
  // nbrptup ∈ {⊥, p}: query the neighbours once per find receipt
  // (Figure 2's internal findquery, guarded by nbrtimeout).
  if (!pf.queried) issue_find_query(f, pf, ts);
}

void Tracker::issue_find_query(FindId f, PerFind& pf, PerTarget& ts) {
  pf.queried = true;
  const sim::Duration roundtrip =
      2 * hier_->n(lvl_) * (cgcast_->config().delta + cgcast_->config().e);
  pf.nbrtimeout->arm_after(roundtrip);
  for (const ClusterId b : hier_->nbrs(clust_)) {
    if (b == ts.p) continue;  // Figure 2: nbrs(clust) − {p}
    send(b, MsgType::kFindQuery, pf.target, f);
  }
}

// Input cTOBrcv(⟨findQuery, cid⟩): answer with the best pointer we hold.
void Tracker::on_find_query(const Message& m) {
  PerTarget& s = target_state(m.target);
  ClusterId x;
  if (s.c.valid()) {
    x = s.c;
  } else if (s.nbrptdown.valid()) {
    x = s.nbrptdown;
  } else if (s.nbrptup.valid()) {
    x = s.nbrptup;
  } else {
    return;  // nothing to offer; stay silent
  }
  send(m.from_cluster, MsgType::kFindAck, m.target, m.find_id, x);
}

// Input cTOBrcv(⟨findAck, dest⟩): follow the advertised pointer if this
// find is still searching here and no better pointer appeared meanwhile.
void Tracker::on_find_ack(const Message& m) {
  PerFind& pf = find_state(m.find_id);
  if (!pf.finding) return;
  PerTarget& ts = target_state(pf.target);
  const bool still_searching = !ts.c.valid() && !ts.nbrptdown.valid() &&
                               (!ts.nbrptup.valid() || ts.nbrptup == ts.p);
  if (!still_searching) return;  // a state change will route the find
  if (m.ack_pointer == clust_) return;  // dest ∉ {clust}
  pf.nbrtimeout->disarm();
  send(m.ack_pointer, MsgType::kFind, pf.target, m.find_id);
  pf.finding = false;
}

// nbrtimeout expiry: no neighbour answered in time — escalate.
void Tracker::on_nbrtimeout(FindId f) {
  const obs::ProfScope prof(prof_, obs::ProfDomain::kTrackerFind);
  PerFind& pf = find_state(f);
  if (!pf.finding) return;
  // A timed-out query escalates — still the find's search phase.
  OpScope scope(&current_op_,
                obs::kTraceCompiled
                    ? obs::make_op(obs::OpClass::kFindSearch,
                                   static_cast<std::uint64_t>(f.value()))
                    : obs::kBackgroundOp);
  if (obs::kTraceCompiled && trace_ != nullptr && trace_->enabled()) {
    record(obs::TraceKind::kFindTimeout, pf.target, f, 0);
  }
  PerTarget& ts = target_state(pf.target);
  const bool still_searching = !ts.c.valid() && !ts.nbrptdown.valid() &&
                               (!ts.nbrptup.valid() || ts.nbrptup == ts.p);
  if (!still_searching) {
    try_advance_find(f);
    return;
  }
  ClusterId dest;
  if (!ts.nbrptup.valid()) {
    dest = lvl_ == hier_->max_level() ? ClusterId::invalid()
                                      : hier_->parent(clust_);
  } else {
    dest = ts.nbrptup;  // nbrptup = p case of Figure 2's timeout branch
  }
  if (!dest.valid()) {
    // Root transiently off the path mid-move: reissue the query a bounded
    // number of times (liveness completion, see header note). Beyond the
    // cap the find goes quiet, exactly as Figure 2's disabled output —
    // any later pointer change re-awakens it via try_advance_find.
    if (pf.root_retries < kMaxRootRetries) {
      ++pf.root_retries;
      pf.queried = false;
      try_advance_find(f);
    }
    return;
  }
  send(dest, MsgType::kFind, pf.target, f);
  pf.finding = false;
}

void Tracker::emit_found(FindId f, TargetId t) {
  Message m;
  m.type = MsgType::kFound;
  m.from_cluster = clust_;
  m.target = t;
  m.find_id = f;
  m.op = current_op_;
  cgcast_->broadcast_to_clients(clust_, m);
  // Figure 2 also queues ⟨j, found⟩ for every neighbour cluster; receiving
  // trackers relay to their own regions' clients so clients "in that and
  // neighboring regions" observe the found.
  for (const ClusterId b : hier_->nbrs(clust_)) {
    send(b, MsgType::kFound, t, f);
  }
}

// A relayed found at a (level-0) neighbour cluster: re-broadcast locally.
void Tracker::on_found(const Message& m) {
  if (lvl_ != 0) return;  // found relays only occur at level 0
  Message out = m;
  out.from_cluster = clust_;
  cgcast_->broadcast_to_clients(clust_, out);
}

}  // namespace vs::tracking
