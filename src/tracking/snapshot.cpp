#include "tracking/snapshot.hpp"

#include "common/error.hpp"

namespace vs::tracking {

const TrackerSnapshot& SystemSnapshot::at(ClusterId c) const {
  VS_REQUIRE(c.valid() && static_cast<std::size_t>(c.value()) < trackers.size(),
             "cluster " << c << " out of snapshot range");
  return trackers[static_cast<std::size_t>(c.value())];
}

TrackerSnapshot& SystemSnapshot::at(ClusterId c) {
  VS_REQUIRE(c.valid() && static_cast<std::size_t>(c.value()) < trackers.size(),
             "cluster " << c << " out of snapshot range");
  return trackers[static_cast<std::size_t>(c.value())];
}

}  // namespace vs::tracking
