#include "tracking/config.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vs::tracking {

namespace {

sim::Duration scaled(sim::Duration d, double k) {
  return sim::Duration::micros(static_cast<std::int64_t>(
      std::llround(static_cast<double>(d.count()) * k)));
}

}  // namespace

TimerPolicy TimerPolicy::paper_default(const hier::ClusterHierarchy& h,
                                       const vsa::CGcastConfig& cg) {
  const sim::Duration de = cg.delta + cg.e;
  TimerPolicy policy;
  policy.grow = [de](Level) { return de; };
  policy.shrink = [de, &h](Level l) { return de + de * (h.n(l) + 1); };
  return policy;
}

TimerPolicy scaled_paper_default(const hier::ClusterHierarchy& h,
                                 const vsa::CGcastConfig& cg, double scale) {
  VS_REQUIRE(scale >= 1.0,
             "timer scale must be >= 1 or inequality (1) may break");
  TimerPolicy base = TimerPolicy::paper_default(h, cg);
  TimerPolicy policy;
  // Like paper_default, the returned policy references `h` (through the
  // wrapped base shrink) and must not outlive it.
  policy.grow = [g = base.grow, scale](Level l) { return scaled(g(l), scale); };
  policy.shrink = [s = base.shrink, scale](Level l) {
    return scaled(s(l), scale);
  };
  return policy;
}

void validate_timer_policy(const TimerPolicy& policy,
                           const hier::ClusterHierarchy& h,
                           const vsa::CGcastConfig& cg) {
  VS_REQUIRE(static_cast<bool>(policy.grow) && static_cast<bool>(policy.shrink),
             "timer policy has unset functions");
  const sim::Duration de = cg.delta + cg.e;
  sim::Duration slack_sum = sim::Duration::zero();
  for (Level l = 0; l < h.max_level(); ++l) {
    const sim::Duration g = policy.grow(l);
    const sim::Duration s = policy.shrink(l);
    VS_REQUIRE(g >= sim::Duration::zero(), "g(" << l << ") negative");
    VS_REQUIRE(s > g, "s(" << l << ") must exceed g(" << l << ")");
    slack_sum += s - g;
    VS_REQUIRE(slack_sum > de * h.n(l),
               "timer inequality (1) violated at level "
                   << l << ": Σ slack " << slack_sum << " ≤ (δ+e)·n(l) "
                   << de * h.n(l));
  }
}

}  // namespace vs::tracking
