#include "baselines/tree_directory.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vs::baselines {

TreeDirectory::TreeDirectory(const hier::ClusterHierarchy& hierarchy)
    : hier_(&hierarchy) {}

void TreeDirectory::init(RegionId start) {
  VS_REQUIRE(!evader_.valid(), "init called twice");
  evader_ = start;
}

Level TreeDirectory::lca_level(RegionId a, RegionId b) const {
  for (Level l = 0; l <= hier_->max_level(); ++l) {
    if (hier_->cluster_of(a, l) == hier_->cluster_of(b, l)) return l;
  }
  VS_REQUIRE(false, "no common cluster at level MAX");
  return hier_->max_level();
}

std::int64_t TreeDirectory::link_cost(RegionId u, Level l) const {
  const RegionId lo = hier_->head(hier_->cluster_of(u, l));
  const RegionId hi = hier_->head(hier_->cluster_of(u, l + 1));
  return std::max<std::int64_t>(1, hier_->tiling().distance(lo, hi));
}

OpCost TreeDirectory::move(RegionId to) {
  VS_REQUIRE(hier_->tiling().are_neighbors(evader_, to), "non-neighbour move");
  const RegionId from = evader_;
  const Level lca = lca_level(from, to);
  OpCost cost;
  // Install the new branch and tear down the old one: one message per
  // level up to the LCA on each side. Update messages climb head-to-head;
  // the two branches proceed in parallel, so time is the longer climb.
  std::int64_t new_time = 0;
  std::int64_t old_time = 0;
  for (Level l = 0; l < lca; ++l) {
    const std::int64_t up_new = link_cost(to, l);
    const std::int64_t up_old = link_cost(from, l);
    cost.work += up_new + up_old;
    cost.messages += 2;
    new_time += up_new;
    old_time += up_old;
  }
  cost.time = std::max(new_time, old_time);
  evader_ = to;
  return cost;
}

OpCost TreeDirectory::find(RegionId from) {
  OpCost cost;
  // Climb through the querier's own clusterheads until a cluster shared
  // with the evader is reached.
  const Level lca = lca_level(from, evader_);
  for (Level l = 0; l < lca; ++l) {
    cost.work += link_cost(from, l);
    cost.time += link_cost(from, l);
    ++cost.messages;
  }
  // Trace the chain down to the evader's region.
  for (Level l = lca; l > 0; --l) {
    cost.work += link_cost(evader_, l - 1);
    cost.time += link_cost(evader_, l - 1);
    ++cost.messages;
  }
  return cost;
}

}  // namespace vs::baselines
