#pragma once
// Central (home-region) directory baseline.
//
// A single directory at the network root's head region stores the evader's
// exact region. Every move sends an update to the directory; every find
// queries the directory and then contacts the evader. Both operations cost
// Θ(D) regardless of locality — the non-scalable scheme hierarchies are
// meant to beat (cf. the paper's discussion of [5]).

#include "baselines/location_service.hpp"
#include "hier/hierarchy.hpp"

namespace vs::baselines {

class RootDirectory final : public LocationService {
 public:
  explicit RootDirectory(const hier::ClusterHierarchy& hierarchy);

  [[nodiscard]] std::string name() const override { return "RootDirectory"; }
  void init(RegionId start) override;
  OpCost move(RegionId to) override;
  [[nodiscard]] OpCost find(RegionId from) override;
  [[nodiscard]] RegionId evader_region() const override { return evader_; }

 private:
  const hier::ClusterHierarchy* hier_;
  RegionId directory_;  // head region of the level-MAX cluster
  RegionId evader_{};
};

}  // namespace vs::baselines
