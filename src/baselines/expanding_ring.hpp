#pragma once
// Structure-free expanding-ring search baseline.
//
// No tracking structure is maintained (moves are free). A find floods
// queries over rings of doubling radius around the querier until the ring
// covers the evader; every region inside the final radius handles one
// message, so a find at distance d costs Θ(d²) work on the grid — the
// trade-off anchor showing why maintained structures pay for themselves
// (cf. the non-hierarchical pursuer-evader schemes [5]).

#include "baselines/location_service.hpp"
#include "geo/tiling.hpp"

namespace vs::baselines {

class ExpandingRingSearch final : public LocationService {
 public:
  explicit ExpandingRingSearch(const geo::Tiling& tiling);

  [[nodiscard]] std::string name() const override { return "ExpandingRing"; }
  void init(RegionId start) override;
  OpCost move(RegionId to) override;
  [[nodiscard]] OpCost find(RegionId from) override;
  [[nodiscard]] RegionId evader_region() const override { return evader_; }

 private:
  /// Number of regions within hop distance r of `from` (flood footprint).
  [[nodiscard]] std::int64_t regions_within(RegionId from, int radius) const;

  const geo::Tiling* tiling_;
  RegionId evader_{};
};

}  // namespace vs::baselines
