#pragma once
// Baseline location services VINESTALK is compared against.
//
// The paper's Introduction positions VINESTALK against directory-based
// schemes: central/home-region directories (move and find both pay O(D)),
// tree/hierarchical directories with LCA-climbing updates (GLS-like, the
// schemes of [11]/[14], which suffer the dithering problem), and
// structure-free search (expanding ring, O(d²) find). STALK-without-
// lateral-links is the fourth comparator; it is the real DES system with
// NetworkConfig::lateral_links = false rather than a model here.
//
// These baselines are *idealised analytic models* — no timers, no message
// loss, instantaneous bookkeeping — charging only the unavoidable
// communication: work = hop distance per message, time = (δ+e)-units ×
// hop distance along the critical path. Idealisation favours the
// baselines, making VINESTALK's measured wins conservative (documented in
// DESIGN.md).

#include <cstdint>
#include <string>

#include "common/ids.hpp"

namespace vs::baselines {

/// Cost of one operation. `time` is in (δ+e)·hop units (the same latency
/// scale the DES uses), `work` in message-hops.
struct OpCost {
  std::int64_t work{0};
  std::int64_t messages{0};
  std::int64_t time{0};

  OpCost& operator+=(const OpCost& o) {
    work += o.work;
    messages += o.messages;
    time += o.time;
    return *this;
  }
};

class LocationService {
 public:
  virtual ~LocationService() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Place the evader initially.
  virtual void init(RegionId start) = 0;

  /// The evader moved to a neighbouring region; returns the update cost.
  virtual OpCost move(RegionId to) = 0;

  /// Locate the evader from `from`; returns the cost of the query, which
  /// must end at the evader's current region.
  [[nodiscard]] virtual OpCost find(RegionId from) = 0;

  [[nodiscard]] virtual RegionId evader_region() const = 0;
};

}  // namespace vs::baselines
