#include "baselines/expanding_ring.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "geo/grid_tiling.hpp"

namespace vs::baselines {

ExpandingRingSearch::ExpandingRingSearch(const geo::Tiling& tiling)
    : tiling_(&tiling) {}

void ExpandingRingSearch::init(RegionId start) {
  VS_REQUIRE(!evader_.valid(), "init called twice");
  evader_ = start;
}

OpCost ExpandingRingSearch::move(RegionId to) {
  VS_REQUIRE(tiling_->are_neighbors(evader_, to), "non-neighbour move");
  evader_ = to;
  return OpCost{};  // no structure to maintain
}

std::int64_t ExpandingRingSearch::regions_within(RegionId from,
                                                 int radius) const {
  // Closed-form disc area on the grid (Chebyshev balls are clipped
  // rectangles); generic tilings fall back to a scan.
  if (const auto* grid = dynamic_cast<const geo::GridTiling*>(tiling_)) {
    const geo::Coord c = grid->coord(from);
    const std::int64_t w = std::min(grid->width() - 1, c.x + radius) -
                           std::max(0, c.x - radius) + 1;
    const std::int64_t h = std::min(grid->height() - 1, c.y + radius) -
                           std::max(0, c.y - radius) + 1;
    return w * h;
  }
  std::int64_t count = 0;
  for (const RegionId v : tiling_->all_regions()) {
    if (tiling_->distance(from, v) <= radius) ++count;
  }
  return count;
}

OpCost ExpandingRingSearch::find(RegionId from) {
  const int d = tiling_->distance(from, evader_);
  OpCost cost;
  // Rings of doubling radius; each attempt floods its disc (one message
  // handled per region) and the responses race back.
  int radius = 1;
  while (true) {
    const std::int64_t flooded = regions_within(from, radius);
    cost.work += flooded;
    cost.messages += flooded;
    cost.time += 2 * radius;  // flood out + answer back
    if (radius >= d) break;
    radius = std::min(radius * 2, tiling_->diameter());
  }
  return cost;
}

}  // namespace vs::baselines
