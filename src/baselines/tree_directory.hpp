#pragma once
// Hierarchical pointer-chain directory with LCA-climbing updates.
//
// The clusterhead of each cluster containing the evader stores which child
// cluster the evader is in, forming a root-to-leaf pointer chain — the
// classical tree-based location scheme (cf. [11], and the per-level
// location servers of GLS [14]). On a move the chain is repaired up to the
// lowest common ancestor of the old and new regions: every pointer below
// the LCA is rewritten (new branch) and deleted (old branch). Because the
// LCA of two *adjacent* regions can be the root, the scheme dithers: an
// evader oscillating across a high-level boundary pays Θ(D) per step —
// exactly the failure mode VINESTALK's lateral links remove.
//
// Finds climb from the querier through its own iterated clusterheads until
// a head on the evader's chain is reached (guaranteed at latest at the
// LCA of querier and evader), then trace the chain down.

#include "baselines/location_service.hpp"
#include "hier/hierarchy.hpp"

namespace vs::baselines {

class TreeDirectory final : public LocationService {
 public:
  explicit TreeDirectory(const hier::ClusterHierarchy& hierarchy);

  [[nodiscard]] std::string name() const override { return "TreeDirectory"; }
  void init(RegionId start) override;
  OpCost move(RegionId to) override;
  [[nodiscard]] OpCost find(RegionId from) override;
  [[nodiscard]] RegionId evader_region() const override { return evader_; }

 private:
  /// Lowest level l with cluster(a, l) == cluster(b, l).
  [[nodiscard]] Level lca_level(RegionId a, RegionId b) const;
  /// Hop distance between the heads of the evader-chain clusters at
  /// levels l and l+1 for region u.
  [[nodiscard]] std::int64_t link_cost(RegionId u, Level l) const;

  const hier::ClusterHierarchy* hier_;
  RegionId evader_{};
};

}  // namespace vs::baselines
