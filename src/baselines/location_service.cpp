// LocationService is an interface; this TU anchors the vtable-less target.
#include "baselines/location_service.hpp"
