#include "baselines/root_directory.hpp"

#include "common/error.hpp"

namespace vs::baselines {

RootDirectory::RootDirectory(const hier::ClusterHierarchy& hierarchy)
    : hier_(&hierarchy), directory_(hierarchy.head(hierarchy.root())) {}

void RootDirectory::init(RegionId start) {
  VS_REQUIRE(!evader_.valid(), "init called twice");
  evader_ = start;
}

OpCost RootDirectory::move(RegionId to) {
  VS_REQUIRE(hier_->tiling().are_neighbors(evader_, to), "non-neighbour move");
  evader_ = to;
  // One update message from the evader's region to the directory.
  const auto d =
      static_cast<std::int64_t>(hier_->tiling().distance(to, directory_));
  return OpCost{d, 1, d};
}

OpCost RootDirectory::find(RegionId from) {
  // Query to the directory, then delivery to the evader's region.
  const auto& t = hier_->tiling();
  const auto up = static_cast<std::int64_t>(t.distance(from, directory_));
  const auto down =
      static_cast<std::int64_t>(t.distance(directory_, evader_));
  return OpCost{up + down, 2, up + down};
}

}  // namespace vs::baselines
