// Timer is header-only; this TU anchors the target.
#include "sim/timer.hpp"
