#include "sim/shard_executor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vs::sim {

ShardExecutor::ShardExecutor(Scheduler& sched, int lanes, Duration lookahead,
                             Level max_level)
    : sched_(&sched), lookahead_(lookahead) {
  VS_REQUIRE(lanes >= 1, "need at least one lane, got " << lanes);
  VS_REQUIRE(lookahead > Duration::zero(),
             "conservative lookahead must be positive, got " << lookahead);
  lanes_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    auto ln = std::make_unique<Lane>(max_level);
    ln->ctx.index = i;
    lanes_.push_back(std::move(ln));
  }
}

ShardExecutor::~ShardExecutor() {
  {
    std::lock_guard lk(mu_);
    quit_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

EventQueue& ShardExecutor::lane_queue(std::int32_t lane) {
  VS_DCHECK(lane >= 0 && lane < lanes(), "lane index out of range");
  return lanes_[static_cast<std::size_t>(lane)]->ctx.queue;
}

std::size_t ShardExecutor::lane_pending() const {
  std::size_t n = 0;
  for (const auto& lp : lanes_) n += lp->ctx.queue.size();
  return n;
}

std::uint64_t ShardExecutor::run(std::uint64_t max_events,
                                 TimePoint deadline) {
  check_poisoned();
  if (gate_ && gate_()) return run_parallel(max_events, deadline);
  return run_serial(max_events, deadline);
}

void ShardExecutor::check_poisoned() const {
  VS_REQUIRE(!poisoned_,
             "executor poisoned: an exception escaped a parallel window, "
             "leaving lane queues with unmerged window state — the world "
             "cannot be run further");
}

int ShardExecutor::scan_earliest(EventQueue::Head& out) const {
  int best = kNoLane;
  if (!sched_->queue_.empty()) {
    out = sched_->queue_.head();
    best = kGlobal;
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const EventQueue& q = lanes_[i]->ctx.queue;
    if (q.empty()) continue;
    const EventQueue::Head h = q.head();
    if (best == kNoLane || h.when < out.when ||
        (h.when == out.when && h.seq < out.seq)) {
      out = h;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void ShardExecutor::fire_from(int lane) {
  if (lane == kGlobal) {
    sched_->probe(kProbeQueuePopBegin, 0);
    EventQueue::Popped p = sched_->queue_.pop();
    sched_->probe(kProbeQueuePopEnd, 0);
    sched_->fire_main(std::move(p), nullptr);
    return;
  }
  Lane& ln = *lanes_[static_cast<std::size_t>(lane)];
  sched_->probe(kProbeQueuePopBegin, 0);
  EventQueue::Popped p = ln.ctx.queue.pop();
  sched_->probe(kProbeQueuePopEnd, 0);
  sched_->fire_main(std::move(p), &ln.ctx);
}

bool ShardExecutor::step_serial() {
  check_poisoned();
  EventQueue::Head h{};
  const int lane = scan_earliest(h);
  if (lane == kNoLane) return false;
  fire_from(lane);
  if (counters_ != nullptr) ++counters_->pdes().serial_events;
  return true;
}

void ShardExecutor::check_budget(std::uint64_t fired,
                                 std::uint64_t max_events, bool bounded,
                                 TimePoint deadline) const {
  if (bounded) {
    VS_REQUIRE(fired <= max_events,
               "event budget exhausted before deadline " << deadline);
  } else {
    VS_REQUIRE(fired <= max_events,
               "event budget exhausted (" << max_events
                                          << " events) — model not quiescing?");
  }
}

std::uint64_t ShardExecutor::run_serial(std::uint64_t max_events,
                                        TimePoint deadline) {
  const bool bounded = !deadline.is_never();
  std::uint64_t fired = 0;
  for (;;) {
    EventQueue::Head h{};
    const int lane = scan_earliest(h);
    if (lane == kNoLane) break;
    if (bounded && h.when > deadline) break;
    fire_from(lane);
    if (counters_ != nullptr) ++counters_->pdes().serial_events;
    ++fired;
    check_budget(fired, max_events, bounded, deadline);
  }
  return fired;
}

std::uint64_t ShardExecutor::run_parallel(std::uint64_t max_events,
                                          TimePoint deadline) {
  const bool bounded = !deadline.is_never();
  std::uint64_t fired = 0;
  for (;;) {
    EventQueue::Head h{};
    const int lane = scan_earliest(h);
    if (lane == kNoLane) break;
    if (bounded && h.when > deadline) break;
    if (lane == kGlobal) {
      // Global-queue events (driver-context schedules: client injections,
      // bench drivers) are serial sync points between windows.
      sched_->fire_main(sched_->queue_.pop(), nullptr);
      ++fired;
      if (counters_ != nullptr) {
        ++counters_->pdes().global_syncs;
        ++counters_->pdes().serial_events;
      }
      check_budget(fired, max_events, bounded, deadline);
      continue;
    }
    // Telemetry boundary: h is the globally earliest pending event, so
    // everything with when < h.when has fired and committed — the state
    // visible here is the exact serial prefix for any boundary <= h.when.
    if (h.when >= sched_->boundary_due_) sched_->flush_boundaries(h.when);
    // Conservative cut: the earliest lane head plus the lookahead — no
    // lane can receive a cross-shard event before that — capped by the
    // global head (must interleave serially) and the caller's deadline.
    // Events with (when, seq) lexicographically below the cut fire.
    TimePoint cut_t = h.when + lookahead_;
    std::uint64_t cut_s = 0;
    if (!sched_->queue_.empty()) {
      const EventQueue::Head g = sched_->queue_.head();
      if (g.when < cut_t) {
        cut_t = g.when;
        cut_s = g.seq;
      }
    }
    if (bounded) {
      // Lexicographic min: when the cut already sits at deadline + 1us
      // (e.g. the global head is exactly there with a positive seq), the
      // cut's seq must still drop to 0 so no lane event at that instant
      // fires — run_until's contract is "nothing with when > deadline",
      // matching the serial path exactly.
      const TimePoint cap = deadline + Duration::micros(1);
      if (cap < cut_t || (cap == cut_t && cut_s > 0)) {
        cut_t = cap;
        cut_s = 0;
      }
    }
    {
      // Cap the window at the next telemetry boundary so only events with
      // when < boundary fire before the next flush — the flush above then
      // observes exactly the serial sample prefix. The boundary strictly
      // exceeds h.when (just flushed past it), so the window still fires
      // at least one event and cannot stall.
      const TimePoint bd = sched_->boundary_due_;
      if (bd < cut_t || (bd == cut_t && cut_s > 0)) {
        cut_t = bd;
        cut_s = 0;
      }
    }
    // The cut strictly exceeds the earliest lane head in (when, seq)
    // order (lookahead > 0; the global/deadline caps only apply past it),
    // so every window fires at least one event — no stall loop.
    launch_window(cut_t, cut_s);
    await_window();
    for (auto& lp : lanes_) {
      if (lp->error) {
        std::exception_ptr e = lp->error;
        lp->error = nullptr;
        // The window's side effects were never merged: lane queues hold
        // unresolved temp seqs and other lanes' staged sends are still
        // pending. The world cannot be run further — poison the executor
        // so reuse fails fast instead of firing corrupted orderings.
        poisoned_ = true;
        std::rethrow_exception(e);
      }
    }
    fired += merge_and_commit();
    check_budget(fired, max_events, bounded, deadline);
  }
  return fired;
}

void ShardExecutor::start_workers() {
  if (!workers_.empty() || lanes_.size() <= 1) return;
  workers_.reserve(lanes_.size() - 1);
  for (int i = 1; i < lanes(); ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void ShardExecutor::launch_window(TimePoint cut_time, std::uint64_t cut_seq) {
  start_workers();
  {
    std::lock_guard lk(mu_);
    cut_time_ = cut_time;
    cut_seq_ = cut_seq;
    running_ = static_cast<int>(lanes_.size()) - 1;
    ++window_gen_;
  }
  cv_start_.notify_all();
  run_lane_window(*lanes_[0]);  // the driver thread doubles as lane 0
}

void ShardExecutor::await_window() {
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return running_ == 0; });
}

void ShardExecutor::worker_main(int lane) {
  std::uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock lk(mu_);
      cv_start_.wait(lk, [&] { return quit_ || window_gen_ != seen_gen; });
      if (quit_) return;
      seen_gen = window_gen_;
    }
    run_lane_window(*lanes_[static_cast<std::size_t>(lane)]);
    {
      std::lock_guard lk(mu_);
      --running_;
      if (running_ == 0) cv_done_.notify_all();
    }
  }
}

void ShardExecutor::run_lane_window(Lane& ln) {
  LaneCtx& ctx = ln.ctx;
  const TimePoint cut_t = cut_time_;
  const std::uint64_t cut_s = cut_seq_;
  ln.temp_base = ctx.next_temp;
  ln.fired.clear();
  ln.merge_pos = 0;
  ln.trace_buf.clear();
  ctx.children.clear();
  ln.had_pending = !ctx.queue.empty();
  // Bind the lane and the thread-local observability redirects: every
  // record the lane's events produce lands in lane-local buffers the
  // barrier folds back deterministically.
  g_lane_binding = LaneBinding{&ctx, true};
  if (counters_ != nullptr) {
    stats::WorkCounters::set_thread_redirect(counters_, &ln.counters);
  }
  if (trace_ != nullptr) {
    obs::TraceRecorder::set_thread_redirect(trace_, &ln.trace_buf);
  }
  if (ledger_ != nullptr) {
    obs::OpLedger::set_thread_redirect(ledger_, &ln.ledger);
  }
  // Lane threads never reach the scheduler's probe (windows fire inline,
  // not through fire_main), so the lane's wall-clock scopes are opened
  // here: one kWindow root for the slice, one kFire child per event.
  const bool prof_on = prof_ != nullptr && prof_->enabled();
  if (prof_on) {
    obs::Profiler::set_thread_redirect(prof_, &ln.prof);
    obs::Profiler::begin_scope(ln.prof, obs::ProfDomain::kWindow);
  }
  if (lane_bind_) lane_bind_(ctx.index);
  try {
    while (!ctx.queue.empty()) {
      const EventQueue::Head h = ctx.queue.head();
      if (h.when > cut_t || (h.when == cut_t && h.seq >= cut_s)) break;
      EventQueue::Popped p = ctx.queue.pop();
      ctx.now = p.when;
      ctx.current_seq = p.seq;
      ctx.current_cause = p.cause;
      Fired f{};
      f.when = p.when;
      f.seq = p.seq;
      f.cause = p.cause;
      f.trace_begin = static_cast<std::uint32_t>(ln.trace_buf.size());
      f.child_begin = static_cast<std::uint32_t>(ctx.children.size());
      if (prof_on) obs::Profiler::begin_scope(ln.prof, obs::ProfDomain::kFire);
      p.action();
      if (prof_on) obs::Profiler::end_scope(ln.prof);
      f.trace_end = static_cast<std::uint32_t>(ln.trace_buf.size());
      f.child_end = static_cast<std::uint32_t>(ctx.children.size());
      ln.fired.push_back(f);
      ctx.current_seq = 0;
      ctx.current_cause = 0;
    }
  } catch (...) {
    ln.error = std::current_exception();
  }
  if (lane_unbind_) lane_unbind_(ctx.index);
  if (prof_on) {
    // Drain the window frame — and, on the exception path, whatever scope
    // the throw left open above it (the world is poisoned either way; the
    // sidecar just keeps its conservation invariant).
    while (!ln.prof.stack.empty()) obs::Profiler::end_scope(ln.prof);
    obs::Profiler::set_thread_redirect(nullptr, nullptr);
  }
  if (ledger_ != nullptr) obs::OpLedger::set_thread_redirect(nullptr, nullptr);
  if (trace_ != nullptr) {
    obs::TraceRecorder::set_thread_redirect(nullptr, nullptr);
  }
  if (counters_ != nullptr) {
    stats::WorkCounters::set_thread_redirect(nullptr, nullptr);
  }
  g_lane_binding = LaneBinding{};
}

std::uint64_t ShardExecutor::resolve(std::uint64_t seq) const {
  if (!is_temp_seq(seq)) return seq;
  const Lane& src = *lanes_[static_cast<std::size_t>(temp_seq_lane(seq))];
  const std::uint64_t real = src.real_of[static_cast<std::size_t>(
      temp_seq_counter(seq) - src.temp_base)];
  VS_DCHECK(real != 0, "unresolved temp sequence number");
  return real;
}

std::uint64_t ShardExecutor::merge_and_commit() {
  // The replay-merge. Lane logs are already (when, seq)-sorted (each lane
  // fired in order), so a K-way merge visits fired events in exactly the
  // serial firing order; handing each merged event's children the next
  // real sequence numbers reproduces the serial counter bit-for-bit. A
  // log head's own seq is always resolvable: if it is a temp, its parent
  // fired earlier in the same lane's log and has already been merged.
  const bool prof_on = prof_ != nullptr && prof_->enabled();
  if (prof_on) {
    obs::Profiler::begin_scope(prof_->buf(), obs::ProfDomain::kBarrier);
  }
  for (auto& lp : lanes_) {
    lp->real_of.assign(
        static_cast<std::size_t>(lp->ctx.next_temp - lp->temp_base), 0);
  }
  std::uint64_t merged = 0;
  TimePoint last_when = TimePoint::zero();
  const bool trace_on = trace_ != nullptr;
  for (;;) {
    Lane* best = nullptr;
    TimePoint best_when = TimePoint::zero();
    std::uint64_t best_seq = 0;
    for (auto& lp : lanes_) {
      if (lp->merge_pos >= lp->fired.size()) continue;
      const Fired& f = lp->fired[lp->merge_pos];
      const std::uint64_t rs = resolve(f.seq);
      if (best == nullptr || f.when < best_when ||
          (f.when == best_when && rs < best_seq)) {
        best = lp.get();
        best_when = f.when;
        best_seq = rs;
      }
    }
    if (best == nullptr) break;
    const Fired& f = best->fired[best->merge_pos++];
    for (std::uint32_t c = f.child_begin; c < f.child_end; ++c) {
      const std::uint64_t temp = best->ctx.children[c];
      best->real_of[static_cast<std::size_t>(temp_seq_counter(temp) -
                                             best->temp_base)] =
          sched_->next_seq_++;
    }
    if (trace_on) {
      const std::uint64_t rc = resolve(f.cause);
      for (std::uint32_t t = f.trace_begin; t < f.trace_end; ++t) {
        obs::TraceEvent e = best->trace_buf[t];
        e.seq = best_seq;
        e.cause = rc;
        trace_->append(e);
      }
    }
    last_when = f.when;
    ++merged;
  }
  // Rewrite still-pending window-created events to their real seqs FIRST
  // (resolve is monotone over each queue's temps at equal times, and the
  // fresh reals exceed every pre-window real, so the in-place rewrite
  // preserves heap order), THEN commit staged cross-lane sends: their
  // push_heap now compares real seqs against real seqs, so a staged send
  // and a window-created local event colliding at the same microsecond
  // land in merged-sequence order. (Committing before renumber would
  // position the staged entry against huge temp values that renumber
  // later shrinks in place — a heap-invariant violation whenever a temp
  // resolves below the staged entry's seq at the same timestamp.)
  // Finally fold lane-local accounting into the world objects in lane
  // order.
  for (auto& lp : lanes_) {
    lp->ctx.queue.renumber([this](std::uint64_t t) { return resolve(t); });
  }
  if (counters_ != nullptr &&
      counters_->pdes().lanes.size() < lanes_.size()) {
    counters_->pdes().lanes.resize(lanes_.size());
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lp = *lanes_[i];
    for (StagedCrossEvent& s : lp.ctx.staged) {
      Lane& dest = *lanes_[static_cast<std::size_t>(s.dest)];
      dest.ctx.queue.push_with_seq(s.when, std::move(s.action),
                                   resolve(s.temp_seq), resolve(s.cause),
                                   s.dest);
      if (counters_ != nullptr) {
        ++counters_->pdes().cross_shard_events;
        ++counters_->pdes().lanes[i].cross_sends;
      }
    }
    lp.ctx.staged.clear();
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& ln = *lanes_[i];
    if (counters_ != nullptr) {
      counters_->accumulate(ln.counters);
      ln.counters.reset();
    }
    if (ledger_ != nullptr) ledger_->merge_ops_from(ln.ledger);
    if (prof_on) prof_->merge_lane(ln.prof);
    if (lane_fold_) lane_fold_(static_cast<int>(i));
  }
  if (counters_ != nullptr) {
    stats::PdesCounters& p = counters_->pdes();
    ++p.windows;
    p.window_events += static_cast<std::int64_t>(merged);
    std::size_t critical = 0;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const Lane& ln = *lanes_[i];
      critical = std::max(critical, ln.fired.size());
      stats::PdesLaneStats& ls = p.lanes[i];
      ls.events += static_cast<std::int64_t>(ln.fired.size());
      if (!ln.fired.empty()) ++ls.busy_windows;
      if (ln.had_pending && ln.fired.empty()) {
        ++p.horizon_stalls;
        ++ls.stalls;
      }
    }
    p.critical_path_events += static_cast<std::int64_t>(critical);
  }
  sched_->events_fired_ += merged;
  if (merged != 0 && last_when > sched_->now_) sched_->now_ = last_when;
  if (barrier_hook_) barrier_hook_(sched_->now_);
  if (prof_on) {
    obs::Profiler::end_scope(prof_->buf());
    // Every barrier commit is a snapshot point: sharded runs get a
    // virtual-time series even though their fires bypass the probe.
    prof_->snapshot_now(sched_->now_.count());
  }
  return merged;
}

}  // namespace vs::sim
