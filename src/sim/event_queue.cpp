#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace vs::sim {

EventId EventQueue::push(TimePoint when, Action action) {
  VS_REQUIRE(!when.is_never(), "cannot schedule an event at ∞");
  VS_REQUIRE(static_cast<bool>(action), "empty event action");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  actions_.emplace(seq, std::move(action));
  ++live_count_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto erased = actions_.erase(id.value());
  if (erased != 0) --live_count_;
  return erased != 0;
}

void EventQueue::skim() const {
  while (!heap_.empty() && !actions_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  skim();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  skim();
  VS_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_.top().when;
}

EventQueue::Action EventQueue::pop(TimePoint& when) {
  skim();
  VS_REQUIRE(!heap_.empty(), "pop on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.seq);
  Action action = std::move(it->second);
  actions_.erase(it);
  --live_count_;
  when = top.when;
  return action;
}

}  // namespace vs::sim
