#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vs::sim {

EventId EventQueue::push(TimePoint when, Action action, std::uint64_t cause) {
  return push_with_seq(when, std::move(action), next_seq_++, cause, -1);
}

EventId EventQueue::push_with_seq(TimePoint when, Action action,
                                  std::uint64_t seq, std::uint64_t cause,
                                  std::int32_t lane) {
  VS_REQUIRE(!when.is_never(), "cannot schedule an event at ∞");
  VS_REQUIRE(static_cast<bool>(action), "empty event action");
  VS_REQUIRE(seq != 0, "sequence number 0 is reserved for 'no event'");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.seq = seq;
  s.cause = cause;
  s.alias = 0;
  heap_.push_back(Entry{when, seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return EventId{seq, slot, lane};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid() || id.slot_ >= slots_.size()) return false;
  Slot& s = slots_[id.slot_];
  // A renumbered event's slot keeps its original temp id as the alias so
  // handles taken out during the window still match here.
  if (s.seq != id.seq_ && !(s.alias != 0 && s.alias == id.seq_)) {
    return false;  // already fired or cancelled
  }
  s.action.reset();
  s.seq = 0;
  s.alias = 0;
  free_slots_.push_back(id.slot_);
  --live_count_;
  return true;
}

void EventQueue::skim() const {
  // A heap entry whose slot generation moved on is a tombstone: the event
  // was cancelled (and its slot possibly reused by a later event).
  while (!heap_.empty() &&
         slots_[heap_.front().slot].seq != heap_.front().seq) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  skim();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  skim();
  VS_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_.front().when;
}

EventQueue::Head EventQueue::head() const {
  skim();
  VS_REQUIRE(!heap_.empty(), "head on empty queue");
  return Head{heap_.front().when, heap_.front().seq};
}

EventQueue::Action EventQueue::pop(TimePoint& when) {
  Popped p = pop();
  when = p.when;
  return std::move(p.action);
}

EventQueue::Popped EventQueue::pop() {
  skim();
  VS_REQUIRE(!heap_.empty(), "pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry top = heap_.back();
  heap_.pop_back();
  Slot& s = slots_[top.slot];
  Popped p{std::move(s.action), top.when, top.seq, s.cause};
  s.seq = 0;
  s.alias = 0;
  free_slots_.push_back(top.slot);
  --live_count_;
  return p;
}

}  // namespace vs::sim
