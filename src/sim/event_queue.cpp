#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace vs::sim {

EventId EventQueue::push(TimePoint when, Action action, std::uint64_t cause) {
  VS_REQUIRE(!when.is_never(), "cannot schedule an event at ∞");
  VS_REQUIRE(static_cast<bool>(action), "empty event action");
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.seq = seq;
  s.cause = cause;
  heap_.push(Entry{when, seq, slot});
  ++live_count_;
  return EventId{seq, slot};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid() || id.slot_ >= slots_.size()) return false;
  Slot& s = slots_[id.slot_];
  if (s.seq != id.seq_) return false;  // already fired or cancelled
  s.action.reset();
  s.seq = 0;
  free_slots_.push_back(id.slot_);
  --live_count_;
  return true;
}

void EventQueue::skim() const {
  // A heap entry whose slot generation moved on is a tombstone: the event
  // was cancelled (and its slot possibly reused by a later event).
  while (!heap_.empty() && slots_[heap_.top().slot].seq != heap_.top().seq) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  skim();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  skim();
  VS_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_.top().when;
}

EventQueue::Action EventQueue::pop(TimePoint& when) {
  Popped p = pop();
  when = p.when;
  return std::move(p.action);
}

EventQueue::Popped EventQueue::pop() {
  skim();
  VS_REQUIRE(!heap_.empty(), "pop on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  Slot& s = slots_[top.slot];
  Popped p{std::move(s.action), top.when, top.seq, s.cause};
  s.seq = 0;
  free_slots_.push_back(top.slot);
  --live_count_;
  return p;
}

}  // namespace vs::sim
