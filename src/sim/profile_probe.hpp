#pragma once
// Scheduler-side profiling probe contract.
//
// sim/ sits below obs/, so the scheduler cannot name obs::Profiler; like
// the post-step and boundary hooks it takes a raw function pointer plus
// context, and obs::Profiler::probe_thunk implements it. The phases pair
// up around the two per-event costs the fire loop owns: the event-queue
// pop and the event action itself. Everything finer-grained (delivery,
// tracker handlers, telemetry) self-scopes at its own layer.
//
// Cost: compiled out (-DVINESTALK_PROFILE=OFF) the call sites are
// `if constexpr` dead code — the fire loop is byte-for-byte the
// unprofiled one. Compiled in but unset: one null test per phase site.
// Set but disabled: the null test plus one bool load through
// `enabled_flag` (the profiler's runtime gate lives at the profiler so
// enable()/disable() never re-arm the scheduler).

#include <cstdint>

namespace vs::sim {

#if defined(VINESTALK_PROFILE) && VINESTALK_PROFILE
inline constexpr bool kProfileProbeCompiled = true;
#else
inline constexpr bool kProfileProbeCompiled = false;
#endif

inline constexpr int kProbeQueuePopBegin = 0;
inline constexpr int kProbeQueuePopEnd = 1;
inline constexpr int kProbeFireBegin = 2;
inline constexpr int kProbeFireEnd = 3;

/// `t_us` is the virtual time of the fired event on fire phases (the
/// snapshot clock), 0 on queue phases.
using ProfileProbe = void (*)(void* ctx, int phase, std::int64_t t_us);

}  // namespace vs::sim
