#pragma once
// ShardExecutor — region-sharded intra-world parallel execution.
//
// The paper's C-gcast delay constants give every VSA→VSA message a latency
// of at least (δ + e) (the per-level multipliers (a)–(c) only grow it, and
// n(0) = 1 region-hops is the minimum). That floor is a classic
// Chandy–Misra lookahead: if every shard has processed all its events up
// to time T, no shard can receive a new cross-shard event before T + (δ+e).
// The executor exploits it with a conservative *window barrier*:
//
//   1. cut = min over lane queue heads of (head.when + lookahead), capped
//      by the global queue's head (a serial sync point) and the caller's
//      deadline;
//   2. every lane fires its events with (when, seq) < cut in parallel, one
//      thread per lane, scheduling with per-lane temp sequence numbers and
//      staging cross-lane sends;
//   3. the barrier replays the lanes' fired logs in (when, seq) merge
//      order, handing out real sequence numbers to each fired event's
//      children exactly as the serial run's counter would have, then
//      renumbers pending events, commits staged sends (in that order, so
//      staged entries heapify against real seqs only), flushes per-lane
//      trace buffers in merged order, and folds lane-local accounting into
//      the world's objects in lane order.
//
// Because the replay assigns identical sequence numbers and the fold order
// is fixed, the merged trace, counters, ledger, and metrics are
// byte-identical to the serial run at every shard count — the property
// tests/test_shard.cpp pins.
//
// Worlds whose configuration couldn't tolerate interleaving (monitors
// reading cross-lane state each step, fault injection, stabilizers) are
// routed by the parallel gate to a *serial* path: one thread fires the
// globally earliest event across all queues — exact legacy semantics over
// partitioned storage.
//
// Layering note: sim/ otherwise sits below obs/ and stats/; this one
// translation unit is the sanctioned exception, because the barrier is
// precisely the place where lane-local observability state rejoins the
// world. The dependencies run through narrow bind_* pointers and stay
// nullable.

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

#include "common/ids.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/profile/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/lane.hpp"
#include "sim/scheduler.hpp"
#include "stats/counters.hpp"

namespace vs::sim {

class ShardExecutor {
 public:
  /// `lookahead` is the conservative horizon — the minimum cross-shard
  /// delivery delay, (δ + e) for the paper's C-gcast. `max_level` sizes
  /// the per-lane counter shapes (must match the world's WorkCounters).
  ShardExecutor(Scheduler& sched, int lanes, Duration lookahead,
                Level max_level);
  ~ShardExecutor();
  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  [[nodiscard]] int lanes() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  [[nodiscard]] EventQueue& lane_queue(std::int32_t lane);
  /// Live events across all lane queues (the scheduler adds its global
  /// queue on top for pending()).
  [[nodiscard]] std::size_t lane_pending() const;

  /// World-level sinks the barrier folds lane-local state into. All
  /// nullable; bind before the first sharded run touching each subsystem.
  void bind_counters(stats::WorkCounters* counters) { counters_ = counters; }
  void bind_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  void bind_ledger(obs::OpLedger* ledger) { ledger_ = ledger; }
  /// Wall-clock profiler: lane threads accumulate into lane-local ProfBufs
  /// (kWindow root scopes) through the same redirect idiom as the trace,
  /// and the barrier folds them into the main buffer — sums only, so the
  /// nondeterministic values merge without any replay ordering.
  void bind_profiler(obs::Profiler* prof) { prof_ = prof; }

  /// Parallel-eligibility gate, consulted once per run(): when it returns
  /// false (or none is set) the run takes the serial path. The network
  /// wires world conditions through this (post-step monitors, fault
  /// injection, stabilizers, directories — anything that must observe a
  /// single global interleaving).
  void set_parallel_gate(std::function<bool()> gate) {
    gate_ = std::move(gate);
  }

  /// Per-lane extension hooks for owner state the executor doesn't know
  /// about (the network's per-find accumulators): `bind(lane)` runs on the
  /// lane's thread as its window slice starts, `unbind(lane)` as it ends,
  /// and `fold(lane)` on the driver thread at the barrier, in lane order.
  void set_lane_hooks(std::function<void(int)> bind,
                      std::function<void(int)> unbind,
                      std::function<void(int)> fold) {
    lane_bind_ = std::move(bind);
    lane_unbind_ = std::move(unbind);
    lane_fold_ = std::move(fold);
  }

  /// Runs on the driver thread after each barrier commit with the
  /// committed world clock (C-gcast prunes delivered in-flight rows here).
  void set_barrier_hook(std::function<void(TimePoint)> hook) {
    barrier_hook_ = std::move(hook);
  }

  // ---- Scheduler delegation (Scheduler::run/run_until/step/pending) ----

  /// Run to quiescence or `deadline` (never() = unbounded). Throws the
  /// scheduler's budget error past `max_events`. If an exception escapes
  /// a parallel window (a lane action threw), the window's side effects
  /// are never merged and the executor is poisoned: every later run/step
  /// throws rather than firing corrupted orderings.
  std::uint64_t run(std::uint64_t max_events, TimePoint deadline);

  /// Fire the single globally earliest event (always serial — the
  /// watchdog's step path). Returns false if nothing is pending.
  bool step_serial();

 private:
  /// One fired window event, with the ranges of trace records and child
  /// temp ids it produced — the barrier's replay unit.
  struct Fired {
    TimePoint when;
    std::uint64_t seq;    // temp (created this window) or real
    std::uint64_t cause;  // temp or real
    std::uint32_t trace_begin, trace_end;  // range in Lane::trace_buf
    std::uint32_t child_begin, child_end;  // range in LaneCtx::children
  };

  struct Lane {
    explicit Lane(Level max_level) : counters(max_level) {}
    LaneCtx ctx;
    std::vector<obs::TraceEvent> trace_buf;
    stats::WorkCounters counters;
    obs::OpLedger ledger;
    obs::ProfBuf prof;
    std::vector<Fired> fired;
    std::uint64_t temp_base = 0;  // ctx.next_temp at window start
    /// temp counter − temp_base → merged real seq (0 = not yet assigned).
    std::vector<std::uint64_t> real_of;
    std::size_t merge_pos = 0;
    bool had_pending = false;  // queue non-empty at window start
    std::exception_ptr error;
  };

  static constexpr int kNoLane = -2;  // scan result: all queues empty
  static constexpr int kGlobal = -1;

  std::uint64_t run_parallel(std::uint64_t max_events, TimePoint deadline);
  std::uint64_t run_serial(std::uint64_t max_events, TimePoint deadline);
  /// Earliest (when, seq) across global + lane queues; returns the owning
  /// lane index, kGlobal, or kNoLane.
  int scan_earliest(EventQueue::Head& out) const;
  void fire_from(int lane);  // pop + fire_main from that queue
  void run_lane_window(Lane& ln);
  std::uint64_t merge_and_commit();
  [[nodiscard]] std::uint64_t resolve(std::uint64_t seq) const;
  void start_workers();
  void launch_window(TimePoint cut_time, std::uint64_t cut_seq);
  void await_window();
  void worker_main(int lane);
  void check_budget(std::uint64_t fired, std::uint64_t max_events,
                    bool bounded, TimePoint deadline) const;
  void check_poisoned() const;

  Scheduler* sched_;
  Duration lookahead_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // stable LaneCtx addresses
  /// Set when an exception escapes a parallel window (unmerged temp state
  /// left in the lane queues); run/step refuse to fire anything after.
  bool poisoned_ = false;

  stats::WorkCounters* counters_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::OpLedger* ledger_ = nullptr;
  obs::Profiler* prof_ = nullptr;
  std::function<bool()> gate_;
  std::function<void(int)> lane_bind_, lane_unbind_, lane_fold_;
  std::function<void(TimePoint)> barrier_hook_;

  // Generation barrier for the worker pool (mutex + condvars; every lane
  // handoff is sequenced through mu_, which is what keeps TSan quiet).
  // Lane 0 always runs on the driver thread; workers cover lanes 1..K-1
  // and are started lazily at the first parallel window.
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::uint64_t window_gen_ = 0;
  int running_ = 0;
  bool quit_ = false;
  TimePoint cut_time_ = TimePoint::zero();
  std::uint64_t cut_seq_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace vs::sim
