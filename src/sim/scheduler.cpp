#include "sim/scheduler.hpp"

#include "common/error.hpp"

namespace vs::sim {

EventId Scheduler::schedule_after(Duration delay, Action action) {
  VS_REQUIRE(delay >= Duration::zero(),
             "negative delay " << delay << " at " << now_);
  return queue_.push(now_ + delay, std::move(action), current_seq_);
}

EventId Scheduler::schedule_at(TimePoint when, Action action) {
  VS_REQUIRE(when >= now_, "scheduling into the past: " << when << " < " << now_);
  return queue_.push(when, std::move(action), current_seq_);
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  EventQueue::Popped p = queue_.pop();
  VS_DCHECK(p.when >= now_, "event queue time went backwards");
  now_ = p.when;
  ++events_fired_;
  // Save/restore so a nested run() inside an action (rare, but legal in
  // tests) doesn't clobber the outer firing context.
  const std::uint64_t saved_seq = current_seq_;
  const std::uint64_t saved_cause = current_cause_;
  current_seq_ = p.seq;
  current_cause_ = p.cause;
  p.action();
  current_seq_ = saved_seq;
  current_cause_ = saved_cause;
  if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  return true;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (step()) {
    ++fired;
    VS_REQUIRE(fired <= max_events,
               "event budget exhausted (" << max_events
                                          << " events) — model not quiescing?");
  }
  return fired;
}

std::uint64_t Scheduler::run_until(TimePoint deadline,
                                   std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++fired;
    VS_REQUIRE(fired <= max_events,
               "event budget exhausted before deadline " << deadline);
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace vs::sim
