#include "sim/scheduler.hpp"

#include "common/error.hpp"
#include "sim/shard_executor.hpp"

namespace vs::sim {

EventId Scheduler::schedule_after(Duration delay, Action action) {
  VS_REQUIRE(delay >= Duration::zero(),
             "negative delay " << delay << " at " << now());
  return schedule_at(now() + delay, std::move(action));
}

EventId Scheduler::schedule_at(TimePoint when, Action action) {
  LaneBinding& b = g_lane_binding;
  if (b.parallel) {
    // Parallel window: the event belongs to the firing lane. Hand out a
    // temp id, note it for the barrier's replay (which assigns the real
    // sequence number exactly as the serial run's counter would have).
    LaneCtx& l = *b.lane;
    VS_REQUIRE(when >= l.now,
               "scheduling into the past: " << when << " < " << l.now);
    const std::uint64_t temp = make_temp_seq(l.index, l.next_temp++);
    l.children.push_back(temp);
    return l.queue.push_with_seq(when, std::move(action), temp, l.current_seq,
                                 l.index);
  }
  VS_REQUIRE(when >= now_,
             "scheduling into the past: " << when << " < " << now_);
  if (b.lane != nullptr) {
    // Sharded serial interleaving: keep handler-scheduled events (timer
    // arms, replies) in the handler's own lane so later parallel windows
    // find every lane-owned event already partitioned — and so lane code
    // never mutates the global queue.
    LaneCtx& l = *b.lane;
    return l.queue.push_with_seq(when, std::move(action), next_seq_++,
                                 current_seq_, l.index);
  }
  if (exec_ != nullptr) {
    // Driver-context scheduling in a sharded world: the global queue, a
    // serial sync point between windows.
    return queue_.push_with_seq(when, std::move(action), next_seq_++,
                                current_seq_, -1);
  }
  return queue_.push(when, std::move(action), current_seq_);
}

void Scheduler::schedule_cross(std::int32_t dest_lane, Duration delay,
                               Action action) {
  VS_REQUIRE(delay >= Duration::zero(),
             "negative delay " << delay << " at " << now());
  LaneBinding& b = g_lane_binding;
  if (b.parallel) {
    LaneCtx& l = *b.lane;
    const std::uint64_t temp = make_temp_seq(l.index, l.next_temp++);
    l.children.push_back(temp);
    if (dest_lane == l.index) {
      l.queue.push_with_seq(l.now + delay, std::move(action), temp,
                            l.current_seq, l.index);
      return;
    }
    // Cross-lane: staged for the barrier. The conservative-window safety
    // argument needs the arrival to land at or past the cut — a
    // below-horizon send would be staged past events it should precede,
    // silently reordering causality, so this stays checked in release.
    VS_REQUIRE(exec_ == nullptr || delay >= exec_->lookahead(),
               "cross-shard send below the lookahead horizon: "
                   << delay << " < " << exec_->lookahead());
    l.staged.push_back(StagedCrossEvent{temp, l.current_seq, dest_lane,
                                        l.now + delay, std::move(action)});
    return;
  }
  if (exec_ != nullptr) {
    exec_->lane_queue(dest_lane)
        .push_with_seq(now_ + delay, std::move(action), next_seq_++,
                       current_seq_, dest_lane);
    return;
  }
  schedule_after(delay, std::move(action));
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const LaneBinding& b = g_lane_binding;
  if (b.parallel) {
    // Inside a parallel window only the firing lane's own queue may be
    // mutated: cancelling a global-queue event (lane -1) or another
    // lane's event would race its owning thread.
    VS_REQUIRE(id.lane() == b.lane->index,
               "parallel-window cancel crossing lanes: event owned by lane "
                   << id.lane() << ", firing lane is " << b.lane->index);
    return b.lane->queue.cancel(id);
  }
  if (id.lane() >= 0 && exec_ != nullptr) {
    return exec_->lane_queue(id.lane()).cancel(id);
  }
  return queue_.cancel(id);
}

void Scheduler::attach_executor(ShardExecutor* exec) {
  exec_ = exec;
  // Continue the queue's internal counter so pre-attach and post-attach
  // sequence numbers form one stream (causality stays globally ordered).
  if (exec_ != nullptr) next_seq_ = queue_.next_seq();
}

void Scheduler::flush_boundaries(TimePoint upto) {
  // The hook emits every due boundary <= upto in one call and returns the
  // next due strictly past it (or never() to disarm) — one call per
  // crossing, however many boundaries the gap spans.
  const TimePoint next = boundary_hook_(boundary_ctx_, upto);
  VS_DCHECK(next > upto, "boundary hook did not advance past upto");
  boundary_due_ = next;
}

void Scheduler::fire_main(EventQueue::Popped p, LaneCtx* serial_lane) {
  VS_DCHECK(p.when >= now_, "event queue time went backwards");
  // Pre-fire boundary check: the event about to fire is the earliest
  // pending one, so state right now is "everything with when < p.when has
  // fired" — the exact sample prefix for any boundary <= p.when.
  if (p.when >= boundary_due_) flush_boundaries(p.when);
  now_ = p.when;
  ++events_fired_;
  const std::uint64_t saved_seq = current_seq_;
  const std::uint64_t saved_cause = current_cause_;
  const LaneBinding saved_bind = g_lane_binding;
  current_seq_ = p.seq;
  current_cause_ = p.cause;
  g_lane_binding = LaneBinding{serial_lane, false};
  probe(kProbeFireBegin, p.when.count());
  p.action();
  probe(kProbeFireEnd, p.when.count());
  g_lane_binding = saved_bind;
  current_seq_ = saved_seq;
  current_cause_ = saved_cause;
  if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
}

bool Scheduler::step() {
  if (exec_ != nullptr) return exec_->step_serial();
  if (queue_.empty()) return false;
  probe(kProbeQueuePopBegin, 0);
  EventQueue::Popped p = queue_.pop();
  probe(kProbeQueuePopEnd, 0);
  VS_DCHECK(p.when >= now_, "event queue time went backwards");
  if (p.when >= boundary_due_) flush_boundaries(p.when);
  now_ = p.when;
  ++events_fired_;
  // Save/restore so a nested run() inside an action (rare, but legal in
  // tests) doesn't clobber the outer firing context.
  const std::uint64_t saved_seq = current_seq_;
  const std::uint64_t saved_cause = current_cause_;
  current_seq_ = p.seq;
  current_cause_ = p.cause;
  probe(kProbeFireBegin, p.when.count());
  p.action();
  probe(kProbeFireEnd, p.when.count());
  current_seq_ = saved_seq;
  current_cause_ = saved_cause;
  if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  return true;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  if (exec_ != nullptr) return exec_->run(max_events, TimePoint::never());
  std::uint64_t fired = 0;
  while (step()) {
    ++fired;
    VS_REQUIRE(fired <= max_events,
               "event budget exhausted (" << max_events
                                          << " events) — model not quiescing?");
  }
  return fired;
}

std::uint64_t Scheduler::run_until(TimePoint deadline,
                                   std::uint64_t max_events) {
  if (exec_ != nullptr) {
    const std::uint64_t fired = exec_->run(max_events, deadline);
    if (now_ < deadline) now_ = deadline;
    if (now_ >= boundary_due_) flush_boundaries(now_);
    return fired;
  }
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++fired;
    VS_REQUIRE(fired <= max_events,
               "event budget exhausted before deadline " << deadline);
  }
  if (now_ < deadline) now_ = deadline;
  // Exit flush: boundaries between the last fired event and the deadline
  // are due now — no event will ever fire below them (same in both
  // execution modes, which is what keeps the sample streams identical).
  if (now_ >= boundary_due_) flush_boundaries(now_);
  return fired;
}

std::size_t Scheduler::pending() const {
  std::size_t n = queue_.size();
  if (exec_ != nullptr) n += exec_->lane_pending();
  return n;
}

}  // namespace vs::sim
