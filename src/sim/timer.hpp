#pragma once
// TIOA-style resettable timer.
//
// Figure 2's Tracker keeps a state variable `timer ∈ R, initially ∞`; an
// output action is enabled when `now = timer`. This class reproduces those
// semantics on the scheduler: `arm(t)` sets the variable, `disarm()` resets
// it to ∞, and the callback fires exactly when virtual time reaches the
// armed deadline (re-arming cancels the previous deadline, as assignment to
// the TIOA variable would).

#include <functional>
#include <utility>

#include "sim/scheduler.hpp"

namespace vs::sim {

class Timer {
 public:
  using Callback = std::function<void()>;

  /// `callback` fires when the armed deadline is reached.
  Timer(Scheduler& sched, Callback callback)
      : sched_(&sched), callback_(std::move(callback)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { disarm(); }

  /// Set the timer variable to `deadline` (replacing any earlier value).
  void arm(TimePoint deadline) {
    disarm();
    if (deadline.is_never()) return;
    deadline_ = deadline;
    event_ = sched_->schedule_at(deadline, [this] {
      event_ = EventId{};
      deadline_ = TimePoint::never();
      callback_();
    });
  }

  /// Arm `delay` from the scheduler's current time.
  void arm_after(Duration delay) { arm(sched_->now() + delay); }

  /// Reset the timer variable to ∞.
  void disarm() {
    if (event_.valid()) sched_->cancel(event_);
    event_ = EventId{};
    deadline_ = TimePoint::never();
  }

  /// Current value of the timer variable (∞ when disarmed).
  [[nodiscard]] TimePoint deadline() const { return deadline_; }
  [[nodiscard]] bool armed() const { return !deadline_.is_never(); }

 private:
  Scheduler* sched_;
  Callback callback_;
  EventId event_{};
  TimePoint deadline_ = TimePoint::never();
};

}  // namespace vs::sim
