#pragma once
// Discrete-event scheduler with a virtual clock.
//
// This is the execution substrate standing in for the Timed I/O Automata framework
// the paper builds on: automata register actions at future virtual times
// (message deliveries, timer expiries); the scheduler fires them in
// deterministic (time, scheduling-order) order and advances `now`.

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace vs::sim {

class Scheduler {
 public:
  using Action = EventQueue::Action;

  /// Current virtual time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `action` to run `delay` from now. Requires delay >= 0.
  EventId schedule_after(Duration delay, Action action);

  /// Schedule `action` at absolute time `when`. Requires when >= now().
  EventId schedule_at(TimePoint when, Action action);

  /// Cancel a pending event; no-op if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Fire the single earliest event. Returns false if none pending.
  bool step();

  /// Run until no events remain ("quiescence" — the paper's update
  /// termination, Theorem 4.5, manifests as this returning).
  /// Returns the number of events fired. Throws if `max_events` exceeded
  /// (guards against non-terminating models in tests).
  std::uint64_t run(std::uint64_t max_events = kDefaultEventBudget);

  /// Run events with time <= deadline; afterwards now() == deadline unless
  /// already past it. Returns number of events fired.
  std::uint64_t run_until(TimePoint deadline,
                          std::uint64_t max_events = kDefaultEventBudget);

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events fired over the scheduler's lifetime.
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

  /// Identity (queue sequence number) of the event currently firing, or 0
  /// when called from outside any event. Anything scheduled while an event
  /// fires records this as its causal parent, so a find's whole message
  /// cascade chains back to the action that issued it.
  [[nodiscard]] std::uint64_t current_seq() const { return current_seq_; }

  /// Causal parent of the event currently firing (0 at a chain root).
  [[nodiscard]] std::uint64_t current_cause() const { return current_cause_; }

  static constexpr std::uint64_t kDefaultEventBudget = 200'000'000;

  /// Observer called after every fired event (the live watchdog's clock
  /// source: virtual time only advances through here, so a post-step hook
  /// sees every cadence boundary and every quiescence edge). A raw
  /// function pointer plus context keeps the unhooked hot path at a single
  /// predictable null test — the monitor-off overhead budget. The hook
  /// must not call run()/step() re-entrantly; scheduling new events from
  /// it is allowed but breaks quiescence, so observers should only read.
  using PostStepHook = void (*)(void* ctx);
  void set_post_step_hook(PostStepHook hook, void* ctx) {
    post_step_hook_ = hook;
    post_step_ctx_ = ctx;
  }

 private:
  EventQueue queue_;
  TimePoint now_ = TimePoint::zero();
  std::uint64_t events_fired_{0};
  std::uint64_t current_seq_{0};
  std::uint64_t current_cause_{0};
  PostStepHook post_step_hook_ = nullptr;
  void* post_step_ctx_ = nullptr;
};

}  // namespace vs::sim
