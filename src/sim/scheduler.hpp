#pragma once
// Discrete-event scheduler with a virtual clock.
//
// This is the execution substrate standing in for the Timed I/O Automata framework
// the paper builds on: automata register actions at future virtual times
// (message deliveries, timer expiries); the scheduler fires them in
// deterministic (time, scheduling-order) order and advances `now`.
//
// Sharded mode: attach_executor hands run/step/pending over to a
// ShardExecutor (sim/shard_executor.hpp) that partitions events across
// per-shard lane queues and, when the world is eligible, fires windows of
// them in parallel under a conservative (Chandy–Misra-style) horizon. The
// public surface is unchanged — every entry point consults the
// thread-local lane binding (sim/lane.hpp), so model code is oblivious to
// which lane (or thread) it runs on. Worlds that never attach an executor
// take the exact legacy single-queue paths.

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/lane.hpp"
#include "sim/profile_probe.hpp"
#include "sim/time.hpp"

namespace vs::sim {

class ShardExecutor;

class Scheduler {
 public:
  using Action = EventQueue::Action;

  /// Current virtual time (the firing lane's clock inside a parallel
  /// window; the world clock otherwise).
  [[nodiscard]] TimePoint now() const {
    const LaneBinding& b = g_lane_binding;
    return b.parallel ? b.lane->now : now_;
  }

  /// Schedule `action` to run `delay` from now. Requires delay >= 0.
  EventId schedule_after(Duration delay, Action action);

  /// Schedule `action` at absolute time `when`. Requires when >= now().
  EventId schedule_at(TimePoint when, Action action);

  /// Schedule `action` into shard `dest_lane`'s queue, `delay` from now —
  /// C-gcast's sharded delivery path. In a parallel window a cross-lane
  /// send is staged for the barrier (its delay must be >= the executor's
  /// lookahead); otherwise it lands in the lane queue directly. Falls back
  /// to schedule_after when no executor is attached.
  void schedule_cross(std::int32_t dest_lane, Duration delay, Action action);

  /// Cancel a pending event; no-op if already fired/cancelled.
  bool cancel(EventId id);

  /// Fire the single earliest event. Returns false if none pending.
  bool step();

  /// Run until no events remain ("quiescence" — the paper's update
  /// termination, Theorem 4.5, manifests as this returning).
  /// Returns the number of events fired. Throws if `max_events` exceeded
  /// (guards against non-terminating models in tests).
  std::uint64_t run(std::uint64_t max_events = kDefaultEventBudget);

  /// Run events with time <= deadline; afterwards now() == deadline unless
  /// already past it. Returns number of events fired.
  std::uint64_t run_until(TimePoint deadline,
                          std::uint64_t max_events = kDefaultEventBudget);

  /// Number of pending events (across the global and all lane queues).
  [[nodiscard]] std::size_t pending() const;

  /// Total events fired over the scheduler's lifetime.
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

  /// Identity (queue sequence number) of the event currently firing, or 0
  /// when called from outside any event. Anything scheduled while an event
  /// fires records this as its causal parent, so a find's whole message
  /// cascade chains back to the action that issued it. Inside a parallel
  /// window this is the lane's temp id; the barrier rewrites every place
  /// it was recorded to the merged real value.
  [[nodiscard]] std::uint64_t current_seq() const {
    const LaneBinding& b = g_lane_binding;
    return b.parallel ? b.lane->current_seq : current_seq_;
  }

  /// Causal parent of the event currently firing (0 at a chain root).
  [[nodiscard]] std::uint64_t current_cause() const {
    const LaneBinding& b = g_lane_binding;
    return b.parallel ? b.lane->current_cause : current_cause_;
  }

  static constexpr std::uint64_t kDefaultEventBudget = 200'000'000;

  /// Observer called after every fired event (the live watchdog's clock
  /// source: virtual time only advances through here, so a post-step hook
  /// sees every cadence boundary and every quiescence edge). A raw
  /// function pointer plus context keeps the unhooked hot path at a single
  /// predictable null test — the monitor-off overhead budget. The hook
  /// must not call run()/step() re-entrantly; scheduling new events from
  /// it is allowed but breaks quiescence, so observers should only read.
  /// A sharded world with a hook installed always runs on the serial path
  /// (the hook reads cross-lane state), so it still sees every step.
  using PostStepHook = void (*)(void* ctx);
  void set_post_step_hook(PostStepHook hook, void* ctx) {
    post_step_hook_ = hook;
    post_step_ctx_ = ctx;
  }
  [[nodiscard]] bool has_post_step_hook() const {
    return post_step_hook_ != nullptr;
  }

  /// Telemetry boundary hook (obs::TelemetrySampler). Unlike the post-step
  /// hook — which observes every event and therefore forces sharded worlds
  /// onto the serial path — the boundary hook only fires when virtual time
  /// is about to cross a pre-announced boundary, so it stays compatible
  /// with parallel windows: the executor caps each window's cut at the due
  /// boundary and flushes it between windows, where the committed state is
  /// exactly the serial prefix. The hook is called with the time being
  /// crossed (`upto`) and must return the next due boundary (never() to
  /// stop). Contract: when the hook runs, every event with when < B has
  /// fired and no event with when >= B has, for every boundary B <= upto
  /// it emits — identical in serial and sharded execution. The unhooked
  /// hot-path cost is one integer compare (boundary_due_ stays never()).
  using BoundaryHook = TimePoint (*)(void* ctx, TimePoint upto);
  void set_boundary_hook(BoundaryHook hook, void* ctx, TimePoint first_due) {
    boundary_hook_ = hook;
    boundary_ctx_ = ctx;
    boundary_due_ = hook != nullptr ? first_due : TimePoint::never();
  }
  [[nodiscard]] bool has_boundary_hook() const {
    return boundary_hook_ != nullptr;
  }

  /// Wall-clock profiler probe (obs::Profiler::probe_thunk wired by
  /// TrackingNetwork::set_profiler). Phases pair around the event-queue
  /// pop and the fired action. `enabled` is the profiler's runtime gate —
  /// read here so enable()/disable() never re-arm the scheduler. Unset:
  /// one null test per phase site; compiled out (-DVINESTALK_PROFILE=OFF):
  /// the sites are `if constexpr` dead code.
  void set_profile_probe([[maybe_unused]] ProfileProbe fn,
                         [[maybe_unused]] void* ctx,
                         [[maybe_unused]] const bool* enabled) {
    if constexpr (kProfileProbeCompiled) {
      probe_ = fn;
      probe_ctx_ = ctx;
      probe_enabled_ = enabled;
    }
  }

  /// Attach (nullptr: detach) the shard executor that takes over
  /// run/step/pending. The executor must outlive the attachment; the
  /// global sequence counter picks up where the queue's internal one left
  /// off, so pre-attach and post-attach seqs form one serial stream.
  void attach_executor(ShardExecutor* exec);
  [[nodiscard]] ShardExecutor* executor() const { return exec_; }

 private:
  friend class ShardExecutor;

  /// Emit one profile-probe phase; dead code when profiling is compiled
  /// out, a null test when no probe is set, plus one bool load when the
  /// attached profiler is disabled.
  void probe([[maybe_unused]] int phase,
             [[maybe_unused]] std::int64_t t_us) const {
    if constexpr (kProfileProbeCompiled) {
      if (probe_ != nullptr && *probe_enabled_) probe_(probe_ctx_, phase, t_us);
    }
  }

  /// Fire one already-popped event on the driver thread, with the world
  /// clock and causality registers. `serial_lane` (nullable) is bound in
  /// serial mode for the action's duration so nested schedules land in the
  /// owning lane's queue.
  void fire_main(EventQueue::Popped p, LaneCtx* serial_lane);

  /// Emit every due boundary <= `upto` through the hook and advance
  /// boundary_due_ to the hook's returned next-due. Out of line: the
  /// inlined call sites only pay the compare.
  void flush_boundaries(TimePoint upto);

  EventQueue queue_;
  TimePoint now_ = TimePoint::zero();
  std::uint64_t events_fired_{0};
  std::uint64_t current_seq_{0};
  std::uint64_t current_cause_{0};
  /// Global sequence counter for sharded mode (exec_ != nullptr); the
  /// barrier's replay-merge and every non-window push draw from it.
  std::uint64_t next_seq_{1};
  PostStepHook post_step_hook_ = nullptr;
  void* post_step_ctx_ = nullptr;
  BoundaryHook boundary_hook_ = nullptr;
  void* boundary_ctx_ = nullptr;
  /// Next telemetry boundary; never() when no hook is armed, so the
  /// per-event test `when >= boundary_due_` is false on the unhooked path.
  TimePoint boundary_due_ = TimePoint::never();
  ProfileProbe probe_ = nullptr;
  void* probe_ctx_ = nullptr;
  const bool* probe_enabled_ = nullptr;
  ShardExecutor* exec_ = nullptr;
};

}  // namespace vs::sim
