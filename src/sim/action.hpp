#pragma once
// Small-buffer type-erased callable for scheduler events.
//
// Every scheduled event used to carry a std::function<void()>; the typical
// capture block (an automaton pointer plus a message payload) exceeds the
// standard library's tiny inline buffer, so the DES hot path paid one heap
// allocation per event. EventAction keeps a 48-byte inline buffer — large
// enough for every callable the simulator schedules today — and falls back
// to the heap only beyond that, counting each fallback so benches can
// assert the rate stays at zero.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace vs::sim {

class EventAction {
 public:
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  EventAction() = default;

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventAction(F&& f) {  // NOLINT(google-explicit-constructor): callables
                        // convert implicitly, like std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EventAction(EventAction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;

  ~EventAction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Destroy the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True if the held callable lives in the inline buffer.
  [[nodiscard]] bool is_inline() const {
    return ops_ != nullptr && !ops_->heap;
  }

  /// Process-wide count of heap-fallback constructions (callables larger
  /// than kInlineSize). Relaxed atomic: a bench statistic, not a sync point.
  [[nodiscard]] static std::uint64_t heap_fallbacks() {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct the callable from `from` into `to`, destroying `from`.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
    bool heap;
  };

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= kAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(static_cast<Fn*>(p)))(); },
      [](void* from, void* to) {
        Fn* src = std::launder(static_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* p) { std::launder(static_cast<Fn*>(p))->~Fn(); },
      /*heap=*/false,
  };

  template <class Fn>
  static constexpr Ops kHeapOps{
      [](void* p) { (**std::launder(static_cast<Fn**>(p)))(); },
      [](void* from, void* to) {
        Fn** src = std::launder(static_cast<Fn**>(from));
        ::new (to) Fn*(*src);
      },
      [](void* p) { delete *std::launder(static_cast<Fn**>(p)); },
      /*heap=*/true,
  };

  static inline std::atomic<std::uint64_t> heap_fallbacks_{0};

  alignas(kAlign) std::byte buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace vs::sim
