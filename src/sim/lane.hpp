#pragma once
// Per-shard execution context for region-sharded parallel simulation.
//
// A LaneCtx is one shard's slice of the scheduler: its own EventQueue, its
// own virtual clock, and — during a parallel window — the bookkeeping the
// barrier replays to reconstruct the serial world's sequence numbers
// (children, staged cross-lane sends, the temp counter). The scheduler's
// public entry points (now, schedule_after, …) consult the thread-local
// binding below, so Trackers and C-gcast run unmodified inside a lane.
//
// Two binding modes:
//  * serial (parallel = false): the shard executor's serial interleaving —
//    one thread fires the globally earliest event across all queues.
//    Scheduling from a bound handler lands in the *owning lane's* queue
//    with a real (global-counter) sequence number; clocks and causality
//    read the scheduler's main state. Semantically identical to the
//    unsharded scheduler, just partitioned storage.
//  * parallel (parallel = true): inside a conservative window. Scheduling
//    hands out per-lane temp sequence numbers (event_queue.hpp), records
//    each call in `children` for the barrier's replay-merge, and stages
//    cross-lane sends instead of touching another lane's queue.

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace vs::sim {

/// One cross-lane send staged during a parallel window; committed into the
/// destination lane's queue at the barrier with its merged real sequence
/// number. `when` is always >= the window cut (C-gcast's VSA→VSA delays
/// are all >= the lookahead), which is what makes staging safe.
struct StagedCrossEvent {
  std::uint64_t temp_seq = 0;
  std::uint64_t cause = 0;  // temp or real seq of the scheduling event
  std::int32_t dest = -1;
  TimePoint when = TimePoint::zero();
  EventAction action;
};

struct LaneCtx {
  EventQueue queue;
  /// Lane-local clock: time of the lane's last fired window event. Only
  /// meaningful while the lane is bound in parallel mode (serial mode uses
  /// the scheduler's main clock); monotone per lane.
  TimePoint now = TimePoint::zero();
  std::uint64_t current_seq = 0;
  std::uint64_t current_cause = 0;
  std::int32_t index = 0;
  /// Temp-id source for this lane's window-scheduled events. Monotone over
  /// the lane's whole lifetime — never reset — so temp ids (and the cancel
  /// aliases derived from them) are never reused.
  std::uint64_t next_temp = 1;
  /// Temp seqs handed out by the window's fired events, in creation order.
  /// The barrier replays this (per fired event, via the Fired ranges) to
  /// assign real sequence numbers exactly as the serial run would have.
  std::vector<std::uint64_t> children;
  std::vector<StagedCrossEvent> staged;
};

/// The lane the calling thread is currently executing for, plus the mode.
/// Null lane = unbound (driver code, legacy worlds).
struct LaneBinding {
  LaneCtx* lane = nullptr;
  bool parallel = false;
};

inline thread_local LaneBinding g_lane_binding{};

[[nodiscard]] inline bool in_parallel_lane() {
  return g_lane_binding.parallel;
}

}  // namespace vs::sim
