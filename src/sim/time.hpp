#pragma once
// Virtual time for the timed-automata simulation.
//
// The VSA layer (paper §II-C) is a *timed* model: message latencies are
// exact multiples of (δ + e), and the Tracker automaton's correctness rests
// on the timer inequality (1), so time arithmetic must be exact. We use
// integer microseconds, not floating point, to keep schedules deterministic
// and comparisons exact.

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace vs::sim {

/// A span of virtual time, in integer microseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t micros) : micros_(micros) {}

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration micros(std::int64_t n) { return Duration{n}; }
  static constexpr Duration millis(std::int64_t n) { return Duration{n * 1000}; }
  static constexpr Duration seconds(std::int64_t n) {
    return Duration{n * 1000000};
  }

  [[nodiscard]] constexpr std::int64_t count() const { return micros_; }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(micros_) * 1e-6;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.micros_ + b.micros_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.micros_ - b.micros_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.micros_ * k};
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return a * k;
  }
  constexpr Duration& operator+=(Duration b) {
    micros_ += b.micros_;
    return *this;
  }

  friend constexpr bool operator==(Duration, Duration) = default;
  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.micros_ << "us";
  }

 private:
  std::int64_t micros_{0};
};

/// An instant of virtual time. `never()` plays the role of the paper's
/// timer value ∞.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t micros) : micros_(micros) {}

  static constexpr TimePoint zero() { return TimePoint{0}; }
  static constexpr TimePoint never() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count() const { return micros_; }
  [[nodiscard]] constexpr bool is_never() const {
    return micros_ == std::numeric_limits<std::int64_t>::max();
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.micros_ + d.count()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.micros_ - b.micros_};
  }

  friend constexpr bool operator==(TimePoint, TimePoint) = default;
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  friend std::ostream& operator<<(std::ostream& os, TimePoint t) {
    if (t.is_never()) return os << "∞";
    return os << "t=" << t.micros_ << "us";
  }

 private:
  std::int64_t micros_{0};
};

}  // namespace vs::sim
