#pragma once
// Pending-event set for the discrete-event scheduler.
//
// Ordering is (time, sequence-number): two events at the same instant fire
// in the order they were scheduled, which makes every run reproducible.
// Cancellation is O(1) by tombstoning; tombstones are skimmed off at pop.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace vs::sim {

/// Handle to a scheduled event, usable for cancellation.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr explicit EventId(std::uint64_t seq) : seq_(seq) {}
  [[nodiscard]] constexpr std::uint64_t value() const { return seq_; }
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  std::uint64_t seq_{0};  // 0 = "no event"
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `when`. Requires !when.is_never().
  EventId push(TimePoint when, Action action);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Remove and return the earliest live event's action.
  /// Requires !empty(). Also reports the event's time via `when`.
  Action pop(TimePoint& when);

  /// Number of live events (O(1); maintained incrementally).
  [[nodiscard]] std::size_t size() const { return live_count_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    // Heap entries are indices into actions_ so the comparator stays cheap
    // and copy-free.
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void skim() const;  // drop cancelled entries off the top

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_map<std::uint64_t, Action> actions_;
  std::uint64_t next_seq_{1};
  std::size_t live_count_{0};
};

}  // namespace vs::sim
