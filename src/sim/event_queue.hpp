#pragma once
// Pending-event set for the discrete-event scheduler.
//
// Ordering is (time, sequence-number): two events at the same instant fire
// in the order they were scheduled, which makes every run reproducible.
// Cancellation is O(1) by tombstoning; tombstones are skimmed off at pop.
//
// Hot-path layout: the heap holds small (time, seq, slot) entries; the
// callables live in a slot vector indexed by those entries, with freed
// slots recycled through a free list. A heap entry is stale exactly when
// its slot's generation (`seq`) no longer matches, so cancel is one array
// write and pop is one array read — no per-event hash lookups, and no
// per-event allocations thanks to EventAction's inline buffer.

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace vs::sim {

class EventQueue;

/// Handle to a scheduled event, usable for cancellation.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr std::uint64_t value() const { return seq_; }
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class EventQueue;
  constexpr EventId(std::uint64_t seq, std::uint32_t slot)
      : seq_(seq), slot_(slot) {}

  std::uint64_t seq_{0};  // 0 = "no event"
  std::uint32_t slot_{0};
};

class EventQueue {
 public:
  using Action = EventAction;

  /// Schedule `action` at absolute time `when`. Requires !when.is_never().
  /// `cause` is the sequence number of the event being fired when this one
  /// was scheduled (0 = scheduled from outside any event) — the causal
  /// edge the observability layer reconstructs spans from.
  EventId push(TimePoint when, Action action, std::uint64_t cause = 0);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Remove and return the earliest live event's action.
  /// Requires !empty(). Also reports the event's time via `when`.
  Action pop(TimePoint& when);

  /// Earliest live event with its identity and causal parent (the
  /// scheduler's step path). Requires !empty().
  struct Popped {
    Action action;
    TimePoint when;
    std::uint64_t seq;
    std::uint64_t cause;
  };
  Popped pop();

  /// Number of live events (O(1); maintained incrementally).
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// High-water mark of action slots ever allocated — stays at the peak
  /// number of simultaneously pending events because freed slots are
  /// recycled (observable in tests and the slot-reuse microbenchmark).
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;  // index into slots_; stale iff generation mismatch
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Action action;
    std::uint64_t seq{0};    // generation of the occupying event; 0 = free
    std::uint64_t cause{0};  // seq of the event that scheduled this one
  };

  void skim() const;  // drop cancelled entries off the top

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_{1};
  std::size_t live_count_{0};
};

}  // namespace vs::sim
