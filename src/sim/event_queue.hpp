#pragma once
// Pending-event set for the discrete-event scheduler.
//
// Ordering is (time, sequence-number): two events at the same instant fire
// in the order they were scheduled, which makes every run reproducible.
// Cancellation is O(1) by tombstoning; tombstones are skimmed off at pop.
//
// Hot-path layout: the heap holds small (time, seq, slot) entries; the
// callables live in a slot vector indexed by those entries, with freed
// slots recycled through a free list. A heap entry is stale exactly when
// its slot's generation (`seq`) no longer matches, so cancel is one array
// write and pop is one array read — no per-event hash lookups, and no
// per-event allocations thanks to EventAction's inline buffer.
//
// Sharded execution (sim/shard_executor.hpp) adds two twists handled here:
//  * push_with_seq lets the scheduler supply sequence numbers from a
//    global counter (serial sharded mode) or a per-lane temporary counter
//    (parallel windows, top bit set — see make_temp_seq);
//  * renumber rewrites temporary sequence numbers to their merged real
//    values after a window commits, keeping each Slot's original temp id
//    as an `alias` so EventId handles taken out during the window (timer
//    disarm) still cancel the right event.

#include <cstdint>
#include <vector>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace vs::sim {

class EventQueue;

/// Temporary sequence numbers used inside a parallel shard window: top bit
/// set, lane in bits 48..62, per-lane monotone counter below. Temps order
/// after every real sequence number, which is exactly the serial tie-break
/// (window-created events always have later seqs than pre-window ones),
/// and per-lane counters are never reset, so a temp id is never reused.
inline constexpr std::uint64_t kTempSeqBit = std::uint64_t{1} << 63;
inline constexpr std::uint64_t kTempCounterMask =
    (std::uint64_t{1} << 48) - 1;

[[nodiscard]] constexpr bool is_temp_seq(std::uint64_t seq) {
  return (seq & kTempSeqBit) != 0;
}
[[nodiscard]] constexpr std::uint64_t make_temp_seq(std::int32_t lane,
                                                    std::uint64_t counter) {
  return kTempSeqBit | (static_cast<std::uint64_t>(lane) << 48) | counter;
}
[[nodiscard]] constexpr std::int32_t temp_seq_lane(std::uint64_t seq) {
  return static_cast<std::int32_t>((seq >> 48) & 0x7fff);
}
[[nodiscard]] constexpr std::uint64_t temp_seq_counter(std::uint64_t seq) {
  return seq & kTempCounterMask;
}

/// Handle to a scheduled event, usable for cancellation. `lane` routes the
/// cancel to the owning shard queue (-1 = the scheduler's global queue).
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr std::uint64_t value() const { return seq_; }
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  [[nodiscard]] constexpr std::int32_t lane() const { return lane_; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class EventQueue;
  constexpr EventId(std::uint64_t seq, std::uint32_t slot, std::int32_t lane)
      : seq_(seq), slot_(slot), lane_(lane) {}

  std::uint64_t seq_{0};  // 0 = "no event"
  std::uint32_t slot_{0};
  std::int32_t lane_{-1};
};

class EventQueue {
 public:
  using Action = EventAction;

  /// Schedule `action` at absolute time `when`. Requires !when.is_never().
  /// `cause` is the sequence number of the event being fired when this one
  /// was scheduled (0 = scheduled from outside any event) — the causal
  /// edge the observability layer reconstructs spans from.
  EventId push(TimePoint when, Action action, std::uint64_t cause = 0);

  /// Like push, but with an externally supplied sequence number (the
  /// sharded scheduler's global counter, or a window's temp counter) and
  /// the lane the returned handle should route cancels to.
  EventId push_with_seq(TimePoint when, Action action, std::uint64_t seq,
                        std::uint64_t cause, std::int32_t lane = -1);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op (returns false). Handles
  /// holding a temp sequence number keep working after renumber (alias
  /// match).
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// (time, seq) key of the earliest live event — the shard executor's
  /// window-cut probe. Requires !empty().
  struct Head {
    TimePoint when;
    std::uint64_t seq;
  };
  [[nodiscard]] Head head() const;

  /// Remove and return the earliest live event's action.
  /// Requires !empty(). Also reports the event's time via `when`.
  Action pop(TimePoint& when);

  /// Earliest live event with its identity and causal parent (the
  /// scheduler's step path). Requires !empty().
  struct Popped {
    Action action;
    TimePoint when;
    std::uint64_t seq;
    std::uint64_t cause;
  };
  Popped pop();

  /// Number of live events (O(1); maintained incrementally).
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Next sequence number push would hand out (the sharded scheduler seeds
  /// its global counter from this on attach).
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// High-water mark of action slots ever allocated — stays at the peak
  /// number of simultaneously pending events because freed slots are
  /// recycled (observable in tests and the slot-reuse microbenchmark).
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// Rewrite every pending temp sequence number (and temp cause) through
  /// `resolve` — the barrier's temp→real commit. The original temp id is
  /// kept as the slot's alias so outstanding EventId handles still cancel.
  /// `resolve` must be monotone over this queue's temps at equal times
  /// (the merge hands out real seqs in lane creation order, and fresh
  /// reals exceed every pending real), so heap order is preserved and no
  /// re-heapify is needed. The barrier must call this BEFORE committing
  /// staged cross-lane sends: a staged entry carries a fresh real already,
  /// so pushing it first would heapify it against temp values this rewrite
  /// then shrinks in place, breaking the invariant.
  template <class Fn>
  void renumber(Fn&& resolve) {
    for (Entry& e : heap_) {
      Slot& s = slots_[e.slot];
      if (s.seq != e.seq) continue;  // tombstone
      if (is_temp_seq(e.seq)) {
        const std::uint64_t real = resolve(e.seq);
        s.alias = e.seq;
        s.seq = real;
        e.seq = real;
      }
      if (is_temp_seq(s.cause)) s.cause = resolve(s.cause);
    }
  }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;  // index into slots_; stale iff generation mismatch
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Action action;
    std::uint64_t seq{0};    // generation of the occupying event; 0 = free
    std::uint64_t cause{0};  // seq of the event that scheduled this one
    std::uint64_t alias{0};  // pre-renumber temp id (0 = none)
  };

  void skim() const;  // drop cancelled entries off the top

  // Manual binary heap (std::push_heap/pop_heap over a plain vector, same
  // Later order std::priority_queue had) so renumber can walk the entries.
  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_{1};
  std::size_t live_count_{0};
};

}  // namespace vs::sim
