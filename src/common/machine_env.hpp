#pragma once
// Machine/build metadata stamp for perf artifacts.
//
// Every BENCH number is meaningless without the box and build it was
// measured on — BENCH_sched.json's serial events/sec drifted 16.0M→12.7M
// across PRs before anyone could tell a regression from a machine change.
// collect_machine_env() gathers the identifying facts once per process
// (CPU model from /proc/cpuinfo, core count, cpufreq governor, compiler
// and flags baked in at build time, git SHA found by walking up from the
// CWD, a UTC timestamp), and machine_env_json renders them as the JSON
// object the BENCH emitters and vinestalk_bench embed verbatim.
//
// The fingerprint() subset (CPU model + cores + compiler + build flags)
// is what the perf-trajectory gate compares: numbers from different
// fingerprints are not comparable, so the gate warns instead of failing.

#include <string>

namespace vs {

struct MachineEnv {
  std::string cpu_model;    // /proc/cpuinfo "model name" (or "unknown")
  unsigned cores = 0;       // std::thread::hardware_concurrency()
  std::string governor;     // cpu0 cpufreq scaling_governor (or "unknown")
  std::string compiler;     // e.g. "gcc 13.2.0", baked in at compile time
  std::string build_type;   // CMAKE_BUILD_TYPE
  std::string cxx_flags;    // the build-type's compile flags
  std::string git_sha;      // HEAD commit, walking up from CWD ("unknown")
  std::string timestamp_utc;  // ISO-8601 Z, collection time
  std::string hostname;

  /// The comparability key: perf numbers from two runs are only
  /// commensurate when their fingerprints match.
  [[nodiscard]] std::string fingerprint() const;
};

[[nodiscard]] MachineEnv collect_machine_env();

/// The env as a JSON object. The opening brace is unindented (it follows
/// a `"machine": ` key); member lines are indented `indent + 2` spaces and
/// the closing brace `indent`, so the object nests cleanly at any depth.
[[nodiscard]] std::string machine_env_json(const MachineEnv& env, int indent);

}  // namespace vs
