#pragma once
// Error handling: all precondition/invariant violations throw vs::Error.
//
// Per the Core Guidelines (I.5/I.6, E.*) we state preconditions and check
// them; a violated contract in a simulation is a bug in either the caller or
// the model, never something to limp past, so we throw with a message that
// carries the failing expression and location.

#include <sstream>
#include <stdexcept>
#include <string>

namespace vs {

/// Library-wide exception type.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void raise_requirement_failure(const char* expr, const char* file,
                                            int line, const std::string& msg);
}  // namespace detail

}  // namespace vs

/// Checked requirement; always on (simulation correctness beats speed here;
/// hot paths that profiled as bottlenecks use VS_DCHECK instead).
#define VS_REQUIRE(expr, ...)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::std::ostringstream vs_require_os_;                                 \
      vs_require_os_ << "" __VA_ARGS__;                                    \
      ::vs::detail::raise_requirement_failure(#expr, __FILE__, __LINE__,   \
                                              vs_require_os_.str());       \
    }                                                                      \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define VS_DCHECK(expr, ...) \
  do {                       \
  } while (false)
#else
#define VS_DCHECK(expr, ...) VS_REQUIRE(expr, __VA_ARGS__)
#endif
