#pragma once
// Deterministic random number generation.
//
// Simulation runs must be exactly reproducible from a seed, across
// platforms, so we carry our own xoshiro256** generator (public domain
// algorithm by Blackman & Vigna) seeded through splitmix64 rather than rely
// on implementation-defined std::default_random_engine behaviour.
// Distribution helpers avoid std::uniform_int_distribution for the same
// reason (its output is implementation-defined).

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace vs {

/// splitmix64 step; used for seeding and as a cheap stateless hash-mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with portable, reproducible output.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Uniformly chosen element of a non-empty span.
  template <class T>
  const T& pick(std::span<const T> items) {
    VS_REQUIRE(!items.empty(), "pick from empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <class T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher–Yates shuffle (reproducible, unlike std::shuffle across stdlibs).
  template <class T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace vs
