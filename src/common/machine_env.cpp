#include "common/machine_env.hpp"

#include <unistd.h>

#include <cstdint>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace vs {

namespace {

// Compiler identity and the flags it was handed, resolved at compile time
// (VS_BUILD_TYPE / VS_CXX_FLAGS come from src/common/CMakeLists.txt).
#if defined(__clang__)
constexpr const char* kCompiler = "clang " __clang_version__;
#elif defined(__GNUC__)
constexpr const char* kCompiler = "gcc " __VERSION__;
#else
constexpr const char* kCompiler = "unknown";
#endif

#ifndef VS_BUILD_TYPE
#define VS_BUILD_TYPE "unknown"
#endif
#ifndef VS_CXX_FLAGS
#define VS_CXX_FLAGS ""
#endif

std::string first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in.good() || !std::getline(in, line)) return {};
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                           line.back() == ' ')) {
    line.pop_back();
  }
  return line;
}

std::string cpu_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto key = line.find("model name");
    if (key != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    return line.substr(start);
  }
  return "unknown";
}

// HEAD commit of the enclosing repo: walk up from the CWD (benches run
// from the build tree) until a .git/HEAD appears, then chase one level of
// symbolic ref. Loose refs cover the usual checkout; a packed-only ref
// degrades to "unknown", which the consumers all tolerate.
std::string git_head_sha() {
  std::string prefix;
  for (int depth = 0; depth < 6; ++depth) {
    const std::string head = first_line(prefix + ".git/HEAD");
    if (!head.empty()) {
      if (head.rfind("ref: ", 0) == 0) {
        const std::string sha = first_line(prefix + ".git/" + head.substr(5));
        return sha.empty() ? "unknown" : sha;
      }
      return head;
    }
    prefix += "../";
  }
  return "unknown";
}

std::string utc_now() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop controls
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MachineEnv::fingerprint() const {
  std::ostringstream os;
  os << cpu_model << "|" << cores << "|" << compiler << "|" << build_type
     << "|" << cxx_flags;
  return os.str();
}

MachineEnv collect_machine_env() {
  MachineEnv env;
  env.cpu_model = cpu_model_name();
  env.cores = std::thread::hardware_concurrency();
  env.governor =
      first_line("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (env.governor.empty()) env.governor = "unknown";
  env.compiler = kCompiler;
  env.build_type = VS_BUILD_TYPE;
  env.cxx_flags = VS_CXX_FLAGS;
  env.git_sha = git_head_sha();
  env.timestamp_utc = utc_now();
  char host[256] = {};
  if (gethostname(host, sizeof host - 1) == 0 && host[0] != '\0') {
    env.hostname = host;
  } else {
    env.hostname = "unknown";
  }
  return env;
}

std::string machine_env_json(const MachineEnv& env, int indent) {
  const std::string in(static_cast<std::size_t>(indent) + 2, ' ');
  const std::string close(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << "{\n";
  os << in << "\"cpu_model\": \"" << json_escape(env.cpu_model) << "\",\n";
  os << in << "\"cores\": " << env.cores << ",\n";
  os << in << "\"governor\": \"" << json_escape(env.governor) << "\",\n";
  os << in << "\"compiler\": \"" << json_escape(env.compiler) << "\",\n";
  os << in << "\"build_type\": \"" << json_escape(env.build_type) << "\",\n";
  os << in << "\"cxx_flags\": \"" << json_escape(env.cxx_flags) << "\",\n";
  os << in << "\"git_sha\": \"" << json_escape(env.git_sha) << "\",\n";
  os << in << "\"timestamp_utc\": \"" << json_escape(env.timestamp_utc)
     << "\",\n";
  os << in << "\"hostname\": \"" << json_escape(env.hostname) << "\"\n";
  os << close << "}";
  return os.str();
}

}  // namespace vs
