#include "common/rng.hpp"

#include <cmath>

namespace vs {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  VS_REQUIRE(lo <= hi, "uniform_int bounds inverted: " << lo << " > " << hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Lemire-style rejection sampling for unbiased bounded integers.
  const std::uint64_t threshold = (~range + 1) % range;  // 2^64 mod range
  std::uint64_t r;
  do {
    r = next();
  } while (r < threshold);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::uniform01() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() { return Rng{next()}; }

}  // namespace vs
