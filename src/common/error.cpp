#include "common/error.hpp"

namespace vs::detail {

void raise_requirement_failure(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace vs::detail
