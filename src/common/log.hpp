#pragma once
// Minimal leveled logging to stderr, through a single writer.
//
// The simulator is deterministic; a trace of what happened at which virtual
// time is the main debugging tool. Logging is compiled in but off by
// default; tests and examples flip the level.
//
// Single-writer guarantee: log_line assembles the complete line first and
// emits it under one process-wide mutex, so lines from concurrent
// trial-pool worlds never interleave mid-line. Each line carries the
// thread's trial index and the virtual time of the world it is driving
// (when a clock probe is installed): "[INFO ] [trial 3 | t=12000us] msg".

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string_view>

namespace vs {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Process-wide log threshold. Each simulation world is single-threaded,
/// but the trial pool runs many worlds concurrently, so the threshold is a
/// relaxed atomic (a read per suppressed log line; no ordering needed).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Per-thread trial index prefixed to log lines (-1 = none). TrialPool
/// sets it around each trial; anything the trial logs is attributable.
void set_log_trial(int trial);
[[nodiscard]] int log_trial();

/// Per-thread virtual-clock probe: returns the driving world's now() in
/// microseconds. Type-erased so common/ needs no sim dependency.
using LogClock = std::int64_t (*)(const void* ctx);
void set_log_clock(const void* ctx, LogClock fn);
/// Uninstalls the probe only if `ctx` is the one installed — worlds may
/// destruct in any order, and a stale clear must not drop a live probe.
void clear_log_clock(const void* ctx);

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}  // namespace detail

}  // namespace vs

#define VS_LOG(level, ...)                                       \
  do {                                                           \
    if (static_cast<int>(level) >=                               \
        static_cast<int>(::vs::log_level())) {                   \
      ::std::ostringstream vs_log_os_;                           \
      vs_log_os_ << __VA_ARGS__;                                 \
      ::vs::detail::log_line(level, vs_log_os_.str());           \
    }                                                            \
  } while (false)

#define VS_TRACE(...) VS_LOG(::vs::LogLevel::kTrace, __VA_ARGS__)
#define VS_DEBUG(...) VS_LOG(::vs::LogLevel::kDebug, __VA_ARGS__)
#define VS_INFO(...) VS_LOG(::vs::LogLevel::kInfo, __VA_ARGS__)
#define VS_WARN(...) VS_LOG(::vs::LogLevel::kWarn, __VA_ARGS__)
