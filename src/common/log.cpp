#include "common/log.hpp"

#include <atomic>
#include <mutex>
#include <string>

namespace vs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};

thread_local int t_trial = -1;
thread_local const void* t_clock_ctx = nullptr;
thread_local LogClock t_clock_fn = nullptr;

std::mutex& writer_mutex() {
  static std::mutex mu;
  return mu;
}

constexpr std::string_view name_of(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_trial(int trial) { t_trial = trial; }
int log_trial() { return t_trial; }

void set_log_clock(const void* ctx, LogClock fn) {
  t_clock_ctx = ctx;
  t_clock_fn = fn;
}

void clear_log_clock(const void* ctx) {
  if (t_clock_ctx != ctx) return;  // a newer world took over this thread
  t_clock_ctx = nullptr;
  t_clock_fn = nullptr;
}

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  // Assemble the complete line, then emit it in one write under the
  // process-wide writer mutex — the no-interleaving guarantee.
  std::string line;
  line.reserve(msg.size() + 48);
  line += '[';
  line += name_of(level);
  line += "] ";
  if (t_trial >= 0 || t_clock_fn != nullptr) {
    line += "[";
    if (t_trial >= 0) {
      line += "trial ";
      line += std::to_string(t_trial);
      if (t_clock_fn != nullptr) line += " | ";
    }
    if (t_clock_fn != nullptr) {
      line += "t=";
      line += std::to_string(t_clock_fn(t_clock_ctx));
      line += "us";
    }
    line += "] ";
  }
  line += msg;
  line += '\n';
  const std::lock_guard<std::mutex> lock(writer_mutex());
  std::cerr << line;
}
}  // namespace detail

}  // namespace vs
