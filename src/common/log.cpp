#include "common/log.hpp"

#include <atomic>

namespace vs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};

constexpr std::string_view name_of(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  std::cerr << "[" << name_of(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace vs
