#pragma once
// Strong identifier types shared across the library.
//
// The paper works with three kinds of names: region identifiers drawn from
// an ordered set U, cluster identifiers C, and hierarchy levels L. We give
// each its own type so that a region can never silently be used where a
// cluster is expected. Identifiers are dense small integers assigned by the
// tiling / hierarchy that owns them, which keeps lookups array-based.

#include <cstdint>
#include <functional>
#include <ostream>

namespace vs {

/// CRTP-free strong integer id. `Tag` distinguishes unrelated id spaces.
template <class Tag, class Rep = std::int32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value_(v) {}

  /// Sentinel used for "no id" (the paper's ⊥ where an id is optional).
  static constexpr StrongId invalid() { return StrongId{Rep{-1}}; }

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "⊥";
    return os << id.value();
  }

 private:
  Rep value_{-1};
};

struct RegionTag {};
struct ClusterTag {};
struct TargetTag {};
struct FindTag {};
struct ClientTag {};

/// A tile of the deployment space (element of U).
using RegionId = StrongId<RegionTag>;
/// A cluster of regions at some level of the hierarchy (element of C).
using ClusterId = StrongId<ClusterTag>;
/// A tracked mobile object (single-object tracking uses TargetId{0}).
using TargetId = StrongId<TargetTag>;
/// One outstanding find operation.
using FindId = StrongId<FindTag, std::int64_t>;
/// A physical/client node.
using ClientId = StrongId<ClientTag>;

/// Hierarchy level; level 0 holds singleton region clusters, level MAX the
/// unique top cluster.
using Level = std::int32_t;

}  // namespace vs

template <class Tag, class Rep>
struct std::hash<vs::StrongId<Tag, Rep>> {
  std::size_t operator()(vs::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
