#include "geo/strip_tiling.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace vs::geo {

StripTiling::StripTiling(int length) : length_(length) {
  VS_REQUIRE(length >= 2, "strip needs at least two regions");
  nbr_offset_.resize(num_regions() + 1, 0);
  nbr_flat_.reserve(2 * num_regions());
  std::size_t off = 0;
  for (int i = 0; i < length_; ++i) {
    nbr_offset_[static_cast<std::size_t>(i)] = off;
    if (i > 0) {
      nbr_flat_.emplace_back(i - 1);
      ++off;
    }
    if (i + 1 < length_) {
      nbr_flat_.emplace_back(i + 1);
      ++off;
    }
  }
  nbr_offset_[num_regions()] = off;
}

std::span<const RegionId> StripTiling::neighbors(RegionId u) const {
  check_region(u);
  const auto i = static_cast<std::size_t>(u.value());
  return {nbr_flat_.data() + nbr_offset_[i], nbr_offset_[i + 1] - nbr_offset_[i]};
}

int StripTiling::distance(RegionId u, RegionId v) const {
  check_region(u);
  check_region(v);
  return std::abs(u.value() - v.value());
}

}  // namespace vs::geo
