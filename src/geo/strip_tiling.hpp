#pragma once
// One-dimensional strip tiling.
//
// N unit regions in a row; regions are neighbours iff adjacent. Exists to
// exercise the generality of the hierarchy abstraction (the paper's cluster
// model is not grid-specific) and to make small, hand-checkable test
// scenarios: distances and paths are trivial to reason about on a line.

#include <vector>

#include "geo/tiling.hpp"

namespace vs::geo {

class StripTiling final : public Tiling {
 public:
  /// Requires length >= 2.
  explicit StripTiling(int length);

  [[nodiscard]] int length() const { return length_; }

  [[nodiscard]] std::size_t num_regions() const override {
    return static_cast<std::size_t>(length_);
  }
  [[nodiscard]] std::span<const RegionId> neighbors(RegionId u) const override;
  [[nodiscard]] int distance(RegionId u, RegionId v) const override;
  [[nodiscard]] int diameter() const override { return length_ - 1; }

 private:
  int length_;
  std::vector<std::size_t> nbr_offset_;
  std::vector<RegionId> nbr_flat_;
};

}  // namespace vs::geo
