#pragma once
// Square-grid tiling — the paper's running example (§II-B).
//
// Unit-square regions on a W×H lattice. Squares sharing an edge *or a
// single corner point* are neighbours (the paper: "Squares that share edges
// or are diagonal from one another, sharing a single border point, are
// neighbors"), so the neighbour graph is the 8-adjacency king graph and hop
// distance is the Chebyshev distance max(|Δx|, |Δy|).

#include <vector>

#include "geo/tiling.hpp"

namespace vs::geo {

/// Integer lattice coordinate of a grid region.
struct Coord {
  int x{0};
  int y{0};
  friend constexpr bool operator==(Coord, Coord) = default;
};

class GridTiling final : public Tiling {
 public:
  /// Requires width >= 1, height >= 1 and at least 2 regions total.
  GridTiling(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  [[nodiscard]] std::size_t num_regions() const override {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  [[nodiscard]] std::span<const RegionId> neighbors(RegionId u) const override;
  [[nodiscard]] int distance(RegionId u, RegionId v) const override;
  [[nodiscard]] int diameter() const override;
  [[nodiscard]] std::string describe(RegionId u) const override;

  /// Coordinate <-> id conversions.
  [[nodiscard]] Coord coord(RegionId u) const;
  [[nodiscard]] RegionId region_at(Coord c) const;
  [[nodiscard]] RegionId region_at(int x, int y) const {
    return region_at(Coord{x, y});
  }
  [[nodiscard]] bool in_bounds(Coord c) const {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }

 private:
  int width_;
  int height_;
  // CSR neighbour lists, precomputed once (≤ 8 per region).
  std::vector<std::size_t> nbr_offset_;
  std::vector<RegionId> nbr_flat_;
};

}  // namespace vs::geo
