#include "geo/tiling.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace vs::geo {

std::string Tiling::describe(RegionId u) const {
  return "region " + std::to_string(u.value());
}

bool Tiling::are_neighbors(RegionId u, RegionId v) const {
  if (u == v) return false;
  const auto nbrs = neighbors(u);
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

std::vector<RegionId> Tiling::all_regions() const {
  std::vector<RegionId> out;
  out.reserve(num_regions());
  for (std::size_t i = 0; i < num_regions(); ++i) {
    out.emplace_back(static_cast<RegionId::rep_type>(i));
  }
  return out;
}

std::vector<int> Tiling::bfs_distances(RegionId source) const {
  check_region(source);
  std::vector<int> dist(num_regions(), -1);
  std::deque<RegionId> frontier;
  dist[static_cast<std::size_t>(source.value())] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const RegionId u = frontier.front();
    frontier.pop_front();
    const int du = dist[static_cast<std::size_t>(u.value())];
    for (const RegionId v : neighbors(u)) {
      auto& dv = dist[static_cast<std::size_t>(v.value())];
      if (dv < 0) {
        dv = du + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

void Tiling::check_region(RegionId u) const {
  VS_REQUIRE(u.valid() && static_cast<std::size_t>(u.value()) < num_regions(),
             "region id " << u << " out of range [0, " << num_regions() << ")");
}

}  // namespace vs::geo
