#pragma once
// Toroidal grid tiling: a side×side king-graph with wrap-around edges.
//
// Models boundary-free deployments (every region is interior, every
// cluster has the full neighbour count). Hop distance is wrap-Chebyshev:
// max over axes of min(|Δ|, side − |Δ|). The wrap seam between columns
// side−1 and 0 crosses *every* hierarchy level's block boundary, which
// makes the torus a natural adversarial geometry for dithering tests.

#include <vector>

#include "geo/grid_tiling.hpp"

namespace vs::geo {

class TorusTiling final : public Tiling {
 public:
  /// Requires side >= 3 (so a region is not its own wrap-neighbour).
  explicit TorusTiling(int side);

  [[nodiscard]] int side() const { return side_; }

  [[nodiscard]] std::size_t num_regions() const override {
    return static_cast<std::size_t>(side_) * static_cast<std::size_t>(side_);
  }
  [[nodiscard]] std::span<const RegionId> neighbors(RegionId u) const override;
  [[nodiscard]] int distance(RegionId u, RegionId v) const override;
  [[nodiscard]] int diameter() const override { return side_ / 2; }
  [[nodiscard]] std::string describe(RegionId u) const override;

  [[nodiscard]] Coord coord(RegionId u) const;
  [[nodiscard]] RegionId region_at(int x, int y) const;  // wraps modulo side

 private:
  int side_;
  std::vector<std::size_t> nbr_offset_;
  std::vector<RegionId> nbr_flat_;
};

}  // namespace vs::geo
