#include "geo/grid_tiling.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace vs::geo {

GridTiling::GridTiling(int width, int height) : width_(width), height_(height) {
  VS_REQUIRE(width >= 1 && height >= 1, "grid dimensions must be positive");
  VS_REQUIRE(num_regions() >= 2, "tiling needs at least two regions");
  nbr_offset_.resize(num_regions() + 1, 0);
  nbr_flat_.reserve(num_regions() * 8);
  std::size_t off = 0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      nbr_offset_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(x)] = off;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const Coord c{x + dx, y + dy};
          if (!in_bounds(c)) continue;
          nbr_flat_.push_back(region_at(c));
          ++off;
        }
      }
    }
  }
  nbr_offset_[num_regions()] = off;
}

std::span<const RegionId> GridTiling::neighbors(RegionId u) const {
  check_region(u);
  const auto i = static_cast<std::size_t>(u.value());
  return {nbr_flat_.data() + nbr_offset_[i], nbr_offset_[i + 1] - nbr_offset_[i]};
}

int GridTiling::distance(RegionId u, RegionId v) const {
  const Coord a = coord(u);
  const Coord b = coord(v);
  return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

int GridTiling::diameter() const { return std::max(width_, height_) - 1; }

std::string GridTiling::describe(RegionId u) const {
  const Coord c = coord(u);
  return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")";
}

Coord GridTiling::coord(RegionId u) const {
  check_region(u);
  return Coord{u.value() % width_, u.value() / width_};
}

RegionId GridTiling::region_at(Coord c) const {
  VS_REQUIRE(in_bounds(c),
             "coordinate (" << c.x << "," << c.y << ") outside " << width_
                            << "x" << height_ << " grid");
  return RegionId{c.y * width_ + c.x};
}

}  // namespace vs::geo
