#pragma once
// Network tiling (paper §II-A).
//
// The deployment space is divided into connected regions with unique ids
// from an ordered set U; regions are neighbours iff they share boundary
// points; the distance between regions is hop distance in the neighbour
// graph; the network diameter D is the maximum such distance.

#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace vs::geo {

/// Abstract tiling of the deployment space.
///
/// Implementations must provide a connected neighbour graph over the dense
/// region-id space [0, num_regions()). `distance` must equal hop distance
/// in that graph (checked against BFS by the test suite).
class Tiling {
 public:
  virtual ~Tiling() = default;

  [[nodiscard]] virtual std::size_t num_regions() const = 0;

  /// Regions sharing a boundary with `u` (the paper's `nbr` relation);
  /// never contains `u` itself.
  [[nodiscard]] virtual std::span<const RegionId> neighbors(RegionId u) const = 0;

  /// Hop distance between regions in the neighbour graph.
  [[nodiscard]] virtual int distance(RegionId u, RegionId v) const = 0;

  /// Network diameter D = max pairwise distance.
  [[nodiscard]] virtual int diameter() const = 0;

  /// Human-readable region description (coordinates where meaningful).
  [[nodiscard]] virtual std::string describe(RegionId u) const;

  /// True iff u and v are distinct neighbours.
  [[nodiscard]] bool are_neighbors(RegionId u, RegionId v) const;

  /// All region ids, in id order.
  [[nodiscard]] std::vector<RegionId> all_regions() const;

  /// Reference hop-distance by breadth-first search (O(V+E)); used by the
  /// validator to cross-check analytic `distance` implementations.
  [[nodiscard]] std::vector<int> bfs_distances(RegionId source) const;

 protected:
  void check_region(RegionId u) const;
};

}  // namespace vs::geo
