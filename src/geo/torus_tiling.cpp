#include "geo/torus_tiling.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "common/error.hpp"

namespace vs::geo {

namespace {
int wrap(int v, int side) {
  const int m = v % side;
  return m < 0 ? m + side : m;
}
}  // namespace

TorusTiling::TorusTiling(int side) : side_(side) {
  VS_REQUIRE(side >= 3, "torus side must be >= 3");
  nbr_offset_.resize(num_regions() + 1, 0);
  nbr_flat_.reserve(num_regions() * 8);
  std::size_t off = 0;
  for (int y = 0; y < side_; ++y) {
    for (int x = 0; x < side_; ++x) {
      nbr_offset_[static_cast<std::size_t>(y) * static_cast<std::size_t>(side_) +
                  static_cast<std::size_t>(x)] = off;
      // Deduplicate (side 3: two wrap directions can name one region).
      std::set<RegionId> nbrs;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const RegionId v = region_at(x + dx, y + dy);
          if (v != region_at(x, y)) nbrs.insert(v);
        }
      }
      for (const RegionId v : nbrs) {
        nbr_flat_.push_back(v);
        ++off;
      }
    }
  }
  nbr_offset_[num_regions()] = off;
}

std::span<const RegionId> TorusTiling::neighbors(RegionId u) const {
  check_region(u);
  const auto i = static_cast<std::size_t>(u.value());
  return {nbr_flat_.data() + nbr_offset_[i], nbr_offset_[i + 1] - nbr_offset_[i]};
}

int TorusTiling::distance(RegionId u, RegionId v) const {
  const Coord a = coord(u);
  const Coord b = coord(v);
  const int dx = std::abs(a.x - b.x);
  const int dy = std::abs(a.y - b.y);
  return std::max(std::min(dx, side_ - dx), std::min(dy, side_ - dy));
}

std::string TorusTiling::describe(RegionId u) const {
  const Coord c = coord(u);
  return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")~torus";
}

Coord TorusTiling::coord(RegionId u) const {
  check_region(u);
  return Coord{u.value() % side_, u.value() / side_};
}

RegionId TorusTiling::region_at(int x, int y) const {
  return RegionId{wrap(y, side_) * side_ + wrap(x, side_)};
}

}  // namespace vs::geo
