#include "serve/server.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/error.hpp"
#include "obs/slo/slo.hpp"

namespace vs::serve {

IngestServer::IngestServer(tracking::TrackingNetwork& net,
                           const hier::GridHierarchy& hier, ServeConfig cfg)
    : net_(&net), hier_(&hier), cfg_(std::move(cfg)) {
  VS_REQUIRE(cfg_.queues >= 1, "need at least one ingest queue");
  VS_REQUIRE(cfg_.queue_capacity >= 1, "queue capacity must be >= 1");
  VS_REQUIRE(cfg_.round > sim::Duration::zero(),
             "round length must be positive");
  VS_REQUIRE(cfg_.tier1_pm >= 0 && cfg_.tier1_pm <= cfg_.tier2_pm &&
                 cfg_.tier2_pm <= cfg_.tier3_pm,
             "ladder watermarks must be non-decreasing");
  VS_REQUIRE(cfg_.dead_band >= 0, "dead band must be >= 0");
  queues_.reserve(cfg_.queues);
  for (std::uint32_t i = 0; i < cfg_.queues; ++i) {
    queues_.push_back(
        std::make_unique<SpscQueue<Pending>>(cfg_.queue_capacity));
  }
  if (!cfg_.capture_path.empty()) capture_.emplace(cfg_.capture_path);
  // A deterministic config-derived gauge, surfaced via VSTELEM1/Prometheus
  // alongside the conservation counters.
  net_->counters().ingest().retry_after_us = retry_after().count();
}

IngestServer::~IngestServer() {
  try {
    finish();
  } catch (...) {
    // Destructor cleanup: a failed final drain must not terminate.
  }
}

std::uint64_t IngestServer::add_object(RegionId start) {
  const TargetId t = net_->add_evader(start);
  net_->run_to_quiescence();
  objects_.push_back(t);
  return objects_.size() - 1;
}

IngestServer::Admit IngestServer::offer(const UpdateFrame& update) {
  if (update.object >= objects_.size() ||
      !hier_->grid().in_bounds(geo::Coord{update.x, update.y})) {
    wire_errors_.fetch_add(1, std::memory_order_relaxed);
    return Admit::kRejectedBad;
  }
  // Both reject paths count `dropped`: the frame was valid and read off
  // the wire, so it enters the conservation identity on the lossy side.
  if (shedding_.load(std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return Admit::kRejectedShed;
  }
  Pending p;
  p.update = update;
  p.region = hier_->grid().region_at(update.x, update.y);
  // SLO update span opens at admission (reader thread reads the clock;
  // the monitor itself is only touched by the driver at resolution).
  if (slo_ != nullptr) p.admit_ns = obs::SloMonitor::now_ns();
  if (!queues_[queue_of(p.region)]->push(p)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return Admit::kRejectedFull;
  }
  return Admit::kQueued;
}

void IngestServer::set_slo(obs::SloMonitor* slo) { slo_ = slo; }

RoundReport IngestServer::run_round() {
  VS_REQUIRE(!finished_, "ingest server already finished");
  const std::uint64_t round_t0 =
      slo_ != nullptr ? obs::SloMonitor::now_ns() : 0;
  batch_.clear();
  std::int64_t depth_peak = 0;
  for (auto& q : queues_) {
    std::int64_t depth = 0;
    Pending p;
    while (q->pop(p)) {
      batch_.push_back(p);
      ++depth;
    }
    depth_peak = std::max(depth_peak, depth);
  }
  const std::int64_t c = cfg_.round.count();
  const std::int64_t k = net_->now().count() / c + 1;
  const sim::TimePoint upto(k * c);
  const RoundReport rep = process_batch(batch_, depth_peak, upto);
  fold_reader_counters();
  net_->run_until(upto);
  if (slo_ != nullptr) slo_->close_round(round_t0, upto.count());
  return rep;
}

FindOutcome IngestServer::find(RegionId from, std::uint64_t object,
                               sim::Duration deadline) {
  VS_REQUIRE(!finished_, "ingest server already finished");
  VS_REQUIRE(object < objects_.size(),
             "find for unregistered object " << object);
  // Capture before running: a find advances virtual time, so a replay must
  // re-issue it at the same point in the round sequence to stay identical.
  if (capture_.has_value()) {
    const geo::Coord at = hier_->grid().coord(from);
    IngestFrame frame;
    frame.type = IngestFrame::Type::kFind;
    frame.find.object = object;
    frame.find.x = at.x;
    frame.find.y = at.y;
    frame.find.deadline_us = deadline.count();
    capture_->append(frame);
  }
  return run_find(from, object, deadline);
}

FindOutcome IngestServer::run_find(RegionId from, std::uint64_t object,
                                   sim::Duration deadline) {
  const std::uint64_t t0 = slo_ != nullptr ? obs::SloMonitor::now_ns() : 0;
  const FindOutcome o =
      find_with_deadline(*net_, from, objects_[object], deadline,
                         cfg_.find_attempts, cfg_.find_backoff);
  // Deterministic RPC accounting (deadline misses derive from virtual
  // time), shared verbatim between the live path and replay so a replayed
  // world's counters equal the live run's.
  stats::IngestCounters& ing = net_->counters().ingest();
  ++ing.rpc_finds_issued;
  ing.rpc_find_attempts += o.attempts;
  if (o.done) {
    ++ing.rpc_finds_done;
  } else {
    ++ing.rpc_deadline_misses;
  }
  if (slo_ != nullptr) {
    const tracking::FindResult& fr = net_->find_result(o.id);
    slo_->close_find(t0, net_->now().count(), fr.op, fr.distance, !o.done);
  }
  return o;
}

void IngestServer::finish() {
  if (finished_) return;
  // One last drain so every queued frame is resolved before the counters
  // are judged (the caller has stopped the reader thread by now).
  run_round();
  finished_ = true;
  shedding_.store(true, std::memory_order_release);
  if (capture_.has_value()) capture_->finish();
}

void IngestServer::replay_file(const std::string& path) {
  VS_REQUIRE(!finished_, "ingest server already finished");
  const IngestFile f = read_ingest_file(path);
  std::vector<Pending> batch;
  std::vector<std::int64_t> depth(queues_.size(), 0);
  for (const IngestFrame& frame : f.frames) {
    if (frame.type == IngestFrame::Type::kUpdate) {
      VS_REQUIRE(frame.update.object < objects_.size(),
                 "capture update for unregistered object "
                     << frame.update.object);
      VS_REQUIRE(
          hier_->grid().in_bounds(geo::Coord{frame.update.x, frame.update.y}),
          "capture update outside the world grid");
      Pending p;
      p.update = frame.update;
      p.region = hier_->grid().region_at(frame.update.x, frame.update.y);
      ++depth[queue_of(p.region)];
      batch.push_back(p);
      continue;
    }
    if (frame.type == IngestFrame::Type::kFind) {
      // Finds run between rounds on the driver thread, so a well-formed
      // capture never interleaves one with a half-batched round.
      VS_REQUIRE(batch.empty(),
                 "capture find frame inside an unfinished round");
      VS_REQUIRE(frame.find.object < objects_.size(),
                 "capture find for unregistered object " << frame.find.object);
      VS_REQUIRE(
          hier_->grid().in_bounds(geo::Coord{frame.find.x, frame.find.y}),
          "capture find origin outside the world grid");
      const RegionId from =
          hier_->grid().region_at(frame.find.x, frame.find.y);
      // Re-capture verbatim so a capture-of-a-replay equals the original.
      if (capture_.has_value()) capture_->append(frame);
      (void)run_find(from, frame.find.object,
                     sim::Duration(frame.find.deadline_us));
      continue;
    }
    const sim::TimePoint upto(frame.round.upto_us);
    VS_REQUIRE(upto > net_->now(),
               "capture round boundary " << frame.round.upto_us
                                         << "us is not in the future");
    const std::int64_t depth_peak =
        depth.empty() ? 0 : *std::max_element(depth.begin(), depth.end());
    process_batch(batch, depth_peak, upto);
    net_->run_until(upto);
    batch.clear();
    std::fill(depth.begin(), depth.end(), 0);
  }
  VS_REQUIRE(batch.empty(),
             "capture " << path << " ends mid-round (missing round marker)");
  // A replayed server is complete: keep finish()/the destructor from
  // appending an extra live round after the capture's final boundary.
  finished_ = true;
  shedding_.store(true, std::memory_order_release);
  if (capture_.has_value()) capture_->finish();
}

RoundReport IngestServer::process_batch(const std::vector<Pending>& batch,
                                        std::int64_t depth_peak,
                                        sim::TimePoint upto) {
  RoundReport rep;
  rep.drained = static_cast<std::int64_t>(batch.size());

  // Ladder tier: deepest drained per-queue batch vs the watermarks. Each
  // watermark is at least one slot so an empty round can never engage.
  int tier = 0;
  if (depth_peak > 0) {
    for (const std::int64_t pm : {cfg_.tier1_pm, cfg_.tier2_pm,
                                  cfg_.tier3_pm}) {
      if (depth_peak >= std::max<std::int64_t>(1, watermark_slots(pm))) {
        ++tier;
      }
    }
  }
  tier_ = tier;
  rep.tier = tier;
  // Admission gate with hysteresis: shed at tier 3, readmit below tier 2.
  if (tier >= 3) {
    shedding_.store(true, std::memory_order_release);
  } else if (tier < 2) {
    shedding_.store(false, std::memory_order_release);
  }

  stats::IngestCounters& ing = net_->counters().ingest();
  for (int i = 0; i < tier; ++i) ++ing.shed_tier_entries[static_cast<std::size_t>(i)];
  ing.ingested += rep.drained;
  ing.queue_depth_peak = std::max(ing.queue_depth_peak, depth_peak);

  // Capture before applying: the file records what was drained, pre-ladder,
  // so a replay re-derives every shedding decision instead of trusting us.
  // Every round writes its marker — even an empty one (a shed or idle
  // round) — because later finds are issued relative to the round clock: a
  // replay that skipped empty boundaries would run them at earlier virtual
  // times and diverge.
  if (capture_.has_value()) {
    for (const Pending& p : batch) {
      IngestFrame frame;
      frame.type = IngestFrame::Type::kUpdate;
      frame.update = p.update;
      capture_->append(frame);
    }
    IngestFrame mark;
    mark.type = IngestFrame::Type::kRound;
    mark.round.upto_us = upto.count();
    capture_->append(mark);
  }

  // Tier 1: coalesce — only the last update per object survives the round.
  std::vector<char> keep(batch.size(), 1);
  if (tier >= 1) {
    std::unordered_map<std::uint64_t, std::size_t> last;
    for (std::size_t i = 0; i < batch.size(); ++i) last[batch[i].object()] = i;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (last[batch[i].object()] != i) keep[i] = 0;
    }
  }
  // An update span closes when the frame is *resolved* — applied or
  // suppressed, both at this round boundary. Dropped frames never carried a
  // span; they reach the monitor as RED errors via fold_reader_counters.
  const auto resolve_span = [&](const Pending& p) {
    if (slo_ != nullptr && p.admit_ns != 0) {
      slo_->close_update(p.admit_ns, upto.count());
    }
  };
  const geo::Tiling& tiling = hier_->tiling();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Pending& p = batch[i];
    if (keep[i] == 0) {
      ++rep.suppressed;
      resolve_span(p);
      continue;
    }
    // Tier 2: dead-band — a fix within dead_band hops of the object's live
    // position carries no tracking information worth the maintenance work.
    if (tier >= 2) {
      const RegionId cur = net_->evaders().region_of(objects_[p.object()]);
      if (tiling.distance(cur, p.region) <= cfg_.dead_band) {
        ++rep.suppressed;
        resolve_span(p);
        continue;
      }
    }
    apply_update(p);
    ++rep.applied;
    resolve_span(p);
  }
  ing.applied += rep.applied;
  ing.suppressed += rep.suppressed;
  return rep;
}

void IngestServer::apply_update(const Pending& p) {
  // The evader model only accepts neighbour moves, so a fix that jumped
  // several regions (suppression gaps, sparse client updates) is applied
  // as a deterministic greedy catch-up walk: always step to the first
  // neighbour (in neighbors() order) that minimizes the remaining
  // distance.
  const geo::Tiling& tiling = hier_->tiling();
  const TargetId t = objects_[p.object()];
  RegionId cur = net_->evaders().region_of(t);
  while (cur != p.region) {
    RegionId best{};
    int best_d = std::numeric_limits<int>::max();
    for (const RegionId n : tiling.neighbors(cur)) {
      const int d = tiling.distance(n, p.region);
      if (d < best_d) {
        best_d = d;
        best = n;
      }
    }
    net_->move_evader(t, best);
    cur = best;
  }
}

void IngestServer::fold_reader_counters() {
  stats::IngestCounters& ing = net_->counters().ingest();
  const std::int64_t d = dropped_.load(std::memory_order_acquire);
  // A reader-side drop was a valid frame off the wire: it joins the
  // identity on both sides at once.
  ing.ingested += d - folded_dropped_;
  ing.dropped += d - folded_dropped_;
  const std::int64_t w = wire_errors_.load(std::memory_order_acquire);
  ing.wire_errors += w - folded_wire_errors_;
  if (slo_ != nullptr) {
    // RED errors for the update class: requests that failed before a span
    // could resolve (tier-3/overflow drops, malformed frames).
    slo_->note_errors(obs::SloClass::kUpdate, net_->now().count(),
                      (d - folded_dropped_) + (w - folded_wire_errors_));
  }
  folded_dropped_ = d;
  folded_wire_errors_ = w;
}

FindOutcome find_with_deadline(tracking::TrackingNetwork& net, RegionId from,
                               TargetId target, sim::Duration deadline,
                               int attempts, sim::Duration backoff) {
  VS_REQUIRE(deadline > sim::Duration::zero(),
             "find deadline must be positive");
  VS_REQUIRE(attempts >= 1, "need at least one find attempt");
  FindOutcome o;
  sim::Duration wait = backoff;
  // Polling slice: check for completion 16 times per deadline so a met
  // deadline costs only the virtual time it actually took, not the whole
  // budget. The slicing is fixed policy, so runs stay deterministic.
  const sim::Duration slice = sim::Duration::micros(
      std::max<std::int64_t>(1, deadline.count() / 16));
  for (int i = 0; i < attempts; ++i) {
    o.id = net.start_find(from, target);
    o.attempts = i + 1;
    const sim::TimePoint cutoff = net.now() + deadline;
    while (net.now() < cutoff && !net.find_result(o.id).done) {
      net.run_until(std::min(cutoff, net.now() + slice));
    }
    if (net.find_result(o.id).done) {
      o.done = true;
      return o;
    }
    if (i + 1 < attempts) {
      // Exponential client backoff before the retry; the missed find stays
      // in flight and may still land, but the RPC's answer is the retry's.
      net.run_for(wait);
      wait = wait * 2;
    }
  }
  o.retry_after = wait;
  return o;
}

}  // namespace vs::serve
