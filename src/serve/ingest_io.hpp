#pragma once
// VSINGEST1 — the compact binary GPS-update wire format of the streaming
// ingest daemon (src/serve/server.hpp).
//
// A stream is a header, a run of framed records, and a trailer:
//
//   "VSINGEST"            8-byte magic
//   u32 version           kIngestFormatVersion
//   --- per frame ---
//   u8  0xB7              frame marker
//   u8  type              1 = update, 2 = round, 3 = find
//   u16 len               payload length (fixed per type; anything else
//                         is an over-length/under-length frame → error)
//   payload               type-specific, below
//   u8  checksum          XOR of type, both len bytes, and every payload
//                         byte — one flipped bit anywhere in the frame is
//                         detected
//   --- trailer ---
//   u8  0x7B              trailer marker
//   u64 frame count
//   "VSINGEND"            8-byte end magic
//
// Payloads (native-endian, same-machine write/read like every other
// vinestalk artifact):
//
//   update:  u64 object, i32 x, i32 y        (16 bytes)
//            a GPS fix: tracked object `object` observed at grid cell
//            (x, y)
//   find:    u64 object, i32 x, i32 y, i64 deadline_us   (24 bytes)
//            a deadline-bounded query RPC issued from grid cell (x, y);
//            captured so query traffic replays byte-identically too
//   round:   i64 upto_us                      (8 bytes)
//            a scheduler-round boundary: "every frame before me was
//            drained in one batch; advance virtual time to upto_us".
//            Live captures write one per drain round — including empty
//            (idle or fully shed) rounds — which is what makes a capture
//            *deterministically replayable*: the replay re-batches frames
//            exactly as the live daemon drained them and advances the
//            world through the same boundaries, so later frames (finds in
//            particular) re-execute at the same virtual times and the
//            world trace comes out byte-identical at any --shards.
//
// Reading is strict and mirrors obs/trace_io: unknown version, bad
// marker, wrong per-type length, checksum mismatch, or a missing/short
// trailer all throw (file reader) or park the parser in a terminal error
// state (incremental reader) — a binary stream cannot be resynchronized
// after desync, so the first malformed byte ends ingestion with exit-1
// error accounting rather than risking a partially applied frame.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace vs::serve {

inline constexpr std::uint32_t kIngestFormatVersion = 1;

/// One GPS fix off the wire.
struct UpdateFrame {
  std::uint64_t object = 0;  // dense daemon-assigned object index
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr bool operator==(const UpdateFrame&,
                                   const UpdateFrame&) = default;
};

/// One drain-round boundary (capture/replay only).
struct RoundFrame {
  std::int64_t upto_us = 0;

  friend constexpr bool operator==(const RoundFrame&,
                                   const RoundFrame&) = default;
};

/// One deadline-bounded find RPC.
struct FindFrame {
  std::uint64_t object = 0;
  std::int32_t x = 0;  // query origin cell
  std::int32_t y = 0;
  std::int64_t deadline_us = 0;

  friend constexpr bool operator==(const FindFrame&,
                                   const FindFrame&) = default;
};

struct IngestFrame {
  enum class Type : std::uint8_t { kUpdate = 1, kRound = 2, kFind = 3 };
  Type type = Type::kUpdate;
  UpdateFrame update;  // meaningful when type == kUpdate
  RoundFrame round;    // meaningful when type == kRound
  FindFrame find;      // meaningful when type == kFind

  friend constexpr bool operator==(const IngestFrame&,
                                   const IngestFrame&) = default;
};

/// Encode helpers — producers (the load generator, tests, the capture
/// writer) all share one byte layout.
void encode_ingest_header(std::string& out);
void encode_frame(std::string& out, const IngestFrame& frame);
void encode_ingest_trailer(std::string& out, std::uint64_t frames);

/// Incremental strict parser for live byte streams (stdin, sockets).
/// feed() appends raw bytes; next() consumes at most one whole frame per
/// call. The first malformation is terminal: next() returns kError from
/// then on and error() describes it. kEnd means the trailer was seen and
/// consistent; bytes after it are an error.
class IngestParser {
 public:
  enum class Status : std::uint8_t {
    kNeedMore,  // no whole frame buffered yet
    kFrame,     // `out` holds the next frame
    kEnd,       // trailer consumed, stream complete
    kError,     // malformed stream; terminal
  };

  void feed(const char* data, std::size_t n);
  Status next(IngestFrame& out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t frames_parsed() const { return frames_; }
  [[nodiscard]] bool complete() const { return state_ == State::kDone; }

 private:
  enum class State : std::uint8_t { kHeader, kFrames, kDone, kError };
  Status fail(const std::string& why);

  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  State state_ = State::kHeader;
  std::string error_;
  std::uint64_t frames_ = 0;
};

/// Streaming writer for capture files: header on construction, frames via
/// append, trailer on finish() (idempotent; also run by the destructor).
class IngestWriter {
 public:
  explicit IngestWriter(const std::string& path);
  ~IngestWriter();
  IngestWriter(const IngestWriter&) = delete;
  IngestWriter& operator=(const IngestWriter&) = delete;

  void append(const IngestFrame& frame);
  void finish();

  [[nodiscard]] std::uint64_t frames_written() const { return count_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::string buf_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

struct IngestFile {
  std::vector<IngestFrame> frames;
};

/// Strict whole-file read (replay / artifact verification): any
/// malformation including a missing trailer throws.
[[nodiscard]] IngestFile read_ingest_file(const std::string& path);

}  // namespace vs::serve
