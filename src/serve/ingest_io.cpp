#include "serve/ingest_io.hpp"

#include <cstring>
#include <iterator>
#include <type_traits>

#include "common/error.hpp"

namespace vs::serve {

namespace {

constexpr char kMagic[8] = {'V', 'S', 'I', 'N', 'G', 'E', 'S', 'T'};
constexpr char kEndMagic[8] = {'V', 'S', 'I', 'N', 'G', 'E', 'N', 'D'};
constexpr std::uint8_t kFrameMarker = 0xB7;
constexpr std::uint8_t kTrailerMarker = 0x7B;
constexpr std::uint16_t kUpdateLen = 16;
constexpr std::uint16_t kRoundLen = 8;
constexpr std::uint16_t kFindLen = 24;

template <class T>
void put(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof(T));
}

template <class T>
T get_raw(const char* p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

std::uint16_t payload_len(IngestFrame::Type type) {
  switch (type) {
    case IngestFrame::Type::kUpdate: return kUpdateLen;
    case IngestFrame::Type::kRound: return kRoundLen;
    case IngestFrame::Type::kFind: return kFindLen;
  }
  return 0;
}

void encode_payload(std::string& buf, const IngestFrame& frame) {
  switch (frame.type) {
    case IngestFrame::Type::kUpdate:
      put(buf, frame.update.object);
      put(buf, frame.update.x);
      put(buf, frame.update.y);
      break;
    case IngestFrame::Type::kRound:
      put(buf, frame.round.upto_us);
      break;
    case IngestFrame::Type::kFind:
      put(buf, frame.find.object);
      put(buf, frame.find.x);
      put(buf, frame.find.y);
      put(buf, frame.find.deadline_us);
      break;
  }
}

std::uint8_t checksum(IngestFrame::Type type, std::uint16_t len,
                      const char* payload) {
  std::uint8_t sum = static_cast<std::uint8_t>(type);
  sum = static_cast<std::uint8_t>(sum ^ (len & 0xFF));
  sum = static_cast<std::uint8_t>(sum ^ (len >> 8));
  for (std::uint16_t i = 0; i < len; ++i) {
    sum = static_cast<std::uint8_t>(sum ^
                                    static_cast<std::uint8_t>(payload[i]));
  }
  return sum;
}

}  // namespace

void encode_ingest_header(std::string& out) {
  out.append(kMagic, sizeof(kMagic));
  put(out, kIngestFormatVersion);
}

void encode_frame(std::string& out, const IngestFrame& frame) {
  const std::uint16_t len = payload_len(frame.type);
  out.push_back(static_cast<char>(kFrameMarker));
  out.push_back(static_cast<char>(frame.type));
  put(out, len);
  const std::size_t payload_at = out.size();
  encode_payload(out, frame);
  out.push_back(static_cast<char>(
      checksum(frame.type, len, out.data() + payload_at)));
}

void encode_ingest_trailer(std::string& out, std::uint64_t frames) {
  out.push_back(static_cast<char>(kTrailerMarker));
  put(out, frames);
  out.append(kEndMagic, sizeof(kEndMagic));
}

void IngestParser::feed(const char* data, std::size_t n) {
  // Discard the consumed prefix before growing — the live buffer stays
  // bounded by one feed() chunk plus a partial frame.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

IngestParser::Status IngestParser::fail(const std::string& why) {
  state_ = State::kError;
  error_ = why;
  return Status::kError;
}

IngestParser::Status IngestParser::next(IngestFrame& out) {
  if (state_ == State::kError) return Status::kError;
  const char* base = buf_.data();
  std::size_t avail = buf_.size() - pos_;
  if (state_ == State::kHeader) {
    if (avail < sizeof(kMagic) + sizeof(std::uint32_t)) {
      return Status::kNeedMore;
    }
    if (std::memcmp(base + pos_, kMagic, sizeof(kMagic)) != 0) {
      return fail("not a VSINGEST1 stream (bad magic)");
    }
    const auto version =
        get_raw<std::uint32_t>(base + pos_ + sizeof(kMagic));
    if (version != kIngestFormatVersion) {
      return fail("unsupported VSINGEST version " + std::to_string(version));
    }
    pos_ += sizeof(kMagic) + sizeof(std::uint32_t);
    avail -= sizeof(kMagic) + sizeof(std::uint32_t);
    state_ = State::kFrames;
  }
  if (state_ == State::kDone) {
    if (avail != 0) return fail("bytes after VSINGEST trailer");
    return Status::kEnd;
  }
  if (avail == 0) return Status::kNeedMore;
  const auto marker = static_cast<std::uint8_t>(base[pos_]);
  if (marker == kTrailerMarker) {
    const std::size_t want = 1 + sizeof(std::uint64_t) + sizeof(kEndMagic);
    if (avail < want) return Status::kNeedMore;
    const auto n = get_raw<std::uint64_t>(base + pos_ + 1);
    if (std::memcmp(base + pos_ + 1 + sizeof(std::uint64_t), kEndMagic,
                    sizeof(kEndMagic)) != 0) {
      return fail("corrupt VSINGEST trailer end magic");
    }
    if (n != frames_) {
      return fail("VSINGEST trailer count " + std::to_string(n) + " != " +
                  std::to_string(frames_) + " frames parsed");
    }
    pos_ += want;
    state_ = State::kDone;
    if (buf_.size() - pos_ != 0) return fail("bytes after VSINGEST trailer");
    return Status::kEnd;
  }
  if (marker != kFrameMarker) {
    return fail("bad VSINGEST frame marker");
  }
  // marker + type + len.
  if (avail < 4) return Status::kNeedMore;
  const auto type_byte = static_cast<std::uint8_t>(base[pos_ + 1]);
  if (type_byte != static_cast<std::uint8_t>(IngestFrame::Type::kUpdate) &&
      type_byte != static_cast<std::uint8_t>(IngestFrame::Type::kRound) &&
      type_byte != static_cast<std::uint8_t>(IngestFrame::Type::kFind)) {
    return fail("unknown VSINGEST frame type " + std::to_string(type_byte));
  }
  const auto type = static_cast<IngestFrame::Type>(type_byte);
  const auto len = get_raw<std::uint16_t>(base + pos_ + 2);
  if (len != payload_len(type)) {
    return fail("VSINGEST frame length " + std::to_string(len) +
                " does not match type (want " +
                std::to_string(payload_len(type)) + ")");
  }
  const std::size_t want = 4 + static_cast<std::size_t>(len) + 1;
  if (avail < want) return Status::kNeedMore;
  const char* payload = base + pos_ + 4;
  const auto sum = static_cast<std::uint8_t>(payload[len]);
  if (sum != checksum(type, len, payload)) {
    return fail("VSINGEST frame checksum mismatch");
  }
  out = IngestFrame{};
  out.type = type;
  switch (type) {
    case IngestFrame::Type::kUpdate:
      out.update.object = get_raw<std::uint64_t>(payload);
      out.update.x = get_raw<std::int32_t>(payload + 8);
      out.update.y = get_raw<std::int32_t>(payload + 12);
      break;
    case IngestFrame::Type::kRound:
      out.round.upto_us = get_raw<std::int64_t>(payload);
      break;
    case IngestFrame::Type::kFind:
      out.find.object = get_raw<std::uint64_t>(payload);
      out.find.x = get_raw<std::int32_t>(payload + 8);
      out.find.y = get_raw<std::int32_t>(payload + 12);
      out.find.deadline_us = get_raw<std::int64_t>(payload + 16);
      break;
  }
  pos_ += want;
  ++frames_;
  return Status::kFrame;
}

IngestWriter::IngestWriter(const std::string& path) : path_(path) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  VS_REQUIRE(out_.good(), "cannot open ingest capture " << path_);
  buf_.clear();
  encode_ingest_header(buf_);
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
}

IngestWriter::~IngestWriter() { finish(); }

void IngestWriter::append(const IngestFrame& frame) {
  VS_REQUIRE(!finished_, "ingest capture already finished");
  buf_.clear();
  encode_frame(buf_, frame);
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  ++count_;
}

void IngestWriter::finish() {
  if (finished_) return;
  finished_ = true;
  buf_.clear();
  encode_ingest_trailer(buf_, count_);
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  out_.flush();
  out_.close();
}

IngestFile read_ingest_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VS_REQUIRE(in.good(), "cannot open ingest file " << path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  IngestParser parser;
  parser.feed(data.data(), data.size());
  IngestFile f;
  for (;;) {
    IngestFrame frame;
    switch (parser.next(frame)) {
      case IngestParser::Status::kFrame:
        f.frames.push_back(frame);
        break;
      case IngestParser::Status::kEnd:
        return f;
      case IngestParser::Status::kNeedMore:
        VS_REQUIRE(false, "truncated VSINGEST stream " << path
                                                       << " (no trailer)");
        break;
      case IngestParser::Status::kError:
        VS_REQUIRE(false,
                   "malformed VSINGEST stream " << path << ": "
                                                << parser.error());
        break;
    }
  }
}

}  // namespace vs::serve
