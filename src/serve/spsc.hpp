#pragma once
// Bounded single-producer/single-consumer ring — the daemon's ingest
// queues. One reader thread pushes (the single producer for every queue),
// the driver thread pops at round boundaries (the single consumer), so a
// lock-free ring with one atomic index per side suffices. A full ring
// refuses the push — backpressure is explicit and the caller accounts the
// drop; memory is bounded by construction.

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace vs::serve {

template <class T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity)
      : buf_(capacity + 1) {
    VS_REQUIRE(capacity > 0, "SPSC queue capacity must be > 0");
  }

  /// Producer side. False when the ring is full (the item is NOT queued).
  bool push(const T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) % buf_.size();
    if (next == head_.load(std::memory_order_acquire)) return false;
    buf_[tail] = v;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = buf_[head];
    head_.store((head + 1) % buf_.size(), std::memory_order_release);
    return true;
  }

  /// Occupancy as seen from either side; exact for the calling side's own
  /// interleaving, momentarily stale for the other — good enough for
  /// watermarks.
  [[nodiscard]] std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : buf_.size() - head + tail;
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size() - 1; }

 private:
  std::vector<T> buf_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

}  // namespace vs::serve
