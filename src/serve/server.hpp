#pragma once
// IngestServer — the robustness core of the streaming ingest/query daemon
// (tools/vinestalk_served.cpp).
//
// Threading model (trackrdrd-style reader/worker split): one reader
// thread parses VSINGEST1 frames and offer()s them into region-keyed
// bounded SPSC rings; the driver thread drains every ring at each
// scheduler-round boundary, runs the degradation ladder over the drained
// batch, applies the surviving updates to the TrackingNetwork, and
// advances virtual time one round. All world mutation happens on the
// driver thread — the reader never touches the simulator.
//
// Backpressure and the three-tier graceful-degradation ladder, driven by
// queue-depth watermarks (deepest per-queue drained batch vs fractions of
// the ring capacity):
//
//   tier 1  coalesce    only the last update per object in the round is
//                       applied; the rest are `suppressed`
//   tier 2  dead-band   updates within `dead_band` hops of the object's
//                       live position are `suppressed` (the adaptive-update
//                       insight: redundant fixes carry no information)
//   tier 3  admission   offer() rejects new updates (`dropped`) with a
//                       retry-after hint until pressure falls below the
//                       tier-2 watermark
//
// A full ring likewise drops at offer(). Every valid update frame is
// accounted exactly once — the conservation identity the tests pin:
//
//   ingested == applied + suppressed + dropped
//
// Determinism and capture/replay: each round appends its drained frames
// (in drain order, pre-ladder) plus one round marker to the VSINGEST1
// capture — empty rounds still write their marker, so every boundary in
// the round clock is in the file. Ladder decisions are pure functions of
// the drained batch, so replaying a capture re-executes the same world
// mutations (and find RPCs) at the same virtual times — the world trace
// is byte-identical to the live run at any --shards. Reader-side drops
// never enter the capture (they never reached the world), so a replay has
// dropped == 0 and the identity still holds.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "hier/grid_hierarchy.hpp"
#include "serve/ingest_io.hpp"
#include "serve/spsc.hpp"
#include "sim/time.hpp"
#include "tracking/network.hpp"

namespace vs::obs {
class SloMonitor;
}

namespace vs::serve {

struct ServeConfig {
  /// Region-keyed SPSC rings (key: region id mod queues).
  std::uint32_t queues = 4;
  /// Slots per ring; bounds ingest memory and anchors the watermarks.
  std::size_t queue_capacity = 256;
  /// Virtual time per drain round.
  sim::Duration round = sim::Duration::millis(1);
  /// Ladder watermarks, in permille of queue_capacity, judged against the
  /// deepest per-queue drained batch each round. Must be non-decreasing.
  std::int64_t tier1_pm = 250;
  std::int64_t tier2_pm = 500;
  std::int64_t tier3_pm = 875;
  /// Tier-2 suppression radius in region hops.
  int dead_band = 1;
  /// Deadline-bounded find RPC: total attempts and the first retry backoff
  /// (doubles per retry).
  int find_attempts = 4;
  sim::Duration find_backoff = sim::Duration::millis(1);
  /// VSINGEST1 capture of drained frames + round markers ("" = off).
  std::string capture_path;
};

/// Outcome of one drain round (telemetry for the daemon's log line).
struct RoundReport {
  int tier = 0;
  std::int64_t drained = 0;
  std::int64_t applied = 0;
  std::int64_t suppressed = 0;
};

/// Outcome of a deadline-bounded find (the daemon's query RPC and the
/// CLI's `find ... --deadline-us` run the identical path).
struct FindOutcome {
  bool done = false;
  FindId id{};
  int attempts = 0;
  /// Client retry hint when the deadline was missed on every attempt.
  sim::Duration retry_after = sim::Duration::zero();
};

class IngestServer {
 public:
  /// The network must outlive the server; `hier` is the world geometry
  /// updates are resolved against. Objects are registered up front with
  /// add_object — wire frames address them by dense index.
  IngestServer(tracking::TrackingNetwork& net,
               const hier::GridHierarchy& hier, ServeConfig cfg);
  ~IngestServer();
  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Register one tracked object starting at `start`; returns its wire
  /// index. Driver thread, before ingestion starts.
  std::uint64_t add_object(RegionId start);
  [[nodiscard]] std::size_t num_objects() const { return objects_.size(); }

  // ---- producer side (one reader thread) ----

  enum class Admit : std::uint8_t {
    kQueued,        // accepted into a ring
    kRejectedShed,  // tier-3 admission control; retry after retry_after()
    kRejectedFull,  // ring full (hard backpressure)
    kRejectedBad,   // unknown object / out-of-bounds fix (wire_errors)
  };

  /// Offer one update off the wire. Thread-safe against the driver.
  Admit offer(const UpdateFrame& update);

  /// Note a terminal wire-format error from the reader's parser.
  void note_wire_error() { wire_errors_.fetch_add(1, std::memory_order_relaxed); }

  /// The client retry-after hint handed out with kRejectedShed.
  [[nodiscard]] sim::Duration retry_after() const { return cfg_.round * 2; }

  // ---- driver side (owns the world) ----

  /// Drain every ring, run the ladder, apply, advance one round.
  RoundReport run_round();

  /// The find RPC: issue a deadline-bounded query for object `object` from
  /// region `from`, with the config's attempt/backoff policy. Runs between
  /// rounds on the driver thread; the frame is captured so query traffic —
  /// which advances virtual time — replays byte-identically too.
  FindOutcome find(RegionId from, std::uint64_t object,
                   sim::Duration deadline);

  /// Final drain + capture trailer + counter fold. Idempotent; also run
  /// by the destructor. After this, offers are rejected as shed.
  void finish();

  /// Deterministically re-execute a capture: batches and round boundaries
  /// come from the file, ladder decisions are recomputed (identically, by
  /// construction). The server must be freshly constructed with the same
  /// config and object registrations as the captured run.
  void replay_file(const std::string& path);

  [[nodiscard]] const ServeConfig& config() const { return cfg_; }
  /// Ladder tier of the most recent round.
  [[nodiscard]] int current_tier() const { return tier_; }

  /// Attach request-level SLO monitoring (null = off, the default). Spans
  /// open at offer()-admission / find issue and close at round resolution
  /// / RPC return; the monitor's data stays in its VSSLO1 sidecar, so
  /// every deterministic artifact is byte-identical with or without one.
  /// The monitor must outlive the server; attach before ingestion starts.
  void set_slo(obs::SloMonitor* slo);

 private:
  struct Pending {
    UpdateFrame update;  // the wire frame, verbatim (capture re-emits it)
    RegionId region{};   // resolved target region
    /// Wall clock at offer()-admission (SLO update span open); 0 when no
    /// monitor is attached or the frame came from a replayed capture.
    /// Never serialized — captures hold only the wire frame.
    std::uint64_t admit_ns = 0;
    [[nodiscard]] std::uint64_t object() const { return update.object; }
  };

  [[nodiscard]] std::size_t queue_of(RegionId r) const {
    return static_cast<std::size_t>(r.value()) % queues_.size();
  }
  [[nodiscard]] std::int64_t watermark_slots(std::int64_t permille) const {
    return (static_cast<std::int64_t>(cfg_.queue_capacity) * permille) / 1000;
  }
  /// Apply one round batch (ladder + capture + world mutation) and account
  /// it; shared verbatim between the live path and replay. `depth_peak` is
  /// the deepest per-queue share of the batch, `upto` the round boundary
  /// the caller advances to afterwards (recorded in the capture marker).
  RoundReport process_batch(const std::vector<Pending>& batch,
                            std::int64_t depth_peak, sim::TimePoint upto);
  /// Fold reader-side atomics into the world's WorkCounters (driver only).
  void fold_reader_counters();
  void apply_update(const Pending& p);
  /// The shared find body (live + replay): deadline RPC, deterministic
  /// rpc_* counter accounting, SLO find span.
  FindOutcome run_find(RegionId from, std::uint64_t object,
                       sim::Duration deadline);

  tracking::TrackingNetwork* net_;
  const hier::GridHierarchy* hier_;
  ServeConfig cfg_;
  obs::SloMonitor* slo_ = nullptr;
  std::vector<std::unique_ptr<SpscQueue<Pending>>> queues_;
  std::vector<TargetId> objects_;
  std::optional<IngestWriter> capture_;
  int tier_ = 0;
  bool finished_ = false;
  std::vector<Pending> batch_;  // reused per-round drain scratch

  // Reader-side accounting (folded into WorkCounters at round boundaries).
  std::atomic<std::int64_t> ingested_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::atomic<std::int64_t> wire_errors_{0};
  std::atomic<bool> shedding_{false};  // tier-3 admission gate
  std::int64_t folded_ingested_ = 0;
  std::int64_t folded_dropped_ = 0;
  std::int64_t folded_wire_errors_ = 0;
};

/// Issue a find from `from` and run the world until it completes or
/// `deadline` of virtual time elapses; on a miss, back off exponentially
/// (backoff, 2*backoff, ...) and retry, `attempts` times in all. The
/// daemon's find RPC and `vinestalk_cli find --deadline-us` both call
/// this, so interactive queries exercise the exact RPC path.
[[nodiscard]] FindOutcome find_with_deadline(tracking::TrackingNetwork& net,
                                             RegionId from, TargetId target,
                                             sim::Duration deadline,
                                             int attempts,
                                             sim::Duration backoff);

}  // namespace vs::serve
