#include "hier/grid_hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vs::hier {

namespace {

/// Smallest MAX >= 1 with base^MAX >= side (= ⌈log_base(D+1)⌉ for D = side-1).
Level levels_needed(int side, int base) {
  Level l = 1;
  std::int64_t span = base;
  while (span < side) {
    span *= base;
    ++l;
  }
  return l;
}

std::int64_t ipow(std::int64_t b, Level e) {
  std::int64_t r = 1;
  for (Level i = 0; i < e; ++i) r *= b;
  return r;
}

}  // namespace

GridHierarchy::GridHierarchy(int width, int height, int base, HeadPolicy policy,
                             std::uint64_t head_seed)
    : grid_(width, height), base_(base) {
  VS_REQUIRE(base >= 2, "grid hierarchy base must be >= 2, got " << base);
  const int side = std::max(width, height);
  VS_REQUIRE(side >= 2, "world must span at least 2 regions");
  const Level max_level = levels_needed(side, base);

  // Per-level block assignment: region (x, y) belongs to block
  // (x / base^l, y / base^l).
  std::vector<LevelAssignment> levels(static_cast<std::size_t>(max_level) + 1);
  for (Level l = 0; l <= max_level; ++l) {
    const std::int64_t block = ipow(base, l);
    const int blocks_x =
        static_cast<int>((width + block - 1) / block);  // ceil division
    auto& assign = levels[static_cast<std::size_t>(l)].cluster_index_of_region;
    assign.resize(grid_.num_regions());
    for (std::size_t u = 0; u < grid_.num_regions(); ++u) {
      const geo::Coord c =
          grid_.coord(RegionId{static_cast<RegionId::rep_type>(u)});
      const auto bx = static_cast<int>(c.x / block);
      const auto by = static_cast<int>(c.y / block);
      assign[u] = by * blocks_x + bx;
    }
  }

  Rng rng{head_seed};
  const auto pick_head = [&](std::span<const RegionId> mem,
                             Level l) -> RegionId {
    if (l == 0 || mem.size() == 1) return mem.front();
    switch (policy) {
      case HeadPolicy::kMinRegion:
        return mem.front();
      case HeadPolicy::kRandom:
        return mem[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(mem.size()) - 1))];
      case HeadPolicy::kCenter:
        break;
    }
    // Member nearest the centroid of the block's bounding box.
    int min_x = width, max_x = -1, min_y = height, max_y = -1;
    for (const RegionId u : mem) {
      const geo::Coord c = grid_.coord(u);
      min_x = std::min(min_x, c.x);
      max_x = std::max(max_x, c.x);
      min_y = std::min(min_y, c.y);
      max_y = std::max(max_y, c.y);
    }
    const double cx = (min_x + max_x) / 2.0;
    const double cy = (min_y + max_y) / 2.0;
    RegionId best = mem.front();
    double best_d = 1e30;
    for (const RegionId u : mem) {
      const geo::Coord c = grid_.coord(u);
      const double d =
          std::max(std::abs(c.x - cx), std::abs(c.y - cy));
      if (d < best_d) {
        best_d = d;
        best = u;
      }
    }
    return best;
  };

  build(grid_, levels, pick_head);

  // Paper's analytic geometry functions for the base-r grid.
  std::vector<std::int64_t> n, p, q, omega;
  for (Level l = 0; l <= max_level; ++l) {
    const std::int64_t rl = ipow(base, l);
    n.push_back(2 * rl - 1);
    p.push_back(rl * base - 1);
    q.push_back(rl);
    omega.push_back(8);
  }
  set_geometry(std::move(n), std::move(p), std::move(q), std::move(omega));
}

}  // namespace vs::hier
