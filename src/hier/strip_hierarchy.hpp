#pragma once
// Base-r hierarchy over a 1-D strip tiling.
//
// Level-l clusters are aligned runs of r^l consecutive regions. Exercises
// the non-grid generality of the cluster model: ω(l) = 2, and geometry
// bounds are the 1-D analogues n(l) = 2r^l − 1, p(l) = r^{l+1} − 1,
// q(l) = r^l.

#include <cstdint>

#include "geo/strip_tiling.hpp"
#include "hier/hierarchy.hpp"

namespace vs::hier {

class StripHierarchy final : public ClusterHierarchy {
 public:
  /// Requires base >= 2 and length >= 2.
  StripHierarchy(int length, int base);

  [[nodiscard]] const geo::StripTiling& strip() const { return strip_; }
  [[nodiscard]] int base() const { return base_; }

 private:
  geo::StripTiling strip_;
  int base_;
};

}  // namespace vs::hier
