#include "hier/validator.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace vs::hier {

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const auto& v : violations) os << v << '\n';
  return os.str();
}

void Validator::add(ValidationReport& report, std::string msg) const {
  if (report.violations.size() < max_violations_) {
    report.violations.push_back(std::move(msg));
  }
}

ValidationReport Validator::validate_all() const {
  ValidationReport report;
  check_structure(report);
  check_geometry_bounds(report);
  check_derived_inequalities(report);
  check_proximity(report);
  return report;
}

void Validator::check_structure(ValidationReport& report) const {
  const auto& h = *h_;
  const auto& t = h.tiling();
  const Level max = h.max_level();

  if (max <= 0) add(report, "MAX must be > 0");

  // Requirement 2: exactly one level-MAX cluster.
  if (h.clusters_at(max).size() != 1) {
    add(report, "level MAX has " + std::to_string(h.clusters_at(max).size()) +
                    " clusters, want 1");
  }

  // Requirement 3: each region is the only member of its level-0 cluster.
  for (const RegionId u : t.all_regions()) {
    const ClusterId c0 = h.cluster_of(u, 0);
    const auto mem = h.members(c0);
    if (mem.size() != 1 || mem.front() != u) {
      add(report, "level-0 cluster of region " + std::to_string(u.value()) +
                      " is not the singleton {region}");
    }
  }

  for (Level l = 0; l <= max; ++l) {
    std::size_t covered = 0;
    for (const ClusterId c : h.clusters_at(l)) {
      // Requirement 1: each cluster belongs to exactly one level.
      if (h.level(c) != l) {
        add(report, "cluster " + std::to_string(c.value()) +
                        " listed at level " + std::to_string(l) +
                        " but reports level " + std::to_string(h.level(c)));
      }
      // Requirement 6: head is a member.
      const auto mem = h.members(c);
      if (std::find(mem.begin(), mem.end(), h.head(c)) == mem.end()) {
        add(report,
            "head of cluster " + std::to_string(c.value()) + " not a member");
      }
      // cluster() must be consistent with members() (requirement 4 —
      // distinct same-level clusters don't overlap — follows since
      // cluster_of is a function and members() round-trips through it).
      for (const RegionId u : mem) {
        if (h.cluster_of(u, l) != c) {
          add(report, "cluster_of(members) round-trip failed for cluster " +
                          std::to_string(c.value()));
        }
      }
      covered += mem.size();
      // Requirement 5 + parent/children consistency.
      if (l != max) {
        const ClusterId par = h.parent(c);
        if (!par.valid() || h.level(par) != l + 1) {
          add(report, "cluster " + std::to_string(c.value()) +
                          " lacks a level-(l+1) parent");
          continue;
        }
        const auto pm = h.members(par);
        for (const RegionId u : mem) {
          if (std::find(pm.begin(), pm.end(), u) == pm.end()) {
            add(report, "member of cluster " + std::to_string(c.value()) +
                            " missing from parent (requirement 5)");
            break;
          }
        }
        const auto kids = h.children(par);
        if (std::find(kids.begin(), kids.end(), c) == kids.end()) {
          add(report, "cluster " + std::to_string(c.value()) +
                          " not in its parent's children()");
        }
      }
      // nbrs(): symmetric, same level, excludes self, matches definition.
      for (const ClusterId b : h.nbrs(c)) {
        if (b == c) add(report, "cluster is its own neighbour");
        if (h.level(b) != l) add(report, "cross-level cluster neighbour");
        if (!h.are_cluster_neighbors(b, c)) {
          add(report, "cluster neighbour relation not symmetric");
        }
      }
    }
    // `cluster` total + requirement 4: per level, clusters partition regions.
    if (covered != t.num_regions()) {
      add(report, "level " + std::to_string(l) + " clusters cover " +
                      std::to_string(covered) + " of " +
                      std::to_string(t.num_regions()) + " regions");
    }
  }

  // nbrs() must equal the derived definition: share a region boundary.
  for (const RegionId u : t.all_regions()) {
    for (const RegionId v : t.neighbors(u)) {
      for (Level l = 0; l <= max; ++l) {
        const ClusterId cu = h.cluster_of(u, l);
        const ClusterId cv = h.cluster_of(v, l);
        if (cu != cv && !h.are_cluster_neighbors(cu, cv)) {
          add(report, "adjacent regions in non-neighbouring level-" +
                          std::to_string(l) + " clusters");
        }
      }
    }
  }
}

void Validator::check_geometry_bounds(ValidationReport& report) const {
  const auto& h = *h_;
  const auto& t = h.tiling();
  const Level max = h.max_level();

  for (Level l = 0; l <= max; ++l) {
    for (const ClusterId c : h.clusters_at(l)) {
      // Assumption 2: at most ω(l) neighbours.
      if (static_cast<std::int64_t>(h.nbrs(c).size()) > h.omega(l)) {
        add(report, "cluster " + std::to_string(c.value()) + " has " +
                        std::to_string(h.nbrs(c).size()) +
                        " neighbours > omega(" + std::to_string(l) + ")=" +
                        std::to_string(h.omega(l)));
      }
      if (l == max) continue;
      // Assumption 3: members within n(l) of any neighbour's members.
      for (const ClusterId b : h.nbrs(c)) {
        if (b < c) continue;  // unordered pair once
        for (const RegionId u : h.members(c)) {
          for (const RegionId v : h.members(b)) {
            if (t.distance(u, v) > h.n(l)) {
              add(report, "n(" + std::to_string(l) + ")=" +
                              std::to_string(h.n(l)) + " violated: dist=" +
                              std::to_string(t.distance(u, v)));
            }
          }
        }
      }
      // Assumption 4: members within p(l) of the parent's members.
      const auto pm = h.members(h.parent(c));
      for (const RegionId u : h.members(c)) {
        for (const RegionId v : pm) {
          if (t.distance(u, v) > h.p(l)) {
            add(report, "p(" + std::to_string(l) + ")=" +
                            std::to_string(h.p(l)) + " violated: dist=" +
                            std::to_string(t.distance(u, v)));
          }
        }
      }
    }
  }

  // Assumption 5: any region within q(l) of a level-l cluster is in it or a
  // neighbour. Checked over all region pairs.
  for (const RegionId u : t.all_regions()) {
    for (const RegionId v : t.all_regions()) {
      const int d = t.distance(u, v);
      for (Level l = 0; l <= max; ++l) {
        if (d > h.q(l)) continue;
        const ClusterId cu = h.cluster_of(u, l);
        const ClusterId cv = h.cluster_of(v, l);
        if (cu != cv && !h.are_cluster_neighbors(cu, cv)) {
          add(report, "q(" + std::to_string(l) + ")=" + std::to_string(h.q(l)) +
                          " violated for regions " + std::to_string(u.value()) +
                          "," + std::to_string(v.value()) + " at dist " +
                          std::to_string(d));
        }
      }
    }
  }
}

void Validator::check_derived_inequalities(ValidationReport& report) const {
  const auto& h = *h_;
  const Level max = h.max_level();
  if (h.q(0) != 1) add(report, "q(0) must be 1, got " + std::to_string(h.q(0)));
  for (Level l = 0; l <= max; ++l) {
    if (h.q(l) > h.n(l)) {
      add(report, "q(l) <= n(l) violated at level " + std::to_string(l));
    }
    if (l >= 1 && 2 * h.q(l - 1) > h.q(l)) {
      add(report, "2q(l-1) <= q(l) violated at level " + std::to_string(l));
    }
    if (l + 1 <= max) {
      if (h.n(l) > h.n(l + 1)) {
        add(report, "n not monotone at level " + std::to_string(l));
      }
      if (h.p(l) > h.p(l + 1)) {
        add(report, "p not monotone at level " + std::to_string(l));
      }
      if (h.p(l) > h.n(l + 1)) {
        add(report, "p(l) <= n(l+1) violated at level " + std::to_string(l));
      }
    }
  }
}

void Validator::check_proximity(ValidationReport& report) const {
  const auto& h = *h_;
  const auto& t = h.tiling();
  const Level max = h.max_level();

  // For each chain top c_l, compute the per-level down-sets D_j of clusters
  // reachable by the paper's chain rule, then require every region
  // neighbouring a chain member to stay within {c_l} ∪ nbrs(c_l) at level l.
  for (Level l = 0; l <= max; ++l) {
    for (const ClusterId top : h.clusters_at(l)) {
      std::set<ClusterId> allowed{top};
      for (const ClusterId b : h.nbrs(top)) allowed.insert(b);

      std::set<ClusterId> down{top};
      for (Level j = l; j >= 0; --j) {
        // Check every cluster in the current down-set.
        for (const ClusterId ck : down) {
          for (const RegionId w : h.members(ck)) {
            for (const RegionId v : t.neighbors(w)) {
              const ClusterId cv = h.cluster_of(v, l);
              if (!allowed.contains(cv)) {
                add(report,
                    "proximity violated: chain from top cluster " +
                        std::to_string(top.value()) + " (level " +
                        std::to_string(l) + ") reaches level-" +
                        std::to_string(j) + " cluster " +
                        std::to_string(ck.value()) +
                        " with an escaping neighbour region " +
                        std::to_string(v.value()));
                if (report.violations.size() >= max_violations_) return;
              }
            }
          }
        }
        if (j == 0) break;
        // Descend: c_{j-1} qualifies iff its parent, or a neighbour's
        // parent, is in D_j.
        std::set<ClusterId> next;
        for (const ClusterId c : h.clusters_at(j - 1)) {
          bool in = down.contains(h.parent(c));
          if (!in) {
            for (const ClusterId b : h.nbrs(c)) {
              if (down.contains(h.parent(b))) {
                in = true;
                break;
              }
            }
          }
          if (in) next.insert(c);
        }
        down = std::move(next);
      }
    }
  }
}

ValidationReport Validator::validate_tiling(const geo::Tiling& t) {
  ValidationReport report;
  const auto add = [&](std::string msg) {
    if (report.violations.size() < 16) report.violations.push_back(std::move(msg));
  };

  for (const RegionId u : t.all_regions()) {
    const auto nbrs = t.neighbors(u);
    for (const RegionId v : nbrs) {
      if (v == u) add("region is its own neighbour");
      if (!t.are_neighbors(v, u)) add("neighbour relation not symmetric");
    }
    // Analytic distance must equal BFS hop distance (and imply diameter).
    const auto bfs = t.bfs_distances(u);
    for (const RegionId v : t.all_regions()) {
      const int d = bfs[static_cast<std::size_t>(v.value())];
      if (d < 0) {
        add("tiling not connected");
        return report;
      }
      if (d != t.distance(u, v)) {
        add("distance(" + std::to_string(u.value()) + "," +
            std::to_string(v.value()) + ")=" +
            std::to_string(t.distance(u, v)) + " but BFS says " +
            std::to_string(d));
      }
      if (d > t.diameter()) add("pair exceeds declared diameter");
    }
  }
  return report;
}

}  // namespace vs::hier
