#pragma once
// Base-r hierarchy over a toroidal grid.
//
// Requires side = r^MAX exactly, so aligned r^l × r^l blocks tile the
// torus evenly and nest. Every block has the full 8 neighbours (wrapping),
// so ω(l) = 8 and the boundary between columns side−1 and 0 is a
// top-level boundary. Geometry bounds are the grid values clipped at the
// torus diameter: n(l) = min(2r^l − 1, ⌊side/2⌋), p(l) = min(r^{l+1} − 1,
// ⌊side/2⌋), q(l) = r^l.

#include "geo/torus_tiling.hpp"
#include "hier/hierarchy.hpp"

namespace vs::hier {

class TorusHierarchy final : public ClusterHierarchy {
 public:
  /// Requires base >= 2 and side an exact power of base (side = base^MAX,
  /// MAX >= 1), side >= 3.
  TorusHierarchy(int side, int base);

  [[nodiscard]] const geo::TorusTiling& torus() const { return torus_; }
  [[nodiscard]] int base() const { return base_; }

 private:
  geo::TorusTiling torus_;
  int base_;
};

}  // namespace vs::hier
