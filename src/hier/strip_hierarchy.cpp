#include "hier/strip_hierarchy.hpp"

#include "common/error.hpp"

namespace vs::hier {

namespace {
std::int64_t ipow(std::int64_t b, Level e) {
  std::int64_t r = 1;
  for (Level i = 0; i < e; ++i) r *= b;
  return r;
}
}  // namespace

StripHierarchy::StripHierarchy(int length, int base)
    : strip_(length), base_(base) {
  VS_REQUIRE(base >= 2, "strip hierarchy base must be >= 2");
  Level max_level = 1;
  while (ipow(base, max_level) < length) ++max_level;

  std::vector<LevelAssignment> levels(static_cast<std::size_t>(max_level) + 1);
  for (Level l = 0; l <= max_level; ++l) {
    const std::int64_t block = ipow(base, l);
    auto& assign = levels[static_cast<std::size_t>(l)].cluster_index_of_region;
    assign.resize(strip_.num_regions());
    for (std::size_t u = 0; u < strip_.num_regions(); ++u) {
      assign[u] = static_cast<std::int32_t>(static_cast<std::int64_t>(u) / block);
    }
  }

  const auto pick_head = [](std::span<const RegionId> mem, Level) -> RegionId {
    return mem[mem.size() / 2];  // middle member
  };
  build(strip_, levels, pick_head);

  std::vector<std::int64_t> n, p, q, omega;
  for (Level l = 0; l <= max_level; ++l) {
    const std::int64_t rl = ipow(base, l);
    n.push_back(2 * rl - 1);
    p.push_back(rl * base - 1);
    q.push_back(rl);
    omega.push_back(2);
  }
  set_geometry(std::move(n), std::move(p), std::move(q), std::move(omega));
}

}  // namespace vs::hier
