#pragma once
// Brute-force checker for the cluster-hierarchy axioms of §II-B.
//
// The hierarchy constructors *declare* geometry functions n, p, q, ω; the
// tracking algorithm's timer inequality and the work/time theorems are
// sound only if the declared values actually satisfy the paper's
// assumptions. This validator checks every structural requirement (1-6),
// every geometry assumption (proximity, ω, n, p, q), and the derived
// inequalities, directly against the definitions. It is O(R²·MAX)-ish and
// intended for the test suite on small-to-medium worlds.

#include <string>
#include <vector>

#include "hier/hierarchy.hpp"

namespace vs::hier {

struct ValidationReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// All violations joined by newlines (gtest failure message helper).
  [[nodiscard]] std::string to_string() const;
};

class Validator {
 public:
  explicit Validator(const ClusterHierarchy& h, std::size_t max_violations = 16)
      : h_(&h), max_violations_(max_violations) {}

  /// Runs every check below.
  [[nodiscard]] ValidationReport validate_all() const;

  /// Structural requirements 1-6 of §II-B.
  void check_structure(ValidationReport& report) const;
  /// Geometry assumption 1 (proximity).
  void check_proximity(ValidationReport& report) const;
  /// Geometry assumptions 2-5 (ω, n, p, q bounds).
  void check_geometry_bounds(ValidationReport& report) const;
  /// Derived relations: q(0)=1, q(l)≤n(l), 2q(l−1)≤q(l), monotone n/p,
  /// p(l)≤n(l+1).
  void check_derived_inequalities(ValidationReport& report) const;

  /// Cross-checks the tiling's analytic `distance` against BFS and its
  /// neighbour relation for symmetry/irreflexivity.
  static ValidationReport validate_tiling(const geo::Tiling& t);

 private:
  void add(ValidationReport& report, std::string msg) const;

  const ClusterHierarchy* h_;
  std::size_t max_violations_;
};

}  // namespace vs::hier
