#include "hier/hierarchy.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/error.hpp"

namespace vs::hier {

namespace {
std::size_t idx(ClusterId c) { return static_cast<std::size_t>(c.value()); }
std::size_t idx(RegionId u) { return static_cast<std::size_t>(u.value()); }
}  // namespace

void ClusterHierarchy::build(const geo::Tiling& t,
                             const std::vector<LevelAssignment>& levels,
                             const HeadSelector& pick_head) {
  tiling_ = &t;
  VS_REQUIRE(levels.size() >= 2, "need MAX > 0, got " << levels.size() << " level(s)");
  max_level_ = static_cast<Level>(levels.size()) - 1;
  const std::size_t num_regions = t.num_regions();

  // Count clusters per level and assign dense global ids, level-major.
  std::vector<std::size_t> clusters_at_level(levels.size(), 0);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const auto& assign = levels[l].cluster_index_of_region;
    VS_REQUIRE(assign.size() == num_regions,
               "level " << l << " assignment covers " << assign.size()
                        << " of " << num_regions << " regions");
    std::int32_t max_index = -1;
    for (const std::int32_t ci : assign) {
      VS_REQUIRE(ci >= 0, "negative cluster index at level " << l);
      max_index = std::max(max_index, ci);
    }
    clusters_at_level[l] = static_cast<std::size_t>(max_index) + 1;
  }

  // Requirement 3: level-0 clusters are singleton regions.
  VS_REQUIRE(clusters_at_level[0] == num_regions,
             "level 0 must have one cluster per region");
  // Requirement 2: exactly one level-MAX cluster.
  VS_REQUIRE(clusters_at_level.back() == 1,
             "level MAX must have exactly one cluster, got "
                 << clusters_at_level.back());

  std::vector<std::size_t> level_base(levels.size() + 1, 0);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    level_base[l + 1] = level_base[l] + clusters_at_level[l];
  }
  const std::size_t total = level_base.back();

  // cluster_of_ table and level_of_ per cluster. Requirements 1 and 4 hold
  // by construction (each cluster id belongs to one level; assignment is a
  // function, so same-level clusters partition the regions).
  cluster_of_.assign(levels.size() * num_regions, ClusterId::invalid());
  level_of_.assign(total, 0);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const auto& assign = levels[l].cluster_index_of_region;
    for (std::size_t u = 0; u < num_regions; ++u) {
      const auto global = static_cast<ClusterId::rep_type>(
          level_base[l] + static_cast<std::size_t>(assign[u]));
      cluster_of_[l * num_regions + u] = ClusterId{global};
    }
    for (std::size_t c = 0; c < clusters_at_level[l]; ++c) {
      level_of_[level_base[l] + c] = static_cast<Level>(l);
    }
  }

  // Members (CSR), ascending region order per cluster.
  {
    std::vector<std::size_t> counts(total, 0);
    for (std::size_t l = 0; l < levels.size(); ++l) {
      for (std::size_t u = 0; u < num_regions; ++u) {
        ++counts[idx(cluster_of_[l * num_regions + u])];
      }
    }
    member_offset_.assign(total + 1, 0);
    std::partial_sum(counts.begin(), counts.end(), member_offset_.begin() + 1);
    member_flat_.resize(member_offset_.back());
    std::vector<std::size_t> cursor(member_offset_.begin(),
                                    member_offset_.end() - 1);
    for (std::size_t l = 0; l < levels.size(); ++l) {
      for (std::size_t u = 0; u < num_regions; ++u) {
        const ClusterId c = cluster_of_[l * num_regions + u];
        member_flat_[cursor[idx(c)]++] =
            RegionId{static_cast<RegionId::rep_type>(u)};
      }
    }
    for (std::size_t c = 0; c < total; ++c) {
      VS_REQUIRE(member_offset_[c + 1] > member_offset_[c],
                 "empty cluster " << c << " — `cluster` must be onto");
    }
  }

  // Requirement: every cluster's member set is connected in the region
  // graph (a cluster is "a connected set of regions"). Flat scratch keyed
  // by region id keeps this linear per level.
  {
    std::vector<std::uint8_t> mark(num_regions, 0);  // 1 = member, 2 = seen
    std::vector<RegionId> stack;
    for (std::size_t c = 0; c < total; ++c) {
      const std::span<const RegionId> mem{
          member_flat_.data() + member_offset_[c],
          member_offset_[c + 1] - member_offset_[c]};
      for (const RegionId u : mem) mark[idx(u)] = 1;
      std::size_t seen = 1;
      mark[idx(mem.front())] = 2;
      stack.assign(1, mem.front());
      while (!stack.empty()) {
        const RegionId u = stack.back();
        stack.pop_back();
        for (const RegionId v : t.neighbors(u)) {
          if (mark[idx(v)] == 1) {
            mark[idx(v)] = 2;
            ++seen;
            stack.push_back(v);
          }
        }
      }
      VS_REQUIRE(seen == mem.size(),
                 "cluster " << c << " is not a connected set of regions");
      for (const RegionId u : mem) mark[idx(u)] = 0;
    }
  }

  // Parent / children. Requirement 5: all members of a level-l cluster lie
  // in the same level-(l+1) cluster.
  parent_.assign(total, ClusterId::invalid());
  for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
    for (std::size_t u = 0; u < num_regions; ++u) {
      const ClusterId c = cluster_of_[l * num_regions + u];
      const ClusterId up = cluster_of_[(l + 1) * num_regions + u];
      if (!parent_[idx(c)].valid()) {
        parent_[idx(c)] = up;
      } else {
        VS_REQUIRE(parent_[idx(c)] == up,
                   "cluster " << c << " straddles two level-" << (l + 1)
                              << " clusters (requirement 5)");
      }
    }
  }
  {
    std::vector<std::size_t> counts(total, 0);
    for (std::size_t c = 0; c < total; ++c) {
      if (parent_[c].valid()) ++counts[idx(parent_[c])];
    }
    child_offset_.assign(total + 1, 0);
    std::partial_sum(counts.begin(), counts.end(), child_offset_.begin() + 1);
    child_flat_.resize(child_offset_.back());
    std::vector<std::size_t> cursor(child_offset_.begin(),
                                    child_offset_.end() - 1);
    for (std::size_t c = 0; c < total; ++c) {
      if (parent_[c].valid()) {
        child_flat_[cursor[idx(parent_[c])]++] =
            ClusterId{static_cast<ClusterId::rep_type>(c)};
      }
    }
  }

  // Neighbour clusters: derived from the region neighbour relation.
  // Gather-then-dedupe keeps this linear-ish for large worlds.
  {
    std::vector<std::vector<ClusterId>> nbr_lists(total);
    for (std::size_t u = 0; u < num_regions; ++u) {
      const RegionId ru{static_cast<RegionId::rep_type>(u)};
      for (const RegionId rv : t.neighbors(ru)) {
        for (std::size_t l = 0; l < levels.size(); ++l) {
          const ClusterId cu = cluster_of_[l * num_regions + u];
          const ClusterId cv = cluster_of_[l * num_regions + idx(rv)];
          if (cu != cv) nbr_lists[idx(cu)].push_back(cv);
        }
      }
    }
    nbr_offset_.assign(total + 1, 0);
    for (std::size_t c = 0; c < total; ++c) {
      auto& list = nbr_lists[c];
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      nbr_offset_[c + 1] = nbr_offset_[c] + list.size();
    }
    nbr_flat_.resize(nbr_offset_.back());
    for (std::size_t c = 0; c < total; ++c) {
      std::copy(nbr_lists[c].begin(), nbr_lists[c].end(),
                nbr_flat_.begin() + static_cast<std::ptrdiff_t>(nbr_offset_[c]));
    }
  }

  // Heads. Requirement 6: h(c) ∈ members(c).
  head_.assign(total, RegionId::invalid());
  for (std::size_t c = 0; c < total; ++c) {
    const std::span<const RegionId> mem{
        member_flat_.data() + member_offset_[c],
        member_offset_[c + 1] - member_offset_[c]};
    const RegionId h = pick_head(mem, level_of_[c]);
    VS_REQUIRE(std::find(mem.begin(), mem.end(), h) != mem.end(),
               "head selector returned a non-member for cluster " << c);
    head_[c] = h;
  }

  // Level index.
  level_offset_ = level_base;
  level_flat_.resize(total);
  for (std::size_t c = 0; c < total; ++c) {
    level_flat_[c] = ClusterId{static_cast<ClusterId::rep_type>(c)};
  }

  root_ = ClusterId{static_cast<ClusterId::rep_type>(level_base[levels.size() - 1])};
}

void ClusterHierarchy::set_geometry(std::vector<std::int64_t> n,
                                    std::vector<std::int64_t> p,
                                    std::vector<std::int64_t> q,
                                    std::vector<std::int64_t> omega) {
  const auto want = static_cast<std::size_t>(max_level_) + 1;
  VS_REQUIRE(n.size() == want && p.size() == want && q.size() == want &&
                 omega.size() == want,
             "geometry vectors must have MAX+1 entries");
  n_ = std::move(n);
  p_ = std::move(p);
  q_ = std::move(q);
  omega_ = std::move(omega);
}

ClusterId ClusterHierarchy::cluster_of(RegionId u, Level l) const {
  VS_REQUIRE(l >= 0 && l <= max_level_, "level " << l << " out of range");
  VS_REQUIRE(u.valid() && idx(u) < tiling_->num_regions(),
             "region " << u << " out of range");
  return cluster_of_[static_cast<std::size_t>(l) * tiling_->num_regions() +
                     idx(u)];
}

Level ClusterHierarchy::level(ClusterId c) const {
  check_cluster(c);
  return level_of_[idx(c)];
}

RegionId ClusterHierarchy::head(ClusterId c) const {
  check_cluster(c);
  return head_[idx(c)];
}

std::span<const RegionId> ClusterHierarchy::members(ClusterId c) const {
  check_cluster(c);
  return {member_flat_.data() + member_offset_[idx(c)],
          member_offset_[idx(c) + 1] - member_offset_[idx(c)]};
}

std::span<const ClusterId> ClusterHierarchy::nbrs(ClusterId c) const {
  check_cluster(c);
  return {nbr_flat_.data() + nbr_offset_[idx(c)],
          nbr_offset_[idx(c) + 1] - nbr_offset_[idx(c)]};
}

ClusterId ClusterHierarchy::parent(ClusterId c) const {
  check_cluster(c);
  return parent_[idx(c)];
}

std::span<const ClusterId> ClusterHierarchy::children(ClusterId c) const {
  check_cluster(c);
  return {child_flat_.data() + child_offset_[idx(c)],
          child_offset_[idx(c) + 1] - child_offset_[idx(c)]};
}

std::int64_t ClusterHierarchy::n(Level l) const {
  VS_REQUIRE(l >= 0 && l <= max_level_, "level out of range");
  return n_[static_cast<std::size_t>(l)];
}
std::int64_t ClusterHierarchy::p(Level l) const {
  VS_REQUIRE(l >= 0 && l <= max_level_, "level out of range");
  return p_[static_cast<std::size_t>(l)];
}
std::int64_t ClusterHierarchy::q(Level l) const {
  VS_REQUIRE(l >= 0 && l <= max_level_, "level out of range");
  return q_[static_cast<std::size_t>(l)];
}
std::int64_t ClusterHierarchy::omega(Level l) const {
  VS_REQUIRE(l >= 0 && l <= max_level_, "level out of range");
  return omega_[static_cast<std::size_t>(l)];
}

bool ClusterHierarchy::are_cluster_neighbors(ClusterId a, ClusterId b) const {
  const auto ns = nbrs(a);
  return std::binary_search(ns.begin(), ns.end(), b);
}

int ClusterHierarchy::head_distance(ClusterId a, ClusterId b) const {
  return tiling_->distance(head(a), head(b));
}

std::span<const ClusterId> ClusterHierarchy::clusters_at(Level l) const {
  VS_REQUIRE(l >= 0 && l <= max_level_, "level out of range");
  const auto lo = level_offset_[static_cast<std::size_t>(l)];
  const auto hi = level_offset_[static_cast<std::size_t>(l) + 1];
  return {level_flat_.data() + lo, hi - lo};
}

void ClusterHierarchy::check_cluster(ClusterId c) const {
  VS_REQUIRE(c.valid() && idx(c) < num_clusters(),
             "cluster id " << c << " out of range");
}

}  // namespace vs::hier
