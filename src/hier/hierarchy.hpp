#pragma once
// Cluster hierarchy (paper §II-B).
//
// Regions are organised into the four-tuple (C, L, cluster: U×L → C,
// h: C → U): a set of cluster ids, levels {0..MAX}, a total onto map from
// (region, level) to the containing cluster, and a clusterhead map. Derived
// notions (members, nbrs, children, parent) and the geometry functions
// n, p, q, ω parameterise the tracking algorithm's timers, message delays,
// and its work/time analysis.
//
// This class is a concrete dense store; specific hierarchies (grid, strip)
// construct it by supplying per-level region→cluster assignments, a head
// selection rule, and analytic geometry functions. All structural
// requirements that are cheap to check are enforced at build time; the
// expensive geometric axioms are checked by hier::Validator in tests.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "geo/tiling.hpp"

namespace vs::hier {

class ClusterHierarchy {
 public:
  virtual ~ClusterHierarchy() = default;

  ClusterHierarchy(const ClusterHierarchy&) = delete;
  ClusterHierarchy& operator=(const ClusterHierarchy&) = delete;

  /// The tiling this hierarchy is imposed on.
  [[nodiscard]] const geo::Tiling& tiling() const { return *tiling_; }

  /// MAX — the level of the unique top cluster (MAX > 0).
  [[nodiscard]] Level max_level() const { return max_level_; }

  /// Total number of clusters across all levels (dense id space).
  [[nodiscard]] std::size_t num_clusters() const { return level_of_.size(); }

  /// cluster(u, l): the level-l cluster containing region u.
  [[nodiscard]] ClusterId cluster_of(RegionId u, Level l) const;

  /// level(c).
  [[nodiscard]] Level level(ClusterId c) const;

  /// h(c): the clusterhead region (a member of c).
  [[nodiscard]] RegionId head(ClusterId c) const;

  /// members(c): regions of c, ascending id order.
  [[nodiscard]] std::span<const RegionId> members(ClusterId c) const;

  /// nbrs(c): same-level clusters sharing a region boundary with c.
  [[nodiscard]] std::span<const ClusterId> nbrs(ClusterId c) const;

  /// parent(c); invalid id at level MAX.
  [[nodiscard]] ClusterId parent(ClusterId c) const;

  /// children(c); empty at level 0.
  [[nodiscard]] std::span<const ClusterId> children(ClusterId c) const;

  /// The unique level-MAX cluster.
  [[nodiscard]] ClusterId root() const { return root_; }

  /// Geometry bounds (§II-B assumptions 2-5). Valid for every level in
  /// {0..MAX}; n/p are only *used* below MAX but defined everywhere.
  [[nodiscard]] std::int64_t n(Level l) const;
  [[nodiscard]] std::int64_t p(Level l) const;
  [[nodiscard]] std::int64_t q(Level l) const;
  [[nodiscard]] std::int64_t omega(Level l) const;

  /// Convenience: true iff b ∈ nbrs(a).
  [[nodiscard]] bool are_cluster_neighbors(ClusterId a, ClusterId b) const;

  /// Hop distance between the heads of two clusters (the work metric for a
  /// message between the hosting VSAs).
  [[nodiscard]] int head_distance(ClusterId a, ClusterId b) const;

  /// Clusters of a given level, ascending id order.
  [[nodiscard]] std::span<const ClusterId> clusters_at(Level l) const;

 protected:
  ClusterHierarchy() = default;

  /// Chooses a head among `members` of a cluster at `level`.
  using HeadSelector =
      std::function<RegionId(std::span<const RegionId>, Level)>;

  /// Region→local-cluster-index assignment for one level. Index values must
  /// be dense in [0, #clusters at that level).
  struct LevelAssignment {
    std::vector<std::int32_t> cluster_index_of_region;
  };

  /// Builds all derived structure. `levels[l]` describes level l; level 0
  /// must assign each region its own singleton cluster; the last level must
  /// assign every region to one cluster. Checks requirements 1-6 of §II-B
  /// that are structural; throws vs::Error on violation.
  void build(const geo::Tiling& t, const std::vector<LevelAssignment>& levels,
             const HeadSelector& pick_head);

  /// Declares the geometry functions (one value per level 0..MAX).
  void set_geometry(std::vector<std::int64_t> n, std::vector<std::int64_t> p,
                    std::vector<std::int64_t> q,
                    std::vector<std::int64_t> omega);

 private:
  void check_cluster(ClusterId c) const;

  const geo::Tiling* tiling_ = nullptr;
  Level max_level_ = 0;
  ClusterId root_{};

  // Per-cluster dense tables.
  std::vector<Level> level_of_;
  std::vector<RegionId> head_;
  std::vector<ClusterId> parent_;
  std::vector<std::size_t> member_offset_;
  std::vector<RegionId> member_flat_;
  std::vector<std::size_t> nbr_offset_;
  std::vector<ClusterId> nbr_flat_;
  std::vector<std::size_t> child_offset_;
  std::vector<ClusterId> child_flat_;

  // cluster_of_[l * num_regions + u].
  std::vector<ClusterId> cluster_of_;

  // Clusters grouped by level.
  std::vector<std::size_t> level_offset_;
  std::vector<ClusterId> level_flat_;

  // Geometry, one entry per level.
  std::vector<std::int64_t> n_, p_, q_, omega_;
};

}  // namespace vs::hier
