#pragma once
// Base-r grid hierarchy — the paper's §II-B example.
//
// Level-l clusters are axis-aligned r^l × r^l blocks of regions (clipped at
// the world boundary). The paper's parameters:
//   MAX  = ⌈log_r(D + 1)⌉        (one top block covers the world)
//   n(l) = 2·r^l − 1             (max distance into a neighbouring cluster)
//   p(l) = r^{l+1} − 1           (max distance within the parent)
//   q(l) = r^l                   (coverage radius of cluster ∪ neighbours)
//   ω(l) = 8                     (king-graph block adjacency)
// These are *declared* here and *verified* against the definitions by
// hier::Validator in the test suite, including on clipped (non-power) grids.

#include <cstdint>

#include "geo/grid_tiling.hpp"
#include "hier/hierarchy.hpp"

namespace vs::hier {

/// Clusterhead placement rule. The paper allows any member ("Any region in
/// a cluster can be the clusterhead"); the choice affects only constants in
/// the work bounds, which bench_grid_base explores.
enum class HeadPolicy {
  kCenter,     // member nearest the block centre (default; balanced constants)
  kMinRegion,  // lowest region id (deterministic corner)
  kRandom,     // uniform member, seeded
};

class GridHierarchy final : public ClusterHierarchy {
 public:
  /// Builds the base-`base` hierarchy over a width×height grid.
  /// Requires base >= 2 and max(width, height) >= 2.
  GridHierarchy(int width, int height, int base,
                HeadPolicy policy = HeadPolicy::kCenter,
                std::uint64_t head_seed = 1);

  [[nodiscard]] const geo::GridTiling& grid() const { return grid_; }
  [[nodiscard]] int base() const { return base_; }

 private:
  geo::GridTiling grid_;
  int base_;
};

}  // namespace vs::hier
