#include "hier/torus_hierarchy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vs::hier {

namespace {
std::int64_t ipow(std::int64_t b, Level e) {
  std::int64_t r = 1;
  for (Level i = 0; i < e; ++i) r *= b;
  return r;
}
}  // namespace

TorusHierarchy::TorusHierarchy(int side, int base)
    : torus_(side), base_(base) {
  VS_REQUIRE(base >= 2, "torus hierarchy base must be >= 2");
  Level max_level = 0;
  std::int64_t span = 1;
  while (span < side) {
    span *= base;
    ++max_level;
  }
  VS_REQUIRE(span == side && max_level >= 1,
             "torus side " << side << " must be an exact power of base "
                           << base);

  std::vector<LevelAssignment> levels(static_cast<std::size_t>(max_level) + 1);
  for (Level l = 0; l <= max_level; ++l) {
    const std::int64_t block = ipow(base, l);
    const int blocks_per_side = static_cast<int>(side / block);
    auto& assign = levels[static_cast<std::size_t>(l)].cluster_index_of_region;
    assign.resize(torus_.num_regions());
    for (std::size_t u = 0; u < torus_.num_regions(); ++u) {
      const geo::Coord c =
          torus_.coord(RegionId{static_cast<RegionId::rep_type>(u)});
      assign[u] = static_cast<std::int32_t>((c.y / block) * blocks_per_side +
                                            (c.x / block));
    }
  }

  const auto pick_head = [this](std::span<const RegionId> mem,
                                Level l) -> RegionId {
    if (l == 0 || mem.size() == 1) return mem.front();
    // Block centre (blocks are axis-aligned, so the member at the middle
    // offset of the sorted member list is the centre row's centre cell).
    return mem[mem.size() / 2];
  };
  build(torus_, levels, pick_head);

  // The grid's analytic bounds remain valid upper bounds on the torus
  // (wrap only *shortens* distances), and keeping them unclipped preserves
  // the derived inequality chain (q ≤ n, 2q(l−1) ≤ q(l), monotonicity).
  std::vector<std::int64_t> n, p, q, omega;
  for (Level l = 0; l <= max_level; ++l) {
    const std::int64_t rl = ipow(base, l);
    n.push_back(2 * rl - 1);
    p.push_back(rl * base - 1);
    q.push_back(rl);
    omega.push_back(8);
  }
  set_geometry(std::move(n), std::move(p), std::move(q), std::move(omega));
}

}  // namespace vs::hier
