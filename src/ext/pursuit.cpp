#include "ext/pursuit.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace vs::ext {

PursuitCoordinator::PursuitCoordinator(tracking::TrackingNetwork& net,
                                       const hier::GridHierarchy& hierarchy,
                                       PursuitConfig config)
    : net_(&net), hier_(&hierarchy), config_(config) {
  VS_REQUIRE(config.pursuer_speed >= 1, "pursuer speed must be >= 1");
}

void PursuitCoordinator::add_pursuer(RegionId start) {
  pursuers_.push_back(Pursuer{start, std::nullopt});
}

void PursuitCoordinator::add_target(TargetId target, vsa::Mover* mover) {
  targets_.push_back(
      Target{target, mover, false, net_->evaders().region_of(target)});
}

void PursuitCoordinator::assign() {
  // Command center: repeatedly match the closest (pursuer, uncaught
  // target) pair, so pursuers spread over distinct targets when possible.
  for (auto& p : pursuers_) p.assigned.reset();
  std::vector<bool> pursuer_used(pursuers_.size(), false);
  std::vector<bool> target_used(targets_.size(), false);
  const auto& t = hier_->tiling();
  const std::size_t live = static_cast<std::size_t>(std::count_if(
      targets_.begin(), targets_.end(), [](const Target& x) { return !x.caught; }));
  const std::size_t pairs = std::min(pursuers_.size(), live);
  for (std::size_t round = 0; round < pairs; ++round) {
    int best = std::numeric_limits<int>::max();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < pursuers_.size(); ++i) {
      if (pursuer_used[i]) continue;
      for (std::size_t j = 0; j < targets_.size(); ++j) {
        if (target_used[j] || targets_[j].caught) continue;
        const int d = t.distance(pursuers_[i].pos, targets_[j].last_seen);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    pursuer_used[bi] = true;
    target_used[bj] = true;
    pursuers_[bi].assigned = targets_[bj].id;
  }
  // Leftover pursuers double up on the nearest uncaught target.
  for (std::size_t i = 0; i < pursuers_.size(); ++i) {
    if (pursuers_[i].assigned) continue;
    int best = std::numeric_limits<int>::max();
    for (const auto& target : targets_) {
      if (target.caught) continue;
      const int d = t.distance(pursuers_[i].pos, target.last_seen);
      if (d < best) {
        best = d;
        pursuers_[i].assigned = target.id;
      }
    }
  }
}

RegionId PursuitCoordinator::step_toward(RegionId from, RegionId goal,
                                         int speed) {
  const auto& grid = hier_->grid();
  geo::Coord at = grid.coord(from);
  const geo::Coord g = grid.coord(goal);
  for (int s = 0; s < speed && (at.x != g.x || at.y != g.y); ++s) {
    at.x += g.x == at.x ? 0 : (g.x > at.x ? 1 : -1);
    at.y += g.y == at.y ? 0 : (g.y > at.y ? 1 : -1);
  }
  return grid.region_at(at);
}

PursuitOutcome PursuitCoordinator::run() {
  VS_REQUIRE(!pursuers_.empty() && !targets_.empty(),
             "need pursuers and targets");
  PursuitOutcome out;
  out.caught_round.assign(targets_.size(), -1);
  const sim::TimePoint start = net_->now();
  auto& counters = net_->counters();
  const std::int64_t msgs0 = counters.find_messages();
  const std::int64_t work0 = counters.find_work();

  assign();
  for (int round = 0; round < config_.max_rounds; ++round) {
    out.rounds = round + 1;
    // Evaders move one step.
    for (auto& target : targets_) {
      if (target.caught || target.mover == nullptr) continue;
      const RegionId cur = net_->evaders().region_of(target.id);
      net_->move_evader(target.id, target.mover->next(cur));
    }
    // Let tracking updates propagate for the round duration.
    net_->run_for(config_.round);

    // Pursuers query their assigned target and step toward the answer.
    bool caught_any = false;
    for (auto& p : pursuers_) {
      if (!p.assigned) continue;
      auto* target = &*std::find_if(
          targets_.begin(), targets_.end(),
          [&](const Target& x) { return x.id == *p.assigned; });
      if (target->caught) continue;
      const FindId f = net_->start_find(p.pos, target->id);
      net_->run_for(config_.round);
      const auto& r = net_->find_result(f);
      if (r.done) target->last_seen = r.found_region;
      p.pos = step_toward(p.pos, target->last_seen, config_.pursuer_speed);
      if (p.pos == net_->evaders().region_of(target->id)) {
        target->caught = true;
        caught_any = true;
        out.caught_round[static_cast<std::size_t>(
            target - targets_.data())] = round;
      }
    }
    if (caught_any) assign();
    if (std::all_of(targets_.begin(), targets_.end(),
                    [](const Target& x) { return x.caught; })) {
      out.all_caught = true;
      break;
    }
  }
  out.elapsed = net_->now() - start;
  out.find_messages = counters.find_messages() - msgs0;
  out.find_work = counters.find_work() - work0;
  return out;
}

}  // namespace vs::ext
