#pragma once
// Coordinated multi-finder pursuit (paper §VII).
//
// The paper proposes letting tracking VSAs feed data-repository VSAs
// acting as command centers that direct finders to targets "to eliminate
// as much overlap in pursuit as possible" (cf. [15]). This extension
// implements that loop on top of multi-target VINESTALK:
//   - several evaders are tracked concurrently (Tracker state is keyed by
//     TargetId);
//   - pursuers periodically issue finds for their assigned target and step
//     toward the reported region (greedy Chebyshev steps on the grid);
//   - a command center assigns pursuers to targets by greedy min-distance
//     matching, recomputed whenever a target is caught.
// A pursuit ends when every evader shares a region with some pursuer.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "hier/grid_hierarchy.hpp"
#include "tracking/network.hpp"
#include "vsa/evader.hpp"

namespace vs::ext {

struct PursuitConfig {
  /// Pursuer speed: regions stepped per evader step.
  int pursuer_speed = 2;
  /// Virtual time between rounds (evader step + pursuer finds/steps).
  sim::Duration round = sim::Duration::millis(200);
  /// Safety cap.
  int max_rounds = 20000;
  std::uint64_t seed = 7;
};

struct PursuitOutcome {
  bool all_caught = false;
  int rounds = 0;
  sim::Duration elapsed = sim::Duration::zero();
  std::int64_t find_messages = 0;
  std::int64_t find_work = 0;
  /// Round at which each target was caught (-1 if never).
  std::vector<int> caught_round;
};

class PursuitCoordinator {
 public:
  /// `net` must be built over a GridHierarchy (greedy steps use
  /// coordinates). Targets must already be registered in the network.
  PursuitCoordinator(tracking::TrackingNetwork& net,
                     const hier::GridHierarchy& hierarchy,
                     PursuitConfig config);

  void add_pursuer(RegionId start);
  /// Registers an evader to be pursued, with its movement strategy
  /// (`mover` may be null for a stationary target).
  void add_target(TargetId target, vsa::Mover* mover);

  /// Runs rounds until capture or the round cap.
  PursuitOutcome run();

 private:
  struct Pursuer {
    RegionId pos{};
    std::optional<TargetId> assigned;
  };
  struct Target {
    TargetId id{};
    vsa::Mover* mover = nullptr;
    bool caught = false;
    /// Last find answer the command center holds for this target.
    RegionId last_seen{};
  };

  void assign();  // greedy min-distance matching at the command center
  [[nodiscard]] RegionId step_toward(RegionId from, RegionId goal, int speed);

  tracking::TrackingNetwork* net_;
  const hier::GridHierarchy* hier_;
  PursuitConfig config_;
  std::vector<Pursuer> pursuers_;
  std::vector<Target> targets_;
};

}  // namespace vs::ext
