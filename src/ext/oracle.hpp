#pragma once
// Global-view repair oracle — the differential-testing reference for the
// distributed §VII stabilizer.
//
// This is the original (pre-heartbeat) Stabilizer detection pass: it reads
// the simulator's global snapshot, decides which repair messages a fully
// informed observer would inject, and sends them as ordinary protocol
// traffic. The live protocol (ext::Stabilizer) reaches the same decisions
// through heartbeat/ack exchanges only; tests drive both against the same
// seeded damage and require convergence to identical pointer state. The
// oracle is a test fixture — production code must not use it (it violates
// the distributed-knowledge discipline by construction).

#include <cstdint>

#include "tracking/network.hpp"

namespace vs::ext {

class GlobalViewOracle {
 public:
  GlobalViewOracle(tracking::TrackingNetwork& net, TargetId target);

  /// One omniscient detection/repair pass; returns the number of repair
  /// messages injected. Skips entirely while move messages are in transit
  /// (a healthy mid-update structure needs no repair).
  int tick_once();

  [[nodiscard]] std::int64_t repairs() const { return repairs_; }
  [[nodiscard]] std::int64_t ticks() const { return ticks_; }

 private:
  tracking::TrackingNetwork* net_;
  TargetId target_;
  std::int64_t repairs_{0};
  std::int64_t ticks_{0};
};

}  // namespace vs::ext
