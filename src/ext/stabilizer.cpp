#include "ext/stabilizer.hpp"

#include "common/log.hpp"

namespace vs::ext {

using tracking::TrackerSnapshot;
using vsa::HbClaim;
using vsa::Message;
using vsa::MsgType;

Stabilizer::Stabilizer(tracking::TrackingNetwork& net, TargetId target,
                       sim::Duration period)
    : net_(&net),
      target_(target),
      period_(period),
      timer_(net.scheduler(), [this] { on_tick(); }),
      retry_timer_(net.scheduler(), [this] { on_retry(); }),
      anchor_miss_(net.hierarchy().num_clusters(), 0),
      downward_ok_(net.hierarchy().num_clusters(), -1) {
  hb_token_ = net_->add_heartbeat_handler(
      [this](ClusterId dest, const Message& m) { on_heartbeat(dest, m); });
}

Stabilizer::~Stabilizer() { net_->remove_heartbeat_handler(hb_token_); }

void Stabilizer::start() {
  running_ = true;
  timer_.arm_after(period_);
}

void Stabilizer::stop() {
  running_ = false;
  timer_.disarm();
  retry_timer_.disarm();
  pending_.clear();
}

void Stabilizer::on_tick() {
  if (!running_) return;
  const obs::ProfScope prof(net_->profiler(), obs::ProfDomain::kStabilizer);
  tick_once();
  if (running_) timer_.arm_after(period_);
}

obs::OpId Stabilizer::tick_hb_op() const {
  return obs::kTraceCompiled
             ? obs::make_op(obs::OpClass::kHeartbeat,
                            static_cast<std::uint64_t>(ticks_))
             : obs::kBackgroundOp;
}

obs::OpId Stabilizer::tick_repair_op() const {
  return obs::kTraceCompiled
             ? obs::make_op(obs::OpClass::kRepair,
                            static_cast<std::uint64_t>(ticks_))
             : obs::kBackgroundOp;
}

obs::OpId Stabilizer::repair_op_from(obs::OpId source) const {
  if (!obs::kTraceCompiled) return obs::kBackgroundOp;
  if (obs::op_class(source) == obs::OpClass::kHeartbeat) {
    return obs::make_op(obs::OpClass::kRepair, obs::op_index(source));
  }
  return tick_repair_op();
}

bool Stabilizer::reattaching(ClusterId y) const {
  const TrackerSnapshot s = net_->tracker(y).state(target_);
  return !s.p.valid() &&
         (s.c.valid() || net_->tracker(y).timer_armed(target_));
}

bool Stabilizer::vertically_attached(ClusterId x,
                                     const TrackerSnapshot& s) const {
  const auto& h = net_->hierarchy();
  return s.p.valid() && h.level(x) != h.max_level() && s.p == h.parent(x);
}

int Stabilizer::tick_once() {
  ++ticks_;
  int sync = 0;
  // A fresh probe round: whatever last round never heard back about gets
  // re-examined from scratch.
  pending_.clear();
  retry_timer_.disarm();

  // Client-side re-detection (§IV-A: GPS inputs are periodic). Believing
  // clients whose level-0 cluster sent no presence query since the last
  // round conclude its marker was wiped and re-send the detection grow.
  // The first round only primes the query flags — before any query was
  // ever issued, silence carries no information.
  if (primed_) {
    const int grows =
        net_->clients().refresh_detection(target_, tick_repair_op());
    repairs_ += grows;
    sync += grows;
  }
  primed_ = true;

  const auto& h = net_->hierarchy();
  const auto n = static_cast<ClusterId::rep_type>(h.num_clusters());
  for (ClusterId::rep_type i = 0; i < n; ++i) {
    const ClusterId x{i};
    const auto idx = static_cast<std::size_t>(i);
    auto& tracker = net_->tracker(x);
    const TrackerSnapshot s = tracker.state(target_);
    if (tracker.timer_armed(target_)) {
      // Mid-transition by the protocol's own book-keeping: not damage.
      anchor_miss_[idx] = 0;
      continue;
    }
    // Lost timer: a grow front (c≠⊥, p=⊥) or shrink front (c=⊥, p≠⊥)
    // below MAX whose timer a VSA reset wiped would otherwise sit forever.
    // Purely local: re-fire the expiry outputs.
    if (h.level(x) != h.max_level() && (s.c.valid() != s.p.valid())) {
      tracker.nudge_timer(target_, tick_repair_op());
      ++repairs_;
      ++sync;
      anchor_miss_[idx] = 0;
      continue;  // state just changed; probe the new shape next round
    }
    // Anchor accounting. Roots (p=⊥) are self-anchored; everyone else
    // must keep hearing the downward pulse, or it sits in an unanchored
    // component — a p-cycle, which no local pointer rule can see — and
    // detaches itself. The synthesized shrink is a local input to x's own
    // tracker (the co-located stabilizer telling it its subtree is dead);
    // the ordinary shrink cascade then retires the fragment.
    if (s.p.valid()) {
      if (++anchor_miss_[idx] > kAnchorMissLimit) {
        anchor_miss_[idx] = 0;
        if (s.c.valid()) {
          Message m;
          m.type = MsgType::kShrink;
          m.from_cluster = s.c;
          m.target = target_;
          m.op = tick_repair_op();
          tracker.on_message(m);
          ++repairs_;
          ++sync;
          continue;
        }
      }
    } else {
      anchor_miss_[idx] = 0;
    }
    probe_cluster(x);
  }
  arm_retry();
  return sync;
}

void Stabilizer::probe_cluster(ClusterId x) {
  const auto& h = net_->hierarchy();
  const TrackerSnapshot s = net_->tracker(x).state(target_);
  const obs::OpId hb = tick_hb_op();

  // Anchor origination: every pointer-state root pulses its subtree. A
  // pulse cannot loop: forwarding requires receipt from one's own p, so a
  // circulating pulse would need the c-cycle's reversed p-cycle — which
  // has no root to originate from and no entry point from outside.
  if (!s.p.valid() && s.c.valid() && s.c != x) {
    send_probe(x, s.c, HbClaim::kAnchor, /*track=*/false, hb);
  }
  if (s.c.valid() && s.c != x) {
    send_probe(x, s.c, HbClaim::kChild, /*track=*/true, hb);
  }
  if (h.level(x) == 0 && s.c == x) {
    // Detection-marker presence query, broadcast to the region's clients.
    Message q;
    q.type = MsgType::kHeartbeat;
    q.hb_claim = HbClaim::kClientQuery;
    q.from_cluster = x;
    q.target = target_;
    q.op = hb;
    net_->cgcast().broadcast_to_clients(x, q);
    ++probes_sent_;
  }
  if (s.p.valid()) {
    send_probe(x, s.p, HbClaim::kParent, /*track=*/true, hb);
    const bool vertical = vertically_attached(x, s);
    const bool lateral = h.are_cluster_neighbors(x, s.p);
    if (vertical || lateral) {
      const HbClaim claim =
          vertical ? HbClaim::kAdvertUp : HbClaim::kAdvertDown;
      for (const ClusterId nb : h.nbrs(x)) {
        send_probe(x, nb, claim, /*track=*/true, hb);
      }
    }
  }
  if (s.nbrptup.valid()) {
    send_probe(x, s.nbrptup, HbClaim::kSecondaryUp, /*track=*/false, hb);
  }
  if (s.nbrptdown.valid()) {
    send_probe(x, s.nbrptdown, HbClaim::kSecondaryDown, /*track=*/false, hb);
  }
}

void Stabilizer::send_probe(ClusterId from, ClusterId to, HbClaim claim,
                            bool track, obs::OpId op) {
  Message m;
  m.type = MsgType::kHeartbeat;
  m.hb_claim = claim;
  m.from_cluster = from;
  m.target = target_;
  m.op = op;
  net_->cgcast().send(from, to, m);
  ++probes_sent_;
  if (track) pending_.push_back(PendingProbe{from, to, claim, 0});
}

void Stabilizer::send_ack(ClusterId from, ClusterId to, HbClaim claim,
                          bool ok, ClusterId pointer, obs::OpId op) {
  Message m;
  m.type = MsgType::kHeartbeatAck;
  m.hb_claim = claim;
  m.hb_ok = ok;
  m.from_cluster = from;
  m.ack_pointer = pointer;
  m.target = target_;
  m.op = op;
  net_->cgcast().send(from, to, m);
}

void Stabilizer::send_repair(ClusterId from, ClusterId to, MsgType type,
                             obs::OpId op) {
  Message m;
  m.type = type;
  m.from_cluster = from;
  m.target = target_;
  m.op = op;
  net_->cgcast().send(from, to, m);
  ++repairs_;
}

void Stabilizer::on_heartbeat(ClusterId dest, const Message& m) {
  if (m.target != target_) return;
  const obs::ProfScope prof(net_->profiler(), obs::ProfDomain::kStabilizer);
  if (m.type == MsgType::kHeartbeat) {
    on_probe(dest, m);
  } else {
    on_ack(dest, m);
  }
}

void Stabilizer::on_probe(ClusterId y, const Message& m) {
  const auto& h = net_->hierarchy();
  const ClusterId s = m.from_cluster;  // the prober
  const TrackerSnapshot sy = net_->tracker(y).state(target_);
  // Acks and anchor forwards stay in the probing round's heartbeat op;
  // repairs the probe uncovers move to the round's repair op.
  const obs::OpId hb = m.op;
  const obs::OpId rep = repair_op_from(m.op);
  switch (m.hb_claim) {
    case HbClaim::kChild: {
      // s claims its c is y. On a mismatch y cannot attribute to its own
      // in-progress re-attachment, the failed heartbeat manifests as the
      // shrink s's stale child link implies.
      const bool ok = sy.p == s;
      send_ack(y, s, HbClaim::kChild, ok, sy.p, hb);
      if (!ok && !reattaching(y)) send_repair(y, s, MsgType::kShrink, rep);
      break;
    }
    case HbClaim::kParent:
      // s claims its p is y; the ack carries y's own p so s can judge
      // y's verticality (Lemma 4.3 repair) without reading y's state.
      send_ack(y, s, HbClaim::kParent, sy.c == s, sy.p, hb);
      break;
    case HbClaim::kAdvertUp:
      send_ack(y, s, HbClaim::kAdvertUp, sy.nbrptup == s, sy.nbrptup, hb);
      break;
    case HbClaim::kAdvertDown:
      send_ack(y, s, HbClaim::kAdvertDown, sy.nbrptdown == s, sy.nbrptdown,
               hb);
      break;
    case HbClaim::kSecondaryUp: {
      // s holds y in nbrptup, valid only while y is vertically attached;
      // a stale claim is answered with the shrinkUpd y never sent.
      if (!vertically_attached(y, sy)) {
        send_repair(y, s, MsgType::kShrinkUpd, rep);
      }
      break;
    }
    case HbClaim::kSecondaryDown: {
      const bool lateral =
          sy.p.valid() && h.are_cluster_neighbors(y, sy.p);
      if (!lateral) send_repair(y, s, MsgType::kShrinkUpd, rep);
      break;
    }
    case HbClaim::kAnchor:
      // Accept only from own parent; forward down the child link.
      if (sy.p == s) {
        anchor_miss_[static_cast<std::size_t>(y.value())] = 0;
        if (sy.c.valid() && sy.c != y) {
          send_probe(y, sy.c, HbClaim::kAnchor, /*track=*/false, hb);
        }
      }
      break;
    case HbClaim::kClientQuery:
    case HbClaim::kNone:
      break;  // client-directed / malformed: not ours
  }
}

void Stabilizer::on_ack(ClusterId x, const Message& m) {
  const auto& h = net_->hierarchy();
  const ClusterId y = m.from_cluster;  // the responder
  std::erase_if(pending_, [&](const PendingProbe& p) {
    return p.from == x && p.to == y && p.claim == m.hb_claim;
  });
  const obs::OpId rep = repair_op_from(m.op);
  const TrackerSnapshot sx = net_->tracker(x).state(target_);
  switch (m.hb_claim) {
    case HbClaim::kChild:
      // Cache the downward-link verdict; it gates the re-grow rule.
      if (sx.c == y) {
        downward_ok_[static_cast<std::size_t>(x.value())] =
            m.hb_ok ? 1 : 0;
      }
      break;
    case HbClaim::kParent: {
      if (sx.p != y) break;  // pointer moved on since the probe
      const bool lateral = h.are_cluster_neighbors(x, y);
      const bool y_vertical = m.ack_pointer.valid() &&
                              h.level(y) != h.max_level() &&
                              m.ack_pointer == h.parent(y);
      if (lateral && !y_vertical && m.hb_ok) {
        // Chained lateral link (Lemma 4.3 broken): the confirmed target
        // is itself laterally hung. Unravel from below — it drops x.
        send_repair(x, y, MsgType::kShrink, rep);
      } else if (!m.hb_ok) {
        // Broken parent link: y lost its matching child pointer.
        // Re-attach only with an intact downward link (the detection
        // marker, or a child confirmed to point back) — dead fragments
        // must dissolve, not hijack the live path.
        const bool detection = h.level(x) == 0 && sx.c == x;
        const bool downward_intact =
            detection ||
            (sx.c.valid() && sx.c != x &&
             downward_ok_[static_cast<std::size_t>(x.value())] == 1);
        if (downward_intact && !net_->tracker(x).timer_armed(target_)) {
          send_repair(x, y, MsgType::kGrow, rep);
        }
      }
      break;
    }
    case HbClaim::kAdvertUp:
      // A restarted neighbour forgot the advertisement — re-send it, if
      // the claim is still current.
      if (!m.hb_ok && vertically_attached(x, sx)) {
        send_repair(x, y, MsgType::kGrowPar, rep);
      }
      break;
    case HbClaim::kAdvertDown:
      if (!m.hb_ok && sx.p.valid() &&
          h.are_cluster_neighbors(x, sx.p)) {
        send_repair(x, y, MsgType::kGrowNbr, rep);
      }
      break;
    default:
      break;
  }
}

void Stabilizer::arm_retry() {
  if (pending_.empty()) return;
  retry_delay_ = sim::Duration::micros(period_.count() / 4);
  retry_timer_.arm_after(retry_delay_);
}

void Stabilizer::on_retry() {
  const obs::ProfScope prof(net_->profiler(), obs::ProfDomain::kStabilizer);
  // Retransmit whatever was never acknowledged (its host VSA may have been
  // dead — or restarted meanwhile), with exponential backoff; give a probe
  // up after kMaxRetries until the next tick re-examines the pointer.
  std::vector<PendingProbe> again;
  again.reserve(pending_.size());
  for (PendingProbe& p : pending_) {
    if (p.attempts >= kMaxRetries) continue;
    Message m;
    m.type = MsgType::kHeartbeat;
    m.hb_claim = p.claim;
    m.from_cluster = p.from;
    m.target = target_;
    m.op = tick_hb_op();  // retries stay in the round that issued them
    net_->cgcast().send(p.from, p.to, m);
    ++probes_sent_;
    again.push_back(PendingProbe{p.from, p.to, p.claim, p.attempts + 1});
  }
  pending_ = std::move(again);
  if (!pending_.empty()) {
    retry_delay_ = retry_delay_ * 2;
    retry_timer_.arm_after(retry_delay_);
  }
}

}  // namespace vs::ext
