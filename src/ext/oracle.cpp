#include "ext/oracle.hpp"

#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "vsa/messages.hpp"

namespace vs::ext {

using tracking::SystemSnapshot;
using vsa::Message;
using vsa::MsgType;

GlobalViewOracle::GlobalViewOracle(tracking::TrackingNetwork& net,
                                   TargetId target)
    : net_(&net), target_(target) {}

int GlobalViewOracle::tick_once() {
  ++ticks_;
  const SystemSnapshot snap = net_->snapshot(target_);
  const hier::ClusterHierarchy& h = *snap.hier;

  // A healthy system with updates still in flight needs no repair — and
  // poking it could duplicate in-transit messages. Wait for the channel to
  // clear (the heartbeat analogue: heartbeats are much slower than moves).
  if (!snap.in_transit.empty()) return 0;

  int injected = 0;
  auto& cg = net_->cgcast();
  const auto send = [&](ClusterId from, ClusterId to, MsgType type) {
    Message m;
    m.type = type;
    m.from_cluster = from;
    m.target = target_;
    cg.send(from, to, m);
    ++injected;
  };

  const RegionId evader_at = net_->evaders().region_of(target_);
  const ClusterId evader_c0 = h.cluster_of(evader_at, 0);

  // Cycle dissolution: arbitrary corruption (self-stabilization's
  // adversarial start) can close the p-links into a cycle that looks
  // locally intact to every member, so no local rule ever fires. The
  // distributed analogue is the root-anchored heartbeat: cycle members
  // never hear the root and time out. Detect cycles by walking p-links
  // and dissolve them by shrinking each member's child link; the ordinary
  // shrink cascade then retires the members.
  {
    std::vector<std::uint8_t> status(snap.trackers.size(), 0);  // 0=unknown
    constexpr std::uint8_t kOk = 1, kCycle = 2, kVisiting = 3;
    for (const auto& start : snap.trackers) {
      if (status[static_cast<std::size_t>(start.clust.value())] != 0) continue;
      // Walk up, marking the trail.
      std::vector<ClusterId> trail;
      ClusterId cur = start.clust;
      std::uint8_t verdict = kOk;
      while (true) {
        auto& st = status[static_cast<std::size_t>(cur.value())];
        if (st == kVisiting) {
          verdict = kCycle;  // closed a loop within this walk
          break;
        }
        if (st != 0) {
          verdict = st;  // join an already-classified chain
          break;
        }
        st = kVisiting;
        trail.push_back(cur);
        const ClusterId up = snap.at(cur).p;
        if (!up.valid()) break;  // root or front: anchored
        cur = up;
      }
      for (const ClusterId c : trail) {
        status[static_cast<std::size_t>(c.value())] = verdict;
      }
    }
    for (const auto& s : snap.trackers) {
      if (status[static_cast<std::size_t>(s.clust.value())] != kCycle) {
        continue;
      }
      if (s.c.valid() && s.c != s.clust) {
        send(s.c, s.clust, MsgType::kShrink);
      } else if (s.c == s.clust) {
        // A level-0 self pointer inside a cycle: the client re-detection
        // shrink (it cannot be the evader's true cluster, whose p-chain
        // is anchored... unless the cycle captured it — then the refresh
        // below rebuilds it after the cycle dissolves).
        Message m;
        m.type = MsgType::kShrink;
        m.from_cluster = s.clust;
        m.target = target_;
        cg.send_from_client(h.members(s.clust).front(), m);
        ++injected;
      }
    }
  }

  for (const auto& s : snap.trackers) {
    const ClusterId x = s.clust;
    // False detection marker: a level-0 cluster still claims "object
    // here" although the evader left (its shrink was lost to a VSA
    // failure). The clients' periodic re-detection re-sends the shrink.
    if (h.level(x) == 0 && s.c == x && x != evader_c0) {
      Message m;
      m.type = MsgType::kShrink;
      m.from_cluster = x;
      m.target = target_;
      cg.send_from_client(h.members(x).front(), m);
      ++injected;
      continue;  // let the fragment dissolve before other repairs touch it
    }
    // Lost timer: a grow front (c≠⊥, p=⊥) or shrink front (c=⊥, p≠⊥)
    // below MAX whose timer a VSA reset wiped would otherwise sit
    // forever. The heartbeat re-fires the expiry outputs; armed timers
    // are left strictly alone (nudge_timer is a no-op for them).
    if (h.level(x) != h.max_level() && (s.c.valid() != s.p.valid())) {
      auto& tracker = net_->tracker(x);
      if (!tracker.timer_armed(target_)) {
        tracker.nudge_timer(target_);
        ++injected;
      }
    }
    // Stale child link: x believes its path child is s.c, but s.c does
    // not point back. The heartbeat miss manifests as a shrink from that
    // child — except when the child looks like a reset process that is
    // about to re-attach right here (it still has a subtree or an armed
    // timer); shrinking then would needlessly dismantle x's ancestors.
    if (s.c.valid() && s.c != x && snap.at(s.c).p != x) {
      const auto& child = snap.at(s.c);
      const bool reattaching =
          !child.p.valid() &&
          (child.c.valid() || net_->tracker(s.c).timer_armed(target_));
      if (!reattaching) send(s.c, x, MsgType::kShrink);
    }
    // Broken parent link: x is attached to s.p, but s.p lost its matching
    // child pointer. Re-attach by re-sending the grow — but only when x's
    // own downward link is intact (its child points back, or x is the
    // evader's level-0 self pointer); dead fragments must dissolve via
    // the shrink rule instead of hijacking the live path.
    if (s.p.valid() && s.c.valid() && snap.at(s.p).c != x) {
      const bool downward_intact =
          (s.c == x && x == evader_c0) ||
          (s.c != x && snap.at(s.c).p == x);
      if (downward_intact) send(x, s.p, MsgType::kGrow);
    }
    // Chained lateral links: x hangs laterally off a neighbour that is
    // itself laterally connected — Lemma 4.3's invariant (lateral targets
    // are parent-connected) broken by corruption. Unravel from below: the
    // target drops x (a shrink apparently from x), after which x's
    // broken-parent repair re-grows through the target's *vertical*
    // position once it re-attaches properly.
    if (s.p.valid() && h.are_cluster_neighbors(x, s.p)) {
      const auto& target_state = snap.at(s.p);
      const bool target_vertical = target_state.p.valid() &&
                                   h.level(s.p) != h.max_level() &&
                                   target_state.p == h.parent(s.p);
      if (!target_vertical && target_state.c == x) {
        send(x, s.p, MsgType::kShrink);
      }
    }
    // Missing secondary pointers: a restarted neighbour forgot this
    // cluster's growPar/growNbr advertisement — re-send it.
    if (s.p.valid()) {
      const bool vertical = h.level(x) != h.max_level() &&
                            s.p == h.parent(x);
      const bool lateral = h.are_cluster_neighbors(x, s.p);
      if (vertical || lateral) {
        const MsgType note = vertical ? MsgType::kGrowPar : MsgType::kGrowNbr;
        for (const ClusterId nb : h.nbrs(x)) {
          const auto& n = snap.at(nb);
          const ClusterId held = vertical ? n.nbrptup : n.nbrptdown;
          if (held != x) send(x, nb, note);
        }
      }
    }
    // Stale secondary pointers: the shrinkUpd that a failed VSA never sent.
    if (s.nbrptup.valid()) {
      const auto& n = snap.at(s.nbrptup);
      const bool still_vertical = n.p.valid() &&
                                  h.level(s.nbrptup) != h.max_level() &&
                                  n.p == h.parent(s.nbrptup);
      if (!still_vertical) send(s.nbrptup, x, MsgType::kShrinkUpd);
    }
    if (s.nbrptdown.valid()) {
      const auto& n = snap.at(s.nbrptdown);
      const bool still_lateral =
          n.p.valid() && h.are_cluster_neighbors(s.nbrptdown, n.p);
      if (!still_lateral) send(s.nbrptdown, x, MsgType::kShrinkUpd);
    }
  }

  // Detection refresh: the evader's level-0 cluster must carry the self
  // pointer; if its VSA restarted, the clients' periodic re-detection
  // re-sends the grow.
  if (snap.at(evader_c0).c != evader_c0) {
    Message m;
    m.type = MsgType::kGrow;
    m.from_cluster = evader_c0;
    m.target = target_;
    cg.send_from_client(evader_at, m);
    ++injected;
  }

  if (injected > 0) {
    VS_DEBUG("oracle injected " << injected << " repair messages at "
                                << net_->now());
  }
  repairs_ += injected;
  return injected;
}

}  // namespace vs::ext
