#pragma once
// Heartbeat-style repair of the tracking structure (paper §VII).
//
// The paper sketches making VINESTALK self-stabilizing "mainly through
// heartbeats", as in STALK. This extension implements the repair loop: a
// periodic tick detects the damage VSA failures/restarts leave behind —
// a reset process forgets its pointers, so the path breaks and neighbours
// hold stale secondary pointers — and repairs it *with ordinary protocol
// messages*, exactly the messages the distributed heartbeat exchange would
// trigger:
//   - a parent whose child no longer points back receives a shrink from
//     that child (deadwood cleanup);
//   - a child whose parent no longer points back re-sends its grow
//     (re-attachment; the grow terminates where the path is intact);
//   - the evader's level-0 cluster re-receives the client grow if its
//     self pointer was lost (detection refresh);
//   - stale secondary pointers receive the missing shrinkUpd.
// Detection uses the simulator's global view in place of per-link
// heartbeat timers; the repair traffic, costs and handler behaviour are
// the real protocol's (documented substitution, DESIGN.md).

#include <cstdint>

#include "sim/timer.hpp"
#include "tracking/network.hpp"

namespace vs::ext {

class Stabilizer {
 public:
  /// Repairs the structure for `target` every `period`. The period should
  /// comfortably exceed the move-update time at the top level, so that
  /// in-flight updates of a healthy run are never mistaken for damage
  /// (the tick skips entirely while move messages are in transit).
  Stabilizer(tracking::TrackingNetwork& net, TargetId target,
             sim::Duration period);

  /// Starts the periodic tick.
  void start();
  /// Stops ticking (lets the scheduler drain).
  void stop();

  /// One detection/repair pass; exposed for deterministic tests.
  /// Returns the number of repair messages injected.
  int tick_once();

  [[nodiscard]] std::int64_t repairs() const { return repairs_; }
  [[nodiscard]] std::int64_t ticks() const { return ticks_; }

 private:
  void on_tick();

  tracking::TrackingNetwork* net_;
  TargetId target_;
  sim::Duration period_;
  sim::Timer timer_;
  bool running_ = false;
  std::int64_t repairs_{0};
  std::int64_t ticks_{0};
};

}  // namespace vs::ext
