#pragma once
// Distributed heartbeat self-stabilization (paper §VII).
//
// The paper makes VINESTALK self-stabilizing "mainly through heartbeats",
// as in STALK. This extension implements that protocol for real: a
// stabilizer subautomaton co-located with every cluster's Tracker
// periodically probes the processes its pointers name — over C-gcast, with
// kHeartbeat/kHeartbeatAck messages — and repairs mismatches with ordinary
// protocol traffic (grow / shrink / growPar / growNbr / shrinkUpd). No
// rule reads another cluster's state: every decision uses only the local
// pointer set, the static hierarchy, and what arrived on the wire. (The
// retired global-view scan survives as ext::GlobalViewOracle, a
// differential-testing reference only.)
//
// Probe vocabulary (HbClaim), per tick and per cluster x with state:
//  * kChild → x.c: "my child is you". The receiver acks whether its p
//    points back and, on a mismatch it cannot attribute to its own
//    in-progress re-attachment, sends x the shrink a failed heartbeat
//    implies. Acks also maintain x's downward-intact knowledge, which
//    gates the re-grow rule.
//  * kParent → x.p: "my parent is you". The ack carries the receiver's
//    own p (ack_pointer) and whether its c points back; on a miss with an
//    intact downward link x re-sends its grow, and a confirmed lateral
//    target that is no longer vertically attached is unravelled with a
//    shrink (Lemma 4.3 repair).
//  * kAdvertUp / kAdvertDown → each neighbour: "you should hold me in
//    nbrptup/nbrptdown". A miss ack re-sends the growPar/growNbr.
//  * kSecondaryUp / kSecondaryDown → the held pointer: the receiver
//    answers a stale claim directly with the shrinkUpd it never sent.
//  * kAnchor: every pointer-state root (p = ⊥) pulses an anchor down its
//    c-links each tick; members forward it to their own child. A cluster
//    with a parent pointer that misses kAnchorMissLimit consecutive
//    pulses concludes it sits in an unanchored component (a p-cycle or
//    orphaned loop) and detaches itself — the distributed replacement for
//    the oracle's global cycle walk.
//  * kClientQuery: a level-0 cluster carrying the detection marker
//    broadcasts a presence query to its region's clients; clients answer
//    a false marker with the missing shrink, and believing clients whose
//    cluster went silent (a wiped marker) re-send the detection grow
//    (ClientPopulation::refresh_detection).
//
// Unanswered probes (a dead VSA drops them) are retried within the tick
// with exponential backoff, then abandoned until the next tick re-probes
// from scratch. Clusters whose grow/shrink timer is armed are mid-update
// and are not probed — transient protocol states are not damage.

#include <cstdint>
#include <vector>

#include "sim/timer.hpp"
#include "tracking/network.hpp"
#include "vsa/messages.hpp"

namespace vs::ext {

class Stabilizer {
 public:
  /// Probes the structure for `target` every `period`. The period should
  /// comfortably exceed the move-update time at the top level, so probe
  /// round-trips complete and in-flight updates of a healthy run are not
  /// mistaken for damage.
  Stabilizer(tracking::TrackingNetwork& net, TargetId target,
             sim::Duration period);
  /// Detaches the heartbeat handler. The network must outlive this.
  ~Stabilizer();

  Stabilizer(const Stabilizer&) = delete;
  Stabilizer& operator=(const Stabilizer&) = delete;

  /// Starts the periodic tick.
  void start();
  /// Stops ticking (lets the scheduler drain).
  void stop();

  /// One probe round; exposed for deterministic tests. Returns the number
  /// of repair actions applied synchronously (local timer nudges,
  /// anchor-timeout detachments, client re-detections); repairs triggered
  /// by probe responses land asynchronously and show up in repairs() once
  /// the scheduler drains.
  int tick_once();

  /// Repair actions so far: repair messages sent plus local nudges and
  /// detachments. Heartbeat/ack traffic is not counted here (see
  /// stats::WorkCounters::heartbeats()).
  [[nodiscard]] std::int64_t repairs() const { return repairs_; }
  [[nodiscard]] std::int64_t ticks() const { return ticks_; }
  /// Heartbeat probes sent by this stabilizer (anchors + claims; acks are
  /// the receivers').
  [[nodiscard]] std::int64_t probes_sent() const { return probes_sent_; }

  /// Missed-anchor ticks after which a parented cluster self-detaches.
  static constexpr int kAnchorMissLimit = 3;
  /// Probe retransmissions before giving up until the next tick.
  static constexpr int kMaxRetries = 2;

 private:
  struct PendingProbe {
    ClusterId from{};
    ClusterId to{};
    vsa::HbClaim claim{vsa::HbClaim::kNone};
    int attempts = 0;
  };

  void on_tick();
  void on_heartbeat(ClusterId dest, const vsa::Message& m);
  void on_probe(ClusterId dest, const vsa::Message& m);
  void on_ack(ClusterId dest, const vsa::Message& m);
  void probe_cluster(ClusterId x);
  /// Cost attribution: probe/ack traffic is charged to the heartbeat op of
  /// the probing tick (acks/forwards inherit the probe's op); repairs are
  /// charged to the matching repair op — same tick index, kRepair class —
  /// so a round's probing and the damage it uncovers stay distinguishable.
  void send_probe(ClusterId from, ClusterId to, vsa::HbClaim claim,
                  bool track, obs::OpId op);
  void send_ack(ClusterId from, ClusterId to, vsa::HbClaim claim, bool ok,
                ClusterId pointer, obs::OpId op);
  void send_repair(ClusterId from, ClusterId to, vsa::MsgType type,
                   obs::OpId op);
  /// Heartbeat op of the current tick / repair op derived from a received
  /// probe-or-ack's op (falling back to the current tick's repair op).
  [[nodiscard]] obs::OpId tick_hb_op() const;
  [[nodiscard]] obs::OpId tick_repair_op() const;
  [[nodiscard]] obs::OpId repair_op_from(obs::OpId source) const;
  void on_retry();
  void arm_retry();
  /// Local predicate: is `y` a reset process mid-re-attachment (subtree or
  /// armed timer but no parent yet)?
  [[nodiscard]] bool reattaching(ClusterId y) const;
  [[nodiscard]] bool vertically_attached(ClusterId x,
                                         const tracking::TrackerSnapshot& s)
      const;

  tracking::TrackingNetwork* net_;
  TargetId target_;
  sim::Duration period_;
  sim::Timer timer_;
  sim::Timer retry_timer_;
  bool running_ = false;
  std::int64_t repairs_{0};
  std::int64_t ticks_{0};
  std::int64_t probes_sent_{0};
  /// Ticks since each cluster last heard an anchor pulse (index: cluster).
  std::vector<int> anchor_miss_;
  /// Last kChild-ack verdict per cluster: -1 unknown, 0 broken, 1 intact.
  std::vector<std::int8_t> downward_ok_;
  std::vector<PendingProbe> pending_;
  sim::Duration retry_delay_ = sim::Duration::zero();
  int hb_token_ = 0;     // heartbeat-handler registration, removed in dtor
  bool primed_ = false;  // one query round done (gates refresh_detection)
};

}  // namespace vs::ext
