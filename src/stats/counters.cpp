#include "stats/counters.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <string>

#include "common/error.hpp"

namespace vs::stats {

std::string_view to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kGrow: return "grow";
    case MsgKind::kGrowNbr: return "growNbr";
    case MsgKind::kGrowPar: return "growPar";
    case MsgKind::kShrink: return "shrink";
    case MsgKind::kShrinkUpd: return "shrinkUpd";
    case MsgKind::kFind: return "find";
    case MsgKind::kFindQuery: return "findQuery";
    case MsgKind::kFindAck: return "findAck";
    case MsgKind::kFound: return "found";
    case MsgKind::kClient: return "client";
    case MsgKind::kHeartbeat: return "heartbeat";
    case MsgKind::kHeartbeatAck: return "heartbeatAck";
    case MsgKind::kCount: break;
  }
  return "?";
}

bool is_move_kind(MsgKind kind) {
  switch (kind) {
    case MsgKind::kGrow:
    case MsgKind::kGrowNbr:
    case MsgKind::kGrowPar:
    case MsgKind::kShrink:
    case MsgKind::kShrinkUpd:
      return true;
    default:
      return false;
  }
}

bool is_heartbeat_kind(MsgKind kind) {
  return kind == MsgKind::kHeartbeat || kind == MsgKind::kHeartbeatAck;
}

WorkCounters::WorkCounters(Level max_level)
    : max_level_(max_level),
      msgs_by_level_(static_cast<std::size_t>(max_level) + 1, 0),
      work_by_level_(static_cast<std::size_t>(max_level) + 1, 0),
      msgs_by_level_kind_(static_cast<std::size_t>(max_level) + 1),
      work_by_level_kind_(static_cast<std::size_t>(max_level) + 1) {
  VS_REQUIRE(max_level >= 0, "negative max level");
}

void WorkCounters::record(MsgKind kind, Level level, std::int64_t hops) {
  if (tls_redirect_from_ == this && tls_redirect_to_ != nullptr) {
    tls_redirect_to_->record(kind, level, hops);
    return;
  }
  VS_REQUIRE(kind != MsgKind::kCount, "bad kind");
  VS_REQUIRE(level >= 0 && level <= max_level_, "level out of range");
  VS_REQUIRE(hops >= 0, "negative hop count");
  const auto k = static_cast<std::size_t>(kind);
  ++msgs_by_kind_[k];
  work_by_kind_[k] += hops;
  ++msgs_by_level_[static_cast<std::size_t>(level)];
  work_by_level_[static_cast<std::size_t>(level)] += hops;
  ++msgs_by_level_kind_[static_cast<std::size_t>(level)][k];
  work_by_level_kind_[static_cast<std::size_t>(level)][k] += hops;
}

namespace {

// Shared shape of the four per-level class accessors: fold one level's
// kind row through a kind predicate.
template <class Pred>
std::int64_t level_class_sum(const std::array<std::int64_t,
                                              static_cast<std::size_t>(
                                                  MsgKind::kCount)>& row,
                             Pred&& pred) {
  std::int64_t sum = 0;
  for (std::size_t k = 0; k < row.size(); ++k) {
    if (pred(static_cast<MsgKind>(k))) sum += row[k];
  }
  return sum;
}

bool is_find_kind(MsgKind kind) {
  return !is_move_kind(kind) && !is_heartbeat_kind(kind) &&
         kind != MsgKind::kClient;
}

}  // namespace

std::int64_t WorkCounters::move_messages_at_level(Level level) const {
  VS_REQUIRE(level >= 0 && level <= max_level_, "level out of range");
  return level_class_sum(msgs_by_level_kind_[static_cast<std::size_t>(level)],
                         is_move_kind);
}
std::int64_t WorkCounters::move_work_at_level(Level level) const {
  VS_REQUIRE(level >= 0 && level <= max_level_, "level out of range");
  return level_class_sum(work_by_level_kind_[static_cast<std::size_t>(level)],
                         is_move_kind);
}
std::int64_t WorkCounters::find_messages_at_level(Level level) const {
  VS_REQUIRE(level >= 0 && level <= max_level_, "level out of range");
  return level_class_sum(msgs_by_level_kind_[static_cast<std::size_t>(level)],
                         is_find_kind);
}
std::int64_t WorkCounters::find_work_at_level(Level level) const {
  VS_REQUIRE(level >= 0 && level <= max_level_, "level out of range");
  return level_class_sum(work_by_level_kind_[static_cast<std::size_t>(level)],
                         is_find_kind);
}

std::int64_t WorkCounters::messages(MsgKind kind) const {
  return msgs_by_kind_[static_cast<std::size_t>(kind)];
}
std::int64_t WorkCounters::work(MsgKind kind) const {
  return work_by_kind_[static_cast<std::size_t>(kind)];
}
std::int64_t WorkCounters::messages_at_level(Level level) const {
  VS_REQUIRE(level >= 0 && level <= max_level_, "level out of range");
  return msgs_by_level_[static_cast<std::size_t>(level)];
}
std::int64_t WorkCounters::work_at_level(Level level) const {
  VS_REQUIRE(level >= 0 && level <= max_level_, "level out of range");
  return work_by_level_[static_cast<std::size_t>(level)];
}

std::int64_t WorkCounters::total_messages() const {
  return std::accumulate(msgs_by_kind_.begin(), msgs_by_kind_.end(),
                         std::int64_t{0});
}
std::int64_t WorkCounters::total_work() const {
  return std::accumulate(work_by_kind_.begin(), work_by_kind_.end(),
                         std::int64_t{0});
}

std::int64_t WorkCounters::move_work() const {
  std::int64_t sum = 0;
  for (std::size_t k = 0; k < kKinds; ++k) {
    if (is_move_kind(static_cast<MsgKind>(k))) sum += work_by_kind_[k];
  }
  return sum;
}
std::int64_t WorkCounters::find_work() const {
  std::int64_t sum = 0;
  for (std::size_t k = 0; k < kKinds; ++k) {
    const auto kind = static_cast<MsgKind>(k);
    if (!is_move_kind(kind) && !is_heartbeat_kind(kind) &&
        kind != MsgKind::kClient) {
      sum += work_by_kind_[k];
    }
  }
  return sum;
}
std::int64_t WorkCounters::move_messages() const {
  std::int64_t sum = 0;
  for (std::size_t k = 0; k < kKinds; ++k) {
    if (is_move_kind(static_cast<MsgKind>(k))) sum += msgs_by_kind_[k];
  }
  return sum;
}
std::int64_t WorkCounters::find_messages() const {
  std::int64_t sum = 0;
  for (std::size_t k = 0; k < kKinds; ++k) {
    const auto kind = static_cast<MsgKind>(k);
    if (!is_move_kind(kind) && !is_heartbeat_kind(kind) &&
        kind != MsgKind::kClient) {
      sum += msgs_by_kind_[k];
    }
  }
  return sum;
}

std::int64_t WorkCounters::heartbeats() const {
  return messages(MsgKind::kHeartbeat) + messages(MsgKind::kHeartbeatAck);
}

void WorkCounters::reset() {
  msgs_by_kind_.fill(0);
  work_by_kind_.fill(0);
  std::fill(msgs_by_level_.begin(), msgs_by_level_.end(), 0);
  std::fill(work_by_level_.begin(), work_by_level_.end(), 0);
  for (auto& row : msgs_by_level_kind_) row.fill(0);
  for (auto& row : work_by_level_kind_) row.fill(0);
  duplicated_ = 0;
  jittered_ = 0;
  pdes_ = PdesCounters{};
  ingest_ = IngestCounters{};
}

WorkCounters WorkCounters::delta_since(const WorkCounters& earlier) const {
  VS_REQUIRE(max_level_ == earlier.max_level_, "mismatched counter shapes");
  WorkCounters d(max_level_);
  for (std::size_t k = 0; k < kKinds; ++k) {
    d.msgs_by_kind_[k] = msgs_by_kind_[k] - earlier.msgs_by_kind_[k];
    d.work_by_kind_[k] = work_by_kind_[k] - earlier.work_by_kind_[k];
  }
  for (std::size_t l = 0; l < msgs_by_level_.size(); ++l) {
    d.msgs_by_level_[l] = msgs_by_level_[l] - earlier.msgs_by_level_[l];
    d.work_by_level_[l] = work_by_level_[l] - earlier.work_by_level_[l];
    for (std::size_t k = 0; k < kKinds; ++k) {
      d.msgs_by_level_kind_[l][k] =
          msgs_by_level_kind_[l][k] - earlier.msgs_by_level_kind_[l][k];
      d.work_by_level_kind_[l][k] =
          work_by_level_kind_[l][k] - earlier.work_by_level_kind_[l][k];
    }
  }
  d.duplicated_ = duplicated_ - earlier.duplicated_;
  d.jittered_ = jittered_ - earlier.jittered_;
  d.pdes_.windows = pdes_.windows - earlier.pdes_.windows;
  d.pdes_.window_events = pdes_.window_events - earlier.pdes_.window_events;
  d.pdes_.serial_events = pdes_.serial_events - earlier.pdes_.serial_events;
  d.pdes_.cross_shard_events =
      pdes_.cross_shard_events - earlier.pdes_.cross_shard_events;
  d.pdes_.horizon_stalls =
      pdes_.horizon_stalls - earlier.pdes_.horizon_stalls;
  d.pdes_.global_syncs = pdes_.global_syncs - earlier.pdes_.global_syncs;
  d.pdes_.critical_path_events =
      pdes_.critical_path_events - earlier.pdes_.critical_path_events;
  d.pdes_.lanes = pdes_.lanes;
  for (std::size_t i = 0;
       i < d.pdes_.lanes.size() && i < earlier.pdes_.lanes.size(); ++i) {
    d.pdes_.lanes[i].events -= earlier.pdes_.lanes[i].events;
    d.pdes_.lanes[i].stalls -= earlier.pdes_.lanes[i].stalls;
    d.pdes_.lanes[i].cross_sends -= earlier.pdes_.lanes[i].cross_sends;
    d.pdes_.lanes[i].busy_windows -= earlier.pdes_.lanes[i].busy_windows;
  }
  d.ingest_.ingested = ingest_.ingested - earlier.ingest_.ingested;
  d.ingest_.applied = ingest_.applied - earlier.ingest_.applied;
  d.ingest_.suppressed = ingest_.suppressed - earlier.ingest_.suppressed;
  d.ingest_.dropped = ingest_.dropped - earlier.ingest_.dropped;
  d.ingest_.wire_errors = ingest_.wire_errors - earlier.ingest_.wire_errors;
  for (std::size_t i = 0; i < 3; ++i) {
    d.ingest_.shed_tier_entries[i] =
        ingest_.shed_tier_entries[i] - earlier.ingest_.shed_tier_entries[i];
  }
  d.ingest_.rpc_finds_issued =
      ingest_.rpc_finds_issued - earlier.ingest_.rpc_finds_issued;
  d.ingest_.rpc_finds_done =
      ingest_.rpc_finds_done - earlier.ingest_.rpc_finds_done;
  d.ingest_.rpc_deadline_misses =
      ingest_.rpc_deadline_misses - earlier.ingest_.rpc_deadline_misses;
  d.ingest_.rpc_find_attempts =
      ingest_.rpc_find_attempts - earlier.ingest_.rpc_find_attempts;
  // The peak is a gauge, not a counter: a window's high-water mark is the
  // later instant's, never a difference. Likewise the retry-after hint is
  // a config constant, not a rate.
  d.ingest_.queue_depth_peak = ingest_.queue_depth_peak;
  d.ingest_.retry_after_us = ingest_.retry_after_us;
  return d;
}

void WorkCounters::to_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in(static_cast<std::size_t>(indent) + 2, ' ');
  const std::string in2(static_cast<std::size_t>(indent) + 4, ' ');
  os << "{\n";
  os << in << "\"total\": {\"messages\": " << total_messages()
     << ", \"work\": " << total_work() << ", \"move_work\": " << move_work()
     << ", \"find_work\": " << find_work()
     << ", \"heartbeats\": " << heartbeats()
     << ", \"duplicated\": " << duplicated_
     << ", \"jittered\": " << jittered_ << "},\n";
  os << in << "\"by_kind\": {";
  bool first = true;
  for (std::size_t k = 0; k < kKinds; ++k) {
    if (msgs_by_kind_[k] == 0 && work_by_kind_[k] == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\n"
       << in2 << "\"" << to_string(static_cast<MsgKind>(k))
       << "\": {\"messages\": " << msgs_by_kind_[k]
       << ", \"work\": " << work_by_kind_[k] << "}";
  }
  os << (first ? "" : "\n" + in) << "},\n";
  os << in << "\"by_level\": [";
  for (std::size_t l = 0; l < msgs_by_level_.size(); ++l) {
    const auto level = static_cast<Level>(l);
    if (l != 0) os << ",";
    os << "\n"
       << in2 << "{\"level\": " << l << ", \"messages\": " << msgs_by_level_[l]
       << ", \"work\": " << work_by_level_[l]
       << ", \"move_messages\": " << move_messages_at_level(level)
       << ", \"move_work\": " << move_work_at_level(level)
       << ", \"find_messages\": " << find_messages_at_level(level)
       << ", \"find_work\": " << find_work_at_level(level) << "}";
  }
  os << "\n" << in << "]";
  if (pdes_.windows != 0) {
    os << ",\n"
       << in << "\"pdes\": {\"windows\": " << pdes_.windows
       << ", \"window_events\": " << pdes_.window_events
       << ", \"serial_events\": " << pdes_.serial_events
       << ", \"cross_shard_events\": " << pdes_.cross_shard_events
       << ", \"horizon_stalls\": " << pdes_.horizon_stalls
       << ", \"global_syncs\": " << pdes_.global_syncs
       << ", \"critical_path_events\": " << pdes_.critical_path_events;
    if (!pdes_.lanes.empty()) {
      os << ", \"lanes\": [";
      for (std::size_t i = 0; i < pdes_.lanes.size(); ++i) {
        const PdesLaneStats& ln = pdes_.lanes[i];
        if (i != 0) os << ", ";
        os << "{\"events\": " << ln.events << ", \"stalls\": " << ln.stalls
           << ", \"cross_sends\": " << ln.cross_sends
           << ", \"busy_windows\": " << ln.busy_windows << "}";
      }
      os << "]";
    }
    os << "}";
  }
  if (ingest_.any()) {
    os << ",\n"
       << in << "\"ingest\": {\"ingested\": " << ingest_.ingested
       << ", \"applied\": " << ingest_.applied
       << ", \"suppressed\": " << ingest_.suppressed
       << ", \"dropped\": " << ingest_.dropped
       << ", \"wire_errors\": " << ingest_.wire_errors
       << ", \"shed_tier_entries\": [" << ingest_.shed_tier_entries[0] << ", "
       << ingest_.shed_tier_entries[1] << ", " << ingest_.shed_tier_entries[2]
       << "], \"queue_depth_peak\": " << ingest_.queue_depth_peak
       << ", \"rpc_finds_issued\": " << ingest_.rpc_finds_issued
       << ", \"rpc_finds_done\": " << ingest_.rpc_finds_done
       << ", \"rpc_deadline_misses\": " << ingest_.rpc_deadline_misses
       << ", \"rpc_find_attempts\": " << ingest_.rpc_find_attempts
       << ", \"retry_after_us\": " << ingest_.retry_after_us << "}";
  }
  os << "\n" << pad << "}";
}

void WorkCounters::accumulate(const WorkCounters& other) {
  VS_REQUIRE(max_level_ == other.max_level_, "mismatched counter shapes");
  for (std::size_t k = 0; k < kKinds; ++k) {
    msgs_by_kind_[k] += other.msgs_by_kind_[k];
    work_by_kind_[k] += other.work_by_kind_[k];
  }
  for (std::size_t l = 0; l < msgs_by_level_.size(); ++l) {
    msgs_by_level_[l] += other.msgs_by_level_[l];
    work_by_level_[l] += other.work_by_level_[l];
    for (std::size_t k = 0; k < kKinds; ++k) {
      msgs_by_level_kind_[l][k] += other.msgs_by_level_kind_[l][k];
      work_by_level_kind_[l][k] += other.work_by_level_kind_[l][k];
    }
  }
  duplicated_ += other.duplicated_;
  jittered_ += other.jittered_;
  pdes_.windows += other.pdes_.windows;
  pdes_.window_events += other.pdes_.window_events;
  pdes_.serial_events += other.pdes_.serial_events;
  pdes_.cross_shard_events += other.pdes_.cross_shard_events;
  pdes_.horizon_stalls += other.pdes_.horizon_stalls;
  pdes_.global_syncs += other.pdes_.global_syncs;
  pdes_.critical_path_events += other.pdes_.critical_path_events;
  if (pdes_.lanes.size() < other.pdes_.lanes.size()) {
    pdes_.lanes.resize(other.pdes_.lanes.size());
  }
  for (std::size_t i = 0; i < other.pdes_.lanes.size(); ++i) {
    pdes_.lanes[i].events += other.pdes_.lanes[i].events;
    pdes_.lanes[i].stalls += other.pdes_.lanes[i].stalls;
    pdes_.lanes[i].cross_sends += other.pdes_.lanes[i].cross_sends;
    pdes_.lanes[i].busy_windows += other.pdes_.lanes[i].busy_windows;
  }
  ingest_.ingested += other.ingest_.ingested;
  ingest_.applied += other.ingest_.applied;
  ingest_.suppressed += other.ingest_.suppressed;
  ingest_.dropped += other.ingest_.dropped;
  ingest_.wire_errors += other.ingest_.wire_errors;
  for (std::size_t i = 0; i < 3; ++i) {
    ingest_.shed_tier_entries[i] += other.ingest_.shed_tier_entries[i];
  }
  ingest_.rpc_finds_issued += other.ingest_.rpc_finds_issued;
  ingest_.rpc_finds_done += other.ingest_.rpc_finds_done;
  ingest_.rpc_deadline_misses += other.ingest_.rpc_deadline_misses;
  ingest_.rpc_find_attempts += other.ingest_.rpc_find_attempts;
  ingest_.queue_depth_peak =
      std::max(ingest_.queue_depth_peak, other.ingest_.queue_depth_peak);
  ingest_.retry_after_us =
      std::max(ingest_.retry_after_us, other.ingest_.retry_after_us);
}

}  // namespace vs::stats
