#pragma once
// Work accounting for the tracking service.
//
// The paper measures cost in *work* — communication, where a message
// between two processes costs the distance it travels — and *time* —
// virtual latency. Counters are kept per message kind and per hierarchy
// level so benches can decompose the Theorem 4.9 / 5.2 sums.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/ids.hpp"

namespace vs::stats {

/// Message kinds of the Tracker signature (Figure 2) plus client traffic.
enum class MsgKind : std::uint8_t {
  kGrow = 0,
  kGrowNbr,
  kGrowPar,
  kShrink,
  kShrinkUpd,
  kFind,
  kFindQuery,
  kFindAck,
  kFound,
  kClient,        // client <-> level-0 VSA traffic
  kHeartbeat,     // §VII stabilizer probe (ext::Stabilizer)
  kHeartbeatAck,  // probe acknowledgement
  kCount,
};

[[nodiscard]] std::string_view to_string(MsgKind kind);

/// True for kinds that belong to tracking-structure maintenance (the
/// "move work" of Theorem 4.9), false for find-phase kinds (Theorem 5.2).
[[nodiscard]] bool is_move_kind(MsgKind kind);

/// True for the §VII stabilizer's probe traffic — overlay messages outside
/// both the Theorem 4.9 move sums and the Theorem 5.2 find sums.
[[nodiscard]] bool is_heartbeat_kind(MsgKind kind);

/// Per-shard-lane slice of the executor's window census — the raw series
/// behind lane occupancy, cross-shard traffic split, critical-path share,
/// and the imbalance ratio the telemetry dashboard renders. Like the rest
/// of PdesCounters these are schedule diagnostics, not model state: they
/// vary with --shards by construction and are exempt from the
/// byte-identity doctrine (and from the default telemetry stream).
struct PdesLaneStats {
  std::int64_t events = 0;        // window events fired by this lane
  std::int64_t stalls = 0;        // windows: lane had work, none below cut
  std::int64_t cross_sends = 0;   // staged cross-shard sends originating here
  std::int64_t busy_windows = 0;  // windows where the lane fired >= 1 event
};

/// Diagnostics of the sharded executor (sim/shard_executor.hpp): window
/// and event census of the conservative parallel schedule. Zero — and
/// absent from to_json — unless a parallel window ever committed, so
/// sharded-but-serial and legacy runs stay byte-identical.
struct PdesCounters {
  std::int64_t windows = 0;        // parallel windows committed
  std::int64_t window_events = 0;  // events fired inside windows
  std::int64_t serial_events = 0;  // events fired on the serial path
  std::int64_t cross_shard_events = 0;  // staged sends committed
  std::int64_t horizon_stalls = 0;  // lane had work but none below the cut
  std::int64_t global_syncs = 0;    // global-queue serial sync points
  /// Max per-lane events over each window, summed — the schedule's
  /// critical path; window_events / critical_path_events is the
  /// partition-balance speedup bound on ideal hardware.
  std::int64_t critical_path_events = 0;
  /// Per-lane breakdown (index = lane). Sized by the executor at its first
  /// committed window; empty in serial/legacy runs.
  std::vector<PdesLaneStats> lanes;
};

/// Accounting of the streaming-ingest daemon (src/serve): wire frames in,
/// world mutations out, and the shed-ladder bookkeeping in between. The
/// conservation identity the daemon pins at shutdown — every valid update
/// frame read off the wire is accounted exactly once:
///
///   ingested == applied + suppressed + dropped
///
/// `suppressed` is semantic shedding (tier-1 coalesce, tier-2 dead-band);
/// `dropped` is lossy shedding (queue overflow, tier-3 admission reject).
/// `wire_errors` counts malformed frames the strict reader refused — those
/// never become ingested, so they sit outside the identity. Zero — and
/// absent from to_json — unless the serve path ran, so simulator-only
/// artifacts stay byte-identical. `queue_depth_peak` is the high-water
/// mark over all region queues; in live mode it depends on reader/driver
/// thread timing (like PdesLaneStats it is exempt from the byte-identity
/// doctrine), in replay mode it is deterministic.
struct IngestCounters {
  std::int64_t ingested = 0;     // valid update frames accepted off the wire
  std::int64_t applied = 0;      // updates that mutated the world
  std::int64_t suppressed = 0;   // shed semantically (coalesce / dead-band)
  std::int64_t dropped = 0;      // shed lossily (queue full, tier-3 reject)
  std::int64_t wire_errors = 0;  // malformed frames the strict reader refused
  /// Rounds in which the degradation ladder ran at tier >= 1/2/3.
  std::array<std::int64_t, 3> shed_tier_entries{};
  std::int64_t queue_depth_peak = 0;  // high-water mark across region queues

  // Find-RPC accounting (IngestServer::find and its replay twin). All four
  // derive from virtual time only — deadline misses are deterministic — so
  // they are safe for byte-identity artifacts like VSTELEM1 v3.
  std::int64_t rpc_finds_issued = 0;
  std::int64_t rpc_finds_done = 0;
  std::int64_t rpc_deadline_misses = 0;
  std::int64_t rpc_find_attempts = 0;
  /// The tier-3 retry-after hint in microseconds — a config-derived gauge
  /// (2× the round), set when an IngestServer attaches. Excluded from
  /// any() so an idle server does not change counter JSON.
  std::int64_t retry_after_us = 0;

  [[nodiscard]] bool any() const {
    return ingested != 0 || applied != 0 || suppressed != 0 || dropped != 0 ||
           wire_errors != 0 || shed_tier_entries[0] != 0 ||
           shed_tier_entries[1] != 0 || shed_tier_entries[2] != 0 ||
           queue_depth_peak != 0 || rpc_finds_issued != 0 ||
           rpc_finds_done != 0 || rpc_deadline_misses != 0 ||
           rpc_find_attempts != 0;
  }
};

class WorkCounters {
 public:
  explicit WorkCounters(Level max_level);

  /// Record one message of `kind` sent at hierarchy level `level` that
  /// travels `hops` region-hops.
  void record(MsgKind kind, Level level, std::int64_t hops);

  /// Redirect this thread's record() calls on `from` to `to` — the shard
  /// executor's parallel-window binding, so lane threads account into
  /// lane-local counters the barrier folds back deterministically.
  /// (note_duplicated/note_jittered stay unredirected: channel faults make
  /// a world ineligible for parallel windows.) Pass nulls to clear.
  static void set_thread_redirect(const WorkCounters* from, WorkCounters* to) {
    tls_redirect_from_ = from;
    tls_redirect_to_ = to;
  }

  [[nodiscard]] std::int64_t messages(MsgKind kind) const;
  [[nodiscard]] std::int64_t work(MsgKind kind) const;
  [[nodiscard]] std::int64_t messages_at_level(Level level) const;
  [[nodiscard]] std::int64_t work_at_level(Level level) const;
  /// Per-level totals restricted to move-maintenance / find kinds — the
  /// per-level terms of the Theorem 4.9 / 5.2 sums, so a bench artifact
  /// alone suffices to recompute audit ratios level by level.
  [[nodiscard]] std::int64_t move_messages_at_level(Level level) const;
  [[nodiscard]] std::int64_t move_work_at_level(Level level) const;
  [[nodiscard]] std::int64_t find_messages_at_level(Level level) const;
  [[nodiscard]] std::int64_t find_work_at_level(Level level) const;

  /// Totals across kinds.
  [[nodiscard]] std::int64_t total_messages() const;
  [[nodiscard]] std::int64_t total_work() const;
  /// Totals restricted to move-maintenance / find kinds.
  [[nodiscard]] std::int64_t move_work() const;
  [[nodiscard]] std::int64_t find_work() const;
  [[nodiscard]] std::int64_t move_messages() const;
  [[nodiscard]] std::int64_t find_messages() const;
  /// Stabilizer probe traffic (heartbeat + heartbeatAck messages).
  [[nodiscard]] std::int64_t heartbeats() const;

  /// Channel-fault accounting (src/fault): a message delivered twice /
  /// delivered early. Recorded by CGcast when a fault plan's duplication
  /// or jitter window fires.
  void note_duplicated() { ++duplicated_; }
  void note_jittered() { ++jittered_; }
  [[nodiscard]] std::int64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::int64_t jittered() const { return jittered_; }

  void reset();

  /// Difference helper: *this - other (counters taken at two instants).
  [[nodiscard]] WorkCounters delta_since(const WorkCounters& earlier) const;

  /// Element-wise sum: fold another trial's counters into this one (the
  /// deterministic join step of a parallel sweep). Requires equal shapes.
  void accumulate(const WorkCounters& other);

  [[nodiscard]] Level max_level() const { return max_level_; }

  /// Sharded-executor diagnostics (see PdesCounters). Mutated directly by
  /// the executor's barrier; folded by accumulate/delta_since.
  [[nodiscard]] PdesCounters& pdes() { return pdes_; }
  [[nodiscard]] const PdesCounters& pdes() const { return pdes_; }

  /// Ingest-daemon accounting (see IngestCounters). Mutated directly by
  /// serve::IngestServer at round boundaries (driver thread only); folded
  /// by accumulate/delta_since.
  [[nodiscard]] IngestCounters& ingest() { return ingest_; }
  [[nodiscard]] const IngestCounters& ingest() const { return ingest_; }

  /// JSON emitter — the single artifact schema every bench and tool uses
  /// (no hand-formatted counter dumps). Shape:
  ///   {"total": {"messages": N, "work": N, "move_work": N, "find_work": N,
  ///              "heartbeats": N, "duplicated": N, "jittered": N},
  ///    "by_kind": {"grow": {"messages": N, "work": N}, ...},  // non-zero only
  ///    "by_level": [{"level": 0, "messages": N, "work": N,
  ///                  "move_messages": N, "move_work": N,
  ///                  "find_messages": N, "find_work": N}, ...],
  ///    "pdes": {...},  // only when parallel windows committed (windows>0)
  ///    "ingest": {...}}  // only when the serve path ran (ingest().any())
  void to_json(std::ostream& os, int indent = 0) const;

 private:
  static constexpr std::size_t kKinds =
      static_cast<std::size_t>(MsgKind::kCount);
  Level max_level_;
  std::array<std::int64_t, kKinds> msgs_by_kind_{};
  std::array<std::int64_t, kKinds> work_by_kind_{};
  std::vector<std::int64_t> msgs_by_level_;
  std::vector<std::int64_t> work_by_level_;
  // Full level × kind matrix backing the per-level class accessors.
  std::vector<std::array<std::int64_t, kKinds>> msgs_by_level_kind_;
  std::vector<std::array<std::int64_t, kKinds>> work_by_level_kind_;
  std::int64_t duplicated_{0};
  std::int64_t jittered_{0};
  PdesCounters pdes_{};
  IngestCounters ingest_{};

  inline static thread_local const WorkCounters* tls_redirect_from_ = nullptr;
  inline static thread_local WorkCounters* tls_redirect_to_ = nullptr;
};

}  // namespace vs::stats
