#pragma once
// Small numeric summary helpers for benches and tests.

#include <cstdint>
#include <span>
#include <vector>

namespace vs::stats {

/// Streaming summary of a sample of doubles.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  /// p in [0, 100]; nearest-rank percentile. Requires count() > 0.
  [[nodiscard]] double percentile(double p) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Ordinary least squares fit y = a + b·x. Returns {a, b, r²}.
struct LinearFit {
  double intercept{0};
  double slope{0};
  double r_squared{0};
};
[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

}  // namespace vs::stats
