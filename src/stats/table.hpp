#pragma once
// Aligned text tables for bench output.
//
// Benches print paper-style series ("work per unit distance vs d") both as
// aligned text for reading and optionally CSV for plotting.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace vs::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  using Cell = std::variant<std::string, std::int64_t, double>;
  /// Appends a row; must match the header count.
  void add_row(std::vector<Cell> cells);

  /// Appends every row of `other` (same headers required). This is the
  /// merge step for parallel sweeps: each trial fills a local table, and
  /// the runner appends them in trial-index order at join.
  void append(Table other);

  /// Renders the whole table (headers + aligned rows) to a string —
  /// convenient for byte-identical determinism assertions.
  [[nodiscard]] std::string to_string() const;

  /// Aligned fixed-width text rendering.
  void print(std::ostream& os) const;
  /// Comma-separated rendering.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  [[nodiscard]] static std::string render(const Cell& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace vs::stats
