#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace vs::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  VS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  VS_REQUIRE(cells.size() == headers_.size(),
             "row has " << cells.size() << " cells, want " << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::append(Table other) {
  VS_REQUIRE(other.headers_ == headers_,
             "appending a table with different headers");
  rows_.reserve(rows_.size() + other.rows_.size());
  for (auto& row : other.rows_) rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::render(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  const double d = std::get<double>(cell);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", d);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  const auto pad = [&](const std::string& s, std::size_t w) {
    std::string out(w - s.size(), ' ');
    return out + s;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "  " : "") << pad(headers_[c], widths[c]);
  }
  os << '\n';
  for (const auto& row : rendered) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << pad(row[c], widths[c]);
    }
    os << '\n';
  }
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << headers_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << render(row[c]);
    }
    os << '\n';
  }
}

}  // namespace vs::stats
