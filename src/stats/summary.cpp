#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vs::stats {

void Summary::add(double x) {
  values_.push_back(x);
  sorted_ = false;
  sum_ += x;
  sum_sq_ += x * x;
}

double Summary::mean() const {
  VS_REQUIRE(!values_.empty(), "mean of empty summary");
  return sum_ / static_cast<double>(values_.size());
}

double Summary::min() const {
  VS_REQUIRE(!values_.empty(), "min of empty summary");
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  VS_REQUIRE(!values_.empty(), "max of empty summary");
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::stddev() const {
  VS_REQUIRE(!values_.empty(), "stddev of empty summary");
  const double m = mean();
  const double var =
      sum_sq_ / static_cast<double>(values_.size()) - m * m;
  return std::sqrt(std::max(0.0, var));
}

double Summary::percentile(double p) const {
  VS_REQUIRE(!values_.empty(), "percentile of empty summary");
  VS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values_.size())));
  const std::size_t i = rank == 0 ? 0 : rank - 1;
  return values_[std::min(i, values_.size() - 1)];
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  VS_REQUIRE(x.size() == y.size() && x.size() >= 2,
             "need >= 2 paired points for a fit");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  VS_REQUIRE(denom != 0.0, "degenerate x values in fit");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace vs::stats
