#include "fault/fault_injector.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace vs::fault {

FaultInjector::FaultInjector(tracking::TrackingNetwork& net, FaultPlan plan)
    : net_(&net), plan_(std::move(plan)), rng_(plan_.seed) {
  const auto num_regions =
      static_cast<std::int64_t>(net_->hierarchy().tiling().num_regions());
  const auto check_region = [&](std::int32_t r, const char* what) {
    VS_REQUIRE(r >= 0 && r < num_regions,
               "fault plan " << what << " region " << r
                             << " out of range (world has " << num_regions
                             << " regions)");
  };
  for (const FaultPlan::Crash& c : plan_.crashes) {
    check_region(c.region, "crash");
  }
  for (const FaultPlan::Outage& o : plan_.outages) {
    check_region(o.center, "outage");
  }
  for (const FaultPlan::Depopulate& d : plan_.depopulations) {
    check_region(d.region, "depopulate");
  }
  const bool needs_failures = !plan_.crashes.empty() ||
                              !plan_.outages.empty() ||
                              !plan_.depopulations.empty();
  VS_REQUIRE(!needs_failures || net_->directory() != nullptr,
             "fault plan schedules VSA faults but the network was built "
             "without model_vsa_failures");
}

FaultInjector::~FaultInjector() {
  events_.clear();  // timer dtors cancel any pending fault events
  if (armed_) net_->cgcast().set_channel_faults({});
}

void FaultInjector::arm() {
  VS_REQUIRE(!armed_, "fault plan armed twice");
  armed_ = true;

  planned_faults_ = 0;
  for (const FaultPlan::Crash& c : plan_.crashes) {
    planned_faults_ += 1;
    const RegionId r{c.region};
    schedule(c.at_us, [this, r] { crash_region(r); });
  }
  for (const FaultPlan::Outage& o : plan_.outages) {
    // The blast zone is static (the tiling never changes), so resolve it
    // now and count each member as one planned fault.
    const std::vector<RegionId> zone = blast_zone(RegionId{o.center}, o.radius);
    planned_faults_ += static_cast<int>(zone.size());
    schedule(o.at_us, [this, zone] {
      for (const RegionId r : zone) crash_region(r);
    });
  }
  killed_.assign(plan_.depopulations.size(), {});
  for (std::size_t di = 0; di < plan_.depopulations.size(); ++di) {
    const FaultPlan::Depopulate& d = plan_.depopulations[di];
    planned_faults_ += 1;
    schedule(d.from_us, [this, di] { depopulate(di); });
    schedule(d.until_us, [this, di] { repopulate(di); });
  }
  if (!plan_.loss_bursts.empty() || !plan_.duplications.empty() ||
      !plan_.jitters.empty()) {
    net_->cgcast().set_channel_faults(
        [this](const vsa::Message& m) { return decide(m); });
  }
}

std::optional<sim::TimePoint> FaultInjector::recovery_deadline() const {
  if (!plan_.recovery.has_value() || plan_.empty()) return std::nullopt;
  // planned_faults_ is resolved by arm() (outage radii need the tiling);
  // before arm() fall back to the per-directive count.
  const int faults =
      armed_ ? planned_faults_
             : static_cast<int>(plan_.crashes.size() + plan_.outages.size() +
                                plan_.depopulations.size());
  return sim::TimePoint{plan_.last_fault_us() + plan_.recovery->base_us +
                        plan_.recovery->per_fault_us * faults};
}

void FaultInjector::crash_region(RegionId r) {
  ++faults_injected_;
  net_->fail_vsa(r);
}

void FaultInjector::depopulate(std::size_t di) {
  ++faults_injected_;
  const RegionId r{plan_.depopulations[di].region};
  // Copy: kill_client edits the per-region index we are iterating.
  const std::vector<ClientId> present = net_->clients().clients_in(r);
  for (const ClientId id : present) {
    if (!net_->clients().client(id).alive) continue;
    killed_[di].push_back(id);
    net_->clients().kill_client(id);
  }
  VS_DEBUG("fault plan depopulated region " << r << " (" << killed_[di].size()
                                            << " clients) at " << net_->now());
}

void FaultInjector::repopulate(std::size_t di) {
  for (const ClientId id : killed_[di]) net_->clients().restart_client(id);
  killed_[di].clear();
}

std::vector<RegionId> FaultInjector::blast_zone(RegionId center,
                                                std::int32_t radius) const {
  const geo::Tiling& tiling = net_->hierarchy().tiling();
  std::vector<RegionId> zone{center};
  std::vector<std::uint8_t> seen(tiling.num_regions(), 0);
  seen[static_cast<std::size_t>(center.value())] = 1;
  std::size_t frontier_begin = 0;
  for (std::int32_t hop = 0; hop < radius; ++hop) {
    const std::size_t frontier_end = zone.size();
    for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
      for (const RegionId nb : tiling.neighbors(zone[i])) {
        auto& mark = seen[static_cast<std::size_t>(nb.value())];
        if (mark != 0) continue;
        mark = 1;
        zone.push_back(nb);
      }
    }
    frontier_begin = frontier_end;
  }
  return zone;
}

vsa::CGcast::ChannelDecision FaultInjector::decide(const vsa::Message&) {
  vsa::CGcast::ChannelDecision d;
  const std::int64_t now = net_->now().count();
  const auto active = [now](const FaultPlan::Window& w) {
    return now >= w.from_us && now < w.until_us;
  };
  // Fixed evaluation order (loss, duplication, jitter) so the Rng stream
  // is a pure function of the deterministic send sequence.
  for (const FaultPlan::Window& w : plan_.loss_bursts) {
    if (active(w) && rng_.chance(w.rate)) {
      d.drop = true;
      return d;
    }
  }
  for (const FaultPlan::Window& w : plan_.duplications) {
    if (active(w) && rng_.chance(w.rate)) d.duplicate = true;
  }
  for (const FaultPlan::Window& w : plan_.jitters) {
    if (active(w) && rng_.chance(w.rate)) {
      d.advance =
          d.advance + sim::Duration::micros(rng_.uniform_int(1, w.advance_us));
    }
  }
  return d;
}

void FaultInjector::schedule(std::int64_t at_us, std::function<void()> action) {
  // Directive execution runs under a kFault scope so chaos-run profiles
  // separate injected-fault handling from the protocol's own cost.
  auto timer = std::make_unique<sim::Timer>(
      net_->scheduler(), [this, action = std::move(action)] {
        const obs::ProfScope prof(net_->profiler(),
                                  obs::ProfDomain::kFault);
        action();
      });
  timer->arm(std::max(net_->now(), sim::TimePoint{at_us}));
  events_.push_back(std::move(timer));
}

}  // namespace vs::fault
