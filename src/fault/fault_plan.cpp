#include "fault/fault_plan.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace vs::fault {

namespace {

template <typename... Args>
[[noreturn]] void plan_error(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  throw Error(os.str());
}

/// Tokenizer over one directive line: every read names what it expects so
/// diagnostics stay actionable ("line 4: expected <us> after 'at'").
class LineReader {
 public:
  LineReader(const std::string& line, int lineno)
      : in_(line), lineno_(lineno) {}

  std::string word(const char* what) {
    std::string tok;
    if (!(in_ >> tok)) {
      plan_error("faultplan line ", lineno_, ": expected ", what);
    }
    return tok;
  }

  void keyword(const char* kw) {
    const std::string tok = word(kw);
    if (tok != kw) {
      plan_error("faultplan line ", lineno_, ": expected '", kw, "', got '",
                 tok, "'");
    }
  }

  std::int64_t i64(const char* what, std::int64_t min) {
    const std::string tok = word(what);
    std::int64_t v = 0;
    std::size_t used = 0;
    try {
      v = std::stoll(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != tok.size()) {
      plan_error("faultplan line ", lineno_, ": bad ", what, " '", tok, "'");
    }
    if (v < min) {
      plan_error("faultplan line ", lineno_, ": ", what, " ", v,
                 " out of range (min ", min, ")");
    }
    return v;
  }

  double rate(const char* what) {
    const std::string tok = word(what);
    double v = 0.0;
    std::size_t used = 0;
    try {
      v = std::stod(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != tok.size() || v < 0.0 || v > 1.0) {
      plan_error("faultplan line ", lineno_, ": ", what, " '", tok,
                 "' must be a probability in [0, 1]");
    }
    return v;
  }

  void done() {
    std::string extra;
    if (in_ >> extra) {
      plan_error("faultplan line ", lineno_, ": trailing garbage '", extra,
                 "'");
    }
  }

 private:
  std::istringstream in_;
  int lineno_;
};

FaultPlan::Window parse_window(LineReader& r, bool with_advance) {
  FaultPlan::Window w;
  r.keyword("from");
  w.from_us = r.i64("<us>", 0);
  r.keyword("until");
  w.until_us = r.i64("<us>", w.from_us);
  r.keyword("rate");
  w.rate = r.rate("rate");
  if (with_advance) {
    r.keyword("advance");
    w.advance_us = r.i64("advance <us>", 1);
  }
  r.done();
  return w;
}

void print_window(std::ostream& os, const char* name,
                  const FaultPlan::Window& w) {
  os << name << " from " << w.from_us << " until " << w.until_us << " rate "
     << w.rate;
  if (w.advance_us > 0) os << " advance " << w.advance_us;
  os << "\n";
}

}  // namespace

std::int64_t FaultPlan::last_fault_us() const {
  std::int64_t last = 0;
  for (const Crash& c : crashes) last = std::max(last, c.at_us);
  for (const Outage& o : outages) last = std::max(last, o.at_us);
  for (const Depopulate& d : depopulations) last = std::max(last, d.until_us);
  for (const auto* windows : {&loss_bursts, &duplications, &jitters}) {
    for (const Window& w : *windows) last = std::max(last, w.until_us);
  }
  return last;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "faultplan v" << kFaultPlanVersion << "\n";
  os << "seed " << seed << "\n";
  for (const Crash& c : crashes) {
    os << "crash " << c.region << " at " << c.at_us << "\n";
  }
  for (const Outage& o : outages) {
    os << "outage " << o.center << " radius " << o.radius << " at "
       << o.at_us << "\n";
  }
  for (const Depopulate& d : depopulations) {
    os << "depopulate " << d.region << " from " << d.from_us << " until "
       << d.until_us << "\n";
  }
  for (const Window& w : loss_bursts) print_window(os, "loss", w);
  for (const Window& w : duplications) print_window(os, "duplicate", w);
  for (const Window& w : jitters) print_window(os, "jitter", w);
  if (recovery.has_value()) {
    os << "recovery base " << recovery->base_us << " per-fault "
       << recovery->per_fault_us << "\n";
  }
  os << "end\n";
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream probe(line);
    std::string directive;
    if (!(probe >> directive)) continue;  // blank
    if (saw_end) {
      plan_error("faultplan line ", lineno, ": content after 'end'");
    }
    if (!saw_header) {
      LineReader r(line, lineno);
      r.keyword("faultplan");
      const std::string ver = r.word("version");
      if (ver != "v1") {
        plan_error("faultplan line ", lineno, ": unsupported version '", ver,
                   "'");
      }
      r.done();
      saw_header = true;
      continue;
    }
    LineReader r(line, lineno);
    if (directive == "seed") {
      r.keyword("seed");
      plan.seed = static_cast<std::uint64_t>(r.i64("seed", 0));
      r.done();
    } else if (directive == "crash") {
      r.keyword("crash");
      Crash c;
      c.region = static_cast<std::int32_t>(r.i64("region", 0));
      r.keyword("at");
      c.at_us = r.i64("<us>", 0);
      r.done();
      plan.crashes.push_back(c);
    } else if (directive == "outage") {
      r.keyword("outage");
      Outage o;
      o.center = static_cast<std::int32_t>(r.i64("center region", 0));
      r.keyword("radius");
      o.radius = static_cast<std::int32_t>(r.i64("radius", 0));
      r.keyword("at");
      o.at_us = r.i64("<us>", 0);
      r.done();
      plan.outages.push_back(o);
    } else if (directive == "depopulate") {
      r.keyword("depopulate");
      Depopulate d;
      d.region = static_cast<std::int32_t>(r.i64("region", 0));
      r.keyword("from");
      d.from_us = r.i64("<us>", 0);
      r.keyword("until");
      d.until_us = r.i64("<us>", d.from_us);
      r.done();
      plan.depopulations.push_back(d);
    } else if (directive == "loss") {
      r.keyword("loss");
      plan.loss_bursts.push_back(parse_window(r, /*with_advance=*/false));
    } else if (directive == "duplicate") {
      r.keyword("duplicate");
      plan.duplications.push_back(parse_window(r, /*with_advance=*/false));
    } else if (directive == "jitter") {
      r.keyword("jitter");
      plan.jitters.push_back(parse_window(r, /*with_advance=*/true));
    } else if (directive == "recovery") {
      if (plan.recovery.has_value()) {
        plan_error("faultplan line ", lineno,
                   ": duplicate 'recovery' directive");
      }
      r.keyword("recovery");
      Recovery rec;
      r.keyword("base");
      rec.base_us = r.i64("base <us>", 0);
      r.keyword("per-fault");
      rec.per_fault_us = r.i64("per-fault <us>", 0);
      r.done();
      plan.recovery = rec;
    } else if (directive == "end") {
      r.keyword("end");
      r.done();
      saw_end = true;
    } else {
      plan_error("faultplan line ", lineno, ": unknown directive '",
                 directive, "'");
    }
  }
  if (!saw_header) plan_error("faultplan: missing 'faultplan v1' header");
  if (!saw_end) plan_error("faultplan: missing 'end'");
  return plan;
}

FaultPlan FaultPlan::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) plan_error("cannot open fault plan '", path, "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace vs::fault
