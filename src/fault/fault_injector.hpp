#pragma once
// FaultInjector — executes a FaultPlan against a live TrackingNetwork.
//
// arm() schedules every discrete fault (crashes, outages, depopulation
// kill/restore pairs) as virtual-time events and installs the C-gcast
// channel-fault oracle for the plan's loss/duplication/jitter windows.
// Windows are pure now()-predicates: no event marks a window's end, so a
// plan with only channel windows adds zero events to the queue and
// run_to_quiescence still means "the protocol is done" (it would otherwise
// fast-forward through the window). Drivers that want faults to bite must
// step in timed slices (run_for) across the plan's span.
//
// Determinism: the injector owns a private Rng seeded from the plan, and
// consumes it only for sends that occur inside an active window. Message
// send order is deterministic per world, so a given (world, plan) pair
// yields the same faults at any --jobs value.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "sim/timer.hpp"
#include "tracking/network.hpp"

namespace vs::fault {

class FaultInjector {
 public:
  /// Binds the plan to `net` (validating every region reference against
  /// the world — a plan written for a different grid fails loudly here).
  /// Crashes/outages/depopulations require net.config().model_vsa_failures.
  FaultInjector(tracking::TrackingNetwork& net, FaultPlan plan);
  /// Cancels pending fault events and uninstalls the channel oracle.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules the plan. Fault times are absolute virtual microseconds; an
  /// instant already in the past fires at the current time instead.
  void arm();

  /// Discrete fault events fired so far (regions crashed + depopulations).
  [[nodiscard]] int faults_injected() const { return faults_injected_; }
  /// Discrete fault events the plan will fire in total (outages count one
  /// per region inside the radius).
  [[nodiscard]] int planned_faults() const { return planned_faults_; }

  /// The recovery deadline implied by the plan's `recovery` directive:
  /// last_fault_us + base_us + per_fault_us × planned_faults(). Unset when
  /// the plan has no recovery directive or no faults at all.
  [[nodiscard]] std::optional<sim::TimePoint> recovery_deadline() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  void crash_region(RegionId r);
  void depopulate(std::size_t di);
  void repopulate(std::size_t di);
  /// All regions within `radius` neighbour hops of `center` (inclusive).
  [[nodiscard]] std::vector<RegionId> blast_zone(RegionId center,
                                                std::int32_t radius) const;
  [[nodiscard]] vsa::CGcast::ChannelDecision decide(const vsa::Message& m);
  void schedule(std::int64_t at_us, std::function<void()> action);

  tracking::TrackingNetwork* net_;
  FaultPlan plan_;
  Rng rng_;
  bool armed_ = false;
  int faults_injected_ = 0;
  int planned_faults_ = 0;
  std::vector<std::unique_ptr<sim::Timer>> events_;
  /// Clients killed per depopulated region, for the matching restore.
  std::vector<std::vector<ClientId>> killed_;
};

}  // namespace vs::fault
