#pragma once
// Declarative fault plans — the single description of every failure a run
// injects.
//
// A FaultPlan is a seeded, virtual-time schedule of faults: VSA crashes
// (with automatic restart via the client-presence rule, §II-C.2),
// correlated regional outages (a crash of every region within a hop radius
// of a center), client depopulation windows (a region loses all its
// clients, so its VSA stays down until they return), and channel-fault
// windows — loss bursts, duplication, and bounded delivery jitter (early
// delivery within the δ+e envelope, since the paper's latencies are
// maxima). FaultInjector (fault_injector.hpp) executes a plan against a
// TrackingNetwork.
//
// Plans are text, round-trippable through parse()/to_string(), so a
// ScenarioSpec can embed one and an incident captured under faults replays
// exactly. The format ("faultplan v1") is line-oriented:
//
//   faultplan v1
//   seed <u64>
//   crash <region> at <us>
//   outage <region> radius <hops> at <us>
//   depopulate <region> from <us> until <us>
//   loss from <us> until <us> rate <p>
//   duplicate from <us> until <us> rate <p>
//   jitter from <us> until <us> rate <p> advance <us>
//   recovery base <us> per-fault <us>
//   end
//
// Times are absolute virtual microseconds from simulation start; windows
// are half-open [from, until). Blank lines and '#' comments are allowed;
// anything else — unknown directives, extra tokens on a line, content
// after `end`, out-of-range rates — is rejected with a diagnostic
// (parsing is strict; a silently misread plan is worse than none).
// Region bounds are checked against the world when the plan is armed.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vs::fault {

inline constexpr int kFaultPlanVersion = 1;

struct FaultPlan {
  /// Fail the VSA at `region` at `at_us` (restarts after t_restart while
  /// clients are present — the normal §II-C.2 rule).
  struct Crash {
    std::int32_t region = -1;
    std::int64_t at_us = 0;
    friend bool operator==(const Crash&, const Crash&) = default;
  };
  /// Correlated outage: crash every region within `radius` neighbour hops
  /// of `center` (radius 0 = just the center), all at `at_us`.
  struct Outage {
    std::int32_t center = -1;
    std::int32_t radius = 0;
    std::int64_t at_us = 0;
    friend bool operator==(const Outage&, const Outage&) = default;
  };
  /// Every client in `region` dies at `from_us` and returns at `until_us`.
  /// While empty, the region's VSA is failed with no restart clock (no
  /// emulators). The evader must not enter or leave a depopulated region —
  /// the tracking spec requires a live witness for those transitions.
  struct Depopulate {
    std::int32_t region = -1;
    std::int64_t from_us = 0;
    std::int64_t until_us = 0;
    friend bool operator==(const Depopulate&, const Depopulate&) = default;
  };
  /// A channel-fault window [from_us, until_us): each VSA→VSA or
  /// client→VSA send inside it is affected with probability `rate`.
  /// `advance_us` (jitter only) bounds how much earlier than the nominal
  /// worst-case latency an affected message may arrive.
  struct Window {
    std::int64_t from_us = 0;
    std::int64_t until_us = 0;
    double rate = 0.0;
    std::int64_t advance_us = 0;
    friend bool operator==(const Window&, const Window&) = default;
  };
  /// Recovery-deadline parameters: after the plan's last fault the
  /// structure must be consistent again within
  /// base_us + per_fault_us × (number of crashed regions + depopulations)
  /// — a bound proportional to the damage. Absent = no deadline asserted.
  struct Recovery {
    std::int64_t base_us = 0;
    std::int64_t per_fault_us = 0;
    friend bool operator==(const Recovery&, const Recovery&) = default;
  };

  /// Seed for the channel-fault randomness (the injector owns its Rng;
  /// it is consumed only for sends inside an active window, so a plan
  /// with no windows perturbs nothing).
  std::uint64_t seed = 1;
  std::vector<Crash> crashes;
  std::vector<Outage> outages;
  std::vector<Depopulate> depopulations;
  std::vector<Window> loss_bursts;
  std::vector<Window> duplications;
  std::vector<Window> jitters;
  std::optional<Recovery> recovery;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && outages.empty() && depopulations.empty() &&
           loss_bursts.empty() && duplications.empty() && jitters.empty();
  }

  /// Virtual time of the last scheduled fault: the latest crash/outage
  /// instant, depopulation end, or channel-window end. 0 for an empty plan.
  [[nodiscard]] std::int64_t last_fault_us() const;

  /// Canonical text form; parse(to_string()) == *this.
  [[nodiscard]] std::string to_string() const;

  /// Strict parse; throws vs::Error naming the offending line on any
  /// malformed input.
  static FaultPlan parse(const std::string& text);
  static FaultPlan parse_file(const std::string& path);
};

}  // namespace vs::fault
