#pragma once
// Deterministic trial-level parallelism.
//
// Every quantitative result in the benches is a sweep over *independent*
// simulation worlds — different seeds, grid sides, evader models.
// TrialPool runs those trials on N threads with static shard-by-trial-index
// assignment (worker w owns trials w, w+N, w+2N, …; no work stealing, no
// shared mutable state) and hands results back ordered by trial index, so
// the merged output is bit-identical for every --jobs value.
//
// Determinism rule: a trial's randomness must derive from its *index*
// (trial_seed below, or Rng::split from a per-trial root) — never from
// thread identity, wall-clock, or completion order.

#include <cstdint>
#include <exception>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_io.hpp"

namespace vs::runner {

/// Worker count used when the caller passes jobs = 0: the VS_JOBS
/// environment variable if set, else std::thread::hardware_concurrency()
/// (at least 1).
[[nodiscard]] int default_jobs();

/// Deterministic, trial-index-keyed seed for a sweep seeded with `base`:
/// a splitmix64 mix, so neighbouring trials get uncorrelated streams.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base, std::size_t trial);

/// Thread budget for sweeps whose trials are themselves sharded
/// (TrackingNetwork::set_shards): each trial runs `shards` lane threads,
/// so the pool width is clamped to hardware_concurrency() / shards
/// (floored at 1) to keep jobs × shards within the machine. Shards win the
/// budget fight — intra-world lanes block on each other at every window
/// barrier, so starving them costs more than narrowing the trial pool.
/// Logs a warning when it clamps; `jobs` = 0 means default_jobs().
[[nodiscard]] int clamp_jobs_for_shards(int jobs, int shards);

class TrialPool {
 public:
  /// jobs = 0 picks default_jobs(); jobs = 1 runs inline on the caller
  /// (no threads spawned — the debuggable path).
  explicit TrialPool(int jobs = 0);

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Run `fn(0) … fn(n-1)` across the pool's threads and return the
  /// results in trial-index order. `fn` is invoked concurrently from
  /// several threads and must only touch state local to its trial. If any
  /// trial throws, the exception of the *lowest-indexed* failing trial is
  /// rethrown after all workers join (again independent of scheduling).
  template <class Fn>
  auto run(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>,
                  "a trial must return its result; merging happens at join");
    std::vector<std::optional<R>> slots(n);
    std::vector<std::exception_ptr> errors(n);
    const std::size_t workers =
        std::min(n, static_cast<std::size_t>(jobs_));
    const auto shard = [&](std::size_t w) {
      for (std::size_t i = w; i < n; i += workers) {
        set_log_trial(static_cast<int>(i));  // attribute this trial's logs
        try {
          slots[i].emplace(fn(i));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
      set_log_trial(-1);
    };
    if (workers <= 1) {
      shard(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers - 1);
      for (std::size_t w = 1; w < workers; ++w) {
        threads.emplace_back(shard, w);
      }
      shard(0);  // the calling thread takes shard 0
      for (auto& t : threads) t.join();
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
    std::vector<R> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  int jobs_;
};

/// Join step for per-trial metrics: fold `parts` — already in trial-index
/// order, exactly as TrialPool::run returns them — into one registry.
/// Merge semantics are commutative (obs/metrics.hpp), but folding in index
/// order keeps the artifact byte-identical for every --jobs value even if
/// that ever changes.
[[nodiscard]] obs::MetricsRegistry merge_metrics(
    const std::vector<obs::MetricsRegistry>& parts);

/// Join step for per-trial traces: label each trial's events with its
/// index and concatenate in trial-index order — the multi-world layout
/// obs::write_trace serialises.
[[nodiscard]] std::vector<obs::WorldTrace> merge_traces(
    std::vector<std::vector<obs::TraceEvent>> parts);

}  // namespace vs::runner
