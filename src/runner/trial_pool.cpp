#include "runner/trial_pool.hpp"

#include <cstdlib>

#include "common/rng.hpp"

namespace vs::runner {

int default_jobs() {
  if (const char* env = std::getenv("VS_JOBS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed > 256 ? 256 : parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::uint64_t trial_seed(std::uint64_t base, std::size_t trial) {
  // Golden-ratio stride keeps distinct trials on distinct splitmix64
  // states even for adjacent (base, trial) pairs; +1 so trial 0 of base b
  // differs from trial of a sweep seeded with the mixed value itself.
  std::uint64_t state =
      base ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(trial) + 1));
  return splitmix64(state);
}

TrialPool::TrialPool(int jobs) : jobs_(jobs == 0 ? default_jobs() : jobs) {
  VS_REQUIRE(jobs_ >= 1, "TrialPool needs at least one worker, got " << jobs);
}

int clamp_jobs_for_shards(int jobs, int shards) {
  if (jobs == 0) jobs = default_jobs();
  VS_REQUIRE(jobs >= 1, "jobs must be >= 1, got " << jobs);
  VS_REQUIRE(shards >= 1, "shards must be >= 1, got " << shards);
  if (shards == 1) return jobs;
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const int hw = hw_raw == 0 ? 1 : static_cast<int>(hw_raw);
  const int budget = hw / shards < 1 ? 1 : hw / shards;
  if (jobs <= budget) return jobs;
  VS_WARN("clamping --jobs " << jobs << " to " << budget << ": " << shards
                             << " lane threads per trial on "
                             << hw << " hardware threads");
  return budget;
}

obs::MetricsRegistry merge_metrics(
    const std::vector<obs::MetricsRegistry>& parts) {
  obs::MetricsRegistry merged;
  for (const auto& part : parts) merged.merge(part);
  return merged;
}

std::vector<obs::WorldTrace> merge_traces(
    std::vector<std::vector<obs::TraceEvent>> parts) {
  std::vector<obs::WorldTrace> merged;
  merged.reserve(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    merged.push_back(obs::WorldTrace{static_cast<std::uint32_t>(i),
                                     std::move(parts[i])});
  }
  return merged;
}

}  // namespace vs::runner
