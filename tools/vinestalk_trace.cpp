// vinestalk_trace — offline reader for VSTRACE1 trace files.
//
// Commands:
//   summary <file>              aggregate shape of every world
//   spans <file> <find-id>      causal span of one find (all worlds holding it)
//   timeline <file> --level N   records at one hierarchy level
//   check <file>                replay the trace through the spec invariants
//
// Exit status: 0 on success; 1 on usage/IO errors; 2 when `check` finds
// violations (so scripts can gate on it, see tools/check.sh).

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_query.hpp"
#include "stats/counters.hpp"

namespace {

using vs::obs::TraceEvent;
using vs::obs::TraceKind;
using vs::obs::WorldTrace;

int usage() {
  std::cerr << "usage: vinestalk_trace <command> <trace-file> [args]\n"
               "  summary <file>             per-world aggregate counts\n"
               "  spans <file> <find-id>     causal span of one find\n"
               "  timeline <file> --level N  records at hierarchy level N\n"
               "  check <file>               replay spec invariants "
               "(exit 2 on violation)\n";
  return 1;
}

void print_summary(const WorldTrace& w) {
  const vs::obs::TraceSummary s = vs::obs::summarize(w);
  std::cout << "world " << s.world << ": " << s.events << " events";
  if (s.events != 0) {
    std::cout << ", t=[" << s.first_us << "us, " << s.last_us << "us]";
  }
  std::cout << "\n  finds: " << s.finds_issued << " issued, "
            << s.finds_completed << " completed; max level " << s.max_level
            << "\n";
  for (std::size_t k = 0; k < s.by_kind.size(); ++k) {
    if (s.by_kind[k] == 0) continue;
    std::cout << "  " << vs::obs::to_string(static_cast<TraceKind>(k)) << ": "
              << s.by_kind[k] << "\n";
  }
  for (std::size_t m = 0; m < s.sends_by_msg.size(); ++m) {
    if (s.sends_by_msg[m] == 0) continue;
    std::cout << "  send[" << vs::stats::to_string(
                     static_cast<vs::stats::MsgKind>(m))
              << "]: " << s.sends_by_msg[m] << "\n";
  }
}

int cmd_summary(const std::vector<WorldTrace>& worlds) {
  std::cout << worlds.size() << " world(s)\n";
  for (const auto& w : worlds) print_summary(w);
  return 0;
}

int cmd_spans(const std::vector<WorldTrace>& worlds, std::int64_t find_id) {
  bool seen = false;
  for (const auto& w : worlds) {
    const vs::obs::FindSpan span = vs::obs::find_span(w, find_id);
    if (span.events.empty()) continue;
    seen = true;
    std::cout << "world " << w.world << ", find " << find_id << ": "
              << span.events.size() << " events, "
              << (span.complete() ? "complete" : "incomplete")
              << " (issued=" << span.issued << " found=" << span.found
              << " causally_connected=" << span.causally_connected << ")\n";
    for (const TraceEvent& e : span.events) {
      std::cout << "  " << vs::obs::format_event(e) << "\n";
    }
  }
  if (!seen) {
    std::cout << "find " << find_id << " not present in any world\n";
  }
  return 0;
}

int cmd_timeline(const std::vector<WorldTrace>& worlds, int level) {
  for (const auto& w : worlds) {
    const std::vector<TraceEvent> events = vs::obs::timeline(w, level);
    std::cout << "world " << w.world << ", level " << level << ": "
              << events.size() << " events\n";
    for (const TraceEvent& e : events) {
      std::cout << "  " << vs::obs::format_event(e) << "\n";
    }
  }
  return 0;
}

int cmd_check(const std::vector<WorldTrace>& worlds) {
  const vs::obs::CheckReport report = vs::obs::check_trace(worlds);
  std::cout << report.to_string();
  return report.ok() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  std::vector<WorldTrace> worlds;
  try {
    worlds = vs::obs::read_trace_file(path);
  } catch (const vs::Error& e) {
    std::cerr << "vinestalk_trace: " << e.what() << "\n";
    return 1;
  }

  try {
    if (command == "summary") {
      return cmd_summary(worlds);
    }
    if (command == "spans") {
      if (argc < 4) return usage();
      return cmd_spans(worlds, std::stoll(argv[3]));
    }
    if (command == "timeline") {
      int level = -1;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--level") == 0 && i + 1 < argc) {
          level = std::stoi(argv[++i]);
        }
      }
      if (level < 0) return usage();
      return cmd_timeline(worlds, level);
    }
    if (command == "check") {
      return cmd_check(worlds);
    }
  } catch (const std::exception& e) {
    std::cerr << "vinestalk_trace: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
