// vinestalk_trace — offline reader for VSTRACE1 traces and VSINCID1
// incident bundles.
//
// Commands:
//   summary <file> [--counters J]
//                               aggregate shape of every world; --counters
//                               also reports the PDES shard/null-message/
//                               horizon-stall overhead from a WorkCounters
//                               JSON artifact (bench --obs-json) — traces
//                               are byte-identical at every shard count, so
//                               scheduler overhead lives in the counters,
//                               not the events
//   spans <file> <find-id>      causal span of one find (all worlds holding it)
//   timeline <file> --level N   records at one hierarchy level
//   check <file>                replay the trace through the spec invariants
//   audit <file> [--side N --base B] [--slack S]
//                               rebuild the per-operation cost ledger from
//                               the trace (attribution + conservation) and,
//                               given the world shape, judge every operation
//                               against the Theorem 4.9 / 5.2 bounds
//   export <file> [--out F]     convert to Chrome trace-event JSON (Perfetto)
//   incident <file> [--replay] [--dump-ring F]
//                               pretty-print an incident bundle; --replay
//                               re-runs its scenario and verifies the
//                               violation reproduces; --dump-ring writes the
//                               flight-recorder ring as a VSTRACE1 file
//   telemetry <file> [--csv]    summarize a VSTELEM1 time-series stream
//                               (cadence, series, rates over the run);
//                               --csv dumps every sample as CSV to stdout
//   slo <file> [--csv]          summarize a VSSLO1 SLO report sidecar
//                               (spec, RED per class, burn windows,
//                               exemplars); --csv dumps the latency
//                               histogram buckets
//
// Exit status: 0 on success; 1 on usage/IO/corrupt-file errors and on a
// failed replay; 2 when `check` finds violations (so scripts can gate on
// it, see tools/check.sh).

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "hier/grid_hierarchy.hpp"
#include "obs/chrome_export.hpp"
#include "obs/ledger/auditor.hpp"
#include "obs/monitor/incident.hpp"
#include "obs/monitor/replay.hpp"
#include "obs/op.hpp"
#include "obs/profile/profile_io.hpp"
#include "obs/slo/slo.hpp"
#include "obs/slo/slo_io.hpp"
#include "obs/telemetry/telemetry_io.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_query.hpp"
#include "stats/counters.hpp"
#include "tracking/config.hpp"

namespace {

using vs::obs::TraceEvent;
using vs::obs::TraceKind;
using vs::obs::WorldTrace;

int usage() {
  std::cerr << "usage: vinestalk_trace <command> <file> [args]\n"
               "  summary <file> [--counters J]\n"
               "                             per-world aggregate counts; "
               "--counters adds the\n"
               "                             PDES overhead block from a "
               "WorkCounters JSON file\n"
               "  spans <file> <find-id>     causal span of one find\n"
               "  timeline <file> --level N  records at hierarchy level N\n"
               "  check <file>               replay spec invariants "
               "(exit 2 on violation)\n"
               "  audit <file> [--side N --base B] [--slack S]\n"
               "                             per-operation cost ledger + "
               "theorem-bound audit\n"
               "  export <file> [--out F] [--profile P]\n"
               "                             Chrome trace-event JSON "
               "(stdout unless --out);\n"
               "                             --profile merges a VSPROF1 "
               "sidecar as CPU counter tracks\n"
               "  flame <profile> [--out F]  folded flamegraph stacks from "
               "a VSPROF1 sidecar\n"
               "  incident <file> [--replay] [--dump-ring F]\n"
               "                             inspect/replay an incident "
               "bundle\n"
               "  telemetry <file> [--csv]   summarize a VSTELEM1 telemetry "
               "stream (--csv dumps samples)\n"
               "  slo <file> [--csv]         summarize a VSSLO1 report "
               "sidecar (--csv dumps latency buckets)\n";
  return 1;
}

/// Exact find latencies (issued → found, per FindId) with nearest-rank
/// percentiles — unlike the bucketed metrics histogram, a trace holds the
/// raw values, so these are exact.
void print_find_latencies(const WorldTrace& w) {
  std::map<std::int64_t, std::int64_t> issued;
  std::vector<std::int64_t> latencies;
  for (const TraceEvent& e : w.events) {
    if (static_cast<TraceKind>(e.kind) == TraceKind::kFindIssued) {
      issued[e.find] = e.time_us;
    } else if (static_cast<TraceKind>(e.kind) == TraceKind::kFoundOutput) {
      const auto it = issued.find(e.find);
      if (it != issued.end()) latencies.push_back(e.time_us - it->second);
    }
  }
  if (latencies.empty()) return;
  std::sort(latencies.begin(), latencies.end());
  const auto rank = [&](double q) {
    const auto n = static_cast<double>(latencies.size());
    auto i = static_cast<std::size_t>(q * (n - 1) + 0.5);
    if (i >= latencies.size()) i = latencies.size() - 1;
    return latencies[i];
  };
  std::cout << "  find latency us: p50=" << rank(0.5)
            << " p90=" << rank(0.9) << " p99=" << rank(0.99)
            << " max=" << latencies.back() << " (" << latencies.size()
            << " completed)\n";
}

void print_summary(const WorldTrace& w) {
  const vs::obs::TraceSummary s = vs::obs::summarize(w);
  std::cout << "world " << s.world << ": " << s.events << " events";
  if (s.events != 0) {
    std::cout << ", t=[" << s.first_us << "us, " << s.last_us << "us]";
  }
  std::cout << "\n  finds: " << s.finds_issued << " issued, "
            << s.finds_completed << " completed; max level " << s.max_level
            << "\n";
  print_find_latencies(w);
  for (std::size_t k = 0; k < s.by_kind.size(); ++k) {
    if (s.by_kind[k] == 0) continue;
    std::cout << "  " << vs::obs::to_string(static_cast<TraceKind>(k)) << ": "
              << s.by_kind[k] << "\n";
  }
  for (std::size_t m = 0; m < s.sends_by_msg.size(); ++m) {
    if (s.sends_by_msg[m] == 0) continue;
    std::cout << "  send[" << vs::stats::to_string(
                     static_cast<vs::stats::MsgKind>(m))
              << "]: " << s.sends_by_msg[m] << "\n";
  }
  // Per-level message/hop-work breakdown from the C-gcast cost records —
  // the same ledger charging rule (client/broadcast hops land on level 0),
  // so `summary` output alone matches the audit's level columns.
  std::map<int, std::pair<std::int64_t, std::int64_t>> cost;
  for (const TraceEvent& e : w.events) {
    const auto k = static_cast<TraceKind>(e.kind);
    if (k != TraceKind::kSend && k != TraceKind::kClientSend &&
        k != TraceKind::kBroadcast) {
      continue;
    }
    auto& [msgs, work] = cost[e.level < 0 ? 0 : e.level];
    ++msgs;
    work += e.arg;
  }
  for (const auto& [level, mw] : cost) {
    std::cout << "  cost[L" << level << "]: " << mw.first << " messages, "
              << mw.second << " hop-work\n";
  }
}

/// Report the PDES overhead counters from a WorkCounters JSON artifact
/// (bench --obs-json / vinestalk_cli --obs-json). Sharded and serial runs
/// produce byte-identical traces — that is the tentpole guarantee — so the
/// scheduler's own overhead (windows, cross-shard null-message traffic,
/// horizon stalls) is only visible in the counters, never in the events.
/// WorkCounters::to_json emits the block as a single-line object keyed
/// "pdes"; we scan for those objects rather than pull in a JSON parser.
int print_pdes_counters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "vinestalk_trace: cannot open counters file: " << path
              << "\n";
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::string key = "\"pdes\"";
  std::size_t pos = 0;
  int blocks = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    const std::size_t open = text.find('{', pos + key.size());
    const std::size_t close =
        open == std::string::npos ? std::string::npos : text.find('}', open);
    if (close == std::string::npos) break;  // truncated file; stop scanning
    ++blocks;
    std::cout << "  pdes[" << blocks << "]: "
              << text.substr(open, close - open + 1) << "\n";
    pos = close;
  }
  if (blocks == 0) {
    std::cout << "  pdes: none (serial run — counters carry a \"pdes\" "
                 "block only when shard windows ran)\n";
  }
  return 0;
}

int cmd_summary(const std::vector<WorldTrace>& worlds,
                const std::string& counters_path) {
  std::cout << worlds.size() << " world(s)\n";
  for (const auto& w : worlds) print_summary(w);
  if (!counters_path.empty()) {
    std::cout << "pdes overhead (" << counters_path << "):\n";
    return print_pdes_counters(counters_path);
  }
  return 0;
}

int cmd_spans(const std::vector<WorldTrace>& worlds, std::int64_t find_id) {
  bool seen = false;
  for (const auto& w : worlds) {
    const vs::obs::FindSpan span = vs::obs::find_span(w, find_id);
    if (span.events.empty()) continue;
    seen = true;
    std::cout << "world " << w.world << ", find " << find_id << ": "
              << span.events.size() << " events, "
              << (span.complete() ? "complete" : "incomplete")
              << " (issued=" << span.issued << " found=" << span.found
              << " causally_connected=" << span.causally_connected << ")\n";
    for (const TraceEvent& e : span.events) {
      std::cout << "  " << vs::obs::format_event(e) << "\n";
    }
  }
  if (!seen) {
    std::cout << "find " << find_id << " not present in any world\n";
  }
  return 0;
}

int cmd_timeline(const std::vector<WorldTrace>& worlds, int level) {
  for (const auto& w : worlds) {
    const std::vector<TraceEvent> events = vs::obs::timeline(w, level);
    std::cout << "world " << w.world << ", level " << level << ": "
              << events.size() << " events\n";
    for (const TraceEvent& e : events) {
      std::cout << "  " << vs::obs::format_event(e) << "\n";
    }
  }
  return 0;
}

int cmd_check(const std::vector<WorldTrace>& worlds) {
  const vs::obs::CheckReport report = vs::obs::check_trace(worlds);
  std::cout << report.to_string();
  return report.ok() ? 0 : 2;
}

int cmd_audit(const std::vector<WorldTrace>& worlds, int side, int base,
              double slack) {
  // The bound audit needs the world shape to evaluate the theorem sums;
  // the cost constants are the defaults every CLI/example run uses.
  std::optional<vs::hier::GridHierarchy> hierarchy;
  std::optional<vs::obs::BoundAuditor> auditor;
  if (side > 0 && base > 0) {
    hierarchy.emplace(side, side, base);
    const vs::vsa::CGcastConfig cg;
    auditor.emplace(
        *hierarchy,
        vs::obs::AuditConfig{
            .slack = slack,
            .delta_plus_e = cg.delta + cg.e,
            .timers =
                vs::tracking::TimerPolicy::paper_default(*hierarchy, cg)});
  }
  int rc = 0;
  for (const auto& w : worlds) {
    std::cout << "world " << w.world << ":\n";
    const vs::obs::TraceAttribution attr = vs::obs::attribute_trace(w);
    if (auditor) {
      const vs::obs::AuditReport report = auditor->audit(attr.ledger);
      vs::obs::print_audit(std::cout, attr, report);
      if (!report.ok()) rc = 2;
    } else {
      std::cout << "attribution: " << attr.cost_events << " cost events ("
                << attr.direct << " direct, " << attr.via_cause
                << " via cause DAG, " << attr.background << " background)\n"
                << "pass --side/--base to judge against the theorem bounds\n"
                << attr.ledger.to_json() << "\n";
    }
  }
  return rc;
}

int cmd_flame(const std::string& path, const std::string& out) {
  const vs::obs::ProfileReport report = vs::obs::read_profile_file(path);
  if (out.empty()) {
    vs::obs::profile_to_folded(std::cout, report);
  } else {
    std::ofstream os(out, std::ios::trunc);
    if (!os.good()) {
      std::cerr << "vinestalk_trace: cannot open " << out << "\n";
      return 1;
    }
    vs::obs::profile_to_folded(os, report);
    std::cerr << "wrote " << out << "\n";
  }
  std::cerr << report.paths.size() << " stack(s), "
            << report.total_ns / 1000 << " us total self time — feed to "
               "flamegraph.pl or speedscope\n";
  return 0;
}

int cmd_export(const std::vector<WorldTrace>& worlds, const std::string& out,
               const std::string& profile_path) {
  vs::obs::ChromeExportStats stats{};
  std::optional<vs::obs::ProfileReport> profile;
  if (!profile_path.empty()) {
    profile = vs::obs::read_profile_file(profile_path);
  }
  const vs::obs::ProfileReport* prof =
      profile.has_value() ? &*profile : nullptr;
  if (out.empty()) {
    stats = vs::obs::write_chrome_trace(std::cout, worlds, prof);
  } else {
    std::ofstream os(out, std::ios::trunc);
    if (!os.good()) {
      std::cerr << "vinestalk_trace: cannot open " << out << "\n";
      return 1;
    }
    stats = vs::obs::write_chrome_trace(os, worlds, prof);
    std::cerr << "wrote " << out << "\n";
  }
  std::cerr << stats.slices << " slice(s), " << stats.flows
            << " flow pair(s), " << stats.counters
            << " cost counter sample(s) — open in ui.perfetto.dev or "
               "chrome://tracing\n";
  return 0;
}

int cmd_telemetry(const std::string& path, bool csv) {
  vs::obs::TelemetryFile file;
  try {
    // Tail mode: a stream from a run that is still going (or died) is
    // still worth summarizing; completeness is reported either way.
    file = vs::obs::read_telemetry_file(path, /*strict=*/false);
  } catch (const vs::Error& e) {
    std::cerr << "vinestalk_trace: " << e.what() << "\n";
    return 1;
  }
  if (csv) {
    vs::obs::telemetry_to_csv(std::cout, file);
    return 0;
  }
  const vs::obs::TelemetryHeader& h = file.header;
  std::cout << "VSTELEM1 stream: " << file.samples.size() << " sample(s), "
            << (file.complete ? "complete" : "unterminated (tail read)")
            << "\n  cadence " << h.cadence_us << "us, " << h.series
            << " series, max level " << h.max_level;
  if (h.has_lanes()) std::cout << ", " << h.lanes << " pdes lane(s)";
  std::cout << "\n";
  if (file.samples.empty()) return 0;
  const vs::obs::TelemetrySample& first = file.samples.front();
  const vs::obs::TelemetrySample& last = file.samples.back();
  std::cout << "  t = [" << first.t_us << "us, " << last.t_us << "us]\n";
  const std::vector<std::string> names = vs::obs::telemetry_series_names(h);
  const double span_s =
      static_cast<double>(last.t_us - first.t_us) / 1e6;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::int64_t v = last.values[i];
    if (v == 0) continue;  // keep the summary to series that moved
    std::cout << "  " << names[i] << ": " << v;
    const std::int64_t delta = v - first.values[i];
    // Rates only make sense for counters, not for the _us quantile and
    // milli-ratio gauges.
    const bool gauge = names[i].ends_with("_us") ||
                       names[i].ends_with("_milli");
    if (!gauge && span_s > 0 && delta > 0) {
      std::cout << " (" << static_cast<std::int64_t>(
                               static_cast<double>(delta) / span_s)
                << "/s over the stream)";
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_slo(const std::string& path, bool csv) {
  vs::obs::SloReport rep;
  try {
    rep = vs::obs::read_slo_file(path);
  } catch (const vs::Error& e) {
    std::cerr << "vinestalk_trace: " << e.what() << "\n";
    return 1;
  }
  if (csv) {
    vs::obs::slo_to_csv(std::cout, rep);
    return 0;
  }
  std::cout << "VSSLO1 report: " << (rep.wall_clock ? "wall" : "virtual")
            << " windows, t = " << rep.end_t_us << "us\n";
  std::cout << "spec:\n";
  std::istringstream spec(rep.spec_text);
  for (std::string line; std::getline(spec, line);) {
    std::cout << "  " << line << "\n";
  }
  for (std::size_t c = 0; c < vs::obs::kSloClasses; ++c) {
    const auto& cs = rep.classes[c];
    if (cs.requests == 0 && cs.errors == 0) continue;
    std::cout << "  " << vs::obs::to_string(static_cast<vs::obs::SloClass>(c))
              << ": " << cs.requests << " request(s), " << cs.errors
              << " error(s); latency us p50="
              << cs.latency.percentile(0.50) / 1000
              << " p99=" << cs.latency.percentile(0.99) / 1000
              << " max=" << cs.latency.max() / 1000 << "\n";
  }
  if (rep.find_ns_per_d.count() > 0) {
    std::cout << "  find ns/d: p50=" << rep.find_ns_per_d.percentile(0.50)
              << " p99=" << rep.find_ns_per_d.percentile(0.99) << "\n";
  }
  for (const auto& [band, hist] : rep.find_bands) {
    std::cout << "  find " << vs::obs::slo_band_label(band) << ": "
              << hist.count() << " find(s), p99 us "
              << hist.percentile(0.99) / 1000 << "\n";
  }
  for (std::size_t i = 0; i < rep.objectives.size(); ++i) {
    const vs::obs::SloObjectiveState& o = rep.objectives[i];
    const std::int64_t budget = rep.budget_remaining_milli(i);
    std::cout << "  objective " << o.name << ": burn short "
              << o.burn_short_centi << "c long " << o.burn_long_centi
              << "c, budget " << budget << "m left"
              << (o.fired ? " [FIRED]" : "") << "\n";
  }
  if (!rep.exemplars.empty()) {
    std::cout << "  exemplars (slowest first):\n";
    for (const vs::obs::SloExemplar& e : rep.exemplars) {
      std::cout << "    "
                << vs::obs::to_string(static_cast<vs::obs::SloClass>(e.cls))
                << " " << e.latency_ns << "ns at " << e.t_us << "us";
      if (e.op != 0) {
        std::cout << " op " << vs::obs::op_name(e.op) << " d=" << e.distance;
      }
      std::cout << "\n";
    }
  }
  return 0;
}

int cmd_incident(const std::string& path, bool replay,
                 const std::string& dump_ring) {
  vs::obs::IncidentBundle bundle;
  try {
    bundle = vs::obs::read_incident_file(path);
  } catch (const vs::Error& e) {
    std::cerr << "vinestalk_trace: " << e.what() << "\n";
    return 1;
  }
  vs::obs::print_incident(std::cout, bundle);
  if (!dump_ring.empty()) {
    vs::obs::write_trace_file(dump_ring,
                              {WorldTrace{0, bundle.ring}});
    std::cout << "flight recorder written to " << dump_ring << " ("
              << bundle.ring.size() << " events)\n";
  }
  if (!replay) return 0;
  const vs::obs::ReplayResult res = vs::obs::replay_incident(bundle);
  std::cout << "replay: " << res.message << "\n";
  return res.reproduced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  try {
    if (command == "incident") {
      bool replay = false;
      std::string dump_ring;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--replay") == 0) {
          replay = true;
        } else if (std::strcmp(argv[i], "--dump-ring") == 0 && i + 1 < argc) {
          dump_ring = argv[++i];
        } else {
          return usage();
        }
      }
      return cmd_incident(path, replay, dump_ring);
    }
    if (command == "telemetry") {
      bool csv = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
          csv = true;
        } else {
          return usage();
        }
      }
      return cmd_telemetry(path, csv);
    }
    if (command == "flame") {
      std::string out;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out = argv[++i];
        } else {
          return usage();
        }
      }
      return cmd_flame(path, out);
    }
    if (command == "slo") {
      bool csv = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
          csv = true;
        } else {
          return usage();
        }
      }
      return cmd_slo(path, csv);
    }

    std::vector<WorldTrace> worlds;
    try {
      worlds = vs::obs::read_trace_file(path);
    } catch (const vs::Error& e) {
      std::cerr << "vinestalk_trace: " << e.what() << "\n";
      return 1;
    }

    if (command == "summary") {
      std::string counters;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--counters") == 0 && i + 1 < argc) {
          counters = argv[++i];
        } else {
          return usage();
        }
      }
      return cmd_summary(worlds, counters);
    }
    if (command == "spans") {
      if (argc < 4) return usage();
      return cmd_spans(worlds, std::stoll(argv[3]));
    }
    if (command == "timeline") {
      int level = -1;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--level") == 0 && i + 1 < argc) {
          level = std::stoi(argv[++i]);
        }
      }
      if (level < 0) return usage();
      return cmd_timeline(worlds, level);
    }
    if (command == "check") {
      return cmd_check(worlds);
    }
    if (command == "audit") {
      int side = 0;
      int base = 0;
      double slack = 2.0;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--side") == 0 && i + 1 < argc) {
          side = std::stoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--base") == 0 && i + 1 < argc) {
          base = std::stoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--slack") == 0 && i + 1 < argc) {
          slack = std::stod(argv[++i]);
        } else {
          return usage();
        }
      }
      return cmd_audit(worlds, side, base, slack);
    }
    if (command == "export") {
      std::string out;
      std::string profile;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out = argv[++i];
        } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
          profile = argv[++i];
        } else {
          return usage();
        }
      }
      return cmd_export(worlds, out, profile);
    }
  } catch (const std::exception& e) {
    std::cerr << "vinestalk_trace: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
