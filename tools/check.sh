#!/usr/bin/env bash
# Pre-merge check: a plain build + full test suite (tracing compiled in,
# with a traced quickstart run gated by `vinestalk_trace check`), then a
# ThreadSanitizer build exercising the concurrency surface (the trial
# pool, the single-writer log, and the observability merge paths) with
# more workers than trials need, then a tracing-compiled-out build
# proving every record point is optional dead code, then a watchdog
# stage: a monitored quickstart must stay clean, a CLI-seeded corruption
# must produce an incident bundle that replays to the same violation,
# and the Chrome export must be valid JSON. A chaos stage arms a
# canned FaultPlan through the CLI: the run must meet its recovery
# deadline with a consistent structure, and an incident captured under
# the same faults must --replay to the exact same violation. A final
# audit stage runs the per-operation cost auditor end to end: a traced
# quickstart must attribute 100% of its cost events and sit inside the
# Theorem 4.9/5.2 slack, and a traced chaos-plan run must bill its
# heartbeat and repair traffic to stabilizer operations with nothing
# leaking into background. A shard stage pins the PDES guarantee:
# a sharded quickstart (VS_SHARDS ∈ {2,4,8}) must produce stdout and a
# VSTRACE1 trace byte-identical to the serial run's. A final telemetry
# stage pins the time-series layer: a telemetered quickstart's VSTELEM1
# stream must be byte-identical serial vs sharded, a chaos-plan CLI run
# must show its heartbeat/repair traffic in the telemetry summary, and
# the Prometheus snapshot must parse as text exposition format. A perf
# stage pins the CPU profiler: a profiled quickstart must write a
# VSPROF1 sidecar whose flamegraph folds cleanly, every deterministic
# artifact must stay byte-identical with profiling on vs off at 1/2/4/8
# shards, and the vinestalk_bench trajectory gate must append a
# machine-stamped history row and pass against the committed baseline.
# A no-profile stage (-DVINESTALK_PROFILE=OFF) proves every probe is
# optional dead code. A serve stage drives the vinestalk_served ingest
# daemon: a 2×-capacity load burst under a chaos fault plan must finish
# incident-free with the conservation identity intact and the shed
# ladder visible in the Prometheus snapshot, and its VSINGEST1 capture
# must replay to a byte-identical world trace at 1/2/4 shards. An SLO
# stage pins request-level observability: arming a spec must leave
# every deterministic artifact (stdout, trace, telemetry, capture)
# byte-identical to the unarmed run at 1/2/4 shards, a tight find-p99
# objective under 2× overdrive chaos must fire a burn-rate incident
# mid-run, and that incident's exemplar OpId must resolve to real span
# events in the trace that survive a capture replay byte-identically.
#
#   tools/check.sh              # all stages
#   tools/check.sh --plain      # stage 1 only
#   tools/check.sh --tsan       # stage 2 only
#   tools/check.sh --no-trace   # stage 3 only
#   tools/check.sh --monitor    # stage 4 only (reuses build-check/)
#   tools/check.sh --chaos      # stage 5 only (reuses build-check/)
#   tools/check.sh --audit      # stage 6 only (reuses build-check/)
#   tools/check.sh --shard      # stage 7 only (reuses build-check/)
#   tools/check.sh --telemetry  # stage 8 only (reuses build-check/)
#   tools/check.sh --perf       # stage 9 only (reuses build-check/)
#   tools/check.sh --no-profile # stage 10 only
#   tools/check.sh --serve      # stage 11 only (reuses build-check/)
#   tools/check.sh --slo        # stage 12 only (reuses build-check/)
#
# Build trees: build-check/ (plain), build-tsan/ (TSan),
# build-notrace/ (-DVINESTALK_TRACE=OFF), and build-noprof/
# (-DVINESTALK_PROFILE=OFF); all separate from the default build/ so
# this never dirties a dev tree.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
stage="${1:-all}"

run_plain() {
  echo "== stage 1: plain build (tracing on) + ctest + trace check =="
  cmake -B "$root/build-check" -S "$root" -DVINESTALK_TRACE=ON > /dev/null
  cmake --build "$root/build-check" -j "$jobs"
  ctest --test-dir "$root/build-check" --output-on-failure -j "$jobs"
  # A traced end-to-end run must replay clean against the paper's lemmas.
  local trace
  trace="$(mktemp /tmp/vs_quickstart_trace.XXXXXX)"
  VS_TRACE="$trace" "$root/build-check/examples/example_quickstart" > /dev/null
  "$root/build-check/tools/vinestalk_trace" check "$trace"
  "$root/build-check/tools/vinestalk_trace" summary "$trace" > /dev/null
  rm -f "$trace"
}

run_tsan() {
  echo "== stage 2: ThreadSanitizer =="
  cmake -B "$root/build-tsan" -S "$root" -DVINESTALK_SANITIZE=thread > /dev/null
  cmake --build "$root/build-tsan" -j "$jobs" \
    --target test_concurrent test_runner test_obs test_monitor test_fault \
    test_audit test_shard test_telemetry test_profile test_serve test_slo \
    bench_e2_move_scaling
  "$root/build-tsan/tests/test_concurrent"
  "$root/build-tsan/tests/test_runner"
  "$root/build-tsan/tests/test_obs"
  "$root/build-tsan/tests/test_monitor"
  "$root/build-tsan/tests/test_fault"
  "$root/build-tsan/tests/test_audit"
  "$root/build-tsan/tests/test_shard"
  "$root/build-tsan/tests/test_telemetry"
  "$root/build-tsan/tests/test_profile"
  # The ingest daemon's reader/driver handshake and SPSC rings under TSan.
  "$root/build-tsan/tests/test_serve"
  # SLO spans close on the driver thread while RPC finds run concurrently.
  "$root/build-tsan/tests/test_slo"
  "$root/build-tsan/bench/bench_e2_move_scaling" --jobs 4 > /dev/null
  echo "TSan stage clean (zero reports would have aborted the run)."
}

run_notrace() {
  echo "== stage 3: tracing compiled out (-DVINESTALK_TRACE=OFF) =="
  cmake -B "$root/build-notrace" -S "$root" -DVINESTALK_TRACE=OFF > /dev/null
  cmake --build "$root/build-notrace" -j "$jobs" \
    --target test_obs test_sim test_audit test_telemetry test_profile \
    test_serve test_slo example_quickstart
  "$root/build-notrace/tests/test_obs"
  "$root/build-notrace/tests/test_sim"
  # The op-ledger API must compile to no-ops: the trace-dependent audit
  # tests skip themselves, the disabled-ledger pin still runs.
  "$root/build-notrace/tests/test_audit"
  # Same for the telemetry sampler: enable() must be a no-op, streaming
  # tests skip themselves, the disabled-holds-nothing pin still runs.
  "$root/build-notrace/tests/test_telemetry"
  # The profiler's byte-identity pin needs the trace; it skips itself,
  # the pure-report and renderer tests still run.
  "$root/build-notrace/tests/test_profile"
  # And the serve daemon: the trace-gated byte-identity tests skip
  # themselves, the wire-format/ladder/conservation pins still run.
  "$root/build-notrace/tests/test_serve"
  # The SLO layer has no trace dependency for spec/monitor/sidecar logic;
  # only the daemon byte-identity and exemplar-replay tests skip.
  "$root/build-notrace/tests/test_slo"
  "$root/build-notrace/examples/example_quickstart" > /dev/null
  echo "Compiled-out stage clean (record points are dead code)."
}

run_monitor() {
  echo "== stage 4: live watchdog end-to-end =="
  cmake -B "$root/build-check" -S "$root" -DVINESTALK_TRACE=ON > /dev/null
  cmake --build "$root/build-check" -j "$jobs" \
    --target example_quickstart vinestalk_cli vinestalk_trace
  # A healthy run under the watchdog must stay violation-free in both modes.
  VS_MONITOR=every "$root/build-check/examples/example_quickstart" > /dev/null
  VS_MONITOR=1000 "$root/build-check/examples/example_quickstart" > /dev/null
  # Seed a corruption through the CLI: the watchdog must catch it, the
  # bundle must land in --incident-dir, and the bundle must replay to the
  # same violation (exit 1 from the tool would mean it did not reproduce).
  local dir
  dir="$(mktemp -d /tmp/vs_incidents.XXXXXX)"
  printf 'world 27 3\nevader 20 6\nmonitor 0 every\nwalk 0 5 42\ncorrupt 0 2 2\nquit\n' |
    "$root/build-check/tools/vinestalk_cli" --incident-dir "$dir" > /dev/null
  local bundle="$dir/incident_cli_0.vsi"
  [ -f "$bundle" ] || { echo "FAIL: no incident bundle in $dir" >&2; exit 1; }
  "$root/build-check/tools/vinestalk_trace" incident "$bundle" --replay \
    > /dev/null
  # Chrome export of a traced run must be valid JSON with events in it.
  local trace="$dir/quickstart.vst"
  VS_TRACE="$trace" "$root/build-check/examples/example_quickstart" > /dev/null
  "$root/build-check/tools/vinestalk_trace" export "$trace" \
    --out "$dir/quickstart.json" > /dev/null
  python3 - "$dir/quickstart.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["traceEvents"], "empty traceEvents"
EOF
  rm -rf "$dir"
  echo "Watchdog stage clean (clean run silent, seeded violation replayed)."
}

run_chaos() {
  echo "== stage 5: fault-plan chaos end-to-end =="
  cmake -B "$root/build-check" -S "$root" -DVINESTALK_TRACE=ON > /dev/null
  cmake --build "$root/build-check" -j "$jobs" \
    --target vinestalk_cli vinestalk_trace
  local dir
  dir="$(mktemp -d /tmp/vs_chaos.XXXXXX)"
  cat > "$dir/chaos.plan" <<'EOF'
# check.sh canned chaos: two mid-walk VSA crashes and a loss burst, with
# a damage-proportional recovery deadline the run must meet.
faultplan v1
seed 77
crash 40 at 1000000
crash 13 at 2000000
loss from 1500000 until 2500000 rate 0.05
recovery base 1000000 per-fault 200000
end
EOF
  # Clean recovery: the monitored run must repair within the deadline and
  # end consistent, with no incident captured.
  printf 'world 9 3\nevader 4 4\nmonitor 0 cadence\nfault %s\nwalk 0 20 42\ncheck 0\nquit\n' \
    "$dir/chaos.plan" |
    "$root/build-check/tools/vinestalk_cli" --incident-dir "$dir" \
    > "$dir/clean.out"
  grep -q "recovery deadline met" "$dir/clean.out" || {
    echo "FAIL: chaos run missed its recovery deadline" >&2
    cat "$dir/clean.out" >&2; exit 1; }
  grep -qx "consistent" "$dir/clean.out" || {
    echo "FAIL: chaos run did not end consistent" >&2
    cat "$dir/clean.out" >&2; exit 1; }
  if ls "$dir"/incident_cli_*.vsi > /dev/null 2>&1; then
    echo "FAIL: clean chaos run captured an incident" >&2; exit 1
  fi
  # Same faults plus a seeded corruption: the incident bundle must embed
  # the fault plan and --replay to the exact same violation.
  printf 'world 9 3\nevader 4 4\nmonitor 0 cadence\nfault %s\nwalk 0 20 42\ncorrupt 0 1 1\nquit\n' \
    "$dir/chaos.plan" |
    "$root/build-check/tools/vinestalk_cli" --incident-dir "$dir" \
    > "$dir/violation.out"
  local bundle="$dir/incident_cli_0.vsi"
  [ -f "$bundle" ] || { echo "FAIL: no chaos incident bundle in $dir" >&2
    cat "$dir/violation.out" >&2; exit 1; }
  "$root/build-check/tools/vinestalk_trace" incident "$bundle" --replay \
    > "$dir/replay.out"
  grep -q "exact" "$dir/replay.out" || {
    echo "FAIL: chaos incident did not replay exactly" >&2
    cat "$dir/replay.out" >&2; exit 1; }
  rm -rf "$dir"
  echo "Chaos stage clean (deadline met, fault incident replayed exactly)."
}

run_audit() {
  echo "== stage 6: per-operation cost audit end-to-end =="
  cmake -B "$root/build-check" -S "$root" -DVINESTALK_TRACE=ON > /dev/null
  cmake --build "$root/build-check" -j "$jobs" \
    --target example_quickstart vinestalk_cli vinestalk_trace
  local dir
  dir="$(mktemp -d /tmp/vs_audit.XXXXXX)"
  # A traced quickstart must attribute every cost event to an operation
  # and sit inside the Theorem 4.9/5.2 slack (exit 2 past it).
  VS_TRACE="$dir/quickstart.vst" \
    "$root/build-check/examples/example_quickstart" > /dev/null
  "$root/build-check/tools/vinestalk_trace" audit "$dir/quickstart.vst" \
    --side 27 --base 3 > "$dir/quickstart.audit"
  grep -q "attributed    100.000%" "$dir/quickstart.audit" || {
    echo "FAIL: quickstart audit not fully attributed" >&2
    cat "$dir/quickstart.audit" >&2; exit 1; }
  grep -q "conservation:   OK" "$dir/quickstart.audit" || {
    echo "FAIL: quickstart audit conservation violated" >&2
    cat "$dir/quickstart.audit" >&2; exit 1; }
  grep -q "all operations within slack" "$dir/quickstart.audit" || {
    echo "FAIL: quickstart audit outside slack" >&2
    cat "$dir/quickstart.audit" >&2; exit 1; }
  # A traced chaos-plan run must bill its stabilizer traffic to heartbeat
  # and repair operations — nothing may leak into background.
  cat > "$dir/chaos.plan" <<'EOF'
faultplan v1
seed 77
crash 40 at 1000000
crash 13 at 2000000
loss from 1500000 until 2500000 rate 0.05
recovery base 1000000 per-fault 200000
end
EOF
  printf 'world 9 3\ntrace on\nevader 4 4\nfault %s\nwalk 0 20 42\ncheck 0\ntrace dump %s\naudit %s\nquit\n' \
    "$dir/chaos.plan" "$dir/chaos.vst" "$dir/chaos.vst" |
    "$root/build-check/tools/vinestalk_cli" > "$dir/chaos.audit"
  grep -q "attributed    100.000%" "$dir/chaos.audit" || {
    echo "FAIL: chaos audit not fully attributed" >&2
    cat "$dir/chaos.audit" >&2; exit 1; }
  grep -q "background    0$" "$dir/chaos.audit" || {
    echo "FAIL: chaos audit leaked cost into background ops" >&2
    cat "$dir/chaos.audit" >&2; exit 1; }
  grep -q "^  hb " "$dir/chaos.audit" || {
    echo "FAIL: chaos audit shows no heartbeat operations" >&2
    cat "$dir/chaos.audit" >&2; exit 1; }
  grep -q "^  repair " "$dir/chaos.audit" || {
    echo "FAIL: chaos audit shows no repair operations" >&2
    cat "$dir/chaos.audit" >&2; exit 1; }
  rm -rf "$dir"
  echo "Audit stage clean (100% attributed, hb/repair billed, in slack)."
}

run_shard() {
  echo "== stage 7: region-sharded PDES byte-identity =="
  cmake -B "$root/build-check" -S "$root" -DVINESTALK_TRACE=ON > /dev/null
  cmake --build "$root/build-check" -j "$jobs" \
    --target example_quickstart vinestalk_trace
  local dir
  dir="$(mktemp -d /tmp/vs_shard.XXXXXX)"
  # Traced pass (per-run trace files, compared raw) and an untraced pass
  # (stdout compared raw — the traced run prints its own trace path, which
  # legitimately differs per run).
  VS_TRACE="$dir/serial.vst" \
    "$root/build-check/examples/example_quickstart" > /dev/null
  "$root/build-check/examples/example_quickstart" > "$dir/serial.out"
  for n in 2 4 8; do
    VS_TRACE="$dir/shard$n.vst" VS_SHARDS="$n" \
      "$root/build-check/examples/example_quickstart" > /dev/null
    cmp "$dir/serial.vst" "$dir/shard$n.vst" || {
      echo "FAIL: trace differs from serial at VS_SHARDS=$n" >&2; exit 1; }
    VS_SHARDS="$n" \
      "$root/build-check/examples/example_quickstart" > "$dir/shard$n.out"
    diff "$dir/serial.out" "$dir/shard$n.out" || {
      echo "FAIL: stdout differs from serial at VS_SHARDS=$n" >&2; exit 1; }
  done
  # The shared trace must also still replay clean against the spec.
  "$root/build-check/tools/vinestalk_trace" check "$dir/serial.vst"
  rm -rf "$dir"
  echo "Shard stage clean (traces and stdout byte-identical at 2/4/8 shards)."
}

run_telemetry() {
  echo "== stage 8: time-series telemetry end-to-end =="
  cmake -B "$root/build-check" -S "$root" -DVINESTALK_TRACE=ON > /dev/null
  cmake --build "$root/build-check" -j "$jobs" \
    --target example_quickstart vinestalk_cli vinestalk_trace vinestalk_top
  local dir
  dir="$(mktemp -d /tmp/vs_telemetry.XXXXXX)"
  # The VSTELEM1 stream must be byte-identical serial vs sharded — the
  # sampler's boundary-hook cut is part of the determinism contract.
  VS_TELEMETRY="$dir/serial.vstelem" \
    "$root/build-check/examples/example_quickstart" > /dev/null
  for n in 2 4 8; do
    VS_TELEMETRY="$dir/shard$n.vstelem" VS_SHARDS="$n" \
      "$root/build-check/examples/example_quickstart" > /dev/null
    cmp "$dir/serial.vstelem" "$dir/shard$n.vstelem" || {
      echo "FAIL: telemetry differs from serial at VS_SHARDS=$n" >&2
      exit 1; }
  done
  # Both viewers must read the finished stream.
  "$root/build-check/tools/vinestalk_trace" telemetry "$dir/serial.vstelem" \
    > /dev/null
  "$root/build-check/tools/vinestalk_top" "$dir/serial.vstelem" --once \
    > /dev/null
  # A telemetered chaos-plan run must show its stabilizer traffic —
  # heartbeat and repair ledger series — in the telemetry summary.
  cat > "$dir/chaos.plan" <<'EOF'
faultplan v1
seed 77
crash 40 at 1000000
crash 13 at 2000000
loss from 1500000 until 2500000 rate 0.05
recovery base 1000000 per-fault 200000
end
EOF
  printf 'world 9 3\ntelemetry %s 10000\nevader 4 4\nfault %s\nwalk 0 20 42\ncheck 0\ntelemetry off\nquit\n' \
    "$dir/chaos.vstelem" "$dir/chaos.plan" |
    "$root/build-check/tools/vinestalk_cli" > /dev/null
  "$root/build-check/tools/vinestalk_trace" telemetry "$dir/chaos.vstelem" \
    > "$dir/chaos.summary"
  grep -Eq "ledger_hb_msgs: [1-9]" "$dir/chaos.summary" || {
    echo "FAIL: chaos telemetry shows no heartbeat traffic" >&2
    cat "$dir/chaos.summary" >&2; exit 1; }
  grep -Eq "ledger_repair_msgs: [1-9]" "$dir/chaos.summary" || {
    echo "FAIL: chaos telemetry shows no repair traffic" >&2
    cat "$dir/chaos.summary" >&2; exit 1; }
  # The Prometheus snapshot must parse as text exposition format.
  VS_TELEMETRY="$dir/prom.vstelem" VS_PROMETHEUS="$dir/prom.txt" \
    "$root/build-check/examples/example_quickstart" > /dev/null
  python3 - "$dir/prom.txt" <<'EOF'
import re, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "empty Prometheus snapshot"
metric = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?$')
names = set()
for ln in lines:
    if not ln or ln.startswith("#"):
        continue
    assert metric.match(ln), f"bad exposition line: {ln!r}"
    names.add(ln.split("{")[0].split(" ")[0])
assert any(n.startswith("vinestalk_telemetry_") for n in names), names
assert any(n.endswith("_bucket") for n in names), "no histogram series"
EOF
  rm -rf "$dir"
  echo "Telemetry stage clean (stream shard-identical, hb/repair visible," \
       "Prometheus valid)."
}

run_perf() {
  echo "== stage 9: CPU profiler + perf-trajectory gate =="
  cmake -B "$root/build-check" -S "$root" -DVINESTALK_TRACE=ON > /dev/null
  cmake --build "$root/build-check" -j "$jobs" \
    --target example_quickstart vinestalk_trace vinestalk_top vinestalk_bench
  local dir
  dir="$(mktemp -d /tmp/vs_perf.XXXXXX)"
  # A profiled quickstart must drop a VSPROF1 sidecar (plus its JSON twin)
  # that folds into a well-formed flamegraph: `domain[;domain] <ns>` lines.
  VS_PROFILE="$dir/q.vsprof" \
    "$root/build-check/examples/example_quickstart" > /dev/null
  [ -s "$dir/q.vsprof" ] || { echo "FAIL: no profile sidecar" >&2; exit 1; }
  [ -s "$dir/q.vsprof.json" ] || {
    echo "FAIL: no profile JSON twin" >&2; exit 1; }
  "$root/build-check/tools/vinestalk_trace" flame "$dir/q.vsprof" \
    > "$dir/q.folded"
  grep -Eq '^[a-z_]+(;[a-z_]+)* [0-9]+$' "$dir/q.folded" || {
    echo "FAIL: flamegraph fold is malformed" >&2
    cat "$dir/q.folded" >&2; exit 1; }
  # The profiler must never touch a deterministic artifact: stdout, the
  # VSTRACE1 trace, and the VSTELEM1 stream stay byte-identical with
  # profiling on vs off at every shard count. (Stdout is compared from
  # untraced runs — a traced run prints its own trace path, which
  # legitimately differs per run.)
  "$root/build-check/examples/example_quickstart" > "$dir/base.out"
  VS_TRACE="$dir/base.vst" VS_TELEMETRY="$dir/base.vstelem" \
    "$root/build-check/examples/example_quickstart" > /dev/null
  for n in 1 2 4 8; do
    VS_PROFILE="$dir/p$n.vsprof" VS_SHARDS="$n" \
      "$root/build-check/examples/example_quickstart" > "$dir/p$n.out"
    diff "$dir/base.out" "$dir/p$n.out" || {
      echo "FAIL: profiling changed stdout at VS_SHARDS=$n" >&2; exit 1; }
    VS_PROFILE="$dir/pt$n.vsprof" VS_SHARDS="$n" \
      VS_TRACE="$dir/p$n.vst" VS_TELEMETRY="$dir/p$n.vstelem" \
      "$root/build-check/examples/example_quickstart" > /dev/null
    cmp "$dir/base.vst" "$dir/p$n.vst" || {
      echo "FAIL: profiling changed the trace at VS_SHARDS=$n" >&2; exit 1; }
    cmp "$dir/base.vstelem" "$dir/p$n.vstelem" || {
      echo "FAIL: profiling changed telemetry at VS_SHARDS=$n" >&2; exit 1; }
  done
  # The trajectory gate must append a machine-stamped history row and pass
  # against the committed baseline (a foreign machine fingerprint makes the
  # gate advisory, which still exits 0 — that is the intended behavior).
  # (cd: the bench drops its BENCH_serve.json artifact in the CWD.)
  (cd "$dir" && "$root/build-check/tools/vinestalk_bench" --quick \
    --history="$dir/history.jsonl" \
    --baseline="$root/docs/perf/BENCH_baseline.json" --check)
  grep -q '"cpu_model"' "$dir/history.jsonl" || {
    echo "FAIL: history row carries no machine stamp" >&2; exit 1; }
  grep -q '"serve_updates_per_sec"' "$dir/history.jsonl" || {
    echo "FAIL: history row carries no daemon serving metrics" >&2
    exit 1; }
  grep -q '"serve_find_p99_us"' "$dir/BENCH_serve.json" || {
    echo "FAIL: bench wrote no BENCH_serve.json daemon artifact" >&2
    exit 1; }
  rm -rf "$dir"
  echo "Perf stage clean (sidecar folds, artifacts profile-invariant," \
       "gate passed)."
}

run_noprof() {
  echo "== stage 10: profiling compiled out (-DVINESTALK_PROFILE=OFF) =="
  cmake -B "$root/build-noprof" -S "$root" -DVINESTALK_PROFILE=OFF \
    > /dev/null
  cmake --build "$root/build-noprof" -j "$jobs" \
    --target test_profile example_quickstart
  # Every probe must be optional dead code: the enabled-path tests skip
  # themselves, the disabled pin and the renderers still run.
  "$root/build-noprof/tests/test_profile"
  # VS_PROFILE on a compiled-out binary must be ignored, not an error.
  VS_PROFILE=/tmp/vs_noprof_ignored.vsprof \
    "$root/build-noprof/examples/example_quickstart" > /dev/null
  rm -f /tmp/vs_noprof_ignored.vsprof /tmp/vs_noprof_ignored.vsprof.json
  echo "No-profile stage clean (probes are dead code, VS_PROFILE ignored)."
}

run_serve() {
  echo "== stage 11: streaming ingest daemon end-to-end =="
  cmake -B "$root/build-check" -S "$root" -DVINESTALK_TRACE=ON > /dev/null
  cmake --build "$root/build-check" -j "$jobs" \
    --target vinestalk_served vinestalk_top
  local dir
  dir="$(mktemp -d /tmp/vs_serve.XXXXXX)"
  cat > "$dir/chaos.plan" <<'EOF'
# check.sh serve chaos: a loss window and a jitter window across the
# load burst — retransmission keeps the structure consistent, so the
# monitored run must stay incident-free.
faultplan v1
seed 77
loss from 2000 until 20000 rate 0.05
jitter from 5000 until 25000 rate 0.2 advance 500
recovery base 1000000 per-fault 200000
end
EOF
  # A 2×-capacity load burst under chaos: the ladder must reach tier 3,
  # the conservation identity must hold exactly, and the watchdog must
  # see zero violations — graceful degradation, not collapse.
  "$root/build-check/tools/vinestalk_served" \
    --side 27 --base 3 --objects 4 --queues 4 --queue-capacity 64 \
    --load 32 --overdrive 2 --seed 42 --find-every 8 --monitor \
    --fault-plan "$dir/chaos.plan" --incident-dir "$dir" \
    --telemetry "$dir/serve.vstelem" --prometheus "$dir/prom.txt" \
    > "$dir/load.out"
  grep -q "max tier 3" "$dir/load.out" || {
    echo "FAIL: overload run never reached tier 3" >&2
    cat "$dir/load.out" >&2; exit 1; }
  grep -q "conservation OK" "$dir/load.out" || {
    echo "FAIL: ingest conservation identity violated" >&2
    cat "$dir/load.out" >&2; exit 1; }
  grep -q "watchdog: 0 violation(s)" "$dir/load.out" || {
    echo "FAIL: overload run tripped the watchdog" >&2
    cat "$dir/load.out" >&2; exit 1; }
  if ls "$dir"/incident_served_*.vsi > /dev/null 2>&1; then
    echo "FAIL: overload run captured an incident bundle" >&2; exit 1
  fi
  # The queue/drop series must surface in the Prometheus snapshot and the
  # dashboard must render the ingest panel from the finished stream.
  grep -q "^vinestalk_telemetry_ingest_ingested " "$dir/prom.txt" || {
    echo "FAIL: no ingest series in the Prometheus snapshot" >&2
    cat "$dir/prom.txt" >&2; exit 1; }
  grep -q "^vinestalk_telemetry_ingest_dropped " "$dir/prom.txt" || {
    echo "FAIL: no drop series in the Prometheus snapshot" >&2; exit 1; }
  grep -q "^vinestalk_telemetry_ingest_queue_depth_peak " "$dir/prom.txt" || {
    echo "FAIL: no queue-depth series in the Prometheus snapshot" >&2
    exit 1; }
  "$root/build-check/tools/vinestalk_top" "$dir/serve.vstelem" --once \
    > "$dir/top.out"
  grep -q "ingest:" "$dir/top.out" || {
    echo "FAIL: vinestalk_top renders no ingest panel" >&2
    cat "$dir/top.out" >&2; exit 1; }
  # Determinism: a captured live session must replay to a byte-identical
  # world trace at 1, 2 and 4 shards (fault plans stay off here — channel
  # faults are orthogonal to the capture/replay contract).
  "$root/build-check/tools/vinestalk_served" \
    --side 27 --base 3 --objects 4 --queues 4 --queue-capacity 64 \
    --load 24 --overdrive 2 --seed 42 --find-every 8 \
    --capture "$dir/session.vsingest" --trace "$dir/live.vst" > /dev/null
  for n in 1 2 4; do
    "$root/build-check/tools/vinestalk_served" \
      --side 27 --base 3 --objects 4 --queues 4 --queue-capacity 64 \
      --shards "$n" --replay "$dir/session.vsingest" \
      --trace "$dir/replay$n.vst" > /dev/null
    cmp "$dir/live.vst" "$dir/replay$n.vst" || {
      echo "FAIL: replay trace differs from live at --shards $n" >&2
      exit 1; }
  done
  rm -rf "$dir"
  echo "Serve stage clean (overload incident-free, identity exact," \
       "capture replays byte-identically at 1/2/4 shards)."
}

run_slo() {
  echo "== stage 12: request-level SLO observability =="
  cmake -B "$root/build-check" -S "$root" -DVINESTALK_TRACE=ON > /dev/null
  cmake --build "$root/build-check" -j "$jobs" \
    --target vinestalk_served vinestalk_trace vinestalk_top
  local dir
  dir="$(mktemp -d /tmp/vs_slo.XXXXXX)"
  cat > "$dir/loose.slo" <<'EOF'
slo v1
objective find p99 <= 500000000ns
availability >= 99.900
window short 300000000us long 3600000000us
burn fast 14.40 slow 6.00
clock virtual
end
EOF
  cat > "$dir/tight.slo" <<'EOF'
slo v1
objective find p99 <= 1ns
window short 300000000us long 3600000000us
burn fast 1.00 slow 1.00
clock virtual
end
EOF
  local args=(--side 27 --base 3 --objects 4 --queues 4 --queue-capacity 64
              --load 24 --overdrive 2 --seed 42 --find-every 8)
  # Quarantine doctrine: arming an SLO spec must not move a single byte in
  # any deterministic artifact — stdout, VSTRACE1, VSTELEM1, VSINGEST1 —
  # at any shard count. All SLO chatter rides stderr and the sidecar.
  for n in 1 2 4; do
    # The stdout banner names the shard count, so the unarmed baseline is
    # taken per shard; the binary artifacts are shard-invariant anyway
    # (stage 7/11 territory) — here only armed-vs-unarmed is on trial.
    "$root/build-check/tools/vinestalk_served" "${args[@]}" --shards "$n" \
      --trace "$dir/off$n.vst" --telemetry "$dir/off$n.vstelem" \
      --capture "$dir/off$n.vsingest" > "$dir/off$n.out" 2> /dev/null
    "$root/build-check/tools/vinestalk_served" "${args[@]}" --shards "$n" \
      --trace "$dir/on$n.vst" --telemetry "$dir/on$n.vstelem" \
      --capture "$dir/on$n.vsingest" \
      --slo "$dir/loose.slo" --slo-out "$dir/on$n.vsslo" \
      --prometheus "$dir/on$n.prom" > "$dir/on$n.out" 2> /dev/null
    diff "$dir/off$n.out" "$dir/on$n.out" || {
      echo "FAIL: SLO monitoring changed stdout at --shards $n" >&2
      exit 1; }
    cmp "$dir/off$n.vst" "$dir/on$n.vst" || {
      echo "FAIL: SLO monitoring changed the trace at --shards $n" >&2
      exit 1; }
    cmp "$dir/off$n.vstelem" "$dir/on$n.vstelem" || {
      echo "FAIL: SLO monitoring changed telemetry at --shards $n" >&2
      exit 1; }
    cmp "$dir/off$n.vsingest" "$dir/on$n.vsingest" || {
      echo "FAIL: SLO monitoring changed the capture at --shards $n" >&2
      exit 1; }
  done
  # The sidecar + JSON twin carry the report; both renderers must read it,
  # and the top panel must join it with the telemetry stream. The serve
  # block (wire errors, retry-after) and the SLO gauges must surface in
  # the Prometheus snapshot.
  [ -s "$dir/on1.vsslo" ] || { echo "FAIL: no SLO sidecar" >&2; exit 1; }
  [ -s "$dir/on1.vsslo.json" ] || {
    echo "FAIL: no SLO JSON twin" >&2; exit 1; }
  "$root/build-check/tools/vinestalk_trace" slo "$dir/on1.vsslo" \
    > "$dir/slo.summary"
  grep -q "VSSLO1 report:" "$dir/slo.summary" || {
    echo "FAIL: vinestalk_trace cannot summarize the sidecar" >&2
    cat "$dir/slo.summary" >&2; exit 1; }
  "$root/build-check/tools/vinestalk_trace" slo "$dir/on1.vsslo" --csv \
    > "$dir/slo.csv"
  head -1 "$dir/slo.csv" | grep -q "^series,le_ns,count$" || {
    echo "FAIL: SLO CSV header malformed" >&2; exit 1; }
  "$root/build-check/tools/vinestalk_top" "$dir/on1.vstelem" --once \
    --slo "$dir/on1.vsslo" > "$dir/top.out"
  grep -q "slo (virtual windows" "$dir/top.out" || {
    echo "FAIL: vinestalk_top renders no SLO panel" >&2
    cat "$dir/top.out" >&2; exit 1; }
  grep -q "wire errors" "$dir/top.out" || {
    echo "FAIL: vinestalk_top ingest line shows no wire-error tally" >&2
    cat "$dir/top.out" >&2; exit 1; }
  grep -q "^vinestalk_slo_requests_total" "$dir/on1.prom" || {
    echo "FAIL: no SLO series in the Prometheus snapshot" >&2
    cat "$dir/on1.prom" >&2; exit 1; }
  grep -q "^vinestalk_telemetry_ingest_wire_errors " "$dir/on1.prom" || {
    echo "FAIL: no wire-error series in the Prometheus snapshot" >&2
    exit 1; }
  grep -q "^vinestalk_telemetry_ingest_retry_after_us " "$dir/on1.prom" || {
    echo "FAIL: no retry-after series in the Prometheus snapshot" >&2
    exit 1; }
  # A tight find-p99 objective under 2× overdrive chaos must burn through
  # its budget and fire a replayable incident mid-run — and the burn alert
  # must not disturb the run's own health checks.
  cat > "$dir/chaos.plan" <<'EOF'
faultplan v1
seed 77
loss from 2000 until 20000 rate 0.05
jitter from 5000 until 25000 rate 0.2 advance 500
recovery base 1000000 per-fault 200000
end
EOF
  "$root/build-check/tools/vinestalk_served" "${args[@]}" --monitor \
    --fault-plan "$dir/chaos.plan" --incident-dir "$dir" \
    --slo "$dir/tight.slo" > "$dir/burn.out" 2> "$dir/burn.err"
  grep -q "SLO BURN" "$dir/burn.err" || {
    echo "FAIL: tight objective under overdrive never fired" >&2
    cat "$dir/burn.err" >&2; exit 1; }
  grep -q "conservation OK" "$dir/burn.out" || {
    echo "FAIL: SLO burn run broke the conservation identity" >&2
    cat "$dir/burn.out" >&2; exit 1; }
  [ -f "$dir/incident_slo_0.vsi" ] || {
    echo "FAIL: no SLO incident bundle in $dir" >&2; exit 1; }
  rm -f "$dir"/incident_slo_*.vsi
  # Exemplar → OpId → trace: fire the same objective on a captured,
  # fault-free run; the incident's slowest find exemplar must name an
  # OpId whose span events exist in the live trace, and a 2-shard replay
  # of the capture must reproduce that trace (and those spans) exactly.
  "$root/build-check/tools/vinestalk_served" "${args[@]}" \
    --incident-dir "$dir" --slo "$dir/tight.slo" \
    --trace "$dir/live.vst" --capture "$dir/session.vsingest" \
    > /dev/null 2> /dev/null
  [ -f "$dir/incident_slo_0.vsi" ] || {
    echo "FAIL: no SLO incident bundle from the captured run" >&2; exit 1; }
  "$root/build-check/tools/vinestalk_trace" incident \
    "$dir/incident_slo_0.vsi" > "$dir/incident.out"
  grep -q "slo exemplars" "$dir/incident.out" || {
    echo "FAIL: incident bundle carries no SLO exemplars" >&2
    cat "$dir/incident.out" >&2; exit 1; }
  local find_id
  find_id="$(grep -oE 'find#[0-9]+' "$dir/incident.out" | head -1 |
             cut -d# -f2 || true)"
  [ -n "$find_id" ] || {
    echo "FAIL: no find exemplar OpId in the incident" >&2
    cat "$dir/incident.out" >&2; exit 1; }
  "$root/build-check/tools/vinestalk_trace" spans "$dir/live.vst" \
    "$find_id" > "$dir/spans.live"
  grep -q "not present" "$dir/spans.live" && {
    echo "FAIL: exemplar find #$find_id absent from the live trace" >&2
    cat "$dir/spans.live" >&2; exit 1; }
  "$root/build-check/tools/vinestalk_served" \
    --side 27 --base 3 --objects 4 --queues 4 --queue-capacity 64 \
    --shards 2 --replay "$dir/session.vsingest" \
    --trace "$dir/replay.vst" > /dev/null
  cmp "$dir/live.vst" "$dir/replay.vst" || {
    echo "FAIL: replay trace differs from live (SLO-armed) run" >&2
    exit 1; }
  "$root/build-check/tools/vinestalk_trace" spans "$dir/replay.vst" \
    "$find_id" > "$dir/spans.replay"
  diff "$dir/spans.live" "$dir/spans.replay" || {
    echo "FAIL: exemplar spans differ between live and replay" >&2
    exit 1; }
  rm -rf "$dir"
  echo "SLO stage clean (artifacts identical armed vs not at 1/2/4" \
       "shards, burn incident fired, exemplar replayed byte-identically)."
}

case "$stage" in
  all) run_plain; run_tsan; run_notrace; run_monitor; run_chaos; run_audit
       run_shard; run_telemetry; run_perf; run_noprof; run_serve
       run_slo ;;
  --plain) run_plain ;;
  --tsan) run_tsan ;;
  --no-trace) run_notrace ;;
  --monitor) run_monitor ;;
  --chaos) run_chaos ;;
  --audit) run_audit ;;
  --shard|--shards) run_shard ;;
  --telemetry) run_telemetry ;;
  --perf) run_perf ;;
  --no-profile) run_noprof ;;
  --serve) run_serve ;;
  --slo) run_slo ;;
  *) echo "usage: tools/check.sh [--plain|--tsan|--no-trace|--monitor|--chaos|--audit|--shard|--telemetry|--perf|--no-profile|--serve|--slo]" >&2
     exit 2 ;;
esac
echo "check.sh: all stages passed"
