#!/usr/bin/env bash
# Pre-merge check: a plain build + full test suite, then a ThreadSanitizer
# build exercising the concurrency surface (the trial pool and the atomics
# in the logging/counter paths) with more workers than trials need.
#
#   tools/check.sh            # both stages
#   tools/check.sh --plain    # stage 1 only
#   tools/check.sh --tsan     # stage 2 only
#
# Build trees: build-check/ (plain) and build-tsan/ (TSan); both are
# separate from the default build/ so this never dirties a dev tree.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
stage="${1:-all}"

run_plain() {
  echo "== stage 1: plain build + ctest =="
  cmake -B "$root/build-check" -S "$root" > /dev/null
  cmake --build "$root/build-check" -j "$jobs"
  ctest --test-dir "$root/build-check" --output-on-failure -j "$jobs"
}

run_tsan() {
  echo "== stage 2: ThreadSanitizer =="
  cmake -B "$root/build-tsan" -S "$root" -DVINESTALK_SANITIZE=thread > /dev/null
  cmake --build "$root/build-tsan" -j "$jobs" \
    --target test_concurrent test_runner bench_e2_move_scaling
  "$root/build-tsan/tests/test_concurrent"
  "$root/build-tsan/tests/test_runner"
  "$root/build-tsan/bench/bench_e2_move_scaling" --jobs 4 > /dev/null
  echo "TSan stage clean (zero reports would have aborted the run)."
}

case "$stage" in
  all) run_plain; run_tsan ;;
  --plain) run_plain ;;
  --tsan) run_tsan ;;
  *) echo "usage: tools/check.sh [--plain|--tsan]" >&2; exit 2 ;;
esac
echo "check.sh: all stages passed"
