// vinestalk_cli — scriptable driver for a VINESTALK world.
//
// Reads commands from stdin (one per line; '#' starts a comment) and
// prints results to stdout, making interactive exploration and shell-based
// smoke tests possible without writing C++:
//
//   world <side> <base>        build a grid world (must come first)
//   evader <x> <y>             place a new evader (prints its target id)
//   move <target> <x> <y>      relocate an evader (neighbouring region)
//   walk <target> <steps> <seed>  random-walk an evader
//   find <x> <y> <target>      run a find and print the result, including
//                              the find's logical operation id and its
//                              measured work against the Theorem 5.2 bound
//                              at the issue-time distance. With
//                              --deadline-us N [--attempts N]
//                              [--backoff-us N] the find runs the serve
//                              daemon's deadline-bounded RPC path instead:
//                              each attempt gets N us of virtual time, a
//                              miss backs off exponentially and retries,
//                              and a fully missed find prints a
//                              retry-after hint
//   fail <x> <y>               fail the VSA at a region (enables failures)
//   fault <plan-file>          arm a fault::FaultPlan against this world
//                              (strict parse; regions validated against
//                              the grid). Plans with discrete faults need
//                              an evader first; their events fire during
//                              the next walk, which switches to timed
//                              stepping with a periodic heartbeat
//                              stabilizer and a post-walk settle+drain.
//                              The VS_FAULTS env var names a plan file to
//                              arm automatically (windows-only plans at
//                              world creation, others at first evader).
//   tick <target>              one stabilizer repair pass
//   show <target>              render the tracking structure
//   check <target>             consistency verdict for the structure
//   sweep <trials> <steps> <seed>  run <trials> independent walk worlds
//                              (same side/base) on the --jobs thread pool;
//                              output is identical for every --jobs value
//   monitor <target> every|cadence [us]
//                              attach the live invariant watchdog to an
//                              evader; violations print immediately and
//                              (with --incident-dir) write incident
//                              bundles for vinestalk_trace
//   corrupt <target> <x> <y>   overwrite the level-0 tracker at a region
//                              with a rogue grow front (c=self, p=⊥) —
//                              fault injection for watchdog demos; two
//                              corrupts make a Lemma 4.1 violation
//   audit <trace-file>         alias for `vinestalk_trace audit` judged
//                              against this world's shape: rebuild the
//                              per-operation cost ledger from the file and
//                              check the Theorem 4.9/5.2 bounds
//   stats                      work counters so far
//   trace on|off               toggle structured tracing for this world
//                              (enable before placing evaders if the trace
//                              is meant to pass `vinestalk_trace check` —
//                              mid-run traces start mid-protocol)
//   trace dump <path>          write recorded events as a VSTRACE1 file
//                              (read it back with vinestalk_trace)
//   telemetry <path> [us]      stream VSTELEM1 time-series samples of this
//                              world to <path> on a virtual-time cadence
//                              (default 10000us); watch live with
//                              `vinestalk_top <path>`, summarize with
//                              `vinestalk_trace telemetry <path>`
//   telemetry off              finish the stream (writes the trailer)
//   slo <spec-file>            arm request-level SLO monitoring (`slo v1`
//                              spec) on this session: deadline-mode finds
//                              get latency spans, and the spec text is
//                              embedded in any incident bundles the
//                              watchdog writes (ScenarioSpec.slo_spec)
//   slo report                 print the monitor's per-objective burn
//                              windows and find percentiles
//   quit
//
// The binary takes `--jobs N` (default: hardware concurrency) for the
// sweep command's trial pool. Per-trial randomness derives from the trial
// index (runner::trial_seed), never from thread identity, so the merged
// table is bit-identical at any job count. `--shards N` shards every world
// into N lanes (TrackingNetwork::set_shards) — output is likewise
// identical for every value.
//
// Example:
//   printf 'world 27 3\nevader 20 6\nfind 0 26 0\nstats\n' | vinestalk_cli

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "ext/stabilizer.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "hier/grid_hierarchy.hpp"
#include "obs/ledger/auditor.hpp"
#include "obs/monitor/incident.hpp"
#include "obs/monitor/watchdog.hpp"
#include "obs/op.hpp"
#include "obs/slo/slo.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "obs/trace_io.hpp"
#include "spec/bounds.hpp"
#include "runner/trial_pool.hpp"
#include "serve/server.hpp"
#include "spec/consistency.hpp"
#include "spec/inspect.hpp"
#include "stats/table.hpp"
#include "tracking/network.hpp"
#include "vsa/evader.hpp"

namespace {

using namespace vs;

class Cli {
 public:
  Cli(int jobs, int shards, std::string incident_dir)
      : jobs_(jobs), shards_(shards), incident_dir_(std::move(incident_dir)) {}

  int run(std::istream& in, std::ostream& out) {
    std::string line;
    while (std::getline(in, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ss(line);
      std::string cmd;
      if (!(ss >> cmd)) continue;
      try {
        if (!dispatch(cmd, ss, out)) return 0;  // quit
      } catch (const Error& e) {
        out << "error: " << e.what() << "\n";
      }
    }
    return 0;
  }

 private:
  bool dispatch(const std::string& cmd, std::istringstream& ss,
                std::ostream& out) {
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "world") {
      int side = 0, base = 0;
      ss >> side >> base;
      side_ = side;
      base_ = base;
      watchdog_.reset();  // watches the old world; drop before replacing it
      telemetry_.reset();  // ditto — finishes its stream before the world dies
      injector_.reset();
      stabilizers_.clear();
      hierarchy_ = std::make_unique<hier::GridHierarchy>(side, side, base);
      tracking::NetworkConfig cfg;
      cfg.model_vsa_failures = true;
      cfg.t_restart = sim::Duration::millis(5);
      net_ = std::make_unique<tracking::TrackingNetwork>(*hierarchy_, cfg);
      cli_ledger_.reset();  // the old world's; the new one attaches fresh
      // CLI worlds model VSA failures, so sharded runs take the serial
      // path over partitioned queues — same output, exercised storage.
      if (shards_ > 1) net_->set_shards(shards_);
      // Begin capturing the session as a replayable scenario; commands
      // outside the canonical world→evader→walk→corrupt shape clear the
      // replayable flag below.
      scenario_ = obs::ScenarioSpec{};
      scenario_.side = side;
      scenario_.base = base;
      scenario_.model_vsa_failures = true;
      scenario_.t_restart_us = cfg.t_restart.count();
      out << "world " << side << "x" << side << " base " << base << ", MAX "
          << hierarchy_->max_level() << ", " << hierarchy_->num_clusters()
          << " clusters\n";
      // VS_FAULTS: arm the named plan automatically. Windows-only plans
      // arm now (their now()-predicates then cover placement, like a
      // replay's); plans with discrete events wait for the first evader —
      // the placement drain would fast-forward through their timers.
      if (const char* f = std::getenv("VS_FAULTS"); f != nullptr && *f != '\0') {
        const fault::FaultPlan plan = fault::FaultPlan::parse_file(f);
        if (plan.crashes.empty() && plan.outages.empty() &&
            plan.depopulations.empty()) {
          arm_fault_plan(plan, out);
        } else {
          pending_faults_ = plan;
          out << "fault plan " << f << " staged (arms at first evader)\n";
        }
      }
      return true;
    }
    VS_REQUIRE(net_ != nullptr, "run `world <side> <base>` first");
    if (cmd == "evader") {
      const RegionId start = region(ss);
      const TargetId t = net_->add_evader(start);
      net_->run_to_quiescence();
      if (scenario_.start_region < 0) {
        scenario_.start_region = start.value();
      } else {
        scenario_.replayable_flag = false;  // >1 evader: not canonical
      }
      out << "evader " << t.value() << " placed\n";
      if (pending_faults_.has_value()) {
        const fault::FaultPlan plan = *pending_faults_;
        pending_faults_.reset();
        arm_fault_plan(plan, out);
      }
    } else if (cmd == "move") {
      const TargetId t = target(ss);
      scenario_.replayable_flag = false;  // manual move: not canonical
      net_->move_evader(t, region(ss));
      net_->run_to_quiescence();
      out << "evader " << t.value() << " now at "
          << hierarchy_->tiling().describe(net_->evaders().region_of(t))
          << "\n";
    } else if (cmd == "walk") {
      const TargetId t = target(ss);
      int steps = 0;
      std::uint64_t seed = 0;
      ss >> steps >> seed;
      if (scenario_.steps == 0 && scenario_.corruptions.empty()) {
        scenario_.steps = steps;  // first walk: the canonical one
        scenario_.seed = seed;
      } else {
        scenario_.replayable_flag = false;
      }
      vsa::RandomWalkMover mover(hierarchy_->tiling(), seed);
      RegionId cur = net_->evaders().region_of(t);
      if (injector_) {
        // Fault-mode walk: the plan's events are anchored to absolute
        // virtual times, so step in timed slices instead of draining
        // (run_to_quiescence would fast-forward through them), run a
        // periodic heartbeat stabilizer, and settle + drain at the end —
        // the exact shape run_scenario replays.
        scenario_.step_every_us = kFaultStepUs;
        scenario_.settle_us = kFaultSettleUs;
        scenario_.heartbeat_period_us = kFaultHeartbeatUs;
        if (watchdog_) watchdog_->set_scenario(scenario_);
        ext::Stabilizer stab(*net_, t,
                             sim::Duration::micros(kFaultHeartbeatUs));
        stab.start();
        for (int i = 0; i < steps; ++i) {
          cur = mover.next(cur);
          net_->move_evader(t, cur);
          net_->run_for(sim::Duration::micros(kFaultStepUs));
        }
        net_->run_for(sim::Duration::micros(kFaultSettleUs));
        stab.stop();
        net_->run_to_quiescence();
        // Judge the settled structure now (this also evaluates a pending
        // recovery deadline on the healed state, like a replay's
        // post-drain check).
        if (watchdog_) watchdog_->check_now();
        out << "walked " << steps << " steps to "
            << hierarchy_->tiling().describe(cur) << " under the fault plan ("
            << injector_->faults_injected() << "/"
            << injector_->planned_faults() << " discrete fault(s) fired, "
            << stab.repairs() << " repair action(s))\n";
        if (watchdog_ && injector_->recovery_deadline().has_value()) {
          out << "recovery deadline "
              << (watchdog_->recovery_deadline_met()
                      ? "met"
                      : (watchdog_->recovery_deadline_pending() ? "pending"
                                                                : "MISSED"))
              << "\n";
        }
      } else {
        if (watchdog_) watchdog_->set_scenario(scenario_);
        for (int i = 0; i < steps; ++i) {
          cur = mover.next(cur);
          net_->move_evader(t, cur);
          net_->run_to_quiescence();
        }
        out << "walked " << steps << " steps to "
            << hierarchy_->tiling().describe(cur) << "\n";
      }
    } else if (cmd == "find") {
      const RegionId from = region(ss);
      const TargetId t = target(ss);
      // Optional deadline mode: `find <x> <y> <t> --deadline-us N
      // [--attempts N] [--backoff-us N]` runs the daemon's exact
      // deadline/retry RPC path (serve::find_with_deadline) instead of
      // draining to quiescence.
      std::int64_t deadline_us = 0, backoff_us = 1000;
      int attempts = 4;
      std::string tok;
      while (ss >> tok) {
        if (tok == "--deadline-us") {
          VS_REQUIRE(static_cast<bool>(ss >> deadline_us) && deadline_us > 0,
                     "--deadline-us needs a count of microseconds > 0");
        } else if (tok == "--attempts") {
          VS_REQUIRE(static_cast<bool>(ss >> attempts) && attempts >= 1,
                     "--attempts needs a count >= 1");
        } else if (tok == "--backoff-us") {
          VS_REQUIRE(static_cast<bool>(ss >> backoff_us) && backoff_us > 0,
                     "--backoff-us needs a count of microseconds > 0");
        } else {
          VS_REQUIRE(false, "unknown find option " << tok);
        }
      }
      FindId f{};
      if (deadline_us > 0) {
        scenario_.replayable_flag = false;  // deadline pacing isn't captured
        const std::uint64_t t0 =
            slo_ != nullptr ? obs::SloMonitor::now_ns() : 0;
        const serve::FindOutcome o = serve::find_with_deadline(
            *net_, from, t, sim::Duration::micros(deadline_us), attempts,
            sim::Duration::micros(backoff_us));
        if (slo_ != nullptr) {
          const tracking::FindResult& fr = net_->find_result(o.id);
          slo_->close_find(t0, net_->now().count(), fr.op, fr.distance,
                           !o.done);
        }
        if (!o.done) {
          out << "find missed a " << deadline_us << "us deadline "
              << o.attempts << " time(s); retry after " << o.retry_after
              << "\n";
          return true;
        }
        out << "find met its deadline on attempt " << o.attempts << "\n";
        f = o.id;
      } else {
        f = net_->start_find(from, t);
        net_->run_to_quiescence();
      }
      const auto& r = net_->find_result(f);
      if (r.done) {
        out << "found at " << hierarchy_->tiling().describe(r.found_region)
            << " in " << r.latency() << " (" << r.work << " hop-work, "
            << r.messages << " messages)\n";
        // Judge the find against Theorem 5.2 at its issue-time distance —
        // the same work bound (plus the client delivery allowance) the
        // cost auditor applies.
        const double bound =
            spec::find_work_bound(*hierarchy_,
                                  static_cast<int>(r.distance)) +
            2.0 + 2.0 * static_cast<double>(hierarchy_->omega(0));
        const auto flags = out.flags();
        out << "  op " << obs::op_name(r.op) << " d=" << r.distance
            << ": work " << r.work << " vs Theorem 5.2 bound " << std::fixed
            << std::setprecision(3) << bound << " (ratio "
            << static_cast<double>(r.work) / bound << ")\n";
        out.flags(flags);
      } else {
        out << "find did not complete\n";
      }
    } else if (cmd == "fail") {
      const RegionId u = region(ss);
      scenario_.replayable_flag = false;  // ad-hoc failure: use fault plans
      net_->fail_vsa(u);
      out << "failed VSA at " << hierarchy_->tiling().describe(u) << "\n";
    } else if (cmd == "fault") {
      std::string path;
      ss >> path;
      VS_REQUIRE(!path.empty(), "fault needs a plan file");
      std::string rest;
      VS_REQUIRE(!(ss >> rest), "fault takes exactly one plan file");
      arm_fault_plan(fault::FaultPlan::parse_file(path), out);
    } else if (cmd == "tick") {
      const TargetId t = target(ss);
      scenario_.replayable_flag = false;  // repairs aren't captured
      auto& stab = stabilizer(t);
      const int injected = stab.tick_once();
      net_->run_to_quiescence();
      out << "stabilizer injected " << injected << " repair message(s)\n";
    } else if (cmd == "show") {
      out << spec::render_structure(net_->snapshot(target(ss)));
    } else if (cmd == "check") {
      const TargetId t = target(ss);
      const auto report = spec::check_consistent(
          net_->snapshot(t), net_->evaders().region_of(t));
      out << (report.ok() ? "consistent\n" : report.to_string());
    } else if (cmd == "sweep") {
      int trials = 0, steps = 0;
      std::uint64_t seed = 0;
      ss >> trials >> steps >> seed;
      VS_REQUIRE(trials > 0 && steps > 0, "sweep needs trials > 0, steps > 0");
      run_sweep(trials, steps, seed, out);
    } else if (cmd == "trace") {
      std::string sub;
      ss >> sub;
      if (sub == "on") {
        VS_REQUIRE(obs::kTraceCompiled,
                   "tracing compiled out (rebuild with -DVINESTALK_TRACE=ON)");
        // An explicit full-trace request outranks an attached watchdog's
        // bounded flight recorder — otherwise `trace dump` would silently
        // hold only the ring's last K events.
        if (watchdog_) watchdog_->yield_recorder();
        net_->set_tracing(true);
        out << "tracing on\n";
      } else if (sub == "off") {
        net_->set_tracing(false);
        out << "tracing off\n";
      } else if (sub == "dump") {
        std::string path;
        ss >> path;
        VS_REQUIRE(!path.empty(), "trace dump needs a path");
        obs::write_trace_file(path, net_->trace());
        out << "wrote " << net_->trace().size() << " events to " << path;
        if (net_->trace().ring_capacity() > 0) {
          out << " (flight-recorder ring: last "
              << net_->trace().ring_capacity() << " events at most)";
        }
        out << "\n";
      } else {
        out << "usage: trace on|off|dump <path>\n";
      }
    } else if (cmd == "telemetry") {
      std::string sub;
      ss >> sub;
      if (sub == "off") {
        VS_REQUIRE(telemetry_ != nullptr, "no telemetry sampler is running");
        telemetry_->finish();
        out << "telemetry off after " << telemetry_->samples_taken()
            << " sample(s)\n";
        telemetry_.reset();
      } else if (!sub.empty()) {
        VS_REQUIRE(obs::kTraceCompiled,
                   "telemetry compiled out (rebuild with -DVINESTALK_TRACE=ON)");
        VS_REQUIRE(telemetry_ == nullptr,
                   "a telemetry sampler is already running (telemetry off "
                   "first)");
        // Per-class ledger series need a live ledger; attach one if the
        // world has none (observation only — the run is unperturbed).
        if (net_->op_ledger() == nullptr) {
          cli_ledger_ = std::make_unique<obs::OpLedger>();
          cli_ledger_->set_enabled(true);
          net_->set_op_ledger(cli_ledger_.get());
        }
        obs::TelemetryConfig cfg;
        cfg.stream_path = sub;
        std::int64_t us = 0;
        if (ss >> us) {
          std::string rest;
          VS_REQUIRE(us > 0 && !(ss >> rest),
                     "cadence must be a bare count of microseconds > 0");
          cfg.cadence = sim::Duration::micros(us);
        }
        telemetry_ = std::make_unique<obs::TelemetrySampler>(*net_, cfg);
        telemetry_->enable();
        out << "telemetry streaming to " << sub << " every "
            << cfg.cadence.count() << "us\n";
      } else {
        out << "usage: telemetry <path> [cadence-us] | telemetry off\n";
      }
    } else if (cmd == "slo") {
      std::string sub;
      ss >> sub;
      if (sub == "report") {
        VS_REQUIRE(slo_ != nullptr, "no SLO monitor armed (slo <spec-file>)");
        slo_->evaluate(net_->now().count());
        const obs::SloReport rep = slo_->report();
        const auto& finds =
            rep.classes[static_cast<std::size_t>(obs::SloClass::kFind)];
        out << "slo: " << finds.requests << " find(s), " << finds.errors
            << " error(s); latency us p50="
            << finds.latency.percentile(0.50) / 1000
            << " p99=" << finds.latency.percentile(0.99) / 1000 << "\n";
        for (std::size_t i = 0; i < rep.objectives.size(); ++i) {
          const obs::SloObjectiveState& o = rep.objectives[i];
          out << "  " << o.name << ": burn short " << o.burn_short_centi
              << "c long " << o.burn_long_centi << "c, budget "
              << rep.budget_remaining_milli(i) << "m left"
              << (o.fired ? " [FIRED]" : "") << "\n";
        }
      } else if (!sub.empty()) {
        std::ifstream sin(sub);
        VS_REQUIRE(sin.good(), "cannot open SLO spec " << sub);
        const std::string text((std::istreambuf_iterator<char>(sin)),
                               std::istreambuf_iterator<char>());
        slo_ = std::make_unique<obs::SloMonitor>(obs::SloSpec::parse(text));
        // The spec rides in the scenario so any incident the watchdog
        // writes carries the objectives the run was judged against.
        scenario_.slo_spec = slo_->spec().to_string();
        if (watchdog_) watchdog_->set_scenario(scenario_);
        out << "slo armed: " << slo_->spec().objectives.size()
            << " objective(s)\n";
      } else {
        out << "usage: slo <spec-file> | slo report\n";
      }
    } else if (cmd == "monitor") {
      const TargetId t = target(ss);
      std::string mode;
      ss >> mode;
      obs::WatchdogConfig cfg;
      cfg.source = "cli";
      if (mode == "every") {
        cfg.mode = obs::WatchMode::kEveryChange;
      } else if (mode == "cadence" || mode.empty()) {
        std::int64_t us = 0;
        if (ss >> us) {
          std::string rest;
          VS_REQUIRE(us > 0 && !(ss >> rest),
                     "cadence must be a bare count of microseconds > 0");
          cfg.cadence = sim::Duration::micros(us);
        }
      } else {
        out << "usage: monitor <target> every|cadence [us]\n";
        return true;
      }
      watchdog_.reset();  // one watchdog at a time; release the old hooks
      watchdog_ = std::make_unique<obs::Watchdog>(*net_, t, cfg, scenario_);
      if (injector_) {
        if (const auto d = injector_->recovery_deadline()) {
          watchdog_->arm_recovery_deadline(*d);
        }
      }
      // Capture the stream by address: the sink outlives this dispatch
      // call (it fires from later walk/corrupt commands).
      watchdog_->set_incident_sink(
          [this, os = &out](const obs::IncidentBundle& b) {
            *os << "VIOLATION " << b.violation.predicate << " at "
                << b.violation.time_us << "us";
            if (b.violation.cluster >= 0) {
              *os << " (cluster " << b.violation.cluster << ", level "
                  << b.violation.level << ")";
            }
            *os << "\n";
            if (!incident_dir_.empty()) {
              const std::string path = incident_dir_ + "/incident_cli_" +
                                       std::to_string(incidents_written_++) +
                                       ".vsi";
              obs::write_incident_file(path, b);
              *os << "incident bundle written to " << path << "\n";
            }
          });
      out << "watchdog on target " << t.value() << " ("
          << obs::to_string(cfg.mode);
      if (cfg.mode == obs::WatchMode::kCadence) {
        out << " every " << cfg.cadence.count() << "us";
      }
      out << ")\n";
    } else if (cmd == "corrupt") {
      const TargetId t = target(ss);
      const RegionId u = region(ss);
      const ClusterId c0 = hierarchy_->cluster_of(u, 0);
      tracking::TrackerSnapshot forced;
      forced.clust = c0;
      forced.c = c0;  // rogue grow front: c≠⊥, p=⊥
      obs::ScenarioSpec::Corruption corr;
      corr.cluster = c0.value();
      corr.c = c0.value();
      scenario_.corruptions.push_back(corr);
      // Refresh the watchdog's embedded scenario first so a bundle
      // captured by this very corruption already includes it.
      if (watchdog_) watchdog_->set_scenario(scenario_);
      net_->tracker(c0).corrupt_state(t, forced);
      if (watchdog_) watchdog_->check_now();
      out << "corrupted tracker of cluster " << c0.value() << " at "
          << hierarchy_->tiling().describe(u) << " (c=self, p=bot)\n";
    } else if (cmd == "audit") {
      std::string path;
      ss >> path;
      VS_REQUIRE(!path.empty(), "audit needs a trace file");
      const auto worlds = obs::read_trace_file(path);
      const vsa::CGcastConfig& cg = net_->config().cgcast;
      const obs::BoundAuditor auditor(
          *hierarchy_,
          obs::AuditConfig{
              .slack = 2.0,
              .delta_plus_e = cg.delta + cg.e,
              .timers = tracking::TimerPolicy::paper_default(*hierarchy_, cg)});
      for (const auto& w : worlds) {
        out << "world " << w.world << ":\n";
        const obs::TraceAttribution attr = obs::attribute_trace(w);
        obs::print_audit(out, attr, auditor.audit(attr.ledger));
      }
    } else if (cmd == "stats") {
      const auto& c = net_->counters();
      out << "moves: " << c.move_messages() << " messages, " << c.move_work()
          << " hop-work; finds: " << c.find_messages() << " messages, "
          << c.find_work() << " hop-work; virtual time " << net_->now()
          << "\n";
    } else {
      out << "unknown command: " << cmd << "\n";
    }
    return true;
  }

  // Validate + arm a fault plan against the current world and fold it into
  // the captured scenario. One plan per world; discrete events need an
  // evader placed first (see the dispatch comment).
  void arm_fault_plan(const fault::FaultPlan& plan, std::ostream& out) {
    VS_REQUIRE(net_ != nullptr, "run `world <side> <base>` first");
    VS_REQUIRE(injector_ == nullptr,
               "a fault plan is already armed for this world");
    const bool windows_only = plan.crashes.empty() && plan.outages.empty() &&
                              plan.depopulations.empty();
    VS_REQUIRE(windows_only || scenario_.start_region >= 0,
               "place an evader before arming a plan with discrete faults "
               "(the placement drain would fast-forward through them)");
    injector_ = std::make_unique<fault::FaultInjector>(*net_, plan);
    injector_->arm();
    // Scenario capture: canonical only when the plan precedes the walk and
    // its channel windows cannot have covered traffic sent before arming
    // (a replay arms windows-only plans before placement).
    if (scenario_.steps != 0) scenario_.replayable_flag = false;
    const std::int64_t now_us = net_->now().count();
    for (const auto* windows :
         {&plan.loss_bursts, &plan.duplications, &plan.jitters}) {
      for (const fault::FaultPlan::Window& w : *windows) {
        if (w.from_us < now_us) scenario_.replayable_flag = false;
      }
    }
    scenario_.fault_plan = plan.to_string();
    if (watchdog_) {
      if (const auto d = injector_->recovery_deadline()) {
        watchdog_->arm_recovery_deadline(*d);
      }
      watchdog_->set_scenario(scenario_);
    }
    out << "fault plan armed: " << injector_->planned_faults()
        << " discrete fault(s), "
        << plan.loss_bursts.size() + plan.duplications.size() +
               plan.jitters.size()
        << " channel window(s)";
    if (const auto d = injector_->recovery_deadline()) {
      out << ", recovery deadline " << *d;
    }
    out << "\n";
  }

  // Run `trials` independent worlds (same side/base as the current one),
  // each walking a fresh evader from the centre with an index-derived
  // seed, on the trial pool; merge per-trial counters in index order.
  void run_sweep(int trials, int steps, std::uint64_t seed,
                 std::ostream& out) {
    const int side = side_;
    const int base = base_;
    const int shards = shards_;
    runner::TrialPool pool(runner::clamp_jobs_for_shards(jobs_, shards_));
    struct TrialRow {
      std::int64_t move_work;
      std::int64_t move_msgs;
      std::int64_t virtual_us;
    };
    const auto rows = pool.run(
        static_cast<std::size_t>(trials), [&](std::size_t trial) {
          hier::GridHierarchy h(side, side, base);
          tracking::TrackingNetwork net(h, tracking::NetworkConfig{});
          if (shards > 1) net.set_shards(shards);
          const RegionId start = h.grid().region_at(side / 2, side / 2);
          const TargetId t = net.add_evader(start);
          net.run_to_quiescence();
          vsa::RandomWalkMover mover(h.tiling(),
                                     runner::trial_seed(seed, trial));
          RegionId cur = start;
          for (int i = 0; i < steps; ++i) {
            cur = mover.next(cur);
            net.move_evader(t, cur);
            net.run_to_quiescence();
          }
          return TrialRow{net.counters().move_work(),
                          net.counters().move_messages(),
                          net.now().count()};
        });
    stats::Table table({"trial", "move_work", "move_msgs", "virtual_ms"});
    std::int64_t total_work = 0, total_msgs = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      total_work += rows[i].move_work;
      total_msgs += rows[i].move_msgs;
      table.add_row({static_cast<std::int64_t>(i), rows[i].move_work,
                     rows[i].move_msgs,
                     static_cast<double>(rows[i].virtual_us) / 1000.0});
    }
    table.print(out);
    out << "sweep total: " << total_work << " hop-work, " << total_msgs
        << " messages over " << trials << " trials x " << steps
        << " steps\n";
  }

  RegionId region(std::istringstream& ss) {
    int x = -1, y = -1;
    ss >> x >> y;
    return hierarchy_->grid().region_at(x, y);
  }

  TargetId target(std::istringstream& ss) {
    int t = -1;
    ss >> t;
    return TargetId{t};
  }

  ext::Stabilizer& stabilizer(TargetId t) {
    auto it = stabilizers_.find(t);
    if (it == stabilizers_.end()) {
      it = stabilizers_
               .emplace(t, std::make_unique<ext::Stabilizer>(
                               *net_, t, sim::Duration::millis(500)))
               .first;
    }
    return *it->second;
  }

  /// Fault-mode walk pacing (recorded into the captured scenario).
  static constexpr std::int64_t kFaultStepUs = 200'000;
  static constexpr std::int64_t kFaultSettleUs = 2'000'000;
  static constexpr std::int64_t kFaultHeartbeatUs = 400'000;

  int jobs_;
  int shards_;
  std::string incident_dir_;
  int incidents_written_ = 0;
  int side_ = 0;
  int base_ = 0;
  std::unique_ptr<hier::GridHierarchy> hierarchy_;
  std::unique_ptr<obs::OpLedger> cli_ledger_;  // before net_: outlives it
  std::unique_ptr<tracking::TrackingNetwork> net_;
  std::unique_ptr<obs::Watchdog> watchdog_;  // declared after net_: dies first
  std::unique_ptr<obs::TelemetrySampler> telemetry_;  // ditto
  std::unique_ptr<obs::SloMonitor> slo_;
  std::unique_ptr<fault::FaultInjector> injector_;  // ditto
  std::optional<fault::FaultPlan> pending_faults_;  // VS_FAULTS, pre-evader
  obs::ScenarioSpec scenario_;
  std::map<TargetId, std::unique_ptr<ext::Stabilizer>> stabilizers_;
};

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = runner::default_jobs() (hardware concurrency)
  int shards = 1;
  std::string incident_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + 9);
    } else if (arg == "--incident-dir" && i + 1 < argc) {
      incident_dir = argv[++i];
    } else if (arg.rfind("--incident-dir=", 0) == 0) {
      incident_dir = arg.substr(15);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: vinestalk_cli [--jobs N] [--shards N] "
                   "[--incident-dir D] < script\n"
                   "commands on stdin; see the header of this source file.\n"
                   "--jobs N sets the sweep command's thread count "
                   "(default: hardware concurrency; sweep output is "
                   "identical for every N).\n"
                   "--shards N shards each world into N lanes "
                   "(default 1; output is identical for every N).\n"
                   "--incident-dir D makes the monitor command write "
                   "incident bundles into D.\n";
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << " (try --help)\n";
      return 2;
    }
  }
  if (jobs < 0) {
    std::cerr << "--jobs must be >= 1 (0 means auto), got " << jobs << "\n";
    return 2;
  }
  if (shards < 1) {
    std::cerr << "--shards must be >= 1, got " << shards << "\n";
    return 2;
  }
  Cli cli(jobs, shards, incident_dir);
  return cli.run(std::cin, std::cout);
}
