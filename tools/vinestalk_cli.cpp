// vinestalk_cli — scriptable driver for a VINESTALK world.
//
// Reads commands from stdin (one per line; '#' starts a comment) and
// prints results to stdout, making interactive exploration and shell-based
// smoke tests possible without writing C++:
//
//   world <side> <base>        build a grid world (must come first)
//   evader <x> <y>             place a new evader (prints its target id)
//   move <target> <x> <y>      relocate an evader (neighbouring region)
//   walk <target> <steps> <seed>  random-walk an evader
//   find <x> <y> <target>      run a find and print the result
//   fail <x> <y>               fail the VSA at a region (enables failures)
//   tick <target>              one stabilizer repair pass
//   show <target>              render the tracking structure
//   check <target>             consistency verdict for the structure
//   stats                      work counters so far
//   quit
//
// Example:
//   printf 'world 27 3\nevader 20 6\nfind 0 26 0\nstats\n' | vinestalk_cli

#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "ext/stabilizer.hpp"
#include "hier/grid_hierarchy.hpp"
#include "spec/consistency.hpp"
#include "spec/inspect.hpp"
#include "tracking/network.hpp"
#include "vsa/evader.hpp"

namespace {

using namespace vs;

class Cli {
 public:
  int run(std::istream& in, std::ostream& out) {
    std::string line;
    while (std::getline(in, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ss(line);
      std::string cmd;
      if (!(ss >> cmd)) continue;
      try {
        if (!dispatch(cmd, ss, out)) return 0;  // quit
      } catch (const Error& e) {
        out << "error: " << e.what() << "\n";
      }
    }
    return 0;
  }

 private:
  bool dispatch(const std::string& cmd, std::istringstream& ss,
                std::ostream& out) {
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "world") {
      int side = 0, base = 0;
      ss >> side >> base;
      hierarchy_ = std::make_unique<hier::GridHierarchy>(side, side, base);
      tracking::NetworkConfig cfg;
      cfg.model_vsa_failures = true;
      cfg.t_restart = sim::Duration::millis(5);
      net_ = std::make_unique<tracking::TrackingNetwork>(*hierarchy_, cfg);
      out << "world " << side << "x" << side << " base " << base << ", MAX "
          << hierarchy_->max_level() << ", " << hierarchy_->num_clusters()
          << " clusters\n";
      return true;
    }
    VS_REQUIRE(net_ != nullptr, "run `world <side> <base>` first");
    if (cmd == "evader") {
      const TargetId t = net_->add_evader(region(ss));
      net_->run_to_quiescence();
      out << "evader " << t.value() << " placed\n";
    } else if (cmd == "move") {
      const TargetId t = target(ss);
      net_->move_evader(t, region(ss));
      net_->run_to_quiescence();
      out << "evader " << t.value() << " now at "
          << hierarchy_->tiling().describe(net_->evaders().region_of(t))
          << "\n";
    } else if (cmd == "walk") {
      const TargetId t = target(ss);
      int steps = 0;
      std::uint64_t seed = 0;
      ss >> steps >> seed;
      vsa::RandomWalkMover mover(hierarchy_->tiling(), seed);
      RegionId cur = net_->evaders().region_of(t);
      for (int i = 0; i < steps; ++i) {
        cur = mover.next(cur);
        net_->move_evader(t, cur);
        net_->run_to_quiescence();
      }
      out << "walked " << steps << " steps to "
          << hierarchy_->tiling().describe(cur) << "\n";
    } else if (cmd == "find") {
      const RegionId from = region(ss);
      const TargetId t = target(ss);
      const FindId f = net_->start_find(from, t);
      net_->run_to_quiescence();
      const auto& r = net_->find_result(f);
      if (r.done) {
        out << "found at " << hierarchy_->tiling().describe(r.found_region)
            << " in " << r.latency() << " (" << r.work << " hop-work, "
            << r.messages << " messages)\n";
      } else {
        out << "find did not complete\n";
      }
    } else if (cmd == "fail") {
      const RegionId u = region(ss);
      net_->fail_vsa(u);
      out << "failed VSA at " << hierarchy_->tiling().describe(u) << "\n";
    } else if (cmd == "tick") {
      const TargetId t = target(ss);
      auto& stab = stabilizer(t);
      const int injected = stab.tick_once();
      net_->run_to_quiescence();
      out << "stabilizer injected " << injected << " repair message(s)\n";
    } else if (cmd == "show") {
      out << spec::render_structure(net_->snapshot(target(ss)));
    } else if (cmd == "check") {
      const TargetId t = target(ss);
      const auto report = spec::check_consistent(
          net_->snapshot(t), net_->evaders().region_of(t));
      out << (report.ok() ? "consistent\n" : report.to_string());
    } else if (cmd == "stats") {
      const auto& c = net_->counters();
      out << "moves: " << c.move_messages() << " messages, " << c.move_work()
          << " hop-work; finds: " << c.find_messages() << " messages, "
          << c.find_work() << " hop-work; virtual time " << net_->now()
          << "\n";
    } else {
      out << "unknown command: " << cmd << "\n";
    }
    return true;
  }

  RegionId region(std::istringstream& ss) {
    int x = -1, y = -1;
    ss >> x >> y;
    return hierarchy_->grid().region_at(x, y);
  }

  TargetId target(std::istringstream& ss) {
    int t = -1;
    ss >> t;
    return TargetId{t};
  }

  ext::Stabilizer& stabilizer(TargetId t) {
    auto it = stabilizers_.find(t);
    if (it == stabilizers_.end()) {
      it = stabilizers_
               .emplace(t, std::make_unique<ext::Stabilizer>(
                               *net_, t, sim::Duration::millis(500)))
               .first;
    }
    return *it->second;
  }

  std::unique_ptr<hier::GridHierarchy> hierarchy_;
  std::unique_ptr<tracking::TrackingNetwork> net_;
  std::map<TargetId, std::unique_ptr<ext::Stabilizer>> stabilizers_;
};

}  // namespace

int main() {
  Cli cli;
  return cli.run(std::cin, std::cout);
}
