// vinestalk_served — long-running ingest/query daemon over a VINESTALK
// world (the serve::IngestServer robustness core, end to end).
//
//   vinestalk_served --side N --base B (--load R | --stdin | --replay F)
//                    [options]
//
// Exactly one input mode:
//   --load <rounds>      deterministic loopback open-loop load: a producer
//                        thread synthesizes a VSINGEST1 client session in
//                        memory (a triangular burst ramp that climbs to
//                        --overdrive x the ring capacity, so the ladder is
//                        driven through tiers 1 -> 2 -> 3 and into hard
//                        backpressure) and plays it through the exact
//                        reader path --stdin uses. A round-handshake
//                        between producer and driver makes drop counts
//                        deterministic while still exercising real
//                        threads.
//   --stdin              read a VSINGEST1 stream from stdin on the reader
//                        thread. kUpdate frames are offer()ed, kRound
//                        frames are client drain ticks (their upto_us is
//                        advisory; the daemon owns its virtual clock), and
//                        kFind frames run the deadline/backoff find RPC.
//                        The strict parser's first malformed byte is
//                        terminal: ingestion stops, the error is
//                        accounted, and the daemon exits 1 — a frame is
//                        never applied partially.
//   --replay <file>      deterministically re-execute a --capture file:
//                        same batches at the same round boundaries, ladder
//                        decisions recomputed. With --trace, the world
//                        trace is byte-identical to the live run's at any
//                        --shards.
//
// Options:
//   --objects N          tracked objects, spread over the grid (default 4)
//   --shards N           PDES lanes (default 1; artifacts identical)
//   --capture <path>     VSINGEST1 capture of drained frames + markers
//   --queues N --queue-capacity N --round-us N --dead-band N
//                        serve::ServeConfig knobs
//   --overdrive N        --load peak per-queue burst, in ring capacities
//                        (default 2)
//   --seed S             --load PRNG seed (default 42)
//   --find-every N       --load: issue a find RPC every N rounds
//   --deadline-us N --attempts N --backoff-us N
//                        find RPC deadline policy (defaults 500000 / 4 /
//                        1000; a (δ+e)-latency world needs a few ms of
//                        deadline per hop of distance)
//   --monitor            cadence watchdog on object 0; violations print
//                        and (with --incident-dir D) write bundles
//   --fault-plan <file>  arm a fault::FaultPlan (chaos) against the world
//   --heartbeat-us N     run a stabilizer heartbeat on object 0 (repairs
//                        under discrete-fault plans)
//   --telemetry <path> [--telemetry-us N] [--prometheus <path>]
//                        VSTELEM1 stream (+ Prometheus snapshot) with the
//                        ingest series
//   --trace <path>       dump the world's VSTRACE1 trace at exit
//   --slo <spec-file>    arm request-level SLO monitoring with the given
//                        `slo v1` spec (env fallback: VS_SLO=). Burn-rate
//                        incidents land in --incident-dir as
//                        incident_slo_N.vsi and print to stderr; every
//                        deterministic artifact (trace, telemetry, capture,
//                        stdout) stays byte-identical SLO on vs off.
//   --slo-out <path>     VSSLO1 sidecar (+ <path>.json twin) written at
//                        exit (env fallback: VS_SLO_OUT=; requires --slo)
//
// Exit status: 0 on a clean run; 1 on a wire-format error, a watchdog
// violation, or a broken conservation identity
// (ingested == applied + suppressed + dropped — checked every run).
// A fired SLO burn-rate alert never changes the exit status: alerting is
// observability, not a verdict on the run.

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "ext/stabilizer.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "hier/grid_hierarchy.hpp"
#include "obs/monitor/incident.hpp"
#include "obs/monitor/watchdog.hpp"
#include "obs/slo/slo.hpp"
#include "obs/slo/slo_io.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "obs/trace_io.hpp"
#include "serve/ingest_io.hpp"
#include "serve/server.hpp"
#include "tracking/network.hpp"

namespace {

using namespace vs;

struct Options {
  int side = 27;
  int base = 3;
  int shards = 1;
  int objects = 4;
  int load_rounds = -1;   // --load
  bool from_stdin = false;
  std::string replay_path;
  std::string capture_path;
  serve::ServeConfig serve;
  std::int64_t overdrive = 2;
  std::uint64_t seed = 42;
  int find_every = 0;
  std::int64_t deadline_us = 500'000;
  bool monitor = false;
  std::string incident_dir;
  std::string fault_plan;
  std::int64_t heartbeat_us = 0;
  std::string telemetry_path;
  std::int64_t telemetry_us = 10'000;
  std::string prometheus_path;
  std::string trace_path;
  std::string slo_spec_path;
  std::string slo_out_path;
};

/// splitmix64 — tiny deterministic PRNG for the load generator.
std::uint64_t next_rand(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Synthesize a VSINGEST1 client session: per round a burst of GPS fixes
/// (triangular ramp peaking at overdrive x ring capacity per queue) then a
/// drain tick; every find_every rounds a find RPC. Objects mostly jitter
/// one cell (tier-2 dead-band fodder) with occasional multi-cell jumps.
std::string make_load_stream(const Options& opt) {
  std::string out;
  serve::encode_ingest_header(out);
  std::uint64_t frames = 0;
  std::uint64_t rng = opt.seed;
  std::vector<std::pair<int, int>> pos(
      static_cast<std::size_t>(opt.objects));
  for (int i = 0; i < opt.objects; ++i) {
    const int c = (i + 1) * opt.side / (opt.objects + 1);
    pos[static_cast<std::size_t>(i)] = {c, c};
  }
  const int rounds = opt.load_rounds;
  const int half = rounds / 2;
  const std::int64_t peak =
      opt.overdrive * static_cast<std::int64_t>(opt.serve.queue_capacity);
  const auto clamp_cell = [&](int v) {
    return std::max(0, std::min(opt.side - 1, v));
  };
  int finds = 0;
  for (int r = 0; r < rounds; ++r) {
    const std::int64_t per_queue =
        r <= half ? peak * (r + 1) / (half + 1)
                  : peak * (rounds - r) / std::max(1, rounds - half);
    const std::int64_t burst = per_queue * opt.serve.queues;
    for (std::int64_t i = 0; i < burst; ++i) {
      const std::size_t obj =
          static_cast<std::size_t>(next_rand(rng) %
                                   static_cast<std::uint64_t>(opt.objects));
      auto& [x, y] = pos[obj];
      if (next_rand(rng) % 8 == 0) {
        x = clamp_cell(x + static_cast<int>(next_rand(rng) % 9) - 4);
        y = clamp_cell(y + static_cast<int>(next_rand(rng) % 9) - 4);
      } else {
        x = clamp_cell(x + static_cast<int>(next_rand(rng) % 3) - 1);
        y = clamp_cell(y + static_cast<int>(next_rand(rng) % 3) - 1);
      }
      serve::IngestFrame f;
      f.type = serve::IngestFrame::Type::kUpdate;
      f.update = {static_cast<std::uint64_t>(obj), x, y};
      serve::encode_frame(out, f);
      ++frames;
    }
    serve::IngestFrame tick;
    tick.type = serve::IngestFrame::Type::kRound;
    tick.round.upto_us = 0;  // client tick: the daemon owns its clock
    serve::encode_frame(out, tick);
    ++frames;
    if (opt.find_every > 0 && (r + 1) % opt.find_every == 0) {
      serve::IngestFrame f;
      f.type = serve::IngestFrame::Type::kFind;
      f.find.object =
          static_cast<std::uint64_t>(finds++ % opt.objects);
      f.find.x = 0;
      f.find.y = 0;
      f.find.deadline_us = opt.deadline_us;
      serve::encode_frame(out, f);
      ++frames;
    }
  }
  serve::encode_ingest_trailer(out, frames);
  return out;
}

/// Reader -> driver handshake. The reader offers updates freely (the
/// driver is parked between commands, so admission decisions are
/// deterministic) and blocks on each round tick / find RPC until the
/// driver has executed it.
struct ClientLink {
  enum class Cmd : std::uint8_t { kIdle, kRound, kFind, kDone };
  std::mutex m;
  std::condition_variable cv;
  Cmd cmd = Cmd::kIdle;
  serve::FindFrame find{};
  std::string wire_error;  // set by the reader before kDone

  /// Reader side: post a command and wait until the driver is done.
  void post(Cmd c, const serve::FindFrame* f = nullptr) {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return cmd == Cmd::kIdle; });
    if (f != nullptr) find = *f;
    cmd = c;
    cv.notify_all();
    if (c != Cmd::kDone) {
      cv.wait(lk, [&] { return cmd == Cmd::kIdle; });
    }
  }
};

/// The reader thread: parse a VSINGEST1 byte source strictly, offer
/// updates, and hand round ticks / finds to the driver. `read` returns
/// the next chunk size (0 = EOF). Returns false on a wire-format error.
template <class ReadFn>
bool run_reader(serve::IngestServer& srv, ClientLink& link, ReadFn read) {
  serve::IngestParser parser;
  char buf[4096];
  bool eof = false;
  for (;;) {
    serve::IngestFrame frame;
    const auto st = parser.next(frame);
    if (st == serve::IngestParser::Status::kNeedMore) {
      if (eof) {
        srv.note_wire_error();
        link.wire_error = "truncated VSINGEST stream (no trailer)";
        link.post(ClientLink::Cmd::kDone);
        return false;
      }
      const std::size_t n = read(buf, sizeof(buf));
      if (n == 0) {
        eof = true;
      } else {
        parser.feed(buf, n);
      }
      continue;
    }
    if (st == serve::IngestParser::Status::kError) {
      srv.note_wire_error();
      link.wire_error = parser.error();
      link.post(ClientLink::Cmd::kDone);
      return false;
    }
    if (st == serve::IngestParser::Status::kEnd) {
      link.post(ClientLink::Cmd::kDone);
      return true;
    }
    switch (frame.type) {
      case serve::IngestFrame::Type::kUpdate:
        (void)srv.offer(frame.update);  // accounting is internal
        break;
      case serve::IngestFrame::Type::kRound:
        link.post(ClientLink::Cmd::kRound);
        break;
      case serve::IngestFrame::Type::kFind:
        link.post(ClientLink::Cmd::kFind, &frame.find);
        break;
    }
  }
}

int usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "vinestalk_served: " << msg << "\n";
  std::cerr << "usage: vinestalk_served --side N --base B "
               "(--load R | --stdin | --replay F) [options]\n"
               "see the header of this source file for the option list.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&]() -> std::string {
      VS_REQUIRE(i + 1 < argc, "" << arg << " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--side") {
        opt.side = std::stoi(val());
      } else if (arg == "--base") {
        opt.base = std::stoi(val());
      } else if (arg == "--shards") {
        opt.shards = std::stoi(val());
      } else if (arg == "--objects") {
        opt.objects = std::stoi(val());
      } else if (arg == "--load") {
        opt.load_rounds = std::stoi(val());
      } else if (arg == "--stdin") {
        opt.from_stdin = true;
      } else if (arg == "--replay") {
        opt.replay_path = val();
      } else if (arg == "--capture") {
        opt.capture_path = val();
      } else if (arg == "--queues") {
        opt.serve.queues = static_cast<std::uint32_t>(std::stoul(val()));
      } else if (arg == "--queue-capacity") {
        opt.serve.queue_capacity = std::stoul(val());
      } else if (arg == "--round-us") {
        opt.serve.round = sim::Duration::micros(std::stoll(val()));
      } else if (arg == "--dead-band") {
        opt.serve.dead_band = std::stoi(val());
      } else if (arg == "--overdrive") {
        opt.overdrive = std::stoll(val());
      } else if (arg == "--seed") {
        opt.seed = std::stoull(val());
      } else if (arg == "--find-every") {
        opt.find_every = std::stoi(val());
      } else if (arg == "--deadline-us") {
        opt.deadline_us = std::stoll(val());
      } else if (arg == "--attempts") {
        opt.serve.find_attempts = std::stoi(val());
      } else if (arg == "--backoff-us") {
        opt.serve.find_backoff = sim::Duration::micros(std::stoll(val()));
      } else if (arg == "--monitor") {
        opt.monitor = true;
      } else if (arg == "--incident-dir") {
        opt.incident_dir = val();
      } else if (arg == "--fault-plan") {
        opt.fault_plan = val();
      } else if (arg == "--heartbeat-us") {
        opt.heartbeat_us = std::stoll(val());
      } else if (arg == "--telemetry") {
        opt.telemetry_path = val();
      } else if (arg == "--telemetry-us") {
        opt.telemetry_us = std::stoll(val());
      } else if (arg == "--prometheus") {
        opt.prometheus_path = val();
      } else if (arg == "--trace") {
        opt.trace_path = val();
      } else if (arg == "--slo") {
        opt.slo_spec_path = val();
      } else if (arg == "--slo-out") {
        opt.slo_out_path = val();
      } else if (arg == "--help" || arg == "-h") {
        return usage();
      } else {
        return usage(("unknown argument: " + arg).c_str());
      }
    } catch (const Error& e) {
      return usage(e.what());
    }
  }
  // Env fallbacks so a wrapping harness can arm SLO monitoring without
  // touching the command line (quickstart: VS_SLO=slo.txt vinestalk_served
  // ...).
  if (opt.slo_spec_path.empty()) {
    if (const char* e = std::getenv("VS_SLO"); e != nullptr && *e != '\0') {
      opt.slo_spec_path = e;
    }
  }
  if (opt.slo_out_path.empty()) {
    if (const char* e = std::getenv("VS_SLO_OUT");
        e != nullptr && *e != '\0') {
      opt.slo_out_path = e;
    }
  }
  if (!opt.slo_out_path.empty() && opt.slo_spec_path.empty()) {
    return usage("--slo-out needs --slo (or VS_SLO=) to arm a monitor");
  }
  const int modes = (opt.load_rounds >= 0 ? 1 : 0) +
                    (opt.from_stdin ? 1 : 0) +
                    (opt.replay_path.empty() ? 0 : 1);
  if (modes != 1) {
    return usage("pick exactly one of --load, --stdin, --replay");
  }
  if (opt.side < 2 || opt.base < 2 || opt.shards < 1 || opt.objects < 1) {
    return usage("need --side >= 2, --base >= 2, --shards >= 1, "
                 "--objects >= 1");
  }

  try {
    hier::GridHierarchy hierarchy(opt.side, opt.side, opt.base);
    tracking::NetworkConfig net_cfg;
    net_cfg.model_vsa_failures = true;
    net_cfg.t_restart = sim::Duration::millis(5);
    tracking::TrackingNetwork net(hierarchy, net_cfg);
    if (opt.shards > 1) net.set_shards(opt.shards);
    if (!opt.trace_path.empty()) {
      VS_REQUIRE(obs::kTraceCompiled,
                 "tracing compiled out (rebuild with -DVINESTALK_TRACE=ON)");
      net.set_tracing(true);
    }

    opt.serve.capture_path = opt.capture_path;
    serve::IngestServer srv(net, hierarchy, opt.serve);
    for (int i = 0; i < opt.objects; ++i) {
      const int c = (i + 1) * opt.side / (opt.objects + 1);
      srv.add_object(hierarchy.grid().region_at(c, c));
    }

    // Request-level SLO monitoring. All of its wall-clock data is
    // quarantined in the VSSLO1 sidecar / JSON twin / Prometheus snapshot
    // and the incident_slo_* bundles, so arming it leaves every
    // deterministic artifact byte-identical.
    std::optional<obs::SloMonitor> slo;
    int slo_incidents = 0;
    if (!opt.slo_spec_path.empty()) {
      std::ifstream sin(opt.slo_spec_path);
      VS_REQUIRE(sin.good(), "cannot open SLO spec " << opt.slo_spec_path);
      const std::string spec_text((std::istreambuf_iterator<char>(sin)),
                                  std::istreambuf_iterator<char>());
      slo.emplace(obs::SloSpec::parse(spec_text));
      obs::ScenarioSpec scen;
      scen.side = opt.side;
      scen.base = opt.base;
      scen.model_vsa_failures = true;
      scen.seed = opt.seed;
      scen.t_restart_us = 5'000;
      slo->set_scenario(std::move(scen));
      slo->set_incident_sink([&](const obs::IncidentBundle& b) {
        std::cerr << "SLO BURN " << b.violation.predicate << " at "
                  << b.violation.time_us << "us\n";
        if (!opt.incident_dir.empty()) {
          const std::string path = opt.incident_dir + "/incident_slo_" +
                                   std::to_string(slo_incidents) + ".vsi";
          obs::write_incident_file(path, b);
          std::cerr << "slo incident bundle written to " << path << "\n";
        }
        ++slo_incidents;
      });
      srv.set_slo(&*slo);
    }

    // Observability: telemetry sampler (VSTELEM1 ingest series +
    // Prometheus), watchdog supervision, chaos plan, heartbeat stabilizer.
    std::optional<obs::TelemetrySampler> telemetry;
    if (!opt.telemetry_path.empty() || !opt.prometheus_path.empty()) {
      VS_REQUIRE(obs::kTraceCompiled,
                 "telemetry compiled out (rebuild with -DVINESTALK_TRACE=ON)");
      obs::TelemetryConfig tcfg;
      tcfg.stream_path = opt.telemetry_path;
      tcfg.prometheus_path = opt.prometheus_path;
      tcfg.cadence = sim::Duration::micros(opt.telemetry_us);
      telemetry.emplace(net, tcfg);
      if (slo.has_value()) telemetry->bind_slo(&*slo);
      telemetry->enable();
    }
    std::optional<obs::Watchdog> watchdog;
    int incidents_written = 0;
    if (opt.monitor) {
      obs::WatchdogConfig wcfg;
      wcfg.source = "served";
      watchdog.emplace(net, TargetId{0}, wcfg, obs::ScenarioSpec{});
      watchdog->set_incident_sink([&](const obs::IncidentBundle& b) {
        std::cerr << "VIOLATION " << b.violation.predicate << " at "
                  << b.violation.time_us << "us\n";
        if (!opt.incident_dir.empty()) {
          const std::string path = opt.incident_dir + "/incident_served_" +
                                   std::to_string(incidents_written++) +
                                   ".vsi";
          obs::write_incident_file(path, b);
          std::cerr << "incident bundle written to " << path << "\n";
        }
      });
    }
    std::optional<fault::FaultInjector> injector;
    if (!opt.fault_plan.empty()) {
      injector.emplace(net, fault::FaultPlan::parse_file(opt.fault_plan));
      injector->arm();
      if (watchdog.has_value()) {
        if (const auto d = injector->recovery_deadline()) {
          watchdog->arm_recovery_deadline(*d);
        }
      }
    }
    std::optional<ext::Stabilizer> stabilizer;
    if (opt.heartbeat_us > 0) {
      stabilizer.emplace(net, TargetId{0},
                         sim::Duration::micros(opt.heartbeat_us));
      stabilizer->start();
    }

    std::int64_t rounds_run = 0;
    int max_tier = 0;
    std::int64_t finds_issued = 0, finds_done = 0, find_attempts = 0;
    bool wire_ok = true;

    if (!opt.replay_path.empty()) {
      srv.replay_file(opt.replay_path);
    } else {
      ClientLink link;
      std::thread reader;
      std::string load_stream;
      if (opt.load_rounds >= 0) {
        load_stream = make_load_stream(opt);
        reader = std::thread([&] {
          std::size_t off = 0;
          wire_ok = run_reader(srv, link, [&](char* buf, std::size_t cap) {
            const std::size_t n =
                std::min(cap, load_stream.size() - off);
            std::memcpy(buf, load_stream.data() + off, n);
            off += n;
            return n;
          });
        });
      } else {
        reader = std::thread([&] {
          wire_ok = run_reader(srv, link, [&](char* buf, std::size_t cap) {
            std::cin.read(buf, static_cast<std::streamsize>(cap));
            return static_cast<std::size_t>(std::cin.gcount());
          });
        });
      }
      // Driver loop: all world mutation happens here.
      for (;;) {
        std::unique_lock<std::mutex> lk(link.m);
        link.cv.wait(lk, [&] { return link.cmd != ClientLink::Cmd::kIdle; });
        const auto cmd = link.cmd;
        const serve::FindFrame ff = link.find;
        if (cmd == ClientLink::Cmd::kDone) break;
        lk.unlock();
        if (cmd == ClientLink::Cmd::kRound) {
          const serve::RoundReport rep = srv.run_round();
          ++rounds_run;
          max_tier = std::max(max_tier, rep.tier);
        } else {
          if (ff.object < srv.num_objects() &&
              hierarchy.grid().in_bounds(geo::Coord{ff.x, ff.y})) {
            const serve::FindOutcome o =
                srv.find(hierarchy.grid().region_at(ff.x, ff.y), ff.object,
                         sim::Duration(ff.deadline_us));
            ++finds_issued;
            find_attempts += o.attempts;
            if (o.done) ++finds_done;
          } else {
            srv.note_wire_error();
          }
        }
        lk.lock();
        link.cmd = ClientLink::Cmd::kIdle;
        lk.unlock();
        link.cv.notify_all();
      }
      reader.join();
      srv.finish();
    }

    if (stabilizer.has_value()) stabilizer->stop();
    net.run_to_quiescence();
    if (watchdog.has_value()) watchdog->check_now();
    if (telemetry.has_value()) telemetry->finish();
    if (!opt.trace_path.empty()) {
      obs::write_trace_file(opt.trace_path, net.trace());
    }
    if (slo.has_value()) {
      slo->evaluate(net.now().count());
      if (!opt.slo_out_path.empty()) {
        const obs::SloReport rep = slo->report();
        obs::write_slo_file(opt.slo_out_path, rep);
        std::ofstream js(opt.slo_out_path + ".json", std::ios::trunc);
        VS_REQUIRE(js.good(),
                   "cannot write SLO JSON twin " << opt.slo_out_path
                                                 << ".json");
        obs::slo_to_json(js, rep);
        // stderr, like the incident notices: stdout is one of the
        // byte-identity artifacts and must not vary with --slo.
        std::cerr << "slo sidecar written to " << opt.slo_out_path << " (+ "
                  << opt.slo_out_path << ".json)\n";
      }
    }

    // Summary + verdicts. The conservation identity is judged on every
    // run; a violation is a daemon bug, never load-dependent.
    const stats::IngestCounters& ing = net.counters().ingest();
    const bool conserved =
        ing.ingested == ing.applied + ing.suppressed + ing.dropped;
    const char* mode = !opt.replay_path.empty() ? "replay"
                       : opt.from_stdin         ? "stdin"
                                                : "load";
    std::cout << "vinestalk_served: " << mode << " side " << opt.side
              << " base " << opt.base << " shards " << opt.shards
              << " objects " << opt.objects << "\n";
    std::cout << "rounds: " << rounds_run << " (max tier " << max_tier
              << ")\n";
    std::cout << "ingest: " << ing.ingested << " ingested = " << ing.applied
              << " applied + " << ing.suppressed << " suppressed + "
              << ing.dropped << " dropped ["
              << (conserved ? "conservation OK" : "CONSERVATION VIOLATED")
              << "]\n";
    std::cout << "shed tier entries: t1 " << ing.shed_tier_entries[0]
              << " t2 " << ing.shed_tier_entries[1] << " t3 "
              << ing.shed_tier_entries[2] << "; queue depth peak "
              << ing.queue_depth_peak << "\n";
    std::cout << "wire errors: " << ing.wire_errors << "\n";
    if (finds_issued > 0) {
      std::cout << "finds: " << finds_issued << " issued, " << finds_done
                << " completed, " << find_attempts << " attempt(s)\n";
    }
    std::cout << "virtual time: " << net.now() << "\n";
    if (watchdog.has_value()) {
      std::cout << "watchdog: " << watchdog->violations_seen()
                << " violation(s)\n";
    }
    if (!wire_ok) {
      std::cerr << "vinestalk_served: wire error\n";
      return 1;
    }
    if (!conserved || ing.wire_errors > 0) return 1;
    if (watchdog.has_value() && !watchdog->ok()) return 1;
    return 0;
  } catch (const Error& e) {
    std::cerr << "vinestalk_served: " << e.what() << "\n";
    return 1;
  }
}
