// vinestalk_top — live terminal dashboard over a VSTELEM1 telemetry
// stream.
//
//   vinestalk_top <file> [--once] [--interval-ms N]
//
// Tails the stream a running world writes (obs::TelemetrySampler flushes
// one record per cadence boundary, so the file is always a valid prefix),
// re-rendering until the trailer lands: event/message/find rates from the
// last two samples, find-latency percentiles, sliding-window bound-ratio
// gauges (Theorem 4.9 / 5.2, ×1000 with the 1.0× bound marked), and —
// when the stream carries the per-lane section — one utilization bar per
// PDES shard lane.
//
// --once reads the file a single time and renders one frame with no
// escape codes and no wall-clock dependence: same file in, same bytes
// out — the golden-test and scripting mode. Live mode redraws with a
// home+clear escape at --interval-ms (default 500).
//
// Exit status: 0 (stream summarized; live mode exits when the trailer
// arrives), 1 on usage or a file that is not a telemetry stream.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/telemetry/telemetry_io.hpp"

namespace {

using vs::obs::TelemetryFile;
using vs::obs::TelemetrySample;

int usage() {
  std::cerr << "usage: vinestalk_top <telemetry-file> [--once] "
               "[--interval-ms N]\n";
  return 1;
}

/// `width` cells, `frac` of them filled — clamped, so an over-bound gauge
/// pegs at full rather than overflowing the frame.
std::string bar(double frac, int width) {
  frac = std::clamp(frac, 0.0, 1.0);
  const int fill = static_cast<int>(frac * width + 0.5);
  std::string out = "[";
  for (int i = 0; i < width; ++i) out.push_back(i < fill ? '#' : '.');
  out.push_back(']');
  return out;
}

std::string fmt_rate(double v) {
  std::ostringstream os;
  if (v >= 1e6) {
    os << static_cast<std::int64_t>(v / 1e3) << "k";
  } else {
    os << static_cast<std::int64_t>(v);
  }
  return os.str();
}

void render(std::ostream& os, const std::string& path,
            const TelemetryFile& f) {
  using vs::obs::TelemetrySeries;
  os << "vinestalk_top — " << path << "  (" << f.samples.size()
     << " sample(s), " << (f.complete ? "complete" : "live") << ", cadence "
     << f.header.cadence_us << "us)\n";
  if (f.samples.empty()) {
    os << "  waiting for the first cadence boundary...\n";
    return;
  }
  const TelemetrySample& last = f.samples.back();
  const TelemetrySample& prev =
      f.samples.size() >= 2 ? f.samples[f.samples.size() - 2] : last;
  const double dt_s =
      static_cast<double>(last.t_us - prev.t_us) / 1e6;
  const auto rate = [&](std::size_t i) {
    if (dt_s <= 0) return 0.0;
    return static_cast<double>(last.values[i] - prev.values[i]) / dt_s;
  };
  const auto v = [&](std::size_t i) { return last.values[i]; };

  os << "  t = " << last.t_us << "us\n";
  os << "  rates/s: events " << fmt_rate(rate(vs::obs::kTsEventsFired))
     << "  msgs " << fmt_rate(rate(vs::obs::kTsMsgsTotal)) << "  work "
     << fmt_rate(rate(vs::obs::kTsWorkTotal)) << "  finds "
     << fmt_rate(rate(vs::obs::kTsFindsCompleted)) << "  heartbeats "
     << fmt_rate(rate(vs::obs::kTsHeartbeats)) << "\n";
  os << "  finds: " << v(vs::obs::kTsFindsIssued) << " issued, "
     << v(vs::obs::kTsFindsCompleted) << " completed; latency us p50="
     << v(vs::obs::kTsFindLatencyP50) << " p90="
     << v(vs::obs::kTsFindLatencyP90) << " p99="
     << v(vs::obs::kTsFindLatencyP99) << "\n";

  // Bound gauges: milli-ratios, full scale = 2× the bound (so the 1.0×
  // bound sits mid-bar). All four zero means no auditor was attached.
  const std::int64_t mw = v(vs::obs::kTsAuditBase + 0);
  const std::int64_t mt = v(vs::obs::kTsAuditBase + 1);
  const std::int64_t fw = v(vs::obs::kTsAuditBase + 2);
  const std::int64_t ft = v(vs::obs::kTsAuditBase + 3);
  if (mw == 0 && mt == 0 && fw == 0 && ft == 0) {
    os << "  bounds: (no sliding-window auditor attached)\n";
  } else {
    const auto gauge = [&](const char* name, std::int64_t milli) {
      os << "    " << name << " "
         << bar(static_cast<double>(milli) / 2000.0, 20) << " "
         << milli << "m" << (milli > 1000 ? "  OVER" : "") << "\n";
    };
    const std::int64_t worst = std::max({mw, mt, fw, ft});
    os << "  bounds (x1000, window audit): "
       << (worst > 1000 ? "OVER BOUND" : "within bounds") << "\n";
    gauge("move work (Thm 4.9)", mw);
    gauge("move time (Thm 4.9)", mt);
    gauge("find work (Thm 5.2)", fw);
    gauge("find time (Thm 5.2)", ft);
  }

  if (f.header.has_lanes()) {
    const std::size_t base =
        vs::obs::kTsFixedCount + 4 * (f.header.max_level + 1);
    const std::int64_t windows = v(base + 0);
    const std::int64_t window_events = v(base + 1);
    os << "  pdes: " << windows << " window(s), " << window_events
       << " window event(s), critical path " << v(base + 2) << "\n";
    for (std::uint32_t i = 0; i < f.header.lanes; ++i) {
      const std::size_t lb = base + 3 + 4 * i;
      const std::int64_t events = v(lb + 0);
      const std::int64_t busy = v(lb + 3);
      const double util =
          windows > 0
              ? static_cast<double>(busy) / static_cast<double>(windows)
              : 0.0;
      os << "    lane " << i << " " << bar(util, 20) << " " << events
         << " ev, " << v(lb + 1) << " stall(s), " << v(lb + 2)
         << " cross\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string path = argv[1];
  bool once = false;
  int interval_ms = 500;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::stoi(argv[++i]);
    } else {
      return usage();
    }
  }
  try {
    for (;;) {
      const TelemetryFile f =
          vs::obs::read_telemetry_file(path, /*strict=*/false);
      if (once) {
        render(std::cout, path, f);
        return 0;
      }
      // Home + clear-to-end redraw (not full clear: no flicker).
      std::cout << "\x1b[H\x1b[J";
      render(std::cout, path, f);
      std::cout.flush();
      if (f.complete) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const vs::Error& e) {
    std::cerr << "vinestalk_top: " << e.what() << "\n";
    return 1;
  }
}
