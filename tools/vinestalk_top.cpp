// vinestalk_top — live terminal dashboard over a VSTELEM1 telemetry
// stream.
//
//   vinestalk_top <file> [--once] [--interval-ms N] [--profile P]
//
// Tails the stream a running world writes (obs::TelemetrySampler flushes
// one record per cadence boundary, so the file is always a valid prefix),
// re-rendering until the trailer lands: event/message/find rates from the
// last two samples, find-latency percentiles, sliding-window bound-ratio
// gauges (Theorem 4.9 / 5.2, ×1000 with the 1.0× bound marked), and —
// when the stream carries the per-lane section — one utilization bar per
// PDES shard lane.
//
// --profile <sidecar> adds a CPU panel from a VSPROF1 profile sidecar:
// the CPU-efficiency gauge (ns of real CPU per unit of Theorem-4.9
// hop-work) and one self-time share bar per subsystem. The sidecar is
// written atomically at run end, so in live mode the panel appears once
// the profiled run finishes; until then the frame says so.
//
// --slo <sidecar> adds an SLO panel from a VSSLO1 sidecar: per-class RED
// lines (requests / errors / latency p50+p99), one burn-rate gauge per
// objective with the remaining error budget, and the slowest-request
// exemplar ticker with OpIds (feed a find exemplar's id to
// `vinestalk_trace spans` for the causal chain). Same atomic-sidecar
// semantics as --profile.
//
// --once reads the file a single time and renders one frame with no
// escape codes and no wall-clock dependence: same file in, same bytes
// out — the golden-test and scripting mode. Live mode redraws with a
// home+clear escape at --interval-ms (default 500).
//
// Exit status: 0 (stream summarized; live mode exits when the trailer
// arrives), 1 on usage or a file that is not a telemetry stream.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/op.hpp"
#include "obs/profile/profile_io.hpp"
#include "obs/profile/profiler.hpp"
#include "obs/slo/slo.hpp"
#include "obs/slo/slo_io.hpp"
#include "obs/telemetry/telemetry_io.hpp"

namespace {

using vs::obs::TelemetryFile;
using vs::obs::TelemetrySample;

int usage() {
  std::cerr << "usage: vinestalk_top <telemetry-file> [--once] "
               "[--interval-ms N] [--profile <vsprof-sidecar>] "
               "[--slo <vsslo-sidecar>]\n";
  return 1;
}

/// `width` cells, `frac` of them filled — clamped, so an over-bound gauge
/// pegs at full rather than overflowing the frame.
std::string bar(double frac, int width) {
  frac = std::clamp(frac, 0.0, 1.0);
  const int fill = static_cast<int>(frac * width + 0.5);
  std::string out = "[";
  for (int i = 0; i < width; ++i) out.push_back(i < fill ? '#' : '.');
  out.push_back(']');
  return out;
}

std::string fmt_rate(double v) {
  std::ostringstream os;
  if (v >= 1e6) {
    os << static_cast<std::int64_t>(v / 1e3) << "k";
  } else {
    os << static_cast<std::int64_t>(v);
  }
  return os.str();
}

void render_lanes(std::ostream& os, const TelemetryFile& f) {
  const auto v = [&](std::size_t i) { return f.samples.back().values[i]; };
  const std::size_t base =
      vs::obs::kTsFixedCount + 4 * (f.header.max_level + 1);
  const std::int64_t windows = v(base + 0);
  const std::int64_t window_events = v(base + 1);
  os << "  pdes: " << windows << " window(s), " << window_events
     << " window event(s), critical path " << v(base + 2) << "\n";
  for (std::uint32_t i = 0; i < f.header.lanes; ++i) {
    const std::size_t lb = base + 3 + 4 * i;
    const std::int64_t events = v(lb + 0);
    const std::int64_t busy = v(lb + 3);
    const double util =
        windows > 0
            ? static_cast<double>(busy) / static_cast<double>(windows)
            : 0.0;
    os << "    lane " << i << " " << bar(util, 20) << " " << events
       << " ev, " << v(lb + 1) << " stall(s), " << v(lb + 2)
       << " cross\n";
  }
}

void render(std::ostream& os, const std::string& path,
            const TelemetryFile& f) {
  using vs::obs::TelemetrySeries;
  os << "vinestalk_top — " << path << "  (" << f.samples.size()
     << " sample(s), " << (f.complete ? "complete" : "live") << ", cadence "
     << f.header.cadence_us << "us)\n";
  if (f.samples.empty()) {
    os << "  waiting for the first cadence boundary...\n";
    return;
  }
  const TelemetrySample& last = f.samples.back();
  const TelemetrySample& prev =
      f.samples.size() >= 2 ? f.samples[f.samples.size() - 2] : last;
  const double dt_s =
      static_cast<double>(last.t_us - prev.t_us) / 1e6;
  const auto rate = [&](std::size_t i) {
    if (dt_s <= 0) return 0.0;
    return static_cast<double>(last.values[i] - prev.values[i]) / dt_s;
  };
  const auto v = [&](std::size_t i) { return last.values[i]; };

  os << "  t = " << last.t_us << "us\n";
  os << "  rates/s: events " << fmt_rate(rate(vs::obs::kTsEventsFired))
     << "  msgs " << fmt_rate(rate(vs::obs::kTsMsgsTotal)) << "  work "
     << fmt_rate(rate(vs::obs::kTsWorkTotal)) << "  finds "
     << fmt_rate(rate(vs::obs::kTsFindsCompleted)) << "  heartbeats "
     << fmt_rate(rate(vs::obs::kTsHeartbeats)) << "\n";
  os << "  finds: " << v(vs::obs::kTsFindsIssued) << " issued, "
     << v(vs::obs::kTsFindsCompleted) << " completed; latency us p50="
     << v(vs::obs::kTsFindLatencyP50) << " p90="
     << v(vs::obs::kTsFindLatencyP90) << " p99="
     << v(vs::obs::kTsFindLatencyP99) << "\n";

  // Ingest panel — the serve daemon's conservation identity and ladder
  // census. Hidden when the stream carries no ingest traffic (sim-only
  // runs and v1 streams have all-zero ingest series).
  const std::int64_t ingested = v(vs::obs::kTsIngestBase + 0);
  if (ingested > 0) {
    const std::int64_t applied = v(vs::obs::kTsIngestBase + 1);
    const std::int64_t suppressed = v(vs::obs::kTsIngestBase + 2);
    const std::int64_t dropped = v(vs::obs::kTsIngestBase + 3);
    os << "  ingest: " << ingested << " ingested = " << applied
       << " applied + " << suppressed << " suppressed + " << dropped
       << " dropped"
       << (ingested == applied + suppressed + dropped
               ? ""
               : "  CONSERVATION BROKEN")
       << "  (" << fmt_rate(rate(vs::obs::kTsIngestBase)) << "/s)\n";
    os << "    shed tiers: t1 " << v(vs::obs::kTsIngestBase + 4) << " t2 "
       << v(vs::obs::kTsIngestBase + 5) << " t3 "
       << v(vs::obs::kTsIngestBase + 6) << "; queue depth peak "
       << v(vs::obs::kTsIngestBase + 7) << "\n";
    // Serve-RPC block (v3; older streams widen to zeros): reader-side
    // wire errors ride the conservation story — frames that never became
    // updates — and the tier-3 retry-after hint is the backpressure
    // clients are being asked to honor.
    os << "    wire errors " << v(vs::obs::kTsServeBase + 0)
       << "; tier-3 retry-after " << v(vs::obs::kTsServeBase + 1)
       << "us\n";
    const std::int64_t rpc_issued = v(vs::obs::kTsServeBase + 2);
    if (rpc_issued > 0) {
      os << "    find rpcs: " << rpc_issued << " issued, "
         << v(vs::obs::kTsServeBase + 3) << " done, "
         << v(vs::obs::kTsServeBase + 4) << " deadline miss(es), "
         << v(vs::obs::kTsServeBase + 5) << " attempt(s)\n";
    }
  }

  // Bound gauges: milli-ratios, full scale = 2× the bound (so the 1.0×
  // bound sits mid-bar). All four zero means no auditor was attached.
  const std::int64_t mw = v(vs::obs::kTsAuditBase + 0);
  const std::int64_t mt = v(vs::obs::kTsAuditBase + 1);
  const std::int64_t fw = v(vs::obs::kTsAuditBase + 2);
  const std::int64_t ft = v(vs::obs::kTsAuditBase + 3);
  if (mw == 0 && mt == 0 && fw == 0 && ft == 0) {
    os << "  bounds: (no sliding-window auditor attached)\n";
  } else {
    const auto gauge = [&](const char* name, std::int64_t milli) {
      os << "    " << name << " "
         << bar(static_cast<double>(milli) / 2000.0, 20) << " "
         << milli << "m" << (milli > 1000 ? "  OVER" : "") << "\n";
    };
    const std::int64_t worst = std::max({mw, mt, fw, ft});
    os << "  bounds (x1000, window audit): "
       << (worst > 1000 ? "OVER BOUND" : "within bounds") << "\n";
    gauge("move work (Thm 4.9)", mw);
    gauge("move time (Thm 4.9)", mt);
    gauge("find work (Thm 5.2)", fw);
    gauge("find time (Thm 5.2)", ft);
  }

  if (f.header.has_lanes()) {
    render_lanes(os, f);
  }
}

/// CPU panel from a VSPROF1 sidecar: efficiency gauge plus one
/// self-time share bar per subsystem with recorded time. Integer math
/// only (milli-percent, whole microseconds), so the frame is a pure
/// function of the sidecar bytes — the golden test pins it.
void render_profile(std::ostream& os, const vs::obs::ProfileReport& rep) {
  os << "  cpu (profile): " << rep.total_ns / 1000 << "us self over "
     << rep.scopes << " scope(s), wall " << rep.wall_ns / 1000 << "us\n";
  if (rep.total_work > 0) {
    // Milli-ns per work, printed as a fixed-point ns/work figure.
    const std::uint64_t mnpw =
        rep.total_ns * 1000 / static_cast<std::uint64_t>(rep.total_work);
    os << "    efficiency " << mnpw / 1000 << "." << std::setw(3)
       << std::setfill('0') << mnpw % 1000 << std::setfill(' ')
       << " ns/work  (" << rep.total_work << " hop-work, " << rep.total_msgs
       << " msg(s))\n";
  } else {
    os << "    efficiency n/a (no paired hop-work)\n";
  }
  if (rep.total_ns == 0) return;
  for (std::size_t d = 0; d < vs::obs::kProfDomains; ++d) {
    const std::uint64_t self = rep.domain_self_ns[d];
    if (self == 0) continue;
    const std::uint64_t milli = self * 1000 / rep.total_ns;
    os << "    " << std::left << std::setw(14)
       << vs::obs::to_string(static_cast<vs::obs::ProfDomain>(d))
       << std::right << " "
       << bar(static_cast<double>(milli) / 1000.0, 20) << " " << std::setw(3)
       << milli / 10 << "." << milli % 10 << "%  " << self / 1000 << "us\n";
  }
}

/// Append the CPU panel for `profile_path` to the frame: the sidecar is
/// written atomically at run end, so "not there yet" is a live-mode state,
/// not an error.
void render_profile_panel(std::ostream& os, const std::string& profile_path) {
  try {
    render_profile(os, vs::obs::read_profile_file(profile_path));
  } catch (const vs::Error&) {
    os << "  cpu (profile): waiting for sidecar " << profile_path << "...\n";
  }
}

/// SLO panel from a VSSLO1 sidecar. Integer math only (whole microseconds,
/// milli budget, centi burn), so the frame is a pure function of the
/// sidecar bytes — the golden test pins it.
void render_slo(std::ostream& os, const vs::obs::SloReport& rep) {
  os << "  slo (" << (rep.wall_clock ? "wall" : "virtual")
     << " windows, t = " << rep.end_t_us << "us):\n";
  for (std::size_t c = 0; c < vs::obs::kSloClasses; ++c) {
    const auto& cs = rep.classes[c];
    if (cs.requests == 0 && cs.errors == 0) continue;
    os << "    " << std::left << std::setw(6)
       << vs::obs::to_string(static_cast<vs::obs::SloClass>(c)) << std::right
       << " " << cs.requests << " req, " << cs.errors << " err; latency us"
       << " p50=" << cs.latency.percentile(0.50) / 1000
       << " p99=" << cs.latency.percentile(0.99) / 1000 << "\n";
  }
  if (rep.find_ns_per_d.count() > 0) {
    os << "    find ns/d p99 = " << rep.find_ns_per_d.percentile(0.99)
       << "\n";
  }
  for (std::size_t i = 0; i < rep.objectives.size(); ++i) {
    const vs::obs::SloObjectiveState& o = rep.objectives[i];
    const std::int64_t budget = rep.budget_remaining_milli(i);
    // Gauge shows the burn in the long window; full scale = the slow
    // threshold x2, so the page-worthy line sits mid-bar.
    os << "    " << o.name << "\n      burn "
       << bar(static_cast<double>(o.burn_long_centi) / 1200.0, 20) << " "
       << "short " << o.burn_short_centi / 100 << "."
       << std::setw(2) << std::setfill('0') << o.burn_short_centi % 100
       << std::setfill(' ') << "x long " << o.burn_long_centi / 100 << "."
       << std::setw(2) << std::setfill('0') << o.burn_long_centi % 100
       << std::setfill(' ') << "x; budget " << budget / 10 << "."
       << budget % 10 << "% left" << (o.fired ? "  FIRED" : "") << "\n";
  }
  if (!rep.exemplars.empty()) {
    os << "    slowest:";
    for (const vs::obs::SloExemplar& e : rep.exemplars) {
      os << " "
         << vs::obs::to_string(static_cast<vs::obs::SloClass>(e.cls)) << "/"
         << e.latency_ns / 1000 << "us";
      if (e.op != 0) os << "(" << vs::obs::op_name(e.op) << ")";
    }
    os << "\n";
  }
}

/// Append the SLO panel for `slo_path` to the frame — same atomic-sidecar
/// "not there yet" semantics as the profile panel.
void render_slo_panel(std::ostream& os, const std::string& slo_path) {
  try {
    render_slo(os, vs::obs::read_slo_file(slo_path));
  } catch (const vs::Error&) {
    os << "  slo: waiting for sidecar " << slo_path << "...\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string path = argv[1];
  bool once = false;
  int interval_ms = 500;
  std::string profile_path;
  std::string slo_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slo") == 0 && i + 1 < argc) {
      slo_path = argv[++i];
    } else {
      return usage();
    }
  }
  try {
    for (;;) {
      const TelemetryFile f =
          vs::obs::read_telemetry_file(path, /*strict=*/false);
      if (once) {
        render(std::cout, path, f);
        if (!profile_path.empty()) {
          render_profile_panel(std::cout, profile_path);
        }
        if (!slo_path.empty()) {
          render_slo_panel(std::cout, slo_path);
        }
        return 0;
      }
      // Home + clear-to-end redraw (not full clear: no flicker).
      std::cout << "\x1b[H\x1b[J";
      render(std::cout, path, f);
      if (!profile_path.empty()) {
        render_profile_panel(std::cout, profile_path);
      }
      if (!slo_path.empty()) {
        render_slo_panel(std::cout, slo_path);
      }
      std::cout.flush();
      if (f.complete) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const vs::Error& e) {
    std::cerr << "vinestalk_top: " << e.what() << "\n";
    return 1;
  }
}
