// vinestalk_bench — the perf-trajectory runner and regression gate.
//
//   vinestalk_bench [--history=FILE] [--baseline=FILE] [--check] [--strict]
//                   [--update-baseline] [--tolerance=F] [--quick]
//
// Measures the canonical numbers for the box it runs on:
//  * serial_events_per_sec — the scheduler hot path (64 self-rescheduling
//    event chains, the BENCH_sched.json "serial" shape), best of three;
//  * walk_events_per_sec — the full protocol stack (81×81 base-3 world,
//    random-walk move+quiesce steps), best of three;
//  * profile_ns_per_work — the same walk under the CPU profiler, reported
//    as real nanoseconds per unit of Theorem-4.9 hop-work (0 when
//    profiling is compiled out);
//  * serve_updates_per_sec + serve_find_p50/p99_us — the daemon serving
//    path: an IngestServer driven at a sustained below-ladder update rate
//    with a deadline-bounded find RPC every few rounds, latencies measured
//    by a dogfooded obs::SloMonitor (the same spans `vinestalk_served
//    --slo` arms). Also written standalone as BENCH_serve.json.
//
// Every run appends one machine-stamped JSON line to the history file
// (default BENCH_history.jsonl) — the non-empty perf trajectory the repo
// lacked while BENCH_sched.json silently drifted 16.0M→12.7M events/sec
// across PRs with no machine metadata to tell regression from box change.
//
// --check compares the fresh measurement against the committed baseline
// (default docs/perf/BENCH_baseline.json) with a noise-aware tolerance:
// throughput must stay above baseline×(1−tol) and ns/work below
// baseline×(1+tol), tol defaulting to the baseline's own "tolerance"
// field (or 0.35 — single-core CI boxes are noisy). A baseline recorded
// on a different machine fingerprint (CPU model + cores + compiler +
// flags) is not comparable: the gate prints the mismatch and passes,
// unless --strict forces it to judge anyway. Exit 1 on regression, 2 on
// usage or unreadable files.
//
// --update-baseline rewrites the baseline from this run's measurement
// (commit it to move the reference point).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/machine_env.hpp"
#include "hier/grid_hierarchy.hpp"
#include "obs/profile/profiler.hpp"
#include "obs/slo/slo.hpp"
#include "serve/server.hpp"
#include "sim/scheduler.hpp"
#include "tracking/network.hpp"
#include "vsa/evader.hpp"

namespace {

using namespace vs;

int usage() {
  std::cerr
      << "usage: vinestalk_bench [--history=FILE] [--baseline=FILE]\n"
         "                       [--check] [--strict] [--update-baseline]\n"
         "                       [--tolerance=F] [--quick]\n";
  return 2;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// The BENCH_sched.json "serial" shape: 64 self-rescheduling chains of
// steady-state push/pop traffic. The capture fits EventAction's inline
// buffer, as all simulator events must.
struct Chain {
  sim::Scheduler& sched;
  std::uint64_t left;
  std::uint64_t jitter;
  void operator()() {
    if (--left > 0) {
      sched.schedule_after(
          sim::Duration::micros(static_cast<std::int64_t>(jitter % 977 + 1)),
          Chain{sched, left, jitter * 6364136223846793005ULL + 1});
    }
  }
};

double serial_events_per_sec(std::uint64_t total_events, int reps) {
  double best = 1e100;
  std::uint64_t fired = 0;
  for (int rep = 0; rep < reps; ++rep) {
    sim::Scheduler sched;
    constexpr std::uint64_t kChains = 64;
    for (std::uint64_t c = 0; c < kChains; ++c) {
      sched.schedule_after(
          sim::Duration::micros(static_cast<std::int64_t>(c)),
          Chain{sched, total_events / kChains, c + 1});
    }
    const auto t0 = std::chrono::steady_clock::now();
    sched.run();
    best = std::min(best, seconds_since(t0));
    fired = sched.events_fired();
  }
  return static_cast<double>(fired) / best;
}

struct WalkResult {
  double events_per_sec = 0;
  double ns_per_work = 0;
  std::uint64_t scopes = 0;
};

// The full-stack walk (the BM_MoveAndQuiesce shape): move an evader
// `steps` times through an 81×81 base-3 world, quiescing after each step.
// With `profiled`, the same walk runs under an enabled Profiler and the
// report's total_ns / total_work becomes the CPU-efficiency number.
WalkResult run_walk(int steps, int reps, bool profiled) {
  WalkResult out;
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    hier::GridHierarchy h(81, 81, 3);
    tracking::TrackingNetwork net(h, tracking::NetworkConfig{});
    obs::Profiler prof;
    if (profiled) {
      net.set_profiler(&prof);
      prof.enable();
    }
    const RegionId start = h.grid().region_at(40, 40);
    const TargetId t = net.add_evader(start);
    net.run_to_quiescence();
    vsa::RandomWalkMover mover(h.tiling(), 0xB7);
    RegionId cur = start;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < steps; ++i) {
      cur = mover.next(cur);
      net.move_evader(t, cur);
      net.run_to_quiescence();
    }
    const double secs = seconds_since(t0);
    if (secs < best) {
      best = secs;
      out.events_per_sec =
          static_cast<double>(net.scheduler().events_fired()) / secs;
      if (profiled) {
        prof.disable();
        const obs::ProfileReport rep_ = prof.report(
            net.counters().total_work(), net.counters().total_messages());
        out.ns_per_work = rep_.ns_per_work();
        out.scopes = rep_.scopes;
      }
    }
    net.set_profiler(nullptr);
  }
  return out;
}

struct ServeBenchResult {
  double updates_per_sec = 0;
  std::int64_t find_p50_us = 0;
  std::int64_t find_p99_us = 0;
  std::int64_t finds = 0;
};

// The daemon serving shape: a 27×27 base-3 world behind an IngestServer,
// driven at half the tier-1 watermark per round (so every update is
// applied — the sustained-throughput regime, no shedding), with a
// deadline-bounded find RPC every 8 rounds. Latencies come from a
// dogfooded SloMonitor: the identical spans `vinestalk_served --slo`
// opens, so these percentiles are what a daemon client would see.
ServeBenchResult run_serve_bench(int rounds, int reps) {
  ServeBenchResult out;
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    constexpr int kSide = 27;
    constexpr int kObjects = 4;
    hier::GridHierarchy h(kSide, kSide, 3);
    tracking::NetworkConfig ncfg;
    ncfg.model_vsa_failures = true;
    ncfg.t_restart = sim::Duration::millis(5);
    tracking::TrackingNetwork net(h, ncfg);
    serve::ServeConfig scfg;
    serve::IngestServer srv(net, h, scfg);
    obs::SloMonitor slo{obs::SloSpec{}};
    srv.set_slo(&slo);
    std::vector<std::pair<int, int>> pos;
    for (int i = 0; i < kObjects; ++i) {
      const int c = (i + 1) * kSide / (kObjects + 1);
      srv.add_object(h.grid().region_at(c, c));
      pos.emplace_back(c, c);
    }
    const std::int64_t per_round =
        static_cast<std::int64_t>(scfg.queue_capacity) * scfg.tier1_pm /
        2000 * static_cast<std::int64_t>(scfg.queues);
    std::uint64_t rng = 0xB7;
    const auto clamp_cell = [&](int v) {
      return std::max(0, std::min(kSide - 1, v));
    };
    std::int64_t offered = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
      for (std::int64_t i = 0; i < per_round; ++i) {
        const std::size_t obj = static_cast<std::size_t>(
            rng % static_cast<std::uint64_t>(kObjects));
        rng = rng * 6364136223846793005ULL + 1;
        auto& [x, y] = pos[obj];
        x = clamp_cell(x + static_cast<int>(rng % 3) - 1);
        y = clamp_cell(y + static_cast<int>((rng >> 8) % 3) - 1);
        (void)srv.offer(serve::UpdateFrame{
            static_cast<std::uint64_t>(obj), x, y});
        ++offered;
      }
      (void)srv.run_round();
      if ((r + 1) % 8 == 0) {
        (void)srv.find(h.grid().region_at(0, 0),
                       static_cast<std::uint64_t>(r / 8) % kObjects,
                       sim::Duration::micros(500'000));
      }
    }
    srv.finish();
    const double secs = seconds_since(t0);
    if (secs < best) {
      best = secs;
      const obs::SloReport rep_ = slo.report();
      const auto& finds =
          rep_.classes[static_cast<std::size_t>(obs::SloClass::kFind)];
      out.updates_per_sec = static_cast<double>(offered) / secs;
      out.find_p50_us = finds.latency.percentile(0.50) / 1000;
      out.find_p99_us = finds.latency.percentile(0.99) / 1000;
      out.finds = finds.requests;
    }
  }
  return out;
}

struct Measurement {
  double serial_events_per_sec = 0;
  double walk_events_per_sec = 0;
  double profile_ns_per_work = 0;
  std::uint64_t profile_scopes = 0;
  ServeBenchResult serve;
};

// --- minimal JSON field extraction (for the baseline, whose shape this
// tool itself writes) ------------------------------------------------------

double find_number(const std::string& json, const std::string& key,
                   double fallback) {
  const std::string needle = "\"" + key + "\":";
  const auto at = json.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

std::string find_string(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto at = json.find(needle);
  if (at == std::string::npos) return {};
  const auto start = at + needle.size();
  std::string out;
  for (auto i = start; i < json.size(); ++i) {
    if (json[i] == '\\' && i + 1 < json.size()) {
      out.push_back(json[++i]);
    } else if (json[i] == '"') {
      return out;
    } else {
      out.push_back(json[i]);
    }
  }
  return out;
}

std::string baseline_fingerprint(const std::string& json) {
  std::ostringstream os;
  os << find_string(json, "cpu_model") << "|"
     << static_cast<unsigned>(find_number(json, "cores", 0)) << "|"
     << find_string(json, "compiler") << "|"
     << find_string(json, "build_type") << "|"
     << find_string(json, "cxx_flags");
  return os.str();
}

// One compact (single-line) machine object for the history line: the
// pretty renderer's output with its layout whitespace folded away.
std::string compact_machine_json(const MachineEnv& env) {
  const std::string pretty = machine_env_json(env, 0);
  std::string out;
  std::istringstream is(pretty);
  std::string line;
  while (std::getline(is, line)) {
    const auto start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    out += line.substr(start);
  }
  return out;
}

void write_metrics_json(std::ostream& os, const Measurement& m,
                        const char* indent) {
  os << indent << "\"serial_events_per_sec\": "
     << static_cast<std::int64_t>(m.serial_events_per_sec) << ",\n"
     << indent << "\"walk_events_per_sec\": "
     << static_cast<std::int64_t>(m.walk_events_per_sec) << ",\n"
     << indent << "\"profile_ns_per_work\": " << m.profile_ns_per_work
     << ",\n"
     << indent << "\"profile_scopes\": " << m.profile_scopes << ",\n"
     << indent << "\"serve_updates_per_sec\": "
     << static_cast<std::int64_t>(m.serve.updates_per_sec) << ",\n"
     << indent << "\"serve_find_p50_us\": " << m.serve.find_p50_us << ",\n"
     << indent << "\"serve_find_p99_us\": " << m.serve.find_p99_us << ",\n"
     << indent << "\"serve_finds\": " << m.serve.finds << "\n";
}

bool append_history(const std::string& path, const MachineEnv& env,
                    const Measurement& m) {
  std::ofstream os(path, std::ios::app);
  if (!os.good()) {
    std::cerr << "vinestalk_bench: cannot append to " << path << "\n";
    return false;
  }
  os << "{\"machine\": " << compact_machine_json(env)
     << ", \"metrics\": {\"serial_events_per_sec\": "
     << static_cast<std::int64_t>(m.serial_events_per_sec)
     << ", \"walk_events_per_sec\": "
     << static_cast<std::int64_t>(m.walk_events_per_sec)
     << ", \"profile_ns_per_work\": " << m.profile_ns_per_work
     << ", \"profile_scopes\": " << m.profile_scopes
     << ", \"serve_updates_per_sec\": "
     << static_cast<std::int64_t>(m.serve.updates_per_sec)
     << ", \"serve_find_p50_us\": " << m.serve.find_p50_us
     << ", \"serve_find_p99_us\": " << m.serve.find_p99_us
     << ", \"serve_finds\": " << m.serve.finds << "}}\n";
  return os.good();
}

/// The standalone daemon-metrics artifact (BENCH_serve.json at the repo
/// root): the serve-path numbers with the full machine block, so the
/// daemon's throughput/latency story is fingerprinted the same way the
/// baseline is.
bool write_serve_json(const std::string& path, const MachineEnv& env,
                      const ServeBenchResult& s) {
  std::ofstream os(path, std::ios::trunc);
  if (!os.good()) {
    std::cerr << "vinestalk_bench: cannot write " << path << "\n";
    return false;
  }
  os << "{\n  \"machine\": " << machine_env_json(env, 2) << ",\n"
     << "  \"metrics\": {\n"
     << "    \"serve_updates_per_sec\": "
     << static_cast<std::int64_t>(s.updates_per_sec) << ",\n"
     << "    \"serve_find_p50_us\": " << s.find_p50_us << ",\n"
     << "    \"serve_find_p99_us\": " << s.find_p99_us << ",\n"
     << "    \"serve_finds\": " << s.finds << "\n  }\n}\n";
  return os.good();
}

bool write_baseline(const std::string& path, const MachineEnv& env,
                    const Measurement& m, double tolerance) {
  std::ofstream os(path, std::ios::trunc);
  if (!os.good()) {
    std::cerr << "vinestalk_bench: cannot write " << path << "\n";
    return false;
  }
  os << "{\n  \"machine\": " << machine_env_json(env, 2) << ",\n"
     << "  \"tolerance\": " << tolerance << ",\n"
     << "  \"metrics\": {\n";
  write_metrics_json(os, m, "    ");
  os << "  }\n}\n";
  return os.good();
}

/// One gate row: true when the metric regressed past the tolerance.
/// `higher_is_better` selects the direction; a zero baseline or zero
/// current value skips the row (metric absent, e.g. profiling compiled
/// out).
bool gate_row(const char* name, double baseline, double current,
              double tolerance, bool higher_is_better) {
  if (baseline <= 0 || current <= 0) {
    std::printf("  %-26s baseline absent — skipped\n", name);
    return false;
  }
  const double ratio = current / baseline;
  const bool regressed = higher_is_better ? ratio < 1.0 - tolerance
                                          : ratio > 1.0 + tolerance;
  std::printf("  %-26s baseline %14.0f  current %14.0f  ratio %.3f%s\n",
              name, baseline, current, ratio,
              regressed ? "  REGRESSED" : "");
  return regressed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string history_path = "BENCH_history.jsonl";
  std::string baseline_path = "docs/perf/BENCH_baseline.json";
  bool check = false;
  bool strict = false;
  bool update_baseline = false;
  bool quick = false;
  double tolerance_override = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--history=", 0) == 0) {
      history_path = arg.substr(10);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance_override = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg == "--quick") {
      quick = true;
    } else {
      return usage();
    }
  }

  const MachineEnv env = collect_machine_env();
  std::printf("vinestalk_bench: %s, %u core(s), %s, %s%s\n",
              env.cpu_model.c_str(), env.cores, env.compiler.c_str(),
              env.git_sha.substr(0, 12).c_str(), quick ? " (quick)" : "");

  const int reps = quick ? 1 : 3;
  Measurement m;
  m.serial_events_per_sec =
      serial_events_per_sec(quick ? 200'000 : 1'000'000, reps);
  const WalkResult plain = run_walk(quick ? 30 : 100, reps, false);
  m.walk_events_per_sec = plain.events_per_sec;
  const WalkResult profiled = run_walk(quick ? 30 : 100, reps, true);
  m.profile_ns_per_work = profiled.ns_per_work;
  m.profile_scopes = profiled.scopes;
  m.serve = run_serve_bench(quick ? 48 : 240, reps);

  std::printf("  serial:   %.0f events/sec\n", m.serial_events_per_sec);
  std::printf("  walk:     %.0f events/sec\n", m.walk_events_per_sec);
  if (obs::kProfileCompiled) {
    std::printf("  profiled: %.1f ns per unit hop-work (%llu scopes)\n",
                m.profile_ns_per_work,
                static_cast<unsigned long long>(m.profile_scopes));
  } else {
    std::printf("  profiled: (profiling compiled out)\n");
  }
  std::printf("  serve:    %.0f sustained updates/sec; find p50 %lld us, "
              "p99 %lld us over %lld find(s)\n",
              m.serve.updates_per_sec,
              static_cast<long long>(m.serve.find_p50_us),
              static_cast<long long>(m.serve.find_p99_us),
              static_cast<long long>(m.serve.finds));

  if (!append_history(history_path, env, m)) return 2;
  std::printf("appended history entry to %s\n", history_path.c_str());
  if (!write_serve_json("BENCH_serve.json", env, m.serve)) return 2;
  std::printf("wrote BENCH_serve.json\n");

  if (update_baseline) {
    const double tol = tolerance_override > 0 ? tolerance_override : 0.35;
    if (!write_baseline(baseline_path, env, m, tol)) return 2;
    std::printf("wrote baseline %s (tolerance %.2f)\n",
                baseline_path.c_str(), tol);
  }

  if (!check) return 0;

  std::ifstream in(baseline_path);
  if (!in.good()) {
    std::cerr << "vinestalk_bench: cannot read baseline " << baseline_path
              << "\n";
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string baseline = ss.str();

  const double tol = tolerance_override > 0
                         ? tolerance_override
                         : find_number(baseline, "tolerance", 0.35);
  const std::string base_fp = baseline_fingerprint(baseline);
  if (base_fp != env.fingerprint()) {
    std::printf("baseline fingerprint differs from this machine:\n"
                "  baseline: %s\n  current:  %s\n",
                base_fp.c_str(), env.fingerprint().c_str());
    if (!strict) {
      std::printf("numbers are not comparable — gate skipped "
                  "(run --update-baseline on this box, or --strict to "
                  "judge anyway)\n");
      return 0;
    }
  }

  std::printf("regression gate (tolerance %.2f):\n", tol);
  bool regressed = false;
  regressed |= gate_row("serial_events_per_sec",
                        find_number(baseline, "serial_events_per_sec", 0),
                        m.serial_events_per_sec, tol, true);
  regressed |= gate_row("walk_events_per_sec",
                        find_number(baseline, "walk_events_per_sec", 0),
                        m.walk_events_per_sec, tol, true);
  regressed |= gate_row("profile_ns_per_work",
                        find_number(baseline, "profile_ns_per_work", 0),
                        m.profile_ns_per_work, tol, false);
  std::printf("%s\n", regressed ? "REGRESSION DETECTED" : "within tolerance");
  return regressed ? 1 : 0;
}
