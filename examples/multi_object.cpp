// Tracking several mobile objects at once (paper §VII extension).
//
// Every Tracker keeps independent pointer state per TargetId, so one VSA
// network tracks a whole fleet. This example tracks three objects moving
// with different strategies, then answers interleaved finds for each and
// prints the per-object structure cost.

#include <iostream>

#include "hier/grid_hierarchy.hpp"
#include "spec/consistency.hpp"
#include "tracking/network.hpp"
#include "vsa/evader.hpp"

int main() {
  using namespace vs;
  hier::GridHierarchy hierarchy(27, 27, 3);
  tracking::TrackingNetwork net(hierarchy, tracking::NetworkConfig{});
  const auto& grid = hierarchy.grid();

  const TargetId walker = net.add_evader(grid.region_at(3, 3));
  const TargetId commuter = net.add_evader(grid.region_at(13, 13));
  const TargetId sleeper = net.add_evader(grid.region_at(24, 22));
  net.run_to_quiescence();

  vsa::RandomWalkMover walk(hierarchy.tiling(), 0xF00D);
  vsa::WaypointMover commute(grid, 0xCAFE);

  RegionId walker_at = grid.region_at(3, 3);
  RegionId commuter_at = grid.region_at(13, 13);
  for (int step = 0; step < 40; ++step) {
    walker_at = walk.next(walker_at);
    net.move_evader(walker, walker_at);
    commuter_at = commute.next(commuter_at);
    net.move_evader(commuter, commuter_at);
    net.run_to_quiescence();  // sleeper never moves
  }
  std::cout << "after 40 steps each: walker at "
            << hierarchy.tiling().describe(walker_at) << ", commuter at "
            << hierarchy.tiling().describe(commuter_at)
            << ", sleeper never moved\n";

  // Interleaved finds for all three from one corner.
  const RegionId origin = grid.region_at(0, 26);
  const FindId f1 = net.start_find(origin, walker);
  const FindId f2 = net.start_find(origin, commuter);
  const FindId f3 = net.start_find(origin, sleeper);
  net.run_to_quiescence();
  for (const auto& [name, f] :
       {std::pair{"walker", f1}, {"commuter", f2}, {"sleeper", f3}}) {
    const auto& r = net.find_result(f);
    std::cout << "find(" << name << ") → "
              << hierarchy.tiling().describe(r.found_region) << " in "
              << r.latency() << ", " << r.work << " hop-work\n";
  }

  // Each object's structure is independently a consistent tracking path.
  bool all_ok = true;
  for (const auto& [name, t, at] :
       {std::tuple{"walker", walker, walker_at},
        {"commuter", commuter, commuter_at},
        {"sleeper", sleeper, grid.region_at(24, 22)}}) {
    const bool ok = spec::check_consistent(net.snapshot(t), at).ok();
    std::cout << name << " structure consistent: " << (ok ? "yes" : "NO")
              << "\n";
    all_ok = all_ok && ok;
  }
  return all_ok ? 0 : 1;
}
