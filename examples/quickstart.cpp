// Quickstart: build a world, track an evader, run a find.
//
// This is the smallest end-to-end use of the public API:
//   1. construct a base-r grid hierarchy (the paper's §II-B example);
//   2. assemble a TrackingNetwork over it (VSA layer + VINESTALK trackers);
//   3. register a mobile object; every relocation triggers grow/shrink
//      updates to the distributed tracking path;
//   4. inject a find from any region; it completes with a found output at
//      the evader's region.
//
// Set VS_TRACE=<path> to record the whole run as a VSTRACE1 trace file and
// inspect it offline:  vinestalk_trace summary <path>   (or spans/check).
// Set VS_MONITOR=every or VS_MONITOR=<cadence-us> to run the whole thing
// under the live invariant watchdog; any violation makes the exit status
// nonzero.
// Set VS_SHARDS=<n> to run the world on n region shards (conservative
// PDES). Output, trace and exit status are byte-identical to the serial
// run at every shard count — that is the scheduler's core guarantee —
// so this knob deliberately prints nothing.
// Set VS_TELEMETRY=<path> to stream VSTELEM1 time-series samples (one per
// virtual millisecond) while the run executes: tail with vinestalk_top,
// or dump with vinestalk_trace telemetry <path> --csv. The stream too is
// byte-identical at every VS_SHARDS value. VS_PROMETHEUS=<path>
// additionally rewrites a Prometheus text-exposition snapshot at every
// sample (requires VS_TELEMETRY).
// Set VS_PROFILE=<path> to record a wall-clock CPU profile of the run:
// <path> gets the binary VSPROF1 sidecar and <path>.json its JSON twin
// (vinestalk_trace flame <path> renders a flamegraph). Profile values are
// nondeterministic by nature, so — like VS_SHARDS — this knob prints
// nothing and changes no deterministic artifact: trace, telemetry,
// incidents, and stdout are byte-identical with and without it.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "hier/grid_hierarchy.hpp"
#include "obs/monitor/watchdog.hpp"
#include "obs/profile/profile_io.hpp"
#include "obs/profile/profiler.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "obs/trace_io.hpp"
#include "spec/consistency.hpp"
#include "tracking/network.hpp"

int main() {
  using namespace vs;
  const char* trace_path = std::getenv("VS_TRACE");
  const char* monitor_spec = std::getenv("VS_MONITOR");
  const char* shards_spec = std::getenv("VS_SHARDS");
  const char* telemetry_path = std::getenv("VS_TELEMETRY");
  const char* prometheus_path = std::getenv("VS_PROMETHEUS");
  const char* profile_path = std::getenv("VS_PROFILE");

  // A 27x27 world of unit regions, clustered into a base-3 grid hierarchy
  // (levels 0..3, one top-level cluster).
  hier::GridHierarchy hierarchy(27, 27, 3);
  std::cout << "world: 27x27 regions, diameter " << hierarchy.tiling().diameter()
            << ", MAX level " << hierarchy.max_level() << ", "
            << hierarchy.num_clusters() << " clusters\n";

  // The tracking network wires up one VSA per region, one Tracker per
  // cluster, the C-gcast service, and one client per region.
  tracking::TrackingNetwork net(hierarchy, tracking::NetworkConfig{});
  if (shards_spec != nullptr && std::atoi(shards_spec) > 1) {
    net.set_shards(std::atoi(shards_spec));
  }
  if (trace_path != nullptr) net.set_tracing(true);
  std::unique_ptr<obs::Profiler> profiler;
  if (profile_path != nullptr) {
    profiler = std::make_unique<obs::Profiler>();
    net.set_profiler(profiler.get());
    profiler->enable();
  }
  std::unique_ptr<obs::TelemetrySampler> telemetry;
  if (telemetry_path != nullptr) {
    obs::TelemetryConfig tcfg;
    tcfg.cadence = sim::Duration::millis(1);
    tcfg.stream_path = telemetry_path;
    if (prometheus_path != nullptr) tcfg.prometheus_path = prometheus_path;
    telemetry = std::make_unique<obs::TelemetrySampler>(net, tcfg);
    telemetry->enable();
  }

  // Drop the evader at (20, 6). Clients there broadcast the detection; the
  // tracking path grows from the region's level-0 cluster to the root.
  const RegionId start = hierarchy.grid().region_at(20, 6);
  const TargetId evader = net.add_evader(start);
  net.run_to_quiescence();

  // Optional: watch the run live. The watchdog re-checks Lemmas 4.1–4.3,
  // the consistent-state predicate and lookAhead agreement as the
  // simulation executes, keeping a ring of recent events for incidents.
  std::unique_ptr<obs::Watchdog> watchdog;
  if (monitor_spec != nullptr) {
    obs::WatchdogConfig wcfg = obs::parse_watch_spec(monitor_spec);
    wcfg.source = "quickstart";
    watchdog = std::make_unique<obs::Watchdog>(net, evader, wcfg);
    std::cout << "watchdog: " << obs::to_string(wcfg.mode) << " mode\n";
  }
  std::cout << "evader placed at " << hierarchy.tiling().describe(start)
            << "; initial path built ("
            << net.counters().move_messages() << " messages)\n";

  // Move it a few steps; each step is a grow at the new region plus a
  // shrink cleaning the deserted branch.
  for (const auto& [x, y] : {std::pair{21, 6}, {22, 7}, {23, 8}, {24, 8}}) {
    net.move_evader(evader, hierarchy.grid().region_at(x, y));
    net.run_to_quiescence();
  }
  std::cout << "after 4 moves: " << net.counters().move_work()
            << " total hop-work spent on structure updates\n";

  // Find the evader from the far corner.
  const FindId find = net.start_find(hierarchy.grid().region_at(0, 26), evader);
  net.run_to_quiescence();
  const auto& result = net.find_result(find);
  std::cout << "find from (0,26): found at "
            << hierarchy.tiling().describe(result.found_region) << " after "
            << result.latency() << " using " << result.work << " hop-work\n";

  // The distributed state really is the paper's consistent state: one
  // tracking path from the root to the evader, nothing else.
  const auto report =
      spec::check_consistent(net.snapshot(evader), result.found_region);
  std::cout << "consistent state: " << (report.ok() ? "yes" : "NO") << "; path ";
  for (const ClusterId c : report.path) {
    std::cout << c << (c == report.path.back() ? "\n" : " → ");
  }

  if (trace_path != nullptr) {
    obs::write_trace_file(trace_path, net.trace());
    std::cout << "trace: " << net.trace().size() << " events → " << trace_path
              << " (find id " << find.value() << ")\n";
  }
  if (telemetry != nullptr) {
    telemetry->finish();
    std::cout << "telemetry: " << telemetry->samples_taken() << " samples → "
              << telemetry_path << "\n";
  }
  if (profiler != nullptr) {
    profiler->disable();
    // Pair the CPU time with the run's virtual cost. No OpLedger is
    // attached here: doing so implicitly would change the telemetry
    // stream's ledger series, breaking VS_PROFILE's no-observable-effect
    // contract.
    const obs::ProfileReport rep = profiler->report(
        net.counters().total_work(), net.counters().total_messages());
    obs::write_profile_file(profile_path, rep);
    std::ofstream js(std::string(profile_path) + ".json");
    obs::profile_to_json(js, rep);
  }
  if (watchdog != nullptr) {
    watchdog->check_now();
    std::cout << "watchdog: " << watchdog->checks_run() << " checks, "
              << watchdog->violations_seen() << " violations\n";
    if (!watchdog->ok()) return 1;
  }
  return report.ok() ? 0 : 1;
}
