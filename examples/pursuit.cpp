// Pursuer-evader games on VINESTALK (paper §VII, cf. [5], [15]).
//
// Two evaders random-walk over a 27x27 world while two pursuers hunt them.
// A command center (a data-repository VSA in the paper's sketch) assigns
// each pursuer to the nearest uncaught evader so pursuits do not overlap;
// pursuers repeatedly issue finds through the tracking structure and step
// toward each answer at twice the evader speed.

#include <iostream>

#include "ext/pursuit.hpp"
#include "hier/grid_hierarchy.hpp"
#include "tracking/network.hpp"
#include "vsa/evader.hpp"

int main() {
  using namespace vs;
  hier::GridHierarchy hierarchy(27, 27, 3);
  tracking::TrackingNetwork net(hierarchy, tracking::NetworkConfig{});

  const TargetId rabbit = net.add_evader(hierarchy.grid().region_at(4, 22));
  const TargetId fox = net.add_evader(hierarchy.grid().region_at(22, 4));
  net.run_to_quiescence();

  vsa::RandomWalkMover rabbit_moves(hierarchy.tiling(), 2024);
  vsa::RandomWalkMover fox_moves(hierarchy.tiling(), 2025);

  ext::PursuitConfig cfg;
  cfg.pursuer_speed = 2;
  ext::PursuitCoordinator coordinator(net, hierarchy, cfg);
  coordinator.add_pursuer(hierarchy.grid().region_at(13, 13));
  coordinator.add_pursuer(hierarchy.grid().region_at(0, 0));
  coordinator.add_target(rabbit, &rabbit_moves);
  coordinator.add_target(fox, &fox_moves);

  std::cout << "two pursuers (speed 2) vs two random-walking evaders "
               "(speed 1), 27x27 world\n";
  const auto outcome = coordinator.run();

  std::cout << (outcome.all_caught ? "all evaders overtaken"
                                   : "pursuit round limit reached")
            << " after " << outcome.rounds << " rounds ("
            << outcome.elapsed << " of virtual time)\n";
  for (std::size_t i = 0; i < outcome.caught_round.size(); ++i) {
    std::cout << "  target " << i << " caught in round "
              << outcome.caught_round[i] << "\n";
  }
  std::cout << "find traffic: " << outcome.find_messages << " messages, "
            << outcome.find_work << " hop-work\n";
  return outcome.all_caught ? 0 : 1;
}
