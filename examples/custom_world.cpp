// Using the library beyond the grid: the 1-D strip hierarchy, custom timer
// policies, and the executable specification as a debugging oracle.
//
// The cluster model of §II-B is geometry-agnostic; anything providing the
// ClusterHierarchy interface (with axiom-respecting n, p, q, ω) can host
// VINESTALK. This example runs the tracker over a strip world with a
// custom (slower) timer policy, validates the hierarchy axioms at startup,
// and cross-checks the live system against the atomic-move specification.

#include <iostream>

#include "hier/strip_hierarchy.hpp"
#include "hier/validator.hpp"
#include "spec/atomic_spec.hpp"
#include "spec/look_ahead.hpp"
#include "tracking/network.hpp"

int main() {
  using namespace vs;

  // A corridor of 81 regions, clustered in base-3 runs.
  hier::StripHierarchy hierarchy(81, 3);
  std::cout << "strip world: 81 regions, MAX level " << hierarchy.max_level()
            << ", ω(l) = " << hierarchy.omega(1) << "\n";

  // The constructors declare the geometry functions; verify the §II-B
  // axioms hold before trusting any complexity bound.
  const auto validation = hier::Validator(hierarchy).validate_all();
  std::cout << "hierarchy axioms: "
            << (validation.ok() ? "all hold" : validation.to_string()) << "\n";

  // A custom timer policy: twice the paper-default shrink slack. Policies
  // are validated against inequality (1) at network construction.
  tracking::NetworkConfig cfg;
  tracking::TimerPolicy timers;
  const auto de = cfg.cgcast.delta + cfg.cgcast.e;
  timers.grow = [de](Level) { return de; };
  timers.shrink = [de, &hierarchy](Level l) {
    return de + de * (2 * (hierarchy.n(l) + 1));
  };
  cfg.timers = timers;
  tracking::TrackingNetwork net(hierarchy, cfg);

  // Track, and mirror every move in the atomic specification.
  const RegionId start{40};
  const TargetId evader = net.add_evader(start);
  net.run_to_quiescence();
  spec::AtomicSpec oracle(hierarchy);
  oracle.init(start);

  RegionId cur = start;
  for (int step = 0; step < 25; ++step) {
    const RegionId next{cur.value() + (step % 5 == 4 ? -1 : 1)};
    net.move_evader(evader, next);
    net.run_to_quiescence();
    oracle.apply_move(next);
    cur = next;
  }
  const bool match =
      spec::equal_states(net.snapshot(evader).trackers, oracle.state());
  std::cout << "25 moves replayed; distributed state "
            << (match ? "matches" : "DIVERGES from")
            << " the atomic-move specification (Theorem 4.8)\n";

  const FindId find = net.start_find(RegionId{0}, evader);
  net.run_to_quiescence();
  std::cout << "find from region 0 → region "
            << net.find_result(find).found_region << " ("
            << net.find_result(find).work << " hop-work)\n";
  return match ? 0 : 1;
}
