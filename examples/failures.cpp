// VSA failures, restarts, and heartbeat-style repair (paper §II-C, §VII).
//
// VSAs are emulated by the clients in their regions: when emulators crash,
// the VSA fails and its Tracker processes lose their state; when clients
// stay for t_restart, it restarts from the initial state. This example
// breaks the tracking path by failing the VSAs that host it, shows that
// finds still route (or stall) accordingly, and lets the ext::Stabilizer
// repair the structure with ordinary protocol messages.

#include <iostream>

#include "ext/stabilizer.hpp"
#include "hier/grid_hierarchy.hpp"
#include "spec/consistency.hpp"
#include "tracking/network.hpp"

int main() {
  using namespace vs;
  hier::GridHierarchy hierarchy(27, 27, 3);
  tracking::NetworkConfig cfg;
  cfg.model_vsa_failures = true;
  cfg.t_restart = sim::Duration::millis(5);
  tracking::TrackingNetwork net(hierarchy, cfg);

  const RegionId home = hierarchy.grid().region_at(7, 19);
  const TargetId evader = net.add_evader(home);
  net.run_to_quiescence();
  std::cout << "tracking path built to " << hierarchy.tiling().describe(home)
            << "\n";

  // Knock out the VSAs hosting the evader's level-0 and level-1 cluster
  // processes. Their tracker state is wiped; in-flight messages to them
  // are dropped.
  for (Level l = 0; l <= 1; ++l) {
    const RegionId host = hierarchy.head(hierarchy.cluster_of(home, l));
    net.fail_vsa(host);
    std::cout << "failed VSA at region " << hierarchy.tiling().describe(host)
              << " (hosted the level-" << l << " cluster process)\n";
  }
  net.run_to_quiescence();  // restarts happen (clients never left)
  std::cout << "VSAs restarted from initial state; structure is "
            << (spec::check_consistent(net.snapshot(evader), home).ok()
                    ? "consistent (?)"
                    : "broken, as expected")
            << "\n";

  // Heartbeat repair: detection refresh from the evader's clients plus
  // re-sent grow/shrink/shrinkUpd messages where links no longer match.
  ext::Stabilizer stabilizer(net, evader, sim::Duration::millis(500));
  int ticks = 0;
  while (!spec::check_consistent(net.snapshot(evader), home).ok()) {
    stabilizer.tick_once();
    net.run_to_quiescence();
    ++ticks;
    if (ticks > 10) break;
  }
  std::cout << "stabilizer repaired the structure in " << ticks
            << " tick(s) using " << stabilizer.repairs()
            << " repair messages\n";

  const FindId find =
      net.start_find(hierarchy.grid().region_at(26, 0), evader);
  net.run_to_quiescence();
  const auto& result = net.find_result(find);
  std::cout << "find from (26,0): "
            << (result.done ? "found at " +
                                  hierarchy.tiling().describe(result.found_region)
                            : std::string("NOT answered"))
            << "\n";
  return result.done && result.found_region == home ? 0 : 1;
}
