// The dithering problem, and how lateral links solve it (paper §IV-B).
//
// An evader oscillates between two regions that sit on opposite sides of
// the *highest interior* cluster boundary. Without lateral links (the
// STALK-style restriction), each oscillation climbs to the top of the
// hierarchy: work proportional to network size. VINESTALK connects the new
// leaf sideways to the old path instead, paying a constant per step. This
// example runs both variants side by side and prints what each step cost.

#include <iostream>

#include "hier/grid_hierarchy.hpp"
#include "tracking/network.hpp"

namespace {

void run_variant(bool lateral_links) {
  using namespace vs;
  hier::GridHierarchy hierarchy(81, 81, 3);
  tracking::NetworkConfig cfg;
  cfg.lateral_links = lateral_links;
  tracking::TrackingNetwork net(hierarchy, cfg);

  // x = 26|27 is a level-3 boundary: the two regions share no cluster
  // below the root.
  const RegionId a = hierarchy.grid().region_at(26, 40);
  const RegionId b = hierarchy.grid().region_at(27, 40);
  const TargetId evader = net.add_evader(a);
  net.run_to_quiescence();

  std::cout << (lateral_links ? "VINESTALK (lateral links on)"
                              : "no-lateral variant (always climb)")
            << ":\n  step:";
  RegionId cur = a;
  std::int64_t last = net.counters().move_work();
  std::int64_t total = 0;
  for (int i = 1; i <= 10; ++i) {
    cur = cur == a ? b : a;
    net.move_evader(evader, cur);
    net.run_to_quiescence();
    const auto now = net.counters().move_work();
    std::cout << " " << (now - last);
    total += now - last;
    last = now;
  }
  std::cout << "  (hop-work per oscillation; total " << total << ")\n";
}

}  // namespace

int main() {
  std::cout << "evader oscillating across the level-3 boundary x = 26|27 of "
               "an 81x81 base-3 world\n\n";
  run_variant(true);
  run_variant(false);
  std::cout << "\nLateral links keep every oscillation constant (the new "
               "leaf connects sideways to\nits neighbour on the path), while "
               "the climb-only variant rebuilds and tears down\na full-height "
               "branch every single step — the §IV-B dithering problem.\n";
  return 0;
}
