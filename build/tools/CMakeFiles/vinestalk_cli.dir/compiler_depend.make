# Empty compiler generated dependencies file for vinestalk_cli.
# This may be replaced when dependencies are built.
