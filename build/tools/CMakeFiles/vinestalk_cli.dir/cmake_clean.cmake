file(REMOVE_RECURSE
  "CMakeFiles/vinestalk_cli.dir/vinestalk_cli.cpp.o"
  "CMakeFiles/vinestalk_cli.dir/vinestalk_cli.cpp.o.d"
  "vinestalk_cli"
  "vinestalk_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vinestalk_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
