file(REMOVE_RECURSE
  "CMakeFiles/example_multi_object.dir/multi_object.cpp.o"
  "CMakeFiles/example_multi_object.dir/multi_object.cpp.o.d"
  "example_multi_object"
  "example_multi_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
