# Empty compiler generated dependencies file for example_multi_object.
# This may be replaced when dependencies are built.
