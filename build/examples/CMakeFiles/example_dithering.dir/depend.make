# Empty dependencies file for example_dithering.
# This may be replaced when dependencies are built.
