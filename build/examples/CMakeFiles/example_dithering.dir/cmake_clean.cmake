file(REMOVE_RECURSE
  "CMakeFiles/example_dithering.dir/dithering.cpp.o"
  "CMakeFiles/example_dithering.dir/dithering.cpp.o.d"
  "example_dithering"
  "example_dithering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dithering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
