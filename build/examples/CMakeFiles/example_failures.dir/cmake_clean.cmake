file(REMOVE_RECURSE
  "CMakeFiles/example_failures.dir/failures.cpp.o"
  "CMakeFiles/example_failures.dir/failures.cpp.o.d"
  "example_failures"
  "example_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
