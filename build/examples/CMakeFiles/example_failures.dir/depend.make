# Empty dependencies file for example_failures.
# This may be replaced when dependencies are built.
