# Empty dependencies file for example_custom_world.
# This may be replaced when dependencies are built.
