file(REMOVE_RECURSE
  "CMakeFiles/example_custom_world.dir/custom_world.cpp.o"
  "CMakeFiles/example_custom_world.dir/custom_world.cpp.o.d"
  "example_custom_world"
  "example_custom_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
