# Empty compiler generated dependencies file for example_pursuit.
# This may be replaced when dependencies are built.
