file(REMOVE_RECURSE
  "CMakeFiles/example_pursuit.dir/pursuit.cpp.o"
  "CMakeFiles/example_pursuit.dir/pursuit.cpp.o.d"
  "example_pursuit"
  "example_pursuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pursuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
