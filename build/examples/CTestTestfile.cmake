# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.custom_world "/root/repo/build/examples/example_custom_world")
set_tests_properties(example.custom_world PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.dithering "/root/repo/build/examples/example_dithering")
set_tests_properties(example.dithering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.failures "/root/repo/build/examples/example_failures")
set_tests_properties(example.failures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.multi_object "/root/repo/build/examples/example_multi_object")
set_tests_properties(example.multi_object PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.pursuit "/root/repo/build/examples/example_pursuit")
set_tests_properties(example.pursuit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
