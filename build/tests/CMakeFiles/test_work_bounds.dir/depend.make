# Empty dependencies file for test_work_bounds.
# This may be replaced when dependencies are built.
