file(REMOVE_RECURSE
  "CMakeFiles/test_work_bounds.dir/test_work_bounds.cpp.o"
  "CMakeFiles/test_work_bounds.dir/test_work_bounds.cpp.o.d"
  "test_work_bounds"
  "test_work_bounds.pdb"
  "test_work_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_work_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
