file(REMOVE_RECURSE
  "CMakeFiles/test_vsa_layer.dir/test_vsa_layer.cpp.o"
  "CMakeFiles/test_vsa_layer.dir/test_vsa_layer.cpp.o.d"
  "test_vsa_layer"
  "test_vsa_layer.pdb"
  "test_vsa_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vsa_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
