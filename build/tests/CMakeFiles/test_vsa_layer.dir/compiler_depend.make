# Empty compiler generated dependencies file for test_vsa_layer.
# This may be replaced when dependencies are built.
