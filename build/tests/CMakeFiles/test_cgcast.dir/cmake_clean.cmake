file(REMOVE_RECURSE
  "CMakeFiles/test_cgcast.dir/test_cgcast.cpp.o"
  "CMakeFiles/test_cgcast.dir/test_cgcast.cpp.o.d"
  "test_cgcast"
  "test_cgcast.pdb"
  "test_cgcast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cgcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
