# Empty compiler generated dependencies file for test_cgcast.
# This may be replaced when dependencies are built.
