# Empty compiler generated dependencies file for test_common_extras.
# This may be replaced when dependencies are built.
