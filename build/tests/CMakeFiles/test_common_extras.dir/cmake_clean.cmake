file(REMOVE_RECURSE
  "CMakeFiles/test_common_extras.dir/test_common_extras.cpp.o"
  "CMakeFiles/test_common_extras.dir/test_common_extras.cpp.o.d"
  "test_common_extras"
  "test_common_extras.pdb"
  "test_common_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
