file(REMOVE_RECURSE
  "CMakeFiles/test_strip_tracking.dir/test_strip_tracking.cpp.o"
  "CMakeFiles/test_strip_tracking.dir/test_strip_tracking.cpp.o.d"
  "test_strip_tracking"
  "test_strip_tracking.pdb"
  "test_strip_tracking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strip_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
