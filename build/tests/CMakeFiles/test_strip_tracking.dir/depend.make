# Empty dependencies file for test_strip_tracking.
# This may be replaced when dependencies are built.
