# Empty compiler generated dependencies file for test_tracker_unit.
# This may be replaced when dependencies are built.
