file(REMOVE_RECURSE
  "CMakeFiles/test_tracker_unit.dir/test_tracker_unit.cpp.o"
  "CMakeFiles/test_tracker_unit.dir/test_tracker_unit.cpp.o.d"
  "test_tracker_unit"
  "test_tracker_unit.pdb"
  "test_tracker_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracker_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
