# Empty dependencies file for test_timer_policy.
# This may be replaced when dependencies are built.
