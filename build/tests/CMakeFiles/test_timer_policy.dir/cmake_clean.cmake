file(REMOVE_RECURSE
  "CMakeFiles/test_timer_policy.dir/test_timer_policy.cpp.o"
  "CMakeFiles/test_timer_policy.dir/test_timer_policy.cpp.o.d"
  "test_timer_policy"
  "test_timer_policy.pdb"
  "test_timer_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timer_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
