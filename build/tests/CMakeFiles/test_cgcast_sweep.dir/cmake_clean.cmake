file(REMOVE_RECURSE
  "CMakeFiles/test_cgcast_sweep.dir/test_cgcast_sweep.cpp.o"
  "CMakeFiles/test_cgcast_sweep.dir/test_cgcast_sweep.cpp.o.d"
  "test_cgcast_sweep"
  "test_cgcast_sweep.pdb"
  "test_cgcast_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cgcast_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
