# Empty compiler generated dependencies file for test_cgcast_sweep.
# This may be replaced when dependencies are built.
