# Empty dependencies file for test_pursuit.
# This may be replaced when dependencies are built.
