file(REMOVE_RECURSE
  "CMakeFiles/test_pursuit.dir/test_pursuit.cpp.o"
  "CMakeFiles/test_pursuit.dir/test_pursuit.cpp.o.d"
  "test_pursuit"
  "test_pursuit.pdb"
  "test_pursuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pursuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
