
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_self_stabilization.cpp" "tests/CMakeFiles/test_self_stabilization.dir/test_self_stabilization.cpp.o" "gcc" "tests/CMakeFiles/test_self_stabilization.dir/test_self_stabilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/vs_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/vs_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/tracking/CMakeFiles/vs_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/vsa/CMakeFiles/vs_vsa.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/vs_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
