# Empty dependencies file for test_self_stabilization.
# This may be replaced when dependencies are built.
