file(REMOVE_RECURSE
  "CMakeFiles/test_self_stabilization.dir/test_self_stabilization.cpp.o"
  "CMakeFiles/test_self_stabilization.dir/test_self_stabilization.cpp.o.d"
  "test_self_stabilization"
  "test_self_stabilization.pdb"
  "test_self_stabilization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_self_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
