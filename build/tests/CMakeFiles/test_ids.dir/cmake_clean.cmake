file(REMOVE_RECURSE
  "CMakeFiles/test_ids.dir/test_ids.cpp.o"
  "CMakeFiles/test_ids.dir/test_ids.cpp.o.d"
  "test_ids"
  "test_ids.pdb"
  "test_ids[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
