# Empty compiler generated dependencies file for test_spec_unit.
# This may be replaced when dependencies are built.
