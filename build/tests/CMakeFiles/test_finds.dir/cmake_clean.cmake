file(REMOVE_RECURSE
  "CMakeFiles/test_finds.dir/test_finds.cpp.o"
  "CMakeFiles/test_finds.dir/test_finds.cpp.o.d"
  "test_finds"
  "test_finds.pdb"
  "test_finds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
