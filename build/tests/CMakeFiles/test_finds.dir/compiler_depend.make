# Empty compiler generated dependencies file for test_finds.
# This may be replaced when dependencies are built.
