# Empty compiler generated dependencies file for test_edge_worlds.
# This may be replaced when dependencies are built.
