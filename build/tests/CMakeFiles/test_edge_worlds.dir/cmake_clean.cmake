file(REMOVE_RECURSE
  "CMakeFiles/test_edge_worlds.dir/test_edge_worlds.cpp.o"
  "CMakeFiles/test_edge_worlds.dir/test_edge_worlds.cpp.o.d"
  "test_edge_worlds"
  "test_edge_worlds.pdb"
  "test_edge_worlds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_worlds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
