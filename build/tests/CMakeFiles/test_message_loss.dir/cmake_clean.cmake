file(REMOVE_RECURSE
  "CMakeFiles/test_message_loss.dir/test_message_loss.cpp.o"
  "CMakeFiles/test_message_loss.dir/test_message_loss.cpp.o.d"
  "test_message_loss"
  "test_message_loss.pdb"
  "test_message_loss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
