file(REMOVE_RECURSE
  "CMakeFiles/test_atomic_moves.dir/test_atomic_moves.cpp.o"
  "CMakeFiles/test_atomic_moves.dir/test_atomic_moves.cpp.o.d"
  "test_atomic_moves"
  "test_atomic_moves.pdb"
  "test_atomic_moves[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic_moves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
