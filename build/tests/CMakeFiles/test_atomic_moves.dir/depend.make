# Empty dependencies file for test_atomic_moves.
# This may be replaced when dependencies are built.
