# Empty dependencies file for test_multi_target.
# This may be replaced when dependencies are built.
