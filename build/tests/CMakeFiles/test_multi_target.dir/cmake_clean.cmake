file(REMOVE_RECURSE
  "CMakeFiles/test_multi_target.dir/test_multi_target.cpp.o"
  "CMakeFiles/test_multi_target.dir/test_multi_target.cpp.o.d"
  "test_multi_target"
  "test_multi_target.pdb"
  "test_multi_target[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
