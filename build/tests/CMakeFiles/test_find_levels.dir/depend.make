# Empty dependencies file for test_find_levels.
# This may be replaced when dependencies are built.
