file(REMOVE_RECURSE
  "CMakeFiles/test_find_levels.dir/test_find_levels.cpp.o"
  "CMakeFiles/test_find_levels.dir/test_find_levels.cpp.o.d"
  "test_find_levels"
  "test_find_levels.pdb"
  "test_find_levels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_find_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
