# Empty dependencies file for bench_e6_grid_base.
# This may be replaced when dependencies are built.
