file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_grid_base.dir/bench_e6_grid_base.cpp.o"
  "CMakeFiles/bench_e6_grid_base.dir/bench_e6_grid_base.cpp.o.d"
  "bench_e6_grid_base"
  "bench_e6_grid_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_grid_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
