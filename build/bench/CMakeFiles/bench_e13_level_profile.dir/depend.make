# Empty dependencies file for bench_e13_level_profile.
# This may be replaced when dependencies are built.
