file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_level_profile.dir/bench_e13_level_profile.cpp.o"
  "CMakeFiles/bench_e13_level_profile.dir/bench_e13_level_profile.cpp.o.d"
  "bench_e13_level_profile"
  "bench_e13_level_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_level_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
