# Empty compiler generated dependencies file for bench_e1_move_cost.
# This may be replaced when dependencies are built.
