# Empty dependencies file for bench_e2_move_scaling.
# This may be replaced when dependencies are built.
