file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_stabilization.dir/bench_e14_stabilization.cpp.o"
  "CMakeFiles/bench_e14_stabilization.dir/bench_e14_stabilization.cpp.o.d"
  "bench_e14_stabilization"
  "bench_e14_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
