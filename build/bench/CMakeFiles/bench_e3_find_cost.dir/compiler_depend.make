# Empty compiler generated dependencies file for bench_e3_find_cost.
# This may be replaced when dependencies are built.
