file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_dithering.dir/bench_e4_dithering.cpp.o"
  "CMakeFiles/bench_e4_dithering.dir/bench_e4_dithering.cpp.o.d"
  "bench_e4_dithering"
  "bench_e4_dithering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_dithering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
