# Empty dependencies file for bench_e4_dithering.
# This may be replaced when dependencies are built.
