# Empty dependencies file for bench_e12_message_loss.
# This may be replaced when dependencies are built.
