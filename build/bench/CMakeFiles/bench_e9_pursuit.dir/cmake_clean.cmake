file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_pursuit.dir/bench_e9_pursuit.cpp.o"
  "CMakeFiles/bench_e9_pursuit.dir/bench_e9_pursuit.cpp.o.d"
  "bench_e9_pursuit"
  "bench_e9_pursuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_pursuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
