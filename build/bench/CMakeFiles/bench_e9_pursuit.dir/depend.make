# Empty dependencies file for bench_e9_pursuit.
# This may be replaced when dependencies are built.
