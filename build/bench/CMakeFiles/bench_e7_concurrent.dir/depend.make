# Empty dependencies file for bench_e7_concurrent.
# This may be replaced when dependencies are built.
