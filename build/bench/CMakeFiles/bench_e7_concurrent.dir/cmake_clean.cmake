file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_concurrent.dir/bench_e7_concurrent.cpp.o"
  "CMakeFiles/bench_e7_concurrent.dir/bench_e7_concurrent.cpp.o.d"
  "bench_e7_concurrent"
  "bench_e7_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
