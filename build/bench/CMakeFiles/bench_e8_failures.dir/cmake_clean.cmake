file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_failures.dir/bench_e8_failures.cpp.o"
  "CMakeFiles/bench_e8_failures.dir/bench_e8_failures.cpp.o.d"
  "bench_e8_failures"
  "bench_e8_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
