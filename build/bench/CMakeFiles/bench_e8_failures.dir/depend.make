# Empty dependencies file for bench_e8_failures.
# This may be replaced when dependencies are built.
