file(REMOVE_RECURSE
  "CMakeFiles/vs_common.dir/error.cpp.o"
  "CMakeFiles/vs_common.dir/error.cpp.o.d"
  "CMakeFiles/vs_common.dir/log.cpp.o"
  "CMakeFiles/vs_common.dir/log.cpp.o.d"
  "CMakeFiles/vs_common.dir/rng.cpp.o"
  "CMakeFiles/vs_common.dir/rng.cpp.o.d"
  "libvs_common.a"
  "libvs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
