
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/grid_tiling.cpp" "src/geo/CMakeFiles/vs_geo.dir/grid_tiling.cpp.o" "gcc" "src/geo/CMakeFiles/vs_geo.dir/grid_tiling.cpp.o.d"
  "/root/repo/src/geo/strip_tiling.cpp" "src/geo/CMakeFiles/vs_geo.dir/strip_tiling.cpp.o" "gcc" "src/geo/CMakeFiles/vs_geo.dir/strip_tiling.cpp.o.d"
  "/root/repo/src/geo/tiling.cpp" "src/geo/CMakeFiles/vs_geo.dir/tiling.cpp.o" "gcc" "src/geo/CMakeFiles/vs_geo.dir/tiling.cpp.o.d"
  "/root/repo/src/geo/torus_tiling.cpp" "src/geo/CMakeFiles/vs_geo.dir/torus_tiling.cpp.o" "gcc" "src/geo/CMakeFiles/vs_geo.dir/torus_tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
