file(REMOVE_RECURSE
  "libvs_geo.a"
)
