file(REMOVE_RECURSE
  "CMakeFiles/vs_geo.dir/grid_tiling.cpp.o"
  "CMakeFiles/vs_geo.dir/grid_tiling.cpp.o.d"
  "CMakeFiles/vs_geo.dir/strip_tiling.cpp.o"
  "CMakeFiles/vs_geo.dir/strip_tiling.cpp.o.d"
  "CMakeFiles/vs_geo.dir/tiling.cpp.o"
  "CMakeFiles/vs_geo.dir/tiling.cpp.o.d"
  "CMakeFiles/vs_geo.dir/torus_tiling.cpp.o"
  "CMakeFiles/vs_geo.dir/torus_tiling.cpp.o.d"
  "libvs_geo.a"
  "libvs_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
