# Empty dependencies file for vs_geo.
# This may be replaced when dependencies are built.
