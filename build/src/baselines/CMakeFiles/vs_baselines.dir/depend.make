# Empty dependencies file for vs_baselines.
# This may be replaced when dependencies are built.
