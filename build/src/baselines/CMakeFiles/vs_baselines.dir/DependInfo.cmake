
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/expanding_ring.cpp" "src/baselines/CMakeFiles/vs_baselines.dir/expanding_ring.cpp.o" "gcc" "src/baselines/CMakeFiles/vs_baselines.dir/expanding_ring.cpp.o.d"
  "/root/repo/src/baselines/location_service.cpp" "src/baselines/CMakeFiles/vs_baselines.dir/location_service.cpp.o" "gcc" "src/baselines/CMakeFiles/vs_baselines.dir/location_service.cpp.o.d"
  "/root/repo/src/baselines/root_directory.cpp" "src/baselines/CMakeFiles/vs_baselines.dir/root_directory.cpp.o" "gcc" "src/baselines/CMakeFiles/vs_baselines.dir/root_directory.cpp.o.d"
  "/root/repo/src/baselines/tree_directory.cpp" "src/baselines/CMakeFiles/vs_baselines.dir/tree_directory.cpp.o" "gcc" "src/baselines/CMakeFiles/vs_baselines.dir/tree_directory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/vs_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/tracking/CMakeFiles/vs_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/vsa/CMakeFiles/vs_vsa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
