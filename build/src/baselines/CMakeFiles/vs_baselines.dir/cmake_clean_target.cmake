file(REMOVE_RECURSE
  "libvs_baselines.a"
)
