file(REMOVE_RECURSE
  "CMakeFiles/vs_baselines.dir/expanding_ring.cpp.o"
  "CMakeFiles/vs_baselines.dir/expanding_ring.cpp.o.d"
  "CMakeFiles/vs_baselines.dir/location_service.cpp.o"
  "CMakeFiles/vs_baselines.dir/location_service.cpp.o.d"
  "CMakeFiles/vs_baselines.dir/root_directory.cpp.o"
  "CMakeFiles/vs_baselines.dir/root_directory.cpp.o.d"
  "CMakeFiles/vs_baselines.dir/tree_directory.cpp.o"
  "CMakeFiles/vs_baselines.dir/tree_directory.cpp.o.d"
  "libvs_baselines.a"
  "libvs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
