file(REMOVE_RECURSE
  "CMakeFiles/vs_ext.dir/pursuit.cpp.o"
  "CMakeFiles/vs_ext.dir/pursuit.cpp.o.d"
  "CMakeFiles/vs_ext.dir/stabilizer.cpp.o"
  "CMakeFiles/vs_ext.dir/stabilizer.cpp.o.d"
  "libvs_ext.a"
  "libvs_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
