# Empty compiler generated dependencies file for vs_ext.
# This may be replaced when dependencies are built.
