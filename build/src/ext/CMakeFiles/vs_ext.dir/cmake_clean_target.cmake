file(REMOVE_RECURSE
  "libvs_ext.a"
)
