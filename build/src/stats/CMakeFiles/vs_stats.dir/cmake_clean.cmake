file(REMOVE_RECURSE
  "CMakeFiles/vs_stats.dir/counters.cpp.o"
  "CMakeFiles/vs_stats.dir/counters.cpp.o.d"
  "CMakeFiles/vs_stats.dir/summary.cpp.o"
  "CMakeFiles/vs_stats.dir/summary.cpp.o.d"
  "CMakeFiles/vs_stats.dir/table.cpp.o"
  "CMakeFiles/vs_stats.dir/table.cpp.o.d"
  "libvs_stats.a"
  "libvs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
