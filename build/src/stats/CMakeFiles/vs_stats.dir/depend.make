# Empty dependencies file for vs_stats.
# This may be replaced when dependencies are built.
