file(REMOVE_RECURSE
  "libvs_stats.a"
)
