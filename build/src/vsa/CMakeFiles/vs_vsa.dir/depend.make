# Empty dependencies file for vs_vsa.
# This may be replaced when dependencies are built.
