
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vsa/cgcast.cpp" "src/vsa/CMakeFiles/vs_vsa.dir/cgcast.cpp.o" "gcc" "src/vsa/CMakeFiles/vs_vsa.dir/cgcast.cpp.o.d"
  "/root/repo/src/vsa/client.cpp" "src/vsa/CMakeFiles/vs_vsa.dir/client.cpp.o" "gcc" "src/vsa/CMakeFiles/vs_vsa.dir/client.cpp.o.d"
  "/root/repo/src/vsa/directory.cpp" "src/vsa/CMakeFiles/vs_vsa.dir/directory.cpp.o" "gcc" "src/vsa/CMakeFiles/vs_vsa.dir/directory.cpp.o.d"
  "/root/repo/src/vsa/evader.cpp" "src/vsa/CMakeFiles/vs_vsa.dir/evader.cpp.o" "gcc" "src/vsa/CMakeFiles/vs_vsa.dir/evader.cpp.o.d"
  "/root/repo/src/vsa/messages.cpp" "src/vsa/CMakeFiles/vs_vsa.dir/messages.cpp.o" "gcc" "src/vsa/CMakeFiles/vs_vsa.dir/messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/vs_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
