file(REMOVE_RECURSE
  "CMakeFiles/vs_vsa.dir/cgcast.cpp.o"
  "CMakeFiles/vs_vsa.dir/cgcast.cpp.o.d"
  "CMakeFiles/vs_vsa.dir/client.cpp.o"
  "CMakeFiles/vs_vsa.dir/client.cpp.o.d"
  "CMakeFiles/vs_vsa.dir/directory.cpp.o"
  "CMakeFiles/vs_vsa.dir/directory.cpp.o.d"
  "CMakeFiles/vs_vsa.dir/evader.cpp.o"
  "CMakeFiles/vs_vsa.dir/evader.cpp.o.d"
  "CMakeFiles/vs_vsa.dir/messages.cpp.o"
  "CMakeFiles/vs_vsa.dir/messages.cpp.o.d"
  "libvs_vsa.a"
  "libvs_vsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_vsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
