file(REMOVE_RECURSE
  "libvs_vsa.a"
)
