file(REMOVE_RECURSE
  "libvs_tracking.a"
)
