
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracking/config.cpp" "src/tracking/CMakeFiles/vs_tracking.dir/config.cpp.o" "gcc" "src/tracking/CMakeFiles/vs_tracking.dir/config.cpp.o.d"
  "/root/repo/src/tracking/network.cpp" "src/tracking/CMakeFiles/vs_tracking.dir/network.cpp.o" "gcc" "src/tracking/CMakeFiles/vs_tracking.dir/network.cpp.o.d"
  "/root/repo/src/tracking/snapshot.cpp" "src/tracking/CMakeFiles/vs_tracking.dir/snapshot.cpp.o" "gcc" "src/tracking/CMakeFiles/vs_tracking.dir/snapshot.cpp.o.d"
  "/root/repo/src/tracking/tracker.cpp" "src/tracking/CMakeFiles/vs_tracking.dir/tracker.cpp.o" "gcc" "src/tracking/CMakeFiles/vs_tracking.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/vs_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/vsa/CMakeFiles/vs_vsa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
