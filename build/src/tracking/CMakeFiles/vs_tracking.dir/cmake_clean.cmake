file(REMOVE_RECURSE
  "CMakeFiles/vs_tracking.dir/config.cpp.o"
  "CMakeFiles/vs_tracking.dir/config.cpp.o.d"
  "CMakeFiles/vs_tracking.dir/network.cpp.o"
  "CMakeFiles/vs_tracking.dir/network.cpp.o.d"
  "CMakeFiles/vs_tracking.dir/snapshot.cpp.o"
  "CMakeFiles/vs_tracking.dir/snapshot.cpp.o.d"
  "CMakeFiles/vs_tracking.dir/tracker.cpp.o"
  "CMakeFiles/vs_tracking.dir/tracker.cpp.o.d"
  "libvs_tracking.a"
  "libvs_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
