# Empty dependencies file for vs_tracking.
# This may be replaced when dependencies are built.
