file(REMOVE_RECURSE
  "CMakeFiles/vs_spec.dir/atomic_spec.cpp.o"
  "CMakeFiles/vs_spec.dir/atomic_spec.cpp.o.d"
  "CMakeFiles/vs_spec.dir/bounds.cpp.o"
  "CMakeFiles/vs_spec.dir/bounds.cpp.o.d"
  "CMakeFiles/vs_spec.dir/consistency.cpp.o"
  "CMakeFiles/vs_spec.dir/consistency.cpp.o.d"
  "CMakeFiles/vs_spec.dir/inspect.cpp.o"
  "CMakeFiles/vs_spec.dir/inspect.cpp.o.d"
  "CMakeFiles/vs_spec.dir/invariants.cpp.o"
  "CMakeFiles/vs_spec.dir/invariants.cpp.o.d"
  "CMakeFiles/vs_spec.dir/look_ahead.cpp.o"
  "CMakeFiles/vs_spec.dir/look_ahead.cpp.o.d"
  "libvs_spec.a"
  "libvs_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
