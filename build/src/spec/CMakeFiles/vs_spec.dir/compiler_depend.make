# Empty compiler generated dependencies file for vs_spec.
# This may be replaced when dependencies are built.
