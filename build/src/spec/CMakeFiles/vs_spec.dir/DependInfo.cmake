
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/atomic_spec.cpp" "src/spec/CMakeFiles/vs_spec.dir/atomic_spec.cpp.o" "gcc" "src/spec/CMakeFiles/vs_spec.dir/atomic_spec.cpp.o.d"
  "/root/repo/src/spec/bounds.cpp" "src/spec/CMakeFiles/vs_spec.dir/bounds.cpp.o" "gcc" "src/spec/CMakeFiles/vs_spec.dir/bounds.cpp.o.d"
  "/root/repo/src/spec/consistency.cpp" "src/spec/CMakeFiles/vs_spec.dir/consistency.cpp.o" "gcc" "src/spec/CMakeFiles/vs_spec.dir/consistency.cpp.o.d"
  "/root/repo/src/spec/inspect.cpp" "src/spec/CMakeFiles/vs_spec.dir/inspect.cpp.o" "gcc" "src/spec/CMakeFiles/vs_spec.dir/inspect.cpp.o.d"
  "/root/repo/src/spec/invariants.cpp" "src/spec/CMakeFiles/vs_spec.dir/invariants.cpp.o" "gcc" "src/spec/CMakeFiles/vs_spec.dir/invariants.cpp.o.d"
  "/root/repo/src/spec/look_ahead.cpp" "src/spec/CMakeFiles/vs_spec.dir/look_ahead.cpp.o" "gcc" "src/spec/CMakeFiles/vs_spec.dir/look_ahead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/vs_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/tracking/CMakeFiles/vs_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/vsa/CMakeFiles/vs_vsa.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
