file(REMOVE_RECURSE
  "libvs_spec.a"
)
