
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hier/grid_hierarchy.cpp" "src/hier/CMakeFiles/vs_hier.dir/grid_hierarchy.cpp.o" "gcc" "src/hier/CMakeFiles/vs_hier.dir/grid_hierarchy.cpp.o.d"
  "/root/repo/src/hier/hierarchy.cpp" "src/hier/CMakeFiles/vs_hier.dir/hierarchy.cpp.o" "gcc" "src/hier/CMakeFiles/vs_hier.dir/hierarchy.cpp.o.d"
  "/root/repo/src/hier/strip_hierarchy.cpp" "src/hier/CMakeFiles/vs_hier.dir/strip_hierarchy.cpp.o" "gcc" "src/hier/CMakeFiles/vs_hier.dir/strip_hierarchy.cpp.o.d"
  "/root/repo/src/hier/torus_hierarchy.cpp" "src/hier/CMakeFiles/vs_hier.dir/torus_hierarchy.cpp.o" "gcc" "src/hier/CMakeFiles/vs_hier.dir/torus_hierarchy.cpp.o.d"
  "/root/repo/src/hier/validator.cpp" "src/hier/CMakeFiles/vs_hier.dir/validator.cpp.o" "gcc" "src/hier/CMakeFiles/vs_hier.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vs_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
