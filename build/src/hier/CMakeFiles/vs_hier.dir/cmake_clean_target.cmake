file(REMOVE_RECURSE
  "libvs_hier.a"
)
