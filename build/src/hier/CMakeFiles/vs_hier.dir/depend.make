# Empty dependencies file for vs_hier.
# This may be replaced when dependencies are built.
