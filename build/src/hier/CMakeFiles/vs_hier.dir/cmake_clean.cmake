file(REMOVE_RECURSE
  "CMakeFiles/vs_hier.dir/grid_hierarchy.cpp.o"
  "CMakeFiles/vs_hier.dir/grid_hierarchy.cpp.o.d"
  "CMakeFiles/vs_hier.dir/hierarchy.cpp.o"
  "CMakeFiles/vs_hier.dir/hierarchy.cpp.o.d"
  "CMakeFiles/vs_hier.dir/strip_hierarchy.cpp.o"
  "CMakeFiles/vs_hier.dir/strip_hierarchy.cpp.o.d"
  "CMakeFiles/vs_hier.dir/torus_hierarchy.cpp.o"
  "CMakeFiles/vs_hier.dir/torus_hierarchy.cpp.o.d"
  "CMakeFiles/vs_hier.dir/validator.cpp.o"
  "CMakeFiles/vs_hier.dir/validator.cpp.o.d"
  "libvs_hier.a"
  "libvs_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
