# Empty compiler generated dependencies file for vs_sim.
# This may be replaced when dependencies are built.
