file(REMOVE_RECURSE
  "CMakeFiles/vs_sim.dir/event_queue.cpp.o"
  "CMakeFiles/vs_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/vs_sim.dir/scheduler.cpp.o"
  "CMakeFiles/vs_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/vs_sim.dir/timer.cpp.o"
  "CMakeFiles/vs_sim.dir/timer.cpp.o.d"
  "libvs_sim.a"
  "libvs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
