file(REMOVE_RECURSE
  "libvs_sim.a"
)
