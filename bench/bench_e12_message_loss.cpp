// E12 — robustness to channel loss (fault-injection study).
//
// The paper's C-gcast is reliable; this bench measures graceful (or not)
// degradation when messages are lost uniformly at random, with and without
// the §VII heartbeat stabilizer: structure consistency after a walk, find
// success, and the repair traffic spent. Each (loss rate, stabilizer)
// combination is an independent trial.
//
// Loss is driven through a fault::FaultPlan — a single loss window
// covering the whole run, seeded with the legacy channel-loss seed —
// embedded in each trial's ScenarioSpec, so incidents captured here
// replay with the identical loss sequence.

#include <array>

#include "ext/stabilizer.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "spec/consistency.hpp"

#include "bench_util.hpp"

namespace {

using namespace vsbench;

constexpr std::int64_t kStepUs = 200'000;
constexpr std::int64_t kSettleUs = 4'000'000;
constexpr std::int64_t kHeartbeatUs = 400'000;
// Covers placement, walk, settle, and the post-walk finds.
constexpr std::int64_t kLossWindowEndUs = 1'000'000'000;

struct Outcome {
  bool consistent;
  int finds_ok;
  int finds_total;
  std::int64_t lost;
  std::int64_t repairs;
};

Outcome run(double loss, bool stabilize, BenchObs& obs, std::size_t trial,
            BenchMonitor* mon = nullptr) {
  GridNet g = make_grid(27, 3);
  const RegionId start = g.at(13, 13);

  fault::FaultPlan plan;
  plan.seed = 0x10555;  // the legacy CGcastConfig::loss_seed
  if (loss > 0.0) plan.loss_bursts.push_back({0, kLossWindowEndUs, loss, 0});

  // A windows-only plan arms before the target is placed: the initial
  // detection traffic runs over the lossy channel too, exactly like the
  // legacy loss_probability config this bench used to set.
  std::unique_ptr<fault::FaultInjector> inj;
  if (!plan.empty()) {
    inj = std::make_unique<fault::FaultInjector>(*g.net, plan);
    inj->arm();
  }

  const TargetId t = g.net->add_evader(start);
  g.net->run_to_quiescence();

  obs::ScenarioSpec scenario = walk_scenario(27, 3, start, 80, 0xE12);
  scenario.step_every_us = kStepUs;
  scenario.settle_us = kSettleUs;
  scenario.heartbeat_period_us = stabilize ? kHeartbeatUs : 0;
  if (!plan.empty()) scenario.fault_plan = plan.to_string();
  // Lossy channels can legitimately strand stale pointers; under --monitor
  // the bare (unstabilized) lossy trials are expected to report violations
  // — now with fault-replayable bundles.
  const auto wd = mon != nullptr ? mon->attach(*g.net, t, scenario) : nullptr;

  std::unique_ptr<ext::Stabilizer> stab;
  if (stabilize) {
    stab = std::make_unique<ext::Stabilizer>(*g.net, t,
                                             sim::Duration::micros(kHeartbeatUs));
    stab->start();
  }

  const auto walk = random_walk(g.hierarchy->tiling(), start, 80, 0xE12);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    g.net->move_evader(t, walk[i]);
    g.net->run_for(sim::Duration::micros(kStepUs));
  }
  g.net->run_for(sim::Duration::micros(kSettleUs));
  if (stab) stab->stop();
  g.net->run_to_quiescence();

  Outcome out{};
  out.consistent =
      vs::spec::check_consistent(g.net->snapshot(t), walk.back()).ok();
  out.lost = g.net->cgcast().lost();
  out.repairs = stab ? stab->repairs() : 0;
  // Harvest the monitor before the finds: the final check then runs at the
  // same virtual time as a scenario replay's.
  if (mon != nullptr) mon->finish(trial, wd.get());
  Rng rng{0x12E};
  out.finds_total = 10;
  for (int i = 0; i < out.finds_total; ++i) {
    const RegionId origin{static_cast<RegionId::rep_type>(rng.uniform_int(
        0, static_cast<std::int64_t>(g.hierarchy->tiling().num_regions()) - 1))};
    const FindId f = g.net->start_find(origin, t);
    g.net->run_to_quiescence();
    if (g.net->find_result(f).done &&
        g.net->find_result(f).found_region == walk.back()) {
      ++out.finds_ok;
    }
  }
  obs.record(trial, *g.net);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsbench;
  const auto opt = parse_bench_args(argc, argv);
  banner("E12: channel-loss fault injection",
         "claim: under lossy channels the bare protocol degrades (stale\n"
         "       pointers accumulate) while heartbeat repair restores a\n"
         "       consistent, serviceable structure.\n"
         "world: 27x27 base 3; 80-step walk; 10 post-walk finds.");

  constexpr std::array<double, 4> kLoss{0.0, 0.01, 0.03, 0.08};
  stats::Table table({"loss_%", "stabilizer", "msgs_lost", "repair_msgs",
                      "consistent", "finds_ok/10"});
  // Trial 2i: loss[i] without stabilizer; trial 2i+1: with.
  BenchObs obs("e12_message_loss", kLoss.size() * 2);
  BenchMonitor mon("e12_message_loss", opt, kLoss.size() * 2);
  const auto rows = sweep(opt, kLoss.size() * 2, [&](std::size_t trial) {
    const double loss = kLoss[trial / 2];
    const bool stabilize = trial % 2 == 1;
    const Outcome o = run(loss, stabilize, obs, trial, &mon);
    return std::vector<stats::Table::Cell>{
        loss * 100.0, std::string(stabilize ? "on" : "off"), o.lost,
        o.repairs, std::string(o.consistent ? "yes" : "no"),
        std::int64_t{o.finds_ok}};
  });
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);
  obs.maybe_write(opt);
  std::cout << "\nshape check: loss 0 is perfect either way; with loss > 0 "
               "the bare run loses consistency and finds, while the "
               "stabilized run stays serviceable with repair traffic "
               "scaling with the loss rate.\n";
  return mon.report();
}
