// E4 — §IV-B dithering resistance: an evader oscillating across a level-k
// cluster boundary costs VINESTALK O(1) amortised per step (lateral links),
// while schemes that always climb to the hierarchy parent pay work that
// grows with k — Θ(D) at the top boundary.
//
// For every boundary level k of an 81×81 base-3 grid, 60 oscillation steps
// are run under (a) VINESTALK, (b) the NoLateral variant (STALK-restricted,
// same DES), and (c) the TreeDirectory analytic baseline. Each boundary
// level is one independent trial.

#include <array>

#include "baselines/tree_directory.hpp"
#include "bench_util.hpp"

namespace {

using namespace vsbench;

double des_dither_cost(bool lateral, int side, int boundary_x, int steps,
                       BenchObs* obs = nullptr, std::size_t trial = 0,
                       BenchMonitor* mon = nullptr) {
  tracking::NetworkConfig cfg;
  cfg.lateral_links = lateral;
  GridNet g = make_grid(side, 3, cfg);
  const RegionId a = g.at(boundary_x - 1, side / 2);
  const RegionId b = g.at(boundary_x, side / 2);
  const TargetId t = g.net->add_evader(a);
  g.net->run_to_quiescence();
  const auto wd = mon != nullptr ? mon->attach(*g.net, t) : nullptr;
  const auto work0 = g.net->counters().move_work();
  RegionId cur = a;
  for (int i = 0; i < steps; ++i) {
    cur = cur == a ? b : a;
    g.net->move_evader(t, cur);
    g.net->run_to_quiescence();
  }
  if (mon != nullptr) mon->finish(trial, wd.get());
  if (obs != nullptr) obs->record(trial, *g.net);
  return static_cast<double>(g.net->counters().move_work() - work0) / steps;
}

double tree_dither_cost(const hier::GridHierarchy& h, int boundary_x,
                        int side, int steps) {
  baselines::TreeDirectory dir(h);
  const RegionId a = h.grid().region_at(boundary_x - 1, side / 2);
  const RegionId b = h.grid().region_at(boundary_x, side / 2);
  dir.init(a);
  std::int64_t work = 0;
  RegionId cur = a;
  for (int i = 0; i < steps; ++i) {
    cur = cur == a ? b : a;
    work += dir.move(cur).work;
  }
  return static_cast<double>(work) / steps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsbench;
  const auto opt = parse_bench_args(argc, argv);
  banner("E4: dithering across level-k boundaries (§IV-B)",
         "claim: lateral links make boundary oscillation O(1)/step;\n"
         "       parent-only schemes pay work growing with the boundary "
         "level.\nworld: 81x81 base 3 (boundaries at x = 27·k, 9·k, 3·k).");

  const int side = 81;
  const int steps = 60;
  const hier::GridHierarchy h(side, side, 3);

  stats::Table table({"boundary_level", "x", "vinestalk_w/step",
                      "no_lateral_w/step", "tree_dir_w/step",
                      "no_lateral/vinestalk"});
  // x = 39 is a level-1 boundary (3 | 39, 9 ∤ 39), x = 36 level-2,
  // x = 27 level-3 — the highest interior boundary of an 81-world.
  constexpr std::array<std::array<int, 2>, 3> kBoundaries{
      {{1, 39}, {2, 36}, {3, 27}}};
  BenchObs obs("e4_dithering", kBoundaries.size());
  BenchMonitor mon("e4_dithering", opt, kBoundaries.size());
  const auto rows = sweep(opt, kBoundaries.size(), [&](std::size_t trial) {
    const auto [k, x] = kBoundaries[trial];
    const double vine =
        des_dither_cost(true, side, x, steps, &obs, trial, &mon);
    const double no_lat = des_dither_cost(false, side, x, steps);
    const double tree = tree_dither_cost(h, x, side, steps);
    return std::vector<stats::Table::Cell>{std::int64_t{k}, std::int64_t{x},
                                           vine, no_lat, tree,
                                           no_lat / vine};
  });
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);
  obs.maybe_write(opt);
  std::cout << "\nshape check: vinestalk column flat in k; no_lateral and "
               "tree_dir grow with k (Θ(3^k)).\n";
  return mon.report();
}
