// E13 — the per-level anatomy of Theorem 4.9: a level-l pointer updates at
// most once every q(l−1) steps, so per-step message counts at level l must
// fall off like 1/q(l−1) — the geometric decay that makes the total
// O(r·log_r D) instead of O(D). The two traffic patterns (random walk,
// waypoint) are independent trials run concurrently.

#include <string>

#include "bench_util.hpp"

namespace {

using namespace vsbench;

struct Profile {
  std::string heading;
  stats::Table table;
};

Profile run_profile(bool directed, BenchObs& obs, std::size_t trial,
                    BenchMonitor* mon = nullptr) {
  GridNet g = make_grid(243, 3);
  const RegionId start = g.at(121, 121);
  const TargetId t = g.net->add_evader(start);
  g.net->run_to_quiescence();
  const auto wd = mon != nullptr ? mon->attach(*g.net, t) : nullptr;

  const auto& h = *g.hierarchy;
  std::vector<std::int64_t> msgs_before, work_before;
  for (Level l = 0; l <= h.max_level(); ++l) {
    msgs_before.push_back(g.net->counters().messages_at_level(l));
    work_before.push_back(g.net->counters().work_at_level(l));
  }

  const int steps = 1200;
  vsa::RandomWalkMover walk_mover(h.tiling(), 0xE13);
  vsa::WaypointMover way_mover(g.hierarchy->grid(), 0xE13);
  RegionId cur = start;
  for (int i = 0; i < steps; ++i) {
    cur = directed ? way_mover.next(cur) : walk_mover.next(cur);
    g.net->move_evader(t, cur);
    g.net->run_to_quiescence();
  }

  Profile p{directed ? "-- waypoint (directed travel) --"
                     : "-- random walk (meandering) --",
            stats::Table({"level", "q(l-1)", "msgs/step", "work/step",
                          "msgs*q(l-1)/step"})};
  for (Level l = 0; l <= h.max_level(); ++l) {
    const double msgs =
        static_cast<double>(g.net->counters().messages_at_level(l) -
                            msgs_before[static_cast<std::size_t>(l)]) /
        steps;
    const double work =
        static_cast<double>(g.net->counters().work_at_level(l) -
                            work_before[static_cast<std::size_t>(l)]) /
        steps;
    const std::int64_t q_below = l == 0 ? 1 : h.q(l - 1);
    p.table.add_row({std::int64_t{l}, q_below, msgs, work,
                     msgs * static_cast<double>(q_below)});
  }
  if (mon != nullptr) mon->finish(trial, wd.get());
  obs.record(trial, *g.net);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsbench;
  const auto opt = parse_bench_args(argc, argv);
  banner("E13: per-level update profile (Theorem 4.9's amortisation)",
         "claim: move messages at level l per unit distance decay like\n"
         "       1/q(l−1): each level filters all but boundary crossings.\n"
         "world: 243x243 base 3; 1200 steps; random-walk vs waypoint traffic.");

  BenchObs obs("e13_level_profile", 2);
  BenchMonitor mon("e13_level_profile", opt, 2);
  const auto profiles = sweep(opt, 2, [&](std::size_t trial) {
    return run_profile(/*directed=*/trial == 1, obs, trial, &mon);
  });
  for (const auto& p : profiles) {
    std::cout << p.heading << "\n";
    p.table.print(std::cout);
    std::cout << "\n";
  }
  obs.maybe_write(opt);
  std::cout << "shape check: msgs/step decays at least as fast as the "
               "adversarial 1/q(l−1) bound; directed travel (waypoint) "
               "tracks the bound (normalised column flat-ish), a meandering "
               "random walk decays faster still — high levels update only "
               "on genuine long-range displacement, which is Theorem 4.9's "
               "amortisation at work.\n";
  return mon.report();
}
