// E14 — self-stabilization convergence (§VII): repair rounds and traffic
// needed to return to the unique consistent structure, as a function of
// how much of the network was corrupted.
//
// Corruption draws random values from the Figure 2 variable domains for a
// fraction of all Trackers (the adversarial-start model); the heartbeat
// stabilizer then ticks until the §IV-C consistency predicate holds.

#include "ext/stabilizer.hpp"
#include "spec/consistency.hpp"

#include "bench_util.hpp"

namespace {

using namespace vsbench;

void corrupt_fraction(GridNet& g, TargetId t, double fraction,
                      std::uint64_t seed) {
  Rng rng{seed};
  const auto& h = *g.hierarchy;
  for (std::size_t ci = 0; ci < h.num_clusters(); ++ci) {
    if (!rng.chance(fraction)) continue;
    const ClusterId c{static_cast<ClusterId::rep_type>(ci)};
    tracking::TrackerSnapshot forced;
    forced.clust = c;
    const auto nbrs = h.nbrs(c);
    const auto maybe_nbr = [&]() {
      if (nbrs.empty() || rng.chance(0.4)) return ClusterId{};
      return nbrs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nbrs.size()) - 1))];
    };
    const auto kids = h.children(c);
    if (!kids.empty() && rng.chance(0.5)) {
      forced.c = kids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kids.size()) - 1))];
    } else if (h.level(c) == 0 && rng.chance(0.3)) {
      forced.c = c;
    } else {
      forced.c = maybe_nbr();
    }
    forced.p = rng.chance(0.5) && h.level(c) != h.max_level()
                   ? h.parent(c)
                   : maybe_nbr();
    forced.nbrptup = maybe_nbr();
    forced.nbrptdown = maybe_nbr();
    g.net->tracker(c).corrupt_state(t, forced);
  }
}

}  // namespace

int main() {
  using namespace vsbench;
  banner("E14: self-stabilization convergence (§VII)",
         "claim: heartbeat repair converges from arbitrary (domain-valid)\n"
         "       corruption; rounds and traffic scale with the damage.\n"
         "world: 27x27 base 3; 5 seeds per fraction, worst case reported.");

  stats::Table table({"corrupt_%", "max_ticks_to_consistent",
                      "max_repair_msgs", "all_converged"});
  for (const double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    int worst_ticks = 0;
    std::int64_t worst_repairs = 0;
    bool all_ok = true;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      GridNet g = make_grid(27, 3);
      const RegionId where = g.at(13, 13);
      const TargetId t = g.net->add_evader(where);
      g.net->run_to_quiescence();
      corrupt_fraction(g, t, fraction, 0xE14 + seed);

      ext::Stabilizer stab(*g.net, t, sim::Duration::millis(500));
      bool converged =
          vs::spec::check_consistent(g.net->snapshot(t), where).ok();
      int ticks = 0;
      while (!converged && ticks < 40) {
        stab.tick_once();
        g.net->run_to_quiescence();
        ++ticks;
        converged =
            vs::spec::check_consistent(g.net->snapshot(t), where).ok();
      }
      all_ok = all_ok && converged;
      worst_ticks = std::max(worst_ticks, ticks);
      worst_repairs = std::max(worst_repairs, stab.repairs());
    }
    table.add_row({fraction * 100.0, std::int64_t{worst_ticks},
                   worst_repairs, std::string(all_ok ? "yes" : "no")});
  }
  table.print(std::cout);
  std::cout << "\nshape check: convergence at every corruption fraction "
               "(including 100%); repair traffic grows with damage while "
               "round counts stay small (repairs run in parallel across "
               "the structure).\n";
  return 0;
}
