// E14 — self-stabilization convergence (§VII): repair rounds and traffic
// needed to return to the unique consistent structure, as a function of
// how much of the network was corrupted.
//
// Corruption draws random values from the Figure 2 variable domains for a
// fraction of all Trackers (the adversarial-start model); the heartbeat
// stabilizer then ticks until the §IV-C consistency predicate holds.
// Every (fraction, seed) pair is an independent trial — 25 worlds run
// concurrently — and the per-fraction worst case is folded at join.

#include <algorithm>
#include <array>

#include "ext/stabilizer.hpp"
#include "spec/consistency.hpp"

#include "bench_util.hpp"

namespace {

using namespace vsbench;

void corrupt_fraction(GridNet& g, TargetId t, double fraction,
                      std::uint64_t seed) {
  Rng rng{seed};
  const auto& h = *g.hierarchy;
  for (std::size_t ci = 0; ci < h.num_clusters(); ++ci) {
    if (!rng.chance(fraction)) continue;
    const ClusterId c{static_cast<ClusterId::rep_type>(ci)};
    tracking::TrackerSnapshot forced;
    forced.clust = c;
    const auto nbrs = h.nbrs(c);
    const auto maybe_nbr = [&]() {
      if (nbrs.empty() || rng.chance(0.4)) return ClusterId{};
      return nbrs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nbrs.size()) - 1))];
    };
    const auto kids = h.children(c);
    if (!kids.empty() && rng.chance(0.5)) {
      forced.c = kids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kids.size()) - 1))];
    } else if (h.level(c) == 0 && rng.chance(0.3)) {
      forced.c = c;
    } else {
      forced.c = maybe_nbr();
    }
    forced.p = rng.chance(0.5) && h.level(c) != h.max_level()
                   ? h.parent(c)
                   : maybe_nbr();
    forced.nbrptup = maybe_nbr();
    forced.nbrptdown = maybe_nbr();
    g.net->tracker(c).corrupt_state(t, forced);
  }
}

struct TrialResult {
  int ticks = 0;
  std::int64_t repairs = 0;
  bool converged = false;
};

TrialResult run_trial(double fraction, std::uint64_t seed, BenchObs& obs,
                      std::size_t trial, BenchMonitor* mon = nullptr) {
  GridNet g = make_grid(27, 3);
  const RegionId where = g.at(13, 13);
  const TargetId t = g.net->add_evader(where);
  g.net->run_to_quiescence();
  corrupt_fraction(g, t, fraction, 0xE14 + seed);

  ext::Stabilizer stab(*g.net, t, sim::Duration::millis(500));
  TrialResult out;
  out.converged = vs::spec::check_consistent(g.net->snapshot(t), where).ok();
  while (!out.converged && out.ticks < 40) {
    stab.tick_once();
    g.net->run_to_quiescence();
    ++out.ticks;
    out.converged =
        vs::spec::check_consistent(g.net->snapshot(t), where).ok();
  }
  out.repairs = stab.repairs();
  // The corruption phase is *supposed* to violate the invariants; attach
  // the watchdog only after convergence to certify the repaired structure
  // passes every predicate (an unconverged world would just re-report the
  // seeded damage).
  if (mon != nullptr && out.converged) {
    const auto wd = mon->attach(*g.net, t);
    mon->finish(trial, wd.get());
  }
  obs.record(trial, *g.net);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsbench;
  const auto opt = parse_bench_args(argc, argv);
  banner("E14: self-stabilization convergence (§VII)",
         "claim: heartbeat repair converges from arbitrary (domain-valid)\n"
         "       corruption; rounds and traffic scale with the damage.\n"
         "world: 27x27 base 3; 5 seeds per fraction, worst case reported.");

  constexpr std::array<double, 5> kFractions{0.1, 0.25, 0.5, 0.75, 1.0};
  constexpr std::size_t kSeeds = 5;
  BenchObs obs("e14_stabilization", kFractions.size() * kSeeds);
  BenchMonitor mon("e14_stabilization", opt, kFractions.size() * kSeeds);
  const auto results =
      sweep(opt, kFractions.size() * kSeeds, [&](std::size_t trial) {
        const double fraction = kFractions[trial / kSeeds];
        const std::uint64_t seed = trial % kSeeds + 1;
        return run_trial(fraction, seed, obs, trial, &mon);
      });

  stats::Table table({"corrupt_%", "max_ticks_to_consistent",
                      "max_repair_msgs", "all_converged"});
  for (std::size_t fi = 0; fi < kFractions.size(); ++fi) {
    int worst_ticks = 0;
    std::int64_t worst_repairs = 0;
    bool all_ok = true;
    for (std::size_t s = 0; s < kSeeds; ++s) {
      const TrialResult& r = results[fi * kSeeds + s];
      all_ok = all_ok && r.converged;
      worst_ticks = std::max(worst_ticks, r.ticks);
      worst_repairs = std::max(worst_repairs, r.repairs);
    }
    table.add_row({kFractions[fi] * 100.0, std::int64_t{worst_ticks},
                   worst_repairs, std::string(all_ok ? "yes" : "no")});
  }
  table.print(std::cout);
  obs.maybe_write(opt);
  std::cout << "\nshape check: convergence at every corruption fraction "
               "(including 100%); repair traffic grows with damage while "
               "round counts stay small (repairs run in parallel across "
               "the structure).\n";
  return mon.report();
}
